package dragonfly

// One benchmark per evaluation artifact of the paper: Tables I-II and
// Figures 2-10. Each benchmark regenerates its artifact end to end at quick
// scale (a structurally Theta-like small machine with proportionally shrunk
// applications); `cmd/dfsweep -scale paper` runs the same code at the
// paper's machine and application sizes. Reported custom metrics:
// sim_events/op (DES events executed) — the natural work unit of the
// simulator.

import (
	"testing"
)

// benchArtifact runs one experiment per iteration on a fresh runner so the
// result cache never amortizes across iterations.
func benchArtifact(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		r := NewRunner(ExperimentOptions{Scale: ScaleQuick, Seed: 1})
		rep, err := r.Run(id)
		if err != nil {
			b.Fatal(err)
		}
		if len(rep.Tables) == 0 {
			b.Fatalf("%s produced no tables", id)
		}
	}
}

// BenchmarkTableINomenclature regenerates Table I.
func BenchmarkTableINomenclature(b *testing.B) { benchArtifact(b, "table1") }

// BenchmarkTableIIPeakLoad regenerates Table II (analytic peak loads).
func BenchmarkTableIIPeakLoad(b *testing.B) { benchArtifact(b, "table2") }

// BenchmarkFigure2Traces regenerates the application characterization.
func BenchmarkFigure2Traces(b *testing.B) { benchArtifact(b, "fig2") }

// BenchmarkFigure3CommTime regenerates the 3 apps x 10 configs
// communication-time study.
func BenchmarkFigure3CommTime(b *testing.B) { benchArtifact(b, "fig3") }

// BenchmarkFigure4CR regenerates the CR hops/traffic/saturation study.
func BenchmarkFigure4CR(b *testing.B) { benchArtifact(b, "fig4") }

// BenchmarkFigure5FB regenerates the FB traffic/saturation study.
func BenchmarkFigure5FB(b *testing.B) { benchArtifact(b, "fig5") }

// BenchmarkFigure6AMG regenerates the AMG traffic/saturation study.
func BenchmarkFigure6AMG(b *testing.B) { benchArtifact(b, "fig6") }

// BenchmarkFigure7Sensitivity regenerates the message-size sensitivity
// sweep (3 apps x 7 scales x 4 configs + baselines).
func BenchmarkFigure7Sensitivity(b *testing.B) { benchArtifact(b, "fig7") }

// BenchmarkFigure8AMGBackground regenerates the AMG uniform-background
// interference study.
func BenchmarkFigure8AMGBackground(b *testing.B) { benchArtifact(b, "fig8") }

// BenchmarkFigure9CRBackground regenerates the CR uniform+bursty
// interference study.
func BenchmarkFigure9CRBackground(b *testing.B) { benchArtifact(b, "fig9") }

// BenchmarkFigure10FBBackground regenerates the FB uniform+bursty
// interference study.
func BenchmarkFigure10FBBackground(b *testing.B) { benchArtifact(b, "fig10") }

// BenchmarkSingleRunCR measures one simulation cell (CR, rand-min) — the
// unit of work every figure is built from.
func BenchmarkSingleRunCR(b *testing.B) {
	tr, err := CRTrace(CRConfig{Ranks: 64, MessageBytes: 24 * 1024})
	if err != nil {
		b.Fatal(err)
	}
	var events uint64
	for i := 0; i < b.N; i++ {
		cfg := MiniConfig(tr, Cell{Placement: RandomNode, Routing: Minimal}, int64(i))
		res, err := Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		events += res.Events
	}
	b.ReportMetric(float64(events)/float64(b.N), "sim_events/op")
}

// BenchmarkSingleRunAdaptive measures the adaptive-routing variant, whose
// route choice does extra candidate scoring per packet.
func BenchmarkSingleRunAdaptive(b *testing.B) {
	tr, err := CRTrace(CRConfig{Ranks: 64, MessageBytes: 24 * 1024})
	if err != nil {
		b.Fatal(err)
	}
	var events uint64
	for i := 0; i < b.N; i++ {
		cfg := MiniConfig(tr, Cell{Placement: RandomNode, Routing: Adaptive}, int64(i))
		res, err := Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		events += res.Events
	}
	b.ReportMetric(float64(events)/float64(b.N), "sim_events/op")
}
