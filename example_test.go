package dragonfly_test

import (
	"fmt"

	"dragonfly"
)

// ExampleRun simulates the crystal router on the small machine under
// random-node placement with minimal routing and reports completion.
func ExampleRun() {
	tr, err := dragonfly.CRTrace(dragonfly.CRConfig{Ranks: 32, MessageBytes: 16 * 1024})
	if err != nil {
		panic(err)
	}
	cfg := dragonfly.MiniConfig(tr, dragonfly.Cell{
		Placement: dragonfly.RandomNode,
		Routing:   dragonfly.Minimal,
	}, 1)
	res, err := dragonfly.Run(cfg)
	if err != nil {
		panic(err)
	}
	fmt.Println("completed:", res.Completed)
	fmt.Println("ranks measured:", len(res.CommTimes))
	// Output:
	// completed: true
	// ranks measured: 32
}

// ExampleRunMulti co-runs two applications sharing the machine.
func ExampleRunMulti() {
	amg, _ := dragonfly.AMGTrace(dragonfly.AMGConfig{
		X: 3, Y: 3, Z: 3, Cycles: 1, Levels: 2, PeakBytes: 8 * 1024,
	})
	cr, _ := dragonfly.CRTrace(dragonfly.CRConfig{Ranks: 16, MessageBytes: 16 * 1024})
	res, err := dragonfly.RunMulti(dragonfly.MultiConfig{
		Topology: dragonfly.MiniTopology(),
		Params:   dragonfly.DefaultParams(),
		Routing:  dragonfly.Adaptive,
		Seed:     1,
		Jobs: []dragonfly.JobSpec{
			{Name: "AMG", Trace: amg, Placement: dragonfly.Contiguous},
			{Name: "CR", Trace: cr, Placement: dragonfly.RandomNode},
		},
	})
	if err != nil {
		panic(err)
	}
	fmt.Println("all jobs completed:", res.Completed())
	fmt.Println("jobs:", len(res.Jobs))
	// Output:
	// all jobs completed: true
	// jobs: 2
}

// ExampleCell_Name shows the paper's Table I naming scheme.
func ExampleCell_Name() {
	cell := dragonfly.Cell{Placement: dragonfly.RandomChassis, Routing: dragonfly.Adaptive}
	fmt.Println(cell.Name())
	// Output: chas-adp
}

// ExampleNewTopology prints the paper's machine inventory (Figure 1).
func ExampleNewTopology() {
	topo, err := dragonfly.NewTopology(dragonfly.Theta())
	if err != nil {
		panic(err)
	}
	fmt.Println(topo.NumGroups(), "groups,", topo.NumRouters(), "routers,", topo.NumNodes(), "nodes")
	// Output: 9 groups, 864 routers, 3456 nodes
}
