// Command dffarm executes sweep jobs against a content-addressed result
// farm: the cross product of the flag lists below defines the job's cells,
// each cell's full run configuration is hashed into a content address, and
// the farm store under -cache banks every simulated result. Re-running a
// job (or any overlapping job) replays banked cells byte-identically
// instead of re-simulating, a corrupt or truncated entry silently degrades
// to a re-run, and -shard I/N splits one job across N cooperating
// processes sharing the store. -corpus flattens the completed sweep into
// one CSV of (configuration features, measured targets) per cell — the
// training corpus for a future surrogate model.
//
// The flag vocabulary is dfsweep's, and cells are built by the experiments
// runner itself, so a store populated by dffarm also serves farm-backed
// experiment reruns (dfsweep over the same scale/seed) and vice versa.
//
// Examples:
//
//	dffarm -cache farm/ -apps CR -placements cont,rand -routings min,adp
//	dffarm -cache farm/ -apps CR,FB,AMG -seeds 1,2,3 -corpus corpus.csv
//	dffarm -cache farm/ -apps CR -faults "none;global=0.1;global=0.25" -shard 0/4
//	dffarm -cache farm/ -apps CR -resume -quiet -corpus corpus.csv
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"dragonfly"
	"dragonfly/internal/cliutil"
)

func main() {
	var (
		cacheDir = flag.String("cache", "", "farm store directory (required; created if absent)")
		scale    = flag.String("scale", "quick", "experiment scale: quick or paper")
		topoName = flag.String("topo", "", "machine preset override: theta, mini, dfplus, or dfplus-mini (default: the scale's XC40 machine)")
		apps     = flag.String("apps", "CR", "comma-separated applications: CR, FB, AMG (flat miniapps), RING, TREE, MOE, HALO2D, HALO3D, CKPT (graph generators)")
		placeStr = flag.String("placements", "cont,rand", "comma-separated placement policies: cont, cab, chas, rotr, rand")
		routeStr = flag.String("routings", "min,adp", "comma-separated routing policies: min, adp, qadaptive")
		mapStr   = flag.String("mappings", "identity", "comma-separated task mappings: identity, shuffle, router-packed, group-packed")
		scaleStr = flag.String("msg-scales", "1", "comma-separated message-size multipliers")
		seedStr  = flag.String("seeds", "1", "comma-separated simulation seeds")
		bgStr    = flag.String("backgrounds", "none", "comma-separated interference kinds: none, uniform, bursty (scale-default volumes)")
		faultStr = flag.String("faults", "", "semicolon-separated fault-spec sweep; each element uses the dfsweep -faults grammar, 'none' or empty = healthy fabric")
		faultSd  = flag.Int64("fault-seed", 0, "override every fault spec's seed= clause (0 keeps each spec's own seed)")
		burst    = flag.Int("burst-divisor", 0, "bursty-background volume divisor (0 = scale default)")
		auditOn  = flag.Bool("audit", false, "run every cell under the invariant auditor")
		parallel = flag.Int("parallel", 0, "worker pool (1 = sequential, 0 = NumCPU)")
		shardStr = flag.String("shard", "", "execute shard I/N of the job (e.g. 0/4); cells are split round-robin and other processes run the rest against the same -cache")
		resume   = flag.Bool("resume", false, "report how much of the job the store already banks before running (completion is address-driven, so resuming is always safe)")
		corpus   = flag.String("corpus", "", "write the sweep's training-corpus CSV to this file (other shards' cells are skipped)")
		quiet    = flag.Bool("quiet", false, "suppress per-cell progress lines")
		scrub    = flag.Bool("scrub", false, "verify every store object's integrity, quarantine corrupt entries (the next sweep re-runs them), print the report, and exit")
		retries  = flag.Int("retries", 0, "re-attempts per failing cell before its error stands (0 = fail on first error)")
		jobTmo   = flag.Duration("job-timeout", 0, "wall-clock budget per cell, e.g. 5m (0 = unlimited)")
		quarLim  = flag.Int("quarantine-limit", 0, "poisoned cells tolerated per sweep: a cell failing every attempt is quarantined with diagnostics and the sweep continues, up to this many (0 = first exhausted cell is fatal)")
		chaosStr = flag.String("chaos", "", "inject seeded deterministic faults for resilience testing: comma clauses SITE=PROB (sites store.read, store.write, worker.panic, worker.kill, sim.stall), max=K, seed=N")
		jobEvs   = flag.Uint64("job-events", 0, "override every cell's DES stall-watchdog event budget (0 = the experiment default; part of the cell's content address)")
	)
	flag.Parse()
	if *cacheDir == "" {
		cliutil.Usagef("dffarm", "-cache is required (the farm store directory)")
	}
	shard, numShards, err := cliutil.Shard(*shardStr)
	if err != nil {
		cliutil.Usagef("dffarm", "%v", err)
	}
	if *scrub {
		store, err := dragonfly.OpenFarm(*cacheDir)
		if err != nil {
			fatalf("%v", err)
		}
		rep, err := store.Scrub()
		if err != nil {
			fatalf("scrub: %v", err)
		}
		fmt.Fprintf(os.Stderr, "dffarm: scrub %s: %s\n", *cacheDir, rep)
		return
	}

	// Resolve every sweep axis up front so flag mistakes exit before any
	// simulation starts.
	opts := dragonfly.ExperimentOptions{
		BurstDivisor: *burst,
		Audit:        *auditOn,
	}
	switch *scale {
	case "quick":
		opts.Scale = dragonfly.ScaleQuick
	case "paper":
		opts.Scale = dragonfly.ScalePaper
	default:
		cliutil.Usagef("dffarm", "scale %q: want quick or paper", *scale)
	}
	if *topoName != "" {
		m, err := cliutil.Machine(*topoName, "", "")
		if err != nil {
			cliutil.Usagef("dffarm", "%v", err)
		}
		opts.Machine = m
	}
	placements, err := cliutil.Placements(*placeStr)
	if err != nil {
		cliutil.Usagef("dffarm", "%v", err)
	}
	routings, err := cliutil.Routings(*routeStr)
	if err != nil {
		cliutil.Usagef("dffarm", "%v", err)
	}
	mappings, err := cliutil.Mappings(*mapStr)
	if err != nil {
		cliutil.Usagef("dffarm", "%v", err)
	}
	msgScales, err := cliutil.FloatList("msg-scales", *scaleStr)
	if err != nil {
		cliutil.Usagef("dffarm", "%v", err)
	}
	seeds, err := cliutil.Int64List("seeds", *seedStr)
	if err != nil {
		cliutil.Usagef("dffarm", "%v", err)
	}
	faultSpecs, err := cliutil.FaultSpecs(*faultStr, *faultSd)
	if err != nil {
		cliutil.Usagef("dffarm", "%v", err)
	}
	var bgKinds []string
	for _, s := range strings.Split(*bgStr, ",") {
		if _, _, err := cliutil.Background(s); err != nil {
			cliutil.Usagef("dffarm", "%v", err)
		}
		bgKinds = append(bgKinds, strings.TrimSpace(s))
	}
	appNames, err := cliutil.Apps(*apps)
	if err != nil {
		cliutil.Usagef("dffarm", "%v", err)
	}
	if *retries, err = cliutil.Retries(*retries); err != nil {
		cliutil.Usagef("dffarm", "%v", err)
	}
	if *jobTmo, err = cliutil.JobTimeout(*jobTmo); err != nil {
		cliutil.Usagef("dffarm", "%v", err)
	}
	if *quarLim, err = cliutil.QuarantineLimit(*quarLim); err != nil {
		cliutil.Usagef("dffarm", "%v", err)
	}
	chaosSpec, err := cliutil.ChaosSpec(*chaosStr)
	if err != nil {
		cliutil.Usagef("dffarm", "%v", err)
	}

	// The runner builds each cell's configuration exactly as the experiment
	// harness would (same machine, params, watchdog, interference volumes),
	// so dffarm cells and experiment cells share content addresses. Axes the
	// runner options don't span — per-cell seeds, fault specs, mappings —
	// are overridden on the built config, which is equivalent to a runner
	// constructed with those options.
	runner := dragonfly.NewRunner(opts)
	var cfgs []dragonfly.Config
	for _, app := range appNames {
		for _, bgName := range bgKinds {
			kind, on, _ := cliutil.Background(bgName)
			var bg *dragonfly.BackgroundConfig
			if on {
				b, err := runner.Background(kind, app)
				if err != nil {
					fatalf("%v", err)
				}
				bg = b
			}
			for _, pl := range placements {
				for _, rt := range routings {
					for _, mp := range mappings {
						for _, ms := range msgScales {
							for _, seed := range seeds {
								for _, fs := range faultSpecs {
									cfg, err := runner.CellConfig(app, dragonfly.Cell{Placement: pl, Routing: rt}, ms, bg)
									if err != nil {
										fatalf("%v", err)
									}
									cfg.Mapping = mp
									cfg.Seed = seed
									cfg.Faults = fs
									if *jobEvs > 0 {
										cfg.WatchdogEvents = *jobEvs
									}
									cfgs = append(cfgs, cfg)
								}
							}
						}
					}
				}
			}
		}
	}
	if len(cfgs) == 0 {
		cliutil.Usagef("dffarm", "the sweep grammar produced no cells")
	}

	store, err := dragonfly.OpenFarm(*cacheDir)
	if err != nil {
		fatalf("%v", err)
	}
	addrs := make([]string, len(cfgs))
	for i, cfg := range cfgs {
		if addrs[i], err = dragonfly.ConfigAddress(cfg); err != nil {
			fatalf("cell %d: %v", i, err)
		}
	}
	job := dragonfly.FarmJobID(addrs)
	spec := fmt.Sprintf("apps=%s scale=%s topo=%s placements=%s routings=%s mappings=%s msg-scales=%s seeds=%s backgrounds=%s faults=%q",
		*apps, *scale, *topoName, *placeStr, *routeStr, *mapStr, *scaleStr, *seedStr, *bgStr, *faultStr)
	banked := store.CountCached(addrs)
	if *resume {
		if m, err := store.LoadManifest(job); err == nil {
			fmt.Fprintf(os.Stderr, "dffarm: resuming job %s (%s): previously %d/%d done\n", job, m.Spec, m.Done, m.Cells)
		}
	}
	fmt.Fprintf(os.Stderr, "dffarm: job %s: %d cells (%d banked), shard %d/%d, cache %s\n",
		job, len(cfgs), banked, shard, numShards, *cacheDir)

	start := time.Now()
	fopts := dragonfly.FarmOptions{
		Parallel:        *parallel,
		Shard:           shard,
		NumShards:       numShards,
		Retries:         *retries,
		JobTimeout:      *jobTmo,
		QuarantineLimit: *quarLim,
		Chaos:           dragonfly.NewChaosInjector(chaosSpec),
	}
	if !*quiet {
		fopts.Progress = func(ev dragonfly.FarmProgress) {
			kind := "miss"
			switch {
			case ev.Err != nil:
				kind = "FAIL"
			case ev.Hit:
				kind = "hit "
			}
			elapsed := time.Since(start)
			eta := time.Duration(float64(elapsed) / float64(ev.Done) * float64(ev.Total-ev.Done)).Round(time.Second)
			fmt.Fprintf(os.Stderr, "dffarm: [%d/%d] %s %.12s cell=%v elapsed=%v eta=%v\n",
				ev.Done, ev.Total, kind, ev.Addr, ev.Elapsed.Round(time.Millisecond),
				elapsed.Round(time.Second), eta)
		}
	}
	results, stats, runErr := dragonfly.NewFarm(store, fopts).Run(cfgs)

	manifest := &dragonfly.FarmManifest{Job: job, Spec: spec, Cells: len(cfgs), Done: store.CountCached(addrs)}
	if err := store.SaveManifest(manifest); err != nil {
		fmt.Fprintf(os.Stderr, "dffarm: manifest not saved: %v\n", err)
	}
	fmt.Fprintf(os.Stderr, "dffarm: %d/%d cells done (this shard: %d hits, %d simulated, %d corrupt re-run, %d retried, %d quarantined, %d uncacheable, %d errors) in %v\n",
		manifest.Done, manifest.Cells, stats.Hits, stats.Misses, stats.Corrupt, stats.Retried, stats.Quarantined, stats.Uncacheable, stats.Errors,
		time.Since(start).Round(time.Millisecond))
	if inj := fopts.Chaos.Injected(); inj > 0 {
		fmt.Fprintf(os.Stderr, "dffarm: chaos: %d faults injected (%s)\n", inj, chaosSpec)
	}
	// Quarantined cells are a flagged partial result, never a silent
	// truncation: name each poisoned cell and where its diagnostics live.
	if stats.Quarantined > 0 {
		fmt.Fprintf(os.Stderr, "dffarm: WARNING: %d cells quarantined after exhausting %d attempts each; the sweep's outputs omit them\n",
			stats.Quarantined, 1+*retries)
		if recs, err := store.QuarantinedJobs(); err == nil {
			for _, rec := range recs {
				last := ""
				if n := len(rec.Errors); n > 0 {
					last = rec.Errors[n-1]
				}
				fmt.Fprintf(os.Stderr, "dffarm:   quarantined %s (%d attempts): %s\n", rec.Name, rec.Attempts, last)
			}
		}
		fmt.Fprintf(os.Stderr, "dffarm: diagnostics under %s/quarantine/jobs; fix the cause and re-run (addresses re-run automatically)\n", *cacheDir)
	}
	if runErr != nil {
		fatalf("%v", runErr)
	}

	if *corpus != "" {
		f, err := os.Create(*corpus)
		if err != nil {
			fatalf("%v", err)
		}
		rows, skipped, err := dragonfly.WriteFarmCorpus(f, cfgs, results)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fatalf("corpus: %v", err)
		}
		fmt.Fprintf(os.Stderr, "dffarm: wrote %d corpus rows to %s (%d cells on other shards)\n", rows, *corpus, skipped)
	}
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "dffarm: "+format+"\n", args...)
	os.Exit(1)
}
