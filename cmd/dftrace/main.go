// Command dftrace generates, inspects, and converts application workloads:
// the flat communication traces standing in for the paper's DUMPI traces of
// the CR, FB, and AMG miniapps, and the dependency-graph collective/storage
// workloads (RING, TREE, MOE, HALO2D, HALO3D, CKPT). Summaries are
// graph-aware for both: a flat trace's digest includes its lowered
// dependency graph (node/edge counts, critical-path bytes, max fan-out).
//
// Examples:
//
//	dftrace -app CR -summary
//	dftrace -app FB -out fb.trace
//	dftrace -in fb.trace -summary
//	dftrace -app AMG -matrix 12
//	dftrace -app RING -summary
//	dftrace -app MOE -out moe.graph && dftrace -graph-in moe.graph -matrix 8
package main

import (
	"flag"
	"fmt"
	"os"

	"dragonfly"
	"dragonfly/internal/cliutil"
	"dragonfly/internal/trace"
)

func main() {
	var (
		app     = flag.String("app", "", "generate a workload: CR, FB, AMG (flat traces), or RING, TREE, MOE, HALO2D, HALO3D, CKPT (dependency graphs; default sizes)")
		in      = flag.String("in", "", "read a binary trace file instead of generating")
		textIn  = flag.String("text-in", "", "read a text-format (DUMPI-flavored) trace file")
		graphIn = flag.String("graph-in", "", "read a binary dependency-graph file instead of generating")
		out     = flag.String("out", "", "write the workload to this file (binary format; graph apps write graph files)")
		textOut = flag.String("text-out", "", "write the trace to this file (text format; flat traces only)")
		summary = flag.Bool("summary", false, "print the JSON digest (flat traces include their lowered graph's stats)")
		matrix  = flag.Int("matrix", 0, "print the communication matrix binned to NxN (MB per bin)")
	)
	flag.Parse()

	if *matrix < 0 {
		cliutil.Usagef("dftrace", "matrix=%d: want a non-negative bin count", *matrix)
	}
	var tr *dragonfly.Trace
	var gr *dragonfly.Graph
	var err error
	switch {
	case *in != "":
		tr, err = trace.ReadFile(*in)
	case *textIn != "":
		tr, err = readText(*textIn)
	case *graphIn != "":
		gr, err = trace.ReadGraphFile(*graphIn)
	case *app != "":
		tr, gr, err = generate(*app)
		if err != nil {
			cliutil.Usagef("dftrace", "%v", err)
		}
	default:
		cliutil.Usagef("dftrace", "specify -app to generate, or -in/-text-in/-graph-in to read a workload")
	}
	if err != nil {
		fatalf("%v", err)
	}

	if gr != nil {
		runGraph(gr, *out, *textOut, *summary, *matrix)
		return
	}
	if *out != "" {
		if err := trace.WriteFile(*out, tr); err != nil {
			fatalf("write %s: %v", *out, err)
		}
		fmt.Fprintf(os.Stderr, "dftrace: wrote %s (%d ranks, %d phases)\n", *out, tr.NumRanks(), tr.NumPhases())
	}
	if *textOut != "" {
		if err := writeText(*textOut, tr); err != nil {
			fatalf("write %s: %v", *textOut, err)
		}
		fmt.Fprintf(os.Stderr, "dftrace: wrote %s (text format)\n", *textOut)
	}
	if *summary || (*out == "" && *textOut == "" && *matrix == 0) {
		if err := trace.WriteSummaryJSON(os.Stdout, tr); err != nil {
			fatalf("%v", err)
		}
	}
	if *matrix > 0 {
		printMatrix(tr.Matrix(*matrix))
	}
}

// runGraph handles the dependency-graph output modes.
func runGraph(g *dragonfly.Graph, out, textOut string, summary bool, matrix int) {
	if textOut != "" {
		fatalf("-text-out applies to flat traces only (graphs have no DUMPI text form)")
	}
	if out != "" {
		if err := trace.WriteGraphFile(out, g); err != nil {
			fatalf("write %s: %v", out, err)
		}
		fmt.Fprintf(os.Stderr, "dftrace: wrote %s (%d ranks, %d graph nodes)\n", out, g.NumRanks(), g.NumNodes())
	}
	if summary || (out == "" && matrix == 0) {
		if err := trace.WriteGraphSummaryJSON(os.Stdout, g); err != nil {
			fatalf("%v", err)
		}
	}
	if matrix > 0 {
		printMatrix(g.Matrix(matrix))
	}
}

// generate builds the named application at its default size: flat miniapps
// return a trace, graph generators a dependency graph.
func generate(app string) (*dragonfly.Trace, *dragonfly.Graph, error) {
	name, err := dragonfly.ParseApp(app)
	if err != nil {
		return nil, nil, err
	}
	if dragonfly.IsGraphApp(name) {
		g, err := dragonfly.DefaultGraphApp(name)
		return nil, g, err
	}
	var tr *dragonfly.Trace
	switch name {
	case "CR":
		tr, err = dragonfly.CRTrace(dragonfly.DefaultCR())
	case "FB":
		tr, err = dragonfly.FBTrace(dragonfly.DefaultFB())
	case "AMG":
		tr, err = dragonfly.AMGTrace(dragonfly.DefaultAMG())
	default:
		err = fmt.Errorf("unknown application %q", name)
	}
	return tr, nil, err
}

func printMatrix(m [][]float64) {
	const MB = 1024 * 1024
	fmt.Printf("communication matrix (%dx%d bins, MB per bin)\n", len(m), len(m))
	for _, row := range m {
		for j, v := range row {
			if j > 0 {
				fmt.Print(" ")
			}
			fmt.Printf("%7.2f", v/MB)
		}
		fmt.Println()
	}
}

func readText(path string) (*dragonfly.Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return trace.ParseText(f)
}

func writeText(path string, tr *dragonfly.Trace) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := trace.WriteText(f, tr); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "dftrace: "+format+"\n", args...)
	os.Exit(1)
}
