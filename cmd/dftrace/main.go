// Command dftrace generates, inspects, and converts application
// communication traces — the synthetic stand-ins for the paper's DUMPI
// traces of the CR, FB, and AMG miniapps.
//
// Examples:
//
//	dftrace -app CR -summary
//	dftrace -app FB -out fb.trace
//	dftrace -in fb.trace -summary
//	dftrace -app AMG -matrix 12
package main

import (
	"flag"
	"fmt"
	"os"

	"dragonfly"
	"dragonfly/internal/cliutil"
	"dragonfly/internal/trace"
)

func main() {
	var (
		app     = flag.String("app", "", "generate a trace: CR, FB, or AMG (paper sizes)")
		in      = flag.String("in", "", "read a binary trace file instead of generating")
		textIn  = flag.String("text-in", "", "read a text-format (DUMPI-flavored) trace file")
		out     = flag.String("out", "", "write the trace to this file (binary format)")
		textOut = flag.String("text-out", "", "write the trace to this file (text format)")
		summary = flag.Bool("summary", false, "print the JSON digest (ranks, phases, loads)")
		matrix  = flag.Int("matrix", 0, "print the communication matrix binned to NxN (MB per bin)")
	)
	flag.Parse()

	if *matrix < 0 {
		cliutil.Usagef("dftrace", "matrix=%d: want a non-negative bin count", *matrix)
	}
	var tr *dragonfly.Trace
	var err error
	switch {
	case *in != "":
		tr, err = trace.ReadFile(*in)
	case *textIn != "":
		tr, err = readText(*textIn)
	case *app != "":
		tr, err = generate(*app)
		if err != nil {
			cliutil.Usagef("dftrace", "%v", err)
		}
	default:
		cliutil.Usagef("dftrace", "specify -app to generate, or -in/-text-in to read a trace")
	}
	if err != nil {
		fatalf("%v", err)
	}

	if *out != "" {
		if err := trace.WriteFile(*out, tr); err != nil {
			fatalf("write %s: %v", *out, err)
		}
		fmt.Fprintf(os.Stderr, "dftrace: wrote %s (%d ranks, %d phases)\n", *out, tr.NumRanks(), tr.NumPhases())
	}
	if *textOut != "" {
		if err := writeText(*textOut, tr); err != nil {
			fatalf("write %s: %v", *textOut, err)
		}
		fmt.Fprintf(os.Stderr, "dftrace: wrote %s (text format)\n", *textOut)
	}
	if *summary || (*out == "" && *textOut == "" && *matrix == 0) {
		if err := trace.WriteSummaryJSON(os.Stdout, tr); err != nil {
			fatalf("%v", err)
		}
	}
	if *matrix > 0 {
		printMatrix(tr, *matrix)
	}
}

func generate(app string) (*dragonfly.Trace, error) {
	switch app {
	case "CR", "cr":
		return dragonfly.CRTrace(dragonfly.DefaultCR())
	case "FB", "fb":
		return dragonfly.FBTrace(dragonfly.DefaultFB())
	case "AMG", "amg":
		return dragonfly.AMGTrace(dragonfly.DefaultAMG())
	}
	return nil, fmt.Errorf("unknown application %q (want CR, FB, or AMG)", app)
}

func printMatrix(tr *dragonfly.Trace, bins int) {
	m := tr.Matrix(bins)
	const MB = 1024 * 1024
	fmt.Printf("communication matrix (%dx%d bins, MB per bin)\n", len(m), len(m))
	for _, row := range m {
		for j, v := range row {
			if j > 0 {
				fmt.Print(" ")
			}
			fmt.Printf("%7.2f", v/MB)
		}
		fmt.Println()
	}
}

func readText(path string) (*dragonfly.Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return trace.ParseText(f)
}

func writeText(path string, tr *dragonfly.Trace) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := trace.WriteText(f, tr); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "dftrace: "+format+"\n", args...)
	os.Exit(1)
}
