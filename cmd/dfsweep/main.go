// Command dfsweep regenerates the paper's evaluation artifacts — Tables I
// and II and Figures 2 through 10 — printing each as plain-text tables and
// optionally dumping CSVs.
//
// Examples:
//
//	dfsweep -exp all -scale quick
//	dfsweep -exp fig3,fig4 -scale paper -data out/
//	dfsweep -exp fig7 -seed 3
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"dragonfly"
	"dragonfly/internal/cliutil"
	"dragonfly/internal/profiling"
)

func main() {
	var (
		exps = flag.String("exp", "all", "comma-separated experiment ids, or 'all' ("+
			strings.Join(dragonfly.ExperimentIDs(), ", ")+
			"; extensions: "+strings.Join(dragonfly.ExtensionExperimentIDs(), ", ")+")")
		scale    = flag.String("scale", "quick", "experiment scale: quick or paper")
		topoName = flag.String("topo", "", "machine preset override: theta, mini, dfplus, or dfplus-mini (default: the scale's XC40 machine; dfplus* runs are extensions beyond the paper)")
		seed     = flag.Int64("seed", 1, "random seed")
		dataDir  = flag.String("data", "", "directory for CSV output (omit to skip)")
		quiet    = flag.Bool("quiet", false, "suppress per-run progress lines")
		burst    = flag.Int("burst-divisor", 0, "bursty-background volume divisor (0 = scale default)")
		parallel = flag.Int("parallel", 0, "worker pool for independent simulations (1 = sequential, 0 = NumCPU); reports are byte-identical at every setting")
		auditOn  = flag.Bool("audit", false, "run every simulation under the invariant auditor (fails loudly on any flow-control, conservation, or routing violation)")
		faultStr = flag.String("faults", "", "degrade every simulation's fabric (extension beyond the paper): comma clauses global=FRAC, local=FRAC, routers=K, router=ID, link=A-B, group=G, bundle=G1-G2, flap=link:A-B@MTBF:MTTR or router:ID@MTBF:MTTR, until=DUR, fail|repair=TARGET@DUR, seed=N; figr/figq/figf drive their own fault specs and ignore this")
		faultSd  = flag.Int64("fault-seed", 0, "override the fault spec's seed= clause (0 keeps the spec's own seed)")
		farmDir  = flag.String("farm-cache", "", "content-addressed result farm directory (see dffarm): banked cells replay instead of re-simulating, fresh cells are banked; reports are byte-identical either way")
		retries  = flag.Int("retries", 0, "re-attempts per failing farm-backed cell before its error stands (0 = fail fast; needs -farm-cache)")
		jobTmo   = flag.Duration("job-timeout", 0, "wall-clock budget per farm-backed cell, e.g. 5m (0 = unlimited; needs -farm-cache)")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf  = flag.String("memprofile", "", "write a heap profile to this file at exit")
	)
	flag.Parse()

	stopProf, err := profiling.Start(*cpuProf, *memProf)
	if err != nil {
		fatalf("%v", err)
	}
	defer func() {
		if err := stopProf(); err != nil {
			fatalf("%v", err)
		}
	}()

	opts := dragonfly.ExperimentOptions{
		Seed:         *seed,
		DataDir:      *dataDir,
		BurstDivisor: *burst,
		Parallel:     *parallel,
		Audit:        *auditOn,
	}
	switch *scale {
	case "quick":
		opts.Scale = dragonfly.ScaleQuick
	case "paper":
		opts.Scale = dragonfly.ScalePaper
	default:
		cliutil.Usagef("dfsweep", "scale %q: want quick or paper", *scale)
	}
	if *topoName != "" {
		m, err := cliutil.Machine(*topoName, "", "")
		if err != nil {
			cliutil.Usagef("dfsweep", "%v", err)
		}
		opts.Machine = m
	}
	fspec, err := cliutil.FaultSpec(*faultStr, *faultSd)
	if err != nil {
		cliutil.Usagef("dfsweep", "%v", err)
	}
	opts.Faults = fspec
	if opts.Retries, err = cliutil.Retries(*retries); err != nil {
		cliutil.Usagef("dfsweep", "%v", err)
	}
	if opts.JobTimeout, err = cliutil.JobTimeout(*jobTmo); err != nil {
		cliutil.Usagef("dfsweep", "%v", err)
	}
	if *farmDir != "" {
		store, err := dragonfly.OpenFarm(*farmDir)
		if err != nil {
			fatalf("%v", err)
		}
		opts.Farm = store
	}
	if !*quiet {
		opts.Progress = os.Stderr
	}

	known := map[string]bool{}
	for _, id := range append(dragonfly.ExperimentIDs(), dragonfly.ExtensionExperimentIDs()...) {
		known[id] = true
	}
	ids := dragonfly.ExperimentIDs()
	if *exps != "all" {
		ids = strings.Split(*exps, ",")
		for i, id := range ids {
			ids[i] = strings.TrimSpace(id)
			if !known[ids[i]] {
				cliutil.Usagef("dfsweep", "experiment %q: want %s, or all",
					ids[i], strings.Join(append(dragonfly.ExperimentIDs(), dragonfly.ExtensionExperimentIDs()...), ", "))
			}
		}
	}

	runner := dragonfly.NewRunner(opts)
	for _, id := range ids {
		id = strings.TrimSpace(id)
		start := time.Now()
		rep, err := runner.Run(id)
		if err != nil {
			fatalf("%s: %v", id, err)
		}
		if err := rep.WriteText(os.Stdout); err != nil {
			fatalf("write: %v", err)
		}
		fmt.Fprintf(os.Stderr, "dfsweep: %s done in %v\n", id, time.Since(start).Round(time.Millisecond))
	}
	if *farmDir != "" {
		st := runner.FarmStats()
		fmt.Fprintf(os.Stderr, "dfsweep: farm %s: %d hits, %d simulated, %d corrupt re-run\n",
			*farmDir, st.Hits, st.Misses, st.Corrupt)
	}
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "dfsweep: "+format+"\n", args...)
	os.Exit(1)
}
