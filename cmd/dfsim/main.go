// Command dfsim runs a single dragonfly simulation cell: one application,
// one placement policy, one routing mechanism, optionally with background
// traffic, and prints the paper's metrics.
//
// Comma-separated placement/routing lists sweep the cross product of cells;
// -parallel fans the independent simulations across a worker pool while the
// results print in cell order, identical to a sequential sweep.
//
// Examples:
//
//	dfsim -describe
//	dfsim -app CR -placement rand -routing min
//	dfsim -app AMG -placement cont -routing adp -background uniform
//	dfsim -app FB -machine mini -scale 0.5 -seed 7
//	dfsim -app CR -placement cont,rand -routing min,adp -parallel 4
//	dfsim -app CR -routing adp -faults global=0.25,seed=3 -audit
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"dragonfly"
	"dragonfly/internal/ascii"
	"dragonfly/internal/cliutil"
	"dragonfly/internal/profiling"
)

func main() {
	var (
		machine    = flag.String("machine", "", "deprecated alias of -topo")
		topoName   = flag.String("topo", "", "machine preset: theta, mini, dfplus, or dfplus-mini (default theta; dfplus* are extensions beyond the paper)")
		app        = flag.String("app", "CR", "application: CR, FB, AMG (paper miniapps), or RING, TREE, MOE, HALO2D, HALO3D, CKPT (dependency-graph generators)")
		place      = flag.String("placement", "cont", "placement (comma-separated sweeps): cont, cab, chas, rotr, rand")
		route      = flag.String("routing", "min", "routing (comma-separated sweeps): min, adp, or qadaptive")
		parallel   = flag.Int("parallel", 0, "worker pool for swept cells (1 = sequential, 0 = NumCPU)")
		mapName    = flag.String("mapping", "identity", "task mapping: identity, shuffle, router-packed, group-packed")
		msgScale   = flag.Float64("scale", 1, "message-size scale factor (sensitivity study)")
		seed       = flag.Int64("seed", 1, "random seed")
		background = flag.String("background", "none", "background traffic: none, uniform, bursty")
		bgBytes    = flag.Int64("bg-bytes", 16*1024, "background message size in bytes")
		bgInterval = flag.Duration("bg-interval", 0, "background interval (default 50us uniform, 500us bursty)")
		bgFanOut   = flag.Int("bg-fanout", 64, "bursty background fan-out per node (0 = all peers)")
		faultSpec  = flag.String("faults", "", "degrade the fabric (extension beyond the paper): comma clauses global=FRAC, local=FRAC, routers=K, router=ID, link=A-B, fail|repair=link:A-B@DUR or router:ID@DUR, seed=N")
		faultSeed  = flag.Int64("fault-seed", 0, "override the fault spec's seed= clause (0 keeps the spec's own seed)")
		wdEvents   = flag.Uint64("watchdog-events", 10_000_000_000, "DES stall watchdog: fail with a queue diagnostic past this many events (0 disables)")
		describe   = flag.Bool("describe", false, "print the machine inventory (Figure 1) and exit")
		plot       = flag.Bool("plot", false, "render ASCII comm-time box plot and channel-traffic CDFs")
		auditOn    = flag.Bool("audit", false, "run under the invariant auditor (fails loudly on any flow-control, conservation, or routing violation)")
		cpuProf    = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf    = flag.String("memprofile", "", "write a heap profile to this file at exit")
	)
	flag.Parse()

	stopProf, err := profiling.Start(*cpuProf, *memProf)
	if err != nil {
		fatalf("%v", err)
	}
	defer func() {
		if err := stopProf(); err != nil {
			fatalf("%v", err)
		}
	}()

	m, err := cliutil.Machine(*topoName, *machine, "theta")
	if err != nil {
		cliutil.Usagef("dfsim", "%v", err)
	}
	ic, err := m.Build()
	if err != nil {
		fatalf("%v", err)
	}

	if *describe {
		fmt.Print(ic.Describe())
		return
	}

	// Small machines get proportionally shrunk application workloads.
	appName, err := cliutil.App(*app)
	if err != nil {
		cliutil.Usagef("dfsim", "%v", err)
	}
	tr, gr, err := appWorkload(appName, ic.NumNodes() <= 256)
	if err != nil {
		cliutil.Usagef("dfsim", "%v", err)
	}
	pols, err := cliutil.Placements(*place)
	if err != nil {
		cliutil.Usagef("dfsim", "%v", err)
	}
	mechs, err := cliutil.Routings(*route)
	if err != nil {
		cliutil.Usagef("dfsim", "%v", err)
	}
	mapPol, err := cliutil.Mapping(*mapName)
	if err != nil {
		cliutil.Usagef("dfsim", "%v", err)
	}
	fspec, err := cliutil.FaultSpec(*faultSpec, *faultSeed)
	if err != nil {
		cliutil.Usagef("dfsim", "%v", err)
	}
	bgKind, bgOn, err := cliutil.Background(*background)
	if err != nil {
		cliutil.Usagef("dfsim", "%v", err)
	}

	var cfgs []dragonfly.Config
	for _, mech := range mechs {
		for _, pol := range pols {
			cfg := dragonfly.Config{
				Topology:       m,
				Params:         dragonfly.DefaultParams(),
				Placement:      pol,
				Routing:        mech,
				Mapping:        mapPol,
				Trace:          tr,
				Graph:          gr,
				MsgScale:       *msgScale,
				Seed:           *seed,
				Audit:          *auditOn,
				Faults:         fspec,
				WatchdogEvents: *wdEvents,
			}
			if bgOn {
				interval := 50 * dragonfly.Microsecond
				fan := 0
				if bgKind == dragonfly.Bursty {
					interval = 500 * dragonfly.Microsecond
					fan = *bgFanOut
				}
				if *bgInterval > 0 {
					interval = dragonfly.Time(bgInterval.Nanoseconds())
				}
				cfg.Background = &dragonfly.BackgroundConfig{
					Kind: bgKind, MsgBytes: *bgBytes, Interval: interval, FanOut: fan,
				}
				cfg.MaxSimTime = dragonfly.Second
			}
			cfgs = append(cfgs, cfg)
		}
	}

	results, err := dragonfly.RunBatch(cfgs, *parallel)
	if err != nil {
		fatalf("%v", err)
	}
	for i, res := range results {
		if i > 0 {
			fmt.Println()
		}
		printResult(res, appName)
		if *plot {
			printPlots(res)
		}
	}
}

func printPlots(res *dragonfly.Result) {
	fmt.Printf("\ncommunication time per rank (ms):\n%s",
		ascii.BoxPlot([]ascii.NamedValues{{Name: res.Config.Name(), Values: res.CommTimesMs()}}, 60))
	fmt.Printf("\nchannel traffic CDF (MiB per channel):\n%s",
		ascii.CDFPlot(map[string][]float64{
			"local":  res.LocalTraffic(false),
			"global": res.GlobalTraffic(false),
		}, 60, 12))
}

// appWorkload builds the named application at full or mini size: flat
// miniapps return a trace, graph generators return a dependency graph;
// exactly one of the two is non-nil.
func appWorkload(name string, mini bool) (*dragonfly.Trace, *dragonfly.Graph, error) {
	if dragonfly.IsGraphApp(name) {
		g, err := appGraph(name, mini)
		return nil, g, err
	}
	tr, err := appTrace(name, mini)
	return tr, nil, err
}

func appTrace(name string, mini bool) (*dragonfly.Trace, error) {
	switch name {
	case "CR":
		cfg := dragonfly.DefaultCR()
		if mini {
			cfg = dragonfly.CRConfig{Ranks: 32, MessageBytes: 16 * 1024}
		}
		return dragonfly.CRTrace(cfg)
	case "FB":
		cfg := dragonfly.DefaultFB()
		if mini {
			cfg = dragonfly.FBConfig{X: 3, Y: 3, Z: 3, Iterations: 2,
				MinBytes: 4 * 1024, MaxBytes: 64 * 1024, FarPartners: 1, FarFraction: 0.1, Seed: 1}
		}
		return dragonfly.FBTrace(cfg)
	case "AMG":
		cfg := dragonfly.DefaultAMG()
		if mini {
			cfg = dragonfly.AMGConfig{X: 3, Y: 3, Z: 3, Cycles: 3, Levels: 3, PeakBytes: 16 * 1024}
		}
		return dragonfly.AMGTrace(cfg)
	}
	return nil, fmt.Errorf("unknown application %q (want CR, FB, or AMG)", name)
}

func appGraph(name string, mini bool) (*dragonfly.Graph, error) {
	if !mini {
		return dragonfly.DefaultGraphApp(name)
	}
	const kb = 1024
	switch name {
	case "RING":
		return dragonfly.RingAllReduceGraph(dragonfly.RingAllReduceConfig{Ranks: 16, Bytes: 64 * kb, Rounds: 1})
	case "TREE":
		return dragonfly.TreeAllReduceGraph(dragonfly.TreeAllReduceConfig{Ranks: 16, Bytes: 32 * kb, Rounds: 2})
	case "MOE":
		return dragonfly.MoEAllToAllGraph(dragonfly.MoEAllToAllConfig{Ranks: 16, Bytes: 16 * kb, Rounds: 1, Window: 4})
	case "HALO2D":
		return dragonfly.HaloGraph(dragonfly.HaloConfig{X: 4, Y: 4, Bytes: 16 * kb, Rounds: 2})
	case "HALO3D":
		return dragonfly.HaloGraph(dragonfly.HaloConfig{X: 3, Y: 3, Z: 3, Bytes: 8 * kb, Rounds: 2})
	case "CKPT":
		return dragonfly.CheckpointGraph(dragonfly.CheckpointConfig{
			Clients: 12, Servers: 4, Bytes: 256 * kb, Rounds: 1, Delay: 20 * dragonfly.Microsecond,
		})
	}
	return nil, fmt.Errorf("unknown graph application %q", name)
}

func printResult(res *dragonfly.Result, app string) {
	fmt.Printf("%s under %s (seed %d)\n", app, res.Config.Name(), res.Config.Seed)
	fmt.Printf("  completed:     %v\n", res.Completed)
	fmt.Printf("  simulated:     %v over %d events\n", res.Duration, res.Events)

	times := res.CommTimesMs()
	sort.Float64s(times)
	q := func(f float64) float64 { return times[int(f*float64(len(times)-1))] }
	fmt.Printf("  comm time ms:  min=%.4g q1=%.4g med=%.4g q3=%.4g max=%.4g\n",
		times[0], q(0.25), q(0.5), q(0.75), times[len(times)-1])

	var hops float64
	for _, h := range res.AvgHops {
		hops += h
	}
	fmt.Printf("  avg hops:      %.3f (mean over %d ranks)\n", hops/float64(len(res.AvgHops)), len(res.AvgHops))

	sumMax := func(vals []float64) (sum, max float64) {
		for _, v := range vals {
			sum += v
			if v > max {
				max = v
			}
		}
		return
	}
	lt, ltMax := sumMax(res.LocalTraffic(false))
	gt, gtMax := sumMax(res.GlobalTraffic(false))
	ls, lsMax := sumMax(res.LocalSaturation(false))
	gs, gsMax := sumMax(res.GlobalSaturation(false))
	fmt.Printf("  local chans:   %.1f MiB total, %.2f MiB max; saturation %.4g ms total, %.4g ms max\n", lt, ltMax, ls, lsMax)
	fmt.Printf("  global chans:  %.1f MiB total, %.2f MiB max; saturation %.4g ms total, %.4g ms max\n", gt, gtMax, gs, gsMax)
	if res.BackgroundPeakLoad > 0 {
		fmt.Printf("  bg peak load:  %.2f MiB per interval\n", float64(res.BackgroundPeakLoad)/(1024*1024))
	}
	if res.DroppedPackets > 0 || res.RouteErr != nil {
		fmt.Printf("  dropped:       %d packets, %d bytes (degraded fabric)\n",
			res.DroppedPackets, res.DroppedBytes)
	}
	if res.RouteErr != nil {
		fmt.Printf("  unreachable:   %v\n", res.RouteErr)
	}
	if res.Audit != nil {
		s := res.Audit.Stats
		fmt.Printf("  audit:         clean (%d events, %d credit ops, %d routes, %d messages checked)\n",
			s.Events, s.Reserves+s.Releases, s.Routes, s.Messages)
	}
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "dfsim: "+format+"\n", args...)
	os.Exit(1)
}
