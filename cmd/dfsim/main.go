// Command dfsim runs a single dragonfly simulation cell: one application,
// one placement policy, one routing mechanism, optionally with background
// traffic, and prints the paper's metrics.
//
// Examples:
//
//	dfsim -describe
//	dfsim -app CR -placement rand -routing min
//	dfsim -app AMG -placement cont -routing adp -background uniform
//	dfsim -app FB -machine mini -scale 0.5 -seed 7
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"dragonfly"
	"dragonfly/internal/ascii"
)

func main() {
	var (
		machine    = flag.String("machine", "theta", "machine: theta or mini")
		app        = flag.String("app", "CR", "application: CR, FB, or AMG")
		place      = flag.String("placement", "cont", "placement: cont, cab, chas, rotr, rand")
		route      = flag.String("routing", "min", "routing: min or adp")
		mapName    = flag.String("mapping", "identity", "task mapping: identity, shuffle, router-packed, group-packed")
		msgScale   = flag.Float64("scale", 1, "message-size scale factor (sensitivity study)")
		seed       = flag.Int64("seed", 1, "random seed")
		background = flag.String("background", "none", "background traffic: none, uniform, bursty")
		bgBytes    = flag.Int64("bg-bytes", 16*1024, "background message size in bytes")
		bgInterval = flag.Duration("bg-interval", 0, "background interval (default 50us uniform, 500us bursty)")
		bgFanOut   = flag.Int("bg-fanout", 64, "bursty background fan-out per node (0 = all peers)")
		describe   = flag.Bool("describe", false, "print the machine inventory (Figure 1) and exit")
		plot       = flag.Bool("plot", false, "render ASCII comm-time box plot and channel-traffic CDFs")
	)
	flag.Parse()

	topoCfg := dragonfly.Theta()
	if *machine == "mini" {
		topoCfg = dragonfly.MiniTopology()
	} else if *machine != "theta" {
		fatalf("unknown machine %q", *machine)
	}

	if *describe {
		topo, err := dragonfly.NewTopology(topoCfg)
		if err != nil {
			fatalf("%v", err)
		}
		fmt.Print(topo.Describe())
		return
	}

	tr, err := appTrace(*app, *machine == "mini")
	if err != nil {
		fatalf("%v", err)
	}
	pol, err := dragonfly.ParsePlacement(*place)
	if err != nil {
		fatalf("%v", err)
	}
	mech, err := dragonfly.ParseRouting(*route)
	if err != nil {
		fatalf("%v", err)
	}
	mapPol, err := dragonfly.ParseMapping(*mapName)
	if err != nil {
		fatalf("%v", err)
	}

	cfg := dragonfly.Config{
		Topology:  topoCfg,
		Params:    dragonfly.DefaultParams(),
		Placement: pol,
		Routing:   mech,
		Mapping:   mapPol,
		Trace:     tr,
		MsgScale:  *msgScale,
		Seed:      *seed,
	}
	switch *background {
	case "none":
	case "uniform", "bursty":
		kind := dragonfly.UniformRandom
		interval := 50 * dragonfly.Microsecond
		fan := 0
		if *background == "bursty" {
			kind = dragonfly.Bursty
			interval = 500 * dragonfly.Microsecond
			fan = *bgFanOut
		}
		if *bgInterval > 0 {
			interval = dragonfly.Time(bgInterval.Nanoseconds())
		}
		cfg.Background = &dragonfly.BackgroundConfig{
			Kind: kind, MsgBytes: *bgBytes, Interval: interval, FanOut: fan,
		}
		cfg.MaxSimTime = dragonfly.Second
	default:
		fatalf("unknown background %q", *background)
	}

	res, err := dragonfly.Run(cfg)
	if err != nil {
		fatalf("%v", err)
	}
	printResult(res, *app)
	if *plot {
		printPlots(res)
	}
}

func printPlots(res *dragonfly.Result) {
	fmt.Printf("\ncommunication time per rank (ms):\n%s",
		ascii.BoxPlot([]ascii.NamedValues{{Name: res.Config.Name(), Values: res.CommTimesMs()}}, 60))
	fmt.Printf("\nchannel traffic CDF (MiB per channel):\n%s",
		ascii.CDFPlot(map[string][]float64{
			"local":  res.LocalTraffic(false),
			"global": res.GlobalTraffic(false),
		}, 60, 12))
}

func appTrace(name string, mini bool) (*dragonfly.Trace, error) {
	switch name {
	case "CR", "cr":
		cfg := dragonfly.DefaultCR()
		if mini {
			cfg = dragonfly.CRConfig{Ranks: 32, MessageBytes: 16 * 1024}
		}
		return dragonfly.CRTrace(cfg)
	case "FB", "fb":
		cfg := dragonfly.DefaultFB()
		if mini {
			cfg = dragonfly.FBConfig{X: 3, Y: 3, Z: 3, Iterations: 2,
				MinBytes: 4 * 1024, MaxBytes: 64 * 1024, FarPartners: 1, FarFraction: 0.1, Seed: 1}
		}
		return dragonfly.FBTrace(cfg)
	case "AMG", "amg":
		cfg := dragonfly.DefaultAMG()
		if mini {
			cfg = dragonfly.AMGConfig{X: 3, Y: 3, Z: 3, Cycles: 3, Levels: 3, PeakBytes: 16 * 1024}
		}
		return dragonfly.AMGTrace(cfg)
	}
	return nil, fmt.Errorf("unknown application %q (want CR, FB, or AMG)", name)
}

func printResult(res *dragonfly.Result, app string) {
	fmt.Printf("%s under %s (seed %d)\n", app, res.Config.Name(), res.Config.Seed)
	fmt.Printf("  completed:     %v\n", res.Completed)
	fmt.Printf("  simulated:     %v over %d events\n", res.Duration, res.Events)

	times := res.CommTimesMs()
	sort.Float64s(times)
	q := func(f float64) float64 { return times[int(f*float64(len(times)-1))] }
	fmt.Printf("  comm time ms:  min=%.4g q1=%.4g med=%.4g q3=%.4g max=%.4g\n",
		times[0], q(0.25), q(0.5), q(0.75), times[len(times)-1])

	var hops float64
	for _, h := range res.AvgHops {
		hops += h
	}
	fmt.Printf("  avg hops:      %.3f (mean over %d ranks)\n", hops/float64(len(res.AvgHops)), len(res.AvgHops))

	sumMax := func(vals []float64) (sum, max float64) {
		for _, v := range vals {
			sum += v
			if v > max {
				max = v
			}
		}
		return
	}
	lt, ltMax := sumMax(res.LocalTraffic(false))
	gt, gtMax := sumMax(res.GlobalTraffic(false))
	ls, lsMax := sumMax(res.LocalSaturation(false))
	gs, gsMax := sumMax(res.GlobalSaturation(false))
	fmt.Printf("  local chans:   %.1f MiB total, %.2f MiB max; saturation %.4g ms total, %.4g ms max\n", lt, ltMax, ls, lsMax)
	fmt.Printf("  global chans:  %.1f MiB total, %.2f MiB max; saturation %.4g ms total, %.4g ms max\n", gt, gtMax, gs, gsMax)
	if res.BackgroundPeakLoad > 0 {
		fmt.Printf("  bg peak load:  %.2f MiB per interval\n", float64(res.BackgroundPeakLoad)/(1024*1024))
	}
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "dfsim: "+format+"\n", args...)
	os.Exit(1)
}
