// Command dfvalidate reproduces the methodology of the CODES dragonfly
// validation study the paper builds on (Sec. II): ping-pong latency checks
// against the analytic zero-load model, and a bisection-pairing bandwidth
// test, on the simulated machine.
//
// Examples:
//
//	dfvalidate
//	dfvalidate -machine mini -pairs 100
//	dfvalidate -bisect-bytes 1048576 -routing adp
package main

import (
	"flag"
	"fmt"
	"os"

	"dragonfly"
	"dragonfly/internal/routing"
	"dragonfly/internal/topology"
	"dragonfly/internal/validate"
)

func main() {
	var (
		machine  = flag.String("machine", "", "deprecated alias of -topo")
		topoName = flag.String("topo", "", "machine preset: theta, mini, dfplus, or dfplus-mini (default theta)")
		pairs    = flag.Int("pairs", 50, "ping-pong node pairs to sample")
		bytes    = flag.Int("bytes", 4096, "ping payload (single packet)")
		bisect   = flag.Int64("bisect-bytes", 512*1024, "bytes per bisection pair")
		route    = flag.String("routing", "min", "bisection routing: min or adp")
		seed     = flag.Int64("seed", 1, "random seed")
		maxError = flag.Float64("max-error", 0.001, "fail if ping relative error exceeds this")
	)
	flag.Parse()

	name := *topoName
	if name == "" {
		name = *machine
	}
	if name == "" {
		name = "theta"
	}
	m, err := topology.Preset(name)
	if err != nil {
		fatalf("%v", err)
	}
	params := dragonfly.DefaultParams()

	fmt.Printf("ping-pong: %d pairs x %d B on %s...\n", *pairs, *bytes, name)
	ping, err := validate.PingPong(m, params, *bytes, *pairs, *seed)
	if err != nil {
		fatalf("%v", err)
	}
	byHops := map[int][]validate.PingSample{}
	for _, s := range ping.Samples {
		byHops[s.Routers] = append(byHops[s.Routers], s)
	}
	for h := 1; h <= 6; h++ {
		ss := byHops[h]
		if len(ss) == 0 {
			continue
		}
		var meas, pred float64
		for _, s := range ss {
			meas += float64(s.Measured)
			pred += float64(s.Predicted)
		}
		fmt.Printf("  %d routers: %3d samples  mean measured %8.1f ns  predicted %8.1f ns\n",
			h, len(ss), meas/float64(len(ss)), pred/float64(len(ss)))
	}
	fmt.Printf("  max relative error vs analytic model: %.6f (threshold %.4f)\n", ping.MaxRelError, *maxError)
	if ping.MaxRelError > *maxError {
		fatalf("ping-pong validation FAILED")
	}

	mech, err := routing.ParseMechanism(*route)
	if err != nil {
		fatalf("%v", err)
	}
	fmt.Printf("bisection pairing: %d B/pair under %s routing...\n", *bisect, mech)
	bi, err := validate.Bisection(m, params, mech, *bisect, *seed)
	if err != nil {
		fatalf("%v", err)
	}
	const GiB = 1024 * 1024 * 1024
	fmt.Printf("  %d pairs, makespan %v\n", bi.Pairs, bi.Makespan)
	fmt.Printf("  aggregate bandwidth %.2f GiB/s (injection bound %.2f GiB/s, utilization %.1f%%)\n",
		bi.AchievedBandwidth/GiB, bi.InjectionBound/GiB, 100*bi.Utilization)
	fmt.Println("validation PASSED")
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "dfvalidate: "+format+"\n", args...)
	os.Exit(1)
}
