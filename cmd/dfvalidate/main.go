// Command dfvalidate reproduces the methodology of the CODES dragonfly
// validation study the paper builds on (Sec. II): ping-pong latency checks
// against the analytic zero-load model, and a bisection-pairing bandwidth
// test, on the simulated machine.
//
// Examples:
//
//	dfvalidate
//	dfvalidate -machine mini -pairs 100
//	dfvalidate -bisect-bytes 1048576 -routing adp
//	dfvalidate -topo mini -faults global=0.3,routers=2,seed=5
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"

	"dragonfly"
	"dragonfly/internal/cliutil"
	"dragonfly/internal/des"
	"dragonfly/internal/faults"
	"dragonfly/internal/routing"
	"dragonfly/internal/topology"
	"dragonfly/internal/validate"
)

func main() {
	var (
		machine  = flag.String("machine", "", "deprecated alias of -topo")
		topoName = flag.String("topo", "", "machine preset: theta, mini, dfplus, or dfplus-mini (default theta)")
		pairs    = flag.Int("pairs", 50, "ping-pong node pairs to sample")
		bytes    = flag.Int("bytes", 4096, "ping payload (single packet)")
		bisect   = flag.Int64("bisect-bytes", 512*1024, "bytes per bisection pair")
		route    = flag.String("routing", "min", "bisection routing: min, adp, or qadaptive")
		seed     = flag.Int64("seed", 1, "random seed")
		maxError = flag.Float64("max-error", 0.001, "fail if ping relative error exceeds this")
		faultStr = flag.String("faults", "", "additionally validate fault-aware routing on this degraded fabric (spec grammar as in dfsim -faults)")
		faultSd  = flag.Int64("fault-seed", 0, "override the fault spec's seed= clause (0 keeps the spec's own seed)")

		scaleSmoke  = flag.Bool("scale-smoke", false, "instead of the validation study, shake out synthesized big machines (see -scale-shape)")
		scaleShape  = flag.String("scale-shape", "df,dfplus", "comma-separated scale-smoke shapes, family[:routers]")
		routers     = flag.Int("routers", 20000, "router count for -scale-shape entries without an explicit :ROUTERS")
		scalePairs  = flag.Int("scale-pairs", 1000, "sampled validated route pairs per scale-smoke shape")
		budgetMB    = flag.Int64("mem-budget-mb", 4096, "scale-smoke fails if OS-visible memory exceeds this many MB")
		buildWorker = flag.Int("build-workers", 0, "machine-construction worker count; 0 = all CPUs")
	)
	flag.Parse()
	if _, err := cliutil.BuildWorkers(*buildWorker); err != nil {
		cliutil.Usagef("dfvalidate", "%v", err)
	}
	if *scaleSmoke {
		ms, err := cliutil.ScaleShapes(*scaleShape, *routers)
		if err != nil {
			cliutil.Usagef("dfvalidate", "%v", err)
		}
		if err := runScaleSmoke(ms, *scalePairs, *budgetMB); err != nil {
			fatalf("%v", err)
		}
		fmt.Println("scale smoke PASSED")
		return
	}

	m, err := cliutil.Machine(*topoName, *machine, "theta")
	if err != nil {
		cliutil.Usagef("dfvalidate", "%v", err)
	}
	fspec, err := cliutil.FaultSpec(*faultStr, *faultSd)
	if err != nil {
		cliutil.Usagef("dfvalidate", "%v", err)
	}
	params := dragonfly.DefaultParams()
	name := m.Label()

	fmt.Printf("ping-pong: %d pairs x %d B on %s...\n", *pairs, *bytes, name)
	ping, err := validate.PingPong(m, params, *bytes, *pairs, *seed)
	if err != nil {
		fatalf("%v", err)
	}
	byHops := map[int][]validate.PingSample{}
	for _, s := range ping.Samples {
		byHops[s.Routers] = append(byHops[s.Routers], s)
	}
	for h := 1; h <= 6; h++ {
		ss := byHops[h]
		if len(ss) == 0 {
			continue
		}
		var meas, pred float64
		for _, s := range ss {
			meas += float64(s.Measured)
			pred += float64(s.Predicted)
		}
		fmt.Printf("  %d routers: %3d samples  mean measured %8.1f ns  predicted %8.1f ns\n",
			h, len(ss), meas/float64(len(ss)), pred/float64(len(ss)))
	}
	fmt.Printf("  max relative error vs analytic model: %.6f (threshold %.4f)\n", ping.MaxRelError, *maxError)
	if ping.MaxRelError > *maxError {
		fatalf("ping-pong validation FAILED")
	}

	mech, err := cliutil.Routing(*route)
	if err != nil {
		cliutil.Usagef("dfvalidate", "%v", err)
	}
	fmt.Printf("bisection pairing: %d B/pair under %s routing...\n", *bisect, mech)
	bi, err := validate.Bisection(m, params, mech, *bisect, *seed)
	if err != nil {
		fatalf("%v", err)
	}
	const GiB = 1024 * 1024 * 1024
	fmt.Printf("  %d pairs, makespan %v\n", bi.Pairs, bi.Makespan)
	fmt.Printf("  aggregate bandwidth %.2f GiB/s (injection bound %.2f GiB/s, utilization %.1f%%)\n",
		bi.AchievedBandwidth/GiB, bi.InjectionBound/GiB, 100*bi.Utilization)

	if !fspec.Empty() {
		if err := validateFaults(m, fspec, *pairs, *seed); err != nil {
			fatalf("%v", err)
		}
	}
	fmt.Println("validation PASSED")
}

// validateFaults checks the fault-aware routing contract on the degraded
// machine: over sampled node pairs and both mechanisms, every computed route
// must pass the physical/VC validator and touch only live routers and local
// links, and every failure must be the typed ErrUnreachable — never a panic
// or an unexplained error.
func validateFaults(m topology.Machine, spec *faults.Spec, pairs int, seed int64) error {
	ic, err := m.Build()
	if err != nil {
		return err
	}
	set, err := faults.Resolve(spec, ic)
	if err != nil {
		return err
	}
	fmt.Printf("degraded fabric: %s\n", set.Describe())
	for _, mech := range []routing.Mechanism{routing.Minimal, routing.Adaptive} {
		rng := des.NewRNG(seed, "dfvalidate/faults")
		ch := routing.NewChooserOpts(ic, mech, rng.Stream("route"), nil, routing.Options{Health: set})
		reach, unreach := 0, 0
		for i := 0; i < pairs; i++ {
			src := topology.NodeID(rng.Intn(ic.NumNodes()))
			dst := topology.NodeID(rng.Intn(ic.NumNodes()))
			if src == dst {
				dst = topology.NodeID((int(dst) + 1) % ic.NumNodes())
			}
			p, err := ch.TryRoute(src, dst)
			if err != nil {
				if !errors.Is(err, routing.ErrUnreachable) {
					return fmt.Errorf("fault-aware %v route %d->%d: untyped failure: %v", mech, src, dst, err)
				}
				unreach++
				continue
			}
			if err := routing.Validate(ic, ic.RouterOfNode(src), ic.RouterOfNode(dst), p); err != nil {
				return fmt.Errorf("fault-aware %v route %d->%d invalid: %v", mech, src, dst, err)
			}
			for _, h := range p.Hops {
				if !set.RouterUp(h.From) || !set.RouterUp(h.To) {
					return fmt.Errorf("fault-aware %v route %d->%d traverses a failed router (%d->%d)",
						mech, src, dst, h.From, h.To)
				}
				if h.Kind == routing.Local && !set.LocalLinkUp(h.From, h.To) {
					return fmt.Errorf("fault-aware %v route %d->%d traverses failed local link %d-%d",
						mech, src, dst, h.From, h.To)
				}
			}
			reach++
		}
		fmt.Printf("  %v routing: %d/%d sampled pairs live-routable, %d unreachable, all routes valid\n",
			mech, reach, pairs, unreach)
	}
	return nil
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "dfvalidate: "+format+"\n", args...)
	os.Exit(1)
}
