package main

// The -scale-smoke mode: a big-machine shakeout that the unit suites never
// reach (they stay below topology.DenseTableLimit). For each requested shape
// it builds the machine, routes a sample of validated pairs through the
// compressed tables, then drives an audited traffic burst under the DES
// stall watchdog — and finally checks the process's OS-visible memory
// against an explicit budget, so a reintroduced O(routers^2) table fails CI
// with a number attached rather than an OOM kill.

import (
	"fmt"
	"runtime"
	"time"

	"dragonfly/internal/audit"
	"dragonfly/internal/des"
	"dragonfly/internal/network"
	"dragonfly/internal/routing"
	"dragonfly/internal/topology"
)

// scaleSmokeMessages is the audited traffic burst size. It is deliberately
// modest: the burst exists to exercise injection, credit flow, and delivery
// over the compact fabric index at scale, not to measure throughput.
const scaleSmokeMessages = 2000

// runScaleSmoke shakes out every shape and returns the first failure.
func runScaleSmoke(machines []topology.Machine, pairs int, budgetMB int64) error {
	for _, m := range machines {
		if err := smokeOne(m, pairs); err != nil {
			return err
		}
	}
	// One budget check for the whole run: Sys is monotone (the Go runtime
	// does not return address space), so after the largest shape it reflects
	// the peak footprint of everything built above.
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	sysMB := int64(ms.Sys) >> 20
	fmt.Printf("peak memory: %d MB from OS (budget %d MB)\n", sysMB, budgetMB)
	if sysMB > budgetMB {
		return fmt.Errorf("peak memory %d MB exceeds the %d MB budget (-mem-budget-mb)", sysMB, budgetMB)
	}
	return nil
}

func smokeOne(m topology.Machine, pairs int) error {
	start := time.Now()
	ic, err := m.Build()
	if err != nil {
		return fmt.Errorf("scale-smoke %s: %v", m.Label(), err)
	}
	fmt.Printf("scale-smoke: %s (%d routers, %d groups) wired in %v\n",
		ic.Name(), ic.NumRouters(), ic.NumGroups(), time.Since(start).Round(time.Millisecond))

	// Phase 1: sampled-pair routing, every path validated. This walks the
	// lazy gateway shards and the path memo exactly as a real run would.
	rng := des.NewRNG(1, "scale-smoke")
	ch := routing.NewChooserOpts(ic, routing.Adaptive, rng.Stream("route"), nil, routing.Options{})
	routeStart := time.Now()
	for i := 0; i < pairs; i++ {
		src := topology.NodeID(rng.Intn(ic.NumNodes()))
		dst := topology.NodeID(rng.Intn(ic.NumNodes()))
		p, err := ch.TryRoute(src, dst)
		if err != nil {
			return fmt.Errorf("scale-smoke %s: route %d->%d: %v", ic.Name(), src, dst, err)
		}
		if err := routing.Validate(ic, ic.RouterOfNode(src), ic.RouterOfNode(dst), p); err != nil {
			return fmt.Errorf("scale-smoke %s: invalid route %d->%d: %v", ic.Name(), src, dst, err)
		}
		ch.Release(p)
	}
	fmt.Printf("  routed %d sampled pairs, all valid, in %v\n",
		pairs, time.Since(routeStart).Round(time.Millisecond))

	// Phase 2: audited traffic burst under the stall watchdog. The auditor
	// shadows every credit movement and byte, so flow control over the
	// compact link index is checked end to end; the watchdog turns any
	// livelock into a diagnosed failure instead of a hung CI job.
	eng := des.New()
	fab, err := network.New(eng, ic, network.DefaultParams(), routing.Adaptive, des.NewRNG(2, "scale-smoke-fab"))
	if err != nil {
		return fmt.Errorf("scale-smoke %s: %v", ic.Name(), err)
	}
	eng.SetWatchdog(500_000_000, 0, fab.WatchdogDiagnostic)
	aud := audit.New(ic)
	fab.SetObserver(aud)
	eng.SetObserver(aud.EventExecuted)
	for i := 0; i < scaleSmokeMessages; i++ {
		src := topology.NodeID(rng.Intn(ic.NumNodes()))
		dst := topology.NodeID(rng.Intn(ic.NumNodes()))
		fab.Send(src, dst, int64(rng.IntnRange(1, 64<<10)), nil, nil)
	}
	simStart := time.Now()
	eng.Run()
	if err := eng.Tripped(); err != nil {
		return fmt.Errorf("scale-smoke %s: %v", ic.Name(), err)
	}
	fab.FinishStats()
	aud.Finish(eng.Pending() == 0)
	if err := aud.Err(); err != nil {
		return fmt.Errorf("scale-smoke %s: %v", ic.Name(), err)
	}
	s := aud.Summary()
	fmt.Printf("  audited burst: %d messages, %d events, %d credit ops, clean, in %v\n",
		scaleSmokeMessages, s.Stats.Events, s.Stats.Reserves+s.Stats.Releases,
		time.Since(simStart).Round(time.Millisecond))
	return nil
}
