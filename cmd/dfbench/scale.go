package main

// The -scale suite: big-machine construction and memory measurements that
// ordinary go-test benchmarks cannot express (they need post-GC live-byte
// deltas around a whole build, not per-iteration allocation counts). Each
// shape contributes one synthetic Benchmark entry to the snapshot:
//
//	ns/op           wall time to wire the machine and build chooser + fabric
//	                (advisory in -diff, like every timing)
//	live_bytes/op   post-GC HeapAlloc growth attributable to the built
//	                structures — the quantity the compressed tables bound
//	bytes_per_router  live_bytes/op / routers, the scale-linearity figure
//	route_ns/op     mean TryRoute+Release over the sampled pairs
//	routers, groups shape records, so a diff shows what was measured
//
// live_bytes/op and bytes_per_router gate hard in -diff next to allocs/op
// and B/op: a change that reintroduces an O(routers^2) table shows up as a
// orders-of-magnitude jump, far beyond the 20%+slack limit.

import (
	"fmt"
	"runtime"
	"time"

	"dragonfly/internal/des"
	"dragonfly/internal/network"
	"dragonfly/internal/routing"
	"dragonfly/internal/topology"
)

const scaleRoutePairs = 1000

// runScaleSuite measures every shape in the comma-separated spec list
// ("family[:routers]", resolved through the shared cliutil grammar by the
// caller) and returns their snapshot entries.
func runScaleSuite(machines []topology.Machine) ([]Benchmark, error) {
	out := make([]Benchmark, 0, len(machines))
	for _, m := range machines {
		b, err := measureScale(m)
		if err != nil {
			return nil, err
		}
		out = append(out, b)
	}
	return out, nil
}

func measureScale(m topology.Machine) (Benchmark, error) {
	liveBefore := liveBytes()
	start := time.Now()

	ic, err := m.Build()
	if err != nil {
		return Benchmark{}, fmt.Errorf("scale %s: %v", m.Label(), err)
	}
	eng := des.New()
	fab, err := network.New(eng, ic, network.DefaultParams(), routing.Adaptive, des.NewRNG(1, "scale"))
	if err != nil {
		return Benchmark{}, fmt.Errorf("scale %s: %v", m.Label(), err)
	}
	chooser := routing.NewChooserOpts(ic, routing.Adaptive, des.NewRNG(2, "scale-route"), fab, routing.Options{})
	buildNs := time.Since(start).Nanoseconds()

	// Route a fixed sample of distinct-router pairs; every path is validated
	// so the measurement doubles as a correctness probe at a scale the unit
	// tests never build.
	rng := des.NewRNG(3, "scale-pairs")
	routeStart := time.Now()
	routed := 0
	for routed < scaleRoutePairs {
		src := topology.NodeID(rng.Intn(ic.NumNodes()))
		dst := topology.NodeID(rng.Intn(ic.NumNodes()))
		p, err := chooser.TryRoute(src, dst)
		if err != nil {
			return Benchmark{}, fmt.Errorf("scale %s: route %d->%d: %v", m.Label(), src, dst, err)
		}
		if routed%97 == 0 { // sampled validation; full validation would dominate the timing
			if err := routing.Validate(ic, ic.RouterOfNode(src), ic.RouterOfNode(dst), p); err != nil {
				return Benchmark{}, fmt.Errorf("scale %s: invalid route %d->%d: %v", m.Label(), src, dst, err)
			}
		}
		chooser.Release(p)
		routed++
	}
	routeNs := time.Since(routeStart).Nanoseconds() / scaleRoutePairs

	liveAfter := liveBytes()
	runtime.KeepAlive(fab)
	runtime.KeepAlive(chooser)
	live := liveAfter - liveBefore
	if live < 0 {
		live = 0
	}

	name := fmt.Sprintf("ScaleBuild/%s-%d", ic.Name(), ic.NumRouters())
	return Benchmark{
		Name:       name,
		Iterations: 1,
		Metrics: map[string]float64{
			"ns/op":            float64(buildNs),
			"live_bytes/op":    float64(live),
			"bytes_per_router": float64(live) / float64(ic.NumRouters()),
			"route_ns/op":      float64(routeNs),
			"routers":          float64(ic.NumRouters()),
			"groups":           float64(ic.NumGroups()),
		},
	}, nil
}

// liveBytes returns the post-GC live heap size.
func liveBytes() int64 {
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return int64(ms.HeapAlloc)
}
