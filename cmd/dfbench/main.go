// Command dfbench runs the repository's benchmark suites and writes a JSON
// snapshot, so the performance trajectory of the simulator's hot paths is
// tracked in-repo from PR to PR (`make bench` refreshes BENCH_des.json; the
// file carries no timestamp, so a re-run on unchanged code diffs cleanly
// apart from machine noise).
//
// Examples:
//
//	dfbench                                  # engine + artifact benches -> BENCH_des.json
//	dfbench -bench Queue -out queue.json ./internal/des
//	dfbench -stdout ./internal/des           # print the snapshot instead
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"strconv"
	"strings"
)

// Benchmark is one parsed benchmark result line.
type Benchmark struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"` // unit -> value, e.g. "ns/op": 1952
}

// Snapshot is the file format of BENCH_des.json.
type Snapshot struct {
	Command    string      `json:"command"`
	GoVersion  string      `json:"go_version"`
	GOOS       string      `json:"goos"`
	GOARCH     string      `json:"goarch"`
	CPU        string      `json:"cpu,omitempty"`
	NumCPU     int         `json:"num_cpu"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	var (
		benchRe = flag.String("bench", ".", "benchmark name pattern (go test -bench)")
		out     = flag.String("out", "BENCH_des.json", "snapshot output path")
		stdout  = flag.Bool("stdout", false, "print the snapshot to stdout instead of writing -out")
	)
	flag.Parse()
	pkgs := flag.Args()
	if len(pkgs) == 0 {
		pkgs = []string{"./internal/des", "."}
	}

	args := append([]string{"test", "-bench", *benchRe, "-benchmem", "-run", "^$"}, pkgs...)
	cmd := exec.Command("go", args...)
	var raw bytes.Buffer
	cmd.Stdout = &raw
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		fatalf("go %s: %v", strings.Join(args, " "), err)
	}

	snap := Snapshot{
		Command:   "go " + strings.Join(args, " "),
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
	}
	for _, line := range strings.Split(raw.String(), "\n") {
		line = strings.TrimSpace(line)
		if cpu, ok := strings.CutPrefix(line, "cpu: "); ok {
			snap.CPU = cpu
			continue
		}
		if b, ok := parseBenchLine(line); ok {
			snap.Benchmarks = append(snap.Benchmarks, b)
		}
	}
	if len(snap.Benchmarks) == 0 {
		fatalf("no benchmark lines in output:\n%s", raw.String())
	}

	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		fatalf("%v", err)
	}
	data = append(data, '\n')
	if *stdout {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fatalf("%v", err)
	}
	fmt.Fprintf(os.Stderr, "dfbench: wrote %d benchmarks to %s\n", len(snap.Benchmarks), *out)
}

// parseBenchLine decodes "BenchmarkName-8  923167  1952 ns/op  370 B/op ..."
// into a Benchmark; reports false for non-benchmark lines.
func parseBenchLine(line string) (Benchmark, bool) {
	if !strings.HasPrefix(line, "Benchmark") {
		return Benchmark{}, false
	}
	fields := strings.Fields(line)
	if len(fields) < 4 || len(fields)%2 != 0 {
		return Benchmark{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	name := fields[0]
	// Strip the -GOMAXPROCS suffix so snapshots from different machines
	// keep comparable names.
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	b := Benchmark{Name: name, Iterations: iters, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		b.Metrics[fields[i+1]] = v
	}
	return b, true
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "dfbench: "+format+"\n", args...)
	os.Exit(1)
}
