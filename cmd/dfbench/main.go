// Command dfbench runs the repository's benchmark suites and writes a JSON
// snapshot, so the performance trajectory of the simulator's hot paths is
// tracked in-repo from PR to PR (`make bench` refreshes BENCH_des.json; the
// file carries no timestamp, so a re-run on unchanged code diffs cleanly
// apart from machine noise).
//
// For benchmarks that report a sim_events/op (or events/op) metric, the
// snapshot additionally carries the derived allocs/event — the simulator's
// allocation discipline in one number, independent of how much work a
// single benchmark iteration happens to cover.
//
// With -diff, dfbench instead runs the suites fresh and compares them
// against the committed snapshot: a >20% regression in allocs/op or B/op
// on any shared benchmark fails the command (the allocation counts are
// deterministic, so the gate is noise-free); ns/op changes are reported
// but advisory only, since wall-clock shifts with the machine.
//
// Examples:
//
//	dfbench                                  # full suite -> BENCH_des.json
//	dfbench -bench Queue -out queue.json ./internal/des
//	dfbench -stdout ./internal/des           # print the snapshot instead
//	dfbench -diff                            # regression gate vs BENCH_des.json
//	dfbench -cpuprofile cpu.pb.gz ./internal/network
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"sort"
	"strconv"
	"strings"

	"dragonfly/internal/cliutil"
	"dragonfly/internal/topology"
)

// Benchmark is one parsed benchmark result line.
type Benchmark struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"` // unit -> value, e.g. "ns/op": 1952
}

// Snapshot is the file format of BENCH_des.json.
type Snapshot struct {
	Command    string      `json:"command"`
	GoVersion  string      `json:"go_version"`
	GOOS       string      `json:"goos"`
	GOARCH     string      `json:"goarch"`
	CPU        string      `json:"cpu,omitempty"`
	NumCPU     int         `json:"num_cpu"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	var (
		benchRe = flag.String("bench", ".", "benchmark name pattern (go test -bench)")
		out     = flag.String("out", "BENCH_des.json", "snapshot output path")
		stdout  = flag.Bool("stdout", false, "print the snapshot to stdout instead of writing -out")
		diff    = flag.Bool("diff", false, "run fresh and compare against -against: fail on >20% allocs/op or B/op regression (ns/op advisory)")
		against = flag.String("against", "BENCH_des.json", "committed snapshot to diff against (with -diff)")
		cpuProf = flag.String("cpuprofile", "", "pass -cpuprofile to go test (requires exactly one package argument)")
		memProf = flag.String("memprofile", "", "pass -memprofile to go test (requires exactly one package argument)")

		scale       = flag.Bool("scale", false, "also run the big-machine construction/memory suite (see -scale-shape)")
		scaleShape  = flag.String("scale-shape", "df,dfplus", "comma-separated scale shapes, family[:routers] (with -scale)")
		routers     = flag.Int("routers", 20000, "router count for -scale-shape entries without an explicit :ROUTERS")
		buildWorker = flag.Int("build-workers", 0, "machine-construction worker count; 0 = all CPUs")
	)
	flag.Parse()
	if _, err := cliutil.BuildWorkers(*buildWorker); err != nil {
		cliutil.Usagef("dfbench", "%v", err)
	}
	var scaleMachines []topology.Machine
	if *scale {
		ms, err := cliutil.ScaleShapes(*scaleShape, *routers)
		if err != nil {
			cliutil.Usagef("dfbench", "%v", err)
		}
		scaleMachines = ms
	}
	pkgs := flag.Args()
	if len(pkgs) == 0 {
		pkgs = []string{"./internal/des", "./internal/network", "./internal/routing", "./internal/farm", "./internal/workload", "."}
	}
	if (*cpuProf != "" || *memProf != "") && len(pkgs) != 1 {
		cliutil.Usagef("dfbench", "-cpuprofile/-memprofile need exactly one package (go test writes one profile per binary); got %d", len(pkgs))
	}

	args := []string{"test", "-bench", *benchRe, "-benchmem", "-run", "^$"}
	if *cpuProf != "" {
		args = append(args, "-cpuprofile", *cpuProf)
	}
	if *memProf != "" {
		args = append(args, "-memprofile", *memProf)
	}
	args = append(args, pkgs...)
	cmd := exec.Command("go", args...)
	var raw bytes.Buffer
	cmd.Stdout = &raw
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		fatalf("go %s: %v", strings.Join(args, " "), err)
	}

	snap := Snapshot{
		Command:   "go " + strings.Join(args, " "),
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
	}
	for _, line := range strings.Split(raw.String(), "\n") {
		line = strings.TrimSpace(line)
		if cpu, ok := strings.CutPrefix(line, "cpu: "); ok {
			snap.CPU = cpu
			continue
		}
		if b, ok := parseBenchLine(line); ok {
			addDerivedMetrics(&b)
			snap.Benchmarks = append(snap.Benchmarks, b)
		}
	}
	if len(snap.Benchmarks) == 0 {
		fatalf("no benchmark lines in output:\n%s", raw.String())
	}
	if *scale {
		scaleBenches, err := runScaleSuite(scaleMachines)
		if err != nil {
			fatalf("%v", err)
		}
		snap.Benchmarks = append(snap.Benchmarks, scaleBenches...)
	}

	if *diff {
		if err := diffSnapshots(*against, snap); err != nil {
			fatalf("%v", err)
		}
		return
	}

	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		fatalf("%v", err)
	}
	data = append(data, '\n')
	if *stdout {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fatalf("%v", err)
	}
	fmt.Fprintf(os.Stderr, "dfbench: wrote %d benchmarks to %s\n", len(snap.Benchmarks), *out)
}

// addDerivedMetrics computes allocs/event for benchmarks that report both an
// allocation count and a simulated event count per iteration.
func addDerivedMetrics(b *Benchmark) {
	allocs, okA := b.Metrics["allocs/op"]
	events, okE := b.Metrics["sim_events/op"]
	if !okE {
		events, okE = b.Metrics["events/op"]
	}
	if okA && okE && events > 0 {
		b.Metrics["allocs/event"] = allocs / events
	}
}

// diffSnapshots compares a fresh run against the committed snapshot.
// Allocation metrics are deterministic, so they gate hard; timing is noise
// and only advises.
func diffSnapshots(committedPath string, fresh Snapshot) error {
	data, err := os.ReadFile(committedPath)
	if err != nil {
		return err
	}
	var committed Snapshot
	if err := json.Unmarshal(data, &committed); err != nil {
		return fmt.Errorf("%s: %w", committedPath, err)
	}

	freshBy := map[string]Benchmark{}
	for _, b := range fresh.Benchmarks {
		freshBy[b.Name] = b
	}

	// Gates: >20% growth fails, with a small absolute slack so near-zero
	// baselines (e.g. 0 allocs/op) don't trip on a single stray object. The
	// scale-suite memory metrics gate with wider slack — post-GC live bytes
	// wobble a little with runtime internals, but a reintroduced quadratic
	// table overshoots any slack by orders of magnitude.
	gates := []struct {
		metric string
		slack  float64
	}{
		{"allocs/op", 2},
		{"B/op", 64},
		{"live_bytes/op", 4 << 20},
		{"bytes_per_router", 2048},
	}

	var failures []string
	names := make([]string, 0, len(committed.Benchmarks))
	for _, b := range committed.Benchmarks {
		names = append(names, b.Name)
	}
	sort.Strings(names)
	committedBy := map[string]Benchmark{}
	for _, b := range committed.Benchmarks {
		committedBy[b.Name] = b
	}

	for _, name := range names {
		base := committedBy[name]
		got, ok := freshBy[name]
		if !ok {
			failures = append(failures, fmt.Sprintf("%s: benchmark disappeared", name))
			continue
		}
		for _, g := range gates {
			want, okW := base.Metrics[g.metric]
			have, okH := got.Metrics[g.metric]
			if !okW || !okH {
				continue
			}
			limit := want * 1.2
			if want+g.slack > limit {
				limit = want + g.slack
			}
			status := "ok"
			if have > limit {
				status = "FAIL"
				failures = append(failures, fmt.Sprintf("%s %s: %.6g -> %.6g (limit %.6g)",
					name, g.metric, want, have, limit))
			}
			fmt.Printf("%-40s %-10s %12.6g -> %-12.6g %s\n", name, g.metric, want, have, status)
		}
		if want, ok := base.Metrics["ns/op"]; ok {
			if have, ok := got.Metrics["ns/op"]; ok && want > 0 {
				fmt.Printf("%-40s %-10s %12.6g -> %-12.6g advisory (%+.1f%%)\n",
					name, "ns/op", want, have, 100*(have-want)/want)
			}
		}
	}
	for _, b := range fresh.Benchmarks {
		if _, ok := committedBy[b.Name]; !ok {
			fmt.Printf("%-40s new benchmark (not in %s)\n", b.Name, committedPath)
		}
	}

	if len(failures) > 0 {
		return fmt.Errorf("allocation regression vs %s:\n  %s",
			committedPath, strings.Join(failures, "\n  "))
	}
	fmt.Printf("dfbench: no allocation regressions vs %s (%d benchmarks compared)\n",
		committedPath, len(names))
	return nil
}

// parseBenchLine decodes "BenchmarkName-8  923167  1952 ns/op  370 B/op ..."
// into a Benchmark; reports false for non-benchmark lines.
func parseBenchLine(line string) (Benchmark, bool) {
	if !strings.HasPrefix(line, "Benchmark") {
		return Benchmark{}, false
	}
	fields := strings.Fields(line)
	if len(fields) < 4 || len(fields)%2 != 0 {
		return Benchmark{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	name := fields[0]
	// Strip the -GOMAXPROCS suffix so snapshots from different machines
	// keep comparable names.
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	b := Benchmark{Name: name, Iterations: iters, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		b.Metrics[fields[i+1]] = v
	}
	return b, true
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "dfbench: "+format+"\n", args...)
	os.Exit(1)
}
