// Command dfsched simulates a batch queue on the dragonfly machine: a
// randomized stream of CR/FB/AMG-like jobs arrives over time, is scheduled
// FCFS (optionally with backfill), and runs on the shared fabric, printing
// per-job waits, communication times, and interference.
//
// Examples:
//
//	dfsched -jobs 12
//	dfsched -jobs 20 -backfill=false -machine theta
//	dfsched -jobs 8 -placement rand -seed 7
package main

import (
	"flag"
	"fmt"
	"os"

	"dragonfly"
	"dragonfly/internal/cliutil"
	"dragonfly/internal/des"
	"dragonfly/internal/network"
	"dragonfly/internal/sched"
	"dragonfly/internal/trace"
)

func main() {
	var (
		machine  = flag.String("machine", "", "deprecated alias of -topo")
		topoName = flag.String("topo", "", "machine preset: theta, mini, dfplus, or dfplus-mini (default mini)")
		jobs     = flag.Int("jobs", 10, "number of jobs to submit")
		backfill = flag.Bool("backfill", true, "enable aggressive backfill")
		place    = flag.String("placement", "cont", "placement for every job: cont, cab, chas, rotr, rand")
		route    = flag.String("routing", "adp", "routing: min, adp, or qadaptive")
		seed     = flag.Int64("seed", 1, "random seed")
	)
	flag.Parse()

	if *jobs <= 0 {
		cliutil.Usagef("dfsched", "jobs=%d: want a positive job count", *jobs)
	}
	m, err := cliutil.Machine(*topoName, *machine, "mini")
	if err != nil {
		cliutil.Usagef("dfsched", "%v", err)
	}
	pol, err := cliutil.Placement(*place)
	if err != nil {
		cliutil.Usagef("dfsched", "%v", err)
	}
	mech, err := cliutil.Routing(*route)
	if err != nil {
		cliutil.Usagef("dfsched", "%v", err)
	}

	ic, err := m.Build()
	if err != nil {
		fatalf("%v", err)
	}
	reqs, err := syntheticStream(*jobs, ic.NumNodes(), pol, *seed)
	if err != nil {
		fatalf("%v", err)
	}
	res, err := sched.Run(sched.Config{
		Topology: m,
		Params:   network.DefaultParams(),
		Routing:  mech,
		Seed:     *seed,
		Backfill: *backfill,
	}, reqs)
	if err != nil {
		fatalf("%v", err)
	}

	fmt.Printf("%-8s %-6s %-12s %-12s %-12s %-12s %s\n",
		"job", "ranks", "arrival", "wait", "comm(max)", "response", "note")
	for _, j := range res.Jobs {
		note := ""
		if j.Backfilled {
			note = "backfilled"
		}
		fmt.Printf("%-8s %-6d %-12v %-12v %-12v %-12v %s\n",
			j.Name, j.Ranks, j.Arrival, j.Wait(), j.MaxCommTime(), j.Response(), note)
	}
	fmt.Printf("\nmakespan %v, mean wait %v, %d DES events\n", res.Makespan, res.MeanWait(), res.Events)
}

// syntheticStream builds a randomized job mix: small probes, midsize
// neighbor-exchange solvers, and large many-to-many jobs.
func syntheticStream(n, machineNodes int, pol dragonfly.PlacementPolicy, seed int64) ([]sched.JobRequest, error) {
	rng := des.NewRNG(seed, "dfsched/stream")
	var reqs []sched.JobRequest
	arrival := des.Time(0)
	for i := 0; i < n; i++ {
		var tr *dragonfly.Trace
		var err error
		switch rng.Intn(3) {
		case 0: // probe
			tr, err = trace.CR(trace.CRConfig{
				Ranks: rng.IntnRange(4, machineNodes/8), MessageBytes: 16 * trace.KB})
		case 1: // solver
			d := rng.IntnRange(2, 3)
			tr, err = trace.AMG(trace.AMGConfig{
				X: d, Y: d, Z: d + 1, Cycles: 2, Levels: 3, PeakBytes: 12 * trace.KB})
		default: // many-to-many
			tr, err = trace.CR(trace.CRConfig{
				Ranks: rng.IntnRange(machineNodes/4, machineNodes/2), MessageBytes: 64 * trace.KB})
		}
		if err != nil {
			return nil, err
		}
		reqs = append(reqs, sched.JobRequest{
			Name:      fmt.Sprintf("job%02d", i),
			Trace:     tr,
			Placement: pol,
			Arrival:   arrival,
		})
		arrival += des.Time(rng.IntnRange(1, 40)) * des.Microsecond
	}
	return reqs, nil
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "dfsched: "+format+"\n", args...)
	os.Exit(1)
}
