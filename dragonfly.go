// Package dragonfly is the public API of a packet-level dragonfly network
// simulation library reproducing "Trade-Off Study of Localizing
// Communication and Balancing Network Traffic on a Dragonfly System"
// (Wang, Mubarak, Yang, Ross, Lan — IPDPS 2018).
//
// The library simulates a Cray XC40-style dragonfly (the paper's Theta
// machine) at packet granularity with credit-based flow control, replays
// application communication traces under five job placement policies and
// two routing mechanisms, optionally against synthetic background traffic,
// and reports the paper's metrics: communication time, average hops,
// per-channel traffic, and link saturation time.
//
// Quick start:
//
//	tr, _ := dragonfly.CRTrace(dragonfly.DefaultCR())
//	cfg := dragonfly.ThetaConfig(tr, dragonfly.Cell{
//		Placement: dragonfly.RandomNode,
//		Routing:   dragonfly.Minimal,
//	}, 1)
//	res, _ := dragonfly.Run(cfg)
//	fmt.Println(res.MaxCommTime())
//
// The full study — every table and figure of the paper — is driven by the
// Experiments runner (see cmd/dfsweep) or programmatically via NewRunner.
package dragonfly

import (
	"io"

	"dragonfly/internal/audit"
	"dragonfly/internal/chaos"
	"dragonfly/internal/core"
	"dragonfly/internal/des"
	"dragonfly/internal/experiments"
	"dragonfly/internal/farm"
	"dragonfly/internal/faults"
	"dragonfly/internal/mapping"
	"dragonfly/internal/network"
	"dragonfly/internal/placement"
	"dragonfly/internal/routing"
	"dragonfly/internal/sched"
	"dragonfly/internal/topology"
	"dragonfly/internal/trace"
	"dragonfly/internal/workload"
)

// Simulation time (nanosecond ticks).
type Time = des.Time

// Time units.
const (
	Nanosecond  = des.Nanosecond
	Microsecond = des.Microsecond
	Millisecond = des.Millisecond
	Second      = des.Second
	// MaxTime is the latest schedulable instant (an "unbounded" deadline).
	MaxTime = des.MaxTime
)

// Machine description.
type (
	// TopologyConfig describes an XC40-style dragonfly machine.
	TopologyConfig = topology.Config
	// PlusTopologyConfig describes a two-layer Dragonfly+ machine
	// (extension beyond the paper).
	PlusTopologyConfig = topology.PlusConfig
	// Topology is a wired XC40-style dragonfly machine.
	Topology = topology.Topology
	// DragonflyPlus is a wired Dragonfly+ machine.
	DragonflyPlus = topology.DragonflyPlus
	// Interconnect is the machine-neutral topology interface every layer of
	// the simulator consumes; Topology and DragonflyPlus implement it.
	Interconnect = topology.Interconnect
	// Machine is a buildable machine description (a topology config);
	// TopologyConfig and PlusTopologyConfig implement it, and Config.Topology
	// accepts either.
	Machine = topology.Machine
	// NodeID identifies a compute node.
	NodeID = topology.NodeID
	// RouterID identifies a router.
	RouterID = topology.RouterID
	// NetworkParams carries channel bandwidths, latencies, and buffers.
	NetworkParams = network.Params
)

// Theta returns the paper's machine: 9 groups x (6x16 routers) x 4 nodes.
func Theta() TopologyConfig { return topology.Theta() }

// MiniTopology returns a small machine for tests and examples.
func MiniTopology() TopologyConfig { return topology.Mini() }

// PlusTopology returns a 1296-node Dragonfly+ machine (extension beyond the
// paper; see topology.Plus).
func PlusTopology() PlusTopologyConfig { return topology.Plus() }

// PlusMiniTopology returns a small Dragonfly+ machine for tests and
// quick-scale sweeps.
func PlusMiniTopology() PlusTopologyConfig { return topology.PlusMini() }

// NewTopology wires an XC40-style dragonfly machine.
func NewTopology(cfg TopologyConfig) (*Topology, error) { return topology.New(cfg) }

// NewPlusTopology wires a Dragonfly+ machine.
func NewPlusTopology(cfg PlusTopologyConfig) (*DragonflyPlus, error) { return topology.NewPlus(cfg) }

// TopologyPreset resolves a named machine: theta, mini, dfplus, or
// dfplus-mini — the values the dfsim/dfsweep -topo flag accepts.
func TopologyPreset(name string) (Machine, error) { return topology.Preset(name) }

// TopologyPresetNames lists the registered machine names.
func TopologyPresetNames() []string { return topology.PresetNames() }

// DefaultParams returns the Theta channel parameters of Sec. II.
func DefaultParams() NetworkParams { return network.DefaultParams() }

// Placement policies (Sec. III-B).
type PlacementPolicy = placement.Policy

// The five placement policies.
const (
	Contiguous    = placement.Contiguous
	RandomCabinet = placement.RandomCabinet
	RandomChassis = placement.RandomChassis
	RandomRouter  = placement.RandomRouter
	RandomNode    = placement.RandomNode
)

// AllPlacements lists the placement policies in the paper's order.
func AllPlacements() []PlacementPolicy { return placement.All() }

// ParsePlacement converts "cont"/"cab"/"chas"/"rotr"/"rand" (or long names).
func ParsePlacement(s string) (PlacementPolicy, error) { return placement.Parse(s) }

// Routing mechanisms: the paper's two (Sec. III-C) plus the
// congestion-learning extension.
type RoutingMechanism = routing.Mechanism

// The built-in routing policies.
const (
	Minimal   = routing.Minimal
	Adaptive  = routing.Adaptive
	QAdaptive = routing.QAdaptive
)

// RoutingPolicy is the decision SPI behind the named mechanisms; custom
// implementations install via RoutingOptions.Policy (a PolicyFactory).
type RoutingPolicy = routing.Policy

// RoutingOptions tunes secondary routing decisions (gateway policy,
// Valiant candidate count, misrouting bias, custom Policy); it is the
// Params.Route field of a network configuration.
type RoutingOptions = routing.Options

// RoutingPolicyNames lists the built-in policies in CLI spelling.
func RoutingPolicyNames() []string { return routing.PolicyNames() }

// ParseRouting converts "min"/"adp"/"qadaptive" (or long names).
func ParseRouting(s string) (RoutingMechanism, error) { return routing.ParseMechanism(s) }

// Task mapping (the paper's future-work extension): how ranks are assigned
// to the nodes of an allocation.
type MappingPolicy = mapping.Policy

// The task-mapping policies.
const (
	IdentityMapping = mapping.Identity
	ShuffleMapping  = mapping.Shuffle
	RouterPacked    = mapping.RouterPacked
	GroupPacked     = mapping.GroupPacked
)

// AllMappings lists the task-mapping policies.
func AllMappings() []MappingPolicy { return mapping.All() }

// ParseMapping converts "identity"/"shuffle"/"router-packed"/"group-packed".
func ParseMapping(s string) (MappingPolicy, error) { return mapping.Parse(s) }

// Application traces (Sec. III-A).
type (
	// Trace is an application communication trace.
	Trace = trace.Trace
	// CRConfig parameterizes the crystal router generator.
	CRConfig = trace.CRConfig
	// FBConfig parameterizes the fill boundary generator.
	FBConfig = trace.FBConfig
	// AMGConfig parameterizes the algebraic multigrid generator.
	AMGConfig = trace.AMGConfig
)

// Default application configurations at the paper's sizes.
func DefaultCR() CRConfig   { return trace.DefaultCR() }
func DefaultFB() FBConfig   { return trace.DefaultFB() }
func DefaultAMG() AMGConfig { return trace.DefaultAMG() }

// Trace generators.
func CRTrace(cfg CRConfig) (*Trace, error)   { return trace.CR(cfg) }
func FBTrace(cfg FBConfig) (*Trace, error)   { return trace.FB(cfg) }
func AMGTrace(cfg AMGConfig) (*Trace, error) { return trace.AMG(cfg) }

// Dependency-graph workload IR (extension beyond the paper, GOAL-like): the
// canonical representation the replay executor runs. Flat traces lower into
// it via Trace.Graph; the collective/storage generators emit it directly.
type (
	// Graph is a per-rank dependency DAG of compute/send/recv nodes.
	Graph = trace.Graph
	// GraphNode is one node of a workload graph.
	GraphNode = trace.GraphNode
	// RingAllReduceConfig parameterizes the ring all-reduce generator.
	RingAllReduceConfig = trace.RingAllReduceConfig
	// TreeAllReduceConfig parameterizes the binomial-tree all-reduce generator.
	TreeAllReduceConfig = trace.TreeAllReduceConfig
	// MoEAllToAllConfig parameterizes the windowed all-to-all generator.
	MoEAllToAllConfig = trace.MoEAllToAllConfig
	// HaloConfig parameterizes the 2D/3D halo-exchange generator.
	HaloConfig = trace.HaloConfig
	// CheckpointConfig parameterizes the bursty checkpoint/storage generator.
	CheckpointConfig = trace.CheckpointConfig
)

// Graph workload generators.
func RingAllReduceGraph(cfg RingAllReduceConfig) (*Graph, error) { return trace.RingAllReduce(cfg) }
func TreeAllReduceGraph(cfg TreeAllReduceConfig) (*Graph, error) { return trace.TreeAllReduce(cfg) }
func MoEAllToAllGraph(cfg MoEAllToAllConfig) (*Graph, error)     { return trace.MoEAllToAll(cfg) }
func HaloGraph(cfg HaloConfig) (*Graph, error)                   { return trace.Halo(cfg) }
func CheckpointGraph(cfg CheckpointConfig) (*Graph, error)       { return trace.Checkpoint(cfg) }

// DefaultGraphApp builds a graph application at its default size by registry
// name ("RING", "TREE", "MOE", "HALO2D", "HALO3D", "CKPT").
func DefaultGraphApp(name string) (*Graph, error) { return trace.DefaultGraph(name) }

// AppNames lists every built-in application — flat miniapps then graph
// generators — the single registry behind every CLI's -app grammar.
func AppNames() []string { return trace.Apps() }

// GraphAppNames lists the graph-generator applications.
func GraphAppNames() []string { return trace.GraphApps() }

// IsGraphApp reports whether name names a graph generator.
func IsGraphApp(name string) bool { return trace.IsGraphApp(name) }

// ParseApp canonicalizes an application name case-insensitively against the
// registry.
func ParseApp(s string) (string, error) { return trace.ParseApp(s) }

// Background traffic (Sec. IV-C).
type (
	// BackgroundConfig parameterizes a synthetic interference job.
	BackgroundConfig = workload.BackgroundConfig
	// BackgroundKind selects uniform-random or bursty interference.
	BackgroundKind = workload.BackgroundKind
)

// The two background patterns.
const (
	UniformRandom = workload.UniformRandom
	Bursty        = workload.Bursty
)

// Fault injection (extension beyond the paper): degrade the fabric before
// or during a run (Config.Faults, ExperimentOptions.Faults, the -faults
// flag of dfsim/dfsweep/dfvalidate) and measure the trade-off on the
// broken machine. Fault-aware routing steers around failed equipment or
// fails with ErrUnreachable; drops are byte-accounted and audited.
type (
	// FaultSpec declares which equipment fails: explicit IDs, seeded
	// fractions of each link class, a router count, and optional timed
	// fail/repair events. The zero value (or nil) degrades nothing.
	FaultSpec = faults.Spec
	// FaultEvent is one scheduled failure or repair.
	FaultEvent = faults.Event
)

// ParseFaultSpec parses the -faults CLI grammar, e.g.
// "global=0.25,local=0.1,routers=2,seed=7" or
// "fail=link:3-40@200us,repair=link:3-40@1.5ms".
func ParseFaultSpec(text string) (*FaultSpec, error) { return faults.ParseSpec(text) }

// ErrUnreachable reports that a source/destination pair has no live route
// on the degraded fabric; routing failures wrap it (use errors.Is).
var ErrUnreachable = routing.ErrUnreachable

// UnreachableError carries the unreachable router pair (use errors.As).
type UnreachableError = routing.UnreachableError

// WatchdogError reports a tripped DES stall watchdog (Config.WatchdogEvents
// / WatchdogTime, the -watchdog-events flag) with a fabric diagnostic.
type WatchdogError = des.WatchdogError

// Study orchestration.
type (
	// Config describes one simulation run.
	Config = core.Config
	// Result carries a run's measurements.
	Result = core.Result
	// Cell is one placement x routing combination (Table I).
	Cell = core.Cell
)

// Invariant auditing (Config.Audit, MultiConfig.Audit, the -audit flag of
// dfsim and dfsweep): machine-checked credit conservation, byte/packet
// conservation, VC-class monotonicity (deadlock-freedom witness), time
// monotonicity, and per-NIC FIFO injection.
type (
	// AuditSummary carries an audited run's check counts and any recorded
	// violations.
	AuditSummary = audit.Summary
	// AuditStats counts the invariant checks an audited run performed.
	AuditStats = audit.Stats
)

// Run executes one simulation.
func Run(cfg Config) (*Result, error) { return core.Run(cfg) }

// RunBatch executes independent simulations across a bounded worker pool
// (parallel <= 0 selects NumCPU) and returns results in config order,
// bit-identical to sequential Run calls at every worker count.
func RunBatch(cfgs []Config, parallel int) ([]*Result, error) { return core.RunBatch(cfgs, parallel) }

// Multijob co-runs (the production scenario of Sec. IV-C, with real
// application traces instead of synthetic background traffic).
type (
	// MultiConfig describes several applications sharing the machine.
	MultiConfig = core.MultiConfig
	// JobSpec is one application of a co-run.
	JobSpec = core.JobSpec
	// MultiResult carries per-job measurements of a co-run.
	MultiResult = core.MultiResult
	// JobResult is one job's share of a MultiResult.
	JobResult = core.JobResult
)

// RunMulti executes a multijob co-run: jobs are placed in order from the
// shared free pool and replayed concurrently on one fabric.
func RunMulti(cfg MultiConfig) (*MultiResult, error) { return core.RunMulti(cfg) }

// Batch scheduling (extension: the paper's "joint actions among
// applications and system" future work).
type (
	// SchedConfig describes the machine and scheduling discipline.
	SchedConfig = sched.Config
	// JobRequest is one job submission to the scheduler.
	JobRequest = sched.JobRequest
	// JobRecord is the scheduler's account of one completed job.
	JobRecord = sched.JobRecord
	// SchedResult is the outcome of a scheduling run.
	SchedResult = sched.Result
)

// Schedule runs a batch-scheduling trace: jobs arrive over simulated time,
// queue FCFS (optionally with backfill), run on the shared fabric, and
// release their nodes on completion.
func Schedule(cfg SchedConfig, jobs []JobRequest) (*SchedResult, error) {
	return sched.Run(cfg, jobs)
}

// ThetaConfig builds a run on the paper's machine.
func ThetaConfig(tr *Trace, cell Cell, seed int64) Config { return core.ThetaConfig(tr, cell, seed) }

// MiniConfig builds a run on the small test machine.
func MiniConfig(tr *Trace, cell Cell, seed int64) Config { return core.MiniConfig(tr, cell, seed) }

// AllCells lists the ten placement x routing configurations of Table I.
func AllCells() []Cell { return core.AllCells() }

// ExtremeCells lists the four sensitivity-study configurations.
func ExtremeCells() []Cell { return core.ExtremeCells() }

// Experiment harness.
type (
	// ExperimentOptions configures the experiment runner.
	ExperimentOptions = experiments.Options
	// ExperimentRunner regenerates the paper's tables and figures.
	ExperimentRunner = experiments.Runner
	// Report is an experiment's output.
	Report = experiments.Report
	// ExperimentScale selects quick or paper-scale runs.
	ExperimentScale = experiments.Scale
)

// Experiment scales.
const (
	ScaleQuick = experiments.ScaleQuick
	ScalePaper = experiments.ScalePaper
)

// NewRunner builds an experiment runner.
func NewRunner(opts ExperimentOptions) *ExperimentRunner { return experiments.NewRunner(opts) }

// Sweep farm: a content-addressed, integrity-checked on-disk store of
// simulation results (see cmd/dffarm). Every run configuration has one
// canonical encoding whose SHA-256 is its address; banked cells replay
// byte-identically instead of re-simulating, corrupt or missing entries
// degrade to a re-run, and sweeps shard across processes via FarmOptions.
type (
	// FarmStore is the on-disk content-addressed result store.
	FarmStore = farm.Store
	// Farm executes config sets against a FarmStore.
	Farm = farm.Farm
	// FarmOptions configures parallelism, sharding, and progress callbacks.
	FarmOptions = farm.Options
	// FarmStats is the hit/miss/corrupt accounting of a farm run.
	FarmStats = farm.Stats
	// FarmProgress describes one finished sweep cell.
	FarmProgress = farm.Progress
	// FarmManifest is the advisory bookkeeping record of one sweep job.
	FarmManifest = farm.Manifest
)

// Execution resilience: per-cell scrubbing, quarantine bookkeeping, and
// deterministic chaos injection (see cmd/dffarm's -scrub, -retries,
// -quarantine-limit, and -chaos flags).
type (
	// FarmScrubReport summarizes a store integrity scrub
	// (FarmStore.Scrub): corrupt entries are quarantined, in-flight
	// writes skipped, and the next sweep re-runs what was removed.
	FarmScrubReport = farm.ScrubReport
	// FarmQuarantineRecord is the diagnostic record of one poisoned job:
	// the cell's name, attempts consumed, and one line per failure.
	FarmQuarantineRecord = farm.QuarantineRecord
	// ChaosSpec declares a deterministic fault-injection plan for
	// resilience testing: per-site probabilities, a seed, and a per-key
	// fault cap that keeps retry budgets convergent.
	ChaosSpec = chaos.Spec
	// ChaosInjector makes the seeded injection decisions; nil disables
	// injection at zero cost (FarmOptions.Chaos).
	ChaosInjector = chaos.Injector
)

// ParseChaosSpec parses the -chaos CLI grammar, e.g.
// "worker.kill=0.2,store.read=0.1,max=1,seed=7".
func ParseChaosSpec(text string) (*ChaosSpec, error) { return chaos.ParseSpec(text) }

// NewChaosInjector builds an injector from a spec; a nil or empty spec
// yields a nil injector (injection disabled).
func NewChaosInjector(spec *ChaosSpec) *ChaosInjector { return chaos.New(spec) }

// OpenFarm opens (creating if needed) a farm store rooted at dir.
func OpenFarm(dir string) (*FarmStore, error) { return farm.Open(dir) }

// NewFarm builds a Farm over a store.
func NewFarm(store *FarmStore, opts FarmOptions) *Farm { return farm.New(store, opts) }

// EncodeConfig returns the canonical encoding of a run configuration — the
// identity the farm hashes into a content address. Configs without a
// canonical identity (nil trace or machine, a pre-resolved fault state)
// return an error.
func EncodeConfig(cfg Config) (string, error) { return farm.Encode(cfg) }

// ConfigAddress returns the content address (SHA-256 of the canonical
// encoding) of a run configuration.
func ConfigAddress(cfg Config) (string, error) { return farm.Address(cfg) }

// FarmJobID derives the stable job identifier of an ordered address list.
func FarmJobID(addrs []string) string { return farm.JobID(addrs) }

// WriteFarmCorpus emits the flat training-corpus CSV for a completed sweep:
// one row per config with a result, features then measured targets.
func WriteFarmCorpus(w io.Writer, cfgs []Config, results []*Result) (rows, skipped int, err error) {
	return farm.WriteCorpus(w, cfgs, results)
}

// ExperimentIDs lists every reproducible artifact: table1, table2,
// fig2 … fig10.
func ExperimentIDs() []string { return experiments.IDs() }

// ExtensionExperimentIDs lists the experiments beyond the paper's figures:
// xmap (task mapping, the paper's future work), xmulti (real-trace co-run
// interference), and figr (resilience sweep on a degraded fabric).
func ExtensionExperimentIDs() []string { return experiments.ExtensionIDs() }
