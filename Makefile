# Tier-1 verification and performance tracking for the dragonfly study.

GO ?= go

.PHONY: build test race bench

build:
	$(GO) build ./...

test: build
	$(GO) test ./...

# The concurrency surfaces: the parallel sweep executor and batch runner.
race:
	$(GO) test -race ./internal/experiments ./internal/core

# Refresh the in-repo performance snapshot (engine microbenches + artifact
# regeneration benches). Commit BENCH_des.json so the perf trajectory is
# visible in history.
bench:
	$(GO) run ./cmd/dfbench -out BENCH_des.json ./internal/des .
