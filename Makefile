# Tier-1 verification and performance tracking for the dragonfly study.

GO ?= go

.PHONY: build test race fuzz-smoke bench bench-diff scale-smoke farm-smoke collectives-smoke chaos-smoke

build:
	$(GO) build ./...

test: build
	$(GO) test ./...

# Module-wide under the race detector: the parallel sweep executor and batch
# runner are the concurrency surfaces, but every package runs so a data race
# introduced anywhere is caught.
race:
	$(GO) test -race ./...

# CI smoke for the native fuzz targets; `go test -fuzz` accepts one target
# per invocation, so each gets its own short budget.
fuzz-smoke:
	$(GO) test -fuzz=FuzzRoute$$ -fuzztime=10s ./internal/routing
	$(GO) test -fuzz=FuzzRouteFaults -fuzztime=10s ./internal/routing
	$(GO) test -fuzz=FuzzPolicy -fuzztime=10s ./internal/routing
	$(GO) test -fuzz=FuzzPlacement -fuzztime=10s ./internal/placement
	$(GO) test -fuzz=FuzzParseSpec -fuzztime=10s ./internal/faults
	$(GO) test -fuzz=FuzzFaultSequence -fuzztime=10s ./internal/faults
	$(GO) test -fuzz=FuzzGraph -fuzztime=10s ./internal/trace

# Refresh the in-repo performance snapshot (engine/fabric/routing
# microbenches + artifact regeneration benches, plus the -scale suite's
# big-machine construction/memory entries). Commit BENCH_des.json so the
# perf trajectory is visible in history.
bench:
	$(GO) run ./cmd/dfbench -scale -out BENCH_des.json

# Allocation-regression gate: rerun the suites and fail if any benchmark's
# allocs/op or B/op grew >20% past the committed BENCH_des.json, or if the
# scale suite's live_bytes/op / bytes_per_router grew likewise (a
# reintroduced O(routers^2) table overshoots by orders of magnitude). The
# allocation counts are deterministic, so this gate is machine-independent;
# ns/op deltas print as advisory only.
bench-diff:
	$(GO) run ./cmd/dfbench -scale -diff -against BENCH_des.json

# Sweep-farm smoke: run a small dffarm job cold (every cell simulates and
# is banked in the content-addressed store), rerun it warm (every cell must
# replay — the grep fails the target if anything re-simulated), and require
# the training corpora of the two passes byte-identical. Exercises the
# whole farm path end to end: sweep grammar, canonical config addressing,
# store integrity verification, corpus emission.
FARM_SMOKE := /tmp/dffarm-smoke
farm-smoke: build
	rm -rf $(FARM_SMOKE) && mkdir -p $(FARM_SMOKE)
	$(GO) run ./cmd/dffarm -cache $(FARM_SMOKE)/farm -apps CR,FB -placements cont,rand -routings min,adp -quiet -corpus $(FARM_SMOKE)/cold.csv 2>&1 | tee $(FARM_SMOKE)/cold.log
	grep -q "0 hits, 8 simulated" $(FARM_SMOKE)/cold.log
	$(GO) run ./cmd/dffarm -cache $(FARM_SMOKE)/farm -apps CR,FB -placements cont,rand -routings min,adp -resume -quiet -corpus $(FARM_SMOKE)/warm.csv 2>&1 | tee $(FARM_SMOKE)/warm.log
	grep -q "8 hits, 0 simulated" $(FARM_SMOKE)/warm.log
	cmp $(FARM_SMOKE)/cold.csv $(FARM_SMOKE)/warm.csv
	@echo "farm-smoke: warm rerun replayed all 8 cells from the store; corpora byte-identical"

# Collective-workload smoke: the graph-executor determinism suite (ring
# all-reduce and MoE all-to-all on both the Dragonfly and Dragonfly+ mini
# machines — reruns, the auditor, disabled pooling, and 1/2/4 RunBatch
# workers must all reproduce bit-identical digests), then the figa
# placement-vs-routing sweep of all six graph generators checked against
# its committed golden report.
collectives-smoke: build
	$(GO) test ./internal/topotest -run 'TestCollective' -count=1
	$(GO) test ./internal/experiments -run 'TestGoldenReports/figa|TestFarmBackedGoldenFigA' -count=1

# Chaos smoke: the same small sweep runs once clean and once under seeded
# deterministic fault injection at every site — bit-flipped store reads,
# failed writes, worker panics and kills, simulated DES stalls — with a
# retry budget that the per-key injection cap guarantees converges. The
# gate: faults actually fired, no cell was quarantined, the chaos corpus is
# byte-identical to the clean one, and a post-hoc scrub of the hammered
# store finds zero corrupt entries. Self-healing proven, not trusted.
CHAOS_SMOKE := /tmp/dffarm-chaos-smoke
CHAOS_SPEC := store.read=0.9,store.write=0.9,worker.panic=0.9,worker.kill=0.9,sim.stall=0.9,max=1,seed=7
chaos-smoke: build
	rm -rf $(CHAOS_SMOKE) && mkdir -p $(CHAOS_SMOKE)
	$(GO) run ./cmd/dffarm -cache $(CHAOS_SMOKE)/clean -apps CR -placements cont,rand -routings min,adp -quiet -corpus $(CHAOS_SMOKE)/clean.csv
	$(GO) run ./cmd/dffarm -cache $(CHAOS_SMOKE)/chaos -apps CR -placements cont,rand -routings min,adp -quiet -corpus $(CHAOS_SMOKE)/chaos.csv \
		-chaos "$(CHAOS_SPEC)" -retries 5 -quarantine-limit 1 2>&1 | tee $(CHAOS_SMOKE)/chaos.log
	grep -q "faults injected" $(CHAOS_SMOKE)/chaos.log
	grep -q "0 quarantined" $(CHAOS_SMOKE)/chaos.log
	cmp $(CHAOS_SMOKE)/clean.csv $(CHAOS_SMOKE)/chaos.csv
	$(GO) run ./cmd/dffarm -cache $(CHAOS_SMOKE)/chaos -scrub 2>&1 | tee $(CHAOS_SMOKE)/scrub.log
	grep -q "0 corrupt" $(CHAOS_SMOKE)/scrub.log
	@echo "chaos-smoke: chaos sweep converged to the clean corpus byte-for-byte; store scrub clean"

# Big-machine shakeout: wire ~20k-router Dragonfly and Dragonfly+ machines,
# route 1k validated sampled pairs each, and drive an audited traffic burst
# under the DES stall watchdog. The 4096 MB memory budget (vs ~650 MB
# measured) turns a quadratic-table regression into a clean CI failure
# instead of an OOM kill; the whole target runs in well under a minute.
scale-smoke: build
	$(GO) run ./cmd/dfvalidate -scale-smoke
