// Sensitivity: the paper's Figure 7 in miniature — sweep the message-size
// scale of the crystal router and watch the crossover between localized
// (cont-min) and balanced (rand-adp/rand-min) configurations as the
// communication intensity grows.
package main

import (
	"fmt"
	"log"

	"dragonfly"
)

func main() {
	tr, err := dragonfly.CRTrace(dragonfly.CRConfig{Ranks: 64, MessageBytes: 24 * 1024})
	if err != nil {
		log.Fatal(err)
	}
	scales := []float64{0.01, 0.1, 0.5, 1, 2}
	cells := dragonfly.ExtremeCells()

	fmt.Println("CR max communication time relative to rand-adp (%), by message scale")
	fmt.Printf("%-8s", "scale")
	for _, c := range cells {
		fmt.Printf("  %-9s", c.Name())
	}
	fmt.Println()

	baseline := dragonfly.Cell{Placement: dragonfly.RandomNode, Routing: dragonfly.Adaptive}
	for _, s := range scales {
		base := runAt(tr, baseline, s)
		fmt.Printf("%-8g", s)
		for _, cell := range cells {
			v := runAt(tr, cell, s)
			fmt.Printf("  %-9.1f", 100*float64(v)/float64(base))
		}
		fmt.Println()
	}
	fmt.Println()
	fmt.Println("as intensity grows, the advantage of localized placement shrinks and")
	fmt.Println("minimal routing loses ground to adaptive (paper Sec. IV-B; at the")
	fmt.Println("paper's full scale the balanced configurations overtake — run")
	fmt.Println("`dfsweep -exp fig7 -scale paper`).")
}

func runAt(tr *dragonfly.Trace, cell dragonfly.Cell, scale float64) dragonfly.Time {
	cfg := dragonfly.MiniConfig(tr, cell, 2)
	cfg.MsgScale = scale
	res, err := dragonfly.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}
	return res.MaxCommTime()
}
