// Scheduler: a day-in-the-life batch queue on the mini machine — jobs of
// different sizes and communication patterns arrive over time, queue,
// backfill, and interfere on the shared fabric, tying together everything
// the library models: placement, routing, replay, and multi-tenancy.
package main

import (
	"fmt"
	"log"

	"dragonfly"
)

func mustCR(ranks int, bytes int64) *dragonfly.Trace {
	tr, err := dragonfly.CRTrace(dragonfly.CRConfig{Ranks: ranks, MessageBytes: bytes})
	if err != nil {
		log.Fatal(err)
	}
	return tr
}

func mustAMG(x int) *dragonfly.Trace {
	tr, err := dragonfly.AMGTrace(dragonfly.AMGConfig{X: x, Y: x, Z: x, Cycles: 3, Levels: 3, PeakBytes: 10 * 1024})
	if err != nil {
		log.Fatal(err)
	}
	return tr
}

func main() {
	jobs := []dragonfly.JobRequest{
		{Name: "cfd-big", Trace: mustCR(40, 96*1024), Placement: dragonfly.Contiguous, Arrival: 0},
		{Name: "solver", Trace: mustAMG(3), Placement: dragonfly.Contiguous, Arrival: 5 * dragonfly.Microsecond},
		{Name: "cfd-huge", Trace: mustCR(50, 64*1024), Placement: dragonfly.RandomNode, Arrival: 10 * dragonfly.Microsecond},
		{Name: "probe", Trace: mustCR(8, 16*1024), Placement: dragonfly.RandomRouter, Arrival: 15 * dragonfly.Microsecond},
	}

	for _, backfill := range []bool{false, true} {
		res, err := dragonfly.Schedule(dragonfly.SchedConfig{
			Topology: dragonfly.MiniTopology(),
			Params:   dragonfly.DefaultParams(),
			Routing:  dragonfly.Adaptive,
			Seed:     3,
			Backfill: backfill,
		}, jobs)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("discipline: FCFS backfill=%v\n", backfill)
		fmt.Printf("  %-9s %-6s %-12s %-12s %-12s %s\n", "job", "ranks", "wait", "comm(max)", "response", "note")
		for _, j := range res.Jobs {
			note := ""
			if j.Backfilled {
				note = "backfilled"
			}
			fmt.Printf("  %-9s %-6d %-12v %-12v %-12v %s\n",
				j.Name, j.Ranks, j.Wait(), j.MaxCommTime(), j.Response(), note)
		}
		fmt.Printf("  makespan %v, mean wait %v\n\n", res.Makespan, res.MeanWait())
	}
	fmt.Println("backfill starts the small probe in the hole left by the queued 50-rank")
	fmt.Println("job; the shared fabric makes its communication time placement-dependent.")
}
