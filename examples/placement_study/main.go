// Placement study: the core of the paper's Figure 3 — replay all three
// applications under every placement x routing configuration and rank the
// configurations by maximum communication time, showing that different
// communication patterns prefer different ends of the localize-vs-balance
// trade-off.
package main

import (
	"fmt"
	"log"
	"sort"

	"dragonfly"
)

func appTraces() map[string]*dragonfly.Trace {
	cr, err := dragonfly.CRTrace(dragonfly.CRConfig{Ranks: 64, MessageBytes: 24 * 1024})
	if err != nil {
		log.Fatal(err)
	}
	fb, err := dragonfly.FBTrace(dragonfly.FBConfig{
		X: 4, Y: 4, Z: 4, Iterations: 2,
		MinBytes: 6 * 1024, MaxBytes: 160 * 1024,
		FarPartners: 2, FarFraction: 0.1, Seed: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	amg, err := dragonfly.AMGTrace(dragonfly.AMGConfig{
		X: 4, Y: 4, Z: 4, Cycles: 3, Levels: 4, PeakBytes: 10 * 1024,
	})
	if err != nil {
		log.Fatal(err)
	}
	return map[string]*dragonfly.Trace{"CR": cr, "FB": fb, "AMG": amg}
}

func main() {
	traces := appTraces()
	for _, app := range []string{"CR", "FB", "AMG"} {
		type row struct {
			name string
			max  dragonfly.Time
		}
		var rows []row
		for _, cell := range dragonfly.AllCells() {
			res, err := dragonfly.Run(dragonfly.MiniConfig(traces[app], cell, 1))
			if err != nil {
				log.Fatal(err)
			}
			rows = append(rows, row{cell.Name(), res.MaxCommTime()})
		}
		sort.Slice(rows, func(i, j int) bool { return rows[i].max < rows[j].max })
		fmt.Printf("%s — configurations ranked by max communication time:\n", app)
		for i, r := range rows {
			marker := "  "
			if i == 0 {
				marker = "* "
			}
			fmt.Printf("  %s%-9s %v\n", marker, r.name, r.max)
		}
		fmt.Println()
	}
	fmt.Println("(* = best; the paper finds CR/FB prefer balanced-traffic placements")
	fmt.Println(" while the lighter, bursty AMG prefers localized placement.)")
}
