// Co-run: two real applications sharing the machine — the "bully" scenario
// of the authors' prior work that motivates this paper's interference study.
// A light, bursty AMG solver co-runs with a heavy crystal router; the AMG
// job's slowdown depends strongly on how both jobs are placed.
package main

import (
	"fmt"
	"log"

	"dragonfly"
)

func main() {
	amg, err := dragonfly.AMGTrace(dragonfly.AMGConfig{
		X: 3, Y: 3, Z: 3, Cycles: 3, Levels: 4, PeakBytes: 10 * 1024,
	})
	if err != nil {
		log.Fatal(err)
	}
	cr, err := dragonfly.CRTrace(dragonfly.CRConfig{Ranks: 32, MessageBytes: 256 * 1024})
	if err != nil {
		log.Fatal(err)
	}

	base := dragonfly.MultiConfig{
		Topology: dragonfly.MiniTopology(),
		Params:   dragonfly.DefaultParams(),
		Routing:  dragonfly.Adaptive,
		Seed:     7,
	}

	alone := base
	alone.Jobs = []dragonfly.JobSpec{
		{Name: "AMG", Trace: amg, Placement: dragonfly.Contiguous},
	}
	ref, err := dragonfly.RunMulti(alone)
	if err != nil {
		log.Fatal(err)
	}
	baseline := ref.Jobs[0].MaxCommTime()
	fmt.Printf("AMG alone: %v\n\n", baseline)

	fmt.Printf("%-32s  %-12s  %s\n", "co-run placement (AMG / CR)", "AMG time", "slowdown")
	for _, pair := range []struct {
		amg, cr dragonfly.PlacementPolicy
	}{
		{dragonfly.Contiguous, dragonfly.Contiguous},
		{dragonfly.Contiguous, dragonfly.RandomNode},
		{dragonfly.RandomNode, dragonfly.RandomNode},
	} {
		cfg := base
		cfg.Jobs = []dragonfly.JobSpec{
			{Name: "AMG", Trace: amg, Placement: pair.amg},
			{Name: "CR", Trace: cr, Placement: pair.cr},
		}
		res, err := dragonfly.RunMulti(cfg)
		if err != nil {
			log.Fatal(err)
		}
		if !res.Completed() {
			log.Fatal("co-run did not complete")
		}
		amgTime := res.Jobs[0].MaxCommTime()
		fmt.Printf("%-32s  %-12v  %.2fx\n",
			fmt.Sprintf("%v / %v", pair.amg, pair.cr),
			amgTime, float64(amgTime)/float64(baseline))
	}
	fmt.Println()
	fmt.Println("scattering both jobs interleaves their traffic on shared links; keeping")
	fmt.Println("the sensitive job contiguous isolates it from the bully (paper Sec. IV-C).")
}
