// Interference: the paper's Sec. IV-C in miniature — run the AMG solver
// alone, then against uniform-random and bursty background traffic
// occupying the rest of the machine, and show that localized configurations
// (cont-min) suffer less external interference than balanced ones
// (rand-adp).
package main

import (
	"fmt"
	"log"

	"dragonfly"
)

func run(tr *dragonfly.Trace, cell dragonfly.Cell, bg *dragonfly.BackgroundConfig) *dragonfly.Result {
	cfg := dragonfly.MiniConfig(tr, cell, 5)
	if bg != nil {
		b := *bg
		cfg.Background = &b
		cfg.MaxSimTime = dragonfly.Second
	}
	res, err := dragonfly.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}
	if !res.Completed {
		log.Fatalf("%s did not complete", cell.Name())
	}
	return res
}

func main() {
	// 27 ranks on the 64-node mini machine: the other 37 nodes host the
	// synthetic background job, as in the paper's multijob setup.
	tr, err := dragonfly.AMGTrace(dragonfly.AMGConfig{
		X: 3, Y: 3, Z: 3, Cycles: 3, Levels: 4, PeakBytes: 10 * 1024,
	})
	if err != nil {
		log.Fatal(err)
	}
	// Intervals sized to the miniature app's ~40us run so several waves of
	// interference land while it communicates.
	uniform := &dragonfly.BackgroundConfig{
		Kind:     dragonfly.UniformRandom,
		MsgBytes: 64 * 1024,
		Interval: 5 * dragonfly.Microsecond,
	}
	bursty := &dragonfly.BackgroundConfig{
		Kind:     dragonfly.Bursty,
		MsgBytes: 64 * 1024,
		Interval: 10 * dragonfly.Microsecond,
		FanOut:   16,
	}

	fmt.Println("AMG (27 ranks) under external network interference")
	fmt.Printf("%-9s  %-12s  %-12s  %-12s  %s\n", "config", "alone", "uniform bg", "bursty bg", "worst slowdown")
	for _, cell := range []dragonfly.Cell{
		{Placement: dragonfly.Contiguous, Routing: dragonfly.Minimal},
		{Placement: dragonfly.RandomCabinet, Routing: dragonfly.Minimal},
		{Placement: dragonfly.RandomNode, Routing: dragonfly.Adaptive},
	} {
		alone := run(tr, cell, nil).MaxCommTime()
		uni := run(tr, cell, uniform).MaxCommTime()
		bur := run(tr, cell, bursty).MaxCommTime()
		worst := uni
		if bur > worst {
			worst = bur
		}
		fmt.Printf("%-9s  %-12v  %-12v  %-12v  %.1fx\n",
			cell.Name(), alone, uni, bur, float64(worst)/float64(alone))
	}
	fmt.Println()
	fmt.Println("localized communication (cont-min) forms a relatively isolated region of")
	fmt.Println("the shared network, reducing the variation caused by other jobs.")
}
