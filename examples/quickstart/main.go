// Quickstart: simulate the crystal router miniapp on a small dragonfly
// machine under two contrasting configurations — contiguous placement with
// minimal routing (localized communication) versus random-node placement
// with adaptive routing (balanced traffic) — and compare the paper's four
// metrics.
package main

import (
	"fmt"
	"log"

	"dragonfly"
)

func main() {
	// A scaled-down crystal router: 64 ranks, 24 KB multistage exchanges.
	tr, err := dragonfly.CRTrace(dragonfly.CRConfig{Ranks: 64, MessageBytes: 24 * 1024})
	if err != nil {
		log.Fatal(err)
	}

	cells := []dragonfly.Cell{
		{Placement: dragonfly.Contiguous, Routing: dragonfly.Minimal},
		{Placement: dragonfly.RandomNode, Routing: dragonfly.Adaptive},
	}
	fmt.Println("crystal router (64 ranks) on the mini dragonfly machine")
	fmt.Println()
	for _, cell := range cells {
		res, err := dragonfly.Run(dragonfly.MiniConfig(tr, cell, 42))
		if err != nil {
			log.Fatal(err)
		}
		var hops, satMs float64
		for _, h := range res.AvgHops {
			hops += h
		}
		hops /= float64(len(res.AvgHops))
		for _, s := range res.LocalSaturation(false) {
			satMs += s
		}
		fmt.Printf("%-9s  max comm time %-10v  mean hops %.2f  total local saturation %.4g ms\n",
			cell.Name(), res.MaxCommTime(), hops, satMs)
	}
	fmt.Println()
	fmt.Println("localizing (cont-min) shortens paths; balancing (rand-adp) spreads load —")
	fmt.Println("which one wins depends on the application (see examples/placement_study).")
}
