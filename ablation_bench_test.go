package dragonfly

// Ablation benchmarks for the design choices called out in DESIGN.md. Each
// benchmark runs one simulation cell per iteration with one knob moved off
// its default and reports the resulting maximum communication time
// (max_comm_ms) alongside wall time, so `go test -bench=Ablation` shows how
// much each choice matters to both fidelity and simulator cost.

import (
	"testing"

	"dragonfly/internal/routing"
)

// ablationWorkload is a congestion-prone cell: the quick crystal router
// under contiguous placement and adaptive routing, where gateway spreading,
// misrouting bias, and buffering all matter.
func ablationWorkload(b *testing.B) *Trace {
	b.Helper()
	tr, err := CRTrace(CRConfig{Ranks: 64, MessageBytes: 48 * 1024})
	if err != nil {
		b.Fatal(err)
	}
	return tr
}

func runAblation(b *testing.B, mutate func(*Config)) {
	b.Helper()
	tr := ablationWorkload(b)
	var totalMs float64
	for i := 0; i < b.N; i++ {
		cfg := MiniConfig(tr, Cell{Placement: Contiguous, Routing: Adaptive}, 1)
		mutate(&cfg)
		res, err := Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if !res.Completed {
			b.Fatal("ablation run did not complete")
		}
		totalMs += res.MaxCommTime().Milliseconds()
	}
	b.ReportMetric(totalMs/float64(b.N), "max_comm_ms")
}

// --- gateway selection -------------------------------------------------------

func BenchmarkAblationGatewaySpread(b *testing.B) {
	runAblation(b, func(cfg *Config) { cfg.Params.Route.Gateway = routing.GatewaySpread })
}

func BenchmarkAblationGatewayNearest(b *testing.B) {
	runAblation(b, func(cfg *Config) { cfg.Params.Route.Gateway = routing.GatewayNearest })
}

func BenchmarkAblationGatewayRandom(b *testing.B) {
	runAblation(b, func(cfg *Config) { cfg.Params.Route.Gateway = routing.GatewayRandom })
}

// --- UGAL minimal bias -------------------------------------------------------

func BenchmarkAblationBiasDefault(b *testing.B) {
	runAblation(b, func(cfg *Config) {})
}

func BenchmarkAblationBiasZero(b *testing.B) {
	// Eager misrouting: any backlog advantage triggers a Valiant path.
	runAblation(b, func(cfg *Config) { cfg.Params.Route.MinimalBias = -1 })
}

func BenchmarkAblationBiasHuge(b *testing.B) {
	// Effectively never misroute: adaptive degenerates to minimal.
	runAblation(b, func(cfg *Config) { cfg.Params.Route.MinimalBias = 512 * 1024 })
}

// --- Valiant candidate count -------------------------------------------------

func BenchmarkAblationValiant1(b *testing.B) {
	runAblation(b, func(cfg *Config) { cfg.Params.Route.ValiantCandidates = 1 })
}

func BenchmarkAblationValiant4(b *testing.B) {
	runAblation(b, func(cfg *Config) { cfg.Params.Route.ValiantCandidates = 4 })
}

// --- packet size ---------------------------------------------------------------

func benchPacket(b *testing.B, bytes int) {
	runAblation(b, func(cfg *Config) {
		cfg.Params.PacketBytes = bytes
		// Keep buffers >= one packet so the configuration stays valid.
		if cfg.Params.TerminalVCBuffer < bytes {
			cfg.Params.TerminalVCBuffer = bytes
		}
		if cfg.Params.LocalVCBuffer < bytes {
			cfg.Params.LocalVCBuffer = bytes
		}
		if cfg.Params.GlobalVCBuffer < bytes {
			cfg.Params.GlobalVCBuffer = bytes
		}
	})
}

func BenchmarkAblationPacket1K(b *testing.B)  { benchPacket(b, 1024) }
func BenchmarkAblationPacket4K(b *testing.B)  { benchPacket(b, 4096) }
func BenchmarkAblationPacket16K(b *testing.B) { benchPacket(b, 16384) }

// --- VC buffer depth -----------------------------------------------------------

func benchBuffers(b *testing.B, factor int) {
	runAblation(b, func(cfg *Config) {
		if factor > 0 {
			cfg.Params.TerminalVCBuffer *= factor
			cfg.Params.LocalVCBuffer *= factor
			cfg.Params.GlobalVCBuffer *= factor
		} else {
			// Halve, clamped to one packet.
			half := func(v int) int {
				if v/2 < cfg.Params.PacketBytes {
					return cfg.Params.PacketBytes
				}
				return v / 2
			}
			cfg.Params.TerminalVCBuffer = half(cfg.Params.TerminalVCBuffer)
			cfg.Params.LocalVCBuffer = half(cfg.Params.LocalVCBuffer)
			cfg.Params.GlobalVCBuffer = half(cfg.Params.GlobalVCBuffer)
		}
	})
}

func BenchmarkAblationBuffersHalf(b *testing.B)   { benchBuffers(b, 0) }
func BenchmarkAblationBuffersPaper(b *testing.B)  { benchBuffers(b, 1) }
func BenchmarkAblationBuffersDouble(b *testing.B) { benchBuffers(b, 2) }
