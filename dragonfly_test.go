package dragonfly

import (
	"testing"
)

// TestPublicAPIQuickstart exercises the documented quick-start flow on the
// small machine.
func TestPublicAPIQuickstart(t *testing.T) {
	tr, err := CRTrace(CRConfig{Ranks: 32, MessageBytes: 8 * 1024})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(MiniConfig(tr, Cell{Placement: RandomNode, Routing: Minimal}, 1))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed || res.MaxCommTime() <= 0 {
		t.Fatalf("quickstart run failed: completed=%v max=%v", res.Completed, res.MaxCommTime())
	}
}

func TestPublicAPICatalogs(t *testing.T) {
	if got := len(AllCells()); got != 10 {
		t.Errorf("AllCells = %d, want 10", got)
	}
	if got := len(ExtremeCells()); got != 4 {
		t.Errorf("ExtremeCells = %d, want 4", got)
	}
	if got := len(AllPlacements()); got != 5 {
		t.Errorf("AllPlacements = %d, want 5", got)
	}
	if got := len(ExperimentIDs()); got != 11 {
		t.Errorf("ExperimentIDs = %d, want 11", got)
	}
	top, err := NewTopology(Theta())
	if err != nil {
		t.Fatal(err)
	}
	if top.NumNodes() != 3456 {
		t.Errorf("Theta nodes = %d", top.NumNodes())
	}
	if _, err := ParsePlacement("rand"); err != nil {
		t.Error(err)
	}
	if _, err := ParseRouting("adp"); err != nil {
		t.Error(err)
	}
}

func TestPublicAPIExperimentRunner(t *testing.T) {
	r := NewRunner(ExperimentOptions{Scale: ScaleQuick, Seed: 2})
	rep, err := r.Run("table1")
	if err != nil {
		t.Fatal(err)
	}
	if rep.ID != "table1" {
		t.Fatalf("report id = %q", rep.ID)
	}
}

func TestPublicAPIBackgroundRun(t *testing.T) {
	tr, err := AMGTrace(AMGConfig{X: 3, Y: 3, Z: 3, Cycles: 1, Levels: 2, PeakBytes: 8 * 1024})
	if err != nil {
		t.Fatal(err)
	}
	cfg := MiniConfig(tr, Cell{Placement: Contiguous, Routing: Adaptive}, 3)
	cfg.Background = &BackgroundConfig{
		Kind:     UniformRandom,
		MsgBytes: 16 * 1024,
		Interval: 10 * Microsecond,
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatal("background run did not complete")
	}
	if res.BackgroundPeakLoad <= 0 {
		t.Fatal("no background peak load recorded")
	}
}
