package faults_test

import (
	"reflect"
	"testing"

	"dragonfly/internal/faults"
	"dragonfly/internal/topology"
)

// TestFlapExpansion: a flap resolves into a well-formed alternating
// fail/repair timeline — times ascending, every fail followed by its
// repair, ending healthy — and the expansion is a pure function of
// (spec, machine).
func TestFlapExpansion(t *testing.T) {
	ic := mini(t)
	a := topology.RouterID(0)
	b := ic.LocalNeighbors(a)[0]
	spec := &faults.Spec{
		Flaps:     []faults.Flap{{A: a, B: b, MTBF: 100_000, MTTR: 50_000}}, // 100us : 50us
		FlapUntil: 1_000_000,                                               // 1ms
		Seed:      7,
	}
	s1, err := faults.Resolve(spec, ic)
	if err != nil {
		t.Fatal(err)
	}
	evs := s1.Events()
	if len(evs) == 0 {
		t.Fatal("flap expanded to no events over 10 expected up/down cycles")
	}
	if len(evs)%2 != 0 {
		t.Fatalf("flap timeline has %d events; fails and repairs must pair", len(evs))
	}
	for i, ev := range evs {
		if ev.IsRouter || ev.A != a || ev.B != b {
			t.Fatalf("event %d targets %v, want link %d-%d", i, ev, a, b)
		}
		if i > 0 && ev.At < evs[i-1].At {
			t.Fatalf("events not time-sorted at %d: %v after %v", i, ev, evs[i-1])
		}
		if want := i%2 == 1; ev.Repair != want {
			t.Fatalf("event %d repair=%t, want alternating fail/repair", i, ev.Repair)
		}
	}
	if !evs[len(evs)-1].Repair {
		t.Fatal("flap timeline does not end with a repair")
	}

	s2, err := faults.Resolve(spec, ic)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(evs, s2.Events()) {
		t.Fatal("identical specs expanded to different flap timelines")
	}

	other := *spec
	other.Seed = 8
	s3, err := faults.Resolve(&other, ic)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(evs, s3.Events()) {
		t.Fatal("seeds 7 and 8 expanded to identical flap timelines")
	}

	// Applying the whole timeline leaves the machine healthy.
	for _, ev := range evs {
		s1.Apply(ev)
	}
	if s1.DownLocalLinks() != 0 || s1.DownGlobalConns() != 0 || len(s1.DownRouters()) != 0 {
		t.Fatalf("flapped machine not healthy after its final repair: %s", s1.Describe())
	}
}

// TestFlapStreamsAreIndependent: adding a second flap must not perturb the
// first flap's timeline.
func TestFlapStreamsAreIndependent(t *testing.T) {
	ic := mini(t)
	a := topology.RouterID(0)
	b := ic.LocalNeighbors(a)[0]
	one := &faults.Spec{
		Flaps: []faults.Flap{{A: a, B: b, MTBF: 100_000, MTTR: 50_000}},
		Seed:  3,
	}
	two := &faults.Spec{
		Flaps: []faults.Flap{
			{A: a, B: b, MTBF: 100_000, MTTR: 50_000},
			{IsRouter: true, Router: 5, MTBF: 200_000, MTTR: 20_000},
		},
		Seed: 3,
	}
	s1, err := faults.Resolve(one, ic)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := faults.Resolve(two, ic)
	if err != nil {
		t.Fatal(err)
	}
	var linkEvents []faults.Event
	for _, ev := range s2.Events() {
		if !ev.IsRouter {
			linkEvents = append(linkEvents, ev)
		}
	}
	if !reflect.DeepEqual(s1.Events(), linkEvents) {
		t.Fatal("adding a router flap perturbed the link flap's timeline")
	}
}

// TestGroupFaults: group=G is a correlated whole-group outage, applied and
// repaired as one unit through statics and dynamic events alike.
func TestGroupFaults(t *testing.T) {
	ic := mini(t)
	const g = 1
	s, err := faults.Resolve(&faults.Spec{FailGroups: []int{g}}, ic)
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < ic.NumRouters(); r++ {
		want := ic.GroupOfRouter(topology.RouterID(r)) != g
		if s.RouterUp(topology.RouterID(r)) != want {
			t.Fatalf("router %d up=%t after failing group %d", r, !want, g)
		}
	}
	s.Apply(faults.Event{IsGroup: true, Group: g, Repair: true})
	if len(s.DownRouters()) != 0 {
		t.Fatalf("group repair left routers down: %v", s.DownRouters())
	}
}

// TestBundleFaults: bundle=G1-G2 downs exactly the global cables between
// the two groups, both endpoint views agreeing, and repairs as one unit.
func TestBundleFaults(t *testing.T) {
	ic := mini(t)
	g1, g2 := 0, 1
	s, err := faults.Resolve(&faults.Spec{FailBundles: [][2]int{{g1, g2}}}, ic)
	if err != nil {
		t.Fatal(err)
	}
	inBundle := func(c topology.GlobalConn) bool {
		ga, gb := ic.GroupOfRouter(c.A), ic.GroupOfRouter(c.B)
		return (ga == g1 && gb == g2) || (ga == g2 && gb == g1)
	}
	bundle := 0
	for _, c := range ic.GlobalConns() {
		up := s.GlobalLinkUp(c.A, c.APort)
		if up != s.GlobalLinkUp(c.B, c.BPort) {
			t.Fatalf("cable %v: endpoint views disagree", c)
		}
		if inBundle(c) {
			bundle++
			if up {
				t.Fatalf("cable %v inside failed bundle %d-%d still up", c, g1, g2)
			}
		} else if !up {
			t.Fatalf("cable %v outside bundle %d-%d went down", c, g1, g2)
		}
	}
	if bundle == 0 {
		t.Fatalf("mini machine has no cables between groups %d and %d; test is vacuous", g1, g2)
	}
	if s.DownGlobalConns() != bundle {
		t.Fatalf("DownGlobalConns=%d, bundle holds %d cables", s.DownGlobalConns(), bundle)
	}
	s.Apply(faults.Event{IsBundle: true, G1: g1, G2: g2, Repair: true})
	if s.DownGlobalConns() != 0 {
		t.Fatal("bundle repair left cables down")
	}
}

// TestDynamicsSpecErrors: the new grammar forms reject malformed input with
// one-line errors, and Resolve validates targets against the machine.
func TestDynamicsSpecErrors(t *testing.T) {
	for _, text := range []string{
		"group=-1",
		"group=x",
		"bundle=1",
		"bundle=1-1",
		"bundle=a-b",
		"flap=link:0-1",           // missing @MTBF:MTTR
		"flap=link:0-1@100us",     // missing MTTR
		"flap=link:0-1@0s:50us",   // MTBF not positive
		"flap=link:0-1@100us:-1s", // MTTR negative
		"flap=spine:3@1us:1us",    // unknown target kind
		"flap=link:3-3@1us:1us",   // degenerate pair
		"until=0s",
		"until=x",
		"fail=group:-1@1ms",
		"fail=bundle:2@1ms",
		"fail=bundle:2-2@1ms",
	} {
		if _, err := faults.ParseSpec(text); err == nil {
			t.Errorf("ParseSpec(%q): want error, got nil", text)
		}
	}

	ic := mini(t)
	for _, spec := range []*faults.Spec{
		{FailGroups: []int{ic.NumGroups()}},
		{FailBundles: [][2]int{{0, ic.NumGroups()}}},
		{FailBundles: [][2]int{{0, 0}}},
		{Events: []faults.Event{{IsGroup: true, Group: ic.NumGroups()}}},
		{Events: []faults.Event{{IsBundle: true, G1: 0, G2: ic.NumGroups()}}},
		{Flaps: []faults.Flap{{IsRouter: true, Router: topology.RouterID(ic.NumRouters()), MTBF: 1000, MTTR: 1000}}},
		{Flaps: []faults.Flap{{A: 0, B: 1, MTBF: 0, MTTR: 1000}}},
	} {
		if _, err := faults.Resolve(spec, ic); err == nil {
			t.Errorf("Resolve(%+v): want error, got nil", spec)
		}
	}
}

// TestDynamicsRoundTrip: the new clauses render canonically and re-parse.
func TestDynamicsRoundTrip(t *testing.T) {
	const text = "group=1,bundle=0-2,flap=link:0-1@100µs:50µs,flap=router:5@1ms:200µs,until=2ms,fail=group:1@100µs,repair=bundle:0-2@1ms,seed=4"
	spec, err := faults.ParseSpec(text)
	if err != nil {
		t.Fatal(err)
	}
	if len(spec.FailGroups) != 1 || len(spec.FailBundles) != 1 || len(spec.Flaps) != 2 {
		t.Fatalf("parsed %+v", spec)
	}
	if spec.FlapUntil != 2_000_000 {
		t.Fatalf("until parsed to %d", spec.FlapUntil)
	}
	if !spec.Flaps[1].IsRouter || spec.Flaps[1].MTBF != 1_000_000 || spec.Flaps[1].MTTR != 200_000 {
		t.Fatalf("router flap parsed to %+v", spec.Flaps[1])
	}
	back, err := faults.ParseSpec(spec.String())
	if err != nil {
		t.Fatalf("reparse %q: %v", spec.String(), err)
	}
	if back.String() != spec.String() {
		t.Fatalf("round trip %q != %q", back.String(), spec.String())
	}
}
