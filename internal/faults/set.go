package faults

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"dragonfly/internal/des"
	"dragonfly/internal/topology"
)

// Set is a resolved fault set over one machine: the concrete routers and
// links currently down, plus the pending dynamic event timeline. It
// implements topology.Health. Mutation (Apply, FailRouter, ...) is only
// legal between the health-rebuild points the core layer drives — the
// routing tables and fabric re-read the view after every change.
type Set struct {
	topo topology.Interconnect

	routerDown []bool
	nRouters   int // count of down routers

	localDown  map[uint64]bool // pairKey(a, b) of down local links
	globalDown map[uint64]bool // portKey(r, port), both endpoints of a down cable

	// globalPeer resolves (router, port) -> far end, for the router-alive
	// half of GlobalLinkUp; pairConns resolves a router pair -> its
	// parallel global cables, for the link=A-B form; bundleConns resolves
	// a group pair -> every cable between the two groups, for the
	// bundle=G1-G2 correlated-domain form.
	globalPeer  map[uint64]topology.RouterID
	pairConns   map[uint64][]topology.GlobalConn
	bundleConns map[uint64][]topology.GlobalConn

	events []Event // sorted by At

	nGlobalConns, nLocalPairs int // machine totals, for Describe
}

func pairKey(a, b topology.RouterID) uint64 {
	if a > b {
		a, b = b, a
	}
	return uint64(uint32(a))<<32 | uint64(uint32(b))
}

func portKey(r topology.RouterID, port int) uint64 {
	return uint64(uint32(r))<<16 | uint64(uint16(port))
}

func groupKey(g1, g2 int) uint64 {
	if g1 > g2 {
		g1, g2 = g2, g1
	}
	return uint64(uint32(g1))<<32 | uint64(uint32(g2))
}

// Resolve expands a spec against a machine into the concrete fault set,
// drawing the random selections from named streams of spec.Seed. It
// validates explicit IDs against the machine and rejects pairs that are not
// wired.
func Resolve(spec *Spec, topo topology.Interconnect) (*Set, error) {
	s := &Set{
		topo:        topo,
		routerDown:  make([]bool, topo.NumRouters()),
		localDown:   map[uint64]bool{},
		globalDown:  map[uint64]bool{},
		globalPeer:  map[uint64]topology.RouterID{},
		pairConns:   map[uint64][]topology.GlobalConn{},
		bundleConns: map[uint64][]topology.GlobalConn{},
	}
	conns := topo.GlobalConns()
	s.nGlobalConns = len(conns)
	for _, c := range conns {
		s.globalPeer[portKey(c.A, c.APort)] = c.B
		s.globalPeer[portKey(c.B, c.BPort)] = c.A
		k := pairKey(c.A, c.B)
		s.pairConns[k] = append(s.pairConns[k], c)
		gk := groupKey(topo.GroupOfRouter(c.A), topo.GroupOfRouter(c.B))
		s.bundleConns[gk] = append(s.bundleConns[gk], c)
	}
	localPairs := s.localPairs()
	s.nLocalPairs = len(localPairs)
	if spec == nil {
		return s, nil
	}

	if spec.GlobalFrac < 0 || spec.GlobalFrac > 1 || math.IsNaN(spec.GlobalFrac) {
		return nil, fmt.Errorf("faults: global fraction %v outside [0, 1]", spec.GlobalFrac)
	}
	if spec.LocalFrac < 0 || spec.LocalFrac > 1 || math.IsNaN(spec.LocalFrac) {
		return nil, fmt.Errorf("faults: local fraction %v outside [0, 1]", spec.LocalFrac)
	}
	if spec.Routers < 0 || spec.Routers > topo.NumRouters() {
		return nil, fmt.Errorf("faults: routers=%d outside [0, %d]", spec.Routers, topo.NumRouters())
	}

	rng := des.NewRNG(spec.Seed, "faults")
	if k := int(math.Round(spec.GlobalFrac * float64(len(conns)))); k > 0 {
		perm := rng.Stream("global").Perm(len(conns))
		for _, i := range perm[:k] {
			s.failConn(conns[i])
		}
	}
	if k := int(math.Round(spec.LocalFrac * float64(len(localPairs)))); k > 0 {
		perm := rng.Stream("local").Perm(len(localPairs))
		for _, i := range perm[:k] {
			s.localDown[localPairs[i]] = true
		}
	}
	if spec.Routers > 0 {
		perm := rng.Stream("router").Perm(topo.NumRouters())
		for _, r := range perm[:spec.Routers] {
			s.FailRouter(topology.RouterID(r))
		}
	}

	for _, r := range spec.FailRouters {
		if int(r) < 0 || int(r) >= topo.NumRouters() {
			return nil, fmt.Errorf("faults: router %d outside [0, %d)", r, topo.NumRouters())
		}
		s.FailRouter(r)
	}
	for _, l := range spec.FailLinks {
		if err := s.checkPair(l[0], l[1]); err != nil {
			return nil, err
		}
		s.FailLink(l[0], l[1])
	}
	for _, g := range spec.FailGroups {
		if err := s.checkGroup(g); err != nil {
			return nil, err
		}
		s.FailGroup(g)
	}
	for _, b := range spec.FailBundles {
		if err := s.checkBundle(b[0], b[1]); err != nil {
			return nil, err
		}
		s.FailBundle(b[0], b[1])
	}
	for _, ev := range spec.Events {
		switch {
		case ev.IsRouter:
			if int(ev.Router) < 0 || int(ev.Router) >= topo.NumRouters() {
				return nil, fmt.Errorf("faults: event %v: router outside [0, %d)", ev, topo.NumRouters())
			}
		case ev.IsGroup:
			if err := s.checkGroup(ev.Group); err != nil {
				return nil, fmt.Errorf("faults: event %v: %v", ev, err)
			}
		case ev.IsBundle:
			if err := s.checkBundle(ev.G1, ev.G2); err != nil {
				return nil, fmt.Errorf("faults: event %v: %v", ev, err)
			}
		default:
			if err := s.checkPair(ev.A, ev.B); err != nil {
				return nil, fmt.Errorf("faults: event %v: %v", ev, err)
			}
		}
	}
	s.events = append(s.events, spec.Events...)
	if err := s.expandFlaps(spec); err != nil {
		return nil, err
	}
	sort.SliceStable(s.events, func(i, j int) bool { return s.events[i].At < s.events[j].At })
	return s, nil
}

// expandFlaps turns each flap into its concrete fail/repair timeline. Each
// flap draws from its own named stream ("flap-<index>"), so adding a flap
// never perturbs its siblings' timelines, and the whole expansion is a pure
// function of (spec, machine) — flapped runs replay byte-identically.
func (s *Set) expandFlaps(spec *Spec) error {
	if len(spec.Flaps) == 0 {
		return nil
	}
	horizon := spec.FlapUntil
	if horizon <= 0 {
		horizon = DefaultFlapHorizon
	}
	for i, fl := range spec.Flaps {
		if fl.MTBF <= 0 || fl.MTTR <= 0 {
			return fmt.Errorf("faults: %v: MTBF and MTTR must be positive", fl)
		}
		if fl.IsRouter {
			if int(fl.Router) < 0 || int(fl.Router) >= s.topo.NumRouters() {
				return fmt.Errorf("faults: %v: router outside [0, %d)", fl, s.topo.NumRouters())
			}
		} else if err := s.checkPair(fl.A, fl.B); err != nil {
			return fmt.Errorf("faults: %v: %v", fl, err)
		}
		stream := des.NewRNG(spec.Seed, fmt.Sprintf("flap-%d", i))
		t := des.Time(0)
		for n := 0; n < maxFlapEvents; n++ {
			up := expDraw(stream, fl.MTBF)
			t += up
			if t >= horizon {
				break
			}
			s.events = append(s.events, flapEvent(fl, t, false))
			down := expDraw(stream, fl.MTTR)
			t += down
			// The repair is emitted even past the horizon: flapped
			// equipment always ends a run healthy.
			s.events = append(s.events, flapEvent(fl, t, true))
		}
	}
	return nil
}

// expDraw samples an exponential holding time with the given mean, clamped
// to at least one time unit so a timeline always advances.
func expDraw(rng *des.RNG, mean des.Time) des.Time {
	d := des.Time(rng.ExpFloat64() * float64(mean))
	if d < 1 {
		d = 1
	}
	return d
}

func flapEvent(fl Flap, at des.Time, repair bool) Event {
	return Event{
		At: at, Repair: repair,
		IsRouter: fl.IsRouter, Router: fl.Router, A: fl.A, B: fl.B,
	}
}

// localPairs enumerates every local link once, as pairKeys in deterministic
// (router-major, LocalNeighbors) order.
func (s *Set) localPairs() []uint64 {
	var pairs []uint64
	for r := 0; r < s.topo.NumRouters(); r++ {
		a := topology.RouterID(r)
		for _, b := range s.topo.LocalNeighbors(a) {
			if b > a {
				pairs = append(pairs, pairKey(a, b))
			}
		}
	}
	return pairs
}

func (s *Set) checkPair(a, b topology.RouterID) error {
	n := topology.RouterID(s.topo.NumRouters())
	if a < 0 || b < 0 || a >= n || b >= n {
		return fmt.Errorf("faults: link %d-%d: router outside [0, %d)", a, b, n)
	}
	if !s.topo.LocalConnected(a, b) && len(s.pairConns[pairKey(a, b)]) == 0 {
		return fmt.Errorf("faults: link %d-%d: routers are not wired to each other", a, b)
	}
	return nil
}

func (s *Set) checkGroup(g int) error {
	if g < 0 || g >= s.topo.NumGroups() {
		return fmt.Errorf("faults: group %d outside [0, %d)", g, s.topo.NumGroups())
	}
	return nil
}

func (s *Set) checkBundle(g1, g2 int) error {
	if err := s.checkGroup(g1); err != nil {
		return err
	}
	if err := s.checkGroup(g2); err != nil {
		return err
	}
	if g1 == g2 {
		return fmt.Errorf("faults: bundle %d-%d: groups are equal", g1, g2)
	}
	if len(s.bundleConns[groupKey(g1, g2)]) == 0 {
		return fmt.Errorf("faults: bundle %d-%d: groups have no direct cables", g1, g2)
	}
	return nil
}

func (s *Set) failConn(c topology.GlobalConn) {
	s.globalDown[portKey(c.A, c.APort)] = true
	s.globalDown[portKey(c.B, c.BPort)] = true
}

func (s *Set) repairConn(c topology.GlobalConn) {
	delete(s.globalDown, portKey(c.A, c.APort))
	delete(s.globalDown, portKey(c.B, c.BPort))
}

// RouterUp implements topology.Health.
func (s *Set) RouterUp(r topology.RouterID) bool {
	return !s.routerDown[r]
}

// LocalLinkUp implements topology.Health.
func (s *Set) LocalLinkUp(a, b topology.RouterID) bool {
	if s.routerDown[a] || s.routerDown[b] {
		return false
	}
	return !s.localDown[pairKey(a, b)]
}

// GlobalLinkUp implements topology.Health.
func (s *Set) GlobalLinkUp(r topology.RouterID, port int) bool {
	if s.routerDown[r] {
		return false
	}
	peer, ok := s.globalPeer[portKey(r, port)]
	if !ok || s.routerDown[peer] {
		return false
	}
	return !s.globalDown[portKey(r, port)]
}

// FailRouter marks r down; all incident links go down with it (the Health
// lookups fold the router state in).
func (s *Set) FailRouter(r topology.RouterID) {
	if !s.routerDown[r] {
		s.routerDown[r] = true
		s.nRouters++
	}
}

// RepairRouter brings r back up. Links that were failed independently stay
// down.
func (s *Set) RepairRouter(r topology.RouterID) {
	if s.routerDown[r] {
		s.routerDown[r] = false
		s.nRouters--
	}
}

// FailLink downs the wired link(s) between a and b: the local link if the
// pair is locally connected, plus every parallel global cable between them.
func (s *Set) FailLink(a, b topology.RouterID) {
	if s.topo.LocalConnected(a, b) {
		s.localDown[pairKey(a, b)] = true
	}
	for _, c := range s.pairConns[pairKey(a, b)] {
		s.failConn(c)
	}
}

// RepairLink brings the link(s) between a and b back up.
func (s *Set) RepairLink(a, b topology.RouterID) {
	delete(s.localDown, pairKey(a, b))
	for _, c := range s.pairConns[pairKey(a, b)] {
		s.repairConn(c)
	}
}

// FailGroup downs every router of group g: a correlated whole-group outage.
func (s *Set) FailGroup(g int) {
	for r := 0; r < s.topo.NumRouters(); r++ {
		if s.topo.GroupOfRouter(topology.RouterID(r)) == g {
			s.FailRouter(topology.RouterID(r))
		}
	}
}

// RepairGroup brings every router of group g back up. Routers or links of
// the group failed independently stay down only if their own fault is a
// link fault; router state is binary, so an overlapping router=ID fault is
// repaired with its group.
func (s *Set) RepairGroup(g int) {
	for r := 0; r < s.topo.NumRouters(); r++ {
		if s.topo.GroupOfRouter(topology.RouterID(r)) == g {
			s.RepairRouter(topology.RouterID(r))
		}
	}
}

// FailBundle downs every global cable between groups g1 and g2: a cut
// cable bundle.
func (s *Set) FailBundle(g1, g2 int) {
	for _, c := range s.bundleConns[groupKey(g1, g2)] {
		s.failConn(c)
	}
}

// RepairBundle brings every cable between groups g1 and g2 back up.
func (s *Set) RepairBundle(g1, g2 int) {
	for _, c := range s.bundleConns[groupKey(g1, g2)] {
		s.repairConn(c)
	}
}

// Apply executes one dynamic event against the set.
func (s *Set) Apply(ev Event) {
	switch {
	case ev.IsRouter && ev.Repair:
		s.RepairRouter(ev.Router)
	case ev.IsRouter:
		s.FailRouter(ev.Router)
	case ev.IsGroup && ev.Repair:
		s.RepairGroup(ev.Group)
	case ev.IsGroup:
		s.FailGroup(ev.Group)
	case ev.IsBundle && ev.Repair:
		s.RepairBundle(ev.G1, ev.G2)
	case ev.IsBundle:
		s.FailBundle(ev.G1, ev.G2)
	case ev.Repair:
		s.RepairLink(ev.A, ev.B)
	default:
		s.FailLink(ev.A, ev.B)
	}
}

// Events returns the dynamic timeline, sorted by time. The slice is shared.
func (s *Set) Events() []Event { return s.events }

// Empty reports whether nothing is down now and no events are scheduled —
// the case where the core layer skips fault wiring entirely so healthy runs
// stay byte-identical to a build without this package.
func (s *Set) Empty() bool {
	return s.nRouters == 0 && len(s.localDown) == 0 && len(s.globalDown) == 0 && len(s.events) == 0
}

// DownRouters returns the down routers in ascending order.
func (s *Set) DownRouters() []topology.RouterID {
	var out []topology.RouterID
	for r, down := range s.routerDown {
		if down {
			out = append(out, topology.RouterID(r))
		}
	}
	return out
}

// DownGlobalConns counts global cables currently marked down (independently
// of router state).
func (s *Set) DownGlobalConns() int { return len(s.globalDown) / 2 }

// DownLocalLinks counts local links currently marked down.
func (s *Set) DownLocalLinks() int { return len(s.localDown) }

// Describe summarizes the set deterministically, for logs and reports.
func (s *Set) Describe() string {
	var b strings.Builder
	fmt.Fprintf(&b, "faults: %d/%d global links, %d/%d local links, %d/%d routers down",
		s.DownGlobalConns(), s.nGlobalConns, s.DownLocalLinks(), s.nLocalPairs,
		s.nRouters, s.topo.NumRouters())
	if len(s.events) > 0 {
		fmt.Fprintf(&b, "; %d scheduled events", len(s.events))
	}
	return b.String()
}

var _ topology.Health = (*Set)(nil)
