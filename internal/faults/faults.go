// Package faults is the seeded, deterministic fault model of the simulator:
// it marks routers and links of an interconnect as failed, either statically
// before a run (explicit IDs, or "fail fraction p of global/local links and
// k routers") or dynamically through scheduled failure/repair events the DES
// engine fires mid-run.
//
// The resolved Set implements topology.Health, the SPI health view the
// routing and network layers consult. Resolution is a pure function of
// (Spec, seed, machine shape): the random draws come from named des.RNG
// streams over deterministic enumerations (topology.GlobalConns order,
// LocalNeighbors order), so the same spec on the same machine always fails
// the same equipment — the property that keeps faulted runs byte-identical
// across repeats and worker counts.
package faults

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"time"

	"dragonfly/internal/des"
	"dragonfly/internal/topology"
)

// Spec describes which equipment to fail. The zero value fails nothing.
type Spec struct {
	// GlobalFrac fails round(GlobalFrac * |global links|) global links,
	// drawn uniformly without replacement. Must be in [0, 1].
	GlobalFrac float64
	// LocalFrac fails round(LocalFrac * |local links|) local links.
	LocalFrac float64
	// Routers fails this many routers, drawn uniformly.
	Routers int

	// FailRouters fails these routers explicitly.
	FailRouters []topology.RouterID
	// FailLinks fails the wired link(s) between each router pair: the
	// local link if the pair is locally connected, otherwise every
	// parallel global channel between the two routers.
	FailLinks [][2]topology.RouterID

	// FailGroups fails every router of each listed group: a correlated
	// whole-group outage (power domain, cooling loop).
	FailGroups []int
	// FailBundles fails every parallel global cable between each group
	// pair: a cut cable bundle, the other correlated failure domain a
	// physical dragonfly has.
	FailBundles [][2]int

	// Seed drives the random draws above. Independent of the simulation
	// seed so the same fault pattern can be replayed under different
	// traffic seeds.
	Seed int64

	// Events are dynamic failures/repairs applied at simulated times.
	Events []Event

	// Flaps are flapping elements: each expands at Resolve time into a
	// seeded alternating fail/repair timeline with exponentially
	// distributed up-times (mean MTBF) and down-times (mean MTTR), from
	// simulated time zero until FlapUntil.
	Flaps []Flap
	// FlapUntil bounds flap timelines; <= 0 selects DefaultFlapHorizon.
	// Every flap's final repair is always emitted, even past the horizon,
	// so flapped equipment ends a run healthy.
	FlapUntil des.Time
}

// DefaultFlapHorizon bounds flap expansion when the spec gives no horizon:
// long enough to straddle the communication phases of the paper's traces at
// mini scale, short enough that a flap cannot dominate the event budget.
const DefaultFlapHorizon = des.Time(1_000_000) // 1ms

// maxFlapEvents caps the fail/repair pairs one flap expands into, so a
// pathological MTBF (nanoseconds against a long horizon) truncates its
// timeline deterministically instead of exhausting memory. The final repair
// is still emitted.
const maxFlapEvents = 65536

// Flap is one flapping element: a router or wired router pair that fails
// and repairs repeatedly. MTBF is the mean up-time between failures, MTTR
// the mean down-time; both must be positive.
type Flap struct {
	// IsRouter selects between the router and the link form.
	IsRouter bool
	Router   topology.RouterID
	A, B     topology.RouterID
	MTBF     des.Time
	MTTR     des.Time
}

func (f Flap) String() string {
	target := fmt.Sprintf("link:%d-%d", f.A, f.B)
	if f.IsRouter {
		target = fmt.Sprintf("router:%d", f.Router)
	}
	return fmt.Sprintf("flap=%s@%s:%s", target, time.Duration(f.MTBF), time.Duration(f.MTTR))
}

// Event is a scheduled fault transition: at time At, the named target — a
// router, a router-pair link, a whole group, or the cable bundle between
// two groups — fails (or is repaired).
type Event struct {
	At     des.Time
	Repair bool
	// IsRouter selects the router form; IsGroup and IsBundle select the
	// correlated-domain forms. With all three false the event targets the
	// A-B link.
	IsRouter bool
	Router   topology.RouterID
	A, B     topology.RouterID
	IsGroup  bool
	IsBundle bool
	Group    int
	G1, G2   int
}

func (e Event) String() string {
	verb := "fail"
	if e.Repair {
		verb = "repair"
	}
	switch {
	case e.IsRouter:
		return fmt.Sprintf("%s=router:%d@%s", verb, e.Router, time.Duration(e.At))
	case e.IsGroup:
		return fmt.Sprintf("%s=group:%d@%s", verb, e.Group, time.Duration(e.At))
	case e.IsBundle:
		return fmt.Sprintf("%s=bundle:%d-%d@%s", verb, e.G1, e.G2, time.Duration(e.At))
	}
	return fmt.Sprintf("%s=link:%d-%d@%s", verb, e.A, e.B, time.Duration(e.At))
}

// Empty reports whether the spec fails nothing, statically or dynamically.
func (s *Spec) Empty() bool {
	if s == nil {
		return true
	}
	return s.GlobalFrac == 0 && s.LocalFrac == 0 && s.Routers == 0 &&
		len(s.FailRouters) == 0 && len(s.FailLinks) == 0 &&
		len(s.FailGroups) == 0 && len(s.FailBundles) == 0 &&
		len(s.Events) == 0 && len(s.Flaps) == 0
}

// String renders the spec in the ParseSpec grammar (canonical clause order).
func (s *Spec) String() string {
	if s.Empty() {
		return ""
	}
	var parts []string
	if s.GlobalFrac != 0 {
		parts = append(parts, "global="+strconv.FormatFloat(s.GlobalFrac, 'g', -1, 64))
	}
	if s.LocalFrac != 0 {
		parts = append(parts, "local="+strconv.FormatFloat(s.LocalFrac, 'g', -1, 64))
	}
	if s.Routers != 0 {
		parts = append(parts, "routers="+strconv.Itoa(s.Routers))
	}
	for _, r := range s.FailRouters {
		parts = append(parts, fmt.Sprintf("router=%d", r))
	}
	for _, l := range s.FailLinks {
		parts = append(parts, fmt.Sprintf("link=%d-%d", l[0], l[1]))
	}
	for _, g := range s.FailGroups {
		parts = append(parts, fmt.Sprintf("group=%d", g))
	}
	for _, b := range s.FailBundles {
		parts = append(parts, fmt.Sprintf("bundle=%d-%d", b[0], b[1]))
	}
	for _, fl := range s.Flaps {
		parts = append(parts, fl.String())
	}
	if s.FlapUntil != 0 {
		parts = append(parts, "until="+time.Duration(s.FlapUntil).String())
	}
	for _, ev := range s.Events {
		parts = append(parts, ev.String())
	}
	if s.Seed != 0 {
		parts = append(parts, "seed="+strconv.FormatInt(s.Seed, 10))
	}
	return strings.Join(parts, ",")
}

// ParseSpec decodes the CLI fault grammar: comma-separated clauses
//
//	global=FRAC          fail FRAC of the global links (0..1)
//	local=FRAC           fail FRAC of the local links
//	routers=K            fail K random routers
//	router=ID            fail router ID
//	link=A-B             fail the wired link(s) between routers A and B
//	group=G              fail every router of group G (correlated outage)
//	bundle=G1-G2         fail every global cable between groups G1 and G2
//	fail=link:A-B@DUR    schedule a link failure at simulated time DUR
//	fail=router:ID@DUR   schedule a router failure
//	fail=group:G@DUR     schedule a whole-group failure
//	fail=bundle:G1-G2@DUR schedule a cable-bundle failure
//	repair=...@DUR       schedule the matching repair
//	flap=link:A-B@MTBF:MTTR  flap the link: seeded fail/repair cycles with
//	                     exponential up-times (mean MTBF) and down-times
//	                     (mean MTTR); flap=router:ID@MTBF:MTTR likewise
//	until=DUR            horizon of flap timelines (default 1ms)
//	seed=N               seed of the random draws and flap timelines
//
// DUR, MTBF, and MTTR use Go duration syntax ("200us", "1.5ms"). An empty
// string parses to the empty spec.
func ParseSpec(text string) (*Spec, error) {
	s := &Spec{}
	text = strings.TrimSpace(text)
	if text == "" {
		return s, nil
	}
	for _, clause := range strings.Split(text, ",") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		key, val, ok := strings.Cut(clause, "=")
		if !ok {
			return nil, fmt.Errorf("faults: clause %q is not key=value", clause)
		}
		switch key {
		case "global", "local":
			f, err := strconv.ParseFloat(val, 64)
			if err != nil || f < 0 || f > 1 || math.IsNaN(f) {
				return nil, fmt.Errorf("faults: %s=%q: want a fraction in [0, 1]", key, val)
			}
			if key == "global" {
				s.GlobalFrac = f
			} else {
				s.LocalFrac = f
			}
		case "routers":
			k, err := strconv.Atoi(val)
			if err != nil || k < 0 {
				return nil, fmt.Errorf("faults: routers=%q: want a non-negative count", val)
			}
			s.Routers = k
		case "router":
			r, err := strconv.Atoi(val)
			if err != nil || r < 0 {
				return nil, fmt.Errorf("faults: router=%q: want a router ID", val)
			}
			s.FailRouters = append(s.FailRouters, topology.RouterID(r))
		case "link":
			a, b, err := parsePair(val)
			if err != nil {
				return nil, fmt.Errorf("faults: link=%q: %v", val, err)
			}
			s.FailLinks = append(s.FailLinks, [2]topology.RouterID{a, b})
		case "group":
			g, err := strconv.Atoi(val)
			if err != nil || g < 0 {
				return nil, fmt.Errorf("faults: group=%q: want a group ID", val)
			}
			s.FailGroups = append(s.FailGroups, g)
		case "bundle":
			g1, g2, err := parseGroupPair(val)
			if err != nil {
				return nil, fmt.Errorf("faults: bundle=%q: %v", val, err)
			}
			s.FailBundles = append(s.FailBundles, [2]int{g1, g2})
		case "fail", "repair":
			ev, err := parseEvent(val, key == "repair")
			if err != nil {
				return nil, fmt.Errorf("faults: %s=%q: %v", key, val, err)
			}
			s.Events = append(s.Events, ev)
		case "flap":
			fl, err := parseFlap(val)
			if err != nil {
				return nil, fmt.Errorf("faults: flap=%q: %v", val, err)
			}
			s.Flaps = append(s.Flaps, fl)
		case "until":
			d, err := time.ParseDuration(val)
			if err != nil || d <= 0 {
				return nil, fmt.Errorf("faults: until=%q: want a positive Go duration", val)
			}
			s.FlapUntil = des.Time(d.Nanoseconds())
		case "seed":
			n, err := strconv.ParseInt(val, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("faults: seed=%q: want an integer", val)
			}
			s.Seed = n
		default:
			return nil, fmt.Errorf("faults: unknown clause %q (have global, local, routers, router, link, group, bundle, fail, repair, flap, until, seed)", key)
		}
	}
	sort.SliceStable(s.Events, func(i, j int) bool { return s.Events[i].At < s.Events[j].At })
	return s, nil
}

func parsePair(val string) (a, b topology.RouterID, err error) {
	as, bs, ok := strings.Cut(val, "-")
	if !ok {
		return 0, 0, fmt.Errorf("want A-B router pair")
	}
	ai, err1 := strconv.Atoi(as)
	bi, err2 := strconv.Atoi(bs)
	if err1 != nil || err2 != nil || ai < 0 || bi < 0 {
		return 0, 0, fmt.Errorf("want A-B router pair")
	}
	if ai == bi {
		return 0, 0, fmt.Errorf("endpoints are equal")
	}
	return topology.RouterID(ai), topology.RouterID(bi), nil
}

func parseGroupPair(val string) (g1, g2 int, err error) {
	as, bs, ok := strings.Cut(val, "-")
	if !ok {
		return 0, 0, fmt.Errorf("want G1-G2 group pair")
	}
	g1, err1 := strconv.Atoi(as)
	g2, err2 := strconv.Atoi(bs)
	if err1 != nil || err2 != nil || g1 < 0 || g2 < 0 {
		return 0, 0, fmt.Errorf("want G1-G2 group pair")
	}
	if g1 == g2 {
		return 0, 0, fmt.Errorf("groups are equal")
	}
	return g1, g2, nil
}

func parseEvent(val string, repair bool) (Event, error) {
	body, at, ok := strings.Cut(val, "@")
	if !ok {
		return Event{}, fmt.Errorf("want TARGET@TIME (e.g. link:3-40@200us)")
	}
	d, err := time.ParseDuration(at)
	if err != nil || d < 0 {
		return Event{}, fmt.Errorf("bad time %q: want a Go duration", at)
	}
	ev := Event{At: des.Time(d.Nanoseconds()), Repair: repair}
	kind, target, ok := strings.Cut(body, ":")
	if !ok {
		return Event{}, fmt.Errorf("want link:A-B, router:ID, group:G, or bundle:G1-G2 before @")
	}
	switch kind {
	case "router":
		r, err := strconv.Atoi(target)
		if err != nil || r < 0 {
			return Event{}, fmt.Errorf("bad router ID %q", target)
		}
		ev.IsRouter = true
		ev.Router = topology.RouterID(r)
	case "link":
		a, b, err := parsePair(target)
		if err != nil {
			return Event{}, fmt.Errorf("bad link %q: %v", target, err)
		}
		ev.A, ev.B = a, b
	case "group":
		g, err := strconv.Atoi(target)
		if err != nil || g < 0 {
			return Event{}, fmt.Errorf("bad group ID %q", target)
		}
		ev.IsGroup = true
		ev.Group = g
	case "bundle":
		g1, g2, err := parseGroupPair(target)
		if err != nil {
			return Event{}, fmt.Errorf("bad bundle %q: %v", target, err)
		}
		ev.IsBundle = true
		ev.G1, ev.G2 = g1, g2
	default:
		return Event{}, fmt.Errorf("unknown target kind %q (want link, router, group, or bundle)", kind)
	}
	return ev, nil
}

// parseFlap decodes TARGET@MTBF:MTTR, where TARGET is link:A-B or
// router:ID and both durations are positive.
func parseFlap(val string) (Flap, error) {
	body, times, ok := strings.Cut(val, "@")
	if !ok {
		return Flap{}, fmt.Errorf("want TARGET@MTBF:MTTR (e.g. link:3-40@500us:50us)")
	}
	ms, rs, ok := strings.Cut(times, ":")
	if !ok {
		return Flap{}, fmt.Errorf("want MTBF:MTTR after @ (two Go durations)")
	}
	mtbf, err1 := time.ParseDuration(ms)
	mttr, err2 := time.ParseDuration(rs)
	if err1 != nil || err2 != nil || mtbf <= 0 || mttr <= 0 {
		return Flap{}, fmt.Errorf("want positive Go durations MTBF:MTTR, got %q:%q", ms, rs)
	}
	fl := Flap{MTBF: des.Time(mtbf.Nanoseconds()), MTTR: des.Time(mttr.Nanoseconds())}
	kind, target, ok := strings.Cut(body, ":")
	if !ok {
		return Flap{}, fmt.Errorf("want link:A-B or router:ID before @")
	}
	switch kind {
	case "router":
		r, err := strconv.Atoi(target)
		if err != nil || r < 0 {
			return Flap{}, fmt.Errorf("bad router ID %q", target)
		}
		fl.IsRouter = true
		fl.Router = topology.RouterID(r)
	case "link":
		a, b, err := parsePair(target)
		if err != nil {
			return Flap{}, fmt.Errorf("bad link %q: %v", target, err)
		}
		fl.A, fl.B = a, b
	default:
		return Flap{}, fmt.Errorf("unknown target kind %q (want link or router)", kind)
	}
	return fl, nil
}
