package faults_test

import (
	"strings"
	"testing"

	"dragonfly/internal/faults"
	"dragonfly/internal/topology"
)

func mini(t *testing.T) topology.Interconnect {
	t.Helper()
	return topology.MustNew(topology.Mini())
}

func TestParseSpecRoundTrip(t *testing.T) {
	const text = "global=0.125,local=0.05,routers=2,router=7,link=1-5,fail=link:3-4@200µs,repair=link:3-4@1ms,seed=9"
	spec, err := faults.ParseSpec(text)
	if err != nil {
		t.Fatal(err)
	}
	if spec.GlobalFrac != 0.125 || spec.LocalFrac != 0.05 || spec.Routers != 2 || spec.Seed != 9 {
		t.Fatalf("parsed %+v", spec)
	}
	if len(spec.FailRouters) != 1 || spec.FailRouters[0] != 7 {
		t.Fatalf("routers %v", spec.FailRouters)
	}
	if len(spec.FailLinks) != 1 || spec.FailLinks[0] != [2]topology.RouterID{1, 5} {
		t.Fatalf("links %v", spec.FailLinks)
	}
	if len(spec.Events) != 2 || spec.Events[0].Repair || !spec.Events[1].Repair {
		t.Fatalf("events %v", spec.Events)
	}
	if spec.Events[0].At != 200_000 || spec.Events[1].At != 1_000_000 {
		t.Fatalf("event times %v", spec.Events)
	}
	back, err := faults.ParseSpec(spec.String())
	if err != nil {
		t.Fatalf("reparse %q: %v", spec.String(), err)
	}
	if back.String() != spec.String() {
		t.Fatalf("round trip %q != %q", back.String(), spec.String())
	}
}

func TestParseSpecErrors(t *testing.T) {
	for _, text := range []string{
		"global=1.5",
		"global=x",
		"local=-0.1",
		"routers=-1",
		"router=x",
		"link=3",
		"link=3-3",
		"fail=link:3-4",        // missing @time
		"fail=spine:3@1ms",     // unknown target kind
		"repair=link:3-4@-1ms", // negative time
		"bogus=1",
		"global",
	} {
		if _, err := faults.ParseSpec(text); err == nil {
			t.Errorf("ParseSpec(%q): want error, got nil", text)
		}
	}
	s, err := faults.ParseSpec("  ")
	if err != nil || !s.Empty() {
		t.Fatalf("blank spec: %v %v", s, err)
	}
}

func TestResolveDeterministic(t *testing.T) {
	spec := &faults.Spec{GlobalFrac: 0.25, LocalFrac: 0.1, Routers: 2, Seed: 11}
	a, err := faults.Resolve(spec, mini(t))
	if err != nil {
		t.Fatal(err)
	}
	b, err := faults.Resolve(spec, mini(t))
	if err != nil {
		t.Fatal(err)
	}
	if a.Describe() != b.Describe() {
		t.Fatalf("same spec, different sets: %q vs %q", a.Describe(), b.Describe())
	}
	ic := mini(t)
	for r := 0; r < ic.NumRouters(); r++ {
		if a.RouterUp(topology.RouterID(r)) != b.RouterUp(topology.RouterID(r)) {
			t.Fatalf("router %d health differs between identical resolves", r)
		}
	}
	// A different seed must (on this machine size) pick different equipment.
	spec2 := &faults.Spec{GlobalFrac: 0.25, LocalFrac: 0.1, Routers: 2, Seed: 12}
	c, err := faults.Resolve(spec2, mini(t))
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for r := 0; r < ic.NumRouters(); r++ {
		if a.RouterUp(topology.RouterID(r)) != c.RouterUp(topology.RouterID(r)) {
			same = false
		}
	}
	for _, cn := range ic.GlobalConns() {
		if a.GlobalLinkUp(cn.A, cn.APort) != c.GlobalLinkUp(cn.A, cn.APort) {
			same = false
		}
	}
	if same {
		t.Fatal("seeds 11 and 12 resolved to an identical fault set")
	}
}

func TestResolveFractions(t *testing.T) {
	ic := mini(t)
	spec := &faults.Spec{GlobalFrac: 0.5, Seed: 3}
	s, err := faults.Resolve(spec, ic)
	if err != nil {
		t.Fatal(err)
	}
	want := (len(ic.GlobalConns()) + 1) / 2
	if got := s.DownGlobalConns(); got != want && got != want-1 {
		t.Fatalf("global=0.5 downed %d of %d cables", got, len(ic.GlobalConns()))
	}
	down := 0
	for _, cn := range ic.GlobalConns() {
		up := s.GlobalLinkUp(cn.A, cn.APort)
		if up != s.GlobalLinkUp(cn.B, cn.BPort) {
			t.Fatalf("cable %v: endpoint views disagree", cn)
		}
		if !up {
			down++
		}
	}
	if down != s.DownGlobalConns() {
		t.Fatalf("health view says %d cables down, set says %d", down, s.DownGlobalConns())
	}
}

func TestRouterFailureFoldsIntoLinks(t *testing.T) {
	ic := mini(t)
	s, err := faults.Resolve(&faults.Spec{}, ic)
	if err != nil {
		t.Fatal(err)
	}
	r := topology.RouterID(3)
	s.FailRouter(r)
	if s.RouterUp(r) {
		t.Fatal("FailRouter did not mark router down")
	}
	for _, nb := range ic.LocalNeighbors(r) {
		if s.LocalLinkUp(r, nb) || s.LocalLinkUp(nb, r) {
			t.Fatalf("local link %d-%d still up with router %d down", r, nb, r)
		}
	}
	for _, cn := range ic.GlobalConns() {
		if cn.A == r && s.GlobalLinkUp(cn.A, cn.APort) {
			t.Fatalf("global link at dead router %d still up", r)
		}
		if cn.B == r && s.GlobalLinkUp(cn.B, cn.BPort) {
			t.Fatalf("global link into dead router %d still up (far end view)", r)
		}
	}
	s.RepairRouter(r)
	if !s.RouterUp(r) || !s.LocalLinkUp(r, ic.LocalNeighbors(r)[0]) {
		t.Fatal("RepairRouter did not restore links")
	}
	if !s.Empty() {
		t.Fatalf("repaired set not empty: %s", s.Describe())
	}
}

func TestFailLinkPairForms(t *testing.T) {
	ic := mini(t)
	s, err := faults.Resolve(&faults.Spec{}, ic)
	if err != nil {
		t.Fatal(err)
	}
	// A local pair.
	a := topology.RouterID(0)
	b := ic.LocalNeighbors(a)[0]
	s.FailLink(a, b)
	if s.LocalLinkUp(a, b) {
		t.Fatal("local link still up after FailLink")
	}
	s.RepairLink(a, b)
	if !s.LocalLinkUp(a, b) {
		t.Fatal("local link still down after RepairLink")
	}
	// A global pair downs every parallel cable between the two routers.
	cn := ic.GlobalConns()[0]
	s.FailLink(cn.A, cn.B)
	if s.GlobalLinkUp(cn.A, cn.APort) || s.GlobalLinkUp(cn.B, cn.BPort) {
		t.Fatal("global cable still up after FailLink")
	}
	s.RepairLink(cn.A, cn.B)
	if !s.GlobalLinkUp(cn.A, cn.APort) {
		t.Fatal("global cable still down after RepairLink")
	}
}

func TestResolveRejectsBadSpecs(t *testing.T) {
	ic := mini(t)
	for _, spec := range []*faults.Spec{
		{GlobalFrac: 2},
		{LocalFrac: -0.5},
		{Routers: ic.NumRouters() + 1},
		{FailRouters: []topology.RouterID{topology.RouterID(ic.NumRouters())}},
		{FailLinks: [][2]topology.RouterID{{0, topology.RouterID(ic.NumRouters() + 5)}}},
		// Routers 0 and the last router share neither a row/col nor a cable
		// on the mini machine's group 0 — adjust if the preset changes.
		{Events: []faults.Event{{IsRouter: true, Router: topology.RouterID(ic.NumRouters())}}},
	} {
		if _, err := faults.Resolve(spec, ic); err == nil {
			t.Errorf("Resolve(%+v): want error, got nil", spec)
		}
	}
}

func TestResolveRejectsUnwiredPair(t *testing.T) {
	ic := mini(t)
	// Find an unwired router pair (no local link, no global cable).
	for a := 0; a < ic.NumRouters(); a++ {
		for b := a + 1; b < ic.NumRouters(); b++ {
			ra, rb := topology.RouterID(a), topology.RouterID(b)
			if ic.LocalConnected(ra, rb) || ic.GlobalConnected(ra, rb) {
				continue
			}
			spec := &faults.Spec{FailLinks: [][2]topology.RouterID{{ra, rb}}}
			if _, err := faults.Resolve(spec, ic); err == nil ||
				!strings.Contains(err.Error(), "not wired") {
				t.Fatalf("Resolve unwired pair %d-%d: err=%v", a, b, err)
			}
			return
		}
	}
	t.Skip("mini machine is fully connected")
}

func TestApplyTimeline(t *testing.T) {
	ic := mini(t)
	spec, err := faults.ParseSpec("fail=router:2@100us,repair=router:2@300us")
	if err != nil {
		t.Fatal(err)
	}
	s, err := faults.Resolve(spec, ic)
	if err != nil {
		t.Fatal(err)
	}
	if s.Empty() {
		t.Fatal("set with pending events reports Empty")
	}
	evs := s.Events()
	if len(evs) != 2 || evs[0].At >= evs[1].At {
		t.Fatalf("events not sorted: %v", evs)
	}
	s.Apply(evs[0])
	if s.RouterUp(2) {
		t.Fatal("fail event did not take")
	}
	s.Apply(evs[1])
	if !s.RouterUp(2) {
		t.Fatal("repair event did not take")
	}
}
