package faults_test

import (
	"testing"

	"dragonfly/internal/faults"
)

// FuzzParseSpec: the CLI fault grammar must never panic, and every accepted
// spec must round-trip — String() renders text that re-parses to the same
// canonical rendering. A parse-accepted spec that fails to re-parse (or
// drifts across the round trip) would mean the -faults flag and logs disagree
// about what was failed.
func FuzzParseSpec(f *testing.F) {
	f.Add("")
	f.Add("global=0.25,local=0.1,routers=3,seed=42")
	f.Add("router=7,link=3-40")
	f.Add("fail=link:3-40@200us,repair=link:3-40@1.5ms")
	f.Add("fail=router:12@1ms,repair=router:12@2ms,seed=9")
	f.Add("global=1,local=0")
	f.Add("global=nan")
	f.Add("link=5-5")
	f.Add("fail=link:3-40")
	f.Add(",,,")
	f.Fuzz(func(t *testing.T, text string) {
		s, err := faults.ParseSpec(text)
		if err != nil {
			return
		}
		rendered := s.String()
		s2, err := faults.ParseSpec(rendered)
		if err != nil {
			t.Fatalf("accepted %q but rejected its own rendering %q: %v", text, rendered, err)
		}
		if got := s2.String(); got != rendered {
			t.Fatalf("round trip drifted: %q -> %q -> %q", text, rendered, got)
		}
		if s.Empty() != s2.Empty() {
			t.Fatalf("round trip changed emptiness of %q", text)
		}
	})
}
