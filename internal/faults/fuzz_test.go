package faults_test

import (
	"testing"

	"dragonfly/internal/faults"
	"dragonfly/internal/topology"
)

// FuzzParseSpec: the CLI fault grammar must never panic, and every accepted
// spec must round-trip — String() renders text that re-parses to the same
// canonical rendering. A parse-accepted spec that fails to re-parse (or
// drifts across the round trip) would mean the -faults flag and logs disagree
// about what was failed.
func FuzzParseSpec(f *testing.F) {
	f.Add("")
	f.Add("global=0.25,local=0.1,routers=3,seed=42")
	f.Add("router=7,link=3-40")
	f.Add("fail=link:3-40@200us,repair=link:3-40@1.5ms")
	f.Add("fail=router:12@1ms,repair=router:12@2ms,seed=9")
	f.Add("global=1,local=0")
	f.Add("global=nan")
	f.Add("link=5-5")
	f.Add("fail=link:3-40")
	f.Add(",,,")
	f.Fuzz(func(t *testing.T, text string) {
		s, err := faults.ParseSpec(text)
		if err != nil {
			return
		}
		rendered := s.String()
		s2, err := faults.ParseSpec(rendered)
		if err != nil {
			t.Fatalf("accepted %q but rejected its own rendering %q: %v", text, rendered, err)
		}
		if got := s2.String(); got != rendered {
			t.Fatalf("round trip drifted: %q -> %q -> %q", text, rendered, got)
		}
		if s.Empty() != s2.Empty() {
			t.Fatalf("round trip changed emptiness of %q", text)
		}
	})
}

// FuzzFaultSequence resolves arbitrary overlapping fail/repair/flap
// schedules against the mini machine and applies the whole timeline. The
// invariants: resolution is deterministic, the timeline is time-sorted,
// applying it never panics or corrupts the health view, and a spec whose
// only dynamics are flaps ends healthy — flapped equipment always comes
// back.
func FuzzFaultSequence(f *testing.F) {
	seeds := []string{
		"flap=link:0-1@100us:50us",
		"flap=router:2@100us:50us,flap=router:2@70us:30us,seed=5",
		"fail=group:1@100us,repair=group:1@300us,flap=link:0-1@50us:20us,until=500us",
		"fail=bundle:0-1@10us,repair=bundle:0-1@20us,fail=link:0-1@15us,repair=link:0-1@25us",
		"group=2,bundle=1-3,flap=router:0@1us:1us,until=30us,seed=9",
		"fail=router:3@5us,flap=router:3@10us:10us,repair=router:3@1ms",
		"flap=link:0-1@1ns:1ns,until=10us",
		"global=0.25,flap=link:0-1@100us:100us,fail=group:0@1us,repair=group:0@2us,seed=3",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	ic := topology.MustNew(topology.Mini())
	f.Fuzz(func(t *testing.T, text string) {
		spec, err := faults.ParseSpec(text)
		if err != nil {
			return
		}
		a, err := faults.Resolve(spec, ic)
		if err != nil {
			return
		}
		b, err := faults.Resolve(spec, ic)
		if err != nil {
			t.Fatalf("second resolve of accepted spec %q failed: %v", text, err)
		}
		if a.Describe() != b.Describe() {
			t.Fatalf("resolution of %q not deterministic: %q vs %q", text, a.Describe(), b.Describe())
		}
		evs, evs2 := a.Events(), b.Events()
		if len(evs) != len(evs2) {
			t.Fatalf("resolution of %q expanded %d vs %d events", text, len(evs), len(evs2))
		}
		nConns, nRouters := len(ic.GlobalConns()), ic.NumRouters()
		for i, ev := range evs {
			if ev != evs2[i] {
				t.Fatalf("event %d of %q differs across resolves: %v vs %v", i, text, ev, evs2[i])
			}
			if i > 0 && ev.At < evs[i-1].At {
				t.Fatalf("timeline of %q not sorted at %d", text, i)
			}
			a.Apply(ev)
			if down := a.DownGlobalConns(); down < 0 || down > nConns {
				t.Fatalf("after event %d of %q: %d/%d global conns down", i, text, down, nConns)
			}
			if down := len(a.DownRouters()); down > nRouters {
				t.Fatalf("after event %d of %q: %d/%d routers down", i, text, down, nRouters)
			}
		}
		staticsOrEvents := spec.GlobalFrac != 0 || spec.LocalFrac != 0 || spec.Routers != 0 ||
			len(spec.FailRouters) != 0 || len(spec.FailLinks) != 0 ||
			len(spec.FailGroups) != 0 || len(spec.FailBundles) != 0 || len(spec.Events) != 0
		if !staticsOrEvents && len(spec.Flaps) > 0 {
			if len(a.DownRouters()) != 0 || a.DownGlobalConns() != 0 || a.DownLocalLinks() != 0 {
				t.Fatalf("flap-only spec %q ended unhealthy: %s", text, a.Describe())
			}
		}
	})
}
