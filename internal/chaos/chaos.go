// Package chaos is the simulator's fault-point framework: seeded,
// deterministic failure injection at the execution layer's seams — store
// I/O, worker execution, and the DES boundary — so the self-healing
// machinery (retries, quarantine, store scrubbing) can be proven under
// hostile conditions instead of trusted.
//
// The design constraints, in order:
//
//   - Deterministic. Whether a fault fires at a site is a pure function of
//     (seed, site, key, attempt number): a hash draw, never a wall-clock or
//     scheduler race. A chaos run is therefore reproducible bug-for-bug,
//     and the chaos suite can assert that a sweep under injected kills,
//     panics, and bit-flips converges to the exact corpus of a clean run.
//   - Bounded. Each (site, key) pair fires at most MaxPerKey faults, so a
//     retry budget >= MaxPerKey always converges. Unbounded injection would
//     make "the sweep completes" unprovable.
//   - Zero-cost when disabled. Every hook is a method on a nil-able
//     *Injector; a nil receiver returns false after one comparison, and no
//     chaos state exists anywhere in a production run.
//
// Injection points name themselves with Site constants; the key is the
// unit of work's identity (a content address, a job name), which is what
// keeps decisions independent of execution order across worker counts.
package chaos

import (
	"fmt"
	"hash/fnv"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Site names one injection point. Sites are compile-time constants so a
// typo'd site in a hook is greppable, and the spec grammar validates
// against this list.
type Site string

const (
	// SiteStoreRead flips one bit of a store entry as it is read,
	// simulating disk rot; the store's integrity verification must turn it
	// into a corrupt-entry re-run, never a wrong result.
	SiteStoreRead Site = "store.read"
	// SiteStoreWrite fails a store write, simulating a full or dying disk;
	// a failed write may cost future cache hits, never the present result.
	SiteStoreWrite Site = "store.write"
	// SiteWorkerPanic panics inside a sweep worker mid-cell, simulating a
	// model bug; the panic firewall must contain it to that attempt.
	SiteWorkerPanic Site = "worker.panic"
	// SiteWorkerKill fails a cell as if its worker process was killed.
	SiteWorkerKill Site = "worker.kill"
	// SiteSimStall fails a cell at the DES boundary as if the simulation
	// tripped its stall watchdog mid-run.
	SiteSimStall Site = "sim.stall"
)

// Sites lists every injection point, in grammar order.
func Sites() []Site {
	return []Site{SiteStoreRead, SiteStoreWrite, SiteWorkerPanic, SiteWorkerKill, SiteSimStall}
}

// DefaultMaxPerKey bounds injected faults per (site, key) when the spec
// does not say otherwise: low enough that a modest retry budget converges,
// high enough that retries are genuinely exercised.
const DefaultMaxPerKey = 2

// Spec declares an injection plan: a probability per site, a seed, and the
// per-key fault cap. The zero value injects nothing.
type Spec struct {
	// Seed drives every injection decision. Two injectors with the same
	// spec make identical decisions for identical (site, key, attempt)
	// triples.
	Seed int64
	// Probability maps each site to its per-attempt fire probability in
	// [0, 1]. Absent sites never fire.
	Probability map[Site]float64
	// MaxPerKey caps the faults injected per (site, key); <= 0 means
	// DefaultMaxPerKey. A retry budget of at least this many re-attempts
	// is guaranteed to converge.
	MaxPerKey int
}

// Empty reports whether the spec injects nothing.
func (s *Spec) Empty() bool {
	if s == nil {
		return true
	}
	for _, p := range s.Probability {
		if p > 0 {
			return false
		}
	}
	return true
}

// String renders the spec in the ParseSpec grammar, sites in canonical
// order, so specs round-trip and logs show exactly what ran.
func (s *Spec) String() string {
	if s == nil {
		return ""
	}
	var parts []string
	var sites []string
	for site := range s.Probability {
		sites = append(sites, string(site))
	}
	sort.Strings(sites)
	for _, site := range sites {
		parts = append(parts, fmt.Sprintf("%s=%s", site, strconv.FormatFloat(s.Probability[Site(site)], 'g', -1, 64)))
	}
	if s.MaxPerKey > 0 {
		parts = append(parts, "max="+strconv.Itoa(s.MaxPerKey))
	}
	if s.Seed != 0 {
		parts = append(parts, "seed="+strconv.FormatInt(s.Seed, 10))
	}
	return strings.Join(parts, ",")
}

// ParseSpec decodes the chaos CLI grammar: comma-separated clauses
//
//	SITE=PROB   fire probability for one site (store.read, store.write,
//	            worker.panic, worker.kill, sim.stall), PROB in [0, 1]
//	max=K       at most K injected faults per (site, key)
//	seed=N      decision seed
//
// An empty string parses to the empty spec (no injection).
func ParseSpec(text string) (*Spec, error) {
	s := &Spec{}
	text = strings.TrimSpace(text)
	if text == "" {
		return s, nil
	}
	valid := map[Site]bool{}
	for _, site := range Sites() {
		valid[site] = true
	}
	for _, clause := range strings.Split(text, ",") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		key, val, ok := strings.Cut(clause, "=")
		if !ok {
			return nil, fmt.Errorf("chaos: clause %q is not key=value", clause)
		}
		switch key {
		case "seed":
			n, err := strconv.ParseInt(val, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("chaos: seed=%q: want an integer", val)
			}
			s.Seed = n
		case "max":
			k, err := strconv.Atoi(val)
			if err != nil || k < 1 {
				return nil, fmt.Errorf("chaos: max=%q: want a positive count", val)
			}
			s.MaxPerKey = k
		default:
			if !valid[Site(key)] {
				return nil, fmt.Errorf("chaos: unknown site %q (have %s; plus max, seed)", key, siteList())
			}
			p, err := strconv.ParseFloat(val, 64)
			if err != nil || p < 0 || p > 1 || math.IsNaN(p) {
				return nil, fmt.Errorf("chaos: %s=%q: want a probability in [0, 1]", key, val)
			}
			if s.Probability == nil {
				s.Probability = map[Site]float64{}
			}
			s.Probability[Site(key)] = p
		}
	}
	return s, nil
}

func siteList() string {
	var names []string
	for _, s := range Sites() {
		names = append(names, string(s))
	}
	return strings.Join(names, ", ")
}

// Injector makes injection decisions for one chaos run. A nil *Injector is
// the disabled state: every method returns the no-fault answer after a
// single nil check, so production paths carry the hooks for free.
type Injector struct {
	seed      float64Seed
	prob      map[Site]float64
	maxPerKey int

	mu       sync.Mutex
	fired    map[string]int // (site, key) -> faults injected so far
	attempts map[string]int // (site, key) -> decisions taken so far
	total    uint64
}

// float64Seed is the spec seed pre-mixed for the decision hash.
type float64Seed uint64

// New builds an injector from a spec; a nil or empty spec yields a nil
// injector (injection disabled).
func New(spec *Spec) *Injector {
	if spec.Empty() {
		return nil
	}
	cap := spec.MaxPerKey
	if cap <= 0 {
		cap = DefaultMaxPerKey
	}
	prob := make(map[Site]float64, len(spec.Probability))
	for site, p := range spec.Probability {
		prob[site] = p
	}
	return &Injector{
		seed:      float64Seed(uint64(spec.Seed) * 0x9E3779B97F4A7C15),
		prob:      prob,
		maxPerKey: cap,
		fired:     map[string]int{},
		attempts:  map[string]int{},
	}
}

// Fire reports whether a fault fires at site for this key's next attempt.
// The decision is deterministic in (seed, site, key, attempt index) and
// capped at MaxPerKey fires per (site, key); concurrent callers with
// distinct keys never perturb each other's sequences.
func (in *Injector) Fire(site Site, key string) bool {
	if in == nil {
		return false
	}
	p, ok := in.prob[site]
	if !ok || p <= 0 {
		return false
	}
	sk := string(site) + "\x00" + key
	in.mu.Lock()
	attempt := in.attempts[sk]
	in.attempts[sk] = attempt + 1
	if in.fired[sk] >= in.maxPerKey {
		in.mu.Unlock()
		return false
	}
	fire := draw(uint64(in.seed), sk, attempt) < p
	if fire {
		in.fired[sk]++
		in.total++
	}
	in.mu.Unlock()
	return fire
}

// FlipBit deterministically flips one bit of data in place (no-op on empty
// data), choosing the position from (seed, key) so a corrupted read is
// reproducible. Callers pair it with a Fire(SiteStoreRead, key) decision.
func (in *Injector) FlipBit(data []byte, key string) {
	if in == nil || len(data) == 0 {
		return
	}
	h := fnv.New64a()
	_, _ = h.Write([]byte(key))
	bit := (h.Sum64() ^ uint64(in.seed)) % uint64(len(data)*8)
	data[bit/8] ^= 1 << (bit % 8)
}

// Injected returns the total faults injected so far, for end-of-run
// reporting ("the chaos run actually injected something").
func (in *Injector) Injected() uint64 {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.total
}

// draw maps (seed, site+key, attempt) to a uniform float in [0, 1).
func draw(seed uint64, sk string, attempt int) float64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(sk))
	var buf [8]byte
	for i := 0; i < 8; i++ {
		buf[i] = byte(attempt >> (8 * i))
	}
	_, _ = h.Write(buf[:])
	x := h.Sum64() ^ seed
	// splitmix64 finalizer: FNV alone is too regular in the low bits.
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return float64(x>>11) / float64(1<<53)
}
