package chaos

import (
	"bytes"
	"sync"
	"testing"
)

func testSpec() *Spec {
	return &Spec{
		Seed:        7,
		Probability: map[Site]float64{SiteWorkerKill: 0.5, SiteStoreRead: 0.3},
		MaxPerKey:   3,
	}
}

// TestDisabledInjectorIsFree: the nil injector — the production state —
// answers every hook with the no-fault result.
func TestDisabledInjectorIsFree(t *testing.T) {
	var in *Injector
	if in.Fire(SiteWorkerKill, "k") {
		t.Fatal("nil injector fired")
	}
	data := []byte("payload")
	in.FlipBit(data, "k")
	if string(data) != "payload" {
		t.Fatal("nil injector mutated data")
	}
	if in.Injected() != 0 {
		t.Fatal("nil injector counted injections")
	}
	if New(nil) != nil || New(&Spec{}) != nil {
		t.Fatal("empty specs must build the disabled (nil) injector")
	}
}

// TestDecisionsAreDeterministic: two injectors from one spec make identical
// decisions for identical (site, key, attempt) sequences, regardless of the
// interleaving with other keys.
func TestDecisionsAreDeterministic(t *testing.T) {
	a, b := New(testSpec()), New(testSpec())
	keys := []string{"cell-0", "cell-1", "cell-2"}
	var seqA, seqB []bool
	for round := 0; round < 20; round++ {
		for _, k := range keys {
			seqA = append(seqA, a.Fire(SiteWorkerKill, k))
		}
	}
	// Interleave differently: per-key decision sequences must not care.
	for _, k := range keys {
		for round := 0; round < 20; round++ {
			seqB = append(seqB, b.Fire(SiteWorkerKill, k))
		}
	}
	// Compare per-key fire counts (order of observation differs by design).
	if a.Injected() != b.Injected() {
		t.Fatalf("interleaving changed total injections: %d vs %d", a.Injected(), b.Injected())
	}
	countA := map[int]int{}
	for i, f := range seqA {
		if f {
			countA[i%len(keys)]++
		}
	}
	countB := map[int]int{}
	for i, f := range seqB {
		if f {
			countB[i/20]++
		}
	}
	for k := range countA {
		if countA[k] != countB[k] {
			t.Fatalf("key %d fired %d vs %d times under different interleavings", k, countA[k], countB[k])
		}
	}
}

// TestPerKeyCap: no (site, key) pair injects more than MaxPerKey faults, so
// a retry budget >= MaxPerKey always converges.
func TestPerKeyCap(t *testing.T) {
	in := New(&Spec{Seed: 1, Probability: map[Site]float64{SiteWorkerKill: 1}, MaxPerKey: 2})
	fired := 0
	for i := 0; i < 50; i++ {
		if in.Fire(SiteWorkerKill, "poisoned") {
			fired++
		}
	}
	if fired != 2 {
		t.Fatalf("probability-1 site fired %d times; cap is 2", fired)
	}
	// A different key has its own budget.
	if !in.Fire(SiteWorkerKill, "other") {
		t.Fatal("fresh key did not fire at probability 1")
	}
}

// TestFlipBitIsDeterministicAndReversible: the same (seed, key) flips the
// same bit, and flipping twice restores the original bytes.
func TestFlipBitIsDeterministicAndReversible(t *testing.T) {
	in := New(testSpec())
	orig := []byte("DFFARM1 json\npayload 5 abc\nhello")
	a := append([]byte(nil), orig...)
	b := append([]byte(nil), orig...)
	in.FlipBit(a, "addr-1")
	in.FlipBit(b, "addr-1")
	if bytes.Equal(a, orig) {
		t.Fatal("FlipBit changed nothing")
	}
	if !bytes.Equal(a, b) {
		t.Fatal("FlipBit is not deterministic per key")
	}
	in.FlipBit(a, "addr-1")
	if !bytes.Equal(a, orig) {
		t.Fatal("double flip did not restore the data")
	}
	c := append([]byte(nil), orig...)
	in.FlipBit(c, "addr-2")
	if bytes.Equal(c, a) {
		// Different keys should (for this data size) pick different bits.
		t.Log("distinct keys flipped the same bit; acceptable but unexpected")
	}
}

// TestConcurrentFireIsSafe: concurrent decisions for distinct keys are
// race-free and every probability-1 key fires exactly its cap.
func TestConcurrentFireIsSafe(t *testing.T) {
	in := New(&Spec{Seed: 3, Probability: map[Site]float64{SiteWorkerPanic: 1}, MaxPerKey: 1})
	var wg sync.WaitGroup
	fired := make([]int, 16)
	for g := 0; g < 16; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				if in.Fire(SiteWorkerPanic, string(rune('a'+g))) {
					fired[g]++
				}
			}
		}()
	}
	wg.Wait()
	for g, n := range fired {
		if n != 1 {
			t.Fatalf("key %d fired %d times; cap is 1", g, n)
		}
	}
	if in.Injected() != 16 {
		t.Fatalf("total injected %d, want 16", in.Injected())
	}
}

// TestParseSpecRoundTrip: the grammar accepts, renders, and re-parses
// canonically; invalid clauses produce one-line errors.
func TestParseSpecRoundTrip(t *testing.T) {
	good := []string{
		"",
		"worker.kill=0.5",
		"store.read=0.25,store.write=0.1,worker.panic=0.3,worker.kill=0.3,sim.stall=0.2,max=4,seed=42",
		"seed=-1,worker.kill=1",
	}
	for _, text := range good {
		s, err := ParseSpec(text)
		if err != nil {
			t.Fatalf("ParseSpec(%q): %v", text, err)
		}
		rendered := s.String()
		s2, err := ParseSpec(rendered)
		if err != nil {
			t.Fatalf("rendering %q of %q does not re-parse: %v", rendered, text, err)
		}
		if got := s2.String(); got != rendered {
			t.Fatalf("round trip drifted: %q -> %q -> %q", text, rendered, got)
		}
	}
	bad := []string{
		"worker.kill",         // not key=value
		"worker.kill=2",       // probability out of range
		"worker.kill=nan",     // not a number
		"worker.murder=0.5",   // unknown site
		"max=0",               // cap must be positive
		"seed=x",              // not an integer
		"worker.kill=0.5,max", // trailing junk
	}
	for _, text := range bad {
		if _, err := ParseSpec(text); err == nil {
			t.Errorf("ParseSpec(%q) accepted", text)
		}
	}
}

// TestProbabilitiesRoughlyHold: over many keys, a 0.5 site fires on roughly
// half of first attempts — the draw is not degenerate.
func TestProbabilitiesRoughlyHold(t *testing.T) {
	in := New(&Spec{Seed: 11, Probability: map[Site]float64{SiteWorkerKill: 0.5}, MaxPerKey: 1})
	fired := 0
	const n = 2000
	for i := 0; i < n; i++ {
		if in.Fire(SiteWorkerKill, string(rune(i))+"-key") {
			fired++
		}
	}
	if fired < n/3 || fired > 2*n/3 {
		t.Fatalf("0.5 probability fired %d/%d times; draw looks degenerate", fired, n)
	}
}
