package sched

import (
	"testing"

	"dragonfly/internal/des"
	"dragonfly/internal/network"
	"dragonfly/internal/placement"
	"dragonfly/internal/routing"
	"dragonfly/internal/topology"
	"dragonfly/internal/trace"
)

func cfg(backfill bool) Config {
	return Config{
		Topology: topology.Mini(), // 64 nodes
		Params:   network.DefaultParams(),
		Routing:  routing.Adaptive,
		Seed:     1,
		Backfill: backfill,
	}
}

func job(t *testing.T, name string, ranks int, bytes int64, arrival des.Time) JobRequest {
	t.Helper()
	tr, err := trace.CR(trace.CRConfig{Ranks: ranks, MessageBytes: bytes})
	if err != nil {
		t.Fatal(err)
	}
	return JobRequest{
		Name: name, Trace: tr,
		Placement: placement.Contiguous,
		Arrival:   arrival,
	}
}

func TestSingleJobRunsImmediately(t *testing.T) {
	res, err := Run(cfg(false), []JobRequest{job(t, "a", 16, 32*trace.KB, 0)})
	if err != nil {
		t.Fatal(err)
	}
	j := res.Jobs[0]
	if j.Wait() != 0 {
		t.Fatalf("idle machine queued the job for %v", j.Wait())
	}
	if j.Finish <= j.Start {
		t.Fatalf("finish %v not after start %v", j.Finish, j.Start)
	}
	if res.Makespan < j.Finish {
		t.Fatalf("makespan %v before job finish %v", res.Makespan, j.Finish)
	}
}

func TestFCFSQueuesWhenFull(t *testing.T) {
	// Two 40-rank jobs on a 64-node machine: the second must wait for the
	// first to release its nodes.
	res, err := Run(cfg(false), []JobRequest{
		job(t, "first", 40, 64*trace.KB, 0),
		job(t, "second", 40, 64*trace.KB, des.Microsecond),
	})
	if err != nil {
		t.Fatal(err)
	}
	first, second := res.Jobs[0], res.Jobs[1]
	if second.Start < first.Finish {
		t.Fatalf("second started at %v before first finished at %v", second.Start, first.Finish)
	}
	if second.Wait() <= 0 {
		t.Fatal("second job recorded no queue wait")
	}
}

func TestFCFSHeadBlocksWithoutBackfill(t *testing.T) {
	// big(40) running; huge(50) queued and blocking; tiny(8) behind it.
	// Without backfill, tiny waits for huge even though it would fit.
	jobs := []JobRequest{
		job(t, "big", 40, 128*trace.KB, 0),
		job(t, "huge", 50, 16*trace.KB, des.Microsecond),
		job(t, "tiny", 8, 16*trace.KB, 2*des.Microsecond),
	}
	strict, err := Run(cfg(false), jobs)
	if err != nil {
		t.Fatal(err)
	}
	if strict.Jobs[2].Start < strict.Jobs[1].Start {
		t.Fatal("strict FCFS let tiny overtake huge")
	}
	if strict.Jobs[2].Backfilled {
		t.Fatal("strict FCFS marked a job backfilled")
	}
}

func TestBackfillLetsSmallJobJump(t *testing.T) {
	jobs := []JobRequest{
		job(t, "big", 40, 128*trace.KB, 0),
		job(t, "huge", 50, 16*trace.KB, des.Microsecond),
		job(t, "tiny", 8, 16*trace.KB, 2*des.Microsecond),
	}
	bf, err := Run(cfg(true), jobs)
	if err != nil {
		t.Fatal(err)
	}
	if bf.Jobs[2].Start >= bf.Jobs[1].Start {
		t.Fatal("backfill did not let tiny start before huge")
	}
	if !bf.Jobs[2].Backfilled {
		t.Fatal("backfilled job not marked")
	}
	// Backfill must not hurt overall makespan here.
	strict, err := Run(cfg(false), jobs)
	if err != nil {
		t.Fatal(err)
	}
	if bf.Makespan > strict.Makespan {
		t.Fatalf("backfill makespan %v worse than strict %v", bf.Makespan, strict.Makespan)
	}
}

func TestNodesReleasedAndReused(t *testing.T) {
	// Four sequential full-machine jobs: each must reuse all 64 nodes.
	var jobs []JobRequest
	for i := 0; i < 4; i++ {
		jobs = append(jobs, job(t, "j", 64, 16*trace.KB, 0))
	}
	res, err := Run(cfg(false), jobs)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < 4; i++ {
		if res.Jobs[i].Start < res.Jobs[i-1].Finish {
			t.Fatalf("job %d started before job %d released the machine", i, i-1)
		}
	}
}

func TestConcurrentJobsInterfere(t *testing.T) {
	// Two 16-rank jobs with random placement sharing the machine finish
	// slower (per-job comm time) than one alone.
	mk := func(n int) []JobRequest {
		var jobs []JobRequest
		for i := 0; i < n; i++ {
			j := job(t, "j", 16, 128*trace.KB, 0)
			j.Placement = placement.RandomNode
			jobs = append(jobs, j)
		}
		return jobs
	}
	solo, err := Run(cfg(false), mk(1))
	if err != nil {
		t.Fatal(err)
	}
	duo, err := Run(cfg(false), mk(2))
	if err != nil {
		t.Fatal(err)
	}
	if duo.Jobs[0].MaxCommTime() <= solo.Jobs[0].MaxCommTime() {
		t.Fatalf("sharing did not slow the job: solo %v, shared %v",
			solo.Jobs[0].MaxCommTime(), duo.Jobs[0].MaxCommTime())
	}
}

func TestSchedulerRejectsBadInput(t *testing.T) {
	if _, err := Run(cfg(false), nil); err == nil {
		t.Error("empty submission accepted")
	}
	if _, err := Run(cfg(false), []JobRequest{{Name: "x"}}); err == nil {
		t.Error("job without trace accepted")
	}
	if _, err := Run(cfg(false), []JobRequest{job(t, "too-big", 100, 1024, 0)}); err == nil {
		t.Error("job larger than machine accepted")
	}
	bad := job(t, "neg", 8, 1024, 0)
	bad.Arrival = -5
	if _, err := Run(cfg(false), []JobRequest{bad}); err == nil {
		t.Error("negative arrival accepted")
	}
}

func TestSchedulerDeterministic(t *testing.T) {
	jobs := func() []JobRequest {
		return []JobRequest{
			job(t, "a", 30, 64*trace.KB, 0),
			job(t, "b", 40, 32*trace.KB, 5*des.Microsecond),
			job(t, "c", 10, 16*trace.KB, 10*des.Microsecond),
		}
	}
	x, err := Run(cfg(true), jobs())
	if err != nil {
		t.Fatal(err)
	}
	y, err := Run(cfg(true), jobs())
	if err != nil {
		t.Fatal(err)
	}
	if x.Makespan != y.Makespan || x.Events != y.Events {
		t.Fatalf("nondeterministic schedule: (%v,%d) vs (%v,%d)", x.Makespan, x.Events, y.Makespan, y.Events)
	}
	if x.MeanWait() != y.MeanWait() {
		t.Fatal("mean wait differs across identical runs")
	}
}
