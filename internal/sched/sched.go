// Package sched simulates a batch scheduler driving the machine — the
// "joint actions among applications and system" the paper's conclusion
// names as future work. Jobs arrive over simulated time, wait in a queue,
// are placed under their requested placement policy when enough nodes are
// free, replay their communication traces on the shared fabric (so queued
// placement decisions and inter-job interference interact, as in
// production), and release their nodes on completion.
//
// The discipline is FCFS, optionally with aggressive backfill: when the
// queue head does not fit, any later job that does fit may start. (True
// EASY backfill needs user runtime estimates, which traces do not carry.)
package sched

import (
	"fmt"
	"sort"

	"dragonfly/internal/des"
	"dragonfly/internal/mapping"
	"dragonfly/internal/network"
	"dragonfly/internal/placement"
	"dragonfly/internal/routing"
	"dragonfly/internal/topology"
	"dragonfly/internal/trace"
	"dragonfly/internal/workload"
)

// JobRequest is one job submission.
type JobRequest struct {
	Name      string
	Trace     *trace.Trace
	Placement placement.Policy
	Mapping   mapping.Policy
	MsgScale  float64
	Arrival   des.Time
}

// JobRecord is the scheduler's account of one completed job.
type JobRecord struct {
	Name       string
	Ranks      int
	Arrival    des.Time
	Start      des.Time // when the allocation was granted
	Finish     des.Time // when the last rank completed
	CommTimes  []des.Time
	Nodes      []topology.NodeID
	Backfilled bool // started ahead of an older queued job
}

// Wait returns the time spent queued.
func (j *JobRecord) Wait() des.Time { return j.Start - j.Arrival }

// Response returns arrival-to-finish time.
func (j *JobRecord) Response() des.Time { return j.Finish - j.Arrival }

// MaxCommTime returns the slowest rank's communication time.
func (j *JobRecord) MaxCommTime() des.Time {
	var max des.Time
	for _, t := range j.CommTimes {
		if t > max {
			max = t
		}
	}
	return max
}

// Config describes the machine and discipline.
type Config struct {
	Topology topology.Machine
	Params   network.Params
	Routing  routing.Mechanism
	Seed     int64
	Backfill bool
}

// Result is the outcome of a scheduling run.
type Result struct {
	Jobs     []JobRecord // in submission order
	Makespan des.Time
	Events   uint64
}

// MeanWait returns the average queue wait across jobs.
func (r *Result) MeanWait() des.Time {
	if len(r.Jobs) == 0 {
		return 0
	}
	var sum des.Time
	for i := range r.Jobs {
		sum += r.Jobs[i].Wait()
	}
	return sum / des.Time(len(r.Jobs))
}

type pendingJob struct {
	idx int // index into the submission order
	req JobRequest
}

// scheduler is the run state.
type scheduler struct {
	cfg     Config
	eng     *des.Engine
	fab     *network.Fabric
	topo    topology.Interconnect
	pool    *placement.Pool
	rng     *des.RNG
	queue   []pendingJob
	records []JobRecord
}

// Run executes a full scheduling trace: all jobs arrive, run, and complete.
func Run(cfg Config, jobs []JobRequest) (*Result, error) {
	if len(jobs) == 0 {
		return nil, fmt.Errorf("sched: no jobs submitted")
	}
	if cfg.Topology == nil {
		return nil, fmt.Errorf("sched: config has no machine (set Topology)")
	}
	topo, err := cfg.Topology.Build()
	if err != nil {
		return nil, err
	}
	for i, j := range jobs {
		if j.Trace == nil {
			return nil, fmt.Errorf("sched: job %d (%q) has no trace", i, j.Name)
		}
		if j.Trace.NumRanks() > topo.NumNodes() {
			return nil, fmt.Errorf("sched: job %d (%q) needs %d nodes, machine has %d",
				i, j.Name, j.Trace.NumRanks(), topo.NumNodes())
		}
		if j.Arrival < 0 {
			return nil, fmt.Errorf("sched: job %d (%q) has negative arrival", i, j.Name)
		}
	}
	eng := des.New()
	root := des.NewRNG(cfg.Seed, "sched")
	fab, err := network.New(eng, topo, cfg.Params, cfg.Routing, root.Stream("fabric"))
	if err != nil {
		return nil, err
	}
	s := &scheduler{
		cfg:     cfg,
		eng:     eng,
		fab:     fab,
		topo:    topo,
		pool:    placement.NewPool(topo),
		rng:     root.Stream("placement"),
		records: make([]JobRecord, len(jobs)),
	}
	// Sort arrivals but remember submission order for the records.
	order := make([]int, len(jobs))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return jobs[order[a]].Arrival < jobs[order[b]].Arrival })
	for _, idx := range order {
		idx := idx
		req := jobs[idx]
		s.records[idx] = JobRecord{Name: req.Name, Ranks: req.Trace.NumRanks(), Arrival: req.Arrival}
		eng.At(req.Arrival, func() {
			s.queue = append(s.queue, pendingJob{idx: idx, req: req})
			s.trySchedule()
		})
	}
	eng.Run()
	for i := range s.records {
		if s.records[i].Finish == 0 && s.records[i].CommTimes == nil {
			return nil, fmt.Errorf("sched: job %d (%q) never completed", i, s.records[i].Name)
		}
	}
	return &Result{Jobs: s.records, Makespan: eng.Now(), Events: eng.Processed()}, nil
}

// trySchedule starts every currently startable job per the discipline.
func (s *scheduler) trySchedule() {
	for {
		started := false
		for qi := 0; qi < len(s.queue); qi++ {
			job := s.queue[qi]
			if job.req.Trace.NumRanks() > s.pool.Free() {
				if !s.cfg.Backfill {
					return // strict FCFS: head blocks the queue
				}
				continue
			}
			if err := s.start(job, qi > 0); err != nil {
				// Allocation can only fail for capacity, checked above;
				// anything else is a programming error.
				panic(err)
			}
			s.queue = append(s.queue[:qi], s.queue[qi+1:]...)
			started = true
			break
		}
		if !started {
			return
		}
	}
}

// start allocates and launches one job.
func (s *scheduler) start(job pendingJob, backfilled bool) error {
	req := job.req
	nodes, err := placement.AllocateFrom(s.pool, req.Placement, req.Trace.NumRanks(), s.rng)
	if err != nil {
		return err
	}
	nodes, err = mapping.Apply(req.Mapping, s.topo, nodes, s.rng.Stream(fmt.Sprintf("map/%d", job.idx)))
	if err != nil {
		return err
	}
	rec := &s.records[job.idx]
	rec.Start = s.eng.Now()
	rec.Nodes = nodes
	rec.Backfilled = backfilled

	var rep *workload.Replay
	rep, err = workload.NewReplay(s.fab, workload.Job{
		Name:     req.Name,
		Trace:    req.Trace,
		Nodes:    nodes,
		MsgScale: req.MsgScale,
		Start:    s.eng.Now(),
		OnComplete: func(at des.Time) {
			rec.Finish = at
			rec.CommTimes = rep.CommTimes()
			s.pool.Release(nodes)
			s.trySchedule()
		},
	})
	if err != nil {
		return err
	}
	rep.Start()
	return nil
}
