package topology

import "fmt"

// Global-link wiring. Each router owns GlobalPortsPerRouter global ports.
// Within a group, ports are enumerated linearly: port p of the i-th router
// has index k = i*G + p. Port k is assigned to the (k mod (Groups-1))-th
// other group, and is the (k div (Groups-1))-th parallel "slot" toward that
// group. The link in slot s from group a to group b pairs with the link in
// slot s from b to a, forming one bidirectional global link — the canonical
// round-robin ("relative-group") arrangement used by dragonfly simulators.
//
// When Groups-1 does not divide routersPerGroup*G, opposite directions of a
// pair can own different slot counts; the surplus ports stay unwired
// (globalPeer = -1). All preset machines divide evenly.

func (t *Topology) wireGlobal() {
	g := t.cfg.GlobalPortsPerRouter
	t.globalPeer = make([]RouterID, t.numRouters*g)
	t.globalPeerPort = make([]int32, t.numRouters*g)
	for i := range t.globalPeer {
		t.globalPeer[i] = -1
		t.globalPeerPort[i] = -1
	}
	t.gateways = make([][][]Gateway, t.cfg.Groups)
	for a := range t.gateways {
		t.gateways[a] = make([][]Gateway, t.cfg.Groups)
	}
	if t.cfg.Groups < 2 || g == 0 {
		return
	}

	others := t.cfg.Groups - 1
	portsPerGroup := t.routersPerGroup * g
	// slotPort[a][b][s] = linear port index k in group a of slot s toward b.
	slotPort := make([][][]int, t.cfg.Groups)
	for a := 0; a < t.cfg.Groups; a++ {
		slotPort[a] = make([][]int, t.cfg.Groups)
		for k := 0; k < portsPerGroup; k++ {
			ti := k % others // target index in a's skip list
			b := ti
			if b >= a {
				b++
			}
			slotPort[a][b] = append(slotPort[a][b], k)
		}
	}
	for a := 0; a < t.cfg.Groups; a++ {
		for b := a + 1; b < t.cfg.Groups; b++ {
			n := len(slotPort[a][b])
			if m := len(slotPort[b][a]); m < n {
				n = m
			}
			for s := 0; s < n; s++ {
				ka, kb := slotPort[a][b][s], slotPort[b][a][s]
				ra := RouterID(a*t.routersPerGroup + ka/g)
				rb := RouterID(b*t.routersPerGroup + kb/g)
				pa, pb := ka%g, kb%g
				t.globalPeer[int(ra)*g+pa] = rb
				t.globalPeerPort[int(ra)*g+pa] = int32(pb)
				t.globalPeer[int(rb)*g+pb] = ra
				t.globalPeerPort[int(rb)*g+pb] = int32(pa)
				t.gateways[a][b] = append(t.gateways[a][b], Gateway{Router: ra, Port: pa})
				t.gateways[b][a] = append(t.gateways[b][a], Gateway{Router: rb, Port: pb})
			}
		}
	}
}

// GlobalPeer returns the router and port at the far end of router r's global
// port p; ok is false when the port is unwired.
func (t *Topology) GlobalPeer(r RouterID, p int) (peer RouterID, peerPort int, ok bool) {
	g := t.cfg.GlobalPortsPerRouter
	if p < 0 || p >= g {
		panic(fmt.Sprintf("topology: global port %d out of range [0,%d)", p, g))
	}
	idx := int(r)*g + p
	if t.globalPeer[idx] < 0 {
		return 0, 0, false
	}
	return t.globalPeer[idx], int(t.globalPeerPort[idx]), true
}

// Gateways returns the (router, port) pairs in group src whose global links
// land in group dst. The returned slice is shared; callers must not mutate it.
func (t *Topology) Gateways(src, dst int) []Gateway {
	return t.gateways[src][dst]
}

// GlobalConn is one bidirectional global link, reported once with A < B.
type GlobalConn struct {
	A     RouterID
	APort int
	B     RouterID
	BPort int
}

// GlobalConns enumerates every wired global link exactly once.
func (t *Topology) GlobalConns() []GlobalConn {
	g := t.cfg.GlobalPortsPerRouter
	var out []GlobalConn
	for r := 0; r < t.numRouters; r++ {
		for p := 0; p < g; p++ {
			peer := t.globalPeer[r*g+p]
			if peer < 0 || RouterID(r) > peer ||
				(RouterID(r) == peer && p > int(t.globalPeerPort[r*g+p])) {
				continue
			}
			out = append(out, GlobalConn{
				A: RouterID(r), APort: p,
				B: peer, BPort: int(t.globalPeerPort[r*g+p]),
			})
		}
	}
	return out
}

// MinimalRouterHops returns the number of routers a minimally routed packet
// traverses from src node to dst node — the quantity behind the paper's
// "average hops" metric (Fig. 4a). Delivery through a single shared router
// counts 1; the worst minimal inter-group path (two local hops each side of
// the global hop) counts 6.
func (t *Topology) MinimalRouterHops(src, dst NodeID) int {
	rs, rd := t.RouterOfNode(src), t.RouterOfNode(dst)
	gs, gd := t.GroupOfRouter(rs), t.GroupOfRouter(rd)
	if gs == gd {
		return 1 + t.LocalDistance(rs, rd)
	}
	best := -1
	for _, gw := range t.Gateways(gs, gd) {
		peer, _, ok := t.GlobalPeer(gw.Router, gw.Port)
		if !ok {
			continue
		}
		h := 1 + t.LocalDistance(rs, gw.Router) + 1 + t.LocalDistance(peer, rd)
		if best < 0 || h < best {
			best = h
		}
	}
	if best < 0 {
		panic(fmt.Sprintf("topology: groups %d and %d are not connected", gs, gd))
	}
	return best
}

// Describe returns a human-readable inventory of the machine — the textual
// equivalent of the paper's Figure 1 system diagram.
func (t *Topology) Describe() string {
	c := t.cfg
	localPerRouter := (c.Cols - 1) + (c.Rows - 1)
	wired := len(t.GlobalConns())
	return fmt.Sprintf(
		"dragonfly: %d groups x (%dx%d routers) x %d nodes = %d routers, %d nodes\n"+
			"  chassis: %d (one per grid row), cabinets: %d (%d chassis each)\n"+
			"  local links/router: %d (row all-to-all + column all-to-all)\n"+
			"  global ports/router: %d; bidirectional global links: %d (%d per group pair)\n",
		c.Groups, c.Rows, c.Cols, c.NodesPerRouter, t.numRouters, t.numNodes,
		t.ChassisCount(), t.CabinetCount(), c.ChassisPerCabinet,
		localPerRouter,
		c.GlobalPortsPerRouter, wired, perPairOrZero(wired, c.Groups),
	)
}

func perPairOrZero(wired, groups int) int {
	pairs := groups * (groups - 1) / 2
	if pairs == 0 {
		return 0
	}
	return wired / pairs
}
