package topology

import (
	"fmt"

	"dragonfly/internal/par"
)

// Global-link wiring. Each router owns GlobalPortsPerRouter global ports.
// Within a group, ports are enumerated linearly: port p of the i-th router
// has index k = i*G + p. Port k is assigned to the (k mod (Groups-1))-th
// other group, and is the (k div (Groups-1))-th parallel "slot" toward that
// group. The link in slot s from group a to group b pairs with the link in
// slot s from b to a, forming one bidirectional global link — the canonical
// round-robin ("relative-group") arrangement used by dragonfly simulators.
//
// When Groups-1 does not divide routersPerGroup*G, opposite directions of a
// pair can own different slot counts; the surplus ports stay unwired
// (globalPeer = -1). All preset machines divide evenly.

func (t *Dragonfly) wireGlobal() {
	g := t.cfg.GlobalPortsPerRouter
	t.globalPeer, t.globalPeerPort, t.gateways = roundRobinWire(
		t.cfg.Groups, t.numRouters, g, t.routersPerGroup*g,
		func(group, k int) RouterID { return RouterID(group*t.routersPerGroup + k/g) },
	)
}

// roundRobinWire runs the round-robin pairing described above for a machine
// whose groups each expose portsPerGroup ports on the routers selected by
// ownerOf (mapping a group-linear port index k to the owning router; the
// router's own port index is k mod portsPerRouter). It returns the dense
// peer/peerPort tables (indexed r*portsPerRouter+p, -1 when unwired) and the
// per-group-pair gateway lists. Both dragonfly variants share it, so their
// global wiring follows the same canonical arrangement.
//
// The wiring is sharded across the par worker pool: slot enumeration by
// group, pair wiring by source group. Every group pair (a, b) with a < b is
// wired exclusively by the worker owning a, and a pair's writes — its own
// port slots in peer/peerPort and the two gateways[a][b]/gateways[b][a]
// cells — touch no other pair's, so the wired machine is byte-identical at
// every worker count.
func roundRobinWire(groups, numRouters, portsPerRouter, portsPerGroup int, ownerOf func(group, k int) RouterID) (peer []RouterID, peerPort []int32, gateways [][][]Gateway) {
	peer = make([]RouterID, numRouters*portsPerRouter)
	peerPort = make([]int32, numRouters*portsPerRouter)
	for i := range peer {
		peer[i] = -1
		peerPort[i] = -1
	}
	gateways = make([][][]Gateway, groups)
	for a := range gateways {
		gateways[a] = make([][]Gateway, groups)
	}
	if groups < 2 || portsPerRouter == 0 {
		return peer, peerPort, gateways
	}

	others := groups - 1
	// slotPort[a][b][s] = linear port index k in group a of slot s toward b.
	// Slot counts per target are known up front (ceil/floor of the
	// round-robin), so the inner lists are pre-sized exactly.
	slotPort := make([][][]int, groups)
	par.ForChunks(groups, func(lo, hi int) {
		for a := lo; a < hi; a++ {
			slotPort[a] = make([][]int, groups)
			whole := portsPerGroup / others
			for b := 0; b < groups; b++ {
				if b == a {
					continue
				}
				ti := b
				if ti > a {
					ti--
				}
				n := whole
				if ti < portsPerGroup%others {
					n++
				}
				slotPort[a][b] = make([]int, 0, n)
			}
			for k := 0; k < portsPerGroup; k++ {
				ti := k % others // target index in a's skip list
				b := ti
				if b >= a {
					b++
				}
				slotPort[a][b] = append(slotPort[a][b], k)
			}
		}
	})
	par.ForChunks(groups, func(lo, hi int) {
		for a := lo; a < hi; a++ {
			for b := a + 1; b < groups; b++ {
				n := len(slotPort[a][b])
				if m := len(slotPort[b][a]); m < n {
					n = m
				}
				if n == 0 {
					continue
				}
				ab := make([]Gateway, 0, n)
				ba := make([]Gateway, 0, n)
				for s := 0; s < n; s++ {
					ka, kb := slotPort[a][b][s], slotPort[b][a][s]
					ra, rb := ownerOf(a, ka), ownerOf(b, kb)
					pa, pb := ka%portsPerRouter, kb%portsPerRouter
					peer[int(ra)*portsPerRouter+pa] = rb
					peerPort[int(ra)*portsPerRouter+pa] = int32(pb)
					peer[int(rb)*portsPerRouter+pb] = ra
					peerPort[int(rb)*portsPerRouter+pb] = int32(pa)
					ab = append(ab, Gateway{Router: ra, Port: pa, Peer: rb})
					ba = append(ba, Gateway{Router: rb, Port: pb, Peer: ra})
				}
				gateways[a][b] = ab
				gateways[b][a] = ba
			}
		}
	})
	return peer, peerPort, gateways
}

// GlobalPeer returns the router and port at the far end of router r's global
// port p; ok is false when the port is unwired.
func (t *Dragonfly) GlobalPeer(r RouterID, p int) (peer RouterID, peerPort int, ok bool) {
	g := t.cfg.GlobalPortsPerRouter
	if p < 0 || p >= g {
		panic(fmt.Sprintf("topology: global port %d out of range [0,%d)", p, g))
	}
	idx := int(r)*g + p
	if t.globalPeer[idx] < 0 {
		return 0, 0, false
	}
	return t.globalPeer[idx], int(t.globalPeerPort[idx]), true
}

// Gateways returns the (router, port) pairs in group src whose global links
// land in group dst. The returned slice is shared; callers must not mutate it.
func (t *Dragonfly) Gateways(src, dst int) []Gateway {
	return t.gateways[src][dst]
}

// GlobalConnected reports whether routers a and b are joined by a wired
// global link in either direction.
func (t *Dragonfly) GlobalConnected(a, b RouterID) bool {
	g := t.cfg.GlobalPortsPerRouter
	for p := 0; p < g; p++ {
		if t.globalPeer[int(a)*g+p] == b {
			return true
		}
	}
	return false
}

// GlobalConn is one bidirectional global link, reported once with A < B.
type GlobalConn struct {
	A     RouterID
	APort int
	B     RouterID
	BPort int
}

// GlobalConns enumerates every wired global link exactly once.
func (t *Dragonfly) GlobalConns() []GlobalConn {
	g := t.cfg.GlobalPortsPerRouter
	var out []GlobalConn
	for r := 0; r < t.numRouters; r++ {
		for p := 0; p < g; p++ {
			peer := t.globalPeer[r*g+p]
			if peer < 0 || RouterID(r) > peer ||
				(RouterID(r) == peer && p > int(t.globalPeerPort[r*g+p])) {
				continue
			}
			out = append(out, GlobalConn{
				A: RouterID(r), APort: p,
				B: peer, BPort: int(t.globalPeerPort[r*g+p]),
			})
		}
	}
	return out
}

// MinimalRouterHops returns the number of routers a minimally routed packet
// traverses from src node to dst node — the quantity behind the paper's
// "average hops" metric (Fig. 4a). Delivery through a single shared router
// counts 1; the worst minimal inter-group path (two local hops each side of
// the global hop) counts 6.
func (t *Dragonfly) MinimalRouterHops(src, dst NodeID) int {
	rs, rd := t.RouterOfNode(src), t.RouterOfNode(dst)
	gs, gd := t.GroupOfRouter(rs), t.GroupOfRouter(rd)
	if gs == gd {
		return 1 + t.LocalDistance(rs, rd)
	}
	best := -1
	for _, gw := range t.Gateways(gs, gd) {
		peer, _, ok := t.GlobalPeer(gw.Router, gw.Port)
		if !ok {
			continue
		}
		h := 1 + t.LocalDistance(rs, gw.Router) + 1 + t.LocalDistance(peer, rd)
		if best < 0 || h < best {
			best = h
		}
	}
	if best < 0 {
		panic(fmt.Sprintf("topology: groups %d and %d are not connected", gs, gd))
	}
	return best
}

// Describe returns a human-readable inventory of the machine — the textual
// equivalent of the paper's Figure 1 system diagram.
func (t *Dragonfly) Describe() string {
	c := t.cfg
	localPerRouter := (c.Cols - 1) + (c.Rows - 1)
	wired := len(t.GlobalConns())
	return fmt.Sprintf(
		"dragonfly: %d groups x (%dx%d routers) x %d nodes = %d routers, %d nodes\n"+
			"  chassis: %d (one per grid row), cabinets: %d (%d chassis each)\n"+
			"  local links/router: %d (row all-to-all + column all-to-all)\n"+
			"  global ports/router: %d; bidirectional global links: %d (%d per group pair)\n",
		c.Groups, c.Rows, c.Cols, c.NodesPerRouter, t.numRouters, t.numNodes,
		t.ChassisCount(), t.CabinetCount(), c.ChassisPerCabinet,
		localPerRouter,
		c.GlobalPortsPerRouter, wired, perPairOrZero(wired, c.Groups),
	)
}

func perPairOrZero(wired, groups int) int {
	pairs := groups * (groups - 1) / 2
	if pairs == 0 {
		return 0
	}
	return wired / pairs
}
