package topology

import (
	"testing"
)

func plusMini(t *testing.T) *DragonflyPlus {
	t.Helper()
	return MustNewPlus(PlusMini())
}

func TestPlusCounts(t *testing.T) {
	tp := plusMini(t)
	c := tp.Config()
	wantRouters := c.Groups * (c.Leaves + c.Spines)
	if got := tp.NumRouters(); got != wantRouters {
		t.Fatalf("NumRouters = %d, want %d", got, wantRouters)
	}
	wantNodes := c.Groups * c.Leaves * c.NodesPerLeaf
	if got := tp.NumNodes(); got != wantNodes {
		t.Fatalf("NumNodes = %d, want %d", got, wantNodes)
	}
	if got := tp.NumNodes(); got != 160 {
		t.Fatalf("PlusMini nodes = %d, want 160 (quick-scale machine size)", got)
	}
}

func TestPlusNodeAttachment(t *testing.T) {
	tp := plusMini(t)
	seen := map[NodeID]bool{}
	for r := RouterID(0); int(r) < tp.NumRouters(); r++ {
		nodes := tp.NodesOfRouter(r)
		if !tp.IsLeaf(r) {
			if len(nodes) != 0 {
				t.Fatalf("spine %d owns nodes %v", r, nodes)
			}
			continue
		}
		if len(nodes) != tp.Config().NodesPerLeaf {
			t.Fatalf("leaf %d owns %d nodes", r, len(nodes))
		}
		for slot, n := range nodes {
			if seen[n] {
				t.Fatalf("node %d attached twice", n)
			}
			seen[n] = true
			if got := tp.RouterOfNode(n); got != r {
				t.Fatalf("RouterOfNode(%d) = %d, want %d", n, got, r)
			}
			if got := tp.NodeSlot(n); got != slot {
				t.Fatalf("NodeSlot(%d) = %d, want %d", n, got, slot)
			}
		}
	}
	if len(seen) != tp.NumNodes() {
		t.Fatalf("attached %d nodes, want %d", len(seen), tp.NumNodes())
	}
	// RouterOfNode must be monotone: consecutive nodes on the same or a later
	// router, so contiguous allocations stay physically adjacent.
	for n := NodeID(1); int(n) < tp.NumNodes(); n++ {
		if tp.RouterOfNode(n) < tp.RouterOfNode(n-1) {
			t.Fatalf("RouterOfNode not monotone at node %d", n)
		}
	}
}

func TestPlusBipartiteLocal(t *testing.T) {
	tp := plusMini(t)
	for a := RouterID(0); int(a) < tp.NumRouters(); a++ {
		for b := RouterID(0); int(b) < tp.NumRouters(); b++ {
			want := a != b && tp.GroupOfRouter(a) == tp.GroupOfRouter(b) &&
				tp.IsLeaf(a) != tp.IsLeaf(b)
			if got := tp.LocalConnected(a, b); got != want {
				t.Fatalf("LocalConnected(%d,%d) = %v, want %v", a, b, got, want)
			}
		}
		wantDeg := tp.Config().Spines
		if !tp.IsLeaf(a) {
			wantDeg = tp.Config().Leaves
		}
		if got := len(tp.LocalNeighbors(a)); got != wantDeg {
			t.Fatalf("router %d local degree %d, want %d", a, got, wantDeg)
		}
	}
}

func TestPlusLocalNextHopReachesDst(t *testing.T) {
	tp := plusMini(t)
	rpg := tp.Config().RoutersPerGroup()
	for a := 0; a < rpg; a++ {
		for b := 0; b < rpg; b++ {
			cur, dst := RouterID(a), RouterID(b)
			hops := 0
			for cur != dst {
				next := tp.LocalNextHop(cur, dst)
				if next != dst && !tp.LocalConnected(cur, next) {
					t.Fatalf("LocalNextHop(%d,%d) = %d: not a neighbor", cur, dst, next)
				}
				if next == cur {
					t.Fatalf("LocalNextHop(%d,%d) did not advance", cur, dst)
				}
				cur = next
				if hops++; hops > 2 {
					t.Fatalf("route %d->%d exceeds 2 hops", a, b)
				}
			}
			if want := tp.LocalDistance(RouterID(a), dst); hops != want {
				t.Fatalf("canonical route %d->%d took %d hops, want %d", a, b, hops, want)
			}
		}
	}
}

func TestPlusGlobalWiring(t *testing.T) {
	for _, cfg := range []PlusConfig{PlusMini(), Plus()} {
		tp := MustNewPlus(cfg)
		conns := tp.GlobalConns()
		wantLinks := cfg.Groups * cfg.Spines * cfg.GlobalPortsPerSpine / 2
		if len(conns) != wantLinks {
			t.Fatalf("%s: %d global links, want %d (all ports wired)", cfg.Label(), len(conns), wantLinks)
		}
		for _, conn := range conns {
			if tp.IsLeaf(conn.A) || tp.IsLeaf(conn.B) {
				t.Fatalf("%s: global link touches a leaf: %+v", cfg.Label(), conn)
			}
			if tp.GroupOfRouter(conn.A) == tp.GroupOfRouter(conn.B) {
				t.Fatalf("%s: intra-group global link %+v", cfg.Label(), conn)
			}
			if !tp.GlobalConnected(conn.A, conn.B) || !tp.GlobalConnected(conn.B, conn.A) {
				t.Fatalf("%s: GlobalConnected misses link %+v", cfg.Label(), conn)
			}
		}
		perPair := wantLinks / (cfg.Groups * (cfg.Groups - 1) / 2)
		for a := 0; a < cfg.Groups; a++ {
			for b := 0; b < cfg.Groups; b++ {
				if a == b {
					continue
				}
				gws := tp.Gateways(a, b)
				if len(gws) != perPair {
					t.Fatalf("%s: %d gateways %d->%d, want %d", cfg.Label(), len(gws), a, b, perPair)
				}
				for _, gw := range gws {
					peer, _, ok := tp.GlobalPeer(gw.Router, gw.Port)
					if !ok || peer != gw.Peer {
						t.Fatalf("%s: gateway %+v peer mismatch (got %d ok=%v)", cfg.Label(), gw, peer, ok)
					}
					if tp.GroupOfRouter(gw.Router) != a || tp.GroupOfRouter(gw.Peer) != b {
						t.Fatalf("%s: gateway %+v crosses wrong groups", cfg.Label(), gw)
					}
				}
			}
		}
	}
}

func TestPlusMinimalRouterHops(t *testing.T) {
	tp := plusMini(t)
	// Same node / same leaf: 1; same group: 1+distance; inter-group: always 4
	// (leaf, gateway spine, peer spine, leaf).
	n0 := NodeID(0)
	if got := tp.MinimalRouterHops(n0, 1); got != 1 {
		t.Fatalf("same-leaf hops = %d, want 1", got)
	}
	other := tp.NodeAt(RouterID(1), 0) // leaf 1, same group
	if got := tp.MinimalRouterHops(n0, other); got != 3 {
		t.Fatalf("leaf-leaf hops = %d, want 3", got)
	}
	far := tp.NodeAt(RouterID(tp.Config().RoutersPerGroup()), 0) // group 1 leaf 0
	if got := tp.MinimalRouterHops(n0, far); got != 4 {
		t.Fatalf("inter-group hops = %d, want 4", got)
	}
}

func TestPlusUnitsPartitionNodes(t *testing.T) {
	tp := plusMini(t)
	count := func(units int, routersIn func(int) []RouterID) int {
		seen := map[NodeID]bool{}
		for u := 0; u < units; u++ {
			for _, r := range routersIn(u) {
				for _, n := range tp.NodesOfRouter(r) {
					if seen[n] {
						t.Fatalf("node %d in two units", n)
					}
					seen[n] = true
				}
			}
		}
		return len(seen)
	}
	if got := count(tp.ChassisCount(), tp.RoutersInChassis); got != tp.NumNodes() {
		t.Fatalf("chassis cover %d nodes, want %d", got, tp.NumNodes())
	}
	if got := count(tp.CabinetCount(), tp.RoutersInCabinet); got != tp.NumNodes() {
		t.Fatalf("cabinets cover %d nodes, want %d", got, tp.NumNodes())
	}
}

func TestPlusValiantRoutersAreLeaves(t *testing.T) {
	tp := plusMini(t)
	if got, want := tp.NumValiantRouters(), tp.Config().Groups*tp.Config().Leaves; got != want {
		t.Fatalf("NumValiantRouters = %d, want %d", got, want)
	}
	seen := map[RouterID]bool{}
	for i := 0; i < tp.NumValiantRouters(); i++ {
		r := tp.ValiantRouter(i)
		if !tp.IsLeaf(r) {
			t.Fatalf("ValiantRouter(%d) = %d is a spine", i, r)
		}
		if seen[r] {
			t.Fatalf("ValiantRouter(%d) = %d repeated", i, r)
		}
		seen[r] = true
	}
}

func TestPlusValidate(t *testing.T) {
	bad := []PlusConfig{
		{},
		{Groups: 2, Leaves: 0, Spines: 1, NodesPerLeaf: 1, GlobalPortsPerSpine: 1, LeavesPerChassis: 1, ChassisPerCabinet: 1},
		{Groups: 2, Leaves: 2, Spines: 1, NodesPerLeaf: 1, GlobalPortsPerSpine: 0, LeavesPerChassis: 1, ChassisPerCabinet: 1},
	}
	for i, cfg := range bad {
		if _, err := NewPlus(cfg); err == nil {
			t.Fatalf("config %d: expected error", i)
		}
	}
	if err := Plus().Validate(); err != nil {
		t.Fatalf("Plus(): %v", err)
	}
}

func TestPresetRegistry(t *testing.T) {
	for _, name := range PresetNames() {
		m, err := Preset(name)
		if err != nil {
			t.Fatalf("Preset(%q): %v", name, err)
		}
		ic, err := m.Build()
		if err != nil {
			t.Fatalf("Preset(%q).Build: %v", name, err)
		}
		if ic.NumNodes() < 1 || ic.NumRouters() < 1 {
			t.Fatalf("Preset(%q): empty machine", name)
		}
		if ic.Describe() == "" || m.Label() == "" {
			t.Fatalf("Preset(%q): missing description", name)
		}
	}
	if _, err := Preset("torus"); err == nil {
		t.Fatal("Preset(torus): expected error")
	}
}
