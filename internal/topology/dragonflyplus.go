package topology

import (
	"errors"
	"fmt"
)

// Dragonfly+ (Shpiner et al.; studied for interference by Kang et al.,
// "Modeling and Analysis of Application Interference on Dragonfly+") replaces
// the XC40's row/column router grid with two-layer groups: leaf routers hold
// the compute nodes and connect to every spine router of their group
// (complete bipartite local wiring); spine routers hold the global ports.
// Every minimal intra-group traversal is therefore up-down — at most
// leaf -> spine -> leaf — which is what keeps the virtual-channel scheme of
// package routing deadlock-free on this machine (see DESIGN.md).
//
// Runs on this topology are extensions beyond the source paper, which studies
// the XC40 machine only.

// PlusConfig describes a Dragonfly+ machine. The zero value is invalid; use
// Plus()/PlusMini() or fill the fields for a custom machine.
type PlusConfig struct {
	Groups              int // number of groups
	Leaves              int // leaf routers per group (nodes attach here)
	Spines              int // spine routers per group (global ports live here)
	NodesPerLeaf        int // compute nodes attached to each leaf router
	GlobalPortsPerSpine int // global (inter-group) link ports per spine
	LeavesPerChassis    int // leaf routers grouped into one chassis
	ChassisPerCabinet   int // chassis grouped into one cabinet
}

// Plus returns a 1296-node Dragonfly+ machine proportioned like the systems
// in Kang et al.: 9 groups x (24 leaves + 12 spines) x 6 nodes per leaf,
// with 3 parallel global links per group pair. It is an illustrative
// configuration for extension studies, not a model of a specific machine.
func Plus() PlusConfig {
	return PlusConfig{
		Groups:              9,
		Leaves:              24,
		Spines:              12,
		NodesPerLeaf:        6,
		GlobalPortsPerSpine: 2,
		LeavesPerChassis:    4,
		ChassisPerCabinet:   3,
	}
}

// PlusMini returns a small Dragonfly+ machine for tests, benchmarks, and
// quick-scale sweeps: 5 groups x (8 leaves + 4 spines) x 4 nodes = 160
// nodes — the same node count as the quick-scale XC40 machine, so the same
// shrunk application traces fit both.
func PlusMini() PlusConfig {
	return PlusConfig{
		Groups:              5,
		Leaves:              8,
		Spines:              4,
		NodesPerLeaf:        4,
		GlobalPortsPerSpine: 3,
		LeavesPerChassis:    2,
		ChassisPerCabinet:   2,
	}
}

// Validate reports whether the configuration describes a buildable machine.
func (c PlusConfig) Validate() error {
	switch {
	case c.Groups < 1:
		return errors.New("topology: Groups must be >= 1")
	case c.Leaves < 1 || c.Spines < 1:
		return errors.New("topology: Leaves and Spines must be >= 1")
	case c.NodesPerLeaf < 1:
		return errors.New("topology: NodesPerLeaf must be >= 1")
	case c.LeavesPerChassis < 1:
		return errors.New("topology: LeavesPerChassis must be >= 1")
	case c.ChassisPerCabinet < 1:
		return errors.New("topology: ChassisPerCabinet must be >= 1")
	case c.Groups > 1 && c.GlobalPortsPerSpine < 1:
		return errors.New("topology: multi-group machine needs GlobalPortsPerSpine >= 1")
	case c.GlobalPortsPerSpine < 0:
		return errors.New("topology: GlobalPortsPerSpine must be >= 0")
	}
	return nil
}

// RoutersPerGroup returns the router count of one group (leaves + spines).
func (c PlusConfig) RoutersPerGroup() int { return c.Leaves + c.Spines }

// Build makes PlusConfig a Machine.
func (c PlusConfig) Build() (Interconnect, error) { return NewPlus(c) }

// Label returns a compact, deterministic description of the machine shape.
func (c PlusConfig) Label() string {
	return fmt.Sprintf("dragonfly+:g%d-l%d-s%d-n%d", c.Groups, c.Leaves, c.Spines, c.NodesPerLeaf)
}

// CanonicalSpec renders every shape field into one deterministic string —
// the machine's identity for content-addressed result caching (see
// Config.CanonicalSpec).
func (c PlusConfig) CanonicalSpec() string {
	return fmt.Sprintf("dragonfly+{groups=%d,leaves=%d,spines=%d,nodes_per_leaf=%d,global_ports_per_spine=%d,leaves_per_chassis=%d,chassis_per_cabinet=%d}",
		c.Groups, c.Leaves, c.Spines, c.NodesPerLeaf, c.GlobalPortsPerSpine, c.LeavesPerChassis, c.ChassisPerCabinet)
}

// DragonflyPlus is an immutable, fully wired Dragonfly+ machine. Routers are
// numbered group-major; within a group the leaves come first (0..Leaves-1),
// then the spines. Nodes attach to leaves only, numbered consecutively per
// leaf in leaf order, so RouterOfNode stays monotone.
type DragonflyPlus struct {
	cfg PlusConfig

	routersPerGroup int
	numRouters      int
	numNodes        int

	globalPeer     []RouterID
	globalPeerPort []int32
	gateways       [][][]Gateway

	// Shared local-neighbor lists, resolved once at construction: every leaf
	// of group g has exactly the spines of g as neighbors and every spine the
	// leaves, so one slice per (group, side) serves all its routers —
	// LocalNeighbors is called per router during fabric construction, health
	// rebuilds, and template extraction, and per-call allocation there was
	// the dominant share of the DF+ fabric-construction allocation gap.
	spineNbrs [][]RouterID // indexed by group: the spines of that group
	leafNbrs  [][]RouterID // indexed by group: the leaves of that group
}

// NewPlus builds and wires a Dragonfly+ machine.
func NewPlus(cfg PlusConfig) (*DragonflyPlus, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	t := &DragonflyPlus{
		cfg:             cfg,
		routersPerGroup: cfg.RoutersPerGroup(),
	}
	t.numRouters = cfg.Groups * t.routersPerGroup
	t.numNodes = cfg.Groups * cfg.Leaves * cfg.NodesPerLeaf
	g := cfg.GlobalPortsPerSpine
	t.globalPeer, t.globalPeerPort, t.gateways = roundRobinWire(
		cfg.Groups, t.numRouters, g, cfg.Spines*g,
		func(group, k int) RouterID {
			return RouterID(group*t.routersPerGroup + cfg.Leaves + k/g)
		},
	)
	t.spineNbrs = make([][]RouterID, cfg.Groups)
	t.leafNbrs = make([][]RouterID, cfg.Groups)
	spineFlat := make([]RouterID, cfg.Groups*cfg.Spines)
	leafFlat := make([]RouterID, cfg.Groups*cfg.Leaves)
	for grp := 0; grp < cfg.Groups; grp++ {
		base := grp * t.routersPerGroup
		s := spineFlat[grp*cfg.Spines : (grp+1)*cfg.Spines]
		for i := range s {
			s[i] = RouterID(base + cfg.Leaves + i)
		}
		t.spineNbrs[grp] = s
		l := leafFlat[grp*cfg.Leaves : (grp+1)*cfg.Leaves]
		for i := range l {
			l[i] = RouterID(base + i)
		}
		t.leafNbrs[grp] = l
	}
	return t, nil
}

// MustNewPlus is NewPlus for known-good configurations (presets, tests).
func MustNewPlus(cfg PlusConfig) *DragonflyPlus {
	t, err := NewPlus(cfg)
	if err != nil {
		panic(err)
	}
	return t
}

// Config returns the machine's configuration.
func (t *DragonflyPlus) Config() PlusConfig { return t.cfg }

// Name identifies the topology family.
func (t *DragonflyPlus) Name() string { return "dragonfly+" }

// NumGroups returns the group count.
func (t *DragonflyPlus) NumGroups() int { return t.cfg.Groups }

// NumRouters returns the machine-wide router count (leaves and spines).
func (t *DragonflyPlus) NumRouters() int { return t.numRouters }

// NumNodes returns the machine-wide compute-node count.
func (t *DragonflyPlus) NumNodes() int { return t.numNodes }

// NodesPerRouter returns the node count of a leaf router; spines hold none.
func (t *DragonflyPlus) NodesPerRouter() int { return t.cfg.NodesPerLeaf }

// IsLeaf reports whether r is a leaf (node-holding) router.
func (t *DragonflyPlus) IsLeaf(r RouterID) bool {
	return int(r)%t.routersPerGroup < t.cfg.Leaves
}

// leafIndex returns r's machine-wide leaf ordinal; r must be a leaf.
func (t *DragonflyPlus) leafIndex(r RouterID) int {
	g := int(r) / t.routersPerGroup
	l := int(r) % t.routersPerGroup
	return g*t.cfg.Leaves + l
}

// leafRouter returns the router of the machine-wide leaf ordinal i.
func (t *DragonflyPlus) leafRouter(i int) RouterID {
	return RouterID(i/t.cfg.Leaves*t.routersPerGroup + i%t.cfg.Leaves)
}

// RouterOfNode returns the leaf router a node attaches to.
func (t *DragonflyPlus) RouterOfNode(n NodeID) RouterID {
	return t.leafRouter(int(n) / t.cfg.NodesPerLeaf)
}

// NodeSlot returns the node's terminal-port slot on its leaf.
func (t *DragonflyPlus) NodeSlot(n NodeID) int {
	return int(n) % t.cfg.NodesPerLeaf
}

// NodeAt returns the node in a given slot of a leaf router.
func (t *DragonflyPlus) NodeAt(r RouterID, slot int) NodeID {
	return NodeID(t.leafIndex(r)*t.cfg.NodesPerLeaf + slot)
}

// GroupOfRouter returns the group containing a router.
func (t *DragonflyPlus) GroupOfRouter(r RouterID) int {
	return int(r) / t.routersPerGroup
}

// GroupOfNode returns the group containing a node.
func (t *DragonflyPlus) GroupOfNode(n NodeID) int {
	return t.GroupOfRouter(t.RouterOfNode(n))
}

// NodesOfRouter returns the nodes attached to a router, in slot order;
// spines return nil.
func (t *DragonflyPlus) NodesOfRouter(r RouterID) []NodeID {
	if !t.IsLeaf(r) {
		return nil
	}
	out := make([]NodeID, t.cfg.NodesPerLeaf)
	for i := range out {
		out[i] = t.NodeAt(r, i)
	}
	return out
}

// --- chassis / cabinet structure -----------------------------------------

// chassisPerGroup counts the chassis of one group; a trailing partial
// chassis counts as one. Only leaves belong to chassis — spines hold no
// nodes, so placement units never need them.
func (t *DragonflyPlus) chassisPerGroup() int {
	return (t.cfg.Leaves + t.cfg.LeavesPerChassis - 1) / t.cfg.LeavesPerChassis
}

// ChassisCount returns the machine-wide chassis count.
func (t *DragonflyPlus) ChassisCount() int { return t.cfg.Groups * t.chassisPerGroup() }

// RoutersInChassis returns the leaf routers of one chassis in leaf order.
func (t *DragonflyPlus) RoutersInChassis(chassis int) []RouterID {
	perGroup := t.chassisPerGroup()
	group := chassis / perGroup
	first := (chassis % perGroup) * t.cfg.LeavesPerChassis
	last := first + t.cfg.LeavesPerChassis
	if last > t.cfg.Leaves {
		last = t.cfg.Leaves
	}
	out := make([]RouterID, 0, last-first)
	for l := first; l < last; l++ {
		out = append(out, RouterID(group*t.routersPerGroup+l))
	}
	return out
}

// CabinetsPerGroup returns how many cabinets one group spans.
func (t *DragonflyPlus) CabinetsPerGroup() int {
	return (t.chassisPerGroup() + t.cfg.ChassisPerCabinet - 1) / t.cfg.ChassisPerCabinet
}

// CabinetCount returns the machine-wide cabinet count.
func (t *DragonflyPlus) CabinetCount() int { return t.cfg.Groups * t.CabinetsPerGroup() }

// RoutersInCabinet returns the leaf routers of one cabinet in chassis order.
func (t *DragonflyPlus) RoutersInCabinet(cabinet int) []RouterID {
	perGroup := t.CabinetsPerGroup()
	group := cabinet / perGroup
	firstChassis := group*t.chassisPerGroup() + (cabinet%perGroup)*t.cfg.ChassisPerCabinet
	lastChassis := firstChassis + t.cfg.ChassisPerCabinet
	if max := (group + 1) * t.chassisPerGroup(); lastChassis > max {
		lastChassis = max
	}
	var out []RouterID
	for ch := firstChassis; ch < lastChassis; ch++ {
		out = append(out, t.RoutersInChassis(ch)...)
	}
	return out
}

// --- local connectivity ----------------------------------------------------

// LocalConnected reports whether a and b are joined by a local link: the
// local wiring is complete bipartite, so exactly the leaf-spine pairs of one
// group are connected.
func (t *DragonflyPlus) LocalConnected(a, b RouterID) bool {
	if a == b || t.GroupOfRouter(a) != t.GroupOfRouter(b) {
		return false
	}
	return t.IsLeaf(a) != t.IsLeaf(b)
}

// LocalNeighbors returns the routers joined to r by local links: every spine
// of its group for a leaf, every leaf for a spine, in index order. The
// returned slice is shared (resolved once per group at construction); callers
// must not mutate it.
func (t *DragonflyPlus) LocalNeighbors(r RouterID) []RouterID {
	if t.IsLeaf(r) {
		return t.spineNbrs[t.GroupOfRouter(r)]
	}
	return t.leafNbrs[t.GroupOfRouter(r)]
}

// LocalDistance returns the intra-group hop distance between two routers of
// the same group: 0 (same router), 1 (leaf-spine) or 2 (leaf-leaf,
// spine-spine). It panics if the routers are in different groups.
func (t *DragonflyPlus) LocalDistance(a, b RouterID) int {
	if t.GroupOfRouter(a) != t.GroupOfRouter(b) {
		panic(fmt.Sprintf("topology: LocalDistance across groups: %d vs %d", a, b))
	}
	switch {
	case a == b:
		return 0
	case t.IsLeaf(a) != t.IsLeaf(b):
		return 1
	default:
		return 2
	}
}

// LocalNextHop returns the router after cur on the canonical minimal
// intra-group route from cur to dst. Adjacent (leaf-spine) pairs go direct;
// a leaf-leaf pair goes through the spine indexed by the sum of the two leaf
// ordinals mod Spines (deterministic, and spreading pairs over spines); the
// symmetric rule routes spine-spine pairs through a leaf, though routing
// never asks for that case — every route segment is anchored at a leaf, so
// the canonical routes actually traversed are direct hops and up-down
// leaf-spine-leaf walks only, and the per-class channel dependency graph
// stays acyclic (see DESIGN.md). It panics if the routers are in different
// groups.
func (t *DragonflyPlus) LocalNextHop(cur, dst RouterID) RouterID {
	if t.GroupOfRouter(cur) != t.GroupOfRouter(dst) {
		panic(fmt.Sprintf("topology: LocalNextHop across groups: %d vs %d", cur, dst))
	}
	if cur == dst || t.IsLeaf(cur) != t.IsLeaf(dst) {
		return dst
	}
	base := t.GroupOfRouter(cur) * t.routersPerGroup
	ci := int(cur) - base
	di := int(dst) - base
	if t.IsLeaf(cur) {
		return RouterID(base + t.cfg.Leaves + (ci+di)%t.cfg.Spines)
	}
	return RouterID(base + (ci+di)%t.cfg.Leaves)
}

// NumValiantRouters returns the eligible Valiant-intermediate count: leaves
// only. Restricting intermediates to leaves keeps every intra-group segment
// of a Valiant route up-down and bounds the local VC class at 3, within
// routing.NumLocalVC (see DESIGN.md).
func (t *DragonflyPlus) NumValiantRouters() int { return t.cfg.Groups * t.cfg.Leaves }

// ValiantRouter returns the i-th eligible Valiant intermediate.
func (t *DragonflyPlus) ValiantRouter(i int) RouterID { return t.leafRouter(i) }

// --- global connectivity ---------------------------------------------------

// GlobalPeer returns the router and port at the far end of router r's global
// port p; ok is false when the port is unwired (always, for leaves).
func (t *DragonflyPlus) GlobalPeer(r RouterID, p int) (peer RouterID, peerPort int, ok bool) {
	g := t.cfg.GlobalPortsPerSpine
	if p < 0 || p >= g {
		panic(fmt.Sprintf("topology: global port %d out of range [0,%d)", p, g))
	}
	idx := int(r)*g + p
	if t.globalPeer[idx] < 0 {
		return 0, 0, false
	}
	return t.globalPeer[idx], int(t.globalPeerPort[idx]), true
}

// Gateways returns the (spine, port, peer) triples of group src whose global
// links land in group dst. The returned slice is shared; callers must not
// mutate it.
func (t *DragonflyPlus) Gateways(src, dst int) []Gateway {
	return t.gateways[src][dst]
}

// GlobalConnected reports whether routers a and b are joined by a wired
// global link.
func (t *DragonflyPlus) GlobalConnected(a, b RouterID) bool {
	g := t.cfg.GlobalPortsPerSpine
	for p := 0; p < g; p++ {
		if t.globalPeer[int(a)*g+p] == b {
			return true
		}
	}
	return false
}

// GlobalConns enumerates every wired global link exactly once.
func (t *DragonflyPlus) GlobalConns() []GlobalConn {
	g := t.cfg.GlobalPortsPerSpine
	var out []GlobalConn
	for r := 0; r < t.numRouters; r++ {
		for p := 0; p < g; p++ {
			peer := t.globalPeer[r*g+p]
			if peer < 0 || RouterID(r) > peer ||
				(RouterID(r) == peer && p > int(t.globalPeerPort[r*g+p])) {
				continue
			}
			out = append(out, GlobalConn{
				A: RouterID(r), APort: p,
				B: peer, BPort: int(t.globalPeerPort[r*g+p]),
			})
		}
	}
	return out
}

// MinimalRouterHops returns the number of routers a minimally routed packet
// traverses from src node to dst node; same-router delivery counts 1, the
// worst minimal inter-group path (leaf, gateway spine, peer spine, leaf)
// counts 4.
func (t *DragonflyPlus) MinimalRouterHops(src, dst NodeID) int {
	rs, rd := t.RouterOfNode(src), t.RouterOfNode(dst)
	gs, gd := t.GroupOfRouter(rs), t.GroupOfRouter(rd)
	if gs == gd {
		return 1 + t.LocalDistance(rs, rd)
	}
	best := -1
	for _, gw := range t.Gateways(gs, gd) {
		h := 1 + t.LocalDistance(rs, gw.Router) + 1 + t.LocalDistance(gw.Peer, rd)
		if best < 0 || h < best {
			best = h
		}
	}
	if best < 0 {
		panic(fmt.Sprintf("topology: groups %d and %d are not connected", gs, gd))
	}
	return best
}

// Describe returns a human-readable inventory of the machine.
func (t *DragonflyPlus) Describe() string {
	c := t.cfg
	wired := len(t.GlobalConns())
	return fmt.Sprintf(
		"dragonfly+: %d groups x (%d leaves + %d spines) x %d nodes/leaf = %d routers, %d nodes\n"+
			"  chassis: %d (%d leaves each), cabinets: %d (%d chassis each)\n"+
			"  local links: complete bipartite leaf<->spine (%d per group)\n"+
			"  global ports/spine: %d; bidirectional global links: %d (%d per group pair)\n",
		c.Groups, c.Leaves, c.Spines, c.NodesPerLeaf, t.numRouters, t.numNodes,
		t.ChassisCount(), c.LeavesPerChassis, t.CabinetCount(), c.ChassisPerCabinet,
		c.Leaves*c.Spines,
		c.GlobalPortsPerSpine, wired, perPairOrZero(wired, c.Groups),
	)
}
