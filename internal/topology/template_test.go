package topology

import (
	"testing"

	"dragonfly/internal/par"
)

// TestLocalTemplateMatchesInterface: on every preset, the extracted template
// must reproduce LocalNextHop and LocalNeighbors exactly for every group —
// the property the compressed routing and fabric tables rely on.
func TestLocalTemplateMatchesInterface(t *testing.T) {
	for _, name := range PresetNames() {
		m, err := Preset(name)
		if err != nil {
			t.Fatal(err)
		}
		ic, err := m.Build()
		if err != nil {
			t.Fatal(err)
		}
		tmpl, ok := NewLocalTemplate(ic)
		if !ok {
			t.Fatalf("%s: groups not isomorphic, template refused", name)
		}
		rpg := tmpl.RPG
		if rpg*ic.NumGroups() != ic.NumRouters() {
			t.Fatalf("%s: RPG %d x %d groups != %d routers", name, rpg, ic.NumGroups(), ic.NumRouters())
		}
		for g := 0; g < ic.NumGroups(); g++ {
			base := g * rpg
			for i := 0; i < rpg; i++ {
				for j := 0; j < rpg; j++ {
					want := ic.LocalNextHop(RouterID(base+i), RouterID(base+j))
					got := RouterID(base) + RouterID(tmpl.Next[i*rpg+j])
					if got != want {
						t.Fatalf("%s g%d: next(%d,%d) = %d, want %d", name, g, i, j, got, want)
					}
				}
				nbrs := ic.LocalNeighbors(RouterID(base + i))
				tn := tmpl.Neighbors(i)
				if len(nbrs) != len(tn) {
					t.Fatalf("%s g%d: neighbor count %d != %d", name, g, len(tn), len(nbrs))
				}
				for k := range nbrs {
					if int(nbrs[k]) != base+int(tn[k]) {
						t.Fatalf("%s g%d r%d: neighbor %d = %d, want %d",
							name, g, i, k, base+int(tn[k]), nbrs[k])
					}
				}
			}
		}
	}
}

// lopsided wraps a Dragonfly and breaks group isomorphism in one group, to
// prove template extraction refuses rather than silently mis-templates.
type lopsided struct{ *Dragonfly }

func (l lopsided) LocalNextHop(cur, dst RouterID) RouterID {
	if l.GroupOfRouter(cur) == 1 && cur != dst {
		// Swap the row/column order in group 1 only.
		cc, cd := l.RouterCoord(cur), l.RouterCoord(dst)
		if cc.Row != cd.Row {
			return l.RouterAt(cc.Group, cd.Row, cc.Col)
		}
		return dst
	}
	return l.Dragonfly.LocalNextHop(cur, dst)
}

func TestLocalTemplateRefusesNonIsomorphicGroups(t *testing.T) {
	ic := lopsided{MustNew(Mini())}
	if _, ok := NewLocalTemplate(ic); ok {
		t.Fatal("template accepted a machine with a deviant group")
	}
}

// TestWiringWorkerCountInvariance: the sharded round-robin wiring must
// produce byte-identical machines at every worker count.
func TestWiringWorkerCountInvariance(t *testing.T) {
	prev := par.SetWorkers(1)
	defer par.SetWorkers(prev)
	base := MustNew(Mini())
	for _, w := range []int{2, 3, 8} {
		par.SetWorkers(w)
		got := MustNew(Mini())
		if len(got.globalPeer) != len(base.globalPeer) {
			t.Fatalf("workers=%d: peer table length %d != %d", w, len(got.globalPeer), len(base.globalPeer))
		}
		for i := range base.globalPeer {
			if got.globalPeer[i] != base.globalPeer[i] || got.globalPeerPort[i] != base.globalPeerPort[i] {
				t.Fatalf("workers=%d: port slot %d differs", w, i)
			}
		}
		for a := range base.gateways {
			for b := range base.gateways[a] {
				bg, gg := base.gateways[a][b], got.gateways[a][b]
				if len(bg) != len(gg) {
					t.Fatalf("workers=%d: gateways[%d][%d] length %d != %d", w, a, b, len(gg), len(bg))
				}
				for s := range bg {
					if bg[s] != gg[s] {
						t.Fatalf("workers=%d: gateways[%d][%d][%d] differs", w, a, b, s)
					}
				}
			}
		}
	}
}

// TestScaleConfigShapes: synthesized shapes must validate, meet the router
// floor, and keep every group pair connected (the SPI's Gateways contract).
func TestScaleConfigShapes(t *testing.T) {
	for _, tc := range []struct {
		family  string
		routers int
	}{
		{"df", 2000}, {"df", 20000}, {"dfplus", 2000}, {"dfplus", 20000},
	} {
		m, err := ScaleConfig(tc.family, tc.routers)
		if err != nil {
			t.Fatal(err)
		}
		ic, err := m.Build()
		if err != nil {
			t.Fatalf("%s:%d: %v", tc.family, tc.routers, err)
		}
		if ic.NumRouters() < tc.routers {
			t.Fatalf("%s:%d: only %d routers", tc.family, tc.routers, ic.NumRouters())
		}
		g := ic.NumGroups()
		// Sampled group pairs (corners and a stride) all need gateways.
		for _, a := range []int{0, 1, g / 2, g - 1} {
			for _, b := range []int{0, g / 3, g - 1} {
				if a == b {
					continue
				}
				if len(ic.Gateways(a, b)) == 0 {
					t.Fatalf("%s:%d: no gateways %d -> %d", tc.family, tc.routers, a, b)
				}
			}
		}
	}
	if _, err := ScaleConfig("torus", 100); err == nil {
		t.Fatal("unknown family accepted")
	}
	if _, err := ScaleConfig("df", 0); err == nil {
		t.Fatal("zero routers accepted")
	}
}
