package topology

import (
	"reflect"
	"testing"
)

// perturbEveryField bumps each struct field of cfg (all shape fields are
// ints) and returns the CanonicalSpec of every perturbed copy, keyed by
// field name. Using reflection means a newly added shape field is
// automatically perturbed — if CanonicalSpec does not render it, the test
// fails, closing the "silent wrong-machine cache hit" hole.
func perturbEveryField(t *testing.T, cfg interface{}, spec func(v reflect.Value) string) map[string]string {
	t.Helper()
	out := map[string]string{}
	typ := reflect.TypeOf(cfg)
	for i := 0; i < typ.NumField(); i++ {
		f := typ.Field(i)
		if f.Type.Kind() != reflect.Int {
			t.Fatalf("field %s has kind %v; extend the perturbation helper", f.Name, f.Type.Kind())
		}
		v := reflect.New(typ).Elem()
		v.Set(reflect.ValueOf(cfg))
		v.Field(i).SetInt(v.Field(i).Int() + 1)
		out[f.Name] = spec(v)
	}
	return out
}

func TestCanonicalSpecCoversEveryDragonflyField(t *testing.T) {
	base := Theta()
	baseSpec := base.CanonicalSpec()
	specs := perturbEveryField(t, base, func(v reflect.Value) string {
		return v.Interface().(Config).CanonicalSpec()
	})
	seen := map[string]string{baseSpec: "base"}
	for field, s := range specs {
		if s == baseSpec {
			t.Errorf("Config.%s does not perturb CanonicalSpec (%q)", field, s)
		}
		if prev, dup := seen[s]; dup {
			t.Errorf("Config.%s and %s collide on CanonicalSpec %q", field, prev, s)
		}
		seen[s] = field
	}
}

func TestCanonicalSpecCoversEveryPlusField(t *testing.T) {
	base := Plus()
	baseSpec := base.CanonicalSpec()
	specs := perturbEveryField(t, base, func(v reflect.Value) string {
		return v.Interface().(PlusConfig).CanonicalSpec()
	})
	seen := map[string]string{baseSpec: "base"}
	for field, s := range specs {
		if s == baseSpec {
			t.Errorf("PlusConfig.%s does not perturb CanonicalSpec (%q)", field, s)
		}
		if prev, dup := seen[s]; dup {
			t.Errorf("PlusConfig.%s and %s collide on CanonicalSpec %q", field, prev, s)
		}
		seen[s] = field
	}
}

func TestCanonicalSpecDistinguishesFamilies(t *testing.T) {
	if Theta().CanonicalSpec() == Plus().CanonicalSpec() {
		t.Fatal("dragonfly and dragonfly+ specs collide")
	}
	if Mini().CanonicalSpec() == Theta().CanonicalSpec() {
		t.Fatal("mini and theta specs collide")
	}
}
