// Package topology models the Cray XC40 dragonfly interconnect of the Theta
// system studied in the paper: groups of Aries routers arranged in a
// rows × cols grid, row and column all-to-all local links, global links
// between groups, and a fixed number of compute nodes per router. Each grid
// row of routers forms a chassis and a configurable number of chassis form a
// cabinet (three on Theta), which is what the random-cabinet and
// random-chassis placement policies select over.
package topology

import (
	"errors"
	"fmt"
)

// RouterID identifies a router; the numbering is group-major, then row-major
// within the group grid.
type RouterID int32

// NodeID identifies a compute node; nodes are numbered consecutively per
// router in router order, so contiguous node ranges correspond to physically
// adjacent hardware.
type NodeID int32

// Coord locates a router inside the machine.
type Coord struct {
	Group int
	Row   int
	Col   int
}

func (c Coord) String() string {
	return fmt.Sprintf("g%d/r%d/c%d", c.Group, c.Row, c.Col)
}

// Config describes a dragonfly machine. The zero value is invalid; use
// Theta() for the paper's system or fill the fields for a custom machine.
type Config struct {
	Groups               int // number of dragonfly groups
	Rows                 int // router grid rows per group (chassis per group)
	Cols                 int // router grid columns per group (routers per chassis)
	NodesPerRouter       int // compute nodes attached to each router
	GlobalPortsPerRouter int // global (inter-group) link ports per router
	ChassisPerCabinet    int // chassis grouped into one cabinet (Theta: 3)
}

// Theta returns the configuration of the Theta system as studied in the
// paper (Sec. II): 9 groups, 96 Aries routers per group in a 6 × 16 grid,
// 4 nodes per router, and enough global ports that every group pair is
// joined by many parallel links (10 ports/router → 120 links per pair).
func Theta() Config {
	return Config{
		Groups:               9,
		Rows:                 6,
		Cols:                 16,
		NodesPerRouter:       4,
		GlobalPortsPerRouter: 10,
		ChassisPerCabinet:    3,
	}
}

// Mini returns a small machine with the same structure as Theta (several
// groups, non-trivial grid, parallel global links) that keeps unit tests and
// benchmarks fast. 4 groups × (2×4) routers × 2 nodes = 64 nodes.
func Mini() Config {
	return Config{
		Groups:               4,
		Rows:                 2,
		Cols:                 4,
		NodesPerRouter:       2,
		GlobalPortsPerRouter: 3,
		ChassisPerCabinet:    1,
	}
}

// Validate reports whether the configuration describes a buildable machine.
func (c Config) Validate() error {
	switch {
	case c.Groups < 1:
		return errors.New("topology: Groups must be >= 1")
	case c.Rows < 1 || c.Cols < 1:
		return errors.New("topology: Rows and Cols must be >= 1")
	case c.NodesPerRouter < 1:
		return errors.New("topology: NodesPerRouter must be >= 1")
	case c.ChassisPerCabinet < 1:
		return errors.New("topology: ChassisPerCabinet must be >= 1")
	case c.Groups > 1 && c.GlobalPortsPerRouter < 1:
		return errors.New("topology: multi-group machine needs GlobalPortsPerRouter >= 1")
	case c.GlobalPortsPerRouter < 0:
		return errors.New("topology: GlobalPortsPerRouter must be >= 0")
	}
	return nil
}

// RoutersPerGroup returns the router count of one group.
func (c Config) RoutersPerGroup() int { return c.Rows * c.Cols }

// Dragonfly is an immutable, fully wired XC40-style dragonfly machine. It is
// the reference Interconnect implementation; Topology is kept as an alias for
// existing callers.
type Dragonfly struct {
	cfg Config

	routersPerGroup int
	numRouters      int
	numNodes        int

	// globalPeer[r*G+p] is the router on the other end of router r's global
	// port p, or -1 if the port is unwired (non-divisible configurations).
	globalPeer []RouterID
	// globalPeerPort[r*G+p] is the peer's port index for the same link.
	globalPeerPort []int32
	// gateways[a][b] lists, for source group a and destination group b, the
	// (router, port) pairs in group a whose global link lands in group b.
	gateways [][][]Gateway
}

// Gateway is a router (with the specific global port) that connects its
// group to some destination group. Peer is the router at the far end of the
// link, precomputed so route construction never needs a per-port lookup.
type Gateway struct {
	Router RouterID
	Port   int
	Peer   RouterID
}

// New builds and wires a machine.
func New(cfg Config) (*Dragonfly, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	t := &Dragonfly{
		cfg:             cfg,
		routersPerGroup: cfg.RoutersPerGroup(),
	}
	t.numRouters = cfg.Groups * t.routersPerGroup
	t.numNodes = t.numRouters * cfg.NodesPerRouter
	t.wireGlobal()
	return t, nil
}

// MustNew is New for known-good configurations (presets, tests).
func MustNew(cfg Config) *Dragonfly {
	t, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return t
}

// Topology is the historical name of the XC40 dragonfly implementation.
//
// Deprecated: use Dragonfly (or the Interconnect interface).
type Topology = Dragonfly

// Build makes Config a Machine: it wires the described dragonfly.
func (c Config) Build() (Interconnect, error) { return New(c) }

// Label returns a compact, deterministic description of the machine shape,
// used when experiment reports need to say which machine they ran on.
func (c Config) Label() string {
	return fmt.Sprintf("dragonfly:g%d-r%dx%d-n%d", c.Groups, c.Rows, c.Cols, c.NodesPerRouter)
}

// CanonicalSpec renders every shape field into one deterministic string —
// the machine's identity for content-addressed result caching. Unlike Label
// (a human-facing summary that omits wiring details), two configs share a
// CanonicalSpec if and only if they build identical machines, so a cache
// keyed on it can never conflate differently wired fabrics. The
// farm-side coverage test fails if Config grows a field this misses.
func (c Config) CanonicalSpec() string {
	return fmt.Sprintf("dragonfly{groups=%d,rows=%d,cols=%d,nodes_per_router=%d,global_ports_per_router=%d,chassis_per_cabinet=%d}",
		c.Groups, c.Rows, c.Cols, c.NodesPerRouter, c.GlobalPortsPerRouter, c.ChassisPerCabinet)
}

// Config returns the machine's configuration.
func (t *Dragonfly) Config() Config { return t.cfg }

// Name identifies the topology family.
func (t *Dragonfly) Name() string { return "dragonfly" }

// NodesPerRouter returns the compute-node count attached to every router.
func (t *Dragonfly) NodesPerRouter() int { return t.cfg.NodesPerRouter }

// NumGroups returns the group count.
func (t *Dragonfly) NumGroups() int { return t.cfg.Groups }

// NumRouters returns the machine-wide router count.
func (t *Dragonfly) NumRouters() int { return t.numRouters }

// NumNodes returns the machine-wide compute-node count.
func (t *Dragonfly) NumNodes() int { return t.numNodes }

// RoutersPerGroup returns the per-group router count.
func (t *Dragonfly) RoutersPerGroup() int { return t.routersPerGroup }

// RouterAt returns the router at a coordinate.
func (t *Dragonfly) RouterAt(group, row, col int) RouterID {
	return RouterID((group*t.cfg.Rows+row)*t.cfg.Cols + col)
}

// RouterCoord returns the coordinate of a router.
func (t *Dragonfly) RouterCoord(r RouterID) Coord {
	col := int(r) % t.cfg.Cols
	rest := int(r) / t.cfg.Cols
	row := rest % t.cfg.Rows
	return Coord{Group: rest / t.cfg.Rows, Row: row, Col: col}
}

// GroupOfRouter returns the group containing a router.
func (t *Dragonfly) GroupOfRouter(r RouterID) int {
	return int(r) / t.routersPerGroup
}

// RouterOfNode returns the router a node attaches to.
func (t *Dragonfly) RouterOfNode(n NodeID) RouterID {
	return RouterID(int(n) / t.cfg.NodesPerRouter)
}

// NodeSlot returns the node's terminal-port slot on its router.
func (t *Dragonfly) NodeSlot(n NodeID) int {
	return int(n) % t.cfg.NodesPerRouter
}

// NodeAt returns the node in a given slot of a router.
func (t *Dragonfly) NodeAt(r RouterID, slot int) NodeID {
	return NodeID(int(r)*t.cfg.NodesPerRouter + slot)
}

// GroupOfNode returns the group containing a node.
func (t *Dragonfly) GroupOfNode(n NodeID) int {
	return t.GroupOfRouter(t.RouterOfNode(n))
}

// NodesOfRouter returns the nodes attached to a router, in slot order.
func (t *Dragonfly) NodesOfRouter(r RouterID) []NodeID {
	out := make([]NodeID, t.cfg.NodesPerRouter)
	for i := range out {
		out[i] = t.NodeAt(r, i)
	}
	return out
}

// --- chassis / cabinet structure -----------------------------------------

// ChassisCount returns the machine-wide chassis count (one chassis per grid
// row per group, as on Theta).
func (t *Dragonfly) ChassisCount() int { return t.cfg.Groups * t.cfg.Rows }

// ChassisOfRouter returns the chassis index of a router.
func (t *Dragonfly) ChassisOfRouter(r RouterID) int {
	c := t.RouterCoord(r)
	return c.Group*t.cfg.Rows + c.Row
}

// RoutersInChassis returns the routers of one chassis in column order.
func (t *Dragonfly) RoutersInChassis(chassis int) []RouterID {
	group := chassis / t.cfg.Rows
	row := chassis % t.cfg.Rows
	out := make([]RouterID, t.cfg.Cols)
	for col := range out {
		out[col] = t.RouterAt(group, row, col)
	}
	return out
}

// CabinetsPerGroup returns how many cabinets one group spans; a trailing
// partial cabinet counts as one.
func (t *Dragonfly) CabinetsPerGroup() int {
	return (t.cfg.Rows + t.cfg.ChassisPerCabinet - 1) / t.cfg.ChassisPerCabinet
}

// CabinetCount returns the machine-wide cabinet count.
func (t *Dragonfly) CabinetCount() int { return t.cfg.Groups * t.CabinetsPerGroup() }

// CabinetOfRouter returns the cabinet index of a router.
func (t *Dragonfly) CabinetOfRouter(r RouterID) int {
	c := t.RouterCoord(r)
	return c.Group*t.CabinetsPerGroup() + c.Row/t.cfg.ChassisPerCabinet
}

// RoutersInCabinet returns the routers of one cabinet in row-major order.
func (t *Dragonfly) RoutersInCabinet(cabinet int) []RouterID {
	perGroup := t.CabinetsPerGroup()
	group := cabinet / perGroup
	firstRow := (cabinet % perGroup) * t.cfg.ChassisPerCabinet
	lastRow := firstRow + t.cfg.ChassisPerCabinet
	if lastRow > t.cfg.Rows {
		lastRow = t.cfg.Rows
	}
	var out []RouterID
	for row := firstRow; row < lastRow; row++ {
		for col := 0; col < t.cfg.Cols; col++ {
			out = append(out, t.RouterAt(group, row, col))
		}
	}
	return out
}

// --- local connectivity ----------------------------------------------------

// SameRow reports whether two routers share a group grid row.
func (t *Dragonfly) SameRow(a, b RouterID) bool {
	ca, cb := t.RouterCoord(a), t.RouterCoord(b)
	return ca.Group == cb.Group && ca.Row == cb.Row
}

// SameCol reports whether two routers share a group grid column.
func (t *Dragonfly) SameCol(a, b RouterID) bool {
	ca, cb := t.RouterCoord(a), t.RouterCoord(b)
	return ca.Group == cb.Group && ca.Col == cb.Col
}

// LocalConnected reports whether a and b are joined by a local link
// (same group and same row or same column, a != b).
func (t *Dragonfly) LocalConnected(a, b RouterID) bool {
	if a == b {
		return false
	}
	return t.SameRow(a, b) || t.SameCol(a, b)
}

// LocalNeighbors returns the routers joined to r by local links: the rest of
// its row, then the rest of its column.
func (t *Dragonfly) LocalNeighbors(r RouterID) []RouterID {
	c := t.RouterCoord(r)
	out := make([]RouterID, 0, t.cfg.Cols-1+t.cfg.Rows-1)
	for col := 0; col < t.cfg.Cols; col++ {
		if col != c.Col {
			out = append(out, t.RouterAt(c.Group, c.Row, col))
		}
	}
	for row := 0; row < t.cfg.Rows; row++ {
		if row != c.Row {
			out = append(out, t.RouterAt(c.Group, row, c.Col))
		}
	}
	return out
}

// LocalDistance returns the intra-group hop distance between two routers of
// the same group: 0 (same router), 1 (same row or column) or 2.
// It panics if the routers are in different groups.
func (t *Dragonfly) LocalDistance(a, b RouterID) int {
	ca, cb := t.RouterCoord(a), t.RouterCoord(b)
	if ca.Group != cb.Group {
		panic(fmt.Sprintf("topology: LocalDistance across groups: %v vs %v", ca, cb))
	}
	switch {
	case a == b:
		return 0
	case ca.Row == cb.Row || ca.Col == cb.Col:
		return 1
	default:
		return 2
	}
}

// LocalNextHop returns the router after cur on the canonical minimal
// intra-group route from cur to dst: row first (move to dst's column within
// cur's row), then column. Walking LocalNextHop until dst reproduces exactly
// the dimension-ordered segment minimal routing uses, so the per-class local
// channel dependency graph stays acyclic. cur == dst returns dst. It panics
// if the routers are in different groups.
func (t *Dragonfly) LocalNextHop(cur, dst RouterID) RouterID {
	cc, cd := t.RouterCoord(cur), t.RouterCoord(dst)
	if cc.Group != cd.Group {
		panic(fmt.Sprintf("topology: LocalNextHop across groups: %v vs %v", cc, cd))
	}
	if cc.Col != cd.Col {
		return t.RouterAt(cc.Group, cc.Row, cd.Col)
	}
	return dst
}

// NumValiantRouters returns how many routers are eligible as Valiant
// intermediates; on the XC40 grid every router qualifies.
func (t *Dragonfly) NumValiantRouters() int { return t.numRouters }

// ValiantRouter returns the i-th eligible Valiant intermediate.
func (t *Dragonfly) ValiantRouter(i int) RouterID { return RouterID(i) }
