package topology

import (
	"fmt"

	"dragonfly/internal/par"
)

// Group-isomorphism templates. Every dragonfly variant this repository ships
// wires all groups identically up to the global-port assignment: the local
// next-hop function and the local neighbor lists of group g are those of
// group 0 shifted by g*RoutersPerGroup. Consumers that used to resolve dense
// per-router tables (the routing chooser's next-hop walk, the fabric's
// router-pair link index) can therefore keep one rpg x rpg template instead
// of G of them — the "shared intra-group template" half of the big-machine
// table compression (see DESIGN.md "Memory discipline & table compression").
//
// Isomorphism is verified, not assumed: NewLocalTemplate compares every
// group against the group-0 template (sharded across the par worker pool)
// and reports !ok on the first deviation, in which case consumers fall back
// to their dense per-group tables. A future interconnect with heterogeneous
// groups is therefore still correct — it just pays the dense memory bill.

// DenseTableLimit is the router count up to which consumers keep their
// historical dense O(routers^2) lookup tables (router-pair link index, shared
// route-path cache). At or below the limit the dense tables are at most a few
// MB and the flat-array fast path wins; above it they would grow quadratically
// (a 20k-router machine would need ~10 GB of path-cache headers alone), so
// consumers switch to the template/lazy representations. The paper-scale
// machines (Theta: 864 routers, DF+: 324) sit comfortably below the limit, so
// every golden run takes the dense fast path unchanged.
const DenseTableLimit = 1024

// LocalTemplate is the group-0 intra-group structure of a group-isomorphic
// machine, expressed in local router indices (0..RPG-1).
type LocalTemplate struct {
	// RPG is the per-group router count.
	RPG int
	// Next[i*RPG+j] is the local index of the router after i on the
	// canonical minimal route i -> j (LocalNextHop shifted to group 0);
	// Next[i*RPG+i] == i.
	Next []int32
	// NeighborOff/NeighborFlat encode the local neighbor lists:
	// NeighborFlat[NeighborOff[i]:NeighborOff[i+1]] are the local indices
	// joined to i by local links, in LocalNeighbors order.
	NeighborOff  []int32
	NeighborFlat []int32
}

// Neighbors returns the local neighbor indices of local router i.
func (t *LocalTemplate) Neighbors(i int) []int32 {
	return t.NeighborFlat[t.NeighborOff[i]:t.NeighborOff[i+1]]
}

// NewLocalTemplate extracts the group-0 template of ic and verifies that
// every other group is isomorphic to it (identical next-hop function and
// neighbor lists, shifted by the group base). Verification is sharded by
// group across the par worker pool; its cost is O(routers x routersPerGroup),
// linear in machine size for a fixed group shape. ok is false when any group
// deviates — consumers must then fall back to dense per-group tables.
func NewLocalTemplate(ic Interconnect) (tmpl *LocalTemplate, ok bool) {
	groups := ic.NumGroups()
	if groups == 0 || ic.NumRouters()%groups != 0 {
		return nil, false
	}
	rpg := ic.NumRouters() / groups
	t := &LocalTemplate{
		RPG:         rpg,
		Next:        make([]int32, rpg*rpg),
		NeighborOff: make([]int32, rpg+1),
	}
	for i := 0; i < rpg; i++ {
		for j := 0; j < rpg; j++ {
			t.Next[i*rpg+j] = int32(ic.LocalNextHop(RouterID(i), RouterID(j)))
			if t.Next[i*rpg+j] < 0 || t.Next[i*rpg+j] >= int32(rpg) {
				return nil, false // next hop escapes the group: no template
			}
		}
		nbrs := ic.LocalNeighbors(RouterID(i))
		t.NeighborOff[i+1] = t.NeighborOff[i] + int32(len(nbrs))
		for _, v := range nbrs {
			if int(v) >= rpg {
				return nil, false
			}
			t.NeighborFlat = append(t.NeighborFlat, int32(v))
		}
	}

	// Verify groups 1..G-1 against the template in parallel; uniform flags
	// are per-group slots, so the writes are disjoint and the outcome is
	// worker-count independent.
	uniform := make([]bool, groups)
	uniform[0] = true
	par.ForChunks(groups-1, func(lo, hi int) {
		for g := lo + 1; g < hi+1; g++ {
			uniform[g] = groupMatchesTemplate(ic, t, g)
		}
	})
	for _, u := range uniform {
		if !u {
			return nil, false
		}
	}
	return t, true
}

// groupMatchesTemplate reports whether group g's local structure equals the
// group-0 template shifted by its base router.
func groupMatchesTemplate(ic Interconnect, t *LocalTemplate, g int) bool {
	rpg := t.RPG
	base := g * rpg
	for i := 0; i < rpg; i++ {
		for j := 0; j < rpg; j++ {
			want := RouterID(base) + RouterID(t.Next[i*rpg+j])
			if ic.LocalNextHop(RouterID(base+i), RouterID(base+j)) != want {
				return false
			}
		}
		nbrs := ic.LocalNeighbors(RouterID(base + i))
		tn := t.Neighbors(i)
		if len(nbrs) != len(tn) {
			return false
		}
		for k, v := range nbrs {
			if int(v) != base+int(tn[k]) {
				return false
			}
		}
	}
	return true
}

// --- synthetic big-machine shapes ------------------------------------------

// ScaleConfig synthesizes a buildable machine of the given family with at
// least the requested router count, for the scale benchmarks and the
// scale-smoke validation (the -routers / -scale-shape flags). The group shape
// is fixed per family — XC40 keeps Theta's 6x16 grid, Dragonfly+ a 24-leaf /
// 12-spine group — and the group count grows; global ports per router scale
// so the canonical round-robin wiring still reaches every group pair
// (Gateways(a,b) non-empty, the SPI contract). One node per leaf keeps the
// node-side arrays proportional to routers, not a multiple of them.
func ScaleConfig(family string, routers int) (Machine, error) {
	if routers < 1 {
		return nil, fmt.Errorf("topology: scale shape needs routers >= 1, got %d", routers)
	}
	switch family {
	case "df", "dragonfly":
		const rows, cols = 6, 16
		rpg := rows * cols
		groups := (routers + rpg - 1) / rpg
		if groups < 2 {
			groups = 2
		}
		// Port budget: routers*G ports per group must cover the G-1 peer
		// groups. Theta's 10 ports/router reach 961 groups (92k routers);
		// beyond that the ports grow with the machine.
		ports := 10
		if need := (groups - 1 + rpg - 1) / rpg; ports < need {
			ports = need
		}
		return Config{
			Groups:               groups,
			Rows:                 rows,
			Cols:                 cols,
			NodesPerRouter:       1,
			GlobalPortsPerRouter: ports,
			ChassisPerCabinet:    3,
		}, nil
	case "dfplus", "dragonfly+":
		const leaves, spines = 24, 12
		rpg := leaves + spines
		groups := (routers + rpg - 1) / rpg
		if groups < 2 {
			groups = 2
		}
		ports := 2
		if need := (groups - 1 + spines - 1) / spines; ports < need {
			ports = need
		}
		return PlusConfig{
			Groups:              groups,
			Leaves:              leaves,
			Spines:              spines,
			NodesPerLeaf:        1,
			GlobalPortsPerSpine: ports,
			LeavesPerChassis:    4,
			ChassisPerCabinet:   3,
		}, nil
	}
	return nil, fmt.Errorf("topology: unknown scale family %q (want df or dfplus)", family)
}
