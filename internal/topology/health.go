package topology

// Health is the fabric-health view of an interconnect: which routers and
// links are currently alive. A nil Health everywhere in the stack means "all
// healthy" and costs nothing — consumers only consult the view when one is
// installed, so the healthy-fabric hot path keeps its zero-allocation,
// zero-branch-miss profile.
//
// Identification contract:
//
//   - Routers are identified by RouterID.
//   - Local links are identified by their unordered router pair {a, b};
//     failing a local link kills both directions (cables, not lanes).
//   - Global links are identified by (router, port) of either endpoint:
//     parallel global channels between the same group pair are distinct
//     links, and the port disambiguates them. Implementations must treat
//     the two endpoint namings of one cable — (a, aPort) and its
//     GlobalPeer (b, bPort) — as the same link.
//
// A failed router implies every link incident to it (terminal, local, and
// global) is unusable; implementations fold that into LocalLinkUp and
// GlobalLinkUp so consumers need only one check per link.
//
// Determinism contract: a Health view is a pure function of its fault
// specification, seed, and the machine shape — two views resolved from the
// same inputs answer identically, which is what keeps faulted runs
// reproducible (same seed, byte-identical report).
type Health interface {
	// RouterUp reports whether router r is alive.
	RouterUp(r RouterID) bool
	// LocalLinkUp reports whether the local link {a, b} and both of its
	// endpoints are alive. Order of a and b does not matter.
	LocalLinkUp(a, b RouterID) bool
	// GlobalLinkUp reports whether the global link leaving router r at
	// global port p — and both endpoint routers — are alive.
	GlobalLinkUp(r RouterID, port int) bool
}
