package topology

import (
	"fmt"
	"sort"
)

// Interconnect is the machine-neutral service-provider interface the rest of
// the stack (routing, network, placement, mapping, audit, core) consumes.
// Dragonfly (the XC40 grid of the paper) and DragonflyPlus (two-layer
// leaf/spine groups per Kang et al.) implement it.
//
// The interface is a construction-time seam, not a per-event one: consumers
// resolve what they need into dense tables when they are built (router of
// every node, canonical next hop of every intra-group pair, gateway sets)
// and never call through the interface on the simulation hot path. New
// implementations therefore only have to be correct, not fast.
//
// Structural contract every implementation must satisfy:
//
//   - Routers are numbered group-major: group g owns the contiguous range
//     [g*R, (g+1)*R) for a fixed per-group router count R.
//   - Nodes are numbered so that RouterOfNode is monotone (contiguous node
//     ranges are physically adjacent); routers may own zero nodes.
//   - LocalNextHop defines, per ordered router pair of one group, a single
//     canonical minimal route; repeatedly applying it must terminate at dst
//     and the union of those routes must be cycle-free per VC class (see
//     DESIGN.md "The interconnect SPI" for the deadlock argument).
//   - Gateways(a, b) is non-empty for every group pair a != b, and each
//     Gateway carries its precomputed far-end router in Peer.
//   - ValiantRouter enumerates the routers eligible as Valiant
//     intermediates; implementations must pick a set that keeps the VC
//     classes within routing.NumLocalVC/NumGlobalVC (e.g. leaves only on
//     DragonflyPlus).
type Interconnect interface {
	// Name identifies the topology family ("dragonfly", "dragonfly+").
	Name() string
	// Describe returns a human-readable inventory of the machine.
	Describe() string

	NumGroups() int
	NumRouters() int
	NumNodes() int
	// NodesPerRouter is the maximum node count of any router (placement
	// uses it to size per-router scratch); routers may own fewer.
	NodesPerRouter() int

	RouterOfNode(n NodeID) RouterID
	NodesOfRouter(r RouterID) []NodeID
	GroupOfRouter(r RouterID) int
	GroupOfNode(n NodeID) int

	// Chassis and cabinets are the physical units the random-chassis and
	// random-cabinet placement policies select over.
	ChassisCount() int
	RoutersInChassis(chassis int) []RouterID
	CabinetCount() int
	RoutersInCabinet(cabinet int) []RouterID

	// LocalNeighbors lists the routers joined to r by local links, in the
	// deterministic order the fabric creates the links in.
	LocalNeighbors(r RouterID) []RouterID
	LocalConnected(a, b RouterID) bool
	// LocalDistance is the intra-group hop distance; panics across groups.
	LocalDistance(a, b RouterID) int
	// LocalNextHop is the router after cur on the canonical minimal
	// intra-group route cur -> dst; panics across groups.
	LocalNextHop(cur, dst RouterID) RouterID

	// GlobalConns enumerates every wired global link exactly once.
	GlobalConns() []GlobalConn
	GlobalConnected(a, b RouterID) bool
	// Gateways lists the (router, port, peer) triples of group src whose
	// global links land in group dst; the slice is shared, not to be
	// mutated.
	Gateways(src, dst int) []Gateway

	// NumValiantRouters/ValiantRouter enumerate the eligible Valiant
	// intermediates of the adaptive routing policy.
	NumValiantRouters() int
	ValiantRouter(i int) RouterID

	// MinimalRouterHops counts routers a minimally routed packet traverses
	// between two nodes (same-router delivery counts 1).
	MinimalRouterHops(src, dst NodeID) int
}

var (
	_ Interconnect = (*Dragonfly)(nil)
	_ Interconnect = (*DragonflyPlus)(nil)
)

// Machine is a buildable machine description: a topology config that knows
// how to wire itself. Config (XC40 dragonfly) and PlusConfig (Dragonfly+)
// implement it, so core.Config can carry either without knowing which.
type Machine interface {
	Build() (Interconnect, error)
	// Label is a compact deterministic description of the machine shape.
	Label() string
}

// BuildMachine builds m, panicking on invalid configurations; the Machine
// counterpart of MustNew.
func BuildMachine(m Machine) Interconnect {
	ic, err := m.Build()
	if err != nil {
		panic(err)
	}
	return ic
}

// presets are the named machines the CLIs expose via -topo and the
// cross-topology property tests iterate over.
var presets = map[string]Machine{
	"theta":       Theta(),
	"mini":        Mini(),
	"dfplus":      Plus(),
	"dfplus-mini": PlusMini(),
}

// Preset resolves a machine name (theta|mini|dfplus|dfplus-mini).
func Preset(name string) (Machine, error) {
	m, ok := presets[name]
	if !ok {
		return nil, fmt.Errorf("topology: unknown machine %q (have %v)", name, PresetNames())
	}
	return m, nil
}

// PresetNames lists the registered machine names in sorted order.
func PresetNames() []string {
	names := make([]string, 0, len(presets))
	for name := range presets {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
