package topology

import (
	"testing"
	"testing/quick"
)

func TestThetaDimensions(t *testing.T) {
	top := MustNew(Theta())
	if got := top.NumGroups(); got != 9 {
		t.Errorf("groups = %d, want 9", got)
	}
	if got := top.RoutersPerGroup(); got != 96 {
		t.Errorf("routers/group = %d, want 96", got)
	}
	if got := top.NumRouters(); got != 864 {
		t.Errorf("routers = %d, want 864", got)
	}
	if got := top.NumNodes(); got != 3456 {
		t.Errorf("nodes = %d, want 3456", got)
	}
	if got := top.ChassisCount(); got != 54 {
		t.Errorf("chassis = %d, want 54 (9 groups x 6 rows)", got)
	}
	if got := top.CabinetCount(); got != 18 {
		t.Errorf("cabinets = %d, want 18 (2 per group)", got)
	}
}

func TestValidate(t *testing.T) {
	bad := []Config{
		{},
		{Groups: 0, Rows: 1, Cols: 1, NodesPerRouter: 1, ChassisPerCabinet: 1},
		{Groups: 2, Rows: 0, Cols: 1, NodesPerRouter: 1, ChassisPerCabinet: 1},
		{Groups: 2, Rows: 1, Cols: 0, NodesPerRouter: 1, ChassisPerCabinet: 1},
		{Groups: 2, Rows: 1, Cols: 1, NodesPerRouter: 0, ChassisPerCabinet: 1},
		{Groups: 2, Rows: 1, Cols: 1, NodesPerRouter: 1, ChassisPerCabinet: 0},
		{Groups: 2, Rows: 1, Cols: 1, NodesPerRouter: 1, ChassisPerCabinet: 1, GlobalPortsPerRouter: 0},
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("case %d: New(%+v) succeeded, want error", i, cfg)
		}
	}
	if _, err := New(Config{Groups: 1, Rows: 2, Cols: 2, NodesPerRouter: 1, ChassisPerCabinet: 1}); err != nil {
		t.Errorf("single-group machine rejected: %v", err)
	}
}

func TestCoordRoundTrip(t *testing.T) {
	top := MustNew(Mini())
	for r := RouterID(0); int(r) < top.NumRouters(); r++ {
		c := top.RouterCoord(r)
		if got := top.RouterAt(c.Group, c.Row, c.Col); got != r {
			t.Fatalf("RouterAt(RouterCoord(%d)) = %d", r, got)
		}
		if got := top.GroupOfRouter(r); got != c.Group {
			t.Fatalf("GroupOfRouter(%d) = %d, want %d", r, got, c.Group)
		}
	}
}

func TestNodeRouterRoundTrip(t *testing.T) {
	top := MustNew(Mini())
	for n := NodeID(0); int(n) < top.NumNodes(); n++ {
		r := top.RouterOfNode(n)
		s := top.NodeSlot(n)
		if got := top.NodeAt(r, s); got != n {
			t.Fatalf("NodeAt(RouterOfNode(%d), slot) = %d", n, got)
		}
	}
	r := RouterID(3)
	nodes := top.NodesOfRouter(r)
	if len(nodes) != top.Config().NodesPerRouter {
		t.Fatalf("NodesOfRouter len = %d", len(nodes))
	}
	for _, n := range nodes {
		if top.RouterOfNode(n) != r {
			t.Fatalf("node %d not attached to router %d", n, r)
		}
	}
}

func TestChassisAndCabinetMembership(t *testing.T) {
	top := MustNew(Theta())
	seen := map[RouterID]bool{}
	for ch := 0; ch < top.ChassisCount(); ch++ {
		rs := top.RoutersInChassis(ch)
		if len(rs) != 16 {
			t.Fatalf("chassis %d has %d routers, want 16", ch, len(rs))
		}
		for _, r := range rs {
			if top.ChassisOfRouter(r) != ch {
				t.Fatalf("router %d: ChassisOfRouter = %d, want %d", r, top.ChassisOfRouter(r), ch)
			}
			if seen[r] {
				t.Fatalf("router %d in two chassis", r)
			}
			seen[r] = true
		}
	}
	if len(seen) != top.NumRouters() {
		t.Fatalf("chassis cover %d routers, want %d", len(seen), top.NumRouters())
	}

	seen = map[RouterID]bool{}
	for cab := 0; cab < top.CabinetCount(); cab++ {
		rs := top.RoutersInCabinet(cab)
		if len(rs) != 48 {
			t.Fatalf("cabinet %d has %d routers, want 48 (3 chassis x 16)", cab, len(rs))
		}
		for _, r := range rs {
			if top.CabinetOfRouter(r) != cab {
				t.Fatalf("router %d: CabinetOfRouter = %d, want %d", r, top.CabinetOfRouter(r), cab)
			}
			if seen[r] {
				t.Fatalf("router %d in two cabinets", r)
			}
			seen[r] = true
		}
	}
	if len(seen) != top.NumRouters() {
		t.Fatalf("cabinets cover %d routers, want %d", len(seen), top.NumRouters())
	}
}

func TestPartialCabinet(t *testing.T) {
	cfg := Config{Groups: 2, Rows: 5, Cols: 2, NodesPerRouter: 1, GlobalPortsPerRouter: 2, ChassisPerCabinet: 3}
	top := MustNew(cfg)
	if got := top.CabinetsPerGroup(); got != 2 {
		t.Fatalf("CabinetsPerGroup = %d, want 2 (3+2 rows)", got)
	}
	// Last cabinet of group 0 holds rows 3..4 => 2 rows * 2 cols = 4 routers.
	if got := len(top.RoutersInCabinet(1)); got != 4 {
		t.Fatalf("partial cabinet has %d routers, want 4", got)
	}
}

func TestLocalNeighborsTheta(t *testing.T) {
	top := MustNew(Theta())
	r := top.RouterAt(4, 3, 7)
	nbrs := top.LocalNeighbors(r)
	if len(nbrs) != 15+5 {
		t.Fatalf("local degree = %d, want 20", len(nbrs))
	}
	for _, nb := range nbrs {
		if !top.LocalConnected(r, nb) {
			t.Fatalf("neighbor %d not LocalConnected", nb)
		}
		if top.GroupOfRouter(nb) != 4 {
			t.Fatalf("neighbor %d escaped the group", nb)
		}
	}
	if top.LocalConnected(r, r) {
		t.Fatal("router connected to itself")
	}
}

func TestLocalDistance(t *testing.T) {
	top := MustNew(Theta())
	a := top.RouterAt(0, 2, 5)
	if d := top.LocalDistance(a, a); d != 0 {
		t.Errorf("self distance = %d", d)
	}
	if d := top.LocalDistance(a, top.RouterAt(0, 2, 9)); d != 1 {
		t.Errorf("same-row distance = %d, want 1", d)
	}
	if d := top.LocalDistance(a, top.RouterAt(0, 5, 5)); d != 1 {
		t.Errorf("same-col distance = %d, want 1", d)
	}
	if d := top.LocalDistance(a, top.RouterAt(0, 4, 11)); d != 2 {
		t.Errorf("diagonal distance = %d, want 2", d)
	}
}

func TestLocalDistancePanicsAcrossGroups(t *testing.T) {
	top := MustNew(Mini())
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	top.LocalDistance(top.RouterAt(0, 0, 0), top.RouterAt(1, 0, 0))
}

func TestGlobalWiringSymmetric(t *testing.T) {
	for _, cfg := range []Config{Mini(), Theta()} {
		top := MustNew(cfg)
		g := cfg.GlobalPortsPerRouter
		for r := RouterID(0); int(r) < top.NumRouters(); r++ {
			for p := 0; p < g; p++ {
				peer, pport, ok := top.GlobalPeer(r, p)
				if !ok {
					continue
				}
				back, bport, ok2 := top.GlobalPeer(peer, pport)
				if !ok2 || back != r || bport != p {
					t.Fatalf("asymmetric wiring: %d:%d -> %d:%d -> %d:%d", r, p, peer, pport, back, bport)
				}
				if top.GroupOfRouter(peer) == top.GroupOfRouter(r) {
					t.Fatalf("global link inside one group: %d -> %d", r, peer)
				}
			}
		}
	}
}

func TestGlobalWiringFullyWiredWhenDivisible(t *testing.T) {
	// Theta: 96 routers x 10 ports = 960 ports, 8 other groups -> divisible.
	top := MustNew(Theta())
	g := top.Config().GlobalPortsPerRouter
	for r := RouterID(0); int(r) < top.NumRouters(); r++ {
		for p := 0; p < g; p++ {
			if _, _, ok := top.GlobalPeer(r, p); !ok {
				t.Fatalf("unwired port %d:%d on an evenly divisible machine", r, p)
			}
		}
	}
	// 120 parallel links per group pair.
	for a := 0; a < 9; a++ {
		for b := 0; b < 9; b++ {
			if a == b {
				continue
			}
			if got := len(top.Gateways(a, b)); got != 120 {
				t.Fatalf("gateways(%d,%d) = %d, want 120", a, b, got)
			}
		}
	}
}

func TestGatewaysLandInTargetGroup(t *testing.T) {
	top := MustNew(Mini())
	for a := 0; a < top.NumGroups(); a++ {
		for b := 0; b < top.NumGroups(); b++ {
			if a == b {
				if len(top.Gateways(a, b)) != 0 {
					t.Fatalf("self gateways for group %d", a)
				}
				continue
			}
			gws := top.Gateways(a, b)
			if len(gws) == 0 {
				t.Fatalf("groups %d and %d not connected", a, b)
			}
			for _, gw := range gws {
				if top.GroupOfRouter(gw.Router) != a {
					t.Fatalf("gateway router %d not in source group %d", gw.Router, a)
				}
				peer, _, ok := top.GlobalPeer(gw.Router, gw.Port)
				if !ok || top.GroupOfRouter(peer) != b {
					t.Fatalf("gateway %v does not land in group %d", gw, b)
				}
			}
		}
	}
}

func TestGlobalConnsCountTheta(t *testing.T) {
	top := MustNew(Theta())
	conns := top.GlobalConns()
	// 864 routers x 10 ports / 2 ends = 4320 bidirectional links.
	if len(conns) != 4320 {
		t.Fatalf("GlobalConns = %d, want 4320", len(conns))
	}
	seen := map[[2]int64]bool{}
	for _, c := range conns {
		k := [2]int64{int64(c.A)<<32 | int64(c.APort), int64(c.B)<<32 | int64(c.BPort)}
		if seen[k] {
			t.Fatal("duplicate link in GlobalConns")
		}
		seen[k] = true
	}
}

func TestMinimalRouterHops(t *testing.T) {
	top := MustNew(Theta())
	// Same router.
	n0, n1 := top.NodeAt(0, 0), top.NodeAt(0, 1)
	if h := top.MinimalRouterHops(n0, n1); h != 1 {
		t.Errorf("same-router hops = %d, want 1", h)
	}
	// Same row.
	a := top.NodeAt(top.RouterAt(0, 0, 0), 0)
	b := top.NodeAt(top.RouterAt(0, 0, 5), 0)
	if h := top.MinimalRouterHops(a, b); h != 2 {
		t.Errorf("same-row hops = %d, want 2", h)
	}
	// Diagonal in group.
	c := top.NodeAt(top.RouterAt(0, 3, 5), 0)
	if h := top.MinimalRouterHops(a, c); h != 3 {
		t.Errorf("diagonal hops = %d, want 3", h)
	}
	// Inter-group: bounded by 6 and at least 2 (src router, dst router).
	d := top.NodeAt(top.RouterAt(7, 3, 5), 0)
	h := top.MinimalRouterHops(a, d)
	if h < 2 || h > 6 {
		t.Errorf("inter-group hops = %d, want within [2,6]", h)
	}
}

// Property: minimal hops is symmetric and within the dragonfly diameter.
func TestMinimalHopsProperties(t *testing.T) {
	top := MustNew(Mini())
	n := top.NumNodes()
	f := func(x, y uint16) bool {
		a := NodeID(int(x) % n)
		b := NodeID(int(y) % n)
		h1 := top.MinimalRouterHops(a, b)
		h2 := top.MinimalRouterHops(b, a)
		return h1 == h2 && h1 >= 1 && h1 <= 6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestDescribeMentionsInventory(t *testing.T) {
	top := MustNew(Theta())
	s := top.Describe()
	for _, want := range []string{"9 groups", "864 routers", "3456 nodes", "120 per group pair"} {
		if !contains(s, want) {
			t.Errorf("Describe() missing %q in:\n%s", want, s)
		}
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
