package topology

import "testing"

func BenchmarkTopologyBuildTheta(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := New(Theta()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMinimalRouterHops(b *testing.B) {
	topo := MustNew(Theta())
	n := topo.NumNodes()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = topo.MinimalRouterHops(NodeID(i%n), NodeID((i*7919)%n))
	}
}
