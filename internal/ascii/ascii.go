// Package ascii renders the paper's two figure styles — empirical CDF
// curves (Figs. 4-6) and box plots (Figs. 3, 8-10) — as plain-text
// graphics for terminal reports.
package ascii

import (
	"fmt"
	"sort"
	"strings"

	"dragonfly/internal/stats"
)

// series glyphs, assigned to series in sorted-name order.
var glyphs = []byte("ox*+#@%&$~")

// CDFPlot renders the empirical CDFs of several named series on one
// width x height grid: x is the value axis (shared range), y is the
// cumulative fraction. Empty series are skipped.
func CDFPlot(series map[string][]float64, width, height int) string {
	if width < 16 || height < 4 {
		panic("ascii: CDFPlot needs width >= 16 and height >= 4")
	}
	names := make([]string, 0, len(series))
	lo, hi := 0.0, 0.0
	first := true
	for name, vals := range series {
		if len(vals) == 0 {
			continue
		}
		names = append(names, name)
		for _, v := range vals {
			if first {
				lo, hi, first = v, v, false
				continue
			}
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return "(no data)\n"
	}
	if hi == lo {
		hi = lo + 1
	}

	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for si, name := range names {
		g := glyphs[si%len(glyphs)]
		cdf := stats.CDF(series[name])
		for col := 0; col < width; col++ {
			x := lo + (hi-lo)*float64(col)/float64(width-1)
			frac := stats.CDFAt(cdf, x)
			row := height - 1 - int(frac*float64(height-1)+0.5)
			if grid[row][col] == ' ' {
				grid[row][col] = g
			}
		}
	}

	var b strings.Builder
	for r, line := range grid {
		frac := 100 * float64(height-1-r) / float64(height-1)
		fmt.Fprintf(&b, "%3.0f%% |%s|\n", frac, string(line))
	}
	fmt.Fprintf(&b, "     %s\n", strings.Repeat("-", width+2))
	fmt.Fprintf(&b, "     %-*s%*s\n", width/2+1, fmt.Sprintf("%.4g", lo), width/2+1, fmt.Sprintf("%.4g", hi))
	for si, name := range names {
		fmt.Fprintf(&b, "     %c = %s\n", glyphs[si%len(glyphs)], name)
	}
	return b.String()
}

// BoxPlot renders one box plot per named series on a shared value axis:
//
//	name  |----[==|==]------|
//
// with '[' ']' at the quartiles, '|' at median and whiskers.
func BoxPlot(series []NamedValues, width int) string {
	if width < 20 {
		panic("ascii: BoxPlot needs width >= 20")
	}
	lo, hi := 0.0, 0.0
	first := true
	boxes := make([]stats.Box, len(series))
	nameW := 4
	for i, s := range series {
		if len(s.Values) == 0 {
			continue
		}
		boxes[i] = stats.BoxOf(s.Values)
		if first {
			lo, hi, first = boxes[i].Min, boxes[i].Max, false
		}
		if boxes[i].Min < lo {
			lo = boxes[i].Min
		}
		if boxes[i].Max > hi {
			hi = boxes[i].Max
		}
		if len(s.Name) > nameW {
			nameW = len(s.Name)
		}
	}
	if first {
		return "(no data)\n"
	}
	if hi == lo {
		hi = lo + 1
	}
	col := func(v float64) int {
		c := int(float64(width-1) * (v - lo) / (hi - lo))
		if c < 0 {
			c = 0
		}
		if c >= width {
			c = width - 1
		}
		return c
	}
	var b strings.Builder
	for i, s := range series {
		if len(s.Values) == 0 {
			continue
		}
		line := []byte(strings.Repeat(" ", width))
		bx := boxes[i]
		for c := col(bx.Min); c <= col(bx.Max); c++ {
			line[c] = '-'
		}
		for c := col(bx.Q1); c <= col(bx.Q3); c++ {
			line[c] = '='
		}
		line[col(bx.Min)] = '|'
		line[col(bx.Max)] = '|'
		line[col(bx.Q1)] = '['
		line[col(bx.Q3)] = ']'
		line[col(bx.Median)] = '|'
		fmt.Fprintf(&b, "%-*s |%s|\n", nameW, s.Name, string(line))
	}
	fmt.Fprintf(&b, "%-*s  %s\n", nameW, "", strings.Repeat("-", width))
	fmt.Fprintf(&b, "%-*s  %-*s%*s\n", nameW, "",
		width/2, fmt.Sprintf("%.4g", lo), width/2, fmt.Sprintf("%.4g", hi))
	return b.String()
}

// NamedValues is one labeled sample set.
type NamedValues struct {
	Name   string
	Values []float64
}
