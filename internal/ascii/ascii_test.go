package ascii

import (
	"strings"
	"testing"
)

func TestCDFPlotBasics(t *testing.T) {
	out := CDFPlot(map[string][]float64{
		"alpha": {1, 2, 3, 4, 5},
		"beta":  {3, 3, 3, 3, 3},
	}, 40, 10)
	if !strings.Contains(out, "o = alpha") || !strings.Contains(out, "x = beta") {
		t.Fatalf("legend missing:\n%s", out)
	}
	if !strings.Contains(out, "100%") || !strings.Contains(out, "0%") {
		t.Fatalf("axis labels missing:\n%s", out)
	}
	// Axis range 1..5 appears.
	if !strings.Contains(out, "1") || !strings.Contains(out, "5") {
		t.Fatalf("value range missing:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 10+2+2 {
		t.Fatalf("unexpected plot height %d:\n%s", len(lines), out)
	}
}

func TestCDFPlotEmptyAndDegenerate(t *testing.T) {
	if out := CDFPlot(map[string][]float64{}, 20, 5); out != "(no data)\n" {
		t.Fatalf("empty = %q", out)
	}
	if out := CDFPlot(map[string][]float64{"a": {}}, 20, 5); out != "(no data)\n" {
		t.Fatalf("empty series = %q", out)
	}
	out := CDFPlot(map[string][]float64{"a": {7, 7, 7}}, 20, 5)
	if !strings.Contains(out, "o = a") {
		t.Fatalf("degenerate series unplottable:\n%s", out)
	}
}

func TestCDFPlotPanicsOnTinyCanvas(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	CDFPlot(map[string][]float64{"a": {1}}, 5, 2)
}

func TestBoxPlotMarkers(t *testing.T) {
	out := BoxPlot([]NamedValues{
		{Name: "cont-min", Values: []float64{1, 2, 3, 4, 9}},
		{Name: "rand-adp", Values: []float64{2, 2.5, 3, 3.5, 4}},
	}, 50)
	if !strings.Contains(out, "cont-min") || !strings.Contains(out, "rand-adp") {
		t.Fatalf("labels missing:\n%s", out)
	}
	for _, marker := range []string{"[", "]", "=", "-"} {
		if !strings.Contains(out, marker) {
			t.Fatalf("marker %q missing:\n%s", marker, out)
		}
	}
}

func TestBoxPlotEmpty(t *testing.T) {
	if out := BoxPlot(nil, 30); out != "(no data)\n" {
		t.Fatalf("empty = %q", out)
	}
	out := BoxPlot([]NamedValues{{Name: "a", Values: nil}, {Name: "b", Values: []float64{5}}}, 30)
	if strings.Contains(out, "a |") {
		t.Fatalf("empty series plotted:\n%s", out)
	}
	if !strings.Contains(out, "b") {
		t.Fatalf("singleton series missing:\n%s", out)
	}
}

func TestBoxPlotSharedAxis(t *testing.T) {
	// A series spanning [0,10] and one at [9,10]: the second's box must
	// sit at the right edge.
	out := BoxPlot([]NamedValues{
		{Name: "wide", Values: []float64{0, 5, 10}},
		{Name: "high", Values: []float64{9, 9.5, 10}},
	}, 40)
	lines := strings.Split(out, "\n")
	high := ""
	for _, l := range lines {
		if strings.HasPrefix(l, "high") {
			high = l
		}
	}
	if high == "" {
		t.Fatalf("high row missing:\n%s", out)
	}
	leftHalf := high[:len(high)/2]
	if strings.ContainsAny(leftHalf, "[]=") {
		t.Fatalf("high box leaked into left half of shared axis:\n%s", out)
	}
}
