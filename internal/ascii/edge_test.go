package ascii

import (
	"strings"
	"testing"
)

func TestBoxPlotPanicsOnNarrowWidth(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	BoxPlot([]NamedValues{{Name: "a", Values: []float64{1}}}, 19)
}

// Every series holding one identical value: the shared axis degenerates to a
// point and the plot must still render every label without panicking.
func TestBoxPlotAllDegenerateSeries(t *testing.T) {
	out := BoxPlot([]NamedValues{
		{Name: "one", Values: []float64{5}},
		{Name: "two", Values: []float64{5, 5, 5}},
	}, 30)
	if !strings.Contains(out, "one") || !strings.Contains(out, "two") {
		t.Fatalf("degenerate series dropped:\n%s", out)
	}
}

// Values spanning zero: the axis labels must carry the negative minimum.
func TestCDFPlotNegativeRange(t *testing.T) {
	out := CDFPlot(map[string][]float64{"a": {-10, -5, 0, 5, 10}}, 40, 8)
	if !strings.Contains(out, "-10") {
		t.Fatalf("negative axis minimum missing:\n%s", out)
	}
	if !strings.Contains(out, "o = a") {
		t.Fatalf("legend missing:\n%s", out)
	}
}

// A mix of empty and populated series: empties are skipped, the rest plot.
func TestCDFPlotSkipsEmptySeriesAmongFull(t *testing.T) {
	out := CDFPlot(map[string][]float64{
		"empty": {},
		"full":  {1, 2, 3},
	}, 30, 6)
	if strings.Contains(out, "empty") {
		t.Fatalf("empty series in legend:\n%s", out)
	}
	if !strings.Contains(out, "full") {
		t.Fatalf("populated series missing:\n%s", out)
	}
}
