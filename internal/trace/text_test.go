package trace

import (
	"bytes"
	"strings"
	"testing"
)

func TestTextRoundTripAllApps(t *testing.T) {
	cr, _ := CR(CRConfig{Ranks: 16, MessageBytes: 1000})
	fb, _ := FB(FBConfig{X: 2, Y: 2, Z: 2, Iterations: 2, MinBytes: 10, MaxBytes: 100, FarPartners: 1, FarFraction: 0.5, Seed: 1})
	amg, _ := AMG(AMGConfig{X: 2, Y: 2, Z: 2, Cycles: 1, Levels: 2, PeakBytes: 600})
	for _, orig := range []*Trace{cr, fb, amg} {
		var buf bytes.Buffer
		if err := WriteText(&buf, orig); err != nil {
			t.Fatal(err)
		}
		got, err := ParseText(&buf)
		if err != nil {
			t.Fatalf("%s: %v\n", orig.App, err)
		}
		if got.App != orig.App || got.NumRanks() != orig.NumRanks() {
			t.Fatalf("%s: header mismatch", orig.App)
		}
		if got.TotalSendBytes() != orig.TotalSendBytes() {
			t.Fatalf("%s: bytes changed in round trip", orig.App)
		}
		for r := range orig.Ranks {
			if len(got.Ranks[r]) != len(orig.Ranks[r]) {
				t.Fatalf("%s rank %d: op count %d != %d", orig.App, r, len(got.Ranks[r]), len(orig.Ranks[r]))
			}
			for i := range orig.Ranks[r] {
				if got.Ranks[r][i] != orig.Ranks[r][i] {
					t.Fatalf("%s rank %d op %d differs", orig.App, r, i)
				}
			}
		}
	}
}

func TestParseTextHandwritten(t *testing.T) {
	src := `
# a 2-rank exchange
trace demo 2
rank 0
isend 1 100 0
irecv 1 100 0
waitall
rank 1
isend 0 100 0
irecv 0 100 0
waitall
`
	tr, err := ParseText(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if tr.App != "demo" || tr.NumRanks() != 2 || tr.TotalSendBytes() != 200 {
		t.Fatalf("parsed %+v", Summarize(tr))
	}
}

func TestParseTextRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"no header":       "rank 0\nwaitall\n",
		"dup header":      "trace a 1\ntrace b 1\n",
		"bad rank count":  "trace a zero\n",
		"rank order":      "trace a 2\nrank 1\nwaitall\nrank 0\nwaitall\n",
		"rank overflow":   "trace a 1\nrank 0\nwaitall\nrank 1\nwaitall\n",
		"op outside rank": "trace a 1\nisend 0 1 0\n",
		"short isend":     "trace a 2\nrank 0\nisend 1 5\n",
		"bad operand":     "trace a 2\nrank 0\nisend one 5 0\n",
		"unknown op":      "trace a 1\nrank 0\nbarrier\n",
		"missing ranks":   "trace a 3\nrank 0\nwaitall\n",
		"unmatched send":  "trace a 2\nrank 0\nisend 1 5 0\nwaitall\nrank 1\nwaitall\n",
		"empty":           "",
	}
	for name, src := range cases {
		if _, err := ParseText(strings.NewReader(src)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestWriteTextSanitizesAppName(t *testing.T) {
	tr := &Trace{App: "my app", Ranks: [][]Op{{{Kind: OpWaitAll}}}}
	var buf bytes.Buffer
	if err := WriteText(&buf, tr); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "trace my_app 1") {
		t.Fatalf("header not sanitized: %s", buf.String())
	}
}
