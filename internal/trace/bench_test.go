package trace

import "testing"

func BenchmarkGenerateCRPaperSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := CR(DefaultCR()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGenerateAMGPaperSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := AMG(DefaultAMG()); err != nil {
			b.Fatal(err)
		}
	}
}
