package trace

import (
	"reflect"
	"testing"

	"dragonfly/internal/des"
)

// handTrace builds a two-rank, two-phase flat trace by hand: an exchange
// each way, a fence, a second exchange, a fence.
func handTrace() *Trace {
	b := newBuilder(2)
	b.exchange(0, 1, 100, 0)
	b.exchange(1, 0, 200, 0)
	b.fence()
	b.exchange(0, 1, 300, 1)
	b.fence()
	return b.build("HAND")
}

func TestLowerGraph(t *testing.T) {
	tr := handTrace()
	g := tr.Graph()
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.App != "HAND" || g.NumRanks() != 2 {
		t.Fatalf("app %q ranks %d", g.App, g.NumRanks())
	}
	// Rank 0: send(100), recv(200), join, send(300), join.
	want0 := []GraphNode{
		{Kind: NodeSend, Peer: 1, Bytes: 100, Tag: 0},
		{Kind: NodeRecv, Peer: 1, Bytes: 200, Tag: 0},
		{Kind: NodeCompute, Deps: []int32{0, 1}},
		{Kind: NodeSend, Peer: 1, Bytes: 300, Tag: 1, Deps: []int32{2}},
		{Kind: NodeCompute, Deps: []int32{3}},
	}
	if !reflect.DeepEqual(g.Ranks[0], want0) {
		t.Fatalf("rank 0 lowered to %+v, want %+v", g.Ranks[0], want0)
	}
	// Rank 1: recv(100), send(200), join, recv(300), join.
	want1 := []GraphNode{
		{Kind: NodeRecv, Peer: 0, Bytes: 100, Tag: 0},
		{Kind: NodeSend, Peer: 0, Bytes: 200, Tag: 0},
		{Kind: NodeCompute, Deps: []int32{0, 1}},
		{Kind: NodeRecv, Peer: 0, Bytes: 300, Tag: 1, Deps: []int32{2}},
		{Kind: NodeCompute, Deps: []int32{3}},
	}
	if !reflect.DeepEqual(g.Ranks[1], want1) {
		t.Fatalf("rank 1 lowered to %+v, want %+v", g.Ranks[1], want1)
	}
	if g2 := tr.Graph(); g2 != g {
		t.Fatal("lowering not memoized per trace")
	}
}

// TestLowerGraphEmptyWindow checks consecutive fences chain through the
// previous join instead of dangling.
func TestLowerGraphEmptyWindow(t *testing.T) {
	b := newBuilder(2)
	b.exchange(0, 1, 10, 0)
	b.fence()
	b.fence() // empty window
	tr := b.build("X")
	g := tr.Graph()
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	r0 := g.Ranks[0]
	if len(r0) != 3 || !reflect.DeepEqual(r0[2].Deps, []int32{1}) {
		t.Fatalf("empty-window fence lowered to %+v", r0)
	}
}

func TestLowerMiniappsValid(t *testing.T) {
	cr, _ := CR(CRConfig{Ranks: 16, MessageBytes: KB})
	fb, _ := FB(FBConfig{X: 2, Y: 2, Z: 2, Iterations: 2, MinBytes: KB, MaxBytes: 4 * KB, FarPartners: 1, FarFraction: 0.5, Seed: 3})
	amg, _ := AMG(AMGConfig{X: 2, Y: 2, Z: 2, Cycles: 2, Levels: 2, PeakBytes: 4 * KB})
	for _, tr := range []*Trace{cr, fb, amg} {
		g := tr.Graph()
		if err := g.Validate(); err != nil {
			t.Fatalf("%s: %v", tr.App, err)
		}
		// Lowering preserves traffic: same send bytes, same matrix.
		if g.TotalSendBytes() != tr.TotalSendBytes() {
			t.Fatalf("%s: graph %d send bytes, trace %d", tr.App, g.TotalSendBytes(), tr.TotalSendBytes())
		}
		if !reflect.DeepEqual(g.Matrix(4), tr.Matrix(4)) {
			t.Fatalf("%s: lowered matrix differs", tr.App)
		}
	}
}

func TestGraphValidateRejects(t *testing.T) {
	cases := map[string]*Graph{
		"dep-not-earlier": {Ranks: [][]GraphNode{{
			{Kind: NodeCompute, Deps: []int32{0}},
		}}},
		"dep-not-ascending": {Ranks: [][]GraphNode{{
			{Kind: NodeCompute},
			{Kind: NodeCompute},
			{Kind: NodeCompute, Deps: []int32{1, 0}},
		}}},
		"peer-out-of-range": {Ranks: [][]GraphNode{{
			{Kind: NodeSend, Peer: 5, Bytes: 1},
		}}},
		"self-send": {Ranks: [][]GraphNode{{
			{Kind: NodeSend, Peer: 0, Bytes: 1},
		}}},
		"zero-bytes": {Ranks: [][]GraphNode{
			{{Kind: NodeSend, Peer: 1, Bytes: 0}},
			{{Kind: NodeRecv, Peer: 0, Bytes: 0}},
		}},
		"negative-delay": {Ranks: [][]GraphNode{{
			{Kind: NodeCompute, Delay: -1},
		}}},
		"unmatched-send": {Ranks: [][]GraphNode{
			{{Kind: NodeSend, Peer: 1, Bytes: 8}},
			{},
		}},
		"size-mismatch": {Ranks: [][]GraphNode{
			{{Kind: NodeSend, Peer: 1, Bytes: 8}},
			{{Kind: NodeRecv, Peer: 0, Bytes: 9}},
		}},
	}
	for name, g := range cases {
		if err := g.Validate(); err == nil {
			t.Errorf("%s: Validate accepted an invalid graph", name)
		}
	}
}

func TestGraphStats(t *testing.T) {
	g := handTrace().Graph()
	if got := g.NumNodes(); got != 10 {
		t.Fatalf("NumNodes = %d, want 10", got)
	}
	// Rank 0: join{0,1} + send{2} + join{3} = 4; rank 1 likewise.
	if got := g.NumEdges(); got != 8 {
		t.Fatalf("NumEdges = %d, want 8", got)
	}
	if got := g.TotalSendBytes(); got != 600 {
		t.Fatalf("TotalSendBytes = %d, want 600", got)
	}
	// Every node's out-degree is 1 here (each op feeds one join, each join
	// one successor op).
	if got := g.MaxFanOut(); got != 1 {
		t.Fatalf("MaxFanOut = %d, want 1", got)
	}
	m := g.Matrix(2)
	if m[0][1] != 400 || m[1][0] != 200 {
		t.Fatalf("Matrix = %v", m)
	}
}

func TestGraphDigest(t *testing.T) {
	g := handTrace().Graph()
	d := g.Digest()
	if d != handTrace().Graph().Digest() {
		t.Fatal("digest not deterministic")
	}
	perturb := []func(*Graph){
		func(g *Graph) { g.App = "OTHER" },
		func(g *Graph) { g.Ranks[0][0].Bytes++ },
		func(g *Graph) { g.Ranks[0][0].Tag++ },
		func(g *Graph) { g.Ranks[0][2].Delay = des.Microsecond },
		func(g *Graph) { g.Ranks[0][3].Deps = []int32{1} },
		func(g *Graph) { g.Ranks[1][0].Kind = NodeSend },
	}
	for i, f := range perturb {
		h := handTrace().lowerGraph()
		f(h)
		if h.Digest() == d {
			t.Errorf("perturbation %d did not move the digest", i)
		}
	}
}

func TestCriticalPathBytes(t *testing.T) {
	// Serial relay: 0 sends 100 to 1, which forwards 200 to 0. The matched
	// cross-rank edge makes the path 100+200.
	relay := &Graph{Ranks: [][]GraphNode{
		{
			{Kind: NodeSend, Peer: 1, Bytes: 100},
			{Kind: NodeRecv, Peer: 1, Bytes: 200, Tag: 1},
		},
		{
			{Kind: NodeRecv, Peer: 0, Bytes: 100},
			{Kind: NodeSend, Peer: 0, Bytes: 200, Tag: 1, Deps: []int32{0}},
		},
	}}
	if err := relay.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := relay.CriticalPathBytes(); got != 300 {
		t.Fatalf("relay critical path = %d, want 300", got)
	}

	// Ring all-reduce: 2(N-1) pipelined chunk hops.
	ring, err := RingAllReduce(RingAllReduceConfig{Ranks: 4, Bytes: 4096, Rounds: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := ring.CriticalPathBytes(), int64(2*3*1024); got != want {
		t.Fatalf("ring critical path = %d, want %d", got, want)
	}

	// Binomial tree: 2*log2(N) full-vector hops.
	tree, err := TreeAllReduce(TreeAllReduceConfig{Ranks: 4, Bytes: 1000, Rounds: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := tree.CriticalPathBytes(), int64(4*1000); got != want {
		t.Fatalf("tree critical path = %d, want %d", got, want)
	}

	// The ring moves N x its critical path in total: perfect bandwidth
	// spreading (every rank's chain runs concurrently).
	if total := ring.TotalSendBytes(); ring.CriticalPathBytes()*4 != total {
		t.Fatalf("ring total %d is not 4x its critical path %d", total, ring.CriticalPathBytes())
	}
}

func TestGenerators(t *testing.T) {
	cases := []struct {
		name  string
		build func() (*Graph, error)
		ranks int
	}{
		{"ring", func() (*Graph, error) { return RingAllReduce(RingAllReduceConfig{Ranks: 5, Bytes: 10 * KB, Rounds: 2}) }, 5},
		{"tree-pow2", func() (*Graph, error) { return TreeAllReduce(TreeAllReduceConfig{Ranks: 8, Bytes: KB, Rounds: 2}) }, 8},
		{"tree-ragged", func() (*Graph, error) { return TreeAllReduce(TreeAllReduceConfig{Ranks: 7, Bytes: KB, Rounds: 1}) }, 7},
		{"moe", func() (*Graph, error) { return MoEAllToAll(MoEAllToAllConfig{Ranks: 6, Bytes: KB, Rounds: 2, Window: 2}) }, 6},
		{"moe-unwindowed", func() (*Graph, error) { return MoEAllToAll(MoEAllToAllConfig{Ranks: 4, Bytes: KB, Rounds: 1}) }, 4},
		{"halo2d", func() (*Graph, error) { return Halo(HaloConfig{X: 4, Y: 3, Bytes: KB, Rounds: 2}) }, 12},
		{"halo3d", func() (*Graph, error) {
			return Halo(HaloConfig{X: 3, Y: 2, Z: 2, Bytes: KB, Rounds: 2, Delay: des.Microsecond})
		}, 12},
		{"ckpt", func() (*Graph, error) {
			return Checkpoint(CheckpointConfig{Clients: 5, Servers: 2, Bytes: 8 * KB, Rounds: 3, Delay: des.Microsecond})
		}, 7},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			g, err := tc.build()
			if err != nil {
				t.Fatal(err)
			}
			if g.NumRanks() != tc.ranks {
				t.Fatalf("ranks = %d, want %d", g.NumRanks(), tc.ranks)
			}
			if err := g.Validate(); err != nil {
				t.Fatal(err)
			}
			if g.NumNodes() == 0 || g.TotalSendBytes() == 0 {
				t.Fatalf("degenerate graph: %d nodes, %d bytes", g.NumNodes(), g.TotalSendBytes())
			}
			if cp := g.CriticalPathBytes(); cp <= 0 || cp > g.TotalSendBytes() {
				t.Fatalf("critical path %d outside (0, %d]", cp, g.TotalSendBytes())
			}
		})
	}
}

func TestGraphGeneratorsRejectBadConfigs(t *testing.T) {
	if _, err := RingAllReduce(RingAllReduceConfig{Ranks: 1, Bytes: 1, Rounds: 1}); err == nil {
		t.Error("ring accepted 1 rank")
	}
	if _, err := TreeAllReduce(TreeAllReduceConfig{Ranks: 4, Bytes: 0, Rounds: 1}); err == nil {
		t.Error("tree accepted 0 bytes")
	}
	if _, err := MoEAllToAll(MoEAllToAllConfig{Ranks: 4, Bytes: 1, Rounds: 0}); err == nil {
		t.Error("moe accepted 0 rounds")
	}
	if _, err := Halo(HaloConfig{X: 1, Y: 1, Z: 1, Bytes: 1, Rounds: 1}); err == nil {
		t.Error("halo accepted a 1x1x1 grid")
	}
	if _, err := Checkpoint(CheckpointConfig{Clients: 0, Servers: 1, Bytes: 1, Rounds: 1}); err == nil {
		t.Error("checkpoint accepted 0 clients")
	}
}

func TestDefaultGraphRegistry(t *testing.T) {
	apps := Apps()
	if len(apps) != len(flatAppNames)+len(graphAppNames) {
		t.Fatalf("Apps() = %v", apps)
	}
	for _, name := range GraphApps() {
		if !IsGraphApp(name) {
			t.Errorf("IsGraphApp(%q) = false", name)
		}
		g, err := DefaultGraph(name)
		if err != nil {
			t.Fatalf("DefaultGraph(%q): %v", name, err)
		}
		if g.App != name {
			t.Errorf("DefaultGraph(%q).App = %q", name, g.App)
		}
	}
	for _, name := range []string{"CR", "FB", "AMG"} {
		if IsGraphApp(name) {
			t.Errorf("IsGraphApp(%q) = true", name)
		}
	}
	if _, err := DefaultGraph("NOPE"); err == nil {
		t.Error("DefaultGraph accepted an unknown name")
	}
}
