// Dependency-graph workload generators — AI collective and storage traffic
// built directly on the graph IR, expressing pipelined structure (a ring
// all-reduce step depending only on the previous step's receive, a windowed
// all-to-all) that flat fence-punctuated op lists cannot. Each generator is
// parameterized by ranks, payload, and rounds, validates its output, and
// registers under a name in Apps() so every CLI sees one application set.
package trace

import (
	"fmt"
	"strings"

	"dragonfly/internal/des"
)

// graphApps maps generator names to default-scale constructors; the slice
// fixes display order. Names are uppercase like the miniapps (CR/FB/AMG).
var graphAppNames = []string{"RING", "TREE", "MOE", "HALO2D", "HALO3D", "CKPT"}

// flatAppNames lists the flat miniapp trace generators of the paper.
var flatAppNames = []string{"CR", "FB", "AMG"}

// Apps returns every built-in application name — the paper's flat miniapp
// traces first, then the graph generators. CLI -app grammars and their
// unknown-app errors draw on this single registry.
func Apps() []string {
	out := make([]string, 0, len(flatAppNames)+len(graphAppNames))
	out = append(out, flatAppNames...)
	out = append(out, graphAppNames...)
	return out
}

// GraphApps returns the graph-generator application names.
func GraphApps() []string {
	out := make([]string, len(graphAppNames))
	copy(out, graphAppNames)
	return out
}

// IsGraphApp reports whether name names a graph generator (as opposed to a
// flat miniapp trace).
func IsGraphApp(name string) bool {
	for _, n := range graphAppNames {
		if n == name {
			return true
		}
	}
	return false
}

// ParseApp canonicalizes an application name against the registry,
// case-insensitively: "ring" and "RING" both resolve to "RING". The error
// lists the full application set.
func ParseApp(s string) (string, error) {
	u := strings.ToUpper(strings.TrimSpace(s))
	for _, n := range Apps() {
		if n == u {
			return n, nil
		}
	}
	return "", fmt.Errorf("trace: unknown application %q (want %s)",
		strings.TrimSpace(s), strings.Join(Apps(), ", "))
}

// depOn returns a single-dependency list, or nil for a negative id.
func depOn(id int32) []int32 {
	if id < 0 {
		return nil
	}
	return []int32{id}
}

// RingAllReduceConfig parameterizes the ring all-reduce generator.
type RingAllReduceConfig struct {
	Ranks  int
	Bytes  int64 // reduced vector size per rank; chunks are Bytes/Ranks
	Rounds int   // back-to-back all-reduces (training steps)
}

// DefaultRing is a data-parallel training flavor: a large
// gradient vector reduced across a moderate rank count.
func DefaultRing() RingAllReduceConfig {
	return RingAllReduceConfig{Ranks: 256, Bytes: 16 * 1024 * KB, Rounds: 2}
}

// RingAllReduce generates the bandwidth-optimal ring all-reduce: each rank
// passes vector chunks around the ring for 2(N-1) steps — N-1 reduce-
// scatter steps then N-1 allgather steps. The graph is pipelined: step s's
// send depends on step s-1's receive (the chunk being forwarded), never on
// a global fence, so successive steps overlap across the ring.
func RingAllReduce(cfg RingAllReduceConfig) (*Graph, error) {
	if cfg.Ranks < 2 || cfg.Bytes < 1 || cfg.Rounds < 1 {
		return nil, fmt.Errorf("trace: bad RING config %+v", cfg)
	}
	n := cfg.Ranks
	steps := 2 * (n - 1)
	chunk := cfg.Bytes / int64(n)
	if chunk < 1 {
		chunk = 1
	}
	g := &Graph{App: "RING", Ranks: make([][]GraphNode, n)}
	for r := 0; r < n; r++ {
		right := int32((r + 1) % n)
		left := int32((r - 1 + n) % n)
		nodes := make([]GraphNode, 0, 2*steps*cfg.Rounds)
		for round := 0; round < cfg.Rounds; round++ {
			base := int32(round * 2 * steps)
			for s := 0; s < steps; s++ {
				tag := int32(round*steps + s)
				send := GraphNode{Kind: NodeSend, Peer: right, Bytes: chunk, Tag: tag}
				recv := GraphNode{Kind: NodeRecv, Peer: left, Bytes: chunk, Tag: tag}
				switch {
				case s > 0:
					// Forward what the previous step received; the previous
					// send must also have left the NIC (buffer reuse).
					send.Deps = []int32{base + int32(2*s) - 2, base + int32(2*s) - 1}
					recv.Deps = depOn(base + int32(2*s) - 1)
				case round > 0:
					// A new all-reduce starts when the previous one ended.
					send.Deps = depOn(base - 1)
					recv.Deps = depOn(base - 1)
				}
				nodes = append(nodes, send, recv)
			}
		}
		g.Ranks[r] = nodes
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}

// TreeAllReduceConfig parameterizes the binomial-tree all-reduce generator.
type TreeAllReduceConfig struct {
	Ranks  int
	Bytes  int64 // full vector carried on every hop
	Rounds int
}

// DefaultTree is a latency-bound flavor: small payloads
// where the 2·log2(N) hop count beats the ring's 2(N-1).
func DefaultTree() TreeAllReduceConfig {
	return TreeAllReduceConfig{Ranks: 256, Bytes: 64 * KB, Rounds: 4}
}

// TreeAllReduce generates a binomial-tree all-reduce: a reduce to rank 0
// ascending the bit lattice, then the mirrored broadcast back down. Each
// rank's ops form a serial dependency chain — the tree's critical path is
// the full vector times 2·ceil(log2 N) hops.
func TreeAllReduce(cfg TreeAllReduceConfig) (*Graph, error) {
	if cfg.Ranks < 2 || cfg.Bytes < 1 || cfg.Rounds < 1 {
		return nil, fmt.Errorf("trace: bad TREE config %+v", cfg)
	}
	n := cfg.Ranks
	bits := 0
	for 1<<bits < n {
		bits++
	}
	g := &Graph{App: "TREE", Ranks: make([][]GraphNode, n)}
	for r := 0; r < n; r++ {
		var nodes []GraphNode
		prev := int32(-1)
		emit := func(kind NodeKind, peer int, tag int32) {
			nodes = append(nodes, GraphNode{
				Kind: kind, Peer: int32(peer), Bytes: cfg.Bytes, Tag: tag, Deps: depOn(prev),
			})
			prev = int32(len(nodes)) - 1
		}
		for round := 0; round < cfg.Rounds; round++ {
			tagBase := int32(round * 2 * bits)
			// Reduce: receive from each child (set bits above my lowest),
			// then send up at my lowest set bit. Rank 0 only receives.
			type hop struct {
				up   bool // true: send toward root
				peer int
				bit  int
			}
			var hops []hop
			for mask := 1; mask < n; mask <<= 1 {
				bit := 0
				for 1<<bit != mask {
					bit++
				}
				if r&mask != 0 {
					hops = append(hops, hop{up: true, peer: r - mask, bit: bit})
					break
				}
				if r+mask < n {
					hops = append(hops, hop{up: false, peer: r + mask, bit: bit})
				}
			}
			for _, h := range hops {
				kind := NodeRecv
				if h.up {
					kind = NodeSend
				}
				emit(kind, h.peer, tagBase+int32(h.bit))
			}
			// Broadcast: the exact mirror, reversed — receive the result
			// from the parent, then fan it back out to the children.
			for i := len(hops) - 1; i >= 0; i-- {
				h := hops[i]
				kind := NodeSend
				if h.up {
					kind = NodeRecv
				}
				emit(kind, h.peer, tagBase+int32(bits+h.bit))
			}
		}
		g.Ranks[r] = nodes
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}

// MoEAllToAllConfig parameterizes the MoE-style all-to-all generator.
type MoEAllToAllConfig struct {
	Ranks  int
	Bytes  int64 // expert-routed payload per (rank, peer) pair per phase
	Rounds int   // MoE layers; each layer is a dispatch + combine pair
	// Window caps in-flight sends per rank per phase (0 = unlimited): send
	// k may only start once send k-Window has left the NIC.
	Window int
}

// DefaultMoE is an expert-parallel inference flavor.
func DefaultMoE() MoEAllToAllConfig {
	return MoEAllToAllConfig{Ranks: 64, Bytes: 256 * KB, Rounds: 2, Window: 8}
}

// MoEAllToAll generates the expert-parallel traffic of a mixture-of-experts
// layer: per round, a dispatch all-to-all (tokens to experts) and a combine
// all-to-all (results back), separated by a zero-delay join. Every rank
// sends to every other in rank-shifted order (r+1, r+2, …) so no peer is a
// simultaneous hotspot; Window throttles per-rank injection pressure.
func MoEAllToAll(cfg MoEAllToAllConfig) (*Graph, error) {
	if cfg.Ranks < 2 || cfg.Bytes < 1 || cfg.Rounds < 1 || cfg.Window < 0 {
		return nil, fmt.Errorf("trace: bad MOE config %+v", cfg)
	}
	n := cfg.Ranks
	g := &Graph{App: "MOE", Ranks: make([][]GraphNode, n)}
	for r := 0; r < n; r++ {
		var nodes []GraphNode
		prevJoin := int32(-1)
		for phase := 0; phase < 2*cfg.Rounds; phase++ {
			tag := int32(phase)
			phaseStart := int32(len(nodes))
			for k := 1; k < n; k++ {
				peer := int32((r + k) % n)
				nodes = append(nodes, GraphNode{
					Kind: NodeRecv, Peer: peer, Bytes: cfg.Bytes, Tag: tag, Deps: depOn(prevJoin),
				})
			}
			sendBase := int32(len(nodes))
			for k := 1; k < n; k++ {
				peer := int32((r + k) % n)
				deps := depOn(prevJoin)
				if cfg.Window > 0 && k > cfg.Window {
					window := sendBase + int32(k-1-cfg.Window)
					if prevJoin >= 0 {
						deps = []int32{prevJoin, window}
					} else {
						deps = []int32{window}
					}
				}
				nodes = append(nodes, GraphNode{
					Kind: NodeSend, Peer: peer, Bytes: cfg.Bytes, Tag: tag, Deps: deps,
				})
			}
			joinDeps := make([]int32, 0, len(nodes)-int(phaseStart))
			for id := phaseStart; id < int32(len(nodes)); id++ {
				joinDeps = append(joinDeps, id)
			}
			prevJoin = int32(len(nodes))
			nodes = append(nodes, GraphNode{Kind: NodeCompute, Deps: joinDeps})
		}
		g.Ranks[r] = nodes
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}

// HaloConfig parameterizes the halo-exchange generator. Axes with extent 1
// do not exchange; Z up to 1 selects the 2-D variant.
type HaloConfig struct {
	X, Y, Z int
	Bytes   int64 // face payload per neighbor per round
	Rounds  int
	// Delay is the per-round stencil compute time, applied at each rank's
	// local join (0 = pure exchange).
	Delay des.Time
}

// DefaultHalo2D is a 2-D stencil flavor.
func DefaultHalo2D() HaloConfig {
	return HaloConfig{X: 16, Y: 16, Bytes: 512 * KB, Rounds: 4}
}

// DefaultHalo3D is a 3-D stencil flavor.
func DefaultHalo3D() HaloConfig {
	return HaloConfig{X: 8, Y: 8, Z: 8, Bytes: 128 * KB, Rounds: 4}
}

// Halo generates a periodic 2-D/3-D halo exchange: per round each rank
// posts receives from every grid neighbor, sends its faces, then joins
// locally (a per-rank fence, optionally carrying the stencil's compute
// delay) before the next round. Unlike the flat miniapps there is no
// global fence: a rank's round r+1 waits only on its own round r.
func Halo(cfg HaloConfig) (*Graph, error) {
	x, y, z := cfg.X, cfg.Y, cfg.Z
	if z < 1 {
		z = 1
	}
	if x < 1 || y < 1 || cfg.Bytes < 1 || cfg.Rounds < 1 || cfg.Delay < 0 {
		return nil, fmt.Errorf("trace: bad halo config %+v", cfg)
	}
	if x < 2 && y < 2 && z < 2 {
		return nil, fmt.Errorf("trace: halo grid %dx%dx%d has no axis to exchange along", x, y, z)
	}
	app := "HALO3D"
	if z == 1 {
		app = "HALO2D"
	}
	n := x * y * z
	rankOf := func(cx, cy, cz int) int32 {
		return int32((cz*y+cy)*x + cx)
	}
	// Directions of travel; a message tagged with direction d is received
	// from the neighbor on the opposite side. Axes of extent 1 are skipped;
	// extent 2 makes both neighbors the same rank, disambiguated by tag.
	type dir struct {
		d          int32 // tag component
		dx, dy, dz int
	}
	var dirs []dir
	if x >= 2 {
		dirs = append(dirs, dir{0, 1, 0, 0}, dir{1, -1, 0, 0})
	}
	if y >= 2 {
		dirs = append(dirs, dir{2, 0, 1, 0}, dir{3, 0, -1, 0})
	}
	if z >= 2 {
		dirs = append(dirs, dir{4, 0, 0, 1}, dir{5, 0, 0, -1})
	}
	g := &Graph{App: app, Ranks: make([][]GraphNode, n)}
	for cz := 0; cz < z; cz++ {
		for cy := 0; cy < y; cy++ {
			for cx := 0; cx < x; cx++ {
				r := rankOf(cx, cy, cz)
				nodes := make([]GraphNode, 0, (2*len(dirs)+1)*cfg.Rounds)
				prevJoin := int32(-1)
				for round := 0; round < cfg.Rounds; round++ {
					tagBase := int32(round * 6)
					roundStart := int32(len(nodes))
					for _, v := range dirs {
						// Sender of my direction-d halo sits on the opposite side.
						peer := rankOf(
							((cx-v.dx)%x+x)%x, ((cy-v.dy)%y+y)%y, ((cz-v.dz)%z+z)%z,
						)
						nodes = append(nodes, GraphNode{
							Kind: NodeRecv, Peer: peer, Bytes: cfg.Bytes,
							Tag: tagBase + v.d, Deps: depOn(prevJoin),
						})
					}
					for _, v := range dirs {
						peer := rankOf(
							((cx+v.dx)%x+x)%x, ((cy+v.dy)%y+y)%y, ((cz+v.dz)%z+z)%z,
						)
						nodes = append(nodes, GraphNode{
							Kind: NodeSend, Peer: peer, Bytes: cfg.Bytes,
							Tag: tagBase + v.d, Deps: depOn(prevJoin),
						})
					}
					joinDeps := make([]int32, 0, len(nodes)-int(roundStart))
					for id := roundStart; id < int32(len(nodes)); id++ {
						joinDeps = append(joinDeps, id)
					}
					prevJoin = int32(len(nodes))
					nodes = append(nodes, GraphNode{Kind: NodeCompute, Delay: cfg.Delay, Deps: joinDeps})
				}
				g.Ranks[r] = nodes
			}
		}
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}

// CheckpointConfig parameterizes the bursty checkpoint/storage generator.
type CheckpointConfig struct {
	Clients int // compute ranks 0..Clients-1
	Servers int // storage ranks Clients..Clients+Servers-1
	Bytes   int64
	Rounds  int
	// Delay is each client's compute interval between checkpoint epochs;
	// all clients release their writes simultaneously — the incast burst.
	Delay des.Time
}

// DefaultCheckpoint is a defensive-I/O flavor: many clients funneling
// large state into few storage targets on a compute interval.
func DefaultCheckpoint() CheckpointConfig {
	return CheckpointConfig{Clients: 56, Servers: 8, Bytes: 4 * 1024 * KB, Rounds: 2, Delay: 50 * des.Microsecond}
}

// Checkpoint generates bursty checkpoint traffic: per round every client
// computes for Delay, then writes Bytes to its storage server (client c
// targets server c mod Servers). The shared compute interval synchronizes
// the bursts, so each round is an incast onto the storage ranks. Servers
// only receive; a server outnumbered by Servers > Clients holds no traffic.
func Checkpoint(cfg CheckpointConfig) (*Graph, error) {
	if cfg.Clients < 1 || cfg.Servers < 1 || cfg.Bytes < 1 || cfg.Rounds < 1 || cfg.Delay < 0 {
		return nil, fmt.Errorf("trace: bad CKPT config %+v", cfg)
	}
	n := cfg.Clients + cfg.Servers
	g := &Graph{App: "CKPT", Ranks: make([][]GraphNode, n)}
	for c := 0; c < cfg.Clients; c++ {
		server := int32(cfg.Clients + c%cfg.Servers)
		nodes := make([]GraphNode, 0, 2*cfg.Rounds)
		prev := int32(-1)
		for round := 0; round < cfg.Rounds; round++ {
			nodes = append(nodes, GraphNode{Kind: NodeCompute, Delay: cfg.Delay, Deps: depOn(prev)})
			prev = int32(len(nodes)) - 1
			nodes = append(nodes, GraphNode{
				Kind: NodeSend, Peer: server, Bytes: cfg.Bytes, Tag: int32(round), Deps: depOn(prev),
			})
			prev = int32(len(nodes)) - 1
		}
		g.Ranks[c] = nodes
	}
	for s := 0; s < cfg.Servers; s++ {
		var clients []int32
		for c := 0; c < cfg.Clients; c++ {
			if c%cfg.Servers == s {
				clients = append(clients, int32(c))
			}
		}
		var nodes []GraphNode
		prevJoin := int32(-1)
		for round := 0; round < cfg.Rounds; round++ {
			roundStart := int32(len(nodes))
			for _, c := range clients {
				nodes = append(nodes, GraphNode{
					Kind: NodeRecv, Peer: c, Bytes: cfg.Bytes, Tag: int32(round), Deps: depOn(prevJoin),
				})
			}
			if len(clients) == 0 {
				continue
			}
			joinDeps := make([]int32, 0, len(nodes)-int(roundStart))
			for id := roundStart; id < int32(len(nodes)); id++ {
				joinDeps = append(joinDeps, id)
			}
			prevJoin = int32(len(nodes))
			nodes = append(nodes, GraphNode{Kind: NodeCompute, Deps: joinDeps})
		}
		g.Ranks[cfg.Clients+s] = nodes
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}

// DefaultGraph builds the named graph application at its default (paper-
// flavored) scale — the graph analogue of the miniapps' Default*Config
// sizes, used by dftrace.
func DefaultGraph(name string) (*Graph, error) {
	switch name {
	case "RING":
		return RingAllReduce(DefaultRing())
	case "TREE":
		return TreeAllReduce(DefaultTree())
	case "MOE":
		return MoEAllToAll(DefaultMoE())
	case "HALO2D":
		return Halo(DefaultHalo2D())
	case "HALO3D":
		return Halo(DefaultHalo3D())
	case "CKPT":
		return Checkpoint(DefaultCheckpoint())
	default:
		return nil, fmt.Errorf("trace: unknown graph app %q", name)
	}
}
