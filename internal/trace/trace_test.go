package trace

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestCRShape(t *testing.T) {
	tr, err := CR(DefaultCR())
	if err != nil {
		t.Fatal(err)
	}
	if tr.NumRanks() != 1000 {
		t.Fatalf("ranks = %d, want 1000", tr.NumRanks())
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	// 1000 ranks -> 10 hypercube stages.
	if got := tr.NumPhases(); got != 10 {
		t.Fatalf("phases = %d, want 10", got)
	}
	// Constant ~190 KB load: every send is exactly the configured size.
	for rank, ops := range tr.Ranks {
		for _, op := range ops {
			if op.Kind == OpISend && op.Bytes != 190*KB {
				t.Fatalf("rank %d sends %d bytes, want %d", rank, op.Bytes, 190*KB)
			}
		}
	}
	// Paper: relatively constant message load over time.
	loads := tr.PhaseLoads()
	for i := 1; i < len(loads); i++ {
		if loads[i] < loads[0]*0.5 || loads[i] > loads[0]*2 {
			t.Fatalf("CR phase load varies too much: %v", loads)
		}
	}
}

func TestCRPartnersArePowerOfTwoOffsets(t *testing.T) {
	tr, _ := CR(CRConfig{Ranks: 64, MessageBytes: KB})
	for rank, ops := range tr.Ranks {
		for _, op := range ops {
			if op.Kind != OpISend {
				continue
			}
			off := int(op.Peer) ^ rank
			if off&(off-1) != 0 || off == 0 {
				t.Fatalf("rank %d talks to %d: offset %d not a power of two", rank, op.Peer, off)
			}
		}
	}
}

func TestFBShape(t *testing.T) {
	tr, err := FB(DefaultFB())
	if err != nil {
		t.Fatal(err)
	}
	if tr.NumRanks() != 1000 {
		t.Fatalf("ranks = %d, want 1000", tr.NumRanks())
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	// Message sizes fluctuate within the published envelope for the face
	// exchange; far partners are scaled down below the minimum.
	var lo, hi int64 = 1 << 62, 0
	for _, ops := range tr.Ranks {
		for _, op := range ops {
			if op.Kind != OpISend {
				continue
			}
			if op.Bytes < lo {
				lo = op.Bytes
			}
			if op.Bytes > hi {
				hi = op.Bytes
			}
		}
	}
	if hi > 2560*KB {
		t.Fatalf("FB max message %d exceeds 2560 KB", hi)
	}
	if hi < 1280*KB {
		t.Fatalf("FB max message %d implausibly small for a 2560 KB envelope", hi)
	}
	if lo >= 100*KB {
		t.Fatalf("FB min message %d: far partners should be below 100 KB", lo)
	}
}

func TestFBFaceNeighborsDominate(t *testing.T) {
	cfg := DefaultFB()
	tr, _ := FB(cfg)
	// Fig. 2(b): near-diagonal bands dominate. Face-neighbor traffic must
	// carry most of the bytes.
	g := grid3{cfg.X, cfg.Y, cfg.Z}
	var faceBytes, otherBytes int64
	for rank, ops := range tr.Ranks {
		faces := map[int32]bool{}
		for _, nb := range g.faceNeighbors(rank, true) {
			faces[int32(nb)] = true
		}
		for _, op := range ops {
			if op.Kind != OpISend {
				continue
			}
			if faces[op.Peer] {
				faceBytes += op.Bytes
			} else {
				otherBytes += op.Bytes
			}
		}
	}
	if faceBytes < 5*otherBytes {
		t.Fatalf("face bytes %d vs other %d: neighbor exchange should dominate", faceBytes, otherBytes)
	}
}

func TestAMGShape(t *testing.T) {
	tr, err := AMG(DefaultAMG())
	if err != nil {
		t.Fatal(err)
	}
	if tr.NumRanks() != 1728 {
		t.Fatalf("ranks = %d, want 1728", tr.NumRanks())
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	// V-cycles: 6 down + 5 up phases per cycle, 3 cycles.
	if got := tr.NumPhases(); got != 3*(6+5) {
		t.Fatalf("phases = %d, want 33", got)
	}
	// Per-rank load surges peak near the configured 75 KB (interior ranks
	// with 6 neighbors send 6 x PeakBytes/6 in the finest phase).
	loads := tr.PhaseLoads()
	peak := loads[0]
	for _, l := range loads {
		if l > peak {
			peak = l
		}
	}
	if peak > 75*KB || peak < 40*KB {
		t.Fatalf("AMG peak per-rank phase load = %v, want near 75 KB", peak)
	}
	// Much lighter than CR/FB (the paper's comparison point).
	cr, _ := CR(DefaultCR())
	if tr.AvgLoadPerRank() > cr.AvgLoadPerRank() {
		t.Fatalf("AMG load %v should be below CR load %v",
			tr.AvgLoadPerRank(), cr.AvgLoadPerRank())
	}
}

func TestAMGBoundaryRanksHaveFewerNeighbors(t *testing.T) {
	cfg := AMGConfig{X: 4, Y: 4, Z: 4, Cycles: 1, Levels: 1, PeakBytes: KB}
	tr, _ := AMG(cfg)
	// Corner rank 0 has 3 face neighbors; interior rank has 6.
	countSends := func(rank int) int {
		n := 0
		for _, op := range tr.Ranks[rank] {
			if op.Kind == OpISend {
				n++
			}
		}
		return n
	}
	if got := countSends(0); got != 3 {
		t.Fatalf("corner rank sends to %d peers, want 3", got)
	}
	interior := grid3{4, 4, 4}.rank(1, 2, 1)
	if got := countSends(interior); got != 6 {
		t.Fatalf("interior rank sends to %d peers, want 6", got)
	}
}

func TestAMGSurgeProfile(t *testing.T) {
	tr, _ := AMG(DefaultAMG())
	loads := tr.PhaseLoads()
	// Each V-cycle starts at the peak (finest level): phases 0, 11, 22.
	for _, p := range []int{0, 11, 22} {
		if loads[p] <= loads[p+3] {
			t.Fatalf("phase %d load %v not a surge over coarser phase %v", p, loads[p], loads[p+3])
		}
	}
}

func TestMatrixAggregation(t *testing.T) {
	tr, _ := CR(CRConfig{Ranks: 8, MessageBytes: 100})
	m := tr.Matrix(4)
	var total float64
	for _, row := range m {
		for _, v := range row {
			total += v
		}
	}
	if int64(total) != tr.TotalSendBytes() {
		t.Fatalf("matrix total %v != trace total %d", total, tr.TotalSendBytes())
	}
	// Diagonal-adjacent bins dominate for offset-1 stages.
	if m[0][0] == 0 {
		t.Fatal("no near-diagonal traffic in CR matrix")
	}
}

func TestMatrixBinsClamped(t *testing.T) {
	tr, _ := CR(CRConfig{Ranks: 4, MessageBytes: 10})
	m := tr.Matrix(100)
	if len(m) != 4 {
		t.Fatalf("matrix bins = %d, want clamped to 4", len(m))
	}
}

func TestGobRoundTrip(t *testing.T) {
	orig, _ := FB(FBConfig{X: 3, Y: 3, Z: 3, Iterations: 2, MinBytes: 10, MaxBytes: 100, FarPartners: 1, FarFraction: 0.5, Seed: 3})
	var buf bytes.Buffer
	if err := Write(&buf, orig); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.App != orig.App || got.NumRanks() != orig.NumRanks() {
		t.Fatalf("round trip mismatch: %s/%d vs %s/%d", got.App, got.NumRanks(), orig.App, orig.NumRanks())
	}
	if got.TotalSendBytes() != orig.TotalSendBytes() {
		t.Fatal("round trip changed payload bytes")
	}
}

func TestReadRejectsCorruptTrace(t *testing.T) {
	bad := &Trace{App: "X", Ranks: [][]Op{
		{{Kind: OpISend, Peer: 1, Bytes: 10, Tag: 0}, {Kind: OpWaitAll}},
		{{Kind: OpWaitAll}}, // missing the matching receive
	}}
	var buf bytes.Buffer
	if err := Write(&buf, bad); err != nil {
		t.Fatal(err)
	}
	if _, err := Read(&buf); err == nil {
		t.Fatal("Read accepted an unmatched trace")
	}
}

func TestValidateCatchesDefects(t *testing.T) {
	cases := []struct {
		name string
		tr   *Trace
	}{
		{"no trailing fence", &Trace{Ranks: [][]Op{{{Kind: OpISend, Peer: 1, Bytes: 1}}}}},
		{"peer out of range", &Trace{Ranks: [][]Op{
			{{Kind: OpISend, Peer: 9, Bytes: 1}, {Kind: OpWaitAll}}}}},
		{"self send", &Trace{Ranks: [][]Op{
			{{Kind: OpISend, Peer: 0, Bytes: 1}, {Kind: OpWaitAll}}}}},
		{"zero bytes", &Trace{Ranks: [][]Op{
			{{Kind: OpISend, Peer: 1, Bytes: 0}, {Kind: OpWaitAll}},
			{{Kind: OpIRecv, Peer: 0, Bytes: 0}, {Kind: OpWaitAll}}}}},
	}
	for _, c := range cases {
		if err := c.tr.Validate(); err == nil {
			t.Errorf("%s: Validate passed", c.name)
		}
	}
}

func TestSummarize(t *testing.T) {
	tr, _ := AMG(AMGConfig{X: 2, Y: 2, Z: 2, Cycles: 1, Levels: 2, PeakBytes: 1000})
	s := Summarize(tr)
	if s.App != "AMG" || s.Ranks != 8 || s.Phases != 3 {
		t.Fatalf("summary = %+v", s)
	}
	var buf bytes.Buffer
	if err := WriteSummaryJSON(&buf, tr); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(buf.Bytes(), []byte(`"app": "AMG"`)) {
		t.Fatalf("JSON summary missing app field: %s", buf.String())
	}
}

func TestGeneratorsRejectBadConfigs(t *testing.T) {
	if _, err := CR(CRConfig{Ranks: 1, MessageBytes: 10}); err == nil {
		t.Error("CR accepted 1 rank")
	}
	if _, err := FB(FBConfig{X: 1, Y: 1, Z: 1, Iterations: 1, MinBytes: 1, MaxBytes: 2}); err == nil {
		t.Error("FB accepted single-rank decomposition")
	}
	if _, err := FB(FBConfig{X: 2, Y: 2, Z: 2, Iterations: 1, MinBytes: 10, MaxBytes: 5}); err == nil {
		t.Error("FB accepted inverted size range")
	}
	if _, err := AMG(AMGConfig{X: 2, Y: 2, Z: 2, Cycles: 0, Levels: 1, PeakBytes: 1}); err == nil {
		t.Error("AMG accepted zero cycles")
	}
}

func TestFBDeterministicBySeed(t *testing.T) {
	cfg := FBConfig{X: 3, Y: 3, Z: 3, Iterations: 2, MinBytes: 100, MaxBytes: 1000, FarPartners: 1, FarFraction: 0.2, Seed: 9}
	a, _ := FB(cfg)
	b, _ := FB(cfg)
	if a.TotalSendBytes() != b.TotalSendBytes() {
		t.Fatal("same seed produced different FB traces")
	}
	cfg.Seed = 10
	c, _ := FB(cfg)
	if a.TotalSendBytes() == c.TotalSendBytes() {
		t.Fatal("different seeds produced identical FB traces")
	}
}

// Property: all generated traces validate, for a range of shapes.
func TestGeneratedTracesAlwaysValidate(t *testing.T) {
	f := func(kind uint8, d1, d2, d3 uint8, seed int64) bool {
		x, y, z := 2+int(d1)%3, 2+int(d2)%3, 2+int(d3)%3
		var tr *Trace
		var err error
		switch kind % 3 {
		case 0:
			tr, err = CR(CRConfig{Ranks: x * y * z, MessageBytes: 100})
		case 1:
			tr, err = FB(FBConfig{X: x, Y: y, Z: z, Iterations: 2, MinBytes: 10,
				MaxBytes: 1000, FarPartners: 1, FarFraction: 0.3, Seed: seed})
		default:
			tr, err = AMG(AMGConfig{X: x, Y: y, Z: z, Cycles: 2, Levels: 3, PeakBytes: 500})
		}
		if err != nil {
			return false
		}
		return tr.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestGrid3Coords(t *testing.T) {
	g := grid3{3, 4, 5}
	for r := 0; r < 60; r++ {
		x, y, z := g.coords(r)
		if g.rank(x, y, z) != r {
			t.Fatalf("coords round trip failed at %d", r)
		}
	}
}
