package trace

import "fmt"

// Builder exposes phase-structured trace construction, including standard
// MPI collective algorithms, so users can assemble custom workloads (and
// the synthetic benchmarks HPC network studies commonly use) without
// hand-writing matched send/receive pairs.
type Builder struct {
	b    *builder
	n    int
	tag  int32
	errs []error
}

// NewBuilder starts a trace over n ranks.
func NewBuilder(n int) *Builder {
	return &Builder{b: newBuilder(n), n: n}
}

// nextTag allocates a fresh tag so consecutive collectives never alias.
func (B *Builder) nextTag() int32 {
	B.tag++
	return B.tag
}

// Exchange posts one matched transfer: a send from src to dst and the
// corresponding receive.
func (B *Builder) Exchange(src, dst int, bytes int64) *Builder {
	if src < 0 || src >= B.n || dst < 0 || dst >= B.n || src == dst || bytes < 1 {
		B.errs = append(B.errs, fmt.Errorf("trace: bad exchange %d->%d (%d bytes)", src, dst, bytes))
		return B
	}
	B.b.exchange(src, dst, bytes, B.tag)
	return B
}

// Fence ends the current phase on every rank (WaitAll).
func (B *Builder) Fence() *Builder {
	B.b.fence()
	B.tag++
	return B
}

// Barrier appends a dissemination barrier: ceil(log2 n) rounds in which
// rank i signals rank (i + 2^k) mod n with a minimal message.
func (B *Builder) Barrier() *Builder {
	tag := B.nextTag()
	for k := 1; k < B.n; k <<= 1 {
		for i := 0; i < B.n; i++ {
			B.b.exchange(i, (i+k)%B.n, 1, tag)
		}
		B.b.fence()
		tag = B.nextTag()
	}
	return B
}

// AllReduce appends a recursive-doubling allreduce of a bytes-sized vector.
// Non-power-of-two rank counts fold the surplus ranks into the largest
// power-of-two subcube before and after the exchange rounds, as MPICH does.
func (B *Builder) AllReduce(bytes int64) *Builder {
	if bytes < 1 {
		B.errs = append(B.errs, fmt.Errorf("trace: allreduce of %d bytes", bytes))
		return B
	}
	pow2 := 1
	for pow2*2 <= B.n {
		pow2 *= 2
	}
	rem := B.n - pow2
	tag := B.nextTag()
	// Fold: surplus ranks pow2..n-1 send their vector to i-pow2.
	if rem > 0 {
		for i := pow2; i < B.n; i++ {
			B.b.exchange(i, i-pow2, bytes, tag)
		}
		B.b.fence()
		tag = B.nextTag()
	}
	// Recursive doubling within the subcube.
	for k := 1; k < pow2; k <<= 1 {
		for i := 0; i < pow2; i++ {
			j := i ^ k
			if i < j {
				B.b.exchange(i, j, bytes, tag)
				B.b.exchange(j, i, bytes, tag)
			}
		}
		B.b.fence()
		tag = B.nextTag()
	}
	// Unfold: results return to the surplus ranks.
	if rem > 0 {
		for i := pow2; i < B.n; i++ {
			B.b.exchange(i-pow2, i, bytes, tag)
		}
		B.b.fence()
	}
	return B
}

// AllToAll appends a pairwise-exchange all-to-all: n-1 rounds in which rank
// i sends bytes to (i + round) mod n and receives from (i - round) mod n.
func (B *Builder) AllToAll(bytes int64) *Builder {
	if bytes < 1 {
		B.errs = append(B.errs, fmt.Errorf("trace: alltoall of %d bytes", bytes))
		return B
	}
	tag := B.nextTag()
	for round := 1; round < B.n; round++ {
		for i := 0; i < B.n; i++ {
			B.b.exchange(i, (i+round)%B.n, bytes, tag)
		}
		B.b.fence()
		tag = B.nextTag()
	}
	return B
}

// Broadcast appends a binomial-tree broadcast of bytes from root.
func (B *Builder) Broadcast(root int, bytes int64) *Builder {
	if root < 0 || root >= B.n || bytes < 1 {
		B.errs = append(B.errs, fmt.Errorf("trace: bad broadcast root %d (%d bytes)", root, bytes))
		return B
	}
	tag := B.nextTag()
	// Work in root-relative rank space: vrank = (rank - root) mod n.
	abs := func(vrank int) int { return (vrank + root) % B.n }
	for k := 1; k < B.n; k <<= 1 {
		for v := 0; v < k && v < B.n; v++ {
			child := v + k
			if child < B.n {
				B.b.exchange(abs(v), abs(child), bytes, tag)
			}
		}
		B.b.fence()
		tag = B.nextTag()
	}
	return B
}

// Build finalizes the trace; it fails if any recorded step was invalid or
// the result does not validate.
func (B *Builder) Build(app string) (*Trace, error) {
	if len(B.errs) > 0 {
		return nil, B.errs[0]
	}
	// Ensure a trailing fence so every rank's op list is well-formed.
	last := B.b.ranks
	needFence := false
	for _, ops := range last {
		if len(ops) > 0 && ops[len(ops)-1].Kind != OpWaitAll {
			needFence = true
			break
		}
	}
	if needFence {
		B.b.fence()
	}
	t := B.b.build(app)
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}

// CollectiveMix describes the synthetic collective benchmark generator: a
// repeated sequence of barrier / allreduce / all-to-all / broadcast phases,
// the classic microbenchmark workload of interconnect studies.
type CollectiveMix struct {
	Ranks          int
	Iterations     int
	AllReduceBytes int64 // 0 disables
	AllToAllBytes  int64 // 0 disables
	BroadcastBytes int64 // 0 disables
	Barrier        bool
}

// Collectives generates the benchmark trace for a mix.
func Collectives(cfg CollectiveMix) (*Trace, error) {
	if cfg.Ranks < 2 {
		return nil, fmt.Errorf("trace: collectives need >= 2 ranks")
	}
	if cfg.Iterations < 1 {
		return nil, fmt.Errorf("trace: collectives need >= 1 iteration")
	}
	B := NewBuilder(cfg.Ranks)
	for it := 0; it < cfg.Iterations; it++ {
		if cfg.Barrier {
			B.Barrier()
		}
		if cfg.AllReduceBytes > 0 {
			B.AllReduce(cfg.AllReduceBytes)
		}
		if cfg.AllToAllBytes > 0 {
			B.AllToAll(cfg.AllToAllBytes)
		}
		if cfg.BroadcastBytes > 0 {
			B.Broadcast(it%cfg.Ranks, cfg.BroadcastBytes)
		}
	}
	return B.Build("COLL")
}
