// Package trace models application communication traces — the role the
// DUMPI traces of the DOE Design Forward miniapps play in the paper — and
// provides synthetic generators reproducing the published characterization
// of the three studied applications (Sec. III-A, Fig. 2): crystal router
// (CR), fill boundary (FB), and algebraic multigrid (AMG).
//
// A trace is, per MPI rank, an ordered list of nonblocking sends, receives,
// and WaitAll fences. Computation time is absent by design: the paper's
// simulations ignore compute and measure communication only.
package trace

import (
	"fmt"
)

// OpKind is the kind of one trace operation.
type OpKind uint8

const (
	// OpISend posts a nonblocking send to Peer of Bytes.
	OpISend OpKind = iota
	// OpIRecv posts a nonblocking receive from Peer of Bytes.
	OpIRecv
	// OpWaitAll blocks the rank until every send posted since the previous
	// fence has been injected and every posted receive has arrived.
	OpWaitAll
)

func (k OpKind) String() string {
	switch k {
	case OpISend:
		return "isend"
	case OpIRecv:
		return "irecv"
	case OpWaitAll:
		return "waitall"
	default:
		return fmt.Sprintf("OpKind(%d)", int(k))
	}
}

// Op is one trace operation. Peer and Bytes are meaningful for sends and
// receives; Tag identifies the communication phase.
type Op struct {
	Kind  OpKind
	Peer  int32
	Bytes int64
	Tag   int32
}

// Trace is the communication record of one application run.
type Trace struct {
	App   string
	Ranks [][]Op // Ranks[i] is the ordered op list of MPI rank i
}

// NumRanks returns the rank count.
func (t *Trace) NumRanks() int { return len(t.Ranks) }

// TotalSendBytes sums every send payload across ranks.
func (t *Trace) TotalSendBytes() int64 {
	var total int64
	for _, ops := range t.Ranks {
		for _, op := range ops {
			if op.Kind == OpISend {
				total += op.Bytes
			}
		}
	}
	return total
}

// NumPhases returns the maximum number of WaitAll fences over all ranks —
// the trace's phase count.
func (t *Trace) NumPhases() int {
	max := 0
	for _, ops := range t.Ranks {
		n := 0
		for _, op := range ops {
			if op.Kind == OpWaitAll {
				n++
			}
		}
		if n > max {
			max = n
		}
	}
	return max
}

// Digest returns a 64-bit FNV-1a content digest of the trace: the app name,
// the rank count, and every rank's ordered op list (kind, peer, bytes, tag).
// Two traces share a digest exactly when they replay identically, which is
// what lets a content-addressed result cache identify an application by its
// communication record instead of by name — a regenerated trace with the
// same label but different ops can never alias a cached result.
func (t *Trace) Digest() uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	w8 := func(b byte) {
		h = (h ^ uint64(b)) * prime64
	}
	w64 := func(v uint64) {
		for i := 0; i < 64; i += 8 {
			w8(byte(v >> i))
		}
	}
	for i := 0; i < len(t.App); i++ {
		w8(t.App[i])
	}
	w64(uint64(len(t.Ranks)))
	for _, ops := range t.Ranks {
		w64(uint64(len(ops)))
		for _, op := range ops {
			w8(byte(op.Kind))
			w64(uint64(uint32(op.Peer)))
			w64(uint64(op.Bytes))
			w64(uint64(uint32(op.Tag)))
		}
	}
	return h
}

// pairKey identifies a directed transfer for matching validation.
type pairKey struct {
	src, dst int32
	bytes    int64
	tag      int32
}

// Validate checks structural invariants the replay engine relies on:
// peers in range, positive sizes, every rank's op list ending with a fence,
// and global send/receive matching — for each posted receive there is
// exactly one matching send and vice versa.
func (t *Trace) Validate() error {
	n := int32(t.NumRanks())
	balance := map[pairKey]int{}
	for rank, ops := range t.Ranks {
		if len(ops) == 0 {
			continue
		}
		if ops[len(ops)-1].Kind != OpWaitAll {
			return fmt.Errorf("trace: rank %d does not end with WaitAll", rank)
		}
		for i, op := range ops {
			switch op.Kind {
			case OpISend, OpIRecv:
				if op.Peer < 0 || op.Peer >= n {
					return fmt.Errorf("trace: rank %d op %d: peer %d out of range", rank, i, op.Peer)
				}
				if op.Peer == int32(rank) {
					return fmt.Errorf("trace: rank %d op %d: self-communication", rank, i)
				}
				if op.Bytes <= 0 {
					return fmt.Errorf("trace: rank %d op %d: non-positive size %d", rank, i, op.Bytes)
				}
				if op.Kind == OpISend {
					balance[pairKey{int32(rank), op.Peer, op.Bytes, op.Tag}]++
				} else {
					balance[pairKey{op.Peer, int32(rank), op.Bytes, op.Tag}]--
				}
			case OpWaitAll:
			default:
				return fmt.Errorf("trace: rank %d op %d: unknown kind %v", rank, i, op.Kind)
			}
		}
	}
	for k, v := range balance {
		if v != 0 {
			return fmt.Errorf("trace: unmatched transfer %d->%d %dB tag %d (balance %+d)",
				k.src, k.dst, k.bytes, k.tag, v)
		}
	}
	return nil
}

// Matrix aggregates send bytes into a bins x bins communication matrix —
// the data behind Fig. 2(a)-(c). Entry [i][j] is the bytes sent from ranks
// in row-bin i to ranks in column-bin j.
func (t *Trace) Matrix(bins int) [][]float64 {
	if bins < 1 {
		panic("trace: Matrix needs >= 1 bin")
	}
	n := t.NumRanks()
	if bins > n {
		bins = n
	}
	m := make([][]float64, bins)
	for i := range m {
		m[i] = make([]float64, bins)
	}
	for rank, ops := range t.Ranks {
		ri := rank * bins / n
		for _, op := range ops {
			if op.Kind == OpISend {
				cj := int(op.Peer) * bins / n
				m[ri][cj] += float64(op.Bytes)
			}
		}
	}
	return m
}

// PhaseLoads returns, per phase, the mean bytes sent per rank during that
// phase — the data behind the message-load-over-time plots of Fig. 2(d)-(f)
// (phase index stands in for wall time, since the traces carry no compute).
func (t *Trace) PhaseLoads() []float64 {
	phases := t.NumPhases()
	if phases == 0 {
		return nil
	}
	loads := make([]float64, phases)
	for _, ops := range t.Ranks {
		p := 0
		for _, op := range ops {
			switch op.Kind {
			case OpISend:
				loads[p] += float64(op.Bytes)
			case OpWaitAll:
				p++
			}
		}
	}
	n := float64(t.NumRanks())
	for i := range loads {
		loads[i] /= n
	}
	return loads
}

// AvgLoadPerRank returns the mean bytes a rank sends over the whole run —
// the "average message load per rank" the paper uses to compare
// communication intensity.
func (t *Trace) AvgLoadPerRank() float64 {
	if t.NumRanks() == 0 {
		return 0
	}
	return float64(t.TotalSendBytes()) / float64(t.NumRanks())
}

// builder assembles symmetric phase-structured traces.
type builder struct {
	ranks [][]Op
}

func newBuilder(n int) *builder {
	return &builder{ranks: make([][]Op, n)}
}

// exchange posts the matched pair: a send i->j and the receive at j.
func (b *builder) exchange(i, j int, bytes int64, tag int32) {
	b.ranks[i] = append(b.ranks[i], Op{Kind: OpISend, Peer: int32(j), Bytes: bytes, Tag: tag})
	b.ranks[j] = append(b.ranks[j], Op{Kind: OpIRecv, Peer: int32(i), Bytes: bytes, Tag: tag})
}

// fence ends the current phase on every rank.
func (b *builder) fence() {
	for i := range b.ranks {
		b.ranks[i] = append(b.ranks[i], Op{Kind: OpWaitAll})
	}
}

func (b *builder) build(app string) *Trace {
	return &Trace{App: app, Ranks: b.ranks}
}
