package trace

import (
	"testing"
	"testing/quick"
)

func TestBarrierShape(t *testing.T) {
	tr, err := NewBuilder(8).Barrier().Build("b")
	if err != nil {
		t.Fatal(err)
	}
	// Dissemination barrier over 8 ranks: 3 rounds x 8 one-byte messages.
	sends := 0
	for _, ops := range tr.Ranks {
		for _, op := range ops {
			if op.Kind == OpISend {
				sends++
				if op.Bytes != 1 {
					t.Fatalf("barrier message of %d bytes", op.Bytes)
				}
			}
		}
	}
	if sends != 3*8 {
		t.Fatalf("barrier sends = %d, want 24", sends)
	}
}

func TestAllReducePowerOfTwo(t *testing.T) {
	tr, err := NewBuilder(16).AllReduce(1024).Build("ar")
	if err != nil {
		t.Fatal(err)
	}
	// log2(16)=4 rounds, each rank sends once per round.
	sends := 0
	for _, ops := range tr.Ranks {
		for _, op := range ops {
			if op.Kind == OpISend {
				sends++
			}
		}
	}
	if sends != 4*16 {
		t.Fatalf("allreduce sends = %d, want 64", sends)
	}
}

func TestAllReduceNonPowerOfTwoFolds(t *testing.T) {
	tr, err := NewBuilder(10).AllReduce(512).Build("ar")
	if err != nil {
		t.Fatal(err)
	}
	// pow2 = 8, rem = 2: fold(2) + 3 rounds x 8 + unfold(2) = 28 sends.
	sends := 0
	for _, ops := range tr.Ranks {
		for _, op := range ops {
			if op.Kind == OpISend {
				sends++
			}
		}
	}
	if sends != 2+3*8+2 {
		t.Fatalf("allreduce(10) sends = %d, want 28", sends)
	}
}

func TestAllToAllEveryPairOnce(t *testing.T) {
	const n = 7
	tr, err := NewBuilder(n).AllToAll(100).Build("a2a")
	if err != nil {
		t.Fatal(err)
	}
	pair := map[[2]int32]int{}
	for rank, ops := range tr.Ranks {
		for _, op := range ops {
			if op.Kind == OpISend {
				pair[[2]int32{int32(rank), op.Peer}]++
			}
		}
	}
	if len(pair) != n*(n-1) {
		t.Fatalf("alltoall covered %d pairs, want %d", len(pair), n*(n-1))
	}
	for p, c := range pair {
		if c != 1 {
			t.Fatalf("pair %v exchanged %d times", p, c)
		}
	}
}

func TestBroadcastReachesEveryRankOnce(t *testing.T) {
	const n, root = 13, 5
	tr, err := NewBuilder(n).Broadcast(root, 4096).Build("bc")
	if err != nil {
		t.Fatal(err)
	}
	recvs := map[int32]int{}
	for rank, ops := range tr.Ranks {
		for _, op := range ops {
			if op.Kind == OpIRecv {
				recvs[int32(rank)]++
				_ = op
			}
		}
	}
	if len(recvs) != n-1 {
		t.Fatalf("broadcast reached %d ranks, want %d", len(recvs), n-1)
	}
	if recvs[root] != 0 {
		t.Fatal("root received its own broadcast")
	}
	for r, c := range recvs {
		if c != 1 {
			t.Fatalf("rank %d received %d copies", r, c)
		}
	}
}

func TestBuilderRejectsInvalidSteps(t *testing.T) {
	if _, err := NewBuilder(4).Exchange(0, 0, 10).Build("x"); err == nil {
		t.Error("self exchange accepted")
	}
	if _, err := NewBuilder(4).Exchange(0, 9, 10).Build("x"); err == nil {
		t.Error("out-of-range peer accepted")
	}
	if _, err := NewBuilder(4).AllReduce(0).Build("x"); err == nil {
		t.Error("zero-byte allreduce accepted")
	}
	if _, err := NewBuilder(4).Broadcast(7, 10).Build("x"); err == nil {
		t.Error("bad broadcast root accepted")
	}
}

func TestBuilderAutoFence(t *testing.T) {
	tr, err := NewBuilder(2).Exchange(0, 1, 10).Exchange(1, 0, 10).Build("x")
	if err != nil {
		t.Fatal(err)
	}
	for rank, ops := range tr.Ranks {
		if ops[len(ops)-1].Kind != OpWaitAll {
			t.Fatalf("rank %d missing trailing fence", rank)
		}
	}
}

func TestCollectivesMix(t *testing.T) {
	tr, err := Collectives(CollectiveMix{
		Ranks: 12, Iterations: 2,
		AllReduceBytes: 1024, AllToAllBytes: 256, BroadcastBytes: 4096,
		Barrier: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if tr.App != "COLL" || tr.NumRanks() != 12 {
		t.Fatalf("mix = %s/%d", tr.App, tr.NumRanks())
	}
	if _, err := Collectives(CollectiveMix{Ranks: 1, Iterations: 1}); err == nil {
		t.Error("single-rank mix accepted")
	}
	if _, err := Collectives(CollectiveMix{Ranks: 4, Iterations: 0}); err == nil {
		t.Error("zero-iteration mix accepted")
	}
}

// Property: every collective over any rank count validates (matched pairs,
// proper fencing) — the invariant the replay engine depends on.
func TestCollectivesAlwaysValidate(t *testing.T) {
	f := func(nRaw uint8, kind uint8) bool {
		n := 2 + int(nRaw)%30
		B := NewBuilder(n)
		switch kind % 4 {
		case 0:
			B.Barrier()
		case 1:
			B.AllReduce(64)
		case 2:
			B.AllToAll(64)
		case 3:
			B.Broadcast(int(kind)%n, 64)
		}
		tr, err := B.Build("p")
		return err == nil && tr.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
