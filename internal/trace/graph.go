// Dependency-graph workload IR — the GOAL-like canonical representation of
// an application's communication (cf. ATLAHS, arXiv 2505.08936). Where a
// flat Trace is an ordered op list per rank punctuated by WaitAll fences, a
// Graph is a DAG per rank: send, receive, and compute nodes with explicit
// dependency edges. Cross-rank synchronization is implicit in message
// matching (a receive completes when the matching send's payload arrives),
// so the IR can express pipelined structures — a ring all-reduce step that
// depends only on the previous step's receive, not on a global fence — that
// flat op lists cannot.
//
// Flat traces lower into the IR (see Trace.Graph): a WaitAll fence becomes
// a zero-delay compute node depending on every operation posted since the
// previous fence. The replay engine executes only graphs; lowering is what
// keeps the three paper miniapps byte-identical under the graph executor
// (pinned by the differential digests in internal/topotest/testdata/).
package trace

import (
	"fmt"
	"sync"

	"dragonfly/internal/des"
)

// NodeKind is the kind of one graph node.
type NodeKind uint8

const (
	// NodeSend posts a nonblocking send of Bytes to Peer; it completes when
	// the last byte has been injected at the NIC (eager-send semantics,
	// matching the flat replayer).
	NodeSend NodeKind = iota
	// NodeRecv posts a nonblocking receive from Peer; it completes when the
	// matching message has fully arrived. Arrivals match posted receives
	// first-posted-first-matched per (peer, tag), MPI-like.
	NodeRecv
	// NodeCompute models local work: it completes Delay after every
	// dependency has completed. Delay zero is a pure join (the lowered form
	// of a WaitAll fence) and consumes no simulated time and no DES events.
	NodeCompute
)

func (k NodeKind) String() string {
	switch k {
	case NodeSend:
		return "send"
	case NodeRecv:
		return "recv"
	case NodeCompute:
		return "compute"
	default:
		return fmt.Sprintf("NodeKind(%d)", int(k))
	}
}

// GraphNode is one node of a rank's dependency DAG. Peer, Bytes, and Tag are
// meaningful for sends and receives; Delay for compute nodes. Deps lists the
// same-rank nodes (by index, each strictly smaller than this node's own
// index) that must complete before this node executes.
type GraphNode struct {
	Kind  NodeKind
	Peer  int32
	Bytes int64
	Tag   int32
	Delay des.Time
	Deps  []int32
}

// Graph is the dependency-graph form of one application workload.
type Graph struct {
	App   string
	Ranks [][]GraphNode // Ranks[i] is rank i's DAG in topological (index) order
}

// NumRanks returns the rank count.
func (g *Graph) NumRanks() int { return len(g.Ranks) }

// NumNodes returns the total node count across ranks.
func (g *Graph) NumNodes() int {
	n := 0
	for _, nodes := range g.Ranks {
		n += len(nodes)
	}
	return n
}

// NumEdges returns the total dependency-edge count across ranks (message-
// matching edges between ranks are implicit and not counted).
func (g *Graph) NumEdges() int {
	n := 0
	for _, nodes := range g.Ranks {
		for i := range nodes {
			n += len(nodes[i].Deps)
		}
	}
	return n
}

// MaxFanOut returns the largest dependency out-degree of any node — how many
// same-rank nodes hang off one completion. Lowered fences produce the
// characteristic spike (every op of the next phase depends on the join).
func (g *Graph) MaxFanOut() int {
	max := 0
	for _, nodes := range g.Ranks {
		out := make([]int, len(nodes))
		for i := range nodes {
			for _, d := range nodes[i].Deps {
				if int(d) >= 0 && int(d) < len(out) {
					out[d]++
				}
			}
		}
		for _, o := range out {
			if o > max {
				max = o
			}
		}
	}
	return max
}

// TotalSendBytes sums every send payload across ranks.
func (g *Graph) TotalSendBytes() int64 {
	var total int64
	for _, nodes := range g.Ranks {
		for i := range nodes {
			if nodes[i].Kind == NodeSend {
				total += nodes[i].Bytes
			}
		}
	}
	return total
}

// Digest returns a 64-bit FNV-1a content digest of the graph: the app name,
// the rank count, and every rank's node list (kind, peer, bytes, tag, delay,
// dependency edges). Two graphs share a digest exactly when they replay
// identically, which is what lets the farm's content-addressed cache key a
// graph workload by its structure instead of its label.
func (g *Graph) Digest() uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	w8 := func(b byte) {
		h = (h ^ uint64(b)) * prime64
	}
	w64 := func(v uint64) {
		for i := 0; i < 64; i += 8 {
			w8(byte(v >> i))
		}
	}
	for i := 0; i < len(g.App); i++ {
		w8(g.App[i])
	}
	w64(uint64(len(g.Ranks)))
	for _, nodes := range g.Ranks {
		w64(uint64(len(nodes)))
		for i := range nodes {
			n := &nodes[i]
			w8(byte(n.Kind))
			w64(uint64(uint32(n.Peer)))
			w64(uint64(n.Bytes))
			w64(uint64(uint32(n.Tag)))
			w64(uint64(n.Delay))
			w64(uint64(len(n.Deps)))
			for _, d := range n.Deps {
				w64(uint64(uint32(d)))
			}
		}
	}
	return h
}

// Validate checks the structural invariants the graph executor relies on:
// dependency edges pointing strictly backwards within the rank (which makes
// every rank list a topological order, so the graph is acyclic by
// construction), peers in range, positive transfer sizes, non-negative
// compute delays, and global send/receive matching.
func (g *Graph) Validate() error {
	n := int32(g.NumRanks())
	balance := map[pairKey]int{}
	for rank, nodes := range g.Ranks {
		for i := range nodes {
			node := &nodes[i]
			seen := int32(-1)
			for _, d := range node.Deps {
				if d < 0 || int(d) >= i {
					return fmt.Errorf("trace: graph rank %d node %d: dep %d not strictly earlier", rank, i, d)
				}
				if d <= seen {
					return fmt.Errorf("trace: graph rank %d node %d: deps not strictly ascending", rank, i)
				}
				seen = d
			}
			switch node.Kind {
			case NodeSend, NodeRecv:
				if node.Peer < 0 || node.Peer >= n {
					return fmt.Errorf("trace: graph rank %d node %d: peer %d out of range", rank, i, node.Peer)
				}
				if node.Peer == int32(rank) {
					return fmt.Errorf("trace: graph rank %d node %d: self-communication", rank, i)
				}
				if node.Bytes <= 0 {
					return fmt.Errorf("trace: graph rank %d node %d: non-positive size %d", rank, i, node.Bytes)
				}
				if node.Kind == NodeSend {
					balance[pairKey{int32(rank), node.Peer, node.Bytes, node.Tag}]++
				} else {
					balance[pairKey{node.Peer, int32(rank), node.Bytes, node.Tag}]--
				}
			case NodeCompute:
				if node.Delay < 0 {
					return fmt.Errorf("trace: graph rank %d node %d: negative delay %d", rank, i, node.Delay)
				}
			default:
				return fmt.Errorf("trace: graph rank %d node %d: unknown kind %v", rank, i, node.Kind)
			}
		}
	}
	for k, v := range balance {
		if v != 0 {
			return fmt.Errorf("trace: graph unmatched transfer %d->%d %dB tag %d (balance %+d)",
				k.src, k.dst, k.bytes, k.tag, v)
		}
	}
	return nil
}

// Matrix aggregates send bytes into a bins x bins communication matrix,
// exactly as Trace.Matrix does for flat traces.
func (g *Graph) Matrix(bins int) [][]float64 {
	if bins < 1 {
		panic("trace: Matrix needs >= 1 bin")
	}
	n := g.NumRanks()
	if bins > n {
		bins = n
	}
	m := make([][]float64, bins)
	for i := range m {
		m[i] = make([]float64, bins)
	}
	for rank, nodes := range g.Ranks {
		ri := rank * bins / n
		for i := range nodes {
			if nodes[i].Kind == NodeSend {
				cj := int(nodes[i].Peer) * bins / n
				m[ri][cj] += float64(nodes[i].Bytes)
			}
		}
	}
	return m
}

// CriticalPathBytes returns the heaviest dependency chain through the whole
// graph, weighing each send node by its payload: the bytes that must cross
// the wire serially no matter how much the fabric parallelizes everything
// else. Cross-rank edges (each send to the receive it matches, first-posted-
// first-matched per directed pair and tag) participate, so a ring
// all-reduce shows its 2(N-1) chunk relay — 1/N of the traffic it moves —
// while a serial tree shows every hop's full vector. The graph must be
// valid; unmatched traffic is skipped.
func (g *Graph) CriticalPathBytes() int64 {
	// Global numbering: node (rank, i) -> offset[rank]+i.
	offset := make([]int, len(g.Ranks)+1)
	for r, nodes := range g.Ranks {
		offset[r+1] = offset[r] + len(nodes)
	}
	total := offset[len(g.Ranks)]
	indeg := make([]int32, total)
	matchRecv := make([]int32, total) // send gid -> matched recv gid, -1 if none
	for i := range matchRecv {
		matchRecv[i] = -1
	}

	// FIFO-match sends to receives per (src, dst, tag).
	type mkey struct {
		src, dst, tag int32
	}
	sends := map[mkey][]int32{}
	for r, nodes := range g.Ranks {
		for i := range nodes {
			gid := int32(offset[r] + i)
			indeg[gid] = int32(len(nodes[i].Deps))
			if nodes[i].Kind == NodeSend {
				k := mkey{int32(r), nodes[i].Peer, nodes[i].Tag}
				sends[k] = append(sends[k], gid)
			}
		}
	}
	for r, nodes := range g.Ranks {
		for i := range nodes {
			if nodes[i].Kind != NodeRecv {
				continue
			}
			k := mkey{nodes[i].Peer, int32(r), nodes[i].Tag}
			if q := sends[k]; len(q) > 0 {
				gid := int32(offset[r] + i)
				matchRecv[q[0]] = gid
				sends[k] = q[1:]
				indeg[gid]++
			}
		}
	}

	// Kahn's algorithm with a longest-path DP over bytes.
	dist := make([]int64, total)
	queue := make([]int32, 0, total)
	for gid := 0; gid < total; gid++ {
		if indeg[gid] == 0 {
			queue = append(queue, int32(gid))
		}
	}
	rankOf := func(gid int32) (int, int) {
		lo, hi := 0, len(g.Ranks)
		for lo+1 < hi {
			mid := (lo + hi) / 2
			if int(gid) >= offset[mid] {
				lo = mid
			} else {
				hi = mid
			}
		}
		return lo, int(gid) - offset[lo]
	}
	var max int64
	relax := func(to int32, d int64) {
		if d > dist[to] {
			dist[to] = d
		}
		indeg[to]--
		if indeg[to] == 0 {
			queue = append(queue, to)
		}
	}
	// Successor edges are recovered by scanning each rank's Deps once.
	succ := make([][]int32, total)
	for r, nodes := range g.Ranks {
		for i := range nodes {
			gid := int32(offset[r] + i)
			for _, d := range nodes[i].Deps {
				dep := int32(offset[r] + int(d))
				succ[dep] = append(succ[dep], gid)
			}
		}
	}
	for len(queue) > 0 {
		gid := queue[0]
		queue = queue[1:]
		r, i := rankOf(gid)
		node := &g.Ranks[r][i]
		d := dist[gid]
		if node.Kind == NodeSend {
			d += node.Bytes
		}
		if d > max {
			max = d
		}
		for _, s := range succ[gid] {
			relax(s, d)
		}
		if node.Kind == NodeSend && matchRecv[gid] >= 0 {
			relax(matchRecv[gid], d)
		}
	}
	return max
}

// graphCache memoizes lowered graphs by trace pointer. Traces are immutable
// after construction (the farm's content addressing already relies on
// that), so a pointer identity hit is a content hit; repeated runs of one
// trace — sweeps, the farm, benchmarks — lower it exactly once.
var graphCache sync.Map // *Trace -> *Graph

// Graph lowers a flat trace into the dependency-graph IR. Sends and
// receives become nodes depending on the previous fence's join; each
// WaitAll fence becomes a zero-delay compute node depending on every
// operation posted since the previous fence. Executing the lowered graph
// (ready nodes in index order, joins completing inline) reproduces the
// fence-based replayer's behavior byte for byte — the property the
// committed differential digests pin. The result is memoized per trace and
// must not be mutated.
func (t *Trace) Graph() *Graph {
	if g, ok := graphCache.Load(t); ok {
		return g.(*Graph)
	}
	g, _ := graphCache.LoadOrStore(t, t.lowerGraph())
	return g.(*Graph)
}

func (t *Trace) lowerGraph() *Graph {
	g := &Graph{App: t.App, Ranks: make([][]GraphNode, len(t.Ranks))}
	for rank, ops := range t.Ranks {
		// One backing array serves every Deps slice of the rank: sends and
		// receives of one fence window share a single {prevJoin} cell, each
		// join gets a window-sized segment. Counting pass sizes the arena so
		// lowering costs O(ranks) allocations, not O(ops).
		arena := make([]int32, 0, depsArenaLen(ops))
		nodes := make([]GraphNode, 0, len(ops))
		window := make([]int32, 0, 16) // node ids posted since the previous fence
		prevJoin := int32(-1)
		var joinDep []int32 // shared {prevJoin} slice for the current window
		for _, op := range ops {
			switch op.Kind {
			case OpISend:
				window = append(window, int32(len(nodes)))
				nodes = append(nodes, GraphNode{
					Kind: NodeSend, Peer: op.Peer, Bytes: op.Bytes, Tag: op.Tag, Deps: joinDep,
				})
			case OpIRecv:
				window = append(window, int32(len(nodes)))
				nodes = append(nodes, GraphNode{
					Kind: NodeRecv, Peer: op.Peer, Bytes: op.Bytes, Tag: op.Tag, Deps: joinDep,
				})
			case OpWaitAll:
				var deps []int32
				if len(window) > 0 {
					start := len(arena)
					arena = append(arena, window...)
					deps = arena[start:len(arena):len(arena)]
				} else if prevJoin >= 0 {
					deps = joinDep
				}
				prevJoin = int32(len(nodes))
				nodes = append(nodes, GraphNode{Kind: NodeCompute, Deps: deps})
				start := len(arena)
				arena = append(arena, prevJoin)
				joinDep = arena[start:len(arena):len(arena)]
				window = window[:0]
			}
		}
		g.Ranks[rank] = nodes
	}
	return g
}

// depsArenaLen returns the exact arena size lowerGraph needs for one rank:
// one cell per windowed op (its id in the join's dep list) plus one shared
// {join} cell per fence.
func depsArenaLen(ops []Op) int {
	n := 0
	for _, op := range ops {
		switch op.Kind {
		case OpISend, OpIRecv:
			n++
		case OpWaitAll:
			n++
		}
	}
	return n
}
