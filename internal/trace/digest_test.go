package trace

import "testing"

func digestTrace(t *testing.T) *Trace {
	t.Helper()
	tr, err := CR(CRConfig{Ranks: 16, MessageBytes: 4 * KB})
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestDigestDeterministic(t *testing.T) {
	a, b := digestTrace(t), digestTrace(t)
	if a.Digest() != b.Digest() {
		t.Fatalf("identical traces digest differently: %x vs %x", a.Digest(), b.Digest())
	}
}

// TestDigestSensitivity flips every component of a single op plus the trace
// metadata, and requires each change to move the digest: the content digest
// is the application's identity in the on-disk result cache, so a blind spot
// here is a wrong-result cache hit there.
func TestDigestSensitivity(t *testing.T) {
	base := digestTrace(t)
	want := base.Digest()

	mutate := func(name string, f func(tr *Trace)) {
		tr := digestTrace(t)
		f(tr)
		if tr.Digest() == want {
			t.Errorf("%s does not perturb the digest", name)
		}
	}
	mutate("app name", func(tr *Trace) { tr.App = "cr2" })
	mutate("dropped rank", func(tr *Trace) { tr.Ranks = tr.Ranks[:len(tr.Ranks)-1] })
	mutate("op kind", func(tr *Trace) { tr.Ranks[0][0].Kind = OpWaitAll })
	mutate("op peer", func(tr *Trace) { tr.Ranks[0][0].Peer++ })
	mutate("op bytes", func(tr *Trace) { tr.Ranks[0][0].Bytes++ })
	mutate("op tag", func(tr *Trace) { tr.Ranks[0][0].Tag++ })
	mutate("dropped op", func(tr *Trace) { tr.Ranks[0] = tr.Ranks[0][:len(tr.Ranks[0])-1] })
}
