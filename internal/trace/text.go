package trace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Text trace format — a line-oriented, DUMPI-flavored representation so
// traces can be produced or inspected outside this library (the paper's
// traces come from the DUMPI ASCII toolchain):
//
//	# comment
//	trace <app-name> <num-ranks>
//	rank <index>
//	isend <peer> <bytes> <tag>
//	irecv <peer> <bytes> <tag>
//	waitall
//
// Every rank section must appear exactly once, in ascending order.

// WriteText serializes a trace in the text format.
func WriteText(w io.Writer, t *Trace) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# dragonfly trace, DUMPI-flavored text format\n")
	fmt.Fprintf(bw, "trace %s %d\n", sanitizeName(t.App), t.NumRanks())
	for rank, ops := range t.Ranks {
		fmt.Fprintf(bw, "rank %d\n", rank)
		for _, op := range ops {
			switch op.Kind {
			case OpISend:
				fmt.Fprintf(bw, "isend %d %d %d\n", op.Peer, op.Bytes, op.Tag)
			case OpIRecv:
				fmt.Fprintf(bw, "irecv %d %d %d\n", op.Peer, op.Bytes, op.Tag)
			case OpWaitAll:
				fmt.Fprintf(bw, "waitall\n")
			default:
				return fmt.Errorf("trace: cannot serialize op kind %v", op.Kind)
			}
		}
	}
	return bw.Flush()
}

func sanitizeName(s string) string {
	if s == "" {
		return "unnamed"
	}
	return strings.ReplaceAll(s, " ", "_")
}

// ParseText reads a text-format trace and validates it.
func ParseText(r io.Reader) (*Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var t *Trace
	cur := -1
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "trace":
			if t != nil {
				return nil, fmt.Errorf("trace: line %d: duplicate trace header", lineNo)
			}
			if len(fields) != 3 {
				return nil, fmt.Errorf("trace: line %d: want 'trace <name> <ranks>'", lineNo)
			}
			n, err := strconv.Atoi(fields[2])
			if err != nil || n < 1 {
				return nil, fmt.Errorf("trace: line %d: bad rank count %q", lineNo, fields[2])
			}
			t = &Trace{App: fields[1], Ranks: make([][]Op, n)}
		case "rank":
			if t == nil {
				return nil, fmt.Errorf("trace: line %d: 'rank' before 'trace' header", lineNo)
			}
			if len(fields) != 2 {
				return nil, fmt.Errorf("trace: line %d: want 'rank <index>'", lineNo)
			}
			i, err := strconv.Atoi(fields[1])
			if err != nil || i != cur+1 || i >= t.NumRanks() {
				return nil, fmt.Errorf("trace: line %d: rank %q out of order (expected %d of %d)",
					lineNo, fields[1], cur+1, t.NumRanks())
			}
			cur = i
		case "isend", "irecv":
			if t == nil || cur < 0 {
				return nil, fmt.Errorf("trace: line %d: op outside a rank section", lineNo)
			}
			if len(fields) != 4 {
				return nil, fmt.Errorf("trace: line %d: want '%s <peer> <bytes> <tag>'", lineNo, fields[0])
			}
			peer, err1 := strconv.ParseInt(fields[1], 10, 32)
			bytes, err2 := strconv.ParseInt(fields[2], 10, 64)
			tag, err3 := strconv.ParseInt(fields[3], 10, 32)
			if err1 != nil || err2 != nil || err3 != nil {
				return nil, fmt.Errorf("trace: line %d: malformed operands", lineNo)
			}
			kind := OpISend
			if fields[0] == "irecv" {
				kind = OpIRecv
			}
			t.Ranks[cur] = append(t.Ranks[cur], Op{Kind: kind, Peer: int32(peer), Bytes: bytes, Tag: int32(tag)})
		case "waitall":
			if t == nil || cur < 0 {
				return nil, fmt.Errorf("trace: line %d: waitall outside a rank section", lineNo)
			}
			t.Ranks[cur] = append(t.Ranks[cur], Op{Kind: OpWaitAll})
		default:
			return nil, fmt.Errorf("trace: line %d: unknown directive %q", lineNo, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if t == nil {
		return nil, fmt.Errorf("trace: empty input")
	}
	if cur != t.NumRanks()-1 {
		return nil, fmt.Errorf("trace: only %d of %d rank sections present", cur+1, t.NumRanks())
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}
