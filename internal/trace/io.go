package trace

import (
	"bufio"
	"encoding/gob"
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// Write serializes a trace in the library's binary format (gob).
func Write(w io.Writer, t *Trace) error {
	return gob.NewEncoder(w).Encode(t)
}

// Read deserializes a trace written by Write and validates it.
func Read(r io.Reader) (*Trace, error) {
	var t Trace
	if err := gob.NewDecoder(r).Decode(&t); err != nil {
		return nil, fmt.Errorf("trace: decode: %w", err)
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return &t, nil
}

// WriteFile writes a trace to a file.
func WriteFile(path string, t *Trace) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	bw := bufio.NewWriter(f)
	if err := Write(bw, t); err != nil {
		f.Close()
		return err
	}
	if err := bw.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadFile reads a trace from a file.
func ReadFile(path string) (*Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Read(bufio.NewReader(f))
}

// Summary is the JSON-friendly digest of a trace used by cmd/dftrace.
type Summary struct {
	App            string    `json:"app"`
	Ranks          int       `json:"ranks"`
	Phases         int       `json:"phases"`
	TotalSendBytes int64     `json:"total_send_bytes"`
	AvgLoadPerRank float64   `json:"avg_load_per_rank_bytes"`
	PhaseLoads     []float64 `json:"phase_loads_bytes_per_rank"`
	// Graph digests the trace's lowered dependency graph — the IR the
	// executor actually runs.
	Graph GraphSummary `json:"graph"`
}

// GraphSummary is the JSON-friendly digest of a dependency graph: structural
// counts plus the byte-weighted critical path, which bounds how much the
// workload can pipeline.
type GraphSummary struct {
	App               string `json:"app"`
	Ranks             int    `json:"ranks"`
	Nodes             int    `json:"nodes"`
	Edges             int    `json:"edges"`
	TotalSendBytes    int64  `json:"total_send_bytes"`
	CriticalPathBytes int64  `json:"critical_path_bytes"`
	MaxFanOut         int    `json:"max_fanout"`
}

// Summarize computes a trace's digest.
func Summarize(t *Trace) Summary {
	return Summary{
		App:            t.App,
		Ranks:          t.NumRanks(),
		Phases:         t.NumPhases(),
		TotalSendBytes: t.TotalSendBytes(),
		AvgLoadPerRank: t.AvgLoadPerRank(),
		PhaseLoads:     t.PhaseLoads(),
		Graph:          SummarizeGraph(t.Graph()),
	}
}

// SummarizeGraph computes a graph's digest.
func SummarizeGraph(g *Graph) GraphSummary {
	return GraphSummary{
		App:               g.App,
		Ranks:             g.NumRanks(),
		Nodes:             g.NumNodes(),
		Edges:             g.NumEdges(),
		TotalSendBytes:    g.TotalSendBytes(),
		CriticalPathBytes: g.CriticalPathBytes(),
		MaxFanOut:         g.MaxFanOut(),
	}
}

// WriteSummaryJSON writes the digest as indented JSON.
func WriteSummaryJSON(w io.Writer, t *Trace) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(Summarize(t))
}

// WriteGraphSummaryJSON writes a graph's digest as indented JSON.
func WriteGraphSummaryJSON(w io.Writer, g *Graph) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(SummarizeGraph(g))
}

// WriteGraph serializes a dependency graph in the library's binary format.
func WriteGraph(w io.Writer, g *Graph) error {
	return gob.NewEncoder(w).Encode(g)
}

// ReadGraph deserializes a graph written by WriteGraph and validates it.
func ReadGraph(r io.Reader) (*Graph, error) {
	var g Graph
	if err := gob.NewDecoder(r).Decode(&g); err != nil {
		return nil, fmt.Errorf("trace: decode graph: %w", err)
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return &g, nil
}

// WriteGraphFile writes a graph to a file.
func WriteGraphFile(path string, g *Graph) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	bw := bufio.NewWriter(f)
	if err := WriteGraph(bw, g); err != nil {
		f.Close()
		return err
	}
	if err := bw.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadGraphFile reads a graph from a file.
func ReadGraphFile(path string) (*Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadGraph(bufio.NewReader(f))
}
