package trace

import (
	"fmt"

	"dragonfly/internal/des"
)

// KB mirrors the paper's use of 1 KB = 1024 bytes for message sizes.
const KB = 1024

// CRConfig parameterizes the crystal router generator. The crystal router
// kernel of Nek5000 performs a scalable multistage many-to-many exchange:
// stage k pairs rank i with rank i XOR 2^k, so early stages exchange within
// small neighborhoods of ranks — exactly the banded power-of-two-offset
// communication matrix of Fig. 2(a) — with a roughly constant message load
// (Fig. 2(d)).
type CRConfig struct {
	Ranks        int
	MessageBytes int64 // per-stage transfer size (paper: ~190 KB)
}

// DefaultCR is the paper's 1,000-node crystal router miniapp.
func DefaultCR() CRConfig {
	return CRConfig{Ranks: 1000, MessageBytes: 190 * KB}
}

// CR generates the crystal router trace.
func CR(cfg CRConfig) (*Trace, error) {
	if cfg.Ranks < 2 || cfg.MessageBytes < 1 {
		return nil, fmt.Errorf("trace: bad CR config %+v", cfg)
	}
	b := newBuilder(cfg.Ranks)
	stage := int32(0)
	for bit := 1; bit < cfg.Ranks; bit <<= 1 {
		for i := 0; i < cfg.Ranks; i++ {
			j := i ^ bit
			if j < cfg.Ranks && i < j {
				// Both directions of the pairwise stage exchange.
				b.exchange(i, j, cfg.MessageBytes, stage)
				b.exchange(j, i, cfg.MessageBytes, stage)
			}
		}
		b.fence()
		stage++
	}
	return b.build("CR"), nil
}

// FBConfig parameterizes the fill boundary generator. The miniapp fills
// periodic domain boundaries and ghost cells of a 3-D block decomposition:
// every rank exchanges with its six face neighbors (periodic), plus a light
// many-to-many component across the rank set (Fig. 2(b)); per-message sizes
// fluctuate strongly between MinBytes and MaxBytes (Fig. 2(e)).
type FBConfig struct {
	X, Y, Z    int   // decomposition; ranks = X*Y*Z
	Iterations int   // ghost-exchange rounds
	MinBytes   int64 // paper: 100 KB
	MaxBytes   int64 // paper: 2560 KB
	// FarPartners is the number of random distant partners per rank per
	// iteration providing the many-to-many component; FarFraction scales
	// their message size relative to the face-exchange draw.
	FarPartners int
	FarFraction float64
	Seed        int64
}

// DefaultFB is the paper's 1,000-node fill boundary miniapp. The paper does
// not state how many ghost-exchange rounds its trace covers; two rounds
// already carry ~9 GB — an order of magnitude more traffic than CR, as in
// the paper — while keeping simulations tractable.
func DefaultFB() FBConfig {
	return FBConfig{
		X: 10, Y: 10, Z: 10,
		Iterations:  2,
		MinBytes:    100 * KB,
		MaxBytes:    2560 * KB,
		FarPartners: 2,
		FarFraction: 0.1,
		Seed:        1,
	}
}

// FB generates the fill boundary trace.
func FB(cfg FBConfig) (*Trace, error) {
	n := cfg.X * cfg.Y * cfg.Z
	switch {
	case cfg.X < 1 || cfg.Y < 1 || cfg.Z < 1 || n < 2:
		return nil, fmt.Errorf("trace: bad FB decomposition %dx%dx%d", cfg.X, cfg.Y, cfg.Z)
	case cfg.Iterations < 1:
		return nil, fmt.Errorf("trace: FB needs >= 1 iteration")
	case cfg.MinBytes < 1 || cfg.MaxBytes < cfg.MinBytes:
		return nil, fmt.Errorf("trace: bad FB size range [%d,%d]", cfg.MinBytes, cfg.MaxBytes)
	case cfg.FarPartners < 0 || cfg.FarFraction < 0:
		return nil, fmt.Errorf("trace: bad FB many-to-many settings")
	}
	rng := des.NewRNG(cfg.Seed, "trace/fb")
	g := grid3{cfg.X, cfg.Y, cfg.Z}
	b := newBuilder(n)
	tag := int32(0)
	for it := 0; it < cfg.Iterations; it++ {
		for i := 0; i < n; i++ {
			for _, j := range g.faceNeighbors(i, true) {
				bytes := int64(rng.LogUniform(float64(cfg.MinBytes), float64(cfg.MaxBytes)))
				b.exchange(i, j, bytes, tag)
			}
			for p := 0; p < cfg.FarPartners; p++ {
				j := rng.Intn(n)
				if j == i {
					j = (j + 1) % n
				}
				bytes := int64(rng.LogUniform(float64(cfg.MinBytes), float64(cfg.MaxBytes)) * cfg.FarFraction)
				if bytes < 1 {
					bytes = 1
				}
				b.exchange(i, j, bytes, tag)
			}
		}
		b.fence()
		tag++
	}
	return b.build("FB"), nil
}

// AMGConfig parameterizes the algebraic multigrid generator (BoomerAMG
// derivative). Each V-cycle sweeps down and back up the level hierarchy;
// every level exchanges with up to six face neighbors (non-periodic, so
// boundary ranks have fewer — "depending on rank boundaries"), with the
// per-rank load halving per level from PeakBytes (Fig. 2(c)). The Cycles
// solve phases appear as the three short-duration surges of Fig. 2(f).
type AMGConfig struct {
	X, Y, Z int // decomposition; ranks = X*Y*Z
	Cycles  int // V-cycles (paper profile: 3 surges)
	Levels  int // multigrid levels per half-sweep
	// PeakBytes is the finest-level per-rank message load (paper: the load
	// surges peak at 75 KB per rank); it is split across the up-to-six
	// neighbor messages of the level.
	PeakBytes int64
}

// DefaultAMG is the paper's 1,728-node AMG solver.
func DefaultAMG() AMGConfig {
	return AMGConfig{X: 12, Y: 12, Z: 12, Cycles: 3, Levels: 6, PeakBytes: 75 * KB}
}

// AMG generates the algebraic multigrid trace.
func AMG(cfg AMGConfig) (*Trace, error) {
	n := cfg.X * cfg.Y * cfg.Z
	switch {
	case cfg.X < 1 || cfg.Y < 1 || cfg.Z < 1 || n < 2:
		return nil, fmt.Errorf("trace: bad AMG decomposition %dx%dx%d", cfg.X, cfg.Y, cfg.Z)
	case cfg.Cycles < 1 || cfg.Levels < 1:
		return nil, fmt.Errorf("trace: AMG needs >= 1 cycle and level")
	case cfg.PeakBytes < 1:
		return nil, fmt.Errorf("trace: bad AMG peak size %d", cfg.PeakBytes)
	}
	g := grid3{cfg.X, cfg.Y, cfg.Z}
	b := newBuilder(n)
	tag := int32(0)
	level := func(l int) {
		bytes := (cfg.PeakBytes >> uint(l)) / 6 // load split over face neighbors
		if bytes < 1 {
			bytes = 1
		}
		for i := 0; i < n; i++ {
			for _, j := range g.faceNeighbors(i, false) {
				b.exchange(i, j, bytes, tag)
			}
		}
		b.fence()
		tag++
	}
	for c := 0; c < cfg.Cycles; c++ {
		for l := 0; l < cfg.Levels; l++ { // restriction sweep
			level(l)
		}
		for l := cfg.Levels - 2; l >= 0; l-- { // prolongation sweep
			level(l)
		}
	}
	return b.build("AMG"), nil
}

// grid3 is a 3-D rank decomposition with x fastest.
type grid3 struct{ x, y, z int }

func (g grid3) rank(x, y, z int) int { return (z*g.y+y)*g.x + x }

func (g grid3) coords(r int) (x, y, z int) {
	x = r % g.x
	r /= g.x
	return x, r % g.y, r / g.y
}

// faceNeighbors returns the up-to-six face neighbors of a rank; periodic
// wraps around the domain boundary, non-periodic truncates at it.
func (g grid3) faceNeighbors(r int, periodic bool) []int {
	x, y, z := g.coords(r)
	dims := [3]int{g.x, g.y, g.z}
	pos := [3]int{x, y, z}
	var out []int
	for d := 0; d < 3; d++ {
		if dims[d] < 2 {
			continue
		}
		for _, dir := range [2]int{-1, 1} {
			p := pos
			p[d] += dir
			if p[d] < 0 || p[d] >= dims[d] {
				if !periodic || dims[d] < 3 {
					continue // dims<3 would duplicate the wrap partner
				}
				p[d] = (p[d] + dims[d]) % dims[d]
			}
			nb := g.rank(p[0], p[1], p[2])
			if nb != r {
				out = append(out, nb)
			}
		}
	}
	return out
}
