// FuzzGraph drives randomly-shaped dependency DAGs — balanced exchanges,
// chained computes, fan-in joins, arbitrary extra edges — through Validate,
// the structural stats, and the graph executor itself (on a stub fabric),
// checking the executor completes deterministically on anything Validate
// accepts. Lives in the external test package so it can import workload
// (which imports trace) without a cycle.
package trace_test

import (
	"testing"

	"dragonfly/internal/des"
	"dragonfly/internal/topology"
	"dragonfly/internal/trace"
	"dragonfly/internal/workload"
)

// fuzzStubFabric completes sends after a payload-proportional delay without
// modeling a network — enough to exercise matching, joins, and compute
// timing in the executor.
type fuzzStubFabric struct {
	eng   *des.Engine
	nodes int
}

func (s *fuzzStubFabric) Engine() *des.Engine { return s.eng }
func (s *fuzzStubFabric) NodeCount() int      { return s.nodes }

func (s *fuzzStubFabric) Send(src, dst topology.NodeID, bytes int64, onInjected, onDelivered func(des.Time)) {
	inj := s.eng.Now() + des.Time(1+bytes/64)
	del := inj + 500
	if onInjected != nil {
		s.eng.At(inj, func() { onInjected(inj) })
	}
	if onDelivered != nil {
		s.eng.At(del, func() { onDelivered(del) })
	}
}

func (s *fuzzStubFabric) AvgHops(topology.NodeID) (float64, int64) { return 0, 0 }

// buildFuzzGraph interprets data as a little graph-construction program
// that only emits structurally valid graphs: matched send/recv pairs,
// strictly-earlier ascending deps, in-range peers.
func buildFuzzGraph(data []byte) *trace.Graph {
	n := 2
	if len(data) > 0 {
		n += int(data[0]) % 3
	}
	g := &trace.Graph{App: "FUZZ", Ranks: make([][]trace.GraphNode, n)}
	add := func(rank int, node trace.GraphNode) {
		g.Ranks[rank] = append(g.Ranks[rank], node)
	}
	dep1 := func(rank int, sel byte) []int32 {
		m := len(g.Ranks[rank])
		if m == 0 || sel%2 == 0 {
			return nil
		}
		return []int32{int32(int(sel) % m)}
	}
	for i := 1; i+3 < len(data) && g.NumNodes() < 96; i += 4 {
		op, a, b, c := data[i], data[i+1], data[i+2], data[i+3]
		switch op % 3 {
		case 0: // matched exchange
			src := int(a) % n
			dst := int(b) % n
			if dst == src {
				dst = (src + 1) % n
			}
			bytes := 1 + int64(c)*7
			tag := int32(a % 5)
			add(src, trace.GraphNode{
				Kind: trace.NodeSend, Peer: int32(dst), Bytes: bytes, Tag: tag, Deps: dep1(src, c),
			})
			add(dst, trace.GraphNode{
				Kind: trace.NodeRecv, Peer: int32(src), Bytes: bytes, Tag: tag, Deps: dep1(dst, b),
			})
		case 1: // compute, possibly delayed
			rank := int(a) % n
			var delay des.Time
			if b%2 == 1 {
				delay = des.Time(c) * des.Nanosecond
			}
			add(rank, trace.GraphNode{Kind: trace.NodeCompute, Delay: delay, Deps: dep1(rank, c)})
		case 2: // fan-in join over the rank's last few nodes
			rank := int(a) % n
			m := len(g.Ranks[rank])
			width := int(c)%4 + 1
			if width > m {
				width = m
			}
			deps := make([]int32, 0, width)
			for id := m - width; id < m; id++ {
				deps = append(deps, int32(id))
			}
			add(rank, trace.GraphNode{Kind: trace.NodeCompute, Deps: deps})
		}
	}
	return g
}

// runFuzzGraph executes the graph on the stub fabric. A valid graph can
// still deadlock across ranks (mutual recv-before-send); the engine then
// simply drains with the job incomplete, which must itself be
// deterministic.
func runFuzzGraph(t *testing.T, g *trace.Graph) (bool, uint64, []des.Time) {
	t.Helper()
	eng := des.New()
	fab := &fuzzStubFabric{eng: eng, nodes: g.NumRanks()}
	nodes := make([]topology.NodeID, g.NumRanks())
	for i := range nodes {
		nodes[i] = topology.NodeID(i)
	}
	rep, err := workload.NewReplay(fab, workload.Job{Name: g.App, Graph: g, Nodes: nodes})
	if err != nil {
		t.Fatalf("NewReplay: %v", err)
	}
	rep.Start()
	eng.Run()
	return rep.Done(), eng.Processed(), rep.CommTimes()
}

func FuzzGraph(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1, 0, 0, 1, 9, 0, 1, 2, 30, 1, 3, 1, 200, 2, 0, 0, 3})
	f.Add([]byte{2, 3, 0, 1, 50, 3, 1, 0, 9, 3, 2, 1, 7, 6, 0, 2, 2, 2, 1, 1, 255})
	f.Add([]byte{0, 0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16, 17, 18, 19, 20})
	f.Fuzz(func(t *testing.T, data []byte) {
		g := buildFuzzGraph(data)
		if err := g.Validate(); err != nil {
			t.Fatalf("constructed graph invalid: %v", err)
		}
		if d := g.Digest(); d != g.Digest() {
			t.Fatal("digest unstable")
		}
		total := g.TotalSendBytes()
		var matSum int64
		for _, row := range g.Matrix(2) {
			for _, v := range row {
				matSum += int64(v)
			}
		}
		if matSum != total {
			t.Fatalf("matrix sums %d, TotalSendBytes %d", matSum, total)
		}
		if cp := g.CriticalPathBytes(); cp < 0 || cp > total {
			t.Fatalf("critical path %d outside [0, %d]", cp, total)
		}
		done1, ev1, times1 := runFuzzGraph(t, g)
		done2, ev2, times2 := runFuzzGraph(t, g)
		if done1 != done2 || ev1 != ev2 {
			t.Fatalf("nondeterministic execution: done %v/%v events %d/%d", done1, done2, ev1, ev2)
		}
		for i := range times1 {
			if times1[i] != times2[i] {
				t.Fatalf("rank %d comm time %v vs %v", i, times1[i], times2[i])
			}
			if times1[i] < 0 {
				t.Fatalf("rank %d negative comm time %v", i, times1[i])
			}
		}
	})
}
