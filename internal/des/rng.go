package des

import (
	"hash/fnv"
	"math"
	"math/rand"
)

// RNG is a deterministic random stream. Every stochastic decision in the
// simulator (placement draws, adaptive tie-breaks, Valiant intermediates,
// background destinations, trace fluctuations) pulls from a named stream so
// that adding randomness to one subsystem never perturbs another: streams
// with distinct names are statistically independent, and a (seed, name) pair
// always yields the same sequence.
type RNG struct {
	*rand.Rand
}

// NewRNG derives a stream from a root seed and a stream name.
func NewRNG(seed int64, name string) *RNG {
	h := fnv.New64a()
	_, _ = h.Write([]byte(name))
	const golden = uint64(0x9E3779B97F4A7C15)
	mixed := int64(h.Sum64() ^ (uint64(seed) * golden))
	return &RNG{rand.New(rand.NewSource(mixed))}
}

// Stream derives a child stream; the child is independent of the parent's
// consumption position.
func (r *RNG) Stream(name string) *RNG {
	return NewRNG(r.Int63(), name)
}

// IntnRange returns a uniform integer in [lo, hi] inclusive.
func (r *RNG) IntnRange(lo, hi int) int {
	if hi < lo {
		panic("des: IntnRange hi < lo")
	}
	return lo + r.Intn(hi-lo+1)
}

// Perm returns a random permutation of [0, n).
// (Promoted from math/rand; listed here for documentation discoverability.)

// LogUniform returns a value drawn log-uniformly from [lo, hi].
func (r *RNG) LogUniform(lo, hi float64) float64 {
	if lo <= 0 || hi < lo {
		panic("des: LogUniform requires 0 < lo <= hi")
	}
	if lo == hi {
		return lo
	}
	// ln-space uniform draw
	u := r.Float64()
	return lo * math.Pow(hi/lo, u)
}
