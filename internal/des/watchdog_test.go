package des

import (
	"errors"
	"strings"
	"testing"
)

// TestWatchdogEventBudget: a self-rescheduling livelock trips the event
// budget; the engine stops with the queue intact and stays stopped.
func TestWatchdogEventBudget(t *testing.T) {
	e := New()
	e.SetWatchdog(100, 0, func() string { return "model state" })
	var tick func()
	tick = func() { e.Schedule(1, tick) }
	e.Schedule(0, tick)
	e.Run()

	err := e.Tripped()
	if err == nil {
		t.Fatal("livelock did not trip the watchdog")
	}
	var w *WatchdogError
	if !errors.As(err, &w) {
		t.Fatalf("Tripped() = %T, want *WatchdogError", err)
	}
	if w.Events != 100 || w.LimitEvents != 100 {
		t.Fatalf("trip at %d events (limit %d), want 100", w.Events, w.LimitEvents)
	}
	if w.Pending == 0 {
		t.Fatal("trip report shows an empty queue for a livelocked run")
	}
	if !strings.Contains(err.Error(), "model state") {
		t.Fatalf("diagnostic missing from message: %q", err.Error())
	}
	if e.Step() {
		t.Fatal("Step executed an event on a tripped engine")
	}
	if before := e.Processed(); e.Run() >= 0 && e.Processed() != before {
		t.Fatal("Run executed events on a tripped engine")
	}
}

// TestWatchdogTimeBudget: virtual time running away past the budget trips
// before the offending event executes.
func TestWatchdogTimeBudget(t *testing.T) {
	e := New()
	e.SetWatchdog(0, 50*Microsecond, nil)
	var last Time = -1
	var tick func()
	tick = func() {
		last = e.Now()
		e.Schedule(10*Microsecond, tick)
	}
	e.Schedule(0, tick)
	e.Run()

	var w *WatchdogError
	if !errors.As(e.Tripped(), &w) {
		t.Fatalf("Tripped() = %v, want *WatchdogError", e.Tripped())
	}
	if last > 50*Microsecond {
		t.Fatalf("event executed at %v, past the %v budget", last, 50*Microsecond)
	}
	if w.LimitTime != 50*Microsecond {
		t.Fatalf("trip reports limit %v, want %v", w.LimitTime, 50*Microsecond)
	}
}

// TestWatchdogDisarmed: zero limits arm nothing; a finite run completes with
// no trip and identical results to an unwatched engine.
func TestWatchdogDisarmed(t *testing.T) {
	run := func(arm bool) (uint64, Time) {
		e := New()
		if arm {
			e.SetWatchdog(1_000_000, MaxTime, nil)
		}
		n := 0
		var tick func()
		tick = func() {
			n++
			if n < 500 {
				e.Schedule(3, tick)
			}
		}
		e.Schedule(0, tick)
		end := e.Run()
		if e.Tripped() != nil {
			t.Fatalf("finite run tripped: %v", e.Tripped())
		}
		return e.Processed(), end
	}
	p1, t1 := run(false)
	p2, t2 := run(true)
	if p1 != p2 || t1 != t2 {
		t.Fatalf("generous watchdog changed the run: (%d, %v) vs (%d, %v)", p1, t1, p2, t2)
	}
	e := New()
	e.SetWatchdog(0, 0, nil)
	e.Schedule(0, func() {})
	e.Run()
	if e.Tripped() != nil {
		t.Fatal("zero limits must disarm the watchdog")
	}
}
