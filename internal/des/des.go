// Package des provides a deterministic sequential discrete-event simulation
// engine: a time-ordered event queue with FIFO tie-breaking and named,
// reproducible random-number streams.
//
// It is the substitute for the ROSS parallel discrete-event core that CODES
// runs on. The paper uses parallel execution only for simulator speed; a
// sequential engine is bit-reproducible and sufficient at this scale.
package des

import (
	"container/heap"
	"fmt"
)

// Time is simulated time in nanoseconds.
type Time int64

// Common durations.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// Milliseconds reports t as a floating-point millisecond count, the unit the
// paper's figures use.
func (t Time) Milliseconds() float64 { return float64(t) / float64(Millisecond) }

// String formats the time with an adaptive unit.
func (t Time) String() string {
	switch {
	case t >= Second:
		return fmt.Sprintf("%.3fs", float64(t)/float64(Second))
	case t >= Millisecond:
		return fmt.Sprintf("%.3fms", float64(t)/float64(Millisecond))
	case t >= Microsecond:
		return fmt.Sprintf("%.3fus", float64(t)/float64(Microsecond))
	default:
		return fmt.Sprintf("%dns", int64(t))
	}
}

type event struct {
	at  Time
	seq uint64 // insertion order; breaks ties deterministically
	fn  func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = event{}
	*h = old[:n-1]
	return ev
}

// Engine is a sequential discrete-event simulator. The zero value is ready
// to use at time 0.
type Engine struct {
	pq        eventHeap
	now       Time
	seq       uint64
	processed uint64
	running   bool
}

// New returns a fresh engine at time 0.
func New() *Engine { return &Engine{} }

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Processed returns the number of events executed so far.
func (e *Engine) Processed() uint64 { return e.processed }

// Pending returns the number of scheduled, not-yet-executed events.
func (e *Engine) Pending() int { return len(e.pq) }

// Schedule runs fn after delay. A negative delay is an error in the caller;
// it panics, since time cannot flow backwards in a DES.
func (e *Engine) Schedule(delay Time, fn func()) {
	if delay < 0 {
		panic(fmt.Sprintf("des: negative delay %d", delay))
	}
	e.At(e.now+delay, fn)
}

// At runs fn at absolute time t (>= Now).
func (e *Engine) At(t Time, fn func()) {
	if t < e.now {
		panic(fmt.Sprintf("des: schedule at %v before now %v", t, e.now))
	}
	e.seq++
	heap.Push(&e.pq, event{at: t, seq: e.seq, fn: fn})
}

// Run executes events until the queue drains and returns the final time.
func (e *Engine) Run() Time { return e.RunUntil(Time(1<<62 - 1)) }

// RunUntil executes events with timestamp <= deadline and returns the time
// of the last executed event (or the current time if none ran). Events
// scheduled beyond the deadline stay queued.
func (e *Engine) RunUntil(deadline Time) Time {
	if e.running {
		panic("des: Run called re-entrantly from an event handler")
	}
	e.running = true
	defer func() { e.running = false }()
	for len(e.pq) > 0 && e.pq[0].at <= deadline {
		ev := heap.Pop(&e.pq).(event)
		e.now = ev.at
		e.processed++
		ev.fn()
	}
	return e.now
}

// Step executes exactly one event, reporting whether one was available.
func (e *Engine) Step() bool {
	if len(e.pq) == 0 {
		return false
	}
	ev := heap.Pop(&e.pq).(event)
	e.now = ev.at
	e.processed++
	ev.fn()
	return true
}
