// Package des provides a deterministic sequential discrete-event simulation
// engine: a time-ordered event queue with FIFO tie-breaking and named,
// reproducible random-number streams.
//
// It is the substitute for the ROSS parallel discrete-event core that CODES
// runs on. The paper uses parallel execution only for simulator speed; a
// sequential engine is bit-reproducible and sufficient at this scale.
package des

import (
	"fmt"
)

// Time is simulated time in nanoseconds.
type Time int64

// Common durations.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// MaxTime is the latest schedulable instant. Run drains the queue by running
// until MaxTime; it also serves callers that need an "unbounded" deadline for
// RunUntil. It is below math.MaxInt64 so that small offsets added to it do
// not overflow.
const MaxTime Time = 1<<62 - 1

// Milliseconds reports t as a floating-point millisecond count, the unit the
// paper's figures use.
func (t Time) Milliseconds() float64 { return float64(t) / float64(Millisecond) }

// String formats the time with an adaptive unit.
func (t Time) String() string {
	switch {
	case t >= Second:
		return fmt.Sprintf("%.3fs", float64(t)/float64(Second))
	case t >= Millisecond:
		return fmt.Sprintf("%.3fms", float64(t)/float64(Millisecond))
	case t >= Microsecond:
		return fmt.Sprintf("%.3fus", float64(t)/float64(Microsecond))
	default:
		return fmt.Sprintf("%dns", int64(t))
	}
}

// Callback is a typed event handler: a plain function pointer plus an
// opaque argument. The engine passes the event's timestamp so handlers need
// not capture it. Hot-path callers schedule a package-level function with a
// pointer-shaped arg (struct pointer, func value), which heap-allocates
// nothing; closures remain available through the At/Schedule shims for cold
// callers.
type Callback func(arg any, at Time)

type event struct {
	at  Time
	seq uint64 // insertion order; breaks ties deterministically
	cb  Callback
	arg any
}

// before reports the strict (at, seq) priority order. seq values are unique
// per engine, so two distinct events are never equal under it.
func (e event) before(o event) bool {
	if e.at != o.at {
		return e.at < o.at
	}
	return e.seq < o.seq
}

// eventQueue is an inlined 4-ary min-heap over concrete events. It replaces
// container/heap, which boxes every element in an interface{} on Push/Pop and
// calls Less/Swap through the heap.Interface method table; on the simulator's
// hot path those costs dominate. The 4-ary shape halves the tree depth of a
// binary heap, trading a few extra comparisons per level for fewer
// cache-missing levels — a win for the short-lived, high-churn queues a
// packet-level DES produces. Sift loops move a hole instead of swapping, so
// each level costs one copy rather than three.
type eventQueue struct {
	ev []event
}

func (q *eventQueue) len() int { return len(q.ev) }

func (q *eventQueue) push(e event) {
	q.ev = append(q.ev, e)
	// Sift the hole up from the new tail.
	i := len(q.ev) - 1
	for i > 0 {
		p := (i - 1) >> 2
		if !e.before(q.ev[p]) {
			break
		}
		q.ev[i] = q.ev[p]
		i = p
	}
	q.ev[i] = e
}

// pop removes and returns the minimum event. The queue must be non-empty.
func (q *eventQueue) pop() event {
	top := q.ev[0]
	n := len(q.ev) - 1
	last := q.ev[n]
	q.ev[n] = event{} // drop cb/arg references so their targets can be collected
	q.ev = q.ev[:n]
	if n > 0 {
		q.siftDown(last)
	}
	return top
}

// siftDown places e, starting from a hole at the root.
func (q *eventQueue) siftDown(e event) {
	ev := q.ev
	n := len(ev)
	i := 0
	for {
		c := i<<2 + 1
		if c >= n {
			break
		}
		end := c + 4
		if end > n {
			end = n
		}
		m := c
		for j := c + 1; j < end; j++ {
			if ev[j].before(ev[m]) {
				m = j
			}
		}
		if !ev[m].before(e) {
			break
		}
		ev[i] = ev[m]
		i = m
	}
	ev[i] = e
}

// Engine is a sequential discrete-event simulator. The zero value is ready
// to use at time 0.
type Engine struct {
	pq        eventQueue
	now       Time
	seq       uint64
	processed uint64
	running   bool
	observer  func(Time)

	// Livelock watchdog (see SetWatchdog). wdArmed folds both limits into
	// one branch on the event loop's hot path.
	wdArmed     bool
	wdMaxEvents uint64
	wdMaxTime   Time
	wdDiag      func() string
	wdErr       *WatchdogError
}

// SetObserver installs fn to be called with the timestamp of every executed
// event, before its handler runs. A nil fn removes the observer. The hook
// exists for the invariant auditor (package audit), which witnesses that
// simulated time is non-negative and monotone; it costs one nil check per
// event when unused.
func (e *Engine) SetObserver(fn func(Time)) { e.observer = fn }

// New returns a fresh engine at time 0.
func New() *Engine { return &Engine{} }

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Processed returns the number of events executed so far.
func (e *Engine) Processed() uint64 { return e.processed }

// Pending returns the number of scheduled, not-yet-executed events.
func (e *Engine) Pending() int { return e.pq.len() }

// runClosure adapts a scheduled func() to the typed event shape. A func
// value is pointer-shaped, so boxing it in the event's arg field does not
// allocate; the closure itself is the caller's (cold-path) allocation.
func runClosure(arg any, _ Time) { arg.(func())() }

// Schedule runs fn after delay. A negative delay is an error in the caller;
// it panics, since time cannot flow backwards in a DES.
func (e *Engine) Schedule(delay Time, fn func()) {
	if delay < 0 {
		panic(fmt.Sprintf("des: negative delay %d", delay))
	}
	e.AtCall(e.now+delay, runClosure, fn)
}

// At runs fn at absolute time t (>= Now). It is the closure-based shim over
// AtCall: convenient for setup and cold paths, one closure allocation per
// call when fn captures variables.
func (e *Engine) At(t Time, fn func()) {
	e.AtCall(t, runClosure, fn)
}

// ScheduleCall runs cb(arg, at) after delay. See AtCall.
func (e *Engine) ScheduleCall(delay Time, cb Callback, arg any) {
	if delay < 0 {
		panic(fmt.Sprintf("des: negative delay %d", delay))
	}
	e.AtCall(e.now+delay, cb, arg)
}

// AtCall runs cb(arg, t) at absolute time t (>= Now). This is the hot-path
// entry: with a package-level cb and a pointer-shaped arg it allocates
// nothing beyond the amortized growth of the event queue itself.
func (e *Engine) AtCall(t Time, cb Callback, arg any) {
	if t < e.now {
		panic(fmt.Sprintf("des: schedule at %v before now %v", t, e.now))
	}
	e.seq++
	e.pq.push(event{at: t, seq: e.seq, cb: cb, arg: arg})
}

// Run executes events until the queue drains and returns the final time.
func (e *Engine) Run() Time { return e.RunUntil(MaxTime) }

// RunUntil executes events with timestamp <= deadline and returns the time
// of the last executed event (or the current time if none ran). Events
// scheduled beyond the deadline stay queued.
func (e *Engine) RunUntil(deadline Time) Time {
	if e.running {
		panic("des: Run called re-entrantly from an event handler")
	}
	e.running = true
	defer func() { e.running = false }()
	for e.pq.len() > 0 && e.pq.ev[0].at <= deadline {
		if e.wdArmed && e.watchdogTrip(e.pq.ev[0].at) {
			break
		}
		ev := e.pq.pop()
		e.now = ev.at
		e.processed++
		if e.observer != nil {
			e.observer(ev.at)
		}
		ev.cb(ev.arg, ev.at)
	}
	return e.now
}

// Step executes exactly one event, reporting whether one was available.
// A tripped watchdog stops Step like it stops RunUntil.
func (e *Engine) Step() bool {
	if e.pq.len() == 0 {
		return false
	}
	if e.wdArmed && e.watchdogTrip(e.pq.ev[0].at) {
		return false
	}
	ev := e.pq.pop()
	e.now = ev.at
	e.processed++
	if e.observer != nil {
		e.observer(ev.at)
	}
	ev.cb(ev.arg, ev.at)
	return true
}
