package des

import (
	"testing"
	"testing/quick"
)

func TestRNGDeterministicBySeedAndName(t *testing.T) {
	a := NewRNG(42, "placement")
	b := NewRNG(42, "placement")
	for i := 0; i < 100; i++ {
		if a.Int63() != b.Int63() {
			t.Fatal("same (seed, name) produced different sequences")
		}
	}
}

func TestRNGNameSeparatesStreams(t *testing.T) {
	a := NewRNG(42, "placement")
	b := NewRNG(42, "routing")
	same := 0
	for i := 0; i < 100; i++ {
		if a.Int63() == b.Int63() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("streams with different names collided %d/100 times", same)
	}
}

func TestRNGSeedSeparatesStreams(t *testing.T) {
	a := NewRNG(1, "x")
	b := NewRNG(2, "x")
	same := 0
	for i := 0; i < 100; i++ {
		if a.Int63() == b.Int63() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("streams with different seeds collided %d/100 times", same)
	}
}

func TestRNGChildStreams(t *testing.T) {
	a := NewRNG(7, "root").Stream("child")
	b := NewRNG(7, "root").Stream("child")
	for i := 0; i < 50; i++ {
		if a.Int63() != b.Int63() {
			t.Fatal("derived child streams differ for same lineage")
		}
	}
}

func TestIntnRangeBounds(t *testing.T) {
	r := NewRNG(3, "bounds")
	for i := 0; i < 1000; i++ {
		v := r.IntnRange(5, 9)
		if v < 5 || v > 9 {
			t.Fatalf("IntnRange(5,9) = %d out of bounds", v)
		}
	}
	if got := r.IntnRange(4, 4); got != 4 {
		t.Fatalf("degenerate range returned %d, want 4", got)
	}
}

func TestIntnRangePanicsOnInvertedBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewRNG(0, "p").IntnRange(2, 1)
}

func TestLogUniformBoundsProperty(t *testing.T) {
	r := NewRNG(11, "logu")
	f := func(loSeed, span uint8) bool {
		lo := 1.0 + float64(loSeed)
		hi := lo * (1.0 + float64(span))
		v := r.LogUniform(lo, hi)
		return v >= lo && v <= hi
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestLogUniformDegenerate(t *testing.T) {
	r := NewRNG(11, "logu")
	if got := r.LogUniform(3, 3); got != 3 {
		t.Fatalf("LogUniform(3,3) = %v, want 3", got)
	}
}

func TestLogUniformPanicsOnBadRange(t *testing.T) {
	r := NewRNG(0, "p")
	for _, c := range []struct{ lo, hi float64 }{{0, 1}, {-1, 1}, {2, 1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("LogUniform(%v,%v): expected panic", c.lo, c.hi)
				}
			}()
			r.LogUniform(c.lo, c.hi)
		}()
	}
}
