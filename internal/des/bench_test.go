package des

import (
	"container/heap"
	"math/rand"
	"testing"
)

// BenchmarkEngineThroughput measures raw event throughput: the simulator's
// fundamental cost unit.
func BenchmarkEngineThroughput(b *testing.B) {
	e := New()
	var fire func(depth int)
	n := 0
	fire = func(depth int) {
		n++
		if depth > 0 {
			e.Schedule(1, func() { fire(depth - 1) })
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Schedule(Time(i), func() { fire(9) })
	}
	e.Run()
	b.ReportMetric(float64(n)/float64(b.N), "events/op")
}

// tickChain is the arg threaded through the typed-throughput benchmark: one
// chain of events reusing a single preallocated struct.
type tickChain struct {
	e     *Engine
	depth int
	n     *uint64
}

func fireTick(arg any, _ Time) {
	c := arg.(*tickChain)
	*c.n++
	if c.depth > 0 {
		c.depth--
		c.e.ScheduleCall(1, fireTick, c)
	}
}

// BenchmarkEngineThroughputTyped measures the same event chains as
// BenchmarkEngineThroughput through the typed (callback, arg) scheduling
// path: no closure per event, so the loop body allocates nothing beyond the
// event queue's amortized growth.
func BenchmarkEngineThroughputTyped(b *testing.B) {
	e := New()
	var n uint64
	chains := make([]tickChain, b.N)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		chains[i] = tickChain{e: e, depth: 9, n: &n}
		e.AtCall(Time(i), fireTick, &chains[i])
	}
	e.Run()
	b.ReportMetric(float64(n)/float64(b.N), "events/op")
}

func BenchmarkRNGStream(b *testing.B) {
	r := NewRNG(1, "bench")
	for i := 0; i < b.N; i++ {
		_ = r.Int63()
	}
}

// --- queue implementation comparison ----------------------------------------

// refHeap is the container/heap implementation the engine used before the
// typed 4-ary queue; it stays here as the benchmark baseline so the win (and
// any regression) is visible from one `go test -bench Queue` run.
type refHeap []event

func (h refHeap) Len() int { return len(h) }
func (h refHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h refHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *refHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *refHeap) Pop() interface{} {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = event{}
	*h = old[:n-1]
	return ev
}

// queueWorkload replays a fixed hold-model schedule (push a randomly-timed
// replacement for every pop, over a resident set of `live` events) against
// both queue implementations.
func queueWorkload(b *testing.B, live int, push func(event), pop func() event) {
	r := rand.New(rand.NewSource(42))
	var seq uint64
	now := Time(0)
	for i := 0; i < live; i++ {
		seq++
		push(event{at: Time(r.Intn(1000)), seq: seq})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev := pop()
		now = ev.at
		seq++
		push(event{at: now + Time(r.Intn(1000)+1), seq: seq})
	}
}

func BenchmarkQueueHoldModel(b *testing.B) {
	for _, live := range []int{64, 4096} {
		name := map[int]string{64: "live64", 4096: "live4096"}[live]
		b.Run("typed4ary/"+name, func(b *testing.B) {
			var q eventQueue
			queueWorkload(b, live, q.push, q.pop)
		})
		b.Run("containerheap/"+name, func(b *testing.B) {
			var h refHeap
			queueWorkload(b, live,
				func(e event) { heap.Push(&h, e) },
				func() event { return heap.Pop(&h).(event) })
		})
	}
}
