package des

import "testing"

// BenchmarkEngineThroughput measures raw event throughput: the simulator's
// fundamental cost unit.
func BenchmarkEngineThroughput(b *testing.B) {
	e := New()
	var fire func(depth int)
	n := 0
	fire = func(depth int) {
		n++
		if depth > 0 {
			e.Schedule(1, func() { fire(depth - 1) })
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Schedule(Time(i), func() { fire(9) })
	}
	e.Run()
	b.ReportMetric(float64(n)/float64(b.N), "events/op")
}

func BenchmarkRNGStream(b *testing.B) {
	r := NewRNG(1, "bench")
	for i := 0; i < b.N; i++ {
		_ = r.Int63()
	}
}
