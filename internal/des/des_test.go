package des

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestEngineZeroValueUsable(t *testing.T) {
	var e Engine
	ran := false
	e.Schedule(5, func() { ran = true })
	if got := e.Run(); got != 5 {
		t.Fatalf("Run returned %v, want 5", got)
	}
	if !ran {
		t.Fatal("event did not run")
	}
}

func TestEngineOrdering(t *testing.T) {
	e := New()
	var order []int
	e.Schedule(30, func() { order = append(order, 3) })
	e.Schedule(10, func() { order = append(order, 1) })
	e.Schedule(20, func() { order = append(order, 2) })
	e.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestEngineFIFOTieBreak(t *testing.T) {
	e := New()
	var order []int
	for i := 0; i < 100; i++ {
		i := i
		e.Schedule(42, func() { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("tie-broken order[%d] = %d, want %d (insertion order)", i, v, i)
		}
	}
}

func TestEngineNestedScheduling(t *testing.T) {
	e := New()
	var times []Time
	var chain func(depth int)
	chain = func(depth int) {
		times = append(times, e.Now())
		if depth < 5 {
			e.Schedule(7, func() { chain(depth + 1) })
		}
	}
	e.Schedule(0, func() { chain(0) })
	end := e.Run()
	if end != 35 {
		t.Fatalf("end time %v, want 35", end)
	}
	for i, tm := range times {
		if tm != Time(i*7) {
			t.Fatalf("times[%d] = %v, want %d", i, tm, i*7)
		}
	}
}

func TestEngineRunUntil(t *testing.T) {
	e := New()
	var hits []Time
	for _, d := range []Time{10, 20, 30, 40} {
		d := d
		e.Schedule(d, func() { hits = append(hits, d) })
	}
	e.RunUntil(25)
	if len(hits) != 2 {
		t.Fatalf("executed %d events by t=25, want 2", len(hits))
	}
	if e.Pending() != 2 {
		t.Fatalf("pending = %d, want 2", e.Pending())
	}
	e.Run()
	if len(hits) != 4 {
		t.Fatalf("executed %d events total, want 4", len(hits))
	}
}

func TestEngineStep(t *testing.T) {
	e := New()
	n := 0
	e.Schedule(1, func() { n++ })
	e.Schedule(2, func() { n++ })
	if !e.Step() || n != 1 {
		t.Fatalf("first Step: n=%d", n)
	}
	if !e.Step() || n != 2 {
		t.Fatalf("second Step: n=%d", n)
	}
	if e.Step() {
		t.Fatal("Step on empty queue returned true")
	}
}

func TestEngineProcessedCount(t *testing.T) {
	e := New()
	for i := 0; i < 17; i++ {
		e.Schedule(Time(i), func() {})
	}
	e.Run()
	if e.Processed() != 17 {
		t.Fatalf("Processed = %d, want 17", e.Processed())
	}
}

func TestNegativeDelayPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for negative delay")
		}
	}()
	New().Schedule(-1, func() {})
}

func TestAtBeforeNowPanics(t *testing.T) {
	e := New()
	e.Schedule(100, func() {
		defer func() {
			if recover() == nil {
				t.Error("expected panic for At in the past")
			}
		}()
		e.At(50, func() {})
	})
	e.Run()
}

// Property: for any batch of delays, events execute in nondecreasing time
// order and the engine clock matches each event's scheduled time.
func TestEngineMonotonicClockProperty(t *testing.T) {
	f := func(delays []uint16) bool {
		e := New()
		var seen []Time
		for _, d := range delays {
			d := Time(d)
			e.Schedule(d, func() {
				seen = append(seen, e.Now())
			})
		}
		e.Run()
		if len(seen) != len(delays) {
			return false
		}
		if !sort.SliceIsSorted(seen, func(i, j int) bool { return seen[i] < seen[j] }) {
			return false
		}
		want := make([]Time, len(delays))
		for i, d := range delays {
			want[i] = Time(d)
		}
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		for i := range want {
			if seen[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: the typed 4-ary queue drains any push/pop interleaving in exact
// (at, seq) order — the contract container/heap used to provide.
func TestEventQueueOrderProperty(t *testing.T) {
	f := func(ats []uint16, popEvery uint8) bool {
		var q eventQueue
		var drained []event
		interval := int(popEvery%7) + 2
		var seq uint64
		for i, at := range ats {
			seq++
			q.push(event{at: Time(at), seq: seq})
			if i%interval == 0 && q.len() > 0 {
				drained = append(drained, q.pop())
			}
		}
		for q.len() > 0 {
			drained = append(drained, q.pop())
		}
		if len(drained) != len(ats) {
			return false
		}
		// Each pop must yield the minimum of what was resident, so any
		// element popped later with a strictly earlier key would have been
		// pushed after — i.e. within a drain run order is nondecreasing, and
		// globally each event's key must not precede the previous pop's key
		// unless it was pushed later.
		seen := make(map[uint64]int, len(drained))
		for i, e := range drained {
			seen[e.seq] = i
		}
		for i := 1; i < len(drained); i++ {
			a, b := drained[i-1], drained[i]
			if b.before(a) && b.seq < a.seq {
				return false // b was already resident when a popped
			}
			_ = seen
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestMaxTime(t *testing.T) {
	if MaxTime != Time(1<<62-1) {
		t.Fatalf("MaxTime = %d", int64(MaxTime))
	}
	e := New()
	hit := false
	e.At(MaxTime, func() { hit = true })
	if got := e.Run(); got != MaxTime {
		t.Fatalf("Run returned %v, want MaxTime", got)
	}
	if !hit {
		t.Fatal("event at MaxTime did not run under Run()")
	}
}

func TestTimeString(t *testing.T) {
	cases := []struct {
		t    Time
		want string
	}{
		{500, "500ns"},
		{2 * Microsecond, "2.000us"},
		{3 * Millisecond, "3.000ms"},
		{4 * Second, "4.000s"},
	}
	for _, c := range cases {
		if got := c.t.String(); got != c.want {
			t.Errorf("%d.String() = %q, want %q", int64(c.t), got, c.want)
		}
	}
}

func TestTimeMilliseconds(t *testing.T) {
	if got := (1500 * Microsecond).Milliseconds(); got != 1.5 {
		t.Fatalf("Milliseconds = %v, want 1.5", got)
	}
}

func TestHeavyInterleavedLoad(t *testing.T) {
	// Stress the heap with randomized scheduling from inside handlers.
	e := New()
	r := rand.New(rand.NewSource(1))
	count := 0
	var spawn func(budget int)
	spawn = func(budget int) {
		count++
		if budget <= 0 {
			return
		}
		kids := r.Intn(3)
		for i := 0; i < kids; i++ {
			e.Schedule(Time(r.Intn(100)+1), func() { spawn(budget - 1) })
		}
	}
	for i := 0; i < 50; i++ {
		e.Schedule(Time(r.Intn(1000)), func() { spawn(6) })
	}
	e.Run()
	if count < 50 {
		t.Fatalf("ran %d events, want >= 50", count)
	}
	if e.Pending() != 0 {
		t.Fatalf("pending = %d after Run", e.Pending())
	}
}
