package des

import "fmt"

// WatchdogError reports a tripped simulation watchdog: the run exceeded its
// event-count or virtual-time budget, which in a drain-to-empty simulator
// means livelock (events breeding events) or a stall that keeps rescheduling
// itself. The error carries the engine state at the trip point plus the
// model's own diagnostic, so the failure is debuggable from the message
// alone rather than from a hung process.
type WatchdogError struct {
	Events      uint64 // events executed when the watchdog fired
	Now         Time   // virtual time of the last executed event
	Pending     int    // events still queued
	LimitEvents uint64 // configured event budget (0 = unlimited)
	LimitTime   Time   // configured virtual-time budget (0 = unlimited)
	Diagnostic  string // model-supplied state dump, may be empty
}

func (w *WatchdogError) Error() string {
	s := fmt.Sprintf("des: watchdog tripped after %d events at t=%v (%d pending; limits: %d events, %v)",
		w.Events, w.Now, w.Pending, w.LimitEvents, w.LimitTime)
	if w.Diagnostic != "" {
		s += "\n" + w.Diagnostic
	}
	return s
}

// SetWatchdog arms (or with zero limits disarms) the engine's livelock
// watchdog. A run trips when it has executed maxEvents events, or when the
// next event's timestamp exceeds maxTime; either limit is unlimited at 0.
// On a trip the engine stops executing — RunUntil returns with the queue
// intact — and Tripped reports a WatchdogError built with diag's output
// (diag may be nil). A tripped engine stays stopped: further Run/Step calls
// execute nothing. Disarmed, the watchdog costs one predictable branch per
// event.
func (e *Engine) SetWatchdog(maxEvents uint64, maxTime Time, diag func() string) {
	e.wdMaxEvents = maxEvents
	e.wdMaxTime = maxTime
	e.wdDiag = diag
	e.wdArmed = maxEvents > 0 || maxTime > 0
}

// Tripped returns the WatchdogError if the watchdog has fired, else nil.
func (e *Engine) Tripped() error {
	if e.wdErr == nil {
		return nil // typed nil must not escape into a non-nil error interface
	}
	return e.wdErr
}

// watchdogTrip reports whether the engine must stop before executing the
// event scheduled at next, recording the error on the first trip. Called
// only when armed, so the healthy path pays a single flag check.
func (e *Engine) watchdogTrip(next Time) bool {
	if e.wdErr != nil {
		return true
	}
	if (e.wdMaxEvents == 0 || e.processed < e.wdMaxEvents) &&
		(e.wdMaxTime == 0 || next <= e.wdMaxTime) {
		return false
	}
	var diag string
	if e.wdDiag != nil {
		diag = e.wdDiag()
	}
	e.wdErr = &WatchdogError{
		Events:      e.processed,
		Now:         e.now,
		Pending:     e.pq.len(),
		LimitEvents: e.wdMaxEvents,
		LimitTime:   e.wdMaxTime,
		Diagnostic:  diag,
	}
	return true
}
