// Package cliutil centralizes flag parsing and validation for the cmd/
// binaries. Every parser returns a plain value plus a one-line error that
// names the valid choices, so each command reports flag mistakes identically
// and a single table-driven test covers the whole surface; none of them
// panics or exits. Usagef is the one place that terminates: commands route
// flag-validation failures through it to exit with the conventional usage
// status 2, keeping status 1 for runtime failures.
package cliutil

import (
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"dragonfly/internal/chaos"
	"dragonfly/internal/faults"
	"dragonfly/internal/mapping"
	"dragonfly/internal/par"
	"dragonfly/internal/placement"
	"dragonfly/internal/routing"
	"dragonfly/internal/topology"
	"dragonfly/internal/trace"
	"dragonfly/internal/workload"
)

// Usagef reports a flag-validation error on stderr as "cmd: message" and
// exits with status 2 (the usage exit code, distinct from runtime failures).
func Usagef(cmd, format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, cmd+": "+format+"\n", args...)
	os.Exit(2)
}

// Machine resolves the -topo flag (with -machine as its deprecated alias)
// to a machine preset, applying fallback when both are empty.
func Machine(topo, machine, fallback string) (topology.Machine, error) {
	name := topo
	if name == "" {
		name = machine
	}
	if name == "" {
		name = fallback
	}
	m, err := topology.Preset(name)
	if err != nil {
		return nil, fmt.Errorf("machine %q: want %s", name, strings.Join(topology.PresetNames(), ", "))
	}
	return m, nil
}

// App parses one application name against the single built-in registry —
// the paper's flat miniapps plus the dependency-graph generators — so every
// command's -app grammar (and its unknown-app error) shows one app set.
func App(s string) (string, error) {
	name, err := trace.ParseApp(s)
	if err != nil {
		return "", fmt.Errorf("app %q: want %s", strings.TrimSpace(s), strings.Join(trace.Apps(), ", "))
	}
	return name, nil
}

// Apps parses a comma-separated application sweep list.
func Apps(csv string) ([]string, error) {
	var names []string
	for _, s := range strings.Split(csv, ",") {
		n, err := App(s)
		if err != nil {
			return nil, err
		}
		names = append(names, n)
	}
	return names, nil
}

// Placement parses one placement policy name.
func Placement(s string) (placement.Policy, error) {
	p, err := placement.Parse(strings.TrimSpace(s))
	if err != nil {
		return 0, fmt.Errorf("placement %q: want cont, cab, chas, rotr, or rand", strings.TrimSpace(s))
	}
	return p, nil
}

// Placements parses a comma-separated placement sweep list.
func Placements(csv string) ([]placement.Policy, error) {
	var pols []placement.Policy
	for _, s := range strings.Split(csv, ",") {
		p, err := Placement(s)
		if err != nil {
			return nil, err
		}
		pols = append(pols, p)
	}
	return pols, nil
}

// Routing parses one routing policy name. The error enumerates the full
// built-in policy set, so a typo'd -routing always shows what exists.
func Routing(s string) (routing.Mechanism, error) {
	m, err := routing.ParseMechanism(strings.TrimSpace(s))
	if err != nil {
		names := routing.PolicyNames()
		return 0, fmt.Errorf("routing %q: want %s, or %s",
			strings.TrimSpace(s), strings.Join(names[:len(names)-1], ", "), names[len(names)-1])
	}
	return m, nil
}

// Routings parses a comma-separated routing sweep list.
func Routings(csv string) ([]routing.Mechanism, error) {
	var mechs []routing.Mechanism
	for _, s := range strings.Split(csv, ",") {
		m, err := Routing(s)
		if err != nil {
			return nil, err
		}
		mechs = append(mechs, m)
	}
	return mechs, nil
}

// Mapping parses a task-mapping policy name.
func Mapping(s string) (mapping.Policy, error) {
	p, err := mapping.Parse(strings.TrimSpace(s))
	if err != nil {
		var names []string
		for _, m := range mapping.All() {
			names = append(names, m.String())
		}
		return 0, fmt.Errorf("mapping %q: want %s", strings.TrimSpace(s), strings.Join(names, ", "))
	}
	return p, nil
}

// Background parses the -background flag: on reports whether synthetic
// interference is enabled at all ("none" disables it).
func Background(s string) (kind workload.BackgroundKind, on bool, err error) {
	switch strings.TrimSpace(s) {
	case "none", "":
		return 0, false, nil
	case "uniform":
		return workload.UniformRandom, true, nil
	case "bursty":
		return workload.Bursty, true, nil
	}
	return 0, false, fmt.Errorf("background %q: want none, uniform, or bursty", strings.TrimSpace(s))
}

// ScaleShape parses the -scale-shape flag into a synthesized big machine:
// "family" or "family:routers" (e.g. "df:20000"), where an explicit
// ":routers" suffix overrides the routers argument (the -routers flag).
func ScaleShape(s string, routers int) (topology.Machine, error) {
	name := strings.TrimSpace(s)
	if base, count, ok := strings.Cut(name, ":"); ok {
		n, err := strconv.Atoi(strings.TrimSpace(count))
		if err != nil {
			return nil, fmt.Errorf("scale shape %q: router count %q is not a number (want e.g. df:20000)", s, count)
		}
		name, routers = strings.TrimSpace(base), n
	}
	m, err := topology.ScaleConfig(name, routers)
	if err != nil {
		return nil, fmt.Errorf("scale shape %q: %s (want df or dfplus, optionally :ROUTERS, with -routers >= 1)",
			s, strings.TrimPrefix(err.Error(), "topology: "))
	}
	return m, nil
}

// ScaleShapes parses a comma-separated -scale-shape sweep list.
func ScaleShapes(csv string, routers int) ([]topology.Machine, error) {
	var ms []topology.Machine
	for _, s := range strings.Split(csv, ",") {
		m, err := ScaleShape(s, routers)
		if err != nil {
			return nil, err
		}
		ms = append(ms, m)
	}
	return ms, nil
}

// BuildWorkers validates the -build-workers flag and installs it as the
// machine-construction worker count (0 restores the default of all CPUs),
// returning the effective pool size.
func BuildWorkers(n int) (int, error) {
	if n < 0 {
		return 0, fmt.Errorf("build workers %d: want 0 (all CPUs) or a positive count", n)
	}
	par.SetWorkers(n)
	return par.Workers(), nil
}

// Mappings parses a comma-separated task-mapping sweep list.
func Mappings(csv string) ([]mapping.Policy, error) {
	var pols []mapping.Policy
	for _, s := range strings.Split(csv, ",") {
		p, err := Mapping(s)
		if err != nil {
			return nil, err
		}
		pols = append(pols, p)
	}
	return pols, nil
}

// Shard parses the -shard flag: "i/n" selects shard i of n (0 <= i < n);
// the empty string means unsharded (0 of 1).
func Shard(s string) (shard, numShards int, err error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return 0, 1, nil
	}
	i, n, ok := strings.Cut(s, "/")
	if !ok {
		return 0, 0, fmt.Errorf("shard %q: want I/N (e.g. 0/4)", s)
	}
	shard, err1 := strconv.Atoi(strings.TrimSpace(i))
	numShards, err2 := strconv.Atoi(strings.TrimSpace(n))
	if err1 != nil || err2 != nil || numShards < 1 || shard < 0 || shard >= numShards {
		return 0, 0, fmt.Errorf("shard %q: want I/N with 0 <= I < N", s)
	}
	return shard, numShards, nil
}

// Int64List parses a comma-separated integer sweep list (e.g. -seeds).
func Int64List(flagName, csv string) ([]int64, error) {
	var out []int64
	for _, s := range strings.Split(csv, ",") {
		v, err := strconv.ParseInt(strings.TrimSpace(s), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("%s %q: %q is not an integer", flagName, csv, strings.TrimSpace(s))
		}
		out = append(out, v)
	}
	return out, nil
}

// FloatList parses a comma-separated float sweep list (e.g. -msg-scales).
func FloatList(flagName, csv string) ([]float64, error) {
	var out []float64
	for _, s := range strings.Split(csv, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
		if err != nil {
			return nil, fmt.Errorf("%s %q: %q is not a number", flagName, csv, strings.TrimSpace(s))
		}
		out = append(out, v)
	}
	return out, nil
}

// FaultSpecs parses a semicolon-separated fault-spec sweep list (each
// element uses the FaultSpec grammar, whose clauses are comma-separated;
// "none" or an empty element means the healthy fabric). An empty string
// yields the single-element healthy sweep, so a cross product over the
// result always includes the undegraded machine exactly once.
func FaultSpecs(text string, seed int64) ([]*faults.Spec, error) {
	var specs []*faults.Spec
	for _, s := range strings.Split(text, ";") {
		s = strings.TrimSpace(s)
		if s == "none" {
			s = ""
		}
		sp, err := FaultSpec(s, seed)
		if err != nil {
			return nil, err
		}
		if sp.Empty() {
			sp = nil
		}
		specs = append(specs, sp)
	}
	return specs, nil
}

// FaultSpec parses the -faults grammar (see faults.ParseSpec) and applies
// the -fault-seed override when seed is non-zero. An empty string yields the
// empty spec, which downstream layers skip entirely.
func FaultSpec(text string, seed int64) (*faults.Spec, error) {
	s, err := faults.ParseSpec(text)
	if err != nil {
		return nil, fmt.Errorf("faults %q: %s (clauses: global=FRAC, local=FRAC, routers=K, router=ID, link=A-B, group=G, bundle=G1-G2, flap=link:A-B@MTBF:MTTR or router:ID@MTBF:MTTR, until=DUR, fail|repair=link:A-B|router:ID|group:G|bundle:G1-G2@DUR, seed=N)",
			text, strings.TrimPrefix(err.Error(), "faults: "))
	}
	if seed != 0 {
		s.Seed = seed
	}
	return s, nil
}

// Retries validates the -retries flag: bounded re-attempts per failing
// sweep cell before the cell's error (or quarantine) stands.
func Retries(n int) (int, error) {
	if n < 0 {
		return 0, fmt.Errorf("retries %d: want 0 (fail on first error) or a positive re-attempt count", n)
	}
	return n, nil
}

// JobTimeout validates the -job-timeout flag: the per-cell wall-clock
// budget, 0 disabling it.
func JobTimeout(d time.Duration) (time.Duration, error) {
	if d < 0 {
		return 0, fmt.Errorf("job timeout %v: want 0 (no wall-clock budget) or a positive duration", d)
	}
	return d, nil
}

// QuarantineLimit validates the -quarantine-limit flag: how many poisoned
// cells a sweep tolerates (quarantining each and continuing) before it
// fails outright; 0 disables quarantine so the first exhausted cell is
// fatal.
func QuarantineLimit(n int) (int, error) {
	if n < 0 {
		return 0, fmt.Errorf("quarantine limit %d: want 0 (quarantine disabled) or a positive poisoned-cell budget", n)
	}
	return n, nil
}

// ChaosSpec parses the -chaos fault-injection grammar (see chaos.ParseSpec).
func ChaosSpec(text string) (*chaos.Spec, error) {
	s, err := chaos.ParseSpec(text)
	if err != nil {
		return nil, fmt.Errorf("chaos %q: %s (clauses: SITE=PROB for sites store.read, store.write, worker.panic, worker.kill, sim.stall; max=K, seed=N)",
			text, strings.TrimPrefix(err.Error(), "chaos: "))
	}
	return s, nil
}
