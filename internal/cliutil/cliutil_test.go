package cliutil

import (
	"strings"
	"testing"
	"time"

	"dragonfly/internal/mapping"
	"dragonfly/internal/placement"
	"dragonfly/internal/routing"
	"dragonfly/internal/workload"
)

// TestParsers is the table-driven sweep over every flag parser the commands
// share: each bad input must produce a one-line error that names the valid
// choices (so the user never needs the source to fix a typo), and no input
// may panic.
func TestParsers(t *testing.T) {
	tests := []struct {
		name    string
		parse   func() (interface{}, error)
		want    interface{} // ignored when wantErr is non-empty
		wantErr string      // substring the error must contain
	}{
		{"machine/theta", func() (interface{}, error) { m, err := Machine("theta", "", "mini"); return label(m), err }, "dragonfly:g9-r6x16-n4", ""},
		{"machine/deprecated-alias", func() (interface{}, error) { m, err := Machine("", "mini", "theta"); return label(m), err }, "dragonfly:g4-r2x4-n2", ""},
		{"machine/fallback", func() (interface{}, error) { m, err := Machine("", "", "dfplus-mini"); return label(m), err }, "dragonfly+:g5-l8-s4-n4", ""},
		{"machine/unknown", func() (interface{}, error) { m, err := Machine("summit", "", "theta"); return label(m), err }, nil, "want dfplus, dfplus-mini, mini, theta"},

		{"app/flat", func() (interface{}, error) { return App("CR") }, "CR", ""},
		{"app/lowercase", func() (interface{}, error) { return App(" amg ") }, "AMG", ""},
		{"app/graph", func() (interface{}, error) { return App("ring") }, "RING", ""},
		{"app/unknown", func() (interface{}, error) { return App("LINPACK") }, nil, "want CR, FB, AMG, RING, TREE, MOE, HALO2D, HALO3D, CKPT"},
		{"apps/list", func() (interface{}, error) { a, err := Apps("CR, ring ,ckpt"); return len(a), err }, 3, ""},
		{"apps/bad-element", func() (interface{}, error) { return Apps("CR,LINPACK") }, nil, "want CR, FB, AMG, RING, TREE, MOE, HALO2D, HALO3D, CKPT"},
		{"apps/empty", func() (interface{}, error) { return Apps("") }, nil, "want CR, FB, AMG"},

		{"placement/one", func() (interface{}, error) { return Placement(" rand ") }, placement.RandomNode, ""},
		{"placement/unknown", func() (interface{}, error) { return Placement("spiral") }, nil, "want cont, cab, chas, rotr, or rand"},
		{"placements/list", func() (interface{}, error) { p, err := Placements("cont, rand"); return len(p), err }, 2, ""},
		{"placements/bad-element", func() (interface{}, error) { return Placements("cont,spiral") }, nil, `placement "spiral"`},
		{"placements/empty", func() (interface{}, error) { return Placements("") }, nil, "want cont"},

		{"routing/min", func() (interface{}, error) { return Routing("min") }, routing.Minimal, ""},
		{"routing/qadaptive", func() (interface{}, error) { return Routing(" qadaptive ") }, routing.QAdaptive, ""},
		{"routing/qadp-alias", func() (interface{}, error) { return Routing("qadp") }, routing.QAdaptive, ""},
		{"routing/unknown", func() (interface{}, error) { return Routing("ugal5") }, nil, "want min, adp, or qadaptive"},
		{"routings/list", func() (interface{}, error) { m, err := Routings("min,adp,qadaptive"); return len(m), err }, 3, ""},
		{"routings/bad-element", func() (interface{}, error) { return Routings("min,") }, nil, "want min, adp, or qadaptive"},

		{"mapping/identity", func() (interface{}, error) { return Mapping("identity") }, mapping.Identity, ""},
		{"mapping/unknown", func() (interface{}, error) { return Mapping("hilbert") }, nil, "want identity, shuffle, router-packed, group-packed"},

		{"background/none", func() (interface{}, error) { _, on, err := Background("none"); return on, err }, false, ""},
		{"background/uniform", func() (interface{}, error) { k, _, err := Background("uniform"); return k, err }, workload.UniformRandom, ""},
		{"background/bursty", func() (interface{}, error) { k, _, err := Background("bursty"); return k, err }, workload.Bursty, ""},
		{"background/unknown", func() (interface{}, error) { _, _, err := Background("storm"); return nil, err }, nil, "want none, uniform, or bursty"},

		{"scale-shape/family-only", func() (interface{}, error) { m, err := ScaleShape("df", 2000); return label(m), err }, "dragonfly:g21-r6x16-n1", ""},
		{"scale-shape/explicit-count", func() (interface{}, error) { m, err := ScaleShape(" dfplus:360 ", 2000); return label(m), err }, "dragonfly+:g10-l24-s12-n1", ""},
		{"scale-shape/unknown-family", func() (interface{}, error) { return ScaleShape("torus:100", 0) }, nil, "want df or dfplus"},
		{"scale-shape/bad-count", func() (interface{}, error) { return ScaleShape("df:many", 0) }, nil, "not a number"},
		{"scale-shape/zero-routers", func() (interface{}, error) { return ScaleShape("df", 0) }, nil, "-routers >= 1"},
		{"scale-shapes/list", func() (interface{}, error) { ms, err := ScaleShapes("df:200,dfplus:300", 0); return len(ms), err }, 2, ""},
		{"scale-shapes/bad-element", func() (interface{}, error) { return ScaleShapes("df:200,ring", 0) }, nil, "want df or dfplus"},

		{"build-workers/default", func() (interface{}, error) { n, err := BuildWorkers(0); return n > 0, err }, true, ""},
		{"build-workers/explicit", func() (interface{}, error) { defer BuildWorkers(0); return BuildWorkers(3) }, 3, ""},
		{"build-workers/negative", func() (interface{}, error) { return BuildWorkers(-2) }, nil, "want 0 (all CPUs) or a positive count"},

		{"faults/empty", func() (interface{}, error) { s, err := FaultSpec("", 0); return s.Empty(), err }, true, ""},
		{"faults/spec", func() (interface{}, error) { s, err := FaultSpec("global=0.25,seed=9", 0); return s.Seed, err }, int64(9), ""},
		{"faults/seed-override", func() (interface{}, error) { s, err := FaultSpec("global=0.25,seed=9", 4); return s.Seed, err }, int64(4), ""},
		{"faults/bad-clause", func() (interface{}, error) { return FaultSpec("global=2", 0) }, nil, "clauses: global=FRAC"},
		{"faults/unknown-key", func() (interface{}, error) { return FaultSpec("cables=3", 0) }, nil, "clauses: global=FRAC"},

		{"mappings/list", func() (interface{}, error) { p, err := Mappings("identity, shuffle"); return len(p), err }, 2, ""},
		{"mappings/bad-element", func() (interface{}, error) { return Mappings("identity,hilbert") }, nil, "want identity, shuffle"},

		{"shard/empty", func() (interface{}, error) { i, n, err := Shard(""); return [2]int{i, n}, err }, [2]int{0, 1}, ""},
		{"shard/of-four", func() (interface{}, error) { i, n, err := Shard(" 2/4 "); return [2]int{i, n}, err }, [2]int{2, 4}, ""},
		{"shard/no-slash", func() (interface{}, error) { _, _, err := Shard("3"); return nil, err }, nil, "want I/N"},
		{"shard/out-of-range", func() (interface{}, error) { _, _, err := Shard("4/4"); return nil, err }, nil, "0 <= I < N"},
		{"shard/negative", func() (interface{}, error) { _, _, err := Shard("-1/4"); return nil, err }, nil, "0 <= I < N"},
		{"shard/zero-shards", func() (interface{}, error) { _, _, err := Shard("0/0"); return nil, err }, nil, "0 <= I < N"},

		{"int64list/list", func() (interface{}, error) { v, err := Int64List("seeds", "1, 2,3"); return len(v), err }, 3, ""},
		{"int64list/bad", func() (interface{}, error) { return Int64List("seeds", "1,two") }, nil, `"two" is not an integer`},

		{"floatlist/list", func() (interface{}, error) { v, err := FloatList("msg-scales", "0.5,1,2"); return len(v), err }, 3, ""},
		{"floatlist/bad", func() (interface{}, error) { return FloatList("msg-scales", "1,half") }, nil, `"half" is not a number`},

		{"faultspecs/empty", func() (interface{}, error) { s, err := FaultSpecs("", 0); return len(s) == 1 && s[0] == nil, err }, true, ""},
		{"faultspecs/none", func() (interface{}, error) { s, err := FaultSpecs("none", 0); return len(s) == 1 && s[0] == nil, err }, true, ""},
		{"faultspecs/sweep", func() (interface{}, error) {
			s, err := FaultSpecs("none;global=0.1;global=0.2,seed=3", 0)
			return len(s) == 3 && s[0] == nil && s[1] != nil && s[2].Seed == 3, err
		}, true, ""},
		{"faultspecs/bad-element", func() (interface{}, error) { return FaultSpecs("global=0.1;cables=2", 0) }, nil, "clauses: global=FRAC"},

		{"faults/flap", func() (interface{}, error) {
			s, err := FaultSpec("flap=link:0-1@100us:50us,until=2ms", 0)
			return len(s.Flaps) == 1 && s.FlapUntil == 2_000_000, err
		}, true, ""},
		{"faults/group-bundle", func() (interface{}, error) {
			s, err := FaultSpec("group=1,bundle=0-2", 0)
			return len(s.FailGroups) == 1 && len(s.FailBundles) == 1, err
		}, true, ""},
		{"faults/flap-missing-mttr", func() (interface{}, error) { return FaultSpec("flap=link:0-1@100us", 0) }, nil, "flap=link:A-B@MTBF:MTTR"},
		{"faults/bad-bundle", func() (interface{}, error) { return FaultSpec("bundle=3", 0) }, nil, "bundle=G1-G2"},

		{"retries/zero", func() (interface{}, error) { return Retries(0) }, 0, ""},
		{"retries/positive", func() (interface{}, error) { return Retries(3) }, 3, ""},
		{"retries/negative", func() (interface{}, error) { return Retries(-1) }, nil, "want 0 (fail on first error) or a positive"},

		{"job-timeout/zero", func() (interface{}, error) { return JobTimeout(0) }, time.Duration(0), ""},
		{"job-timeout/positive", func() (interface{}, error) { return JobTimeout(5 * time.Minute) }, 5 * time.Minute, ""},
		{"job-timeout/negative", func() (interface{}, error) { return JobTimeout(-time.Second) }, nil, "want 0 (no wall-clock budget) or a positive"},

		{"quarantine-limit/zero", func() (interface{}, error) { return QuarantineLimit(0) }, 0, ""},
		{"quarantine-limit/positive", func() (interface{}, error) { return QuarantineLimit(2) }, 2, ""},
		{"quarantine-limit/negative", func() (interface{}, error) { return QuarantineLimit(-3) }, nil, "want 0 (quarantine disabled) or a positive"},

		{"chaos/empty", func() (interface{}, error) { s, err := ChaosSpec(""); return s.Empty(), err }, true, ""},
		{"chaos/spec", func() (interface{}, error) {
			s, err := ChaosSpec("worker.kill=0.5,store.read=0.1,max=1,seed=7")
			return len(s.Probability) == 2 && s.MaxPerKey == 1 && s.Seed == 7, err
		}, true, ""},
		{"chaos/unknown-site", func() (interface{}, error) { return ChaosSpec("disk.melt=1") }, nil, "sites store.read, store.write, worker.panic, worker.kill, sim.stall"},
		{"chaos/bad-probability", func() (interface{}, error) { return ChaosSpec("worker.kill=2") }, nil, "SITE=PROB"},
	}
	for _, tc := range tests {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			got, err := tc.parse()
			if tc.wantErr != "" {
				if err == nil {
					t.Fatalf("accepted invalid input (got %v)", got)
				}
				if !strings.Contains(err.Error(), tc.wantErr) {
					t.Fatalf("error %q does not name the valid choices (want substring %q)", err, tc.wantErr)
				}
				if strings.Contains(err.Error(), "\n") {
					t.Fatalf("error is not one line: %q", err)
				}
				return
			}
			if err != nil {
				t.Fatalf("rejected valid input: %v", err)
			}
			if got != tc.want {
				t.Fatalf("got %v, want %v", got, tc.want)
			}
		})
	}
}

func label(m interface{ Label() string }) interface{} {
	if m == nil {
		return nil
	}
	return m.Label()
}
