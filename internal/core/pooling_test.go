package core

import (
	"reflect"
	"testing"

	"dragonfly/internal/placement"
	"dragonfly/internal/routing"
)

// The allocation-avoidance machinery — the fabric's packet/credit free
// lists and the router path cache + hop arena — must be invisible to the
// model: every Result field has to match the allocate-fresh configuration
// exactly, for both routing mechanisms (minimal exercises the path cache,
// adaptive additionally the candidate scratch, the Valiant mid-router draw
// ordering, and arena recycling of losing candidates).
func TestPoolingDoesNotChangeResults(t *testing.T) {
	tr := miniCR(t)
	cells := []Cell{
		{placement.RandomNode, routing.Minimal},
		{placement.RandomNode, routing.Adaptive},
		{placement.Contiguous, routing.Adaptive},
		// qadaptive routes through the same candidate scratch and arena, and
		// its Q-table must see the same decision sequence either way.
		{placement.RandomNode, routing.QAdaptive},
	}
	for _, cell := range cells {
		cfg := MiniConfig(tr, cell, 11)
		cfg.Audit = true
		pooled, err := Run(cfg)
		if err != nil {
			t.Fatalf("%s pooled: %v", cell.Name(), err)
		}

		cfg.Params.NoPacketPool = true
		cfg.Params.Route.NoCache = true
		fresh, err := Run(cfg)
		if err != nil {
			t.Fatalf("%s fresh: %v", cell.Name(), err)
		}

		if pooled.Duration != fresh.Duration || pooled.Events != fresh.Events {
			t.Fatalf("%s: pooled run (%v, %d events) differs from fresh (%v, %d events)",
				cell.Name(), pooled.Duration, pooled.Events, fresh.Duration, fresh.Events)
		}
		if !reflect.DeepEqual(pooled.CommTimes, fresh.CommTimes) {
			t.Errorf("%s: per-rank comm times differ with pooling", cell.Name())
		}
		if !reflect.DeepEqual(pooled.AvgHops, fresh.AvgHops) {
			t.Errorf("%s: per-rank hop averages differ with pooling", cell.Name())
		}
		if !reflect.DeepEqual(pooled.Links, fresh.Links) {
			t.Errorf("%s: link statistics differ with pooling", cell.Name())
		}
		if pooled.Audit == nil || len(pooled.Audit.Violations) != 0 {
			t.Errorf("%s: auditor flagged the pooled run: %v", cell.Name(), pooled.Audit)
		}
	}
}
