package core

import (
	"testing"

	"dragonfly/internal/des"
	"dragonfly/internal/placement"
	"dragonfly/internal/routing"
	"dragonfly/internal/stats"
	"dragonfly/internal/topology"
	"dragonfly/internal/trace"
	"dragonfly/internal/workload"
)

func miniCR(t *testing.T) *trace.Trace {
	t.Helper()
	tr, err := trace.CR(trace.CRConfig{Ranks: 32, MessageBytes: 16 * trace.KB})
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestRunSmokeAllCells(t *testing.T) {
	tr := miniCR(t)
	for _, cell := range AllCells() {
		res, err := Run(MiniConfig(tr, cell, 1))
		if err != nil {
			t.Fatalf("%s: %v", cell.Name(), err)
		}
		if !res.Completed {
			t.Fatalf("%s: run did not complete", cell.Name())
		}
		if len(res.CommTimes) != tr.NumRanks() {
			t.Fatalf("%s: %d comm times for %d ranks", cell.Name(), len(res.CommTimes), tr.NumRanks())
		}
		if res.MaxCommTime() <= 0 {
			t.Fatalf("%s: nonpositive max comm time", cell.Name())
		}
		for i, h := range res.AvgHops {
			if h < 1 || h > 6 {
				t.Fatalf("%s: rank %d avg hops %v", cell.Name(), i, h)
			}
		}
		if res.Events == 0 || res.Duration <= 0 {
			t.Fatalf("%s: empty run accounting", cell.Name())
		}
	}
}

func TestAllCellsCountAndNames(t *testing.T) {
	cells := AllCells()
	if len(cells) != 10 {
		t.Fatalf("AllCells = %d entries, want 10 (Table I)", len(cells))
	}
	want := map[string]bool{
		"cont-min": true, "cab-min": true, "chas-min": true, "rotr-min": true, "rand-min": true,
		"cont-adp": true, "cab-adp": true, "chas-adp": true, "rotr-adp": true, "rand-adp": true,
	}
	for _, c := range cells {
		if !want[c.Name()] {
			t.Fatalf("unexpected cell %q", c.Name())
		}
		delete(want, c.Name())
	}
	if len(want) != 0 {
		t.Fatalf("missing cells: %v", want)
	}
}

func TestRunDeterministicBySeed(t *testing.T) {
	tr := miniCR(t)
	cell := Cell{placement.RandomNode, routing.Adaptive}
	a, err := Run(MiniConfig(tr, cell, 7))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(MiniConfig(tr, cell, 7))
	if err != nil {
		t.Fatal(err)
	}
	if a.Duration != b.Duration || a.Events != b.Events {
		t.Fatalf("same seed diverged: (%v,%d) vs (%v,%d)", a.Duration, a.Events, b.Duration, b.Events)
	}
	for i := range a.CommTimes {
		if a.CommTimes[i] != b.CommTimes[i] {
			t.Fatalf("rank %d comm time differs across identical runs", i)
		}
	}
	c, err := Run(MiniConfig(tr, cell, 8))
	if err != nil {
		t.Fatal(err)
	}
	if c.Duration == a.Duration && c.Events == a.Events {
		t.Fatal("different seeds produced identical runs (suspicious)")
	}
}

func TestContiguousLocalizesRandomBalances(t *testing.T) {
	// The paper's central contrast (Figs. 4-6): contiguous placement yields
	// fewer average hops; random-node placement spreads traffic over more
	// channels.
	tr := miniCR(t)
	cont, err := Run(MiniConfig(tr, Cell{placement.Contiguous, routing.Minimal}, 3))
	if err != nil {
		t.Fatal(err)
	}
	rand, err := Run(MiniConfig(tr, Cell{placement.RandomNode, routing.Minimal}, 3))
	if err != nil {
		t.Fatal(err)
	}
	if hc, hr := stats.Mean(cont.AvgHops), stats.Mean(rand.AvgHops); hc >= hr {
		t.Fatalf("contiguous avg hops %v not below random %v", hc, hr)
	}
	nonzero := func(vals []float64) int {
		n := 0
		for _, v := range vals {
			if v > 0 {
				n++
			}
		}
		return n
	}
	usedCont := nonzero(cont.LocalTraffic(false)) + nonzero(cont.GlobalTraffic(false))
	usedRand := nonzero(rand.LocalTraffic(false)) + nonzero(rand.GlobalTraffic(false))
	if usedCont >= usedRand {
		t.Fatalf("contiguous used %d channels, random %d: random should spread wider", usedCont, usedRand)
	}
}

func TestMsgScaleIncreasesCommTime(t *testing.T) {
	tr := miniCR(t)
	cfgSmall := MiniConfig(tr, Cell{placement.Contiguous, routing.Minimal}, 4)
	cfgSmall.MsgScale = 0.25
	cfgBig := cfgSmall
	cfgBig.MsgScale = 4
	small, err := Run(cfgSmall)
	if err != nil {
		t.Fatal(err)
	}
	big, err := Run(cfgBig)
	if err != nil {
		t.Fatal(err)
	}
	if big.MaxCommTime() <= small.MaxCommTime() {
		t.Fatalf("16x message load did not increase comm time: %v vs %v",
			big.MaxCommTime(), small.MaxCommTime())
	}
}

func TestRunWithBackground(t *testing.T) {
	tr := miniCR(t)
	cfg := MiniConfig(tr, Cell{placement.RandomNode, routing.Adaptive}, 5)
	cfg.Background = &workload.BackgroundConfig{
		Kind:     workload.UniformRandom,
		MsgBytes: 32 * 1024,
		Interval: 2 * des.Microsecond,
	}
	noisy, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !noisy.Completed {
		t.Fatal("app did not complete under background traffic")
	}
	if noisy.BackgroundPeakLoad != int64(64-32)*32*1024 {
		t.Fatalf("background peak load = %d", noisy.BackgroundPeakLoad)
	}
	clean, err := Run(MiniConfig(tr, Cell{placement.RandomNode, routing.Adaptive}, 5))
	if err != nil {
		t.Fatal(err)
	}
	if noisy.MaxCommTime() <= clean.MaxCommTime() {
		t.Fatalf("background did not degrade app: noisy %v vs clean %v",
			noisy.MaxCommTime(), clean.MaxCommTime())
	}
}

func TestMaxSimTimeCutsRunShort(t *testing.T) {
	tr := miniCR(t)
	cfg := MiniConfig(tr, Cell{placement.Contiguous, routing.Minimal}, 6)
	cfg.MaxSimTime = 2 * des.Microsecond // far too little for the whole app
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed {
		t.Fatal("run claimed completion despite the deadline")
	}
	if res.Duration > cfg.MaxSimTime+des.Microsecond {
		t.Fatalf("run overshot the deadline: %v", res.Duration)
	}
}

func TestRunRejectsBadConfigs(t *testing.T) {
	if _, err := Run(Config{}); err == nil {
		t.Error("accepted config without trace")
	}
	tr := miniCR(t)
	cfg := MiniConfig(tr, Cell{placement.Contiguous, routing.Minimal}, 1)
	bad := cfg.Topology.(topology.Config)
	bad.Groups = 0
	cfg.Topology = bad
	if _, err := Run(cfg); err == nil {
		t.Error("accepted invalid topology")
	}
	cfg = MiniConfig(tr, Cell{placement.Contiguous, routing.Minimal}, 1)
	cfg.Topology = nil
	if _, err := Run(cfg); err == nil {
		t.Error("accepted config without machine")
	}
	cfg = MiniConfig(tr, Cell{placement.Contiguous, routing.Minimal}, 1)
	cfg.Background = &workload.BackgroundConfig{MsgBytes: 0, Interval: 1}
	if _, err := Run(cfg); err == nil {
		t.Error("accepted invalid background config")
	}
	big, _ := trace.CR(trace.CRConfig{Ranks: 100, MessageBytes: 100})
	cfg = MiniConfig(big, Cell{placement.Contiguous, routing.Minimal}, 1)
	if _, err := Run(cfg); err == nil {
		t.Error("accepted job larger than the machine")
	}
}

func TestResultChannelAccessors(t *testing.T) {
	tr := miniCR(t)
	res, err := Run(MiniConfig(tr, Cell{placement.Contiguous, routing.Minimal}, 9))
	if err != nil {
		t.Fatal(err)
	}
	topoCfg := res.Config.Topology.(topology.Config)
	wantLocal := topoCfg.Groups * topoCfg.Rows * topoCfg.Cols * ((topoCfg.Rows - 1) + (topoCfg.Cols - 1))
	if got := len(res.LocalTraffic(false)); got != wantLocal {
		t.Fatalf("local channel census = %d, want %d", got, wantLocal)
	}
	if got, unfiltered := len(res.LocalTraffic(true)), len(res.LocalTraffic(false)); got >= unfiltered {
		t.Fatalf("restricted census %d not below machine-wide %d", got, unfiltered)
	}
	if len(res.GlobalSaturation(false)) == 0 {
		t.Fatal("no global channels reported")
	}
	cms := res.CommTimesMs()
	if len(cms) != tr.NumRanks() || cms[0] <= 0 {
		t.Fatalf("CommTimesMs = %v...", cms[0])
	}
}
