package core

import (
	"errors"
	"strings"
	"testing"

	"dragonfly/internal/faults"
	"dragonfly/internal/placement"
	"dragonfly/internal/routing"
	"dragonfly/internal/topology"
)

// TestFaultedRunDeterministicAndAuditClean: a degraded-fabric run with the
// auditor attached completes, and the same seed reproduces it event-for-event.
func TestFaultedRunDeterministicAndAuditClean(t *testing.T) {
	tr := miniCR(t)
	run := func() *Result {
		cfg := MiniConfig(tr, Cell{placement.RandomNode, routing.Adaptive}, 7)
		cfg.Faults = &faults.Spec{GlobalFrac: 0.25, LocalFrac: 0.05, Seed: 3}
		cfg.Audit = true
		cfg.WatchdogEvents = 200_000_000
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Duration != b.Duration || a.Events != b.Events ||
		a.DroppedBytes != b.DroppedBytes || a.DroppedPackets != b.DroppedPackets {
		t.Fatalf("same seed diverged on the faulted fabric: (%v,%d,%d) vs (%v,%d,%d)",
			a.Duration, a.Events, a.DroppedBytes, b.Duration, b.Events, b.DroppedBytes)
	}
	for i := range a.CommTimes {
		if a.CommTimes[i] != b.CommTimes[i] {
			t.Fatalf("rank %d comm time differs across identical faulted runs", i)
		}
	}
	if a.Audit == nil || a.Audit.Stats.Routes == 0 {
		t.Fatal("auditor was not attached to the faulted run")
	}
}

// TestEmptyFaultSpecIsByteIdentical: an empty -faults value must leave every
// result field exactly as a run without the flag — the fault machinery is
// skipped, not merely inert.
func TestEmptyFaultSpecIsByteIdentical(t *testing.T) {
	tr := miniCR(t)
	base := MiniConfig(tr, Cell{placement.RandomNode, routing.Adaptive}, 11)
	clean, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	withEmpty := base
	withEmpty.Faults = &faults.Spec{}
	flagged, err := Run(withEmpty)
	if err != nil {
		t.Fatal(err)
	}
	if clean.Duration != flagged.Duration || clean.Events != flagged.Events {
		t.Fatalf("empty fault spec changed the run: (%v,%d) vs (%v,%d)",
			clean.Duration, clean.Events, flagged.Duration, flagged.Events)
	}
	for i := range clean.CommTimes {
		if clean.CommTimes[i] != flagged.CommTimes[i] {
			t.Fatalf("rank %d comm time changed under an empty fault spec", i)
		}
	}
	if flagged.DroppedPackets != 0 || flagged.RouteErr != nil {
		t.Fatalf("empty fault spec recorded losses: %d dropped, err %v",
			flagged.DroppedPackets, flagged.RouteErr)
	}
}

// TestPartitionedFabricDegradesGracefully: isolate one group entirely while
// the app spans the machine. The run must drain — dropped traffic is
// accounted, ranks close lossily — and surface a typed route error instead
// of hanging or panicking.
func TestPartitionedFabricDegradesGracefully(t *testing.T) {
	tr := miniCR(t)
	cfg := MiniConfig(tr, Cell{placement.RandomNode, routing.Minimal}, 5)
	topo := topology.BuildMachine(cfg.Topology)
	spec := &faults.Spec{}
	for _, cn := range topo.GlobalConns() {
		if topo.GroupOfRouter(cn.A) == 0 || topo.GroupOfRouter(cn.B) == 0 {
			spec.FailLinks = append(spec.FailLinks, [2]topology.RouterID{cn.A, cn.B})
		}
	}
	cfg.Faults = spec
	cfg.Audit = true
	cfg.WatchdogEvents = 200_000_000
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("partitioned fabric must degrade, not fail: %v", err)
	}
	if !res.Completed {
		t.Fatal("lossy close did not terminate the replay ranks")
	}
	if res.DroppedBytes == 0 || res.DroppedPackets == 0 {
		t.Fatal("an app spanning a partition recorded no drops")
	}
	if !errors.Is(res.RouteErr, routing.ErrUnreachable) {
		t.Fatalf("RouteErr = %v, want ErrUnreachable", res.RouteErr)
	}
}

// TestFaultSpecErrorsSurface: an unresolvable spec (router ID off the
// machine) is a config error, reported before any simulation runs.
func TestFaultSpecErrorsSurface(t *testing.T) {
	tr := miniCR(t)
	cfg := MiniConfig(tr, Cell{placement.Contiguous, routing.Minimal}, 1)
	cfg.Faults = &faults.Spec{FailRouters: []topology.RouterID{10_000}}
	if _, err := Run(cfg); err == nil {
		t.Fatal("accepted a fault spec naming a router off the machine")
	}
}

// TestWatchdogSurfacesFromRun: an absurdly small event budget turns a
// healthy run into a watchdog error carrying the network diagnostic.
func TestWatchdogSurfacesFromRun(t *testing.T) {
	tr := miniCR(t)
	cfg := MiniConfig(tr, Cell{placement.Contiguous, routing.Minimal}, 2)
	cfg.WatchdogEvents = 50
	_, err := Run(cfg)
	if err == nil {
		t.Fatal("run with a 50-event budget did not trip the watchdog")
	}
	if !strings.Contains(err.Error(), "watchdog") || !strings.Contains(err.Error(), "messages queued") {
		t.Fatalf("watchdog error lacks the diagnostic: %v", err)
	}
}

// panicMachine trips a deliberate panic inside Run, for the batch firewall
// test.
type panicMachine struct{}

func (panicMachine) Build() (topology.Interconnect, error) { panic("synthetic machine failure") }
func (panicMachine) Label() string                         { return "panic" }

// TestRunBatchRecoversPanics: one panicking config must not take down the
// batch — siblings complete, the panic becomes that config's error, and the
// merge stays in config order.
func TestRunBatchRecoversPanics(t *testing.T) {
	tr := miniCR(t)
	good := MiniConfig(tr, Cell{placement.Contiguous, routing.Minimal}, 3)
	bad := good
	bad.Topology = panicMachine{}
	for _, parallel := range []int{1, 4} {
		results, err := RunBatch([]Config{good, bad, good}, parallel)
		if err == nil {
			t.Fatalf("parallel=%d: panic did not surface as an error", parallel)
		}
		if !strings.Contains(err.Error(), "panic") || !strings.Contains(err.Error(), "synthetic machine failure") {
			t.Fatalf("parallel=%d: error does not describe the panic: %v", parallel, err)
		}
		if results[0] == nil || results[2] == nil {
			t.Fatalf("parallel=%d: sibling configs did not complete", parallel)
		}
		if results[1] != nil {
			t.Fatalf("parallel=%d: panicked config produced a result", parallel)
		}
		if results[0].Duration != results[2].Duration {
			t.Fatalf("parallel=%d: identical sibling configs diverged", parallel)
		}
	}
}

// TestDynamicFaultRunsDeterministic: the new fault dynamics — a flapping
// link, a correlated group outage, a bundle outage, all failed and repaired
// mid-run — produce audit-clean runs that are bit-identical on rerun and at
// every RunBatch worker count.
func TestDynamicFaultRunsDeterministic(t *testing.T) {
	tr := miniCR(t)
	specs := []*faults.Spec{
		{Flaps: []faults.Flap{{A: 0, B: 1, MTBF: 50_000, MTTR: 20_000}}, FlapUntil: 500_000, Seed: 3},
		{Events: []faults.Event{
			{At: 10_000, IsGroup: true, Group: 1},
			{At: 60_000, IsGroup: true, Group: 1, Repair: true},
		}},
		{Events: []faults.Event{
			{At: 10_000, IsBundle: true, G1: 0, G2: 1},
			{At: 60_000, IsBundle: true, G1: 0, G2: 1, Repair: true},
		}},
	}
	var cfgs []Config
	for _, spec := range specs {
		cfg := MiniConfig(tr, Cell{placement.RandomNode, routing.Adaptive}, 7)
		cfg.Faults = spec
		cfg.Audit = true
		cfg.WatchdogEvents = 200_000_000
		cfgs = append(cfgs, cfg)
	}
	base, err := RunBatch(cfgs, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i, res := range base {
		if !res.Completed {
			t.Fatalf("spec %d: run did not complete", i)
		}
		if res.Audit == nil || res.Audit.Stats.Routes == 0 {
			t.Fatalf("spec %d: auditor was not attached", i)
		}
	}
	for _, workers := range []int{1, 2, 4} {
		again, err := RunBatch(cfgs, workers)
		if err != nil {
			t.Fatalf("parallel=%d: %v", workers, err)
		}
		for i := range base {
			a, b := base[i], again[i]
			if a.Duration != b.Duration || a.Events != b.Events ||
				a.DroppedPackets != b.DroppedPackets || a.DroppedBytes != b.DroppedBytes {
				t.Fatalf("parallel=%d spec %d: diverged: (%v,%d,%d) vs (%v,%d,%d)",
					workers, i, a.Duration, a.Events, a.DroppedPackets, b.Duration, b.Events, b.DroppedPackets)
			}
			for r := range a.CommTimes {
				if a.CommTimes[r] != b.CommTimes[r] {
					t.Fatalf("parallel=%d spec %d: rank %d comm time diverged", workers, i, r)
				}
			}
		}
	}
}

// TestWatchdogErrorNamesHealthHistory: a stall under dynamic faults reports
// the applied fail/repair transitions in the watchdog error itself.
func TestWatchdogErrorNamesHealthHistory(t *testing.T) {
	tr := miniCR(t)
	cfg := MiniConfig(tr, Cell{placement.Contiguous, routing.Minimal}, 2)
	cfg.Faults = &faults.Spec{Events: []faults.Event{
		{At: 0, IsRouter: true, Router: 2},
		{At: 1, IsRouter: true, Router: 2, Repair: true},
	}}
	cfg.WatchdogEvents = 50
	_, err := Run(cfg)
	if err == nil {
		t.Fatal("run with a 50-event budget did not trip the watchdog")
	}
	if !strings.Contains(err.Error(), "health transitions") ||
		!strings.Contains(err.Error(), "fail=router:2@0s") {
		t.Fatalf("watchdog error lacks the health history: %v", err)
	}
}
