// Package core orchestrates the paper's study: it wires a machine, places a
// job under one of the five placement policies, replays an application
// trace under minimal or adaptive routing — optionally against synthetic
// background traffic — and reports the four evaluation metrics. One Run is
// one cell of the paper's design space (Table I x application x load).
package core

import (
	"fmt"

	"dragonfly/internal/audit"
	"dragonfly/internal/des"
	"dragonfly/internal/faults"
	"dragonfly/internal/mapping"
	"dragonfly/internal/metrics"
	"dragonfly/internal/network"
	"dragonfly/internal/placement"
	"dragonfly/internal/routing"
	"dragonfly/internal/topology"
	"dragonfly/internal/trace"
	"dragonfly/internal/workload"
)

// Config describes one simulation run.
type Config struct {
	Topology topology.Machine
	Params   network.Params

	Placement placement.Policy
	Routing   routing.Mechanism
	// Mapping assigns ranks to the allocated nodes; the zero value is the
	// paper's identity mapping. Alternatives implement the paper's
	// task-mapping future work (Sec. VI).
	Mapping mapping.Policy

	// Trace is the application to replay, as a flat op list; the replay
	// engine lowers it into the dependency-graph IR on the way in.
	Trace *trace.Trace
	// Graph is the application in dependency-graph IR (collective and
	// storage generators emit these directly). When set it takes precedence
	// over Trace.
	Graph *trace.Graph
	// MsgScale multiplies every message size (sensitivity study); 0 = 1.
	MsgScale float64

	// Background, when non-nil, runs the synthetic interference job on
	// every node not assigned to the application.
	Background *workload.BackgroundConfig

	// Seed drives every random stream of the run.
	Seed int64

	// Faults, when non-nil and non-empty, degrades the fabric before (and,
	// with scheduled events, during) the run: the spec resolves to a
	// deterministic fault set, routing turns fault-aware, and traffic lost
	// on dead equipment is dropped with exact accounting (see Result's
	// DroppedPackets/RouteErr). An empty spec leaves the run byte-identical
	// to a healthy one — the fault machinery is not even wired in.
	Faults *faults.Spec

	// MaxSimTime aborts a run at this simulated time (0 = unlimited); the
	// result then carries the partial progress, with Completed = false.
	MaxSimTime des.Time

	// WatchdogEvents / WatchdogTime arm the DES livelock watchdog: the run
	// fails with a diagnostic (instead of spinning forever) once it executes
	// that many events or passes that virtual time. Zero disables either
	// limit. Unlike MaxSimTime, a trip is an error, not a partial result —
	// it means the simulator wedged, which healthy and faulted runs alike
	// must never do.
	WatchdogEvents uint64
	WatchdogTime   des.Time

	// Audit attaches the runtime invariant auditor (package audit): credit
	// conservation, byte/packet conservation, VC-class monotonicity, time
	// monotonicity, and per-NIC FIFO injection are checked on every event.
	// A violation fails the run; Result.Audit carries the check counts.
	// Auditing observes without perturbing: results are bit-identical to an
	// unaudited run.
	Audit bool
}

// Name returns the paper's abbreviation for the placement x routing cell,
// e.g. "cont-min" (Table I).
func (c Config) Name() string {
	return fmt.Sprintf("%s-%s", c.Placement, c.Routing)
}

// WorkloadApp returns the application name of the configured workload —
// Graph when set, Trace otherwise, "" when neither is configured.
func (c Config) WorkloadApp() string {
	if c.Graph != nil {
		return c.Graph.App
	}
	if c.Trace != nil {
		return c.Trace.App
	}
	return ""
}

// WorkloadRanks returns the rank count of the configured workload.
func (c Config) WorkloadRanks() int {
	if c.Graph != nil {
		return c.Graph.NumRanks()
	}
	if c.Trace != nil {
		return c.Trace.NumRanks()
	}
	return 0
}

// Result is the measured outcome of one run.
type Result struct {
	Config    Config
	Completed bool // every rank finished before MaxSimTime

	// CommTimes is the per-rank communication time (Sec. III-E).
	CommTimes []des.Time
	// AvgHops is the per-rank mean routers traversed by received packets.
	AvgHops []float64
	// Links snapshots every directed channel's traffic and saturation.
	Links []network.LinkStat
	// AppRouters is the set of routers serving the application's nodes.
	AppRouters map[topology.RouterID]bool
	// AppNodes is the allocation, rank-ordered.
	AppNodes []topology.NodeID

	// BackgroundPeakLoad is the Table II quantity for the run's background
	// job (0 without background).
	BackgroundPeakLoad int64

	// Duration is the simulated time consumed; Events the DES event count.
	Duration des.Time
	Events   uint64

	// Faulted-fabric outcome: traffic lost on dead equipment, and the first
	// injection-time routing failure (wrapping routing.ErrUnreachable) when
	// the placement spanned a partition. The run still drains and closes
	// every message, so unreachability degrades to an accounted lossy result
	// rather than an error. All zero/nil on a healthy fabric.
	DroppedPackets int64
	DroppedBytes   int64
	RouteErr       error

	// Audit carries the invariant auditor's check counts and any recorded
	// violations; nil unless Config.Audit was set.
	Audit *audit.Summary
}

// MaxCommTime returns the slowest rank's communication time.
func (r *Result) MaxCommTime() des.Time {
	var max des.Time
	for _, t := range r.CommTimes {
		if t > max {
			max = t
		}
	}
	return max
}

// CommTimesMs returns per-rank communication times in milliseconds.
func (r *Result) CommTimesMs() []float64 { return metrics.CommTimesMs(r.CommTimes) }

// LocalTraffic returns MiB per local channel, machine-wide or (restrict)
// only for channels leaving the application's routers.
func (r *Result) LocalTraffic(restrict bool) []float64 {
	return metrics.ChannelTraffic(r.Links, routing.Local, r.filter(restrict))
}

// GlobalTraffic returns MiB per global channel.
func (r *Result) GlobalTraffic(restrict bool) []float64 {
	return metrics.ChannelTraffic(r.Links, routing.Global, r.filter(restrict))
}

// LocalSaturation returns milliseconds of saturation per local channel.
func (r *Result) LocalSaturation(restrict bool) []float64 {
	return metrics.ChannelSaturation(r.Links, routing.Local, r.filter(restrict))
}

// GlobalSaturation returns milliseconds of saturation per global channel.
func (r *Result) GlobalSaturation(restrict bool) []float64 {
	return metrics.ChannelSaturation(r.Links, routing.Global, r.filter(restrict))
}

func (r *Result) filter(restrict bool) map[topology.RouterID]bool {
	if restrict {
		return r.AppRouters
	}
	return nil
}

// Run executes one simulation.
func Run(cfg Config) (*Result, error) {
	if cfg.Trace == nil && cfg.Graph == nil {
		return nil, fmt.Errorf("core: config has no workload (set Trace or Graph)")
	}
	if cfg.Topology == nil {
		return nil, fmt.Errorf("core: config has no machine (set Topology)")
	}
	topo, err := cfg.Topology.Build()
	if err != nil {
		return nil, err
	}
	eng := des.New()
	root := des.NewRNG(cfg.Seed, "core")
	// A non-empty fault spec degrades the fabric; an empty one is skipped
	// entirely so healthy runs stay byte-identical with or without the flag.
	var fset *faults.Set
	if cfg.Faults != nil && !cfg.Faults.Empty() {
		fset, err = faults.Resolve(cfg.Faults, topo)
		if err != nil {
			return nil, err
		}
		cfg.Params.Route.Health = fset
	}
	fab, err := network.New(eng, topo, cfg.Params, cfg.Routing, root.Stream("fabric"))
	if err != nil {
		return nil, err
	}
	if fset != nil {
		for _, ev := range fset.Events() {
			ev := ev
			eng.At(ev.At, func() {
				fset.Apply(ev)
				fab.RecordHealthEvent(ev.At, ev.String())
				fab.ApplyHealthChange()
			})
		}
	}
	if cfg.WatchdogEvents > 0 || cfg.WatchdogTime > 0 {
		eng.SetWatchdog(cfg.WatchdogEvents, cfg.WatchdogTime, fab.WatchdogDiagnostic)
	}
	var aud *audit.Auditor
	if cfg.Audit {
		aud = audit.New(topo)
		fab.SetObserver(aud)
		eng.SetObserver(aud.EventExecuted)
	}

	nodes, err := placement.Allocate(topo, cfg.Placement, cfg.WorkloadRanks(), root.Stream("placement"))
	if err != nil {
		return nil, err
	}
	nodes, err = mapping.Apply(cfg.Mapping, topo, nodes, root.Stream("mapping"))
	if err != nil {
		return nil, err
	}
	rep, err := workload.NewReplay(fab, workload.Job{
		Name:     cfg.WorkloadApp(),
		Graph:    cfg.Graph,
		Trace:    cfg.Trace,
		Nodes:    nodes,
		MsgScale: cfg.MsgScale,
	})
	if err != nil {
		return nil, err
	}

	var bg *workload.Background
	var peak int64
	if cfg.Background != nil {
		if err := cfg.Background.Validate(); err != nil {
			return nil, err
		}
		rest := placement.Remaining(topo, nodes)
		bg = workload.StartBackground(fab, *cfg.Background, rest, root.Stream("background"))
		peak = cfg.Background.PeakLoad(len(rest))
	}

	rep.Start()
	deadline := cfg.MaxSimTime
	if bg == nil && deadline == 0 {
		// No perpetual traffic source: the queue drains by itself.
		eng.Run()
	} else {
		for !rep.Done() {
			if deadline > 0 && eng.Now() >= deadline {
				break
			}
			if !eng.Step() {
				break
			}
		}
	}
	if bg != nil {
		bg.Stop()
	}
	if err := eng.Tripped(); err != nil {
		return nil, fmt.Errorf("core: %s: %w", cfg.Name(), err)
	}
	fab.FinishStats()

	res := &Result{
		Config:             cfg,
		Completed:          rep.Done(),
		CommTimes:          rep.CommTimes(),
		AvgHops:            rep.AvgHopsPerRank(),
		Links:              fab.LinkStats(),
		AppRouters:         metrics.RouterSet(topo, rep.Nodes()),
		AppNodes:           rep.Nodes(),
		BackgroundPeakLoad: peak,
		Duration:           eng.Now(),
		Events:             eng.Processed(),
		RouteErr:           fab.RouteError(),
	}
	res.DroppedPackets, res.DroppedBytes = fab.DropStats()
	if aud != nil {
		aud.Finish(eng.Pending() == 0)
		s := aud.Summary()
		res.Audit = &s
		if err := aud.Err(); err != nil {
			return nil, fmt.Errorf("core: %s: %w", cfg.Name(), err)
		}
	}
	return res, nil
}
