package core

import (
	"reflect"
	"testing"

	"dragonfly/internal/trace"
)

func miniCellConfigs(t *testing.T) []Config {
	t.Helper()
	tr, err := trace.CR(trace.CRConfig{Ranks: 16, MessageBytes: 8 * 1024})
	if err != nil {
		t.Fatal(err)
	}
	var cfgs []Config
	for _, cell := range AllCells() {
		cfgs = append(cfgs, MiniConfig(tr, cell, 1))
	}
	return cfgs
}

// RunBatch must return, for every worker count, exactly the results that
// sequential Run calls produce — the determinism contract the parallel sweep
// executor rests on.
func TestRunBatchMatchesSequential(t *testing.T) {
	cfgs := miniCellConfigs(t)
	want := make([]*Result, len(cfgs))
	for i, cfg := range cfgs {
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = res
	}
	for _, workers := range []int{1, 2, 4, 0} {
		got, err := RunBatch(cfgs, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(got) != len(want) {
			t.Fatalf("workers=%d: %d results, want %d", workers, len(got), len(want))
		}
		for i := range want {
			if got[i].Duration != want[i].Duration || got[i].Events != want[i].Events {
				t.Fatalf("workers=%d cfg %s: duration/events (%v, %d) != sequential (%v, %d)",
					workers, cfgs[i].Name(), got[i].Duration, got[i].Events, want[i].Duration, want[i].Events)
			}
			if !reflect.DeepEqual(got[i].CommTimes, want[i].CommTimes) {
				t.Fatalf("workers=%d cfg %s: comm times diverge from sequential run", workers, cfgs[i].Name())
			}
			if !reflect.DeepEqual(got[i].AvgHops, want[i].AvgHops) {
				t.Fatalf("workers=%d cfg %s: hops diverge from sequential run", workers, cfgs[i].Name())
			}
			if !reflect.DeepEqual(got[i].Links, want[i].Links) {
				t.Fatalf("workers=%d cfg %s: link stats diverge from sequential run", workers, cfgs[i].Name())
			}
		}
	}
}

// A config error must surface as the first failure in config order, with the
// healthy configs still attempted.
func TestRunBatchErrorOrder(t *testing.T) {
	cfgs := miniCellConfigs(t)[:4]
	cfgs[1].Trace = nil // fails fast in Run
	cfgs[3].Trace = nil
	results, err := RunBatch(cfgs, 4)
	if err == nil {
		t.Fatal("batch with broken config reported no error")
	}
	if results[0] == nil || results[2] == nil {
		t.Fatal("healthy configs were not run")
	}
	if results[1] != nil || results[3] != nil {
		t.Fatal("broken configs produced results")
	}
}
