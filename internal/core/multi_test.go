package core

import (
	"testing"

	"dragonfly/internal/des"
	"dragonfly/internal/network"
	"dragonfly/internal/placement"
	"dragonfly/internal/routing"
	"dragonfly/internal/topology"
	"dragonfly/internal/trace"
)

func multiConfig(t *testing.T, jobs []JobSpec) MultiConfig {
	t.Helper()
	return MultiConfig{
		Topology: topology.Mini(),
		Params:   network.DefaultParams(),
		Routing:  routing.Adaptive,
		Jobs:     jobs,
		Seed:     1,
	}
}

func smallCR(t *testing.T, ranks int, bytes int64) *trace.Trace {
	t.Helper()
	tr, err := trace.CR(trace.CRConfig{Ranks: ranks, MessageBytes: bytes})
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func smallAMG(t *testing.T) *trace.Trace {
	t.Helper()
	tr, err := trace.AMG(trace.AMGConfig{X: 3, Y: 3, Z: 3, Cycles: 2, Levels: 3, PeakBytes: 8 * trace.KB})
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestRunMultiTwoJobsComplete(t *testing.T) {
	res, err := RunMulti(multiConfig(t, []JobSpec{
		{Name: "cr", Trace: smallCR(t, 16, 32*trace.KB), Placement: placement.RandomNode},
		{Name: "amg", Trace: smallAMG(t), Placement: placement.Contiguous},
	}))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed() {
		t.Fatal("co-run did not complete")
	}
	if len(res.Jobs) != 2 {
		t.Fatalf("jobs = %d", len(res.Jobs))
	}
	seen := map[topology.NodeID]bool{}
	for _, j := range res.Jobs {
		if j.MaxCommTime() <= 0 {
			t.Fatalf("job %s has nonpositive comm time", j.Name)
		}
		for _, n := range j.Nodes {
			if seen[n] {
				t.Fatalf("node %d shared between jobs", n)
			}
			seen[n] = true
		}
	}
}

// Three jobs filling the whole mini machine: allocations must partition the
// node set exactly — pairwise disjoint, jointly exhaustive — and every job
// still completes while overlapping in time with the others.
func TestRunMultiThreeJobsPartitionMachine(t *testing.T) {
	res, err := RunMulti(multiConfig(t, []JobSpec{
		{Name: "a", Trace: smallCR(t, 32, 16*trace.KB), Placement: placement.RandomNode},
		{Name: "b", Trace: smallCR(t, 16, 16*trace.KB), Placement: placement.RandomRouter},
		{Name: "c", Trace: smallCR(t, 16, 16*trace.KB), Placement: placement.Contiguous},
	}))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed() {
		t.Fatal("full-machine co-run did not complete")
	}
	topo := topology.MustNew(topology.Mini())
	owner := make(map[topology.NodeID]string, topo.NumNodes())
	for _, j := range res.Jobs {
		if len(j.Nodes) != len(j.CommTimes) {
			t.Fatalf("job %s: %d nodes for %d ranks", j.Name, len(j.Nodes), len(j.CommTimes))
		}
		for _, n := range j.Nodes {
			if prev, ok := owner[n]; ok {
				t.Fatalf("node %d owned by both %s and %s", n, prev, j.Name)
			}
			owner[n] = j.Name
		}
	}
	if len(owner) != topo.NumNodes() {
		t.Fatalf("jobs cover %d of %d nodes", len(owner), topo.NumNodes())
	}
	// Overlap in time, not serialization: the fabric ran all three jobs
	// concurrently, so the co-run is shorter than the jobs run back to back.
	var sum des.Time
	for _, j := range res.Jobs {
		sum += j.MaxCommTime()
	}
	if res.Duration >= sum {
		t.Fatalf("no temporal overlap: duration %v >= serialized %v", res.Duration, sum)
	}
}

func TestRunMultiInterferenceVsIsolation(t *testing.T) {
	// The bully effect: AMG co-running with a heavy CR is slower than AMG
	// alone under the same placement and routing.
	amg := smallAMG(t)
	alone, err := RunMulti(multiConfig(t, []JobSpec{
		{Name: "amg", Trace: amg, Placement: placement.RandomNode},
	}))
	if err != nil {
		t.Fatal(err)
	}
	co, err := RunMulti(multiConfig(t, []JobSpec{
		{Name: "amg", Trace: amg, Placement: placement.RandomNode},
		{Name: "cr", Trace: smallCR(t, 32, 256*trace.KB), Placement: placement.RandomNode},
	}))
	if err != nil {
		t.Fatal(err)
	}
	if !co.Completed() {
		t.Fatal("co-run did not complete")
	}
	if co.Jobs[0].MaxCommTime() <= alone.Jobs[0].MaxCommTime() {
		t.Fatalf("co-running did not slow AMG: alone %v, co %v",
			alone.Jobs[0].MaxCommTime(), co.Jobs[0].MaxCommTime())
	}
}

func TestRunMultiStaggeredStarts(t *testing.T) {
	late := 50 * des.Microsecond
	res, err := RunMulti(multiConfig(t, []JobSpec{
		{Name: "first", Trace: smallCR(t, 8, 16*trace.KB), Placement: placement.Contiguous},
		{Name: "second", Trace: smallCR(t, 8, 16*trace.KB), Placement: placement.Contiguous, Start: late},
	}))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed() {
		t.Fatal("staggered co-run did not complete")
	}
	if res.Duration < late {
		t.Fatalf("run ended at %v, before the second job's start %v", res.Duration, late)
	}
}

func TestRunMultiRejectsOverCommitment(t *testing.T) {
	if _, err := RunMulti(multiConfig(t, []JobSpec{
		{Name: "a", Trace: smallCR(t, 48, trace.KB), Placement: placement.Contiguous},
		{Name: "b", Trace: smallCR(t, 48, trace.KB), Placement: placement.Contiguous},
	})); err == nil {
		t.Fatal("accepted jobs exceeding the machine")
	}
	if _, err := RunMulti(multiConfig(t, nil)); err == nil {
		t.Fatal("accepted empty co-run")
	}
	if _, err := RunMulti(multiConfig(t, []JobSpec{{Name: "x"}})); err == nil {
		t.Fatal("accepted job without trace")
	}
}

func TestRunMultiMaxSimTime(t *testing.T) {
	cfg := multiConfig(t, []JobSpec{
		{Name: "cr", Trace: smallCR(t, 32, 512*trace.KB), Placement: placement.Contiguous},
	})
	cfg.MaxSimTime = 5 * des.Microsecond
	res, err := RunMulti(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed() {
		t.Fatal("claimed completion despite tiny deadline")
	}
}

func TestRunMultiDeterministic(t *testing.T) {
	build := func() MultiConfig {
		return multiConfig(t, []JobSpec{
			{Name: "cr", Trace: smallCR(t, 16, 32*trace.KB), Placement: placement.RandomNode},
			{Name: "amg", Trace: smallAMG(t), Placement: placement.RandomCabinet},
		})
	}
	a, err := RunMulti(build())
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunMulti(build())
	if err != nil {
		t.Fatal(err)
	}
	if a.Duration != b.Duration || a.Events != b.Events {
		t.Fatalf("nondeterministic co-run: (%v,%d) vs (%v,%d)", a.Duration, a.Events, b.Duration, b.Events)
	}
}
