package core

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
)

// runSafe is Run with a panic firewall: one wedged or buggy configuration
// becomes that config's error instead of tearing down the whole batch (and,
// under a parallel sweep, every sibling worker with it). The stack trace
// rides in the error so the failure stays debuggable.
func runSafe(cfg Config) (res *Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			res = nil
			err = fmt.Errorf("core: %s: panic: %v\n%s", cfg.Name(), r, debug.Stack())
		}
	}()
	return Run(cfg)
}

// RunBatch executes independent simulation configs across a bounded worker
// pool and returns their results in config order. Each simulation remains a
// bit-reproducible sequential DES on its own engine and seeded RNG streams;
// only whole configurations fan out, so RunBatch(cfgs, n) returns exactly
// what n successive Run calls would, for every n.
//
// parallel <= 0 selects runtime.NumCPU(). All configs are attempted even
// after a failure; the returned error is the first in config order (not
// completion order), again so that parallelism never changes what callers
// observe. Results at failed indices are nil.
func RunBatch(cfgs []Config, parallel int) ([]*Result, error) {
	if parallel <= 0 {
		parallel = runtime.NumCPU()
	}
	if parallel > len(cfgs) {
		parallel = len(cfgs)
	}
	results := make([]*Result, len(cfgs))
	errs := make([]error, len(cfgs))
	if parallel <= 1 {
		for i, cfg := range cfgs {
			results[i], errs[i] = runSafe(cfg)
		}
	} else {
		next := make(chan int)
		var wg sync.WaitGroup
		for w := 0; w < parallel; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range next {
					results[i], errs[i] = runSafe(cfgs[i])
				}
			}()
		}
		for i := range cfgs {
			next <- i
		}
		close(next)
		wg.Wait()
	}
	for _, err := range errs {
		if err != nil {
			return results, err
		}
	}
	return results, nil
}
