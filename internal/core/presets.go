package core

import (
	"dragonfly/internal/network"
	"dragonfly/internal/placement"
	"dragonfly/internal/routing"
	"dragonfly/internal/topology"
	"dragonfly/internal/trace"
)

// Cell is one placement x routing combination of Table I.
type Cell struct {
	Placement placement.Policy
	Routing   routing.Mechanism
}

// Name returns the paper's abbreviation, e.g. "chas-adp".
func (c Cell) Name() string { return c.Placement.String() + "-" + c.Routing.String() }

// AllCells lists the ten configurations in the paper's presentation order:
// the five placements under minimal routing, then under adaptive routing.
func AllCells() []Cell {
	var out []Cell
	for _, mech := range []routing.Mechanism{routing.Minimal, routing.Adaptive} {
		for _, pol := range placement.All() {
			out = append(out, Cell{Placement: pol, Routing: mech})
		}
	}
	return out
}

// ExtremeCells lists the four combinations the sensitivity study uses
// (Sec. IV-B): contiguous and random-node under both routings — the extreme
// cases of localized communication and balanced traffic.
func ExtremeCells() []Cell {
	return []Cell{
		{placement.Contiguous, routing.Minimal},
		{placement.RandomNode, routing.Minimal},
		{placement.Contiguous, routing.Adaptive},
		{placement.RandomNode, routing.Adaptive},
	}
}

// ThetaConfig builds a run on the paper's machine.
func ThetaConfig(tr *trace.Trace, cell Cell, seed int64) Config {
	return Config{
		Topology:  topology.Theta(),
		Params:    network.DefaultParams(),
		Placement: cell.Placement,
		Routing:   cell.Routing,
		Trace:     tr,
		Seed:      seed,
	}
}

// MiniConfig builds a run on the small test machine.
func MiniConfig(tr *trace.Trace, cell Cell, seed int64) Config {
	return Config{
		Topology:  topology.Mini(),
		Params:    network.DefaultParams(),
		Placement: cell.Placement,
		Routing:   cell.Routing,
		Trace:     tr,
		Seed:      seed,
	}
}
