package core

import (
	"fmt"

	"dragonfly/internal/audit"
	"dragonfly/internal/des"
	"dragonfly/internal/mapping"
	"dragonfly/internal/metrics"
	"dragonfly/internal/network"
	"dragonfly/internal/placement"
	"dragonfly/internal/routing"
	"dragonfly/internal/topology"
	"dragonfly/internal/trace"
	"dragonfly/internal/workload"
)

// JobSpec is one application of a multijob co-run: the production scenario
// the paper's interference study models with synthetic traffic, and the one
// its prior "bully" study [15] measured with real trace pairs. Jobs are
// placed in order from the machine's free pool, so earlier jobs fragment
// the allocation of later ones exactly as a batch scheduler would.
type JobSpec struct {
	Name      string
	Trace     *trace.Trace
	Placement placement.Policy
	// Mapping assigns the job's ranks to its allocated nodes (zero value:
	// identity, the paper's setup).
	Mapping  mapping.Policy
	MsgScale float64
	Start    des.Time
}

// MultiConfig describes a co-run of several applications sharing the
// machine under one routing mechanism.
type MultiConfig struct {
	Topology topology.Machine
	Params   network.Params
	Routing  routing.Mechanism
	Jobs     []JobSpec
	Seed     int64
	// MaxSimTime aborts the co-run (0 = unlimited).
	MaxSimTime des.Time
	// Audit attaches the runtime invariant auditor; see Config.Audit.
	Audit bool
}

// JobResult carries one job's measurements from a co-run.
type JobResult struct {
	Name      string
	Placement placement.Policy
	Completed bool
	CommTimes []des.Time
	AvgHops   []float64
	Nodes     []topology.NodeID
	Routers   map[topology.RouterID]bool
}

// MaxCommTime returns the job's slowest rank time.
func (j *JobResult) MaxCommTime() des.Time {
	var max des.Time
	for _, t := range j.CommTimes {
		if t > max {
			max = t
		}
	}
	return max
}

// MultiResult is the outcome of a co-run.
type MultiResult struct {
	Jobs     []JobResult
	Links    []network.LinkStat
	Duration des.Time
	Events   uint64
	// Audit is the invariant auditor's summary; nil unless MultiConfig.Audit.
	Audit *audit.Summary
}

// Completed reports whether every job finished.
func (m *MultiResult) Completed() bool {
	for _, j := range m.Jobs {
		if !j.Completed {
			return false
		}
	}
	return true
}

// RunMulti executes a multijob co-run: every job is placed from the shared
// free pool in spec order, all replays run on one fabric, and the engine
// drains (or hits MaxSimTime). Per-job communication times then expose
// inter-job interference directly.
func RunMulti(cfg MultiConfig) (*MultiResult, error) {
	if len(cfg.Jobs) == 0 {
		return nil, fmt.Errorf("core: co-run needs at least one job")
	}
	if cfg.Topology == nil {
		return nil, fmt.Errorf("core: config has no machine (set Topology)")
	}
	topo, err := cfg.Topology.Build()
	if err != nil {
		return nil, err
	}
	eng := des.New()
	root := des.NewRNG(cfg.Seed, "core/multi")
	fab, err := network.New(eng, topo, cfg.Params, cfg.Routing, root.Stream("fabric"))
	if err != nil {
		return nil, err
	}
	var aud *audit.Auditor
	if cfg.Audit {
		aud = audit.New(topo)
		fab.SetObserver(aud)
		eng.SetObserver(aud.EventExecuted)
	}

	pool := placement.NewPool(topo)
	replays := make([]*workload.Replay, len(cfg.Jobs))
	for i, spec := range cfg.Jobs {
		if spec.Trace == nil {
			return nil, fmt.Errorf("core: job %d (%q) has no trace", i, spec.Name)
		}
		nodes, err := placement.AllocateFrom(pool, spec.Placement, spec.Trace.NumRanks(),
			root.Stream(fmt.Sprintf("placement/%d", i)))
		if err != nil {
			return nil, fmt.Errorf("core: job %d (%q): %w", i, spec.Name, err)
		}
		nodes, err = mapping.Apply(spec.Mapping, topo, nodes, root.Stream(fmt.Sprintf("mapping/%d", i)))
		if err != nil {
			return nil, fmt.Errorf("core: job %d (%q): %w", i, spec.Name, err)
		}
		rep, err := workload.NewReplay(fab, workload.Job{
			Name:     spec.Name,
			Trace:    spec.Trace,
			Nodes:    nodes,
			MsgScale: spec.MsgScale,
			Start:    spec.Start,
		})
		if err != nil {
			return nil, fmt.Errorf("core: job %d (%q): %w", i, spec.Name, err)
		}
		replays[i] = rep
	}
	for _, rep := range replays {
		rep.Start()
	}
	if cfg.MaxSimTime == 0 {
		eng.Run()
	} else {
		for eng.Now() < cfg.MaxSimTime && eng.Step() {
		}
	}
	fab.FinishStats()

	out := &MultiResult{
		Links:    fab.LinkStats(),
		Duration: eng.Now(),
		Events:   eng.Processed(),
	}
	if aud != nil {
		aud.Finish(eng.Pending() == 0)
		s := aud.Summary()
		out.Audit = &s
		if err := aud.Err(); err != nil {
			return nil, fmt.Errorf("core: co-run: %w", err)
		}
	}
	for i, rep := range replays {
		out.Jobs = append(out.Jobs, JobResult{
			Name:      cfg.Jobs[i].Name,
			Placement: cfg.Jobs[i].Placement,
			Completed: rep.Done(),
			CommTimes: rep.CommTimes(),
			AvgHops:   rep.AvgHopsPerRank(),
			Nodes:     rep.Nodes(),
			Routers:   metrics.RouterSet(topo, rep.Nodes()),
		})
	}
	return out, nil
}
