package core

import (
	"reflect"
	"testing"

	"dragonfly/internal/placement"
	"dragonfly/internal/routing"
)

// policyCells are the determinism suite's routing-policy grid: both
// built-ins plus the stateful learning policy, each under a localizing and
// a balancing placement. qadaptive is the interesting case — its Q-table
// trajectory depends on the exact arrival order of saturation feedback, so
// any nondeterminism in event ordering or worker scheduling shows up here
// first.
func policyCells() []Cell {
	return []Cell{
		{placement.Contiguous, routing.Minimal},
		{placement.RandomNode, routing.Adaptive},
		{placement.Contiguous, routing.QAdaptive},
		{placement.RandomNode, routing.QAdaptive},
	}
}

// requireSameResult compares every Result field a routing policy can
// perturb; the audit report is excluded because only some runs request it.
func requireSameResult(t *testing.T, label string, got, want *Result) {
	t.Helper()
	if got.Duration != want.Duration || got.Events != want.Events || got.Completed != want.Completed {
		t.Fatalf("%s: clock/events (%v, %d, %v) != baseline (%v, %d, %v)",
			label, got.Duration, got.Events, got.Completed, want.Duration, want.Events, want.Completed)
	}
	if !reflect.DeepEqual(got.CommTimes, want.CommTimes) {
		t.Fatalf("%s: per-rank comm times diverge", label)
	}
	if !reflect.DeepEqual(got.AvgHops, want.AvgHops) {
		t.Fatalf("%s: per-rank hop averages diverge", label)
	}
	if !reflect.DeepEqual(got.Links, want.Links) {
		t.Fatalf("%s: link statistics diverge", label)
	}
	if got.DroppedPackets != want.DroppedPackets || got.DroppedBytes != want.DroppedBytes {
		t.Fatalf("%s: drop accounting diverges", label)
	}
}

// TestPolicyDeterminism is the policy-parameterized bit-identity suite: for
// every routing policy, one seed must produce identical results on repeated
// sequential runs, across every RunBatch worker count, and under the
// invariant auditor (whose instrumentation must observe, never perturb).
func TestPolicyDeterminism(t *testing.T) {
	tr := miniCR(t)
	cells := policyCells()
	cfgs := make([]Config, len(cells))
	want := make([]*Result, len(cells))
	for i, cell := range cells {
		cfgs[i] = MiniConfig(tr, cell, 11)
		res, err := Run(cfgs[i])
		if err != nil {
			t.Fatalf("%s: %v", cell.Name(), err)
		}
		want[i] = res
	}

	// Repeated sequential run: a policy keeping hidden state across Run
	// calls (anything not reconstructed from the seed) breaks here.
	for i, cfg := range cfgs {
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("%s rerun: %v", cells[i].Name(), err)
		}
		requireSameResult(t, cells[i].Name()+"/rerun", res, want[i])
	}

	// Every worker count must reproduce the sequential results exactly.
	for _, workers := range []int{1, 2, 4} {
		results, err := RunBatch(cfgs, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range want {
			requireSameResult(t, cells[i].Name()+"/parallel", results[i], want[i])
		}
	}

	// The auditor must be a pure observer for every policy.
	for i, cfg := range cfgs {
		cfg.Audit = true
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("%s audited: %v", cells[i].Name(), err)
		}
		requireSameResult(t, cells[i].Name()+"/audit", res, want[i])
		if res.Audit == nil || len(res.Audit.Violations) != 0 {
			t.Fatalf("%s: auditor flagged the run: %v", cells[i].Name(), res.Audit)
		}
	}
}
