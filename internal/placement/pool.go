package placement

import (
	"fmt"

	"dragonfly/internal/des"
	"dragonfly/internal/topology"
)

// Pool tracks which nodes of a machine are free, so several jobs can be
// placed one after another — the multijob scenario of a production system
// (Sec. IV-C motivates it; core.RunMulti uses it).
type Pool struct {
	topo  topology.Interconnect
	taken []bool
	free  int
}

// NewPool returns a pool with every node free.
func NewPool(topo topology.Interconnect) *Pool {
	return &Pool{
		topo:  topo,
		taken: make([]bool, topo.NumNodes()),
		free:  topo.NumNodes(),
	}
}

// Free returns the number of unallocated nodes.
func (p *Pool) Free() int { return p.free }

// Taken reports whether a node is allocated.
func (p *Pool) Taken(n topology.NodeID) bool { return p.taken[n] }

// claim marks nodes allocated; it panics on double allocation (a Pool bug,
// not a data condition).
func (p *Pool) claim(nodes []topology.NodeID) {
	for _, n := range nodes {
		if p.taken[n] {
			panic(fmt.Sprintf("placement: node %d allocated twice", n))
		}
		p.taken[n] = true
	}
	p.free -= len(nodes)
}

// Release returns nodes to the pool (job completion).
func (p *Pool) Release(nodes []topology.NodeID) {
	for _, n := range nodes {
		if !p.taken[n] {
			panic(fmt.Sprintf("placement: releasing free node %d", n))
		}
		p.taken[n] = false
	}
	p.free += len(nodes)
}

// AllocateFrom places a job of `size` ranks on the pool's free nodes under
// the given policy and claims them. Unit-based policies (cabinet, chassis,
// router) fill the free nodes of each randomly chosen unit contiguously,
// so fragmentation degrades locality exactly as it would on a real machine.
func AllocateFrom(p *Pool, pol Policy, size int, rng *des.RNG) ([]topology.NodeID, error) {
	if size < 1 {
		return nil, fmt.Errorf("placement: job size %d must be >= 1", size)
	}
	if size > p.free {
		return nil, fmt.Errorf("placement: job size %d exceeds %d free nodes", size, p.free)
	}
	topo := p.topo
	var out []topology.NodeID
	switch pol {
	case Contiguous:
		out = make([]topology.NodeID, 0, size)
		for n := 0; n < topo.NumNodes() && len(out) < size; n++ {
			if !p.taken[n] {
				out = append(out, topology.NodeID(n))
			}
		}
	case RandomCabinet:
		out = fillUnitsFrom(p, size, rng, topo.CabinetCount(), func(u int) []topology.NodeID {
			return nodesOfRouters(topo, topo.RoutersInCabinet(u))
		})
	case RandomChassis:
		out = fillUnitsFrom(p, size, rng, topo.ChassisCount(), func(u int) []topology.NodeID {
			return nodesOfRouters(topo, topo.RoutersInChassis(u))
		})
	case RandomRouter:
		out = fillUnitsFrom(p, size, rng, topo.NumRouters(), func(u int) []topology.NodeID {
			return topo.NodesOfRouter(topology.RouterID(u))
		})
	case RandomNode:
		frees := make([]topology.NodeID, 0, p.free)
		for n := 0; n < topo.NumNodes(); n++ {
			if !p.taken[n] {
				frees = append(frees, topology.NodeID(n))
			}
		}
		perm := rng.Perm(len(frees))
		out = make([]topology.NodeID, size)
		for i := range out {
			out[i] = frees[perm[i]]
		}
	default:
		return nil, fmt.Errorf("placement: unknown policy %d", int(pol))
	}
	if len(out) != size {
		return nil, fmt.Errorf("placement: %v allocated %d/%d nodes", pol, len(out), size)
	}
	p.claim(out)
	return out, nil
}

// fillUnitsFrom shuffles units and takes each unit's free nodes in order.
func fillUnitsFrom(p *Pool, size int, rng *des.RNG, units int, nodesOf func(int) []topology.NodeID) []topology.NodeID {
	order := rng.Perm(units)
	out := make([]topology.NodeID, 0, size)
	for _, u := range order {
		for _, n := range nodesOf(u) {
			if p.taken[n] {
				continue
			}
			out = append(out, n)
			if len(out) == size {
				return out
			}
		}
	}
	return out
}
