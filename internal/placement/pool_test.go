package placement

import (
	"testing"
	"testing/quick"

	"dragonfly/internal/des"
	"dragonfly/internal/topology"
	"dragonfly/internal/topotest"
)

func TestPoolAllocateMatchesEmptyMachineAllocate(t *testing.T) {
	topo := topotest.Theta(t)
	for _, p := range All() {
		direct, err := Allocate(topo, p, 500, des.NewRNG(3, "same"))
		if err != nil {
			t.Fatal(err)
		}
		pool := NewPool(topo)
		pooled, err := AllocateFrom(pool, p, 500, des.NewRNG(3, "same"))
		if err != nil {
			t.Fatal(err)
		}
		for i := range direct {
			if direct[i] != pooled[i] {
				t.Fatalf("%v: pool allocation diverges from empty-machine allocation at rank %d", p, i)
			}
		}
	}
}

func TestPoolSequentialJobsDisjoint(t *testing.T) {
	topo := topotest.Theta(t)
	pool := NewPool(topo)
	rng := des.NewRNG(5, "jobs")
	var all []topology.NodeID
	sizes := []int{300, 700, 128, 1000}
	policies := []Policy{Contiguous, RandomNode, RandomCabinet, RandomRouter}
	for i, size := range sizes {
		nodes, err := AllocateFrom(pool, policies[i], size, rng)
		if err != nil {
			t.Fatalf("job %d: %v", i, err)
		}
		all = append(all, nodes...)
	}
	seen := map[topology.NodeID]bool{}
	for _, n := range all {
		if seen[n] {
			t.Fatalf("node %d allocated to two jobs", n)
		}
		seen[n] = true
	}
	if pool.Free() != topo.NumNodes()-len(all) {
		t.Fatalf("Free = %d, want %d", pool.Free(), topo.NumNodes()-len(all))
	}
}

func TestPoolContiguousSkipsTakenNodes(t *testing.T) {
	topo := topotest.Mini(t)
	pool := NewPool(topo)
	rng := des.NewRNG(1, "frag")
	// Occupy nodes 0..9 with a first job.
	first, err := AllocateFrom(pool, Contiguous, 10, rng)
	if err != nil {
		t.Fatal(err)
	}
	second, err := AllocateFrom(pool, Contiguous, 5, rng)
	if err != nil {
		t.Fatal(err)
	}
	for i, n := range second {
		if int(n) != 10+i {
			t.Fatalf("second contiguous job rank %d on node %d, want %d", i, n, 10+i)
		}
	}
	_ = first
}

func TestPoolReleaseReusesNodes(t *testing.T) {
	topo := topotest.Mini(t)
	pool := NewPool(topo)
	rng := des.NewRNG(2, "rel")
	nodes, _ := AllocateFrom(pool, RandomNode, 40, rng)
	if pool.Free() != 24 {
		t.Fatalf("Free = %d", pool.Free())
	}
	pool.Release(nodes)
	if pool.Free() != 64 {
		t.Fatalf("Free after release = %d", pool.Free())
	}
	again, err := AllocateFrom(pool, Contiguous, 64, rng)
	if err != nil || len(again) != 64 {
		t.Fatalf("full-machine reallocation failed: %v", err)
	}
}

func TestPoolRejectsOversizedJob(t *testing.T) {
	topo := topotest.Mini(t)
	pool := NewPool(topo)
	rng := des.NewRNG(3, "over")
	if _, err := AllocateFrom(pool, Contiguous, 60, rng); err != nil {
		t.Fatal(err)
	}
	if _, err := AllocateFrom(pool, RandomNode, 5, rng); err == nil {
		t.Fatal("accepted job exceeding free nodes")
	}
	if _, err := AllocateFrom(pool, RandomNode, 0, rng); err == nil {
		t.Fatal("accepted empty job")
	}
}

func TestPoolReleasePanicsOnFreeNode(t *testing.T) {
	topo := topotest.Mini(t)
	pool := NewPool(topo)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	pool.Release([]topology.NodeID{1})
}

// Property: any interleaving of allocations under any policies keeps jobs
// disjoint and the free count consistent.
func TestPoolInvariantProperty(t *testing.T) {
	topo := topotest.Mini(t)
	f := func(sizes []uint8, polRaw []uint8, seed int64) bool {
		pool := NewPool(topo)
		rng := des.NewRNG(seed, "prop")
		used := map[topology.NodeID]bool{}
		total := 0
		for i, sz := range sizes {
			size := 1 + int(sz)%16
			if size > pool.Free() {
				break
			}
			pol := All()[0]
			if len(polRaw) > 0 {
				pol = All()[int(polRaw[i%len(polRaw)])%len(All())]
			}
			nodes, err := AllocateFrom(pool, pol, size, rng)
			if err != nil {
				return false
			}
			for _, n := range nodes {
				if used[n] {
					return false
				}
				used[n] = true
			}
			total += size
		}
		return pool.Free() == topo.NumNodes()-total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
