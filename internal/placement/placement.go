// Package placement implements the five job placement policies the paper
// compares (Sec. III-B). A placement maps MPI rank i of a job to the i-th
// node of the returned allocation, so "contiguity" of the allocation order
// is what preserves communication locality.
package placement

import (
	"fmt"

	"dragonfly/internal/des"
	"dragonfly/internal/topology"
)

// Policy selects one of the paper's placement schemes.
type Policy int

const (
	// Contiguous assigns consecutive nodes, preserving spatial locality and
	// tending to keep a job inside one group.
	Contiguous Policy = iota
	// RandomCabinet allocates randomly chosen cabinets; nodes within a
	// cabinet stay contiguous.
	RandomCabinet
	// RandomChassis allocates randomly chosen chassis; nodes within a
	// chassis stay contiguous.
	RandomChassis
	// RandomRouter allocates randomly chosen routers; the nodes of a router
	// stay together.
	RandomRouter
	// RandomNode scatters individual nodes across the whole machine,
	// balancing traffic at the cost of longer paths.
	RandomNode
)

// String returns the paper's abbreviation (Table I): cont, cab, chas, rotr,
// rand.
func (p Policy) String() string {
	switch p {
	case Contiguous:
		return "cont"
	case RandomCabinet:
		return "cab"
	case RandomChassis:
		return "chas"
	case RandomRouter:
		return "rotr"
	case RandomNode:
		return "rand"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// All lists the policies in the paper's presentation order.
func All() []Policy {
	return []Policy{Contiguous, RandomCabinet, RandomChassis, RandomRouter, RandomNode}
}

// Parse converts an abbreviation or full name to a Policy.
func Parse(s string) (Policy, error) {
	switch s {
	case "cont", "contiguous":
		return Contiguous, nil
	case "cab", "random-cabinet", "cabinet":
		return RandomCabinet, nil
	case "chas", "random-chassis", "chassis":
		return RandomChassis, nil
	case "rotr", "random-router", "router":
		return RandomRouter, nil
	case "rand", "random-node", "node":
		return RandomNode, nil
	}
	return 0, fmt.Errorf("placement: unknown policy %q", s)
}

// Allocate returns the nodes assigned to a job of size ranks on an empty
// machine; rank i runs on the i-th returned node. The rng drives every
// random choice, so a (policy, size, seed) triple is reproducible.
func Allocate(topo topology.Interconnect, p Policy, size int, rng *des.RNG) ([]topology.NodeID, error) {
	if size < 1 {
		return nil, fmt.Errorf("placement: job size %d must be >= 1", size)
	}
	if size > topo.NumNodes() {
		return nil, fmt.Errorf("placement: job size %d exceeds machine size %d", size, topo.NumNodes())
	}
	switch p {
	case Contiguous:
		out := make([]topology.NodeID, size)
		for i := range out {
			out[i] = topology.NodeID(i)
		}
		return out, nil
	case RandomCabinet:
		return fillUnits(topo, size, rng, topo.CabinetCount(), func(u int) []topology.NodeID {
			return nodesOfRouters(topo, topo.RoutersInCabinet(u))
		}), nil
	case RandomChassis:
		return fillUnits(topo, size, rng, topo.ChassisCount(), func(u int) []topology.NodeID {
			return nodesOfRouters(topo, topo.RoutersInChassis(u))
		}), nil
	case RandomRouter:
		return fillUnits(topo, size, rng, topo.NumRouters(), func(u int) []topology.NodeID {
			return topo.NodesOfRouter(topology.RouterID(u))
		}), nil
	case RandomNode:
		perm := rng.Perm(topo.NumNodes())
		out := make([]topology.NodeID, size)
		for i := range out {
			out[i] = topology.NodeID(perm[i])
		}
		return out, nil
	default:
		return nil, fmt.Errorf("placement: unknown policy %d", int(p))
	}
}

// fillUnits shuffles allocation units (cabinets, chassis, routers) and fills
// them in shuffled order, keeping each unit's nodes contiguous.
func fillUnits(topo topology.Interconnect, size int, rng *des.RNG, units int, nodesOf func(int) []topology.NodeID) []topology.NodeID {
	order := rng.Perm(units)
	out := make([]topology.NodeID, 0, size)
	for _, u := range order {
		for _, n := range nodesOf(u) {
			out = append(out, n)
			if len(out) == size {
				return out
			}
		}
	}
	// size was validated against the machine; the units cover every node.
	panic("placement: allocation units did not cover the machine")
}

func nodesOfRouters(topo topology.Interconnect, rs []topology.RouterID) []topology.NodeID {
	out := make([]topology.NodeID, 0, len(rs)*topo.NodesPerRouter())
	for _, r := range rs {
		out = append(out, topo.NodesOfRouter(r)...)
	}
	return out
}

// Remaining returns the machine's nodes not in `used`, in ascending order —
// the nodes the paper's synthetic background job occupies.
func Remaining(topo topology.Interconnect, used []topology.NodeID) []topology.NodeID {
	taken := make([]bool, topo.NumNodes())
	for _, n := range used {
		taken[n] = true
	}
	out := make([]topology.NodeID, 0, topo.NumNodes()-len(used))
	for n := 0; n < topo.NumNodes(); n++ {
		if !taken[n] {
			out = append(out, topology.NodeID(n))
		}
	}
	return out
}
