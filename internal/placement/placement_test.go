package placement

import (
	"testing"
	"testing/quick"

	"dragonfly/internal/des"
	"dragonfly/internal/topology"
	"dragonfly/internal/topotest"
)

func TestPolicyStringParseRoundTrip(t *testing.T) {
	for _, p := range All() {
		got, err := Parse(p.String())
		if err != nil || got != p {
			t.Errorf("Parse(%q) = %v, %v", p.String(), got, err)
		}
	}
	if _, err := Parse("bogus"); err == nil {
		t.Error("Parse accepted garbage")
	}
	long := map[string]Policy{
		"contiguous": Contiguous, "random-cabinet": RandomCabinet,
		"random-chassis": RandomChassis, "random-router": RandomRouter,
		"random-node": RandomNode,
	}
	for s, want := range long {
		if got, err := Parse(s); err != nil || got != want {
			t.Errorf("Parse(%q) = %v, %v", s, got, err)
		}
	}
}

func TestAllocateSizeAndUniqueness(t *testing.T) {
	topo := topotest.Theta(t)
	for _, p := range All() {
		for _, size := range []int{1, 7, 1000, topo.NumNodes()} {
			nodes, err := Allocate(topo, p, size, des.NewRNG(1, "alloc"))
			if err != nil {
				t.Fatalf("%v size %d: %v", p, size, err)
			}
			if len(nodes) != size {
				t.Fatalf("%v size %d: got %d nodes", p, size, len(nodes))
			}
			seen := make(map[topology.NodeID]bool, size)
			for _, n := range nodes {
				if n < 0 || int(n) >= topo.NumNodes() {
					t.Fatalf("%v: node %d out of range", p, n)
				}
				if seen[n] {
					t.Fatalf("%v: node %d allocated twice", p, n)
				}
				seen[n] = true
			}
		}
	}
}

func TestAllocateRejectsBadSizes(t *testing.T) {
	topo := topotest.Theta(t)
	if _, err := Allocate(topo, Contiguous, 0, des.NewRNG(1, "a")); err == nil {
		t.Error("size 0 accepted")
	}
	if _, err := Allocate(topo, RandomNode, topo.NumNodes()+1, des.NewRNG(1, "a")); err == nil {
		t.Error("oversized job accepted")
	}
}

func TestContiguousIsPrefix(t *testing.T) {
	topo := topotest.Theta(t)
	nodes, _ := Allocate(topo, Contiguous, 1000, des.NewRNG(1, "c"))
	for i, n := range nodes {
		if int(n) != i {
			t.Fatalf("contiguous rank %d on node %d", i, n)
		}
	}
	// 1000 nodes / 4 per router = 250 routers; 250/96 routers per group ->
	// spans 3 groups, preserving the locality the paper describes.
	groups := map[int]bool{}
	for _, n := range nodes {
		groups[topo.GroupOfNode(n)] = true
	}
	if len(groups) != 3 {
		t.Fatalf("contiguous 1000-node job spans %d groups, want 3", len(groups))
	}
}

func TestRandomCabinetKeepsCabinetsWholeAndContiguous(t *testing.T) {
	topo := topotest.Theta(t)
	const size = 1000
	nodes, _ := Allocate(topo, RandomCabinet, size, des.NewRNG(5, "cab"))
	perCab := 48 * topo.Config().NodesPerRouter // 192 nodes
	for start := 0; start < size; start += perCab {
		end := start + perCab
		if end > size {
			end = size // trailing cabinet may be partially used
		}
		cab := topo.CabinetOfRouter(topo.RouterOfNode(nodes[start]))
		for i := start; i < end; i++ {
			if topo.CabinetOfRouter(topo.RouterOfNode(nodes[i])) != cab {
				t.Fatalf("rank %d leaked out of cabinet %d", i, cab)
			}
			if i > start && nodes[i] != nodes[i-1]+1 {
				t.Fatalf("nodes within cabinet not contiguous at rank %d", i)
			}
		}
	}
}

func TestRandomChassisKeepsChassisWhole(t *testing.T) {
	topo := topotest.Theta(t)
	const size = 1000
	nodes, _ := Allocate(topo, RandomChassis, size, des.NewRNG(6, "chas"))
	perChas := 16 * topo.Config().NodesPerRouter // 64 nodes
	for start := 0; start < size; start += perChas {
		end := start + perChas
		if end > size {
			end = size
		}
		ch := topo.ChassisOfRouter(topo.RouterOfNode(nodes[start]))
		for i := start; i < end; i++ {
			if topo.ChassisOfRouter(topo.RouterOfNode(nodes[i])) != ch {
				t.Fatalf("rank %d leaked out of chassis %d", i, ch)
			}
		}
	}
}

func TestRandomRouterKeepsRoutersWhole(t *testing.T) {
	topo := topotest.Theta(t)
	const size = 1000
	nodes, _ := Allocate(topo, RandomRouter, size, des.NewRNG(7, "rotr"))
	per := topo.Config().NodesPerRouter
	for start := 0; start < size; start += per {
		end := start + per
		if end > size {
			end = size
		}
		r := topo.RouterOfNode(nodes[start])
		for i := start; i < end; i++ {
			if topo.RouterOfNode(nodes[i]) != r {
				t.Fatalf("rank %d leaked off router %d", i, r)
			}
		}
	}
}

func TestRandomNodeSpreadsAcrossGroups(t *testing.T) {
	topo := topotest.Theta(t)
	nodes, _ := Allocate(topo, RandomNode, 1000, des.NewRNG(8, "rand"))
	counts := map[int]int{}
	for _, n := range nodes {
		counts[topo.GroupOfNode(n)]++
	}
	if len(counts) != topo.NumGroups() {
		t.Fatalf("random-node hit %d groups, want all %d", len(counts), topo.NumGroups())
	}
	// With 1000 draws over 9 groups, expect roughly 111 per group; 3x
	// imbalance would indicate a broken shuffle.
	for g, c := range counts {
		if c < 37 || c > 333 {
			t.Fatalf("group %d holds %d ranks, implausible for a uniform shuffle", g, c)
		}
	}
}

func TestAllocateDeterministicBySeed(t *testing.T) {
	topo := topotest.Theta(t)
	for _, p := range All() {
		a, _ := Allocate(topo, p, 500, des.NewRNG(11, "d"))
		b, _ := Allocate(topo, p, 500, des.NewRNG(11, "d"))
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%v: allocation differs at rank %d with same seed", p, i)
			}
		}
		c, _ := Allocate(topo, p, 500, des.NewRNG(12, "d"))
		if p != Contiguous {
			same := true
			for i := range a {
				if a[i] != c[i] {
					same = false
					break
				}
			}
			if same {
				t.Errorf("%v: different seeds produced identical allocation", p)
			}
		}
	}
}

func TestRemainingComplement(t *testing.T) {
	topo := topotest.Mini(t)
	used, _ := Allocate(topo, RandomNode, 20, des.NewRNG(3, "r"))
	rest := Remaining(topo, used)
	if len(rest) != topo.NumNodes()-20 {
		t.Fatalf("Remaining returned %d nodes, want %d", len(rest), topo.NumNodes()-20)
	}
	inUsed := map[topology.NodeID]bool{}
	for _, n := range used {
		inUsed[n] = true
	}
	for i, n := range rest {
		if inUsed[n] {
			t.Fatalf("Remaining contains used node %d", n)
		}
		if i > 0 && rest[i-1] >= n {
			t.Fatal("Remaining not in ascending order")
		}
	}
}

// Property: any (policy, size, seed) allocation is a duplicate-free subset
// of the machine with exactly `size` members.
func TestAllocatePropertyMini(t *testing.T) {
	topo := topotest.Mini(t)
	f := func(policyRaw uint8, sizeRaw uint8, seed int64) bool {
		p := All()[int(policyRaw)%len(All())]
		size := 1 + int(sizeRaw)%topo.NumNodes()
		nodes, err := Allocate(topo, p, size, des.NewRNG(seed, "prop"))
		if err != nil || len(nodes) != size {
			return false
		}
		seen := map[topology.NodeID]bool{}
		for _, n := range nodes {
			if n < 0 || int(n) >= topo.NumNodes() || seen[n] {
				return false
			}
			seen[n] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
