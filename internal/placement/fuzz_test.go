package placement_test

import (
	"testing"

	"dragonfly/internal/des"
	"dragonfly/internal/placement"
	"dragonfly/internal/topology"
)

// FuzzPlacement: for arbitrary small machines, policies, job sizes, and
// seeds, Allocate must either return an error (size out of range, unknown
// policy) or a valid allocation: exactly `size` distinct in-range nodes,
// whose complement via Remaining partitions the machine. A panic or an
// invalid allocation is a placement bug.
func FuzzPlacement(f *testing.F) {
	f.Add(uint8(0), int16(1), int64(1), uint8(3), uint8(1), uint8(3), uint8(1), uint8(0))
	f.Add(uint8(4), int16(64), int64(42), uint8(3), uint8(1), uint8(3), uint8(1), uint8(0))
	f.Add(uint8(2), int16(0), int64(7), uint8(1), uint8(0), uint8(0), uint8(0), uint8(0))
	f.Add(uint8(5), int16(10), int64(9), uint8(2), uint8(2), uint8(4), uint8(2), uint8(0))
	f.Add(uint8(3), int16(-5), int64(3), uint8(4), uint8(0), uint8(1), uint8(3), uint8(0))
	f.Add(uint8(1), int16(12), int64(4), uint8(3), uint8(2), uint8(1), uint8(2), uint8(1))
	f.Add(uint8(4), int16(40), int64(8), uint8(4), uint8(3), uint8(2), uint8(3), uint8(1))
	f.Add(uint8(2), int16(7), int64(21), uint8(2), uint8(1), uint8(0), uint8(1), uint8(1))
	f.Fuzz(func(t *testing.T, polRaw uint8, size int16, seed int64, groups, rows, cols, nodesPer uint8, family uint8) {
		// family selects the machine: even = XC40 dragonfly, odd = Dragonfly+.
		var topo topology.Interconnect
		var err error
		if family%2 == 0 {
			cfg := topology.Config{
				Groups:            1 + int(groups)%6,
				Rows:              1 + int(rows)%3,
				Cols:              1 + int(cols)%5,
				NodesPerRouter:    1 + int(nodesPer)%4,
				ChassisPerCabinet: 1 + int(rows)%2,
			}
			if cfg.Groups > 1 {
				cfg.GlobalPortsPerRouter = 1 + (cfg.Groups-2)/(cfg.Rows*cfg.Cols)
			}
			topo, err = topology.New(cfg)
		} else {
			cfg := topology.PlusConfig{
				Groups:            1 + int(groups)%5,
				Leaves:            1 + int(rows)%4,
				Spines:            1 + int(cols)%3,
				NodesPerLeaf:      1 + int(nodesPer)%4,
				LeavesPerChassis:  1 + int(rows)%2,
				ChassisPerCabinet: 1 + int(cols)%2,
			}
			if cfg.Groups > 1 {
				cfg.GlobalPortsPerSpine = (cfg.Groups-1+cfg.Spines-1)/cfg.Spines + int(seed&1)
			}
			topo, err = topology.NewPlus(cfg)
		}
		if err != nil {
			t.Skip()
		}
		// polRaw%6 covers the five policies plus one invalid value, which
		// must be rejected, never panic.
		pol := placement.Policy(int(polRaw) % 6)
		rng := des.NewRNG(seed, "fuzz").Stream("placement")
		nodes, err := placement.Allocate(topo, pol, int(size), rng)

		validSize := int(size) >= 1 && int(size) <= topo.NumNodes()
		validPol := int(pol) < 5
		if !validSize || !validPol {
			if err == nil {
				t.Fatalf("Allocate(%v, size=%d) on %d nodes accepted invalid input: %v",
					pol, size, topo.NumNodes(), nodes)
			}
			return
		}
		if err != nil {
			t.Fatalf("Allocate(%v, size=%d) on %d nodes: %v", pol, size, topo.NumNodes(), err)
		}
		if len(nodes) != int(size) {
			t.Fatalf("Allocate(%v, size=%d) returned %d nodes", pol, size, len(nodes))
		}
		seen := make(map[topology.NodeID]bool, len(nodes))
		for _, n := range nodes {
			if int(n) < 0 || int(n) >= topo.NumNodes() {
				t.Fatalf("Allocate(%v, size=%d): node %d out of range [0,%d)", pol, size, n, topo.NumNodes())
			}
			if seen[n] {
				t.Fatalf("Allocate(%v, size=%d): node %d allocated twice", pol, size, n)
			}
			seen[n] = true
		}
		// Remaining must be the exact complement: together they partition the
		// machine (what the background-job carve-out relies on).
		rest := placement.Remaining(topo, nodes)
		if len(rest)+len(nodes) != topo.NumNodes() {
			t.Fatalf("Remaining returned %d nodes for a %d-node job on %d nodes",
				len(rest), len(nodes), topo.NumNodes())
		}
		for _, n := range rest {
			if seen[n] {
				t.Fatalf("node %d both allocated and remaining", n)
			}
		}
	})
}
