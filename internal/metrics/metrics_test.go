package metrics

import (
	"testing"

	"dragonfly/internal/des"
	"dragonfly/internal/network"
	"dragonfly/internal/routing"
	"dragonfly/internal/topology"
	"dragonfly/internal/topotest"
)

func TestCommTimesMs(t *testing.T) {
	got := CommTimesMs([]des.Time{des.Millisecond, 2500 * des.Microsecond})
	if got[0] != 1 || got[1] != 2.5 {
		t.Fatalf("CommTimesMs = %v", got)
	}
}

func TestRouterSet(t *testing.T) {
	topo := topotest.Mini(t)
	nodes := []topology.NodeID{0, 1, 2, 5}
	set := RouterSet(topo, nodes)
	// Mini has 2 nodes per router: nodes 0,1 -> router 0; 2 -> 1; 5 -> 2.
	want := []topology.RouterID{0, 1, 2}
	if len(set) != len(want) {
		t.Fatalf("RouterSet = %v", set)
	}
	for _, r := range want {
		if !set[r] {
			t.Fatalf("RouterSet missing router %d", r)
		}
	}
}

func fakeLinks() []network.LinkStat {
	return []network.LinkStat{
		{Kind: routing.Local, From: 0, To: 1, Bytes: 2 * MiB, SatTime: des.Millisecond},
		{Kind: routing.Local, From: 1, To: 0, Bytes: 1 * MiB, SatTime: 0},
		{Kind: routing.Global, From: 0, To: 8, Bytes: 4 * MiB, SatTime: 2 * des.Millisecond},
		{Kind: routing.Terminal, From: 0, To: 0, Node: 0, Bytes: 10 * MiB},
	}
}

func TestChannelTrafficByKindAndFilter(t *testing.T) {
	links := fakeLinks()
	local := ChannelTraffic(links, routing.Local, nil)
	if len(local) != 2 || local[0] != 2 || local[1] != 1 {
		t.Fatalf("local traffic = %v", local)
	}
	global := ChannelTraffic(links, routing.Global, nil)
	if len(global) != 1 || global[0] != 4 {
		t.Fatalf("global traffic = %v", global)
	}
	filtered := ChannelTraffic(links, routing.Local, map[topology.RouterID]bool{0: true})
	if len(filtered) != 1 || filtered[0] != 2 {
		t.Fatalf("filtered traffic = %v", filtered)
	}
}

func TestChannelSaturation(t *testing.T) {
	links := fakeLinks()
	sat := ChannelSaturation(links, routing.Global, nil)
	if len(sat) != 1 || sat[0] != 2 {
		t.Fatalf("global saturation = %v", sat)
	}
	sat = ChannelSaturation(links, routing.Local, map[topology.RouterID]bool{1: true})
	if len(sat) != 1 || sat[0] != 0 {
		t.Fatalf("filtered local saturation = %v", sat)
	}
}

func TestTotalBytes(t *testing.T) {
	links := fakeLinks()
	if got := TotalBytes(links, routing.Local); got != 3*MiB {
		t.Fatalf("local total = %d", got)
	}
	if got := TotalBytes(links, routing.Terminal); got != 10*MiB {
		t.Fatalf("terminal total = %d", got)
	}
}
