// Package metrics converts raw fabric and replay state into the paper's
// four evaluation metrics (Sec. III-E): communication time, average hops,
// per-channel network traffic, and link saturation time — in the units the
// figures use (milliseconds and MiB).
package metrics

import (
	"dragonfly/internal/des"
	"dragonfly/internal/network"
	"dragonfly/internal/routing"
	"dragonfly/internal/topology"
)

// MiB is the traffic unit of Figs. 4-6 and 8-10.
const MiB = 1024 * 1024

// CommTimesMs converts per-rank communication times to milliseconds.
func CommTimesMs(times []des.Time) []float64 {
	out := make([]float64, len(times))
	for i, t := range times {
		out[i] = t.Milliseconds()
	}
	return out
}

// RouterSet builds the set of routers serving the given nodes — the routers
// whose channels Figs. 8-10 analyze ("routers that serve the nodes assigned
// to the target application").
func RouterSet(topo topology.Interconnect, nodes []topology.NodeID) map[topology.RouterID]bool {
	set := make(map[topology.RouterID]bool, len(nodes))
	for _, n := range nodes {
		set[topo.RouterOfNode(n)] = true
	}
	return set
}

// ChannelTraffic returns the traffic in MiB of every directed channel of
// the given kind, one value per channel. A non-nil routers set restricts
// the census to channels leaving those routers.
func ChannelTraffic(links []network.LinkStat, kind routing.LinkKind, routers map[topology.RouterID]bool) []float64 {
	var out []float64
	for _, l := range links {
		if l.Kind != kind {
			continue
		}
		if routers != nil && !routers[l.From] {
			continue
		}
		out = append(out, float64(l.Bytes)/MiB)
	}
	return out
}

// ChannelSaturation returns the saturation time in milliseconds of every
// directed channel of the given kind, optionally restricted to channels
// leaving the given routers.
func ChannelSaturation(links []network.LinkStat, kind routing.LinkKind, routers map[topology.RouterID]bool) []float64 {
	var out []float64
	for _, l := range links {
		if l.Kind != kind {
			continue
		}
		if routers != nil && !routers[l.From] {
			continue
		}
		out = append(out, l.SatTime.Milliseconds())
	}
	return out
}

// TotalBytes sums the traffic of channels of one kind.
func TotalBytes(links []network.LinkStat, kind routing.LinkKind) int64 {
	var total int64
	for _, l := range links {
		if l.Kind == kind {
			total += l.Bytes
		}
	}
	return total
}
