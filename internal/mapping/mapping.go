// Package mapping implements task mapping — assigning MPI ranks to the
// nodes of an existing allocation. The paper uses the identity mapping
// (rank i on the i-th allocated node) and names task mapping for
// diversified workloads as future work (Sec. VI); this package provides
// that extension: alternative mappings that preserve or destroy the
// adjacency between rank space and machine space, studied by the "xmap"
// extension experiment.
package mapping

import (
	"fmt"
	"sort"

	"dragonfly/internal/des"
	"dragonfly/internal/topology"
)

// Policy selects a task-mapping scheme.
type Policy int

const (
	// Identity keeps the allocation order: rank i on nodes[i] (the
	// paper's setup).
	Identity Policy = iota
	// Shuffle randomly permutes ranks over the allocated nodes,
	// destroying any adjacency the placement preserved.
	Shuffle
	// RouterPacked orders the allocated nodes router-major (all nodes of
	// one router consecutively, routers in machine order), packing
	// consecutive ranks onto shared routers — the locality-restoring
	// mapping for neighbor-heavy applications on scattered allocations.
	RouterPacked
	// GroupPacked orders the allocated nodes group-major, packing
	// consecutive ranks into the same dragonfly group.
	GroupPacked
)

// String names the policy.
func (p Policy) String() string {
	switch p {
	case Identity:
		return "identity"
	case Shuffle:
		return "shuffle"
	case RouterPacked:
		return "router-packed"
	case GroupPacked:
		return "group-packed"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// All lists the mapping policies.
func All() []Policy { return []Policy{Identity, Shuffle, RouterPacked, GroupPacked} }

// Parse converts a policy name.
func Parse(s string) (Policy, error) {
	for _, p := range All() {
		if p.String() == s {
			return p, nil
		}
	}
	return 0, fmt.Errorf("mapping: unknown policy %q", s)
}

// Apply returns the rank-to-node assignment for an allocation: result[i]
// is the node of rank i. The input slice is never mutated. rng is used by
// Shuffle only (may be nil otherwise).
func Apply(p Policy, topo topology.Interconnect, nodes []topology.NodeID, rng *des.RNG) ([]topology.NodeID, error) {
	out := append([]topology.NodeID(nil), nodes...)
	switch p {
	case Identity:
	case Shuffle:
		if rng == nil {
			return nil, fmt.Errorf("mapping: Shuffle needs an RNG")
		}
		rng.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	case RouterPacked:
		sort.Slice(out, func(i, j int) bool {
			ri, rj := topo.RouterOfNode(out[i]), topo.RouterOfNode(out[j])
			if ri != rj {
				return ri < rj
			}
			return out[i] < out[j]
		})
	case GroupPacked:
		sort.Slice(out, func(i, j int) bool {
			gi, gj := topo.GroupOfNode(out[i]), topo.GroupOfNode(out[j])
			if gi != gj {
				return gi < gj
			}
			return out[i] < out[j]
		})
	default:
		return nil, fmt.Errorf("mapping: unknown policy %d", int(p))
	}
	return out, nil
}
