package mapping

import (
	"testing"

	"dragonfly/internal/des"
	"dragonfly/internal/placement"
	"dragonfly/internal/topology"
	"dragonfly/internal/topotest"
)

func alloc(t *testing.T, topo *topology.Topology, pol placement.Policy, n int) []topology.NodeID {
	t.Helper()
	nodes, err := placement.Allocate(topo, pol, n, des.NewRNG(1, "alloc"))
	if err != nil {
		t.Fatal(err)
	}
	return nodes
}

func samePermutation(a, b []topology.NodeID) bool {
	if len(a) != len(b) {
		return false
	}
	seen := map[topology.NodeID]int{}
	for _, n := range a {
		seen[n]++
	}
	for _, n := range b {
		seen[n]--
	}
	for _, c := range seen {
		if c != 0 {
			return false
		}
	}
	return true
}

func TestStringParseRoundTrip(t *testing.T) {
	for _, p := range All() {
		got, err := Parse(p.String())
		if err != nil || got != p {
			t.Errorf("Parse(%q) = %v, %v", p.String(), got, err)
		}
	}
	if _, err := Parse("nope"); err == nil {
		t.Error("Parse accepted garbage")
	}
}

func TestIdentityKeepsOrder(t *testing.T) {
	topo := topotest.Mini(t)
	nodes := alloc(t, topo, placement.RandomNode, 20)
	out, err := Apply(Identity, topo, nodes, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range nodes {
		if out[i] != nodes[i] {
			t.Fatal("identity mapping reordered nodes")
		}
	}
}

func TestAllPoliciesArePermutations(t *testing.T) {
	topo := topotest.Mini(t)
	nodes := alloc(t, topo, placement.RandomNode, 30)
	for _, p := range All() {
		out, err := Apply(p, topo, nodes, des.NewRNG(2, "m"))
		if err != nil {
			t.Fatalf("%v: %v", p, err)
		}
		if !samePermutation(nodes, out) {
			t.Fatalf("%v: output is not a permutation of the allocation", p)
		}
	}
	// Input never mutated.
	again := alloc(t, topo, placement.RandomNode, 30)
	for i := range nodes {
		if nodes[i] != again[i] {
			t.Fatal("Apply mutated its input")
		}
	}
}

// The rank -> node assignment must be invertible for every policy and
// allocation size: node -> rank -> node is the identity over the allocation,
// and every allocated node receives exactly one rank. Sizes cover the
// degenerate single-rank job and the full machine.
func TestRankNodeRoundTrip(t *testing.T) {
	topo := topotest.Mini(t)
	for _, size := range []int{1, 2, 7, 32, topo.NumNodes()} {
		nodes := alloc(t, topo, placement.RandomNode, size)
		for _, p := range All() {
			out, err := Apply(p, topo, nodes, des.NewRNG(5, "rt"))
			if err != nil {
				t.Fatalf("%v size %d: %v", p, size, err)
			}
			rankOf := make(map[topology.NodeID]int, len(out))
			for rank, n := range out {
				if prev, dup := rankOf[n]; dup {
					t.Fatalf("%v size %d: node %d assigned to ranks %d and %d", p, size, n, prev, rank)
				}
				rankOf[n] = rank
			}
			for _, n := range nodes {
				rank, ok := rankOf[n]
				if !ok {
					t.Fatalf("%v size %d: allocated node %d received no rank", p, size, n)
				}
				if out[rank] != n {
					t.Fatalf("%v size %d: round trip broke at node %d", p, size, n)
				}
			}
		}
	}
}

// Unknown policies are rejected, never silently identity-mapped.
func TestApplyRejectsUnknownPolicy(t *testing.T) {
	topo := topotest.Mini(t)
	nodes := alloc(t, topo, placement.Contiguous, 4)
	if _, err := Apply(Policy(99), topo, nodes, nil); err == nil {
		t.Fatal("unknown policy accepted")
	}
}

func TestRouterPackedPacksConsecutiveRanks(t *testing.T) {
	topo := topotest.Mini(t)
	// Random-node allocation scatters; router-packed must re-pack pairs of
	// ranks onto shared routers wherever both nodes of a router were
	// allocated.
	nodes := alloc(t, topo, placement.RandomNode, 64) // whole machine
	out, err := Apply(RouterPacked, topo, nodes, nil)
	if err != nil {
		t.Fatal(err)
	}
	// With the full machine allocated, ranks 2k and 2k+1 share a router.
	for i := 0; i+1 < len(out); i += 2 {
		if topo.RouterOfNode(out[i]) != topo.RouterOfNode(out[i+1]) {
			t.Fatalf("ranks %d,%d on different routers after RouterPacked", i, i+1)
		}
	}
}

func TestGroupPackedGroupsMonotone(t *testing.T) {
	topo := topotest.Mini(t)
	nodes := alloc(t, topo, placement.RandomNode, 40)
	out, err := Apply(GroupPacked, topo, nodes, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(out); i++ {
		if topo.GroupOfNode(out[i]) < topo.GroupOfNode(out[i-1]) {
			t.Fatal("groups not monotone after GroupPacked")
		}
	}
}

func TestShuffleNeedsRNGAndIsSeeded(t *testing.T) {
	topo := topotest.Mini(t)
	nodes := alloc(t, topo, placement.Contiguous, 32)
	if _, err := Apply(Shuffle, topo, nodes, nil); err == nil {
		t.Fatal("Shuffle without RNG accepted")
	}
	a, _ := Apply(Shuffle, topo, nodes, des.NewRNG(7, "s"))
	b, _ := Apply(Shuffle, topo, nodes, des.NewRNG(7, "s"))
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed shuffled differently")
		}
	}
	c, _ := Apply(Shuffle, topo, nodes, des.NewRNG(8, "s"))
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds shuffled identically")
	}
}
