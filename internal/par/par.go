// Package par is the construction-time worker pool the sharded machine
// builders (topology wiring, routing table resolution, fabric link creation)
// fan out over. It is the PR 1 RunBatch pattern reduced to its essence: a
// bounded set of goroutines over statically partitioned index ranges.
//
// Every user writes to disjoint, pre-sized output slots, so results are
// byte-identical at every worker count — parallelism is a wall-clock
// optimization, never an observable behavior. The pool size is a process-wide
// knob (SetWorkers, the -build-workers flag) because machine construction
// happens behind the topology.Machine seam, far from any CLI plumbing.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// workers is the configured pool size; 0 selects runtime.NumCPU().
var workers int64

// SetWorkers fixes the construction pool size. n <= 0 restores the default
// (runtime.NumCPU()). It returns the previous setting so tests can restore
// it.
func SetWorkers(n int) int {
	prev := int(atomic.LoadInt64(&workers))
	if n < 0 {
		n = 0
	}
	atomic.StoreInt64(&workers, int64(n))
	return prev
}

// Workers returns the effective pool size: the SetWorkers value, or
// runtime.NumCPU() when unset.
func Workers() int {
	if n := int(atomic.LoadInt64(&workers)); n > 0 {
		return n
	}
	return runtime.NumCPU()
}

// ForChunks partitions [0, n) into one contiguous chunk per worker and runs
// fn(lo, hi) for each chunk, concurrently when more than one worker is
// available. fn must confine its writes to state derived from its own index
// range; under that contract the result is identical at every worker count.
// n <= 0 is a no-op; with one worker (or n == 1) fn runs inline.
func ForChunks(n int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	w := Workers()
	if w > n {
		w = n
	}
	if w <= 1 {
		fn(0, n)
		return
	}
	var wg sync.WaitGroup
	chunk := (n + w - 1) / w
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}
