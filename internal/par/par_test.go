package par

import (
	"sync/atomic"
	"testing"
)

func TestForChunksCoversEveryIndexOnce(t *testing.T) {
	for _, w := range []int{0, 1, 2, 3, 4, 7} {
		prev := SetWorkers(w)
		for _, n := range []int{0, 1, 2, 5, 64, 1000} {
			hits := make([]int64, n)
			ForChunks(n, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					atomic.AddInt64(&hits[i], 1)
				}
			})
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("workers=%d n=%d: index %d visited %d times", w, n, i, h)
				}
			}
		}
		SetWorkers(prev)
	}
}

func TestForChunksDeterministicOutput(t *testing.T) {
	const n = 513
	build := func(w int) []int {
		prev := SetWorkers(w)
		defer SetWorkers(prev)
		out := make([]int, n)
		ForChunks(n, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				out[i] = i*i + 7
			}
		})
		return out
	}
	want := build(1)
	for _, w := range []int{2, 3, 8} {
		got := build(w)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", w, i, got[i], want[i])
			}
		}
	}
}

func TestWorkersDefaultsPositive(t *testing.T) {
	prev := SetWorkers(0)
	defer SetWorkers(prev)
	if Workers() < 1 {
		t.Fatalf("Workers() = %d, want >= 1", Workers())
	}
	SetWorkers(3)
	if Workers() != 3 {
		t.Fatalf("Workers() = %d after SetWorkers(3)", Workers())
	}
	SetWorkers(-5)
	if Workers() < 1 {
		t.Fatalf("Workers() = %d after SetWorkers(-5), want default", Workers())
	}
}
