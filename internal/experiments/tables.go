package experiments

import (
	"fmt"

	"dragonfly/internal/core"
	"dragonfly/internal/routing"
	"dragonfly/internal/workload"
)

// TableI regenerates the paper's nomenclature of placement x routing
// configurations.
func (r *Runner) TableI() (*Report, error) {
	t := Table{
		Title:   "Nomenclature of different placement and routing configurations",
		Columns: []string{"placement_policy", "minimal_routing", "adaptive_routing"},
	}
	byName := map[string]core.Cell{}
	for _, c := range core.AllCells() {
		byName[c.Name()] = c
	}
	for _, pol := range []string{"cont", "cab", "chas", "rotr", "rand"} {
		minName := pol + "-" + routing.Minimal.String()
		adpName := pol + "-" + routing.Adaptive.String()
		if _, ok := byName[minName]; !ok {
			return nil, fmt.Errorf("experiments: missing cell %s", minName)
		}
		t.Rows = append(t.Rows, []string{pol, minName, adpName})
	}
	return r.finish(&Report{
		ID:     "table1",
		Title:  "Placement and routing configurations (Table I)",
		Tables: []Table{t},
	})
}

// TableII regenerates the peak background traffic loads. The loads are
// analytic properties of the background generators on the full Theta
// machine (Sec. IV-C): every node not assigned to the target application
// participates, uniform-random messages are 16 KiB, and bursty per-peer
// messages are 16 KiB for the CR run and 1 KiB for FB and AMG.
func (r *Runner) TableII() (*Report, error) {
	machineNodes := r.machineNodes()
	appRanks := map[string]int{}
	for _, app := range appNames() {
		tr, err := r.AppTrace(app)
		if err != nil {
			return nil, err
		}
		appRanks[app] = tr.NumRanks()
	}
	const MiB = 1024 * 1024
	t := Table{
		Title:   "Peak background traffic load on the network",
		Columns: []string{"application", "uniform_random_MB", "bursty_GB"},
	}
	for _, app := range appNames() {
		bgNodes := machineNodes - appRanks[app]
		uni := workload.BackgroundConfig{Kind: workload.UniformRandom, MsgBytes: 16 * 1024, Interval: 1}
		per := int64(16 * 1024)
		if app != "CR" {
			per = 1024
		}
		bur := workload.BackgroundConfig{Kind: workload.Bursty, MsgBytes: per, Interval: 1}
		t.Rows = append(t.Rows, []string{
			app,
			fmt.Sprintf("%.2f", float64(uni.PeakLoad(bgNodes))/MiB),
			fmt.Sprintf("%.2f", float64(bur.PeakLoad(bgNodes))/(1024*MiB)),
		})
	}
	rep := &Report{
		ID:     "table2",
		Title:  "Peak background traffic load (Table II)",
		Tables: []Table{t},
	}
	if r.opts.Scale == ScalePaper {
		rep.Notes = append(rep.Notes,
			"paper values: CR 38.38/92.00, FB 38.38/5.75, AMG 27.00/2.85")
	}
	return r.finish(rep)
}
