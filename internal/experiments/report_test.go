package experiments

import (
	"bytes"
	"strings"
	"testing"
)

// A report table whose rows are ragged — shorter or longer than the header —
// must render without panicking: short rows leave trailing columns blank,
// surplus cells print unpadded at the end of their row.
func TestWriteTextRaggedRows(t *testing.T) {
	rep := &Report{
		ID:    "test",
		Title: "ragged",
		Tables: []Table{{
			Title:   "ragged table",
			Columns: []string{"alpha", "b"},
			Rows: [][]string{
				{"1"},
				{"2", "two"},
				{"3", "three", "surplus-cell"},
				{},
			},
		}},
	}
	var buf bytes.Buffer
	if err := rep.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "surplus-cell") {
		t.Fatalf("surplus cell dropped:\n%s", out)
	}
	// Column widths still come from header + in-range cells: "three" (5)
	// widens column b, so the header row pads "b" to at least that width.
	for _, want := range []string{"alpha", "1", "two", "three"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q:\n%s", want, out)
		}
	}
}

// A table with no columns at all (only free-form rows) must render too.
func TestWriteTextNoHeader(t *testing.T) {
	rep := &Report{
		ID:    "test",
		Title: "headerless",
		Tables: []Table{{
			Title: "bare",
			Rows:  [][]string{{"x", "y"}},
		}},
	}
	var buf bytes.Buffer
	if err := rep.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "x  y") {
		t.Fatalf("headerless row mangled:\n%s", buf.String())
	}
}
