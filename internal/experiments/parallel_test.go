package experiments

import (
	"bytes"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
	"testing"
)

// renderReport runs one experiment on a fresh runner at the given worker
// count and returns the rendered text plus every CSV file's bytes.
func renderReport(t *testing.T, id string, parallel int) (string, map[string]string) {
	t.Helper()
	return renderReportOpts(t, id, Options{Scale: ScaleQuick, Seed: 1, Parallel: parallel})
}

// renderReportOpts is renderReport with full control over the runner
// options; DataDir is always overridden with a fresh temp dir.
func renderReportOpts(t *testing.T, id string, opts Options) (string, map[string]string) {
	t.Helper()
	dir := t.TempDir()
	opts.DataDir = dir
	r := NewRunner(opts)
	rep, err := r.Run(id)
	if err != nil {
		t.Fatalf("%s parallel=%d: %v", id, opts.Parallel, err)
	}
	var buf bytes.Buffer
	if err := rep.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	csvs := map[string]string{}
	matches, err := filepath.Glob(filepath.Join(dir, "*.csv"))
	if err != nil {
		t.Fatal(err)
	}
	sort.Strings(matches)
	for _, m := range matches {
		data, err := os.ReadFile(m)
		if err != nil {
			t.Fatal(err)
		}
		csvs[filepath.Base(m)] = string(data)
	}
	if len(csvs) == 0 {
		t.Fatalf("%s produced no CSVs", id)
	}
	return buf.String(), csvs
}

// The tentpole contract: the parallel sweep executor's reports — rendered
// tables and CSV bytes — are byte-identical to the strictly sequential run,
// for every worker count.
func TestParallelReportsMatchSequential(t *testing.T) {
	if testing.Short() {
		t.Skip("regenerates fig3 and fig8 several times")
	}
	workerCounts := []int{2, 4}
	if n := runtime.NumCPU(); n > 4 {
		workerCounts = append(workerCounts, n)
	}
	for _, id := range []string{"fig3", "fig8"} {
		seqText, seqCSV := renderReport(t, id, 1)
		for _, workers := range workerCounts {
			parText, parCSV := renderReport(t, id, workers)
			if parText != seqText {
				t.Errorf("%s: parallel=%d report text differs from sequential:\n%s",
					id, workers, firstDiff(seqText, parText))
			}
			if len(parCSV) != len(seqCSV) {
				t.Fatalf("%s: parallel=%d wrote %d CSVs, sequential %d", id, workers, len(parCSV), len(seqCSV))
			}
			for name, want := range seqCSV {
				if got, ok := parCSV[name]; !ok {
					t.Errorf("%s: parallel=%d missing CSV %s", id, workers, name)
				} else if got != want {
					t.Errorf("%s: parallel=%d CSV %s differs from sequential", id, workers, name)
				}
			}
		}
	}
}

func firstDiff(a, b string) string {
	al, bl := strings.Split(a, "\n"), strings.Split(b, "\n")
	for i := 0; i < len(al) && i < len(bl); i++ {
		if al[i] != bl[i] {
			return "line " + al[i] + "\n  vs " + bl[i]
		}
	}
	return "length mismatch"
}

// The cache's single-flight contract directly: hammer one cell from many
// goroutines and require one cache entry and one shared result.
func TestResultCacheSingleFlight(t *testing.T) {
	r := NewRunner(Options{Scale: ScaleQuick, Seed: 1})
	cells := isolatedGrid("CR")[:2]
	const goroutines = 8
	results := make([]interface{}, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rq := cells[g%len(cells)]
			res, err := r.resultFor(rq.app, rq.cell, rq.msgScale, rq.bg)
			if err != nil {
				results[g] = err
				return
			}
			results[g] = res
		}(g)
	}
	wg.Wait()
	r.mu.Lock()
	n := len(r.cache)
	r.mu.Unlock()
	if n != len(cells) {
		t.Fatalf("cache holds %d entries, want %d (single flight per cell)", n, len(cells))
	}
	for g := 2; g < goroutines; g++ {
		if results[g] != results[g%len(cells)] {
			t.Fatalf("goroutine %d got a different result object than its cell's first runner: %v", g, results[g])
		}
	}
}

// Progress output must stay line-atomic under parallel workers: every line
// is complete and well-formed.
func TestParallelProgressLinesNotInterleaved(t *testing.T) {
	var buf syncBuffer
	r := NewRunner(Options{Scale: ScaleQuick, Seed: 1, Parallel: 4, Progress: &buf})
	if _, err := r.Figure3(); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 30 {
		t.Fatalf("progress lines = %d, want 30 (3 apps x 10 cells)", len(lines))
	}
	for _, line := range lines {
		if !strings.HasPrefix(line, "ran ") || !strings.Contains(line, "events=") {
			t.Fatalf("malformed (interleaved?) progress line: %q", line)
		}
	}
}

// syncBuffer makes the test's own reads race-safe; the Runner already
// serializes its writes.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}
