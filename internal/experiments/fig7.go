package experiments

import (
	"fmt"

	"dragonfly/internal/core"
	"dragonfly/internal/placement"
	"dragonfly/internal/routing"
)

// crFBScales and amgScales are the message-size sweeps of the sensitivity
// study (Sec. IV-B): CR and FB from 1% to twice the original size; AMG from
// 50% to 20x.
// The grids bracket the paper's crossover points (CR: below ~0.1x
// contiguous wins; AMG: above ~10x random wins) with five points per app
// to keep the sweep tractable on one core.
var (
	crFBScales = []float64{0.01, 0.1, 0.5, 1.0, 2.0}
	amgScales  = []float64{0.5, 1, 5, 10, 20}
)

// Figure7 regenerates the communication-intensity sensitivity study: the
// maximum communication time across ranks, relative to the rand-adp
// configuration, for the four extreme placement x routing combinations
// over a sweep of message-size scales.
func (r *Runner) Figure7() (*Report, error) {
	rep := &Report{
		ID:    "fig7",
		Title: "Communication performance with various message sizes (Figure 7)",
		Notes: []string{"values are max comm time as % of rand-adp at the same scale"},
	}
	baseline := core.Cell{Placement: placement.RandomNode, Routing: routing.Adaptive}
	var grid []simReq
	for _, app := range appNames() {
		scales := crFBScales
		if app == "AMG" {
			scales = amgScales
		}
		for _, s := range scales {
			grid = append(grid, simReq{app: app, cell: baseline, msgScale: s})
			for _, cell := range core.ExtremeCells() {
				grid = append(grid, simReq{app: app, cell: cell, msgScale: s})
			}
		}
	}
	if err := r.prefetch(grid); err != nil {
		return nil, err
	}
	for _, app := range appNames() {
		scales := crFBScales
		if app == "AMG" {
			scales = amgScales
		}
		t := Table{
			Title:   fmt.Sprintf("%s max comm time relative to rand-adp (%%)", app),
			Columns: []string{"msg_scale"},
		}
		for _, cell := range core.ExtremeCells() {
			t.Columns = append(t.Columns, cell.Name())
		}
		for _, s := range scales {
			base, err := r.resultFor(app, baseline, s, nil)
			if err != nil {
				return nil, err
			}
			baseMax := base.MaxCommTime()
			row := []string{fmtF(s)}
			for _, cell := range core.ExtremeCells() {
				res, err := r.resultFor(app, cell, s, nil)
				if err != nil {
					return nil, err
				}
				pct := 100 * float64(res.MaxCommTime()) / float64(baseMax)
				row = append(row, fmt.Sprintf("%.1f", pct))
			}
			t.Rows = append(t.Rows, row)
		}
		rep.Tables = append(rep.Tables, t)
	}
	return r.finish(rep)
}
