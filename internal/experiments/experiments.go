// Package experiments regenerates every table and figure of the paper's
// evaluation (Sec. IV). Each experiment is addressed by the paper's artifact
// id — "table1", "table2", "fig2" … "fig10" — and produces a Report of
// plain-text tables (and optionally CSV files) carrying the same rows or
// series the paper plots.
//
// Experiments run at two scales:
//
//   - ScalePaper: the Theta machine and the paper's application sizes
//     (1,000-rank CR and FB, 1,728-rank AMG). Minutes of wall time.
//   - ScaleQuick: a structurally similar small machine and proportionally
//     shrunk applications. Seconds of wall time; used by tests and benches.
//
// Absolute times differ from the paper (its CODES runs model a specific
// Aries microarchitecture and longer traces); the comparisons — which
// configuration wins, by roughly what factor, where crossovers fall — are
// the reproduction target (see EXPERIMENTS.md).
package experiments

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"runtime/debug"
	"sort"
	"strings"
	"sync"
	"time"

	"dragonfly/internal/core"
	"dragonfly/internal/des"
	"dragonfly/internal/farm"
	"dragonfly/internal/faults"
	"dragonfly/internal/network"
	"dragonfly/internal/topology"
	"dragonfly/internal/trace"
	"dragonfly/internal/workload"
)

// defaultWatchdogEvents is the DES stall-watchdog budget armed on every
// experiment cell: orders of magnitude beyond any legitimate quick- or
// paper-scale run, so a trip always means a wedged simulation.
const defaultWatchdogEvents = 10_000_000_000

// Scale selects the experiment size.
type Scale int

const (
	// ScaleQuick shrinks machine and applications for fast runs.
	ScaleQuick Scale = iota
	// ScalePaper uses the Theta machine and the paper's application sizes.
	ScalePaper
)

func (s Scale) String() string {
	if s == ScalePaper {
		return "paper"
	}
	return "quick"
}

// Options configures a Runner.
type Options struct {
	Scale Scale
	Seed  int64
	// Machine overrides the machine the experiments run on; nil selects the
	// scale's default XC40 dragonfly (Theta at paper scale, a shrunk
	// Theta-like grid at quick scale). Non-default machines — e.g. the
	// Dragonfly+ presets — are extensions beyond the paper, and reports note
	// the machine label.
	Machine topology.Machine
	// DataDir, when non-empty, receives one CSV file per produced table.
	DataDir string
	// Progress, when non-nil, receives one line per completed simulation.
	// Writes are serialized, so parallel workers never interleave lines.
	Progress io.Writer
	// Parallel bounds the worker pool that independent simulations of one
	// experiment fan out across: 1 runs strictly sequentially, 0 (the
	// default) selects runtime.NumCPU(). Each simulation remains a
	// bit-reproducible sequential DES on its own engine, and results merge
	// in configuration order, so every Parallel value produces byte-identical
	// reports; only wall-clock time and the order of Progress lines change.
	Parallel int
	// BurstDivisor scales down the bursty background volume (Sec. IV-C) by
	// limiting each node's fan-out to (peers)/BurstDivisor while keeping
	// the per-peer message size; 0 means the scale's default (32 at paper
	// scale, 4 at quick scale). Table II always reports the full,
	// unscaled loads.
	BurstDivisor int
	// Audit runs every simulation under the invariant auditor
	// (core.Config.Audit): any flow-control, conservation, or routing
	// violation fails the experiment instead of silently skewing a figure.
	Audit bool
	// Faults degrades the fabric of every simulation cell with the given
	// fault spec (extension beyond the paper; the dfsweep -faults flag).
	// Nil or an empty spec leaves the fault machinery out entirely, so the
	// paper-reproduction reports stay byte-identical. The resilience sweep
	// (figr), the learning-router comparison (figq), and the availability
	// sweep (figf) drive their own fault specs and ignore this option.
	Faults *faults.Spec
	// DisablePooling turns off the allocation-avoidance machinery — the
	// fabric's packet/credit free lists and the router path cache + hop
	// arena — so every packet and route allocates fresh storage. Outputs
	// are identical either way; the knob exists so the equivalence tests
	// can prove it.
	DisablePooling bool
	// Farm, when non-nil, banks every simulation cell in the given
	// content-addressed store and replays banked cells instead of
	// re-simulating them. Results are bit-reproducible and records are
	// integrity-checked on read, so reports are byte-identical whether a
	// cell was simulated or recalled; a corrupt or missing entry silently
	// degrades to a re-run. FarmStats reports the hit/miss split.
	Farm *farm.Store
	// Retries bounds the re-attempts a failing farm-backed cell gets before
	// its error stands (farm.Options.Retries); 0 fails on the first error.
	// Only the batch-style experiments driven through the farm executor use
	// it — without a Farm the plain executor runs each cell once.
	Retries int
	// JobTimeout is the per-cell wall-clock budget of farm-backed cells
	// (farm.Options.JobTimeout); 0 disables it.
	JobTimeout time.Duration
}

// Runner executes experiments, caching simulation results so that figures
// sharing runs (e.g. Figs. 3 and 4) pay for them once. The cache has
// single-flight semantics: concurrent requests for one configuration — from
// the parallel sweep workers or from callers driving the Runner from several
// goroutines — run it exactly once and share the result.
type Runner struct {
	opts Options

	mu    sync.Mutex // guards cache
	cache map[string]*cacheEntry

	traceMu sync.Mutex // guards traces and graphs
	traces  map[string]*trace.Trace
	graphs  map[string]*trace.Graph

	statsMu   sync.Mutex // guards farmStats
	farmStats farm.Stats

	progressMu sync.Mutex // serializes Progress lines
}

// cacheEntry is one simulation cell's single-flight slot: done closes when
// the computing goroutine has filled res/err.
type cacheEntry struct {
	done chan struct{}
	res  *core.Result
	err  error
}

// NewRunner builds a Runner.
func NewRunner(opts Options) *Runner {
	return &Runner{
		opts:   opts,
		cache:  make(map[string]*cacheEntry),
		traces: make(map[string]*trace.Trace),
		graphs: make(map[string]*trace.Graph),
	}
}

// FarmStats returns the accumulated farm cache statistics of every
// simulation this runner has executed (zero when no farm is attached).
func (r *Runner) FarmStats() farm.Stats {
	r.statsMu.Lock()
	defer r.statsMu.Unlock()
	return r.farmStats
}

func (r *Runner) addFarmStats(s farm.Stats) {
	r.statsMu.Lock()
	r.farmStats.Add(s)
	r.statsMu.Unlock()
}

// parallel returns the effective worker-pool bound.
func (r *Runner) parallel() int {
	if r.opts.Parallel > 0 {
		return r.opts.Parallel
	}
	return runtime.NumCPU()
}

// IDs lists the experiment identifiers in the paper's order.
func IDs() []string {
	return []string{"table1", "table2", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10"}
}

// Run executes one experiment by id.
func (r *Runner) Run(id string) (*Report, error) {
	switch strings.ToLower(id) {
	case "table1":
		return r.TableI()
	case "table2":
		return r.TableII()
	case "fig2":
		return r.Figure2()
	case "fig3":
		return r.Figure3()
	case "fig4":
		return r.Figure4()
	case "fig5":
		return r.Figure5()
	case "fig6":
		return r.Figure6()
	case "fig7":
		return r.Figure7()
	case "fig8":
		return r.Figure8()
	case "fig9":
		return r.Figure9()
	case "fig10":
		return r.Figure10()
	case "xmap":
		return r.XMap()
	case "xmulti":
		return r.XMulti()
	case "figr":
		return r.FigureR()
	case "figq":
		return r.FigureQ()
	case "figa":
		return r.FigureA()
	case "figf":
		return r.FigureF()
	default:
		return nil, fmt.Errorf("experiments: unknown id %q (known: %s; extensions: %s)",
			id, strings.Join(IDs(), ", "), strings.Join(ExtensionIDs(), ", "))
	}
}

// --- report model -----------------------------------------------------------

// Table is one printable/CSV-able result table.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// Plot is a pre-rendered ASCII figure accompanying the tables.
type Plot struct {
	Title string
	Text  string
}

// Report is the output of one experiment.
type Report struct {
	ID     string
	Title  string
	Notes  []string
	Tables []Table
	Plots  []Plot
}

// WriteText renders the report as aligned plain text. The whole report is
// assembled in one pre-sized buffer and handed to the writer in a single
// call: a paper-scale figure is hundreds of table rows, and per-line writes
// both fragment the output and re-grow the destination repeatedly.
func (rep *Report) WriteText(w io.Writer) error {
	// First pass: column widths per table, and a close size estimate for
	// the rendered text (padded line length x line count per table).
	widths := make([][]int, len(rep.Tables))
	size := len(rep.ID) + len(rep.Title) + 48
	for _, n := range rep.Notes {
		size += len(n) + len("   note: \n")
	}
	for ti := range rep.Tables {
		t := &rep.Tables[ti]
		ws := make([]int, len(t.Columns))
		for i, c := range t.Columns {
			ws[i] = len(c)
		}
		for _, row := range t.Rows {
			for i, cell := range row {
				if i < len(ws) && len(cell) > ws[i] {
					ws[i] = len(cell)
				}
			}
		}
		widths[ti] = ws
		lineLen := 2*len(ws) + 1
		for _, wd := range ws {
			lineLen += wd
		}
		size += len(t.Title) + 8 + (len(t.Rows)+1)*lineLen
	}
	for _, p := range rep.Plots {
		size += len(p.Title) + 8 + len(p.Text)
	}

	var b strings.Builder
	b.Grow(size + 1)
	fmt.Fprintf(&b, "== %s: %s (scale not shown; see notes) ==\n", rep.ID, rep.Title)
	for _, n := range rep.Notes {
		fmt.Fprintf(&b, "   note: %s\n", n)
	}
	for ti := range rep.Tables {
		t := &rep.Tables[ti]
		ws := widths[ti]
		fmt.Fprintf(&b, "\n-- %s --\n", t.Title)
		line := func(cells []string) string {
			parts := make([]string, len(cells))
			for i, c := range cells {
				// Ragged rows may carry more cells than the header; surplus
				// cells print unpadded instead of indexing past widths.
				pad := 0
				if i < len(ws) {
					pad = ws[i]
				}
				parts[i] = fmt.Sprintf("%-*s", pad, c)
			}
			return strings.TrimRight(strings.Join(parts, "  "), " ")
		}
		fmt.Fprintln(&b, line(t.Columns))
		for _, row := range t.Rows {
			fmt.Fprintln(&b, line(row))
		}
	}
	for _, p := range rep.Plots {
		fmt.Fprintf(&b, "\n-- %s --\n%s", p.Title, p.Text)
	}
	b.WriteByte('\n')
	_, err := io.WriteString(w, b.String())
	return err
}

// WriteCSV writes each table as <dir>/<id>_<slug>.csv. Each file is built
// in a buffer pre-sized to its exact byte count and written at once.
func (rep *Report) WriteCSV(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, t := range rep.Tables {
		path := filepath.Join(dir, fmt.Sprintf("%s_%s.csv", rep.ID, slug(t.Title)))
		size := 0
		for _, c := range t.Columns {
			size += len(c) + 1
		}
		for _, row := range t.Rows {
			for _, cell := range row {
				size += len(cell) + 1
			}
		}
		var b strings.Builder
		b.Grow(size)
		b.WriteString(strings.Join(t.Columns, ","))
		b.WriteByte('\n')
		for _, row := range t.Rows {
			b.WriteString(strings.Join(row, ","))
			b.WriteByte('\n')
		}
		if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
			return err
		}
	}
	return nil
}

func slug(s string) string {
	var b strings.Builder
	for _, r := range strings.ToLower(s) {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9':
			b.WriteRune(r)
		case b.Len() > 0 && !strings.HasSuffix(b.String(), "_"):
			b.WriteRune('_')
		}
	}
	return strings.Trim(b.String(), "_")
}

// finish optionally dumps CSVs and returns the report.
func (r *Runner) finish(rep *Report) (*Report, error) {
	rep.Notes = append(rep.Notes, fmt.Sprintf("scale=%s seed=%d", r.opts.Scale, r.opts.Seed))
	if r.opts.Machine != nil {
		// Default machines add no note, keeping the paper-reproduction
		// reports (and their golden snapshots) byte-stable.
		rep.Notes = append(rep.Notes, fmt.Sprintf("machine=%s (extension beyond the paper)", r.opts.Machine.Label()))
	}
	if !r.opts.Faults.Empty() && rep.ID != "figr" && rep.ID != "figq" && rep.ID != "figf" {
		rep.Notes = append(rep.Notes, fmt.Sprintf("faults=%s (degraded fabric, extension beyond the paper)", r.opts.Faults))
	}
	if r.opts.DataDir != "" {
		if err := rep.WriteCSV(r.opts.DataDir); err != nil {
			return nil, err
		}
	}
	return rep, nil
}

func (r *Runner) progressf(format string, args ...interface{}) {
	if r.opts.Progress != nil {
		r.progressMu.Lock()
		defer r.progressMu.Unlock()
		fmt.Fprintf(r.opts.Progress, format+"\n", args...)
	}
}

// --- machine and application catalogs ---------------------------------------

// Machine returns the machine the runner's experiments execute on: the
// Options override when set, else the scale's default XC40 dragonfly.
// Exported so cmd/dffarm can build sweep cells with the exact machine the
// experiment vocabulary implies.
func (r *Runner) Machine() topology.Machine {
	if r.opts.Machine != nil {
		return r.opts.Machine
	}
	if r.opts.Scale == ScalePaper {
		return topology.Theta()
	}
	// Structurally Theta-like: multiple groups, non-square grid, chassis
	// and cabinets distinguishable, parallel global links.
	// 5 groups x (2x8 routers) x 2 nodes = 160 nodes;
	// global ports: 16 routers x 4 ports = 64 per group, divisible by 4.
	return topology.Config{
		Groups:               5,
		Rows:                 2,
		Cols:                 8,
		NodesPerRouter:       2,
		GlobalPortsPerRouter: 4,
		ChassisPerCabinet:    2,
	}
}

// appNames lists the paper's applications in presentation order.
func appNames() []string { return []string{"CR", "FB", "AMG"} }

// machineNodes returns the compute-node count of the experiment machine.
func (r *Runner) machineNodes() int {
	return topology.BuildMachine(r.Machine()).NumNodes()
}

// AppTrace returns the trace of one of the paper's applications ("CR",
// "FB", "AMG") at the runner's scale. Generation is deterministic (fixed
// internal seeds) and traces are read-only during simulation, so the runner
// generates each one once and shares the pointer across cells — which also
// lets the farm encoder's per-pointer content-digest memoization take
// effect across an experiment's whole grid.
func (r *Runner) AppTrace(name string) (*trace.Trace, error) {
	r.traceMu.Lock()
	defer r.traceMu.Unlock()
	if tr, ok := r.traces[name]; ok {
		return tr, nil
	}
	tr, err := r.generateTrace(name)
	if err != nil {
		return nil, err
	}
	r.traces[name] = tr
	return tr, nil
}

// AppGraph returns the dependency graph of one of the collective/storage
// generator applications ("RING", "TREE", "MOE", "HALO2D", "HALO3D",
// "CKPT") at the runner's scale. Like AppTrace, generation is deterministic
// and graphs are read-only during simulation, so one pointer is shared
// across cells and the farm encoder's per-pointer digest memoization holds
// across an experiment's whole grid.
func (r *Runner) AppGraph(name string) (*trace.Graph, error) {
	r.traceMu.Lock()
	defer r.traceMu.Unlock()
	if g, ok := r.graphs[name]; ok {
		return g, nil
	}
	g, err := r.generateGraph(name)
	if err != nil {
		return nil, err
	}
	r.graphs[name] = g
	return g, nil
}

// generateGraph builds a collective/storage workload graph at the current
// scale. Paper scale uses the generators' defaults; quick scale shrinks
// ranks and payloads so every graph fits the 160-node quick machines and
// runs in milliseconds of simulated time.
func (r *Runner) generateGraph(name string) (*trace.Graph, error) {
	if r.opts.Scale == ScalePaper {
		return trace.DefaultGraph(name)
	}
	switch name {
	case "RING":
		return trace.RingAllReduce(trace.RingAllReduceConfig{Ranks: 64, Bytes: 512 * trace.KB, Rounds: 1})
	case "TREE":
		return trace.TreeAllReduce(trace.TreeAllReduceConfig{Ranks: 64, Bytes: 96 * trace.KB, Rounds: 2})
	case "MOE":
		return trace.MoEAllToAll(trace.MoEAllToAllConfig{Ranks: 48, Bytes: 48 * trace.KB, Rounds: 1, Window: 8})
	case "HALO2D":
		return trace.Halo(trace.HaloConfig{X: 8, Y: 8, Bytes: 64 * trace.KB, Rounds: 2})
	case "HALO3D":
		return trace.Halo(trace.HaloConfig{X: 4, Y: 4, Z: 4, Bytes: 32 * trace.KB, Rounds: 2})
	case "CKPT":
		return trace.Checkpoint(trace.CheckpointConfig{
			Clients: 56, Servers: 8, Bytes: 1024 * trace.KB, Rounds: 1, Delay: 20 * des.Microsecond,
		})
	}
	return nil, fmt.Errorf("experiments: unknown graph application %q", name)
}

// generateTrace builds an application trace at the current scale.
func (r *Runner) generateTrace(name string) (*trace.Trace, error) {
	paper := r.opts.Scale == ScalePaper
	switch name {
	case "CR":
		cfg := trace.DefaultCR()
		if !paper {
			cfg = trace.CRConfig{Ranks: 64, MessageBytes: 24 * trace.KB}
		}
		return trace.CR(cfg)
	case "FB":
		cfg := trace.DefaultFB()
		if !paper {
			cfg = trace.FBConfig{
				X: 4, Y: 4, Z: 4, Iterations: 2,
				MinBytes: 6 * trace.KB, MaxBytes: 160 * trace.KB,
				FarPartners: 2, FarFraction: 0.1, Seed: 1,
			}
		}
		return trace.FB(cfg)
	case "AMG":
		cfg := trace.DefaultAMG()
		if !paper {
			cfg = trace.AMGConfig{X: 4, Y: 4, Z: 4, Cycles: 3, Levels: 4, PeakBytes: 10 * trace.KB}
		}
		return trace.AMG(cfg)
	}
	return nil, fmt.Errorf("experiments: unknown application %q", name)
}

// Background returns the scale-appropriate interference configuration of
// the given kind for a target application — the exact objects the paper's
// Figs. 8-10 grids use. Exported so cmd/dffarm sweeps name backgrounds with
// the same vocabulary ("uniform", "bursty") and get identical cells, which
// is what lets a farm store populated by dffarm serve experiment reruns.
func (r *Runner) Background(kind workload.BackgroundKind, app string) (*workload.BackgroundConfig, error) {
	switch kind {
	case workload.UniformRandom:
		cfg := r.uniformBackground()
		return &cfg, nil
	case workload.Bursty:
		ranks, err := r.appRanks(app)
		if err != nil {
			return nil, err
		}
		cfg := r.burstyBackground(app, r.machineNodes()-ranks)
		return &cfg, nil
	}
	return nil, fmt.Errorf("experiments: unknown background kind %v", kind)
}

// appRanks returns the rank count of any built-in application, flat or
// graph, at the runner's scale.
func (r *Runner) appRanks(name string) (int, error) {
	if trace.IsGraphApp(name) {
		g, err := r.AppGraph(name)
		if err != nil {
			return 0, err
		}
		return g.NumRanks(), nil
	}
	tr, err := r.AppTrace(name)
	if err != nil {
		return 0, err
	}
	return tr.NumRanks(), nil
}

// uniformBackground returns the paper's uniform-random interference
// (16 KiB per node per interval; Sec. IV-C / Table II).
func (r *Runner) uniformBackground() workload.BackgroundConfig {
	cfg := workload.BackgroundConfig{
		Kind:     workload.UniformRandom,
		MsgBytes: 16 * 1024,
		Interval: 50 * des.Microsecond, // within the paper's 0.002-1 ms band
	}
	if r.opts.Scale == ScaleQuick {
		// Sized to the miniature apps' microsecond-scale runs so several
		// interference waves land while they communicate.
		cfg.MsgBytes = 32 * 1024
		cfg.Interval = 5 * des.Microsecond
	}
	return cfg
}

// burstyBackground returns the paper's bursty interference for a target
// application: 16 KiB per peer for the CR runs, 1 KiB for FB and AMG
// (decoded from Table II), with the volume reduced by BurstDivisor via a
// fan-out limit so full-machine bursts stay simulable.
func (r *Runner) burstyBackground(app string, bgNodes int) workload.BackgroundConfig {
	per := int64(16 * 1024)
	if app != "CR" {
		per = 1024
	}
	div := r.opts.BurstDivisor
	if div == 0 {
		if r.opts.Scale == ScalePaper {
			div = 32
		} else {
			div = 4
		}
	}
	fan := (bgNodes - 1) / div
	if fan < 1 {
		fan = 1
	}
	cfg := workload.BackgroundConfig{
		Kind:     workload.Bursty,
		MsgBytes: per,
		Interval: 500 * des.Microsecond, // within the paper's 0.1-60 ms band
		FanOut:   fan,
	}
	if r.opts.Scale == ScaleQuick {
		cfg.MsgBytes = 32 * 1024
		cfg.Interval = 25 * des.Microsecond
	}
	return cfg
}

// --- shared simulation plumbing ---------------------------------------------

// simReq identifies one simulation cell of an experiment's grid.
type simReq struct {
	app      string
	cell     core.Cell
	msgScale float64
	bg       *workload.BackgroundConfig
}

func (rq simReq) key() string {
	return fmt.Sprintf("%s|%s|%g|%v", rq.app, rq.cell.Name(), rq.msgScale, describeBG(rq.bg))
}

// CellConfig builds the full run configuration of one simulation cell —
// the object the canonical farm encoder hashes, and exactly what runCell
// simulates when no banked result exists. Exported so cmd/dffarm constructs
// cells identical (same content address) to the ones the experiments
// produce; sweep axes the runner options don't span (per-cell seeds, fault
// specs, task mappings) are overridden on the returned config, which is
// equivalent to a runner constructed with those options.
func (r *Runner) CellConfig(app string, cell core.Cell, msgScale float64, bg *workload.BackgroundConfig) (core.Config, error) {
	rq := simReq{app: app, cell: cell, msgScale: msgScale, bg: bg}
	return r.cellConfig(rq)
}

func (r *Runner) cellConfig(rq simReq) (core.Config, error) {
	params := network.DefaultParams()
	if r.opts.DisablePooling {
		params.NoPacketPool = true
		params.Route.NoCache = true
	}
	cfg := core.Config{
		Topology:  r.Machine(),
		Params:    params,
		Placement: rq.cell.Placement,
		Routing:   rq.cell.Routing,
		MsgScale:  rq.msgScale,
		Seed:      r.opts.Seed,
		Audit:     r.opts.Audit,
		Faults:    r.opts.Faults,
		// The stall watchdog is always armed: a wedged cell (a degraded
		// fabric, a flow-control bug) fails with a queue diagnostic instead
		// of hanging the sweep. The budget is far beyond any legitimate run.
		WatchdogEvents: defaultWatchdogEvents,
	}
	// Graph-generator applications carry their workload as a dependency
	// graph; the paper's miniapps stay flat traces (lowered on replay), so
	// every pre-graph-IR farm address remains reachable.
	if trace.IsGraphApp(rq.app) {
		g, err := r.AppGraph(rq.app)
		if err != nil {
			return core.Config{}, err
		}
		cfg.Graph = g
	} else {
		tr, err := r.AppTrace(rq.app)
		if err != nil {
			return core.Config{}, err
		}
		cfg.Trace = tr
	}
	if rq.bg != nil {
		b := *rq.bg
		cfg.Background = &b
		// Interference runs cannot drain the queue; bound them.
		cfg.MaxSimTime = des.Second
	}
	return cfg, nil
}

// resultFor runs (or recalls) one simulation cell. Safe for concurrent use:
// the first caller for a key computes, later callers block on the same entry.
// The in-memory cache is keyed by the farm's canonical config encoding — the
// same identity the on-disk store addresses by — so a cell means the same
// thing in both caches; configs the encoder rejects (none of the paper's
// grids produce one) fall back to the request descriptor and stay in-memory
// only.
func (r *Runner) resultFor(app string, cell core.Cell, msgScale float64, bg *workload.BackgroundConfig) (*core.Result, error) {
	rq := simReq{app: app, cell: cell, msgScale: msgScale, bg: bg}
	cfg, err := r.cellConfig(rq)
	if err != nil {
		return nil, err
	}
	key, encErr := farm.Encode(cfg)
	if encErr != nil {
		key = "uncacheable|" + rq.key()
	}
	r.mu.Lock()
	if e, ok := r.cache[key]; ok {
		r.mu.Unlock()
		<-e.done
		return e.res, e.err
	}
	e := &cacheEntry{done: make(chan struct{})}
	r.cache[key] = e
	r.mu.Unlock()

	e.res, e.err = r.runCell(rq, cfg, key, encErr == nil)
	close(e.done)
	return e.res, e.err
}

// runCell produces one simulation cell's result: replayed from the farm
// store when one is attached and holds a verified entry, simulated (and
// banked) otherwise. The panic firewall turns a wedged cell into that
// cell's error: under the parallel executor a bare panic would kill sibling
// workers mid-run and lose the whole figure.
func (r *Runner) runCell(rq simReq, cfg core.Config, enc string, cacheable bool) (res *core.Result, err error) {
	defer func() {
		if p := recover(); p != nil {
			res = nil
			err = fmt.Errorf("experiments: %s under %s: panic: %v\n%s",
				rq.app, rq.cell.Name(), p, debug.Stack())
		}
	}()
	cacheable = cacheable && r.opts.Farm != nil
	var addr string
	if cacheable {
		addr = farm.AddressOf(enc)
		if rec, err := r.opts.Farm.Get(addr); err == nil {
			res := rec.Result(cfg)
			if !res.Completed {
				return nil, fmt.Errorf("experiments: %s under %s did not complete within %v", rq.app, rq.cell.Name(), cfg.MaxSimTime)
			}
			r.addFarmStats(farm.Stats{Cells: 1, InShard: 1, Hits: 1})
			r.progressf("hit %-3s %-9s scale=%-5g bg=%-12s simtime=%v events=%d",
				rq.app, rq.cell.Name(), orOne(rq.msgScale), describeBG(rq.bg), res.Duration, res.Events)
			return res, nil
		}
		// ErrMiss, a corrupt entry, or an I/O failure all degrade to a
		// fresh simulation; Put below heals the entry.
	}
	res, err = core.Run(cfg)
	if err != nil {
		return nil, fmt.Errorf("experiments: %s under %s: %w", rq.app, rq.cell.Name(), err)
	}
	if cacheable {
		st := farm.Stats{Cells: 1, InShard: 1, Misses: 1}
		if perr := r.opts.Farm.Put(addr, farm.RecordOf(res)); perr != nil {
			st.WriteErrors = 1 // persistence is best-effort; the result stands
		}
		r.addFarmStats(st)
	}
	if !res.Completed {
		return nil, fmt.Errorf("experiments: %s under %s did not complete within %v", rq.app, rq.cell.Name(), cfg.MaxSimTime)
	}
	r.progressf("ran %-3s %-9s scale=%-5g bg=%-12s simtime=%v events=%d",
		rq.app, rq.cell.Name(), orOne(rq.msgScale), describeBG(rq.bg), res.Duration, res.Events)
	return res, nil
}

// runBatch executes a slice of fully built configurations — the batch-style
// experiments (figr, figq, xmap) that don't go through resultFor — via the
// farm when one is attached, falling back to the plain parallel executor.
// Both paths keep RunBatch's contract: results in config order, first error
// in config order, every cell attempted.
func (r *Runner) runBatch(cfgs []core.Config) ([]*core.Result, error) {
	if r.opts.Farm == nil {
		return core.RunBatch(cfgs, r.parallel())
	}
	results, stats, err := farm.New(r.opts.Farm, farm.Options{
		Parallel:   r.parallel(),
		Retries:    r.opts.Retries,
		JobTimeout: r.opts.JobTimeout,
	}).Run(cfgs)
	r.addFarmStats(stats)
	return results, err
}

// prefetch fans an experiment's simulation grid out across the worker pool,
// filling the cache so that the table-building loops afterwards only recall
// results. Requests are deduplicated and already-cached cells cost nothing,
// so callers list their full grid. With an effective parallelism of 1 (or a
// trivial grid) it is a no-op: the table loops then run each cell lazily, in
// the exact order and with the exact observable behavior of the historical
// sequential runner. Errors surface in request order, matching what the
// sequential path would have failed on first.
func (r *Runner) prefetch(reqs []simReq) error {
	workers := r.parallel()
	if workers <= 1 || len(reqs) < 2 {
		return nil
	}
	seen := make(map[string]bool, len(reqs))
	uniq := reqs[:0:0]
	for _, rq := range reqs {
		if k := rq.key(); !seen[k] {
			seen[k] = true
			uniq = append(uniq, rq)
		}
	}
	if workers > len(uniq) {
		workers = len(uniq)
	}
	errs := make([]error, len(uniq))
	next := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				_, errs[i] = r.resultFor(uniq[i].app, uniq[i].cell, uniq[i].msgScale, uniq[i].bg)
			}
		}()
	}
	for i := range uniq {
		next <- i
	}
	close(next)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

func orOne(s float64) float64 {
	if s == 0 {
		return 1
	}
	return s
}

func describeBG(bg *workload.BackgroundConfig) string {
	if bg == nil {
		return "none"
	}
	return fmt.Sprintf("%s/%dB", bg.Kind, bg.MsgBytes)
}

// fmtF renders a float compactly for tables.
func fmtF(v float64) string { return fmt.Sprintf("%.4g", v) }

// percentileRow renders [p25 p50 p75 p90 max] of values; ok for empty input.
func percentileRow(values []float64) []string {
	if len(values) == 0 {
		return []string{"-", "-", "-", "-", "-"}
	}
	s := append([]float64(nil), values...)
	sort.Float64s(s)
	qs := []float64{0.25, 0.5, 0.75, 0.9, 1.0}
	out := make([]string, len(qs))
	for i, q := range qs {
		idx := int(q * float64(len(s)-1))
		out[i] = fmtF(s[idx])
	}
	return out
}
