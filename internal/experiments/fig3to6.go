package experiments

import (
	"fmt"

	"dragonfly/internal/ascii"
	"dragonfly/internal/core"
	"dragonfly/internal/stats"
)

// Figure3 regenerates the communication-time box plots: each application
// isolated on the machine under the ten placement x routing configurations.
func (r *Runner) Figure3() (*Report, error) {
	rep := &Report{
		ID:    "fig3",
		Title: "Application communication times under different placement and routing (Figure 3)",
	}
	var grid []simReq
	for _, app := range appNames() {
		for _, cell := range core.AllCells() {
			grid = append(grid, simReq{app: app, cell: cell, msgScale: 1})
		}
	}
	if err := r.prefetch(grid); err != nil {
		return nil, err
	}
	for _, app := range appNames() {
		t := Table{
			Title:   fmt.Sprintf("%s communication time distribution (ms)", app),
			Columns: []string{"config", "min", "q1", "median", "q3", "max"},
		}
		var boxes []ascii.NamedValues
		for _, cell := range core.AllCells() {
			res, err := r.resultFor(app, cell, 1, nil)
			if err != nil {
				return nil, err
			}
			times := res.CommTimesMs()
			b := stats.BoxOf(times)
			t.Rows = append(t.Rows, []string{
				cell.Name(), fmtF(b.Min), fmtF(b.Q1), fmtF(b.Median), fmtF(b.Q3), fmtF(b.Max),
			})
			boxes = append(boxes, ascii.NamedValues{Name: cell.Name(), Values: times})
		}
		rep.Tables = append(rep.Tables, t)
		rep.Plots = append(rep.Plots, Plot{
			Title: fmt.Sprintf("%s communication time (ms)", app),
			Text:  ascii.BoxPlot(boxes, 60),
		})
	}
	return r.finish(rep)
}

// Figure4 regenerates the CR deep dive: average hops CDF, local channel
// traffic CDF, and local/global link saturation CDFs across the ten
// configurations.
func (r *Runner) Figure4() (*Report, error) {
	rep := &Report{
		ID:    "fig4",
		Title: "Average hops, network traffic, and link saturation time for CR (Figure 4)",
	}
	hops := Table{
		Title:   "CR average hops per rank (distribution percentiles)",
		Columns: []string{"config", "p25", "p50", "p75", "p90", "max"},
	}
	if err := r.prefetch(isolatedGrid("CR")); err != nil {
		return nil, err
	}
	for _, cell := range core.AllCells() {
		res, err := r.resultFor("CR", cell, 1, nil)
		if err != nil {
			return nil, err
		}
		hops.Rows = append(hops.Rows, append([]string{cell.Name()}, percentileRow(res.AvgHops)...))
	}
	rep.Tables = append(rep.Tables, hops)

	more, plots, err := r.channelTables("CR", false, true, false, true, true)
	if err != nil {
		return nil, err
	}
	rep.Tables = append(rep.Tables, more...)
	rep.Plots = plots
	return r.finish(rep)
}

// Figure5 regenerates the FB channel study: local and global traffic and
// saturation CDFs.
func (r *Runner) Figure5() (*Report, error) {
	rep := &Report{
		ID:    "fig5",
		Title: "Network traffic and link saturation time for FB (Figure 5)",
	}
	tables, plots, err := r.channelTables("FB", false, true, true, true, true)
	if err != nil {
		return nil, err
	}
	rep.Tables = tables
	rep.Plots = plots
	return r.finish(rep)
}

// Figure6 regenerates the AMG channel study.
func (r *Runner) Figure6() (*Report, error) {
	rep := &Report{
		ID:    "fig6",
		Title: "Network traffic and link saturation time for AMG (Figure 6)",
	}
	tables, plots, err := r.channelTables("AMG", false, true, true, true, true)
	if err != nil {
		return nil, err
	}
	rep.Tables = tables
	rep.Plots = plots
	return r.finish(rep)
}

// channelTables produces the traffic / saturation percentile tables of the
// Figs. 4-6 family for one application across all ten configurations, each
// with its ASCII CDF panel (the paper's percentage-of-channels curves).
// The boolean selectors pick which of the four panels to emit; restrict
// limits the census to channels of routers serving the application.
func (r *Runner) channelTables(app string, restrict, localTraffic, globalTraffic, localSat, globalSat bool) ([]Table, []Plot, error) {
	if err := r.prefetch(isolatedGrid(app)); err != nil {
		return nil, nil, err
	}
	type panel struct {
		on    bool
		title string
		get   func(*core.Result) []float64
	}
	scope := ""
	if restrict {
		scope = ", app routers only"
	}
	panels := []panel{
		{localTraffic, fmt.Sprintf("%s local channel traffic (MiB per channel%s)", app, scope),
			func(res *core.Result) []float64 { return res.LocalTraffic(restrict) }},
		{globalTraffic, fmt.Sprintf("%s global channel traffic (MiB per channel%s)", app, scope),
			func(res *core.Result) []float64 { return res.GlobalTraffic(restrict) }},
		{localSat, fmt.Sprintf("%s local link saturation time (ms per channel%s)", app, scope),
			func(res *core.Result) []float64 { return res.LocalSaturation(restrict) }},
		{globalSat, fmt.Sprintf("%s global link saturation time (ms per channel%s)", app, scope),
			func(res *core.Result) []float64 { return res.GlobalSaturation(restrict) }},
	}
	var out []Table
	var plots []Plot
	for _, p := range panels {
		if !p.on {
			continue
		}
		t := Table{
			Title:   p.title,
			Columns: []string{"config", "p25", "p50", "p75", "p90", "max", "busy_channels"},
		}
		series := map[string][]float64{}
		for _, cell := range core.AllCells() {
			res, err := r.resultFor(app, cell, 1, nil)
			if err != nil {
				return nil, nil, err
			}
			vals := p.get(res)
			busy := 0
			for _, v := range vals {
				if v > 0 {
					busy++
				}
			}
			row := append([]string{cell.Name()}, percentileRow(vals)...)
			row = append(row, fmt.Sprintf("%d/%d", busy, len(vals)))
			t.Rows = append(t.Rows, row)
			series[cell.Name()] = vals
		}
		out = append(out, t)
		plots = append(plots, Plot{
			Title: p.title + " — CDF (percentage of channels)",
			Text:  ascii.CDFPlot(series, 60, 12),
		})
	}
	return out, plots, nil
}

// isolatedGrid lists one application's ten no-background cells in the
// paper's presentation order.
func isolatedGrid(app string) []simReq {
	var grid []simReq
	for _, cell := range core.AllCells() {
		grid = append(grid, simReq{app: app, cell: cell, msgScale: 1})
	}
	return grid
}
