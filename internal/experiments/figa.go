package experiments

import (
	"fmt"

	"dragonfly/internal/core"
	"dragonfly/internal/network"
	"dragonfly/internal/placement"
	"dragonfly/internal/routing"
	"dragonfly/internal/stats"
	"dragonfly/internal/topology"
	"dragonfly/internal/trace"
)

// FigureA is the collective-workload sweep, an extension beyond the paper:
// the AI/storage dependency-graph generators (ring and tree all-reduce,
// MoE all-to-all, 2D/3D halo exchange, checkpoint burst) run through the
// paper's localizing-vs-balancing question — contiguous vs random-node
// placement under minimal vs adaptive routing — on both interconnects (the
// XC40 dragonfly the paper studies and the Dragonfly+ extension). The first
// table characterizes each workload's graph (what the paper's flat traces
// cannot express: dependency structure, critical path); the rest are
// fig3-style results per machine.
func (r *Runner) FigureA() (*Report, error) {
	apps := trace.GraphApps()
	cells := []core.Cell{
		{Placement: placement.Contiguous, Routing: routing.Minimal},
		{Placement: placement.Contiguous, Routing: routing.Adaptive},
		{Placement: placement.RandomNode, Routing: routing.Minimal},
		{Placement: placement.RandomNode, Routing: routing.Adaptive},
	}
	machines := []topology.Machine{r.Machine(), r.figaPlusMachine()}
	rep := &Report{
		ID:    "figa",
		Title: "Collective and storage workloads across placements, routings, and interconnects (extension beyond the paper)",
		Notes: []string{
			"workloads are dependency-graph generators (GOAL-like IR), not flat traces: pipelined ring steps, windowed all-to-all, halo joins",
			"localizing (cont) vs balancing (rand) under min/adp, on the XC40 dragonfly and a Dragonfly+ machine of equal node count",
		},
	}

	structure := Table{
		Title:   "Workload graph structure",
		Columns: []string{"app", "ranks", "nodes", "edges", "total_mib", "critpath_mib", "max_fanout"},
	}
	for _, app := range apps {
		g, err := r.AppGraph(app)
		if err != nil {
			return nil, err
		}
		structure.Rows = append(structure.Rows, []string{
			app, fmt.Sprintf("%d", g.NumRanks()),
			fmt.Sprintf("%d", g.NumNodes()), fmt.Sprintf("%d", g.NumEdges()),
			fmtF(float64(g.TotalSendBytes()) / (1 << 20)),
			fmtF(float64(g.CriticalPathBytes()) / (1 << 20)),
			fmt.Sprintf("%d", g.MaxFanOut()),
		})
	}
	rep.Tables = append(rep.Tables, structure)

	var cfgs []core.Config
	for _, m := range machines {
		for _, app := range apps {
			g, err := r.AppGraph(app)
			if err != nil {
				return nil, err
			}
			for _, cell := range cells {
				cfgs = append(cfgs, core.Config{
					Topology:       m,
					Params:         network.DefaultParams(),
					Placement:      cell.Placement,
					Routing:        cell.Routing,
					Graph:          g,
					Seed:           r.opts.Seed,
					Audit:          r.opts.Audit,
					Faults:         r.opts.Faults,
					WatchdogEvents: defaultWatchdogEvents,
				})
			}
		}
	}
	results, err := r.runBatch(cfgs)
	if err != nil {
		return nil, err
	}

	i := 0
	for _, m := range machines {
		t := Table{
			Title:   fmt.Sprintf("Communication time and hops on %s", m.Label()),
			Columns: []string{"app", "config", "median_ms", "max_ms", "mean_hops"},
		}
		for _, app := range apps {
			for _, cell := range cells {
				res := results[i]
				i++
				if !res.Completed {
					return nil, fmt.Errorf("experiments: figa %s under %s on %s did not complete",
						app, cell.Name(), m.Label())
				}
				r.progressf("ran %-6s %-9s machine=%-24s simtime=%v events=%d",
					app, cell.Name(), m.Label(), res.Duration, res.Events)
				b := stats.BoxOf(res.CommTimesMs())
				t.Rows = append(t.Rows, []string{
					app, cell.Name(), fmtF(b.Median), fmtF(b.Max), fmtF(meanOf(res.AvgHops)),
				})
			}
		}
		rep.Tables = append(rep.Tables, t)
	}
	return r.finish(rep)
}

// figaPlusMachine returns the Dragonfly+ counterpart of the runner's scale:
// the 160-node mini preset at quick scale (same node count as the quick
// XC40 machine), the full Dragonfly+ preset at paper scale.
func (r *Runner) figaPlusMachine() topology.Machine {
	if r.opts.Scale == ScalePaper {
		return topology.Plus()
	}
	return topology.PlusMini()
}
