package experiments

import "testing"

// The allocation machinery (packet/credit pools, path cache, hop arenas)
// must leave every report byte untouched. Baseline: pooling on, strictly
// sequential — the same configuration the golden suite anchors. Against it:
// pooling forced off at worker counts 1, 2, and 4, which also proves the
// per-worker pools don't leak state across parallel sweep cells.
func TestPoolingReportsMatchAcrossParallel(t *testing.T) {
	if testing.Short() {
		t.Skip("regenerates fig3 and fig8 four times each")
	}
	for _, id := range []string{"fig3", "fig8"} {
		baseText, baseCSV := renderReport(t, id, 1)
		for _, workers := range []int{1, 2, 4} {
			text, csvs := renderReportOpts(t, id, Options{
				Scale: ScaleQuick, Seed: 1, Parallel: workers, DisablePooling: true,
			})
			if text != baseText {
				t.Errorf("%s: pooling-off parallel=%d report text differs from pooled sequential:\n%s",
					id, workers, firstDiff(baseText, text))
			}
			if len(csvs) != len(baseCSV) {
				t.Fatalf("%s: pooling-off parallel=%d wrote %d CSVs, pooled %d",
					id, workers, len(csvs), len(baseCSV))
			}
			for name, want := range baseCSV {
				if got, ok := csvs[name]; !ok {
					t.Errorf("%s: pooling-off parallel=%d missing CSV %s", id, workers, name)
				} else if got != want {
					t.Errorf("%s: pooling-off parallel=%d CSV %s differs from pooled run", id, workers, name)
				}
			}
		}
	}
}
