package experiments

import (
	"fmt"

	"dragonfly/internal/trace"
)

// Figure2 regenerates the application characterization: the communication
// matrix (binned) and the message-load-per-rank-over-time profile of each
// application. These are properties of the traces alone — no simulation.
func (r *Runner) Figure2() (*Report, error) {
	rep := &Report{
		ID:    "fig2",
		Title: "Communication matrix and message load per rank (Figure 2)",
		Notes: []string{
			"matrices binned to 10x10 in the text report; CSV carries 50x50",
			"phase index stands in for wall time (traces carry no compute)",
		},
	}
	for _, app := range appNames() {
		tr, err := r.AppTrace(app)
		if err != nil {
			return nil, err
		}
		rep.Tables = append(rep.Tables, matrixTable(app, tr, 10))
		if r.opts.DataDir != "" {
			rep.Tables = append(rep.Tables, matrixTable(app+" full", tr, 50))
		}
		rep.Tables = append(rep.Tables, loadTable(app, tr))
	}
	return r.finish(rep)
}

// matrixTable renders the binned communication matrix in MB per bin.
func matrixTable(app string, tr *trace.Trace, bins int) Table {
	m := tr.Matrix(bins)
	t := Table{
		Title:   fmt.Sprintf("%s communication matrix (MB per bin, %dx%d bins over %d ranks)", app, len(m), len(m), tr.NumRanks()),
		Columns: make([]string, len(m)+1),
	}
	t.Columns[0] = "src_bin"
	for j := range m {
		t.Columns[j+1] = fmt.Sprintf("dst%d", j)
	}
	const MB = 1024 * 1024
	for i, row := range m {
		cells := make([]string, len(row)+1)
		cells[0] = fmt.Sprintf("src%d", i)
		for j, v := range row {
			cells[j+1] = fmt.Sprintf("%.2f", v/MB)
		}
		t.Rows = append(t.Rows, cells)
	}
	return t
}

// loadTable renders the per-phase mean send load per rank in KB.
func loadTable(app string, tr *trace.Trace) Table {
	loads := tr.PhaseLoads()
	t := Table{
		Title:   fmt.Sprintf("%s message load per rank over time (KB per phase)", app),
		Columns: []string{"phase", "kb_per_rank"},
	}
	for i, l := range loads {
		t.Rows = append(t.Rows, []string{fmt.Sprintf("%d", i), fmt.Sprintf("%.1f", l/1024)})
	}
	t.Rows = append(t.Rows, []string{"avg_total", fmt.Sprintf("%.1f", tr.AvgLoadPerRank()/1024)})
	return t
}
