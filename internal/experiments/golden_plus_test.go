package experiments

import (
	"bytes"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"dragonfly/internal/topology"
)

// TestGoldenDragonflyPlus anchors the Dragonfly+ extension the same way the
// paper's figures are anchored: a fig3-style sweep (3 applications x 10
// placement-routing cells) on the dfplus-mini machine must reproduce the
// committed snapshot byte for byte — text and every CSV. The snapshot lives
// in its own testdata/golden/dfplus directory so the paper-machine goldens
// stay untouched; refresh it with the same UPDATE_GOLDEN=1 flow.
func TestGoldenDragonflyPlus(t *testing.T) {
	m, err := topology.Preset("dfplus-mini")
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	golden := filepath.Join(goldenDir(t), "dfplus")
	r := NewRunner(Options{Scale: ScaleQuick, Seed: 1, DataDir: dir, Parallel: 1, Machine: m})
	rep, err := r.Run("fig3")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rep.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	if err := compareWithGolden(filepath.Join(golden, "fig3.txt"), buf.Bytes()); err != nil {
		t.Error(err)
	}

	produced, err := filepath.Glob(filepath.Join(dir, "*.csv"))
	if err != nil {
		t.Fatal(err)
	}
	sort.Strings(produced)
	if len(produced) == 0 {
		t.Fatal("dfplus fig3 produced no CSVs")
	}
	var names []string
	for _, p := range produced {
		names = append(names, filepath.Base(p))
		data, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		if err := compareWithGolden(filepath.Join(golden, filepath.Base(p)), data); err != nil {
			t.Error(err)
		}
	}
	committed, err := filepath.Glob(filepath.Join(golden, "*.csv"))
	if err != nil {
		t.Fatal(err)
	}
	var wantNames []string
	for _, p := range committed {
		wantNames = append(wantNames, filepath.Base(p))
	}
	sort.Strings(wantNames)
	if !updateGolden() && strings.Join(names, ",") != strings.Join(wantNames, ",") {
		t.Errorf("dfplus CSV set %v does not match committed golden set %v", names, wantNames)
	}
}
