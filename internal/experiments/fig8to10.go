package experiments

import (
	"fmt"

	"dragonfly/internal/ascii"
	"dragonfly/internal/core"
	"dragonfly/internal/stats"
	"dragonfly/internal/workload"
)

// Figure8 regenerates the AMG interference study: communication time and
// the traffic through the channels of AMG's routers under uniform-random
// background traffic.
func (r *Runner) Figure8() (*Report, error) {
	rep := &Report{
		ID:    "fig8",
		Title: "Communication time and channel traffic of AMG with uniform random background (Figure 8)",
	}
	uni := r.uniformBackground()
	box, plot, err := r.commBoxTable("AMG", "AMG communication time under uniform background (ms)", &uni)
	if err != nil {
		return nil, err
	}
	rep.Tables = append(rep.Tables, *box)
	rep.Plots = append(rep.Plots, *plot)

	traffic, err := r.bgChannelTables("AMG", &uni, true, true)
	if err != nil {
		return nil, err
	}
	rep.Tables = append(rep.Tables, traffic...)
	return r.finish(rep)
}

// Figure9 regenerates the CR interference study: communication time under
// uniform and bursty backgrounds, and the local channel traffic of CR's
// routers under the bursty background.
func (r *Runner) Figure9() (*Report, error) {
	return r.appInterference("fig9", "CR",
		"Communication time and local channel traffic of CR with background traffic (Figure 9)")
}

// Figure10 regenerates the FB interference study, mirroring Figure 9.
func (r *Runner) Figure10() (*Report, error) {
	return r.appInterference("fig10", "FB",
		"Communication time and local channel traffic of FB with background traffic (Figure 10)")
}

func (r *Runner) appInterference(id, app, title string) (*Report, error) {
	rep := &Report{ID: id, Title: title}
	uni := r.uniformBackground()
	boxU, plotU, err := r.commBoxTable(app, fmt.Sprintf("%s communication time under uniform background (ms)", app), &uni)
	if err != nil {
		return nil, err
	}
	rep.Tables = append(rep.Tables, *boxU)
	rep.Plots = append(rep.Plots, *plotU)

	machineNodes := r.machineNodes()
	tr, err := r.AppTrace(app)
	if err != nil {
		return nil, err
	}
	bur := r.burstyBackground(app, machineNodes-tr.NumRanks())
	boxB, plotB, err := r.commBoxTable(app, fmt.Sprintf("%s communication time under bursty background (ms)", app), &bur)
	if err != nil {
		return nil, err
	}
	rep.Tables = append(rep.Tables, *boxB)
	rep.Plots = append(rep.Plots, *plotB)

	local, err := r.bgChannelTables(app, &bur, true, false)
	if err != nil {
		return nil, err
	}
	rep.Tables = append(rep.Tables, local...)
	rep.Notes = append(rep.Notes, fmt.Sprintf(
		"bursty volume reduced by fan-out limit (%d peers/node); Table II reports full loads", bur.FanOut))
	return r.finish(rep)
}

// commBoxTable renders a per-configuration box plot of communication times
// for one application under a background load, with its ASCII panel.
func (r *Runner) commBoxTable(app, title string, bg *workload.BackgroundConfig) (*Table, *Plot, error) {
	t := Table{
		Title:   title,
		Columns: []string{"config", "min", "q1", "median", "q3", "max"},
	}
	if err := r.prefetch(backgroundGrid(app, bg)); err != nil {
		return nil, nil, err
	}
	var boxes []ascii.NamedValues
	for _, cell := range core.AllCells() {
		res, err := r.resultFor(app, cell, 1, bg)
		if err != nil {
			return nil, nil, err
		}
		times := res.CommTimesMs()
		b := stats.BoxOf(times)
		t.Rows = append(t.Rows, []string{
			cell.Name(), fmtF(b.Min), fmtF(b.Q1), fmtF(b.Median), fmtF(b.Q3), fmtF(b.Max),
		})
		boxes = append(boxes, ascii.NamedValues{Name: cell.Name(), Values: times})
	}
	return &t, &Plot{Title: title, Text: ascii.BoxPlot(boxes, 60)}, nil
}

// backgroundGrid lists one application's ten cells against a background load.
func backgroundGrid(app string, bg *workload.BackgroundConfig) []simReq {
	var grid []simReq
	for _, cell := range core.AllCells() {
		grid = append(grid, simReq{app: app, cell: cell, msgScale: 1, bg: bg})
	}
	return grid
}

// bgChannelTables renders the traffic through the channels of the routers
// serving the application while it ran against the background.
func (r *Runner) bgChannelTables(app string, bg *workload.BackgroundConfig, local, global bool) ([]Table, error) {
	if err := r.prefetch(backgroundGrid(app, bg)); err != nil {
		return nil, err
	}
	var out []Table
	type panel struct {
		on    bool
		title string
		get   func(*core.Result) []float64
	}
	panels := []panel{
		{local, fmt.Sprintf("%s local channel traffic under %s background (MiB, app routers)", app, bg.Kind),
			func(res *core.Result) []float64 { return res.LocalTraffic(true) }},
		{global, fmt.Sprintf("%s global channel traffic under %s background (MiB, app routers)", app, bg.Kind),
			func(res *core.Result) []float64 { return res.GlobalTraffic(true) }},
	}
	for _, p := range panels {
		if !p.on {
			continue
		}
		t := Table{
			Title:   p.title,
			Columns: []string{"config", "p25", "p50", "p75", "p90", "max"},
		}
		for _, cell := range core.AllCells() {
			res, err := r.resultFor(app, cell, 1, bg)
			if err != nil {
				return nil, err
			}
			t.Rows = append(t.Rows, append([]string{cell.Name()}, percentileRow(p.get(res))...))
		}
		out = append(out, t)
	}
	return out, nil
}
