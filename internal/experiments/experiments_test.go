package experiments

import (
	"bytes"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

func quickRunner(t *testing.T) *Runner {
	t.Helper()
	return NewRunner(Options{Scale: ScaleQuick, Seed: 1})
}

func TestIDsCoverEveryArtifact(t *testing.T) {
	ids := IDs()
	if len(ids) != 11 {
		t.Fatalf("IDs = %v, want 11 artifacts (2 tables + figs 2-10)", ids)
	}
}

func TestUnknownIDRejected(t *testing.T) {
	if _, err := quickRunner(t).Run("fig99"); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestTableI(t *testing.T) {
	rep, err := quickRunner(t).TableI()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Tables) != 1 || len(rep.Tables[0].Rows) != 5 {
		t.Fatalf("Table I shape wrong: %+v", rep.Tables)
	}
	var buf bytes.Buffer
	if err := rep.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"cont-min", "rand-adp", "chas-adp"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("Table I text missing %s", want)
		}
	}
}

func TestTableIIMatchesPaperAtPaperScale(t *testing.T) {
	r := NewRunner(Options{Scale: ScalePaper, Seed: 1})
	rep, err := r.TableII()
	if err != nil {
		t.Fatal(err)
	}
	want := map[string][2]string{
		"CR":  {"38.38", "92.00"},
		"FB":  {"38.38", "5.75"},
		"AMG": {"27.00", "2.85"},
	}
	rows := rep.Tables[0].Rows
	if len(rows) != 3 {
		t.Fatalf("Table II rows = %d", len(rows))
	}
	for _, row := range rows {
		w := want[row[0]]
		if row[1] != w[0] || row[2] != w[1] {
			t.Errorf("Table II %s = (%s, %s), paper (%s, %s)", row[0], row[1], row[2], w[0], w[1])
		}
	}
}

func TestFigure2(t *testing.T) {
	rep, err := quickRunner(t).Figure2()
	if err != nil {
		t.Fatal(err)
	}
	// 3 apps x (matrix + load timeline).
	if len(rep.Tables) != 6 {
		t.Fatalf("Figure 2 produced %d tables, want 6", len(rep.Tables))
	}
	// AMG load timeline must show the V-cycle surges: first phase load
	// strictly above a mid-sweep phase.
	var amgLoads *Table
	for i := range rep.Tables {
		if strings.HasPrefix(rep.Tables[i].Title, "AMG message load") {
			amgLoads = &rep.Tables[i]
		}
	}
	if amgLoads == nil {
		t.Fatal("AMG load table missing")
	}
	first, _ := strconv.ParseFloat(amgLoads.Rows[0][1], 64)
	mid, _ := strconv.ParseFloat(amgLoads.Rows[3][1], 64)
	if first <= mid {
		t.Fatalf("AMG surge profile missing: phase0 %v <= phase3 %v", first, mid)
	}
}

func TestFigure3QuickShape(t *testing.T) {
	r := quickRunner(t)
	rep, err := r.Figure3()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Tables) != 3 {
		t.Fatalf("Figure 3 tables = %d, want 3 apps", len(rep.Tables))
	}
	for _, tbl := range rep.Tables {
		if len(tbl.Rows) != 10 {
			t.Fatalf("%s: %d rows, want 10 configs", tbl.Title, len(tbl.Rows))
		}
		for _, row := range tbl.Rows {
			for i, cell := range row[1:] {
				v, err := strconv.ParseFloat(cell, 64)
				if err != nil || v <= 0 {
					t.Fatalf("%s %s col %d: bad value %q", tbl.Title, row[0], i, cell)
				}
			}
			// Box ordering.
			var vals [5]float64
			for i := 0; i < 5; i++ {
				vals[i], _ = strconv.ParseFloat(row[i+1], 64)
			}
			for i := 1; i < 5; i++ {
				if vals[i] < vals[i-1] {
					t.Fatalf("%s %s: box values not ordered: %v", tbl.Title, row[0], vals)
				}
			}
		}
	}
}

func TestFigure4ContrastHolds(t *testing.T) {
	r := quickRunner(t)
	rep, err := r.Figure4()
	if err != nil {
		t.Fatal(err)
	}
	// First table: hops percentiles. cont-min median hops < rand-min.
	hops := rep.Tables[0]
	med := map[string]float64{}
	for _, row := range hops.Rows {
		v, _ := strconv.ParseFloat(row[2], 64)
		med[row[0]] = v
	}
	if med["cont-min"] >= med["rand-min"] {
		t.Fatalf("cont-min median hops %v not below rand-min %v (Fig. 4a contrast)",
			med["cont-min"], med["rand-min"])
	}
	if len(rep.Tables) != 4 {
		t.Fatalf("Figure 4 tables = %d, want hops + traffic + 2 saturation", len(rep.Tables))
	}
}

func TestFigure7RelativeBaseline(t *testing.T) {
	r := quickRunner(t)
	rep, err := r.Figure7()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Tables) != 3 {
		t.Fatalf("Figure 7 tables = %d", len(rep.Tables))
	}
	for _, tbl := range rep.Tables {
		// rand-adp column must be exactly 100% everywhere.
		col := -1
		for i, c := range tbl.Columns {
			if c == "rand-adp" {
				col = i
			}
		}
		if col < 0 {
			t.Fatalf("%s: no rand-adp column", tbl.Title)
		}
		for _, row := range tbl.Rows {
			if row[col] != "100.0" {
				t.Fatalf("%s scale %s: baseline %s%% != 100.0", tbl.Title, row[0], row[col])
			}
		}
	}
}

func TestFigure8RunsQuick(t *testing.T) {
	r := quickRunner(t)
	rep, err := r.Figure8()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Tables) != 3 {
		t.Fatalf("Figure 8 tables = %d, want box + 2 traffic", len(rep.Tables))
	}
}

func TestFigure9And10RunQuick(t *testing.T) {
	r := quickRunner(t)
	for _, id := range []string{"fig9", "fig10"} {
		rep, err := r.Run(id)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(rep.Tables) != 3 {
			t.Fatalf("%s tables = %d, want uniform box + bursty box + local traffic", id, len(rep.Tables))
		}
	}
}

func TestCSVDump(t *testing.T) {
	dir := t.TempDir()
	r := NewRunner(Options{Scale: ScaleQuick, Seed: 1, DataDir: dir})
	if _, err := r.TableI(); err != nil {
		t.Fatal(err)
	}
	matches, _ := filepath.Glob(filepath.Join(dir, "table1_*.csv"))
	if len(matches) != 1 {
		t.Fatalf("CSV files = %v", matches)
	}
	data, err := os.ReadFile(matches[0])
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "placement_policy,") {
		t.Fatalf("CSV header wrong: %q", string(data)[:40])
	}
}

func TestRunnerCachesResults(t *testing.T) {
	r := quickRunner(t)
	if _, err := r.Figure3(); err != nil {
		t.Fatal(err)
	}
	n := len(r.cache)
	if n != 30 {
		t.Fatalf("cache holds %d results after Figure 3, want 30 (3 apps x 10 cells)", n)
	}
	// Figure 4 reuses the CR runs: no new entries.
	if _, err := r.Figure4(); err != nil {
		t.Fatal(err)
	}
	if len(r.cache) != n {
		t.Fatalf("Figure 4 re-ran cached cells: %d -> %d", n, len(r.cache))
	}
}

func TestSlug(t *testing.T) {
	if got := slug("CR local channel traffic (MiB per channel)"); got != "cr_local_channel_traffic_mib_per_channel" {
		t.Fatalf("slug = %q", got)
	}
}

func TestExtensionXMap(t *testing.T) {
	rep, err := quickRunner(t).Run("xmap")
	if err != nil {
		t.Fatal(err)
	}
	tbl := rep.Tables[0]
	if len(tbl.Rows) != 4 {
		t.Fatalf("xmap rows = %d, want 4 mappings", len(tbl.Rows))
	}
	hops := map[string]float64{}
	for _, row := range tbl.Rows {
		v, err := strconv.ParseFloat(row[3], 64)
		if err != nil {
			t.Fatalf("bad hops %q", row[3])
		}
		hops[row[0]] = v
	}
	// Locality-restoring mappings must not increase mean hops over shuffle.
	if hops["router-packed"] > hops["shuffle"] {
		t.Fatalf("router-packed hops %v above shuffle %v", hops["router-packed"], hops["shuffle"])
	}
}

func TestExtensionXMulti(t *testing.T) {
	rep, err := quickRunner(t).Run("xmulti")
	if err != nil {
		t.Fatal(err)
	}
	tbl := rep.Tables[0]
	if len(tbl.Rows) != 4 {
		t.Fatalf("xmulti rows = %d", len(tbl.Rows))
	}
	worst := 0.0
	for _, row := range tbl.Rows {
		slow := strings.TrimSuffix(row[3], "x")
		v, err := strconv.ParseFloat(slow, 64)
		if v > worst {
			worst = v
		}
		// Disjoint contiguous regions can leave the victim essentially
		// untouched (~1.0x); anything clearly below baseline is a bug.
		if err != nil || v < 0.9 {
			t.Fatalf("co-run slowdown %q below plausible range", row[3])
		}
	}
	if worst < 1.05 {
		t.Fatalf("no pairing showed interference (worst slowdown %.2fx)", worst)
	}
}

func TestReportWriteTextIncludesPlots(t *testing.T) {
	rep := &Report{
		ID:    "figX",
		Title: "demo",
		Notes: []string{"a note"},
		Tables: []Table{{
			Title:   "numbers",
			Columns: []string{"k", "v"},
			Rows:    [][]string{{"a", "1"}, {"b", "22"}},
		}},
		Plots: []Plot{{Title: "curve", Text: "~~~plot-body~~~\n"}},
	}
	var buf bytes.Buffer
	if err := rep.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"figX", "a note", "-- numbers --", "-- curve --", "~~~plot-body~~~"} {
		if !strings.Contains(out, want) {
			t.Fatalf("WriteText missing %q:\n%s", want, out)
		}
	}
}

func TestPercentileRow(t *testing.T) {
	row := percentileRow([]float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10})
	if len(row) != 5 {
		t.Fatalf("row = %v", row)
	}
	if row[4] != "10" {
		t.Fatalf("max = %q, want 10", row[4])
	}
	empty := percentileRow(nil)
	for _, c := range empty {
		if c != "-" {
			t.Fatalf("empty row = %v", empty)
		}
	}
}

func TestBurstyBackgroundDecodesTableII(t *testing.T) {
	r := NewRunner(Options{Scale: ScalePaper, Seed: 1})
	cr := r.burstyBackground("CR", 2456)
	if cr.MsgBytes != 16*1024 {
		t.Fatalf("CR bursty message = %d, want 16 KiB", cr.MsgBytes)
	}
	fb := r.burstyBackground("FB", 2456)
	if fb.MsgBytes != 1024 {
		t.Fatalf("FB bursty message = %d, want 1 KiB", fb.MsgBytes)
	}
	if cr.FanOut != 2455/32 {
		t.Fatalf("CR fan-out = %d, want %d", cr.FanOut, 2455/32)
	}
}
