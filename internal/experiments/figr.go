package experiments

import (
	"fmt"

	"dragonfly/internal/core"
	"dragonfly/internal/faults"
	"dragonfly/internal/network"
	"dragonfly/internal/placement"
	"dragonfly/internal/routing"
)

// FigureR is the resilience sweep, an extension beyond the paper: the
// paper's localizing-vs-balancing trade-off re-examined on a degraded
// fabric. For a growing fraction of failed global links (one deterministic
// fault draw per fraction, shared by every cell so all strategies face the
// same broken machine), the CR benchmark runs under the extreme placements
// x both routings; each cell reports communication-time slowdown against
// its own healthy baseline. A cell whose traffic hit a partition is marked
// "unreach" — the run still drains with every lost byte accounted, and the
// second table shows the loss.
func (r *Runner) FigureR() (*Report, error) {
	fracs := []float64{0, 0.1, 0.25, 0.5}
	cells := []core.Cell{
		{Placement: placement.Contiguous, Routing: routing.Minimal},
		{Placement: placement.Contiguous, Routing: routing.Adaptive},
		{Placement: placement.RandomNode, Routing: routing.Minimal},
		{Placement: placement.RandomNode, Routing: routing.Adaptive},
	}
	rep := &Report{
		ID:    "figr",
		Title: "Resilience sweep: comm-time slowdown vs failed global links (extension beyond the paper)",
		Notes: []string{
			"CR benchmark; per fraction, one seeded fault draw degrades the machine for every cell",
			"slowdown is against the same cell at fraction 0; unreach = placement spanned a partition (lossy run, see drops table)",
		},
	}

	tr, err := r.AppTrace("CR")
	if err != nil {
		return nil, err
	}
	var cfgs []core.Config
	for _, p := range fracs {
		for _, cell := range cells {
			cfg := core.Config{
				Topology:  r.Machine(),
				Params:    network.DefaultParams(),
				Placement: cell.Placement,
				Routing:   cell.Routing,
				Trace:     tr,
				Seed:      r.opts.Seed,
				Audit:     r.opts.Audit,
				// Degraded fabrics must fail loudly, never hang: generous
				// budgets that no legitimate run approaches.
				WatchdogEvents: 10_000_000_000,
			}
			if p > 0 {
				cfg.Faults = &faults.Spec{GlobalFrac: p, Seed: r.opts.Seed}
			}
			cfgs = append(cfgs, cfg)
		}
	}
	results, err := r.runBatch(cfgs)
	if err != nil {
		return nil, err
	}

	cols := []string{"failed_global_frac"}
	for _, c := range cells {
		cols = append(cols, c.Name())
	}
	slow := Table{Title: "CR comm-time slowdown vs healthy fabric", Columns: cols}
	drops := Table{Title: "Dropped packets (traffic to unreachable destinations)", Columns: cols}

	baseline := make([]float64, len(cells))
	for fi, p := range fracs {
		srow := []string{fmtF(p)}
		drow := []string{fmtF(p)}
		for ci := range cells {
			res := results[fi*len(cells)+ci]
			if !res.Completed {
				return nil, fmt.Errorf("experiments: figr %s at frac %g did not complete", cells[ci].Name(), p)
			}
			ms := res.MaxCommTime().Milliseconds()
			r.progressf("ran CR %-9s frac=%-4g simtime=%v dropped=%d",
				cells[ci].Name(), p, res.Duration, res.DroppedPackets)
			switch {
			case p == 0:
				baseline[ci] = ms
				srow = append(srow, "1.00x")
			case res.RouteErr != nil:
				srow = append(srow, "unreach")
			default:
				srow = append(srow, fmt.Sprintf("%.2fx", ms/baseline[ci]))
			}
			drow = append(drow, fmt.Sprintf("%d", res.DroppedPackets))
		}
		slow.Rows = append(slow.Rows, srow)
		drops.Rows = append(drops.Rows, drow)
	}
	rep.Tables = append(rep.Tables, slow, drops)
	return r.finish(rep)
}
