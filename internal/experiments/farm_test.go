package experiments

import (
	"bytes"
	"path/filepath"
	"testing"

	"dragonfly/internal/farm"
	"dragonfly/internal/topology"
)

// renderFarmed runs one experiment through a farm store with a fresh Runner
// and returns the rendered report plus the runner's farm statistics.
func renderFarmed(t *testing.T, id string, store *farm.Store) ([]byte, farm.Stats) {
	t.Helper()
	opts := Options{Scale: ScaleQuick, Seed: 1, Parallel: 1, Farm: store}
	if id == "figr" || id == "figq" {
		opts.Machine = topology.Mini() // match the golden harness exactly
	}
	r := NewRunner(opts)
	rep, err := r.Run(id)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rep.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), r.FarmStats()
}

// TestFarmBackedGoldenFigQ is the farm's end-to-end anchor: figq run twice
// through a farm store — cold (every cell simulated and banked) and warm
// (every cell replayed) — must both match the committed golden snapshot
// byte for byte, and the warm pass must perform zero simulations.
func TestFarmBackedGoldenFigQ(t *testing.T) {
	if updateGolden() {
		t.Skip("golden refresh in progress")
	}
	store, err := farm.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join(goldenDir(t), "figq.txt")

	cold, coldStats, warm := func() ([]byte, farm.Stats, []byte) {
		c, cs := renderFarmed(t, "figq", store)
		w, ws := renderFarmed(t, "figq", store)
		if ws.Misses != 0 {
			t.Fatalf("warm figq simulated %d cells, want 0", ws.Misses)
		}
		if ws.Hits == 0 || ws.Hits != ws.InShard {
			t.Fatalf("warm figq hits %d of %d cells, want all", ws.Hits, ws.InShard)
		}
		return c, cs, w
	}()
	if coldStats.Misses == 0 {
		t.Fatal("cold figq simulated nothing; the store cannot have been empty")
	}
	if coldStats.Uncacheable != 0 {
		t.Fatalf("cold figq left %d cells uncacheable", coldStats.Uncacheable)
	}
	if !bytes.Equal(cold, warm) {
		t.Fatal("cold and warm figq reports differ")
	}
	if err := compareWithGolden(golden, cold); err != nil {
		t.Errorf("farm-backed cold run diverges from the committed golden: %v", err)
	}
	if err := compareWithGolden(golden, warm); err != nil {
		t.Errorf("farm-backed warm run diverges from the committed golden: %v", err)
	}
}

// TestFarmBackedGoldenFigA proves the collective-workload sweep runs warm
// through the farm: graph-carrying configs must be cacheable (the encoder's
// graph.* lines), bank on the cold pass, and replay every cell on the warm
// pass while staying byte-identical to the committed golden.
func TestFarmBackedGoldenFigA(t *testing.T) {
	if updateGolden() {
		t.Skip("golden refresh in progress")
	}
	store, err := farm.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cold, coldStats := renderFarmed(t, "figa", store)
	if coldStats.Misses == 0 {
		t.Fatal("cold figa simulated nothing; the store cannot have been empty")
	}
	if coldStats.Uncacheable != 0 {
		t.Fatalf("cold figa left %d graph cells uncacheable", coldStats.Uncacheable)
	}
	warm, warmStats := renderFarmed(t, "figa", store)
	if warmStats.Misses != 0 {
		t.Fatalf("warm figa simulated %d cells, want 0", warmStats.Misses)
	}
	if warmStats.Hits != coldStats.Misses {
		t.Fatalf("warm figa hit %d cells; cold banked %d", warmStats.Hits, coldStats.Misses)
	}
	if !bytes.Equal(cold, warm) {
		t.Fatal("cold and warm figa reports differ")
	}
	if err := compareWithGolden(filepath.Join(goldenDir(t), "figa.txt"), cold); err != nil {
		t.Errorf("farm-backed figa diverges from the committed golden: %v", err)
	}
}

// TestFarmBackedGoldenFig3 covers the other execution path — the
// resultFor/prefetch grid used by the paper's headline figure — against its
// golden snapshot, cold then warm.
func TestFarmBackedGoldenFig3(t *testing.T) {
	if testing.Short() {
		t.Skip("regenerates fig3 twice")
	}
	if updateGolden() {
		t.Skip("golden refresh in progress")
	}
	store, err := farm.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cold, coldStats := renderFarmed(t, "fig3", store)
	if coldStats.Misses == 0 || coldStats.Uncacheable != 0 {
		t.Fatalf("cold fig3 stats %+v: want only misses", coldStats)
	}
	warm, warmStats := renderFarmed(t, "fig3", store)
	if warmStats.Misses != 0 {
		t.Fatalf("warm fig3 simulated %d cells, want 0", warmStats.Misses)
	}
	if warmStats.Hits != coldStats.Misses {
		t.Fatalf("warm fig3 hit %d cells; cold banked %d", warmStats.Hits, coldStats.Misses)
	}
	if !bytes.Equal(cold, warm) {
		t.Fatal("cold and warm fig3 reports differ")
	}
	if err := compareWithGolden(filepath.Join(goldenDir(t), "fig3.txt"), cold); err != nil {
		t.Errorf("farm-backed fig3 diverges from the committed golden: %v", err)
	}
}
