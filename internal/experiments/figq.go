package experiments

import (
	"fmt"

	"dragonfly/internal/core"
	"dragonfly/internal/faults"
	"dragonfly/internal/network"
	"dragonfly/internal/placement"
	"dragonfly/internal/routing"
	"dragonfly/internal/stats"
)

// FigureQ is the learning-router comparison, an extension beyond the
// paper: the localizing-vs-balancing trade-off (fig3's CR question) with
// the online congestion-learning qadaptive policy swept against the
// paper's min/adp, on the extreme placements, healthy and degraded. The
// first table is the fig3-style head-to-head (communication-time
// distribution plus mean hops — the hop column shows how much each policy
// misroutes); the remaining tables are the figr-style resilience view:
// slowdown against each cell's own healthy baseline, and drop accounting.
func (r *Runner) FigureQ() (*Report, error) {
	fracs := []float64{0, 0.15}
	cells := []core.Cell{
		{Placement: placement.Contiguous, Routing: routing.Minimal},
		{Placement: placement.Contiguous, Routing: routing.Adaptive},
		{Placement: placement.Contiguous, Routing: routing.QAdaptive},
		{Placement: placement.RandomNode, Routing: routing.Minimal},
		{Placement: placement.RandomNode, Routing: routing.Adaptive},
		{Placement: placement.RandomNode, Routing: routing.QAdaptive},
	}
	rep := &Report{
		ID:    "figq",
		Title: "Learning-router comparison: qadaptive vs min/adp under localizing and balancing placements (extension beyond the paper)",
		Notes: []string{
			"CR benchmark; qadaptive learns per-group-pair minimal-vs-Valiant costs online from link-saturation feedback",
			"per fraction, one seeded fault draw degrades the machine for every cell; slowdown is against the same cell at fraction 0",
		},
	}

	tr, err := r.AppTrace("CR")
	if err != nil {
		return nil, err
	}
	var cfgs []core.Config
	for _, p := range fracs {
		for _, cell := range cells {
			cfg := core.Config{
				Topology:  r.Machine(),
				Params:    network.DefaultParams(),
				Placement: cell.Placement,
				Routing:   cell.Routing,
				Trace:     tr,
				Seed:      r.opts.Seed,
				Audit:     r.opts.Audit,
				// Degraded fabrics must fail loudly, never hang.
				WatchdogEvents: 10_000_000_000,
			}
			if p > 0 {
				cfg.Faults = &faults.Spec{GlobalFrac: p, Seed: r.opts.Seed}
			}
			cfgs = append(cfgs, cfg)
		}
	}
	results, err := r.runBatch(cfgs)
	if err != nil {
		return nil, err
	}

	headToHead := Table{
		Title:   "CR communication time and hops on the healthy fabric",
		Columns: []string{"config", "median_ms", "max_ms", "mean_hops"},
	}
	for ci, cell := range cells {
		res := results[ci] // fraction 0 block comes first
		b := stats.BoxOf(res.CommTimesMs())
		headToHead.Rows = append(headToHead.Rows, []string{
			cell.Name(), fmtF(b.Median), fmtF(b.Max), fmtF(meanOf(res.AvgHops)),
		})
	}

	cols := []string{"failed_global_frac"}
	for _, c := range cells {
		cols = append(cols, c.Name())
	}
	slow := Table{Title: "CR comm-time slowdown vs healthy fabric", Columns: cols}
	drops := Table{Title: "Dropped packets (traffic to unreachable destinations)", Columns: cols}

	baseline := make([]float64, len(cells))
	for fi, p := range fracs {
		srow := []string{fmtF(p)}
		drow := []string{fmtF(p)}
		for ci := range cells {
			res := results[fi*len(cells)+ci]
			if !res.Completed {
				return nil, fmt.Errorf("experiments: figq %s at frac %g did not complete", cells[ci].Name(), p)
			}
			ms := res.MaxCommTime().Milliseconds()
			r.progressf("ran CR %-14s frac=%-4g simtime=%v dropped=%d",
				cells[ci].Name(), p, res.Duration, res.DroppedPackets)
			switch {
			case p == 0:
				baseline[ci] = ms
				srow = append(srow, "1.00x")
			case res.RouteErr != nil:
				srow = append(srow, "unreach")
			default:
				srow = append(srow, fmt.Sprintf("%.2fx", ms/baseline[ci]))
			}
			drow = append(drow, fmt.Sprintf("%d", res.DroppedPackets))
		}
		slow.Rows = append(slow.Rows, srow)
		drops.Rows = append(drops.Rows, drow)
	}
	rep.Tables = append(rep.Tables, headToHead, slow, drops)
	return r.finish(rep)
}

func meanOf(vals []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range vals {
		sum += v
	}
	return sum / float64(len(vals))
}
