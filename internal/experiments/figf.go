package experiments

import (
	"fmt"

	"dragonfly/internal/core"
	"dragonfly/internal/des"
	"dragonfly/internal/faults"
	"dragonfly/internal/network"
	"dragonfly/internal/placement"
	"dragonfly/internal/routing"
	"dragonfly/internal/stats"
	"dragonfly/internal/topology"
)

// figfScenario is one availability scenario of the figf sweep: a label and
// the fault spec that realizes it on a particular machine (nil = healthy).
type figfScenario struct {
	name string
	spec *faults.Spec
}

// FigureF is the availability sweep, an extension beyond the paper: the
// localizing-vs-balancing question re-examined under realistic fault
// dynamics — a flapping global cable (seeded MTBF/MTTR fail/repair cycles)
// and correlated failure domains (a whole cable bundle, a whole group) that
// fail mid-run and are repaired mid-run — on both interconnects. Fault
// targets are derived from each machine's own wiring (the first global cable
// and its endpoint groups), never hard-coded, so the same scenario
// vocabulary is valid on any topology. Every run drains with exact loss
// accounting; a cell whose traffic hit a partition window is marked
// "unreach" rather than erroring.
func (r *Runner) FigureF() (*Report, error) {
	cells := []core.Cell{
		{Placement: placement.Contiguous, Routing: routing.Minimal},
		{Placement: placement.Contiguous, Routing: routing.Adaptive},
		{Placement: placement.RandomNode, Routing: routing.Minimal},
		{Placement: placement.RandomNode, Routing: routing.Adaptive},
	}
	machines := []topology.Machine{r.Machine(), r.figaPlusMachine()}
	rep := &Report{
		ID:    "figf",
		Title: "Availability sweep: flapping cable and correlated failure domains (extension beyond the paper)",
		Notes: []string{
			"CR benchmark; per machine, fault targets derive from its first global cable and that cable's endpoint groups",
			"flap = seeded MTBF/MTTR fail/repair cycles on one cable; bundle/group = correlated outage failed mid-run and repaired mid-run",
			"unreach = traffic hit a partition window (lossy run; drops are accounted in dropped_pkts)",
		},
	}

	tr, err := r.AppTrace("CR")
	if err != nil {
		return nil, err
	}
	var cfgs []core.Config
	scens := make([][]figfScenario, len(machines))
	for mi, m := range machines {
		ic, err := m.Build()
		if err != nil {
			return nil, err
		}
		scens[mi], err = r.figfScenarios(ic)
		if err != nil {
			return nil, err
		}
		for _, sc := range scens[mi] {
			for _, cell := range cells {
				cfgs = append(cfgs, core.Config{
					Topology:       m,
					Params:         network.DefaultParams(),
					Placement:      cell.Placement,
					Routing:        cell.Routing,
					Trace:          tr,
					Seed:           r.opts.Seed,
					Audit:          r.opts.Audit,
					Faults:         sc.spec,
					WatchdogEvents: defaultWatchdogEvents,
				})
			}
		}
	}
	results, err := r.runBatch(cfgs)
	if err != nil {
		return nil, err
	}

	i := 0
	for mi, m := range machines {
		t := Table{
			Title:   fmt.Sprintf("CR availability on %s", m.Label()),
			Columns: []string{"scenario", "config", "median_ms", "max_ms", "mean_hops", "dropped_pkts", "status"},
		}
		for _, sc := range scens[mi] {
			rep.Notes = append(rep.Notes, fmt.Sprintf("%s %s: %s", m.Label(), sc.name, describeFaults(sc.spec)))
			for _, cell := range cells {
				res := results[i]
				i++
				if !res.Completed {
					return nil, fmt.Errorf("experiments: figf %s under %s on %s did not complete",
						sc.name, cell.Name(), m.Label())
				}
				r.progressf("ran CR %-9s scenario=%-8s machine=%-24s simtime=%v dropped=%d",
					cell.Name(), sc.name, m.Label(), res.Duration, res.DroppedPackets)
				status := "ok"
				if res.RouteErr != nil {
					status = "unreach"
				}
				b := stats.BoxOf(res.CommTimesMs())
				t.Rows = append(t.Rows, []string{
					sc.name, cell.Name(), fmtF(b.Median), fmtF(b.Max), fmtF(meanOf(res.AvgHops)),
					fmt.Sprintf("%d", res.DroppedPackets), status,
				})
			}
		}
		rep.Tables = append(rep.Tables, t)
	}
	return r.finish(rep)
}

// figfScenarios derives the machine-specific availability scenarios. Targets
// come from the built machine — the first entry of its deterministic global
// cable enumeration and that cable's endpoint groups — so the sweep needs no
// per-topology router IDs and stays valid when machine presets change shape.
func (r *Runner) figfScenarios(ic topology.Interconnect) ([]figfScenario, error) {
	conns := ic.GlobalConns()
	if len(conns) == 0 {
		return nil, fmt.Errorf("experiments: figf: machine %s has no global cables", ic.Name())
	}
	c := conns[0]
	g1, g2 := ic.GroupOfRouter(c.A), ic.GroupOfRouter(c.B)
	const (
		failAt   = 20 * des.Microsecond
		repairAt = 120 * des.Microsecond
	)
	return []figfScenario{
		{"healthy", nil},
		{"flap", &faults.Spec{
			Flaps:     []faults.Flap{{A: c.A, B: c.B, MTBF: 100 * des.Microsecond, MTTR: 50 * des.Microsecond}},
			FlapUntil: 500 * des.Microsecond,
			Seed:      r.opts.Seed,
		}},
		{"bundle", &faults.Spec{Events: []faults.Event{
			{At: failAt, IsBundle: true, G1: g1, G2: g2},
			{At: repairAt, IsBundle: true, G1: g1, G2: g2, Repair: true},
		}}},
		{"group", &faults.Spec{Events: []faults.Event{
			{At: failAt, IsGroup: true, Group: g2},
			{At: repairAt, IsGroup: true, Group: g2, Repair: true},
		}}},
	}, nil
}

// describeFaults renders a scenario spec for the report notes.
func describeFaults(s *faults.Spec) string {
	if s == nil {
		return "no faults"
	}
	return s.String()
}
