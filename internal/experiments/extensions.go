package experiments

import (
	"fmt"

	"dragonfly/internal/core"
	"dragonfly/internal/mapping"
	"dragonfly/internal/network"
	"dragonfly/internal/placement"
	"dragonfly/internal/routing"
	"dragonfly/internal/stats"
	"dragonfly/internal/trace"
)

// Extension experiments beyond the paper's figures: the task-mapping study
// its future-work section names (xmap), and a real-trace co-run
// interference study in the spirit of the authors' prior "bully" work
// (xmulti).

// ExtensionIDs lists the extension experiments.
func ExtensionIDs() []string { return []string{"xmap", "xmulti", "figr", "figq", "figa", "figf"} }

// XMap studies task mapping (the paper's stated future work): AMG — the
// neighbor-heavy application — on a random-router allocation under every
// mapping policy. Locality-restoring mappings should recover part of the
// contiguous placement's advantage.
func (r *Runner) XMap() (*Report, error) {
	rep := &Report{
		ID:    "xmap",
		Title: "Task mapping study (extension; paper Sec. VI future work)",
		Notes: []string{"AMG on a random-router allocation, adaptive routing"},
	}
	t := Table{
		Title:   "AMG communication time and locality by task mapping",
		Columns: []string{"mapping", "median_ms", "max_ms", "mean_hops"},
	}
	tr, err := r.AppTrace("AMG")
	if err != nil {
		return nil, err
	}
	var cfgs []core.Config
	for _, pol := range mapping.All() {
		cfgs = append(cfgs, core.Config{
			Topology:       r.Machine(),
			Params:         network.DefaultParams(),
			Placement:      placement.RandomRouter,
			Routing:        routing.Adaptive,
			Mapping:        pol,
			Trace:          tr,
			Seed:           r.opts.Seed,
			Faults:         r.opts.Faults,
			WatchdogEvents: defaultWatchdogEvents,
		})
	}
	results, err := r.runBatch(cfgs)
	if err != nil {
		return nil, err
	}
	for i, res := range results {
		pol := mapping.All()[i]
		if !res.Completed {
			return nil, fmt.Errorf("experiments: xmap %v did not complete", pol)
		}
		r.progressf("ran AMG mapping=%-13s simtime=%v events=%d", pol, res.Duration, res.Events)
		box := stats.BoxOf(res.CommTimesMs())
		t.Rows = append(t.Rows, []string{
			pol.String(), fmtF(box.Median), fmtF(box.Max), fmtF(stats.Mean(res.AvgHops)),
		})
	}
	rep.Tables = append(rep.Tables, t)
	return r.finish(rep)
}

// XMulti studies inter-job interference with real traces: a light AMG
// victim co-running with a heavy CR bully under different placement
// pairings, compared with AMG running alone.
func (r *Runner) XMulti() (*Report, error) {
	rep := &Report{
		ID:    "xmulti",
		Title: "Multijob co-run interference (extension; cf. the authors' prior bully study)",
	}
	amg, err := r.AppTrace("AMG")
	if err != nil {
		return nil, err
	}
	cr, err := r.xmultiBully()
	if err != nil {
		return nil, err
	}

	runCo := func(jobs []core.JobSpec) (*core.MultiResult, error) {
		res, err := core.RunMulti(core.MultiConfig{
			Topology: r.Machine(),
			Params:   network.DefaultParams(),
			Routing:  routing.Adaptive,
			Jobs:     jobs,
			Seed:     r.opts.Seed,
		})
		if err != nil {
			return nil, err
		}
		if !res.Completed() {
			return nil, fmt.Errorf("experiments: xmulti co-run did not complete")
		}
		return res, nil
	}

	alone, err := runCo([]core.JobSpec{{Name: "AMG", Trace: amg, Placement: placement.Contiguous}})
	if err != nil {
		return nil, err
	}
	baseline := alone.Jobs[0].MaxCommTime()
	r.progressf("ran AMG alone: %v", baseline)

	t := Table{
		Title:   fmt.Sprintf("AMG slowdown co-running with CR (AMG alone: %.4g ms)", baseline.Milliseconds()),
		Columns: []string{"amg_placement", "cr_placement", "amg_max_ms", "slowdown", "cr_max_ms"},
	}
	for _, pair := range []struct{ victim, bully placement.Policy }{
		{placement.Contiguous, placement.Contiguous},
		{placement.Contiguous, placement.RandomNode},
		{placement.RandomNode, placement.RandomNode},
		{placement.RandomCabinet, placement.RandomNode},
	} {
		res, err := runCo([]core.JobSpec{
			{Name: "AMG", Trace: amg, Placement: pair.victim},
			{Name: "CR", Trace: cr, Placement: pair.bully},
		})
		if err != nil {
			return nil, err
		}
		amgMax := res.Jobs[0].MaxCommTime()
		r.progressf("ran co-run %v/%v: AMG %v", pair.victim, pair.bully, amgMax)
		t.Rows = append(t.Rows, []string{
			pair.victim.String(), pair.bully.String(),
			fmtF(amgMax.Milliseconds()),
			fmt.Sprintf("%.2fx", float64(amgMax)/float64(baseline)),
			fmtF(res.Jobs[1].MaxCommTime().Milliseconds()),
		})
	}
	rep.Tables = append(rep.Tables, t)
	return r.finish(rep)
}

// xmultiBully returns the heavy CR co-runner sized to the scale.
func (r *Runner) xmultiBully() (*trace.Trace, error) {
	if r.opts.Scale == ScalePaper {
		return trace.CR(trace.CRConfig{Ranks: 1000, MessageBytes: 380 * trace.KB})
	}
	return trace.CR(trace.CRConfig{Ranks: 48, MessageBytes: 128 * trace.KB})
}
