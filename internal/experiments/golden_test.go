package experiments

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"dragonfly/internal/topology"
)

// The golden-run regression suite: committed byte-exact snapshots of small
// fig2/fig3/fig8 outputs (rendered text and every CSV) anchor the model.
// Any refactor that perturbs a simulated result — event ordering, RNG
// consumption, float formatting, flow-control behavior — fails these tests
// loudly instead of silently drifting the paper's figures.
//
// To refresh after an intentional model change:
//
//	UPDATE_GOLDEN=1 go test ./internal/experiments -run TestGolden
//
// and commit the rewritten files under testdata/golden with a justification.

// goldenIDs are the anchored experiments: fig2 exercises the trace
// generators alone, fig3 the full placement x routing simulation grid,
// fig8 the background-interference path, figr the degraded-fabric
// resilience sweep (on the mini machine, so the snapshot also anchors the
// fault model's deterministic draw and the fault-aware routing layer), and
// figq the learning-router comparison (also on mini — it anchors the
// qadaptive policy's Q-table trajectory end to end, saturation feedback
// included), and figa the collective-workload sweep (it anchors the
// dependency-graph generators and the graph executor on both interconnects),
// and figf the availability sweep (it anchors the flap expansion and the
// correlated group/bundle fault domains end to end, mid-run repair included).
var goldenIDs = []string{"fig2", "fig3", "fig8", "figr", "figq", "figa", "figf"}

func updateGolden() bool { return os.Getenv("UPDATE_GOLDEN") == "1" }

func goldenDir(t *testing.T) string {
	t.Helper()
	return filepath.Join("testdata", "golden")
}

// compareWithGolden checks got against the committed snapshot byte for byte.
// It returns an error describing the first divergence, or nil on an exact
// match. With UPDATE_GOLDEN=1 it rewrites the snapshot and reports nil.
func compareWithGolden(goldenPath string, got []byte) error {
	if updateGolden() {
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			return err
		}
		return os.WriteFile(goldenPath, got, 0o644)
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		return fmt.Errorf("missing golden file (run with UPDATE_GOLDEN=1 to create): %w", err)
	}
	if bytes.Equal(want, got) {
		return nil
	}
	// Locate the first differing byte for a useful failure message.
	n := len(want)
	if len(got) < n {
		n = len(got)
	}
	at := n
	for i := 0; i < n; i++ {
		if want[i] != got[i] {
			at = i
			break
		}
	}
	wantLine := 1 + bytes.Count(want[:min(at, len(want))], []byte("\n"))
	return fmt.Errorf("%s: output differs from golden at byte %d (line %d): golden %d bytes, got %d bytes",
		filepath.Base(goldenPath), at, wantLine, len(want), len(got))
}

// TestGoldenReports regenerates each anchored experiment at quick scale,
// seed 1, strictly sequentially, and requires byte-identical text and CSV
// output.
func TestGoldenReports(t *testing.T) {
	for _, id := range goldenIDs {
		id := id
		t.Run(id, func(t *testing.T) {
			dir := t.TempDir()
			opts := Options{Scale: ScaleQuick, Seed: 1, DataDir: dir, Parallel: 1}
			if id == "figr" || id == "figq" {
				// The fault-driven sweeps are anchored on the mini preset:
				// small enough to keep the suite fast, and a fixed named
				// machine so the fault draw is pinned independently of the
				// quick-scale default.
				opts.Machine = topology.Mini()
			}
			r := NewRunner(opts)
			rep, err := r.Run(id)
			if err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			if err := rep.WriteText(&buf); err != nil {
				t.Fatal(err)
			}
			if err := compareWithGolden(filepath.Join(goldenDir(t), id+".txt"), buf.Bytes()); err != nil {
				t.Error(err)
			}

			produced, err := filepath.Glob(filepath.Join(dir, "*.csv"))
			if err != nil {
				t.Fatal(err)
			}
			sort.Strings(produced)
			if len(produced) == 0 {
				t.Fatalf("%s produced no CSVs", id)
			}
			var names []string
			for _, p := range produced {
				names = append(names, filepath.Base(p))
				data, err := os.ReadFile(p)
				if err != nil {
					t.Fatal(err)
				}
				if err := compareWithGolden(filepath.Join(goldenDir(t), filepath.Base(p)), data); err != nil {
					t.Error(err)
				}
			}
			// A table silently disappearing must fail too: the committed CSV
			// set for this experiment and the produced set must agree.
			committed, err := filepath.Glob(filepath.Join(goldenDir(t), id+"_*.csv"))
			if err != nil {
				t.Fatal(err)
			}
			var wantNames []string
			for _, p := range committed {
				wantNames = append(wantNames, filepath.Base(p))
			}
			sort.Strings(wantNames)
			if !updateGolden() && strings.Join(names, ",") != strings.Join(wantNames, ",") {
				t.Errorf("%s CSV set %v does not match committed golden set %v", id, names, wantNames)
			}
		})
	}
}

// TestGoldenDetectsPerturbation proves the anchor has teeth: a golden copy
// with a single flipped byte must be reported as a mismatch. The perturbed
// copy lives in a temp dir; the committed snapshots are never touched.
func TestGoldenDetectsPerturbation(t *testing.T) {
	if updateGolden() {
		t.Skip("golden refresh in progress")
	}
	src := filepath.Join(goldenDir(t), "fig2.txt")
	content, err := os.ReadFile(src)
	if err != nil {
		t.Fatalf("read committed golden: %v", err)
	}
	if err := compareWithGolden(src, content); err != nil {
		t.Fatalf("pristine copy reported as mismatch: %v", err)
	}

	perturbed := append([]byte(nil), content...)
	at := len(perturbed) / 2
	perturbed[at] ^= 0x01
	tmp := filepath.Join(t.TempDir(), "fig2.txt")
	if err := os.WriteFile(tmp, perturbed, 0o644); err != nil {
		t.Fatal(err)
	}
	err = compareWithGolden(tmp, content)
	if err == nil {
		t.Fatal("one-byte perturbation not detected")
	}
	if !strings.Contains(err.Error(), fmt.Sprintf("byte %d", at)) {
		t.Fatalf("mismatch reported at the wrong position: %v", err)
	}
}

// TestAuditedExperimentGridClean runs the full small-config experiment grid
// (fig3: 3 applications x 10 placement-routing cells) under the invariant
// auditor: the committed model holds its flow-control physics on every cell
// the paper's headline figure draws from.
func TestAuditedExperimentGridClean(t *testing.T) {
	if testing.Short() {
		t.Skip("regenerates fig3 under the auditor")
	}
	r := NewRunner(Options{Scale: ScaleQuick, Seed: 1, Audit: true})
	if _, err := r.Figure3(); err != nil {
		t.Fatalf("audited fig3 grid: %v", err)
	}
}
