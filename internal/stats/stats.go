// Package stats provides the summary statistics behind the paper's figures:
// box-plot five-number summaries (Figs. 3, 8-10), empirical CDF series
// (Figs. 4-6), and simple aggregates.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Box is the five-number summary rendered by the paper's box plots.
type Box struct {
	Min    float64
	Q1     float64
	Median float64
	Q3     float64
	Max    float64
}

// BoxOf summarizes values; it panics on an empty input because an empty box
// plot indicates a harness bug, not a data condition.
func BoxOf(values []float64) Box {
	if len(values) == 0 {
		panic("stats: BoxOf of empty slice")
	}
	s := sorted(values)
	return Box{
		Min:    s[0],
		Q1:     Quantile(s, 0.25),
		Median: Quantile(s, 0.5),
		Q3:     Quantile(s, 0.75),
		Max:    s[len(s)-1],
	}
}

func (b Box) String() string {
	return fmt.Sprintf("min=%.4g q1=%.4g med=%.4g q3=%.4g max=%.4g",
		b.Min, b.Q1, b.Median, b.Q3, b.Max)
}

// Quantile returns the q-th quantile (0 <= q <= 1) of an ascending-sorted
// slice using linear interpolation between order statistics.
func Quantile(sortedValues []float64, q float64) float64 {
	n := len(sortedValues)
	if n == 0 {
		panic("stats: Quantile of empty slice")
	}
	if q < 0 || q > 1 {
		panic(fmt.Sprintf("stats: quantile %v out of [0,1]", q))
	}
	if n == 1 {
		return sortedValues[0]
	}
	pos := q * float64(n-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sortedValues[lo]
	}
	frac := pos - float64(lo)
	return sortedValues[lo]*(1-frac) + sortedValues[hi]*frac
}

// Mean returns the arithmetic mean; 0 for an empty slice.
func Mean(values []float64) float64 {
	if len(values) == 0 {
		return 0
	}
	var sum float64
	for _, v := range values {
		sum += v
	}
	return sum / float64(len(values))
}

// Max returns the maximum; it panics on empty input.
func Max(values []float64) float64 {
	if len(values) == 0 {
		panic("stats: Max of empty slice")
	}
	m := values[0]
	for _, v := range values[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

// Sum returns the total of values.
func Sum(values []float64) float64 {
	var s float64
	for _, v := range values {
		s += v
	}
	return s
}

// CDFPoint is one step of an empirical CDF: Fraction of the population has
// Value or less.
type CDFPoint struct {
	Value    float64
	Fraction float64 // in (0, 1]
}

// CDF computes the empirical distribution of values — the "percentage of
// channels" curves of Figs. 4-6. The result has one point per distinct
// value, ascending.
func CDF(values []float64) []CDFPoint {
	if len(values) == 0 {
		return nil
	}
	s := sorted(values)
	n := float64(len(s))
	var out []CDFPoint
	for i := 0; i < len(s); i++ {
		// Collapse runs of equal values into the final (highest) fraction.
		if i+1 < len(s) && s[i+1] == s[i] {
			continue
		}
		out = append(out, CDFPoint{Value: s[i], Fraction: float64(i+1) / n})
	}
	return out
}

// CDFAt evaluates an empirical CDF at x: the fraction of the population
// with value <= x.
func CDFAt(cdf []CDFPoint, x float64) float64 {
	frac := 0.0
	for _, p := range cdf {
		if p.Value > x {
			break
		}
		frac = p.Fraction
	}
	return frac
}

// Percentiles evaluates several quantiles at once over unsorted values.
func Percentiles(values []float64, qs ...float64) []float64 {
	s := sorted(values)
	out := make([]float64, len(qs))
	for i, q := range qs {
		out[i] = Quantile(s, q)
	}
	return out
}

// Histogram bins values into `bins` equal-width buckets over [min, max] and
// returns the per-bucket counts. Degenerate ranges put everything in the
// first bucket.
func Histogram(values []float64, bins int) (counts []int, lo, hi float64) {
	if bins < 1 {
		panic("stats: Histogram needs >= 1 bin")
	}
	counts = make([]int, bins)
	if len(values) == 0 {
		return counts, 0, 0
	}
	lo, hi = values[0], values[0]
	for _, v := range values {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if hi == lo {
		counts[0] = len(values)
		return counts, lo, hi
	}
	for _, v := range values {
		b := int((v - lo) / (hi - lo) * float64(bins))
		if b == bins {
			b--
		}
		counts[b]++
	}
	return counts, lo, hi
}

func sorted(values []float64) []float64 {
	s := append([]float64(nil), values...)
	sort.Float64s(s)
	return s
}
