package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestBoxOfKnownValues(t *testing.T) {
	b := BoxOf([]float64{1, 2, 3, 4, 5})
	want := Box{Min: 1, Q1: 2, Median: 3, Q3: 4, Max: 5}
	if b != want {
		t.Fatalf("BoxOf = %+v, want %+v", b, want)
	}
}

func TestBoxOfSingleValue(t *testing.T) {
	b := BoxOf([]float64{7})
	if b.Min != 7 || b.Max != 7 || b.Median != 7 || b.Q1 != 7 || b.Q3 != 7 {
		t.Fatalf("BoxOf single = %+v", b)
	}
}

func TestBoxOfPanicsEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	BoxOf(nil)
}

func TestQuantileInterpolation(t *testing.T) {
	s := []float64{0, 10}
	if got := Quantile(s, 0.5); got != 5 {
		t.Fatalf("median of {0,10} = %v, want 5", got)
	}
	if got := Quantile(s, 0.25); got != 2.5 {
		t.Fatalf("q1 of {0,10} = %v, want 2.5", got)
	}
	if got := Quantile([]float64{3}, 0.9); got != 3 {
		t.Fatalf("quantile of singleton = %v", got)
	}
}

func TestQuantilePanics(t *testing.T) {
	for _, q := range []float64{-0.1, 1.1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Quantile(%v) did not panic", q)
				}
			}()
			Quantile([]float64{1, 2}, q)
		}()
	}
}

func TestMeanMaxSum(t *testing.T) {
	v := []float64{2, 4, 6}
	if Mean(v) != 4 {
		t.Errorf("Mean = %v", Mean(v))
	}
	if Max(v) != 6 {
		t.Errorf("Max = %v", Max(v))
	}
	if Sum(v) != 12 {
		t.Errorf("Sum = %v", Sum(v))
	}
	if Mean(nil) != 0 {
		t.Errorf("Mean(nil) = %v", Mean(nil))
	}
}

func TestCDFSteps(t *testing.T) {
	cdf := CDF([]float64{1, 1, 2, 4})
	want := []CDFPoint{{1, 0.5}, {2, 0.75}, {4, 1}}
	if len(cdf) != len(want) {
		t.Fatalf("CDF = %v, want %v", cdf, want)
	}
	for i := range want {
		if cdf[i] != want[i] {
			t.Fatalf("CDF[%d] = %v, want %v", i, cdf[i], want[i])
		}
	}
	if got := CDFAt(cdf, 0.5); got != 0 {
		t.Errorf("CDFAt(0.5) = %v, want 0", got)
	}
	if got := CDFAt(cdf, 1); got != 0.5 {
		t.Errorf("CDFAt(1) = %v, want 0.5", got)
	}
	if got := CDFAt(cdf, 100); got != 1 {
		t.Errorf("CDFAt(100) = %v, want 1", got)
	}
	if CDF(nil) != nil {
		t.Error("CDF(nil) != nil")
	}
}

func TestPercentiles(t *testing.T) {
	got := Percentiles([]float64{5, 1, 3, 2, 4}, 0, 0.5, 1)
	if got[0] != 1 || got[1] != 3 || got[2] != 5 {
		t.Fatalf("Percentiles = %v", got)
	}
}

func TestHistogram(t *testing.T) {
	counts, lo, hi := Histogram([]float64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}, 5)
	if lo != 0 || hi != 9 {
		t.Fatalf("range = [%v,%v]", lo, hi)
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != 10 {
		t.Fatalf("histogram lost values: %v", counts)
	}
	// Degenerate range.
	counts, _, _ = Histogram([]float64{3, 3, 3}, 4)
	if counts[0] != 3 {
		t.Fatalf("degenerate histogram = %v", counts)
	}
	// Empty input.
	counts, _, _ = Histogram(nil, 3)
	for _, c := range counts {
		if c != 0 {
			t.Fatalf("empty histogram = %v", counts)
		}
	}
}

// Property: box statistics are ordered, bounded by the data, and invariant
// under permutation; the CDF is monotone and ends at 1.
func TestBoxAndCDFProperties(t *testing.T) {
	f := func(raw []int16) bool {
		if len(raw) == 0 {
			return true
		}
		v := make([]float64, len(raw))
		for i, x := range raw {
			v[i] = float64(x)
		}
		b := BoxOf(v)
		if !(b.Min <= b.Q1 && b.Q1 <= b.Median && b.Median <= b.Q3 && b.Q3 <= b.Max) {
			return false
		}
		shuffled := append([]float64(nil), v...)
		sort.Sort(sort.Reverse(sort.Float64Slice(shuffled)))
		if BoxOf(shuffled) != b {
			return false
		}
		cdf := CDF(v)
		prevV, prevF := math.Inf(-1), 0.0
		for _, p := range cdf {
			if p.Value <= prevV || p.Fraction <= prevF {
				return false
			}
			prevV, prevF = p.Value, p.Fraction
		}
		return prevF == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
