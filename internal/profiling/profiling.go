// Package profiling wires the standard -cpuprofile/-memprofile flags into
// the repository's commands, so a slow sweep can be handed straight to
// `go tool pprof` without a bespoke harness.
package profiling

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins CPU profiling and/or arranges a heap profile, per the given
// output paths (empty = disabled). The returned stop function flushes the
// profiles; call it exactly once, after the workload, before exiting.
func Start(cpuPath, memPath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("profiling: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("profiling: %w", err)
		}
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return fmt.Errorf("profiling: %w", err)
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				return fmt.Errorf("profiling: %w", err)
			}
			defer f.Close()
			runtime.GC() // flush dead objects so the profile shows live heap
			if err := pprof.WriteHeapProfile(f); err != nil {
				return fmt.Errorf("profiling: %w", err)
			}
		}
		return nil
	}, nil
}
