package farm

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"runtime"
	"runtime/debug"
	"strings"
	"sync"
	"time"

	"dragonfly/internal/chaos"
	"dragonfly/internal/core"
)

// Options configures a Farm run.
type Options struct {
	// Parallel bounds the in-process worker pool; <= 0 selects NumCPU.
	Parallel int
	// Shard/NumShards select a 1-of-N slice of the config set for
	// multi-process sharding: this process executes exactly the cells
	// whose index i satisfies i % NumShards == Shard, and leaves nil
	// results at every other index. NumShards <= 1 runs everything.
	// Shards partition the job, so concurrent shard processes over one
	// store never simulate the same cell.
	Shard     int
	NumShards int
	// Progress, when non-nil, receives one callback per finished cell
	// (hit, simulated, or failed), serialized across workers.
	Progress func(ev Progress)

	// JobTimeout bounds each simulation attempt's wall-clock time; <= 0
	// means unlimited. A timed-out attempt's goroutine is abandoned (Go
	// cannot kill it), so the budget should be generous — it exists to keep
	// one wedged cell from stalling a thousand-cell sweep, not to race the
	// simulator. Timed-out attempts are retried like any other failure.
	JobTimeout time.Duration
	// Retries is the number of re-attempts after a failed simulation
	// (panic, injected fault, timeout): a cell runs at most 1+Retries
	// times. Retries back off exponentially from RetryBackoff with
	// deterministic per-(cell, attempt) jitter.
	Retries int
	// RetryBackoff is the base delay before the first retry; <= 0 selects
	// defaultRetryBackoff. Successive retries double it, capped at
	// maxRetryBackoff.
	RetryBackoff time.Duration
	// QuarantineLimit enables poisoned-job quarantine when > 0: a cell
	// that fails all its attempts is quarantined — recorded with
	// diagnostics under <store>/quarantine/jobs/, reported in Stats, and
	// its result left nil — instead of failing the sweep, until this many
	// cells have been quarantined. Beyond the limit (or at 0) a poisoned
	// cell fails the run, so degradation is always bounded and explicit.
	QuarantineLimit int
	// Chaos, when non-nil, injects worker-level faults (kills, panics,
	// simulated stalls) and is installed on the store for I/O faults. Used
	// by the chaos suite to prove the machinery above; nil in production.
	Chaos *chaos.Injector
}

// defaultRetryBackoff and maxRetryBackoff bound the retry delay schedule.
const (
	defaultRetryBackoff = 5 * time.Millisecond
	maxRetryBackoff     = 2 * time.Second
)

// Progress describes one finished cell.
type Progress struct {
	Index   int // config index within the job
	Total   int // cells this process executes (its shard)
	Done    int // cells finished so far, this one included
	Addr    string
	Hit     bool          // replayed from the store
	Elapsed time.Duration // wall time of this cell
	Err     error
}

// Stats counts what a Run did. A warm rerun of a completed job shows
// Misses == 0 and Hits == InShard: zero simulations.
type Stats struct {
	Cells       int // configs passed in
	InShard     int // cells this process was responsible for
	Hits        int // replayed from the store without simulating
	Misses      int // simulated (no entry existed)
	Corrupt     int // entries that failed verification and were re-run
	Uncacheable int // simulated without touching the store (no canonical encoding)
	Errors      int // cells whose simulation failed
	WriteErrors int // results that simulated fine but failed to persist
	Retried     int // re-attempts after failed simulations
	Quarantined int // cells abandoned after exhausting retries (nil results, recorded on disk)
}

// Add accumulates another run's counters, e.g. across the batches of one
// sweep or the shards of one job.
func (s *Stats) Add(o Stats) {
	s.Cells += o.Cells
	s.InShard += o.InShard
	s.Hits += o.Hits
	s.Misses += o.Misses
	s.Corrupt += o.Corrupt
	s.Uncacheable += o.Uncacheable
	s.Errors += o.Errors
	s.WriteErrors += o.WriteErrors
	s.Retried += o.Retried
	s.Quarantined += o.Quarantined
}

// Farm executes config sets against a Store.
type Farm struct {
	store *Store
	opts  Options

	mu          sync.Mutex
	inflight    map[string]*flight
	done        int
	quarantined int // cells quarantined this Run, against QuarantineLimit
	progressMu  sync.Mutex
}

// flight is the single-flight slot of one address: concurrent requests for
// identical configs — duplicate cells of one job — simulate once and share
// the stored record (or the quarantine decision).
type flight struct {
	wait        chan struct{}
	rec         *Record
	err         error
	quarantined bool
}

// New builds a Farm over store. The store must be non-nil: a farm without a
// cache is core.RunBatch. A chaos injector in opts is installed on the store
// too, so one option arms every injection site.
func New(store *Store, opts Options) *Farm {
	if store == nil {
		panic("farm: New needs a store")
	}
	if opts.NumShards > 1 && (opts.Shard < 0 || opts.Shard >= opts.NumShards) {
		panic(fmt.Sprintf("farm: shard %d out of range of %d shards", opts.Shard, opts.NumShards))
	}
	if opts.Chaos != nil {
		store.SetChaos(opts.Chaos)
	}
	return &Farm{store: store, opts: opts, inflight: make(map[string]*flight)}
}

// inShard reports whether cell index i belongs to this process's shard.
func (f *Farm) inShard(i int) bool {
	if f.opts.NumShards <= 1 {
		return true
	}
	return i%f.opts.NumShards == f.opts.Shard
}

// Run executes the config set: cache hits replay instantly, misses simulate
// and persist, and everything outside this process's shard is skipped (nil
// result). Results return in config order and the error is the first failed
// cell in config order — the contract of core.RunBatch, so a farm-backed
// sweep observes exactly what a direct one would. All cells are attempted
// even after a failure.
func (f *Farm) Run(cfgs []core.Config) ([]*core.Result, Stats, error) {
	stats := Stats{Cells: len(cfgs)}
	results := make([]*core.Result, len(cfgs))
	errs := make([]error, len(cfgs))

	var mine []int
	for i := range cfgs {
		if f.inShard(i) {
			mine = append(mine, i)
		}
	}
	stats.InShard = len(mine)
	f.mu.Lock()
	f.done = 0
	f.quarantined = 0
	f.mu.Unlock()

	workers := f.opts.Parallel
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > len(mine) {
		workers = len(mine)
	}
	var statsMu sync.Mutex
	runOne := func(i int) {
		start := time.Now()
		res, addr, cell, err := f.runCell(cfgs[i])
		results[i], errs[i] = res, err
		statsMu.Lock()
		stats.Hits += cell.Hits
		stats.Misses += cell.Misses
		stats.Corrupt += cell.Corrupt
		stats.Uncacheable += cell.Uncacheable
		stats.WriteErrors += cell.WriteErrors
		stats.Errors += cell.Errors
		stats.Retried += cell.Retried
		stats.Quarantined += cell.Quarantined
		statsMu.Unlock()
		f.progress(i, len(mine), addr, cell.Hits > 0, time.Since(start), err)
	}
	if workers <= 1 {
		for _, i := range mine {
			runOne(i)
		}
	} else {
		next := make(chan int)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range next {
					runOne(i)
				}
			}()
		}
		for _, i := range mine {
			next <- i
		}
		close(next)
		wg.Wait()
	}

	for _, err := range errs {
		if err != nil {
			return results, stats, err
		}
	}
	return results, stats, nil
}

// runCell resolves one configuration: replay from the store, or simulate
// (once per address, under single-flight, with retries) and persist. A cell
// that exhausts its retry budget is quarantined when the run has quarantine
// headroom — nil result, no error — otherwise it fails. The returned address
// is empty for uncacheable cells.
func (f *Farm) runCell(cfg core.Config) (*core.Result, string, Stats, error) {
	var cell Stats
	enc, err := Encode(cfg)
	if err != nil {
		// No canonical identity: simulate without caching rather than
		// refuse the cell. Retries and quarantine still apply, keyed by
		// the cell's name.
		cell.Uncacheable++
		res, attempts, errLines, err := f.runWithRetries(cfg, cfg.Name(), &cell)
		if err != nil {
			if f.tryQuarantine(cfg, "", attempts, errLines) {
				cell.Quarantined++
				return nil, "", cell, nil
			}
			cell.Errors++
		}
		return res, "", cell, err
	}
	addr := AddressOf(enc)

	f.mu.Lock()
	if fl, ok := f.inflight[addr]; ok {
		f.mu.Unlock()
		<-fl.wait
		if fl.quarantined {
			cell.Quarantined++
			return nil, addr, cell, nil
		}
		if fl.err != nil {
			cell.Errors++
			return nil, addr, cell, fl.err
		}
		cell.Hits++
		return fl.rec.Result(cfg), addr, cell, nil
	}
	fl := &flight{wait: make(chan struct{})}
	f.inflight[addr] = fl
	f.mu.Unlock()
	defer close(fl.wait)

	rec, err := f.store.Get(addr)
	switch {
	case err == nil:
		cell.Hits++
		fl.rec = rec
		return rec.Result(cfg), addr, cell, nil
	case errors.Is(err, ErrCorrupt):
		cell.Corrupt++ // fall through to a fresh run, which overwrites
	case !errors.Is(err, ErrMiss):
		// I/O errors (permissions, dead disk) degrade to a re-run too:
		// the store is a cache, never a source of truth.
		cell.Corrupt++
	}

	cell.Misses++
	res, attempts, errLines, err := f.runWithRetries(cfg, addr, &cell)
	if err != nil {
		if f.tryQuarantine(cfg, addr, attempts, errLines) {
			cell.Quarantined++
			fl.quarantined = true
			return nil, addr, cell, nil
		}
		cell.Errors++
		fl.err = err
		return nil, addr, cell, err
	}
	fl.rec = RecordOf(res)
	if err := f.store.Put(addr, fl.rec); err != nil {
		// A failed write loses only future cache hits, not this result.
		cell.WriteErrors++
	}
	return res, addr, cell, nil
}

// runWithRetries executes a cell up to 1+Retries times with seeded
// exponential backoff, collecting one diagnostic line per failed attempt
// (the quarantine record's evidence). It returns the attempts taken and, on
// total failure, the last attempt's error.
func (f *Farm) runWithRetries(cfg core.Config, key string, cell *Stats) (*core.Result, int, []string, error) {
	budget := 1 + f.opts.Retries
	if budget < 1 {
		budget = 1
	}
	var errLines []string
	var lastErr error
	for attempt := 0; attempt < budget; attempt++ {
		if attempt > 0 {
			cell.Retried++
			time.Sleep(retryDelay(f.opts.RetryBackoff, key, attempt))
		}
		res, err := f.attempt(cfg, key)
		if err == nil {
			return res, attempt + 1, errLines, nil
		}
		lastErr = err
		errLines = append(errLines, firstLine(err.Error()))
	}
	return nil, budget, errLines, lastErr
}

// attempt executes one simulation attempt: worker-level chaos, then the
// wall-clock-budgeted run, then the simulated-stall site. Chaos decisions
// key on the cell's identity (its address or name), never its execution
// slot, so chaos runs reproduce across worker counts.
func (f *Farm) attempt(cfg core.Config, key string) (*core.Result, error) {
	if f.opts.Chaos.Fire(chaos.SiteWorkerKill, key) {
		return nil, fmt.Errorf("farm: %s: chaos: injected worker kill", cfg.Name())
	}
	res, err := f.runBudgeted(cfg, key)
	if err != nil {
		return nil, err
	}
	if f.opts.Chaos.Fire(chaos.SiteSimStall, key) {
		return nil, fmt.Errorf("farm: %s: chaos: injected simulation stall", cfg.Name())
	}
	return res, nil
}

// runBudgeted applies the per-attempt wall-clock budget. A timed-out
// attempt's goroutine keeps running unobserved until the simulation returns
// — Go offers no way to kill it — which is why the timeout abandons rather
// than cancels; its eventual result is discarded.
func (f *Farm) runBudgeted(cfg core.Config, key string) (*core.Result, error) {
	if f.opts.JobTimeout <= 0 {
		return runSafe(cfg, f.opts.Chaos, key)
	}
	type outcome struct {
		res *core.Result
		err error
	}
	ch := make(chan outcome, 1)
	go func() {
		res, err := runSafe(cfg, f.opts.Chaos, key)
		ch <- outcome{res, err}
	}()
	timer := time.NewTimer(f.opts.JobTimeout)
	defer timer.Stop()
	select {
	case o := <-ch:
		return o.res, o.err
	case <-timer.C:
		return nil, fmt.Errorf("farm: %s: attempt exceeded wall-clock budget %s; abandoned", cfg.Name(), f.opts.JobTimeout)
	}
}

// tryQuarantine records a poisoned cell and consumes one unit of the run's
// quarantine budget. It returns false — the cell must fail the run — when
// quarantine is disabled or the budget is spent.
func (f *Farm) tryQuarantine(cfg core.Config, addr string, attempts int, errLines []string) bool {
	if f.opts.QuarantineLimit <= 0 {
		return false
	}
	f.mu.Lock()
	if f.quarantined >= f.opts.QuarantineLimit {
		f.mu.Unlock()
		return false
	}
	f.quarantined++
	f.mu.Unlock()
	// A failed record write must not turn graceful degradation back into a
	// hard failure; the cell is still reported via Stats.Quarantined.
	_ = f.store.QuarantineJob(&QuarantineRecord{
		Addr: addr, Name: cfg.Name(), Attempts: attempts, Errors: errLines,
	})
	return true
}

// runSim is the simulator entry point, a variable only so tests can stand
// in a wedged simulation and prove the wall-clock budget trips.
var runSim = core.Run

// runSafe is core.Run behind a panic firewall, mirroring core.RunBatch: one
// wedged cell becomes that cell's error instead of killing sibling workers.
// The chaos panic site fires inside the protected region, proving the
// firewall contains real mid-cell panics.
func runSafe(cfg core.Config, in *chaos.Injector, key string) (res *core.Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			res = nil
			err = fmt.Errorf("farm: %s: panic: %v\n%s", cfg.Name(), r, debug.Stack())
		}
	}()
	if in.Fire(chaos.SiteWorkerPanic, key) {
		panic("chaos: injected worker panic")
	}
	return runSim(cfg)
}

// retryDelay is the backoff before retry attempt (attempt >= 1): base
// doubled per attempt, scaled by a deterministic jitter in [0.5, 1.5) drawn
// from the cell key — retries of one hot store directory spread out, and a
// rerun schedules identically.
func retryDelay(base time.Duration, key string, attempt int) time.Duration {
	if base <= 0 {
		base = defaultRetryBackoff
	}
	d := base << (attempt - 1)
	if d > maxRetryBackoff || d <= 0 {
		d = maxRetryBackoff
	}
	h := fnv.New64a()
	_, _ = h.Write([]byte(key))
	_, _ = h.Write([]byte{byte(attempt)})
	jitter := 0.5 + float64(h.Sum64()>>11)/float64(1<<53)
	d = time.Duration(float64(d) * jitter)
	if d > maxRetryBackoff {
		d = maxRetryBackoff
	}
	return d
}

// firstLine trims a diagnostic to its first line: quarantine records keep
// the failure's headline, not a stack dump whose addresses differ run to
// run.
func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}

func (f *Farm) progress(index, total int, addr string, hit bool, elapsed time.Duration, err error) {
	if f.opts.Progress == nil {
		return
	}
	f.progressMu.Lock()
	defer f.progressMu.Unlock()
	f.done++
	f.opts.Progress(Progress{
		Index: index, Total: total, Done: f.done, Addr: addr,
		Hit: hit, Elapsed: elapsed, Err: err,
	})
}

// --- job manifests ----------------------------------------------------------

// Manifest records one job's identity and completion state under
// <root>/jobs/<job>.json. The content-addressed entries are the real resume
// state — a re-run skips every address that verifies — so the manifest is
// bookkeeping: it lets a resuming process report how much of the job is
// already banked before the first cell runs, and ties a human-readable spec
// to the job hash.
type Manifest struct {
	Job   string `json:"job"`
	Spec  string `json:"spec,omitempty"`
	Cells int    `json:"cells"`
	// Done is the number of cells with a verifiable entry when the
	// manifest was last written.
	Done int `json:"done"`
}

// JobID hashes the ordered address list of a job's cells: the job identity
// for manifests. Shards of one job share a JobID because they share the
// full config set.
func JobID(addrs []string) string {
	h := sha256.New()
	for _, a := range addrs {
		h.Write([]byte(a))
		h.Write([]byte{'\n'})
	}
	return hex.EncodeToString(h.Sum(nil))[:16]
}

func (s *Store) manifestPath(job string) string {
	return filepath.Join(s.root, "jobs", job+".json")
}

// LoadManifest reads a job manifest; ErrMiss if none exists.
func (s *Store) LoadManifest(job string) (*Manifest, error) {
	data, err := os.ReadFile(s.manifestPath(job))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, ErrMiss
		}
		return nil, err
	}
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("farm: manifest %s: %w", job, err)
	}
	return &m, nil
}

// SaveManifest writes a job manifest atomically.
func (s *Store) SaveManifest(m *Manifest) error {
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	dir := filepath.Dir(s.manifestPath(m.Job))
	tmp, err := os.CreateTemp(dir, ".manifest-*")
	if err != nil {
		return err
	}
	name := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(name)
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(name)
		return err
	}
	return os.Rename(name, s.manifestPath(m.Job))
}

// CountCached reports how many of the given addresses have verifiable
// entries — the resume position of a job.
func (s *Store) CountCached(addrs []string) int {
	n := 0
	for _, a := range addrs {
		if s.Has(a) {
			n++
		}
	}
	return n
}
