package farm

import (
	"errors"
	"sort"

	"dragonfly/internal/audit"
	"dragonfly/internal/core"
	"dragonfly/internal/des"
	"dragonfly/internal/network"
	"dragonfly/internal/topology"
)

// codecVersion identifies the Record payload layout. A stored entry with a
// different version is treated as corrupt (re-run), never decoded on faith.
const codecVersion = 1

// Record is the persisted form of one core.Result: every field the report
// and corpus layers read, minus the two non-serializable ones (the Config,
// which the replaying caller still holds, and the typed RouteErr, kept as
// text). Numeric fields round-trip exactly — des.Time values are int64 and
// float64 slices use Go's shortest-exact JSON encoding — which is what makes
// a warm replay byte-identical to the cold run in every report.
type Record struct {
	Version   int  `json:"version"`
	Completed bool `json:"completed"`

	CommTimes []des.Time         `json:"comm_times"`
	AvgHops   []float64          `json:"avg_hops"`
	Links     []network.LinkStat `json:"links"`

	// AppRouters is stored sorted so identical results serialize to
	// identical bytes (the in-memory form is a set).
	AppRouters []topology.RouterID `json:"app_routers"`
	AppNodes   []topology.NodeID   `json:"app_nodes"`

	BackgroundPeakLoad int64 `json:"background_peak_load"`

	Duration des.Time `json:"duration"`
	Events   uint64   `json:"events"`

	DroppedPackets int64  `json:"dropped_packets"`
	DroppedBytes   int64  `json:"dropped_bytes"`
	RouteErr       string `json:"route_err,omitempty"`
	HasRouteErr    bool   `json:"has_route_err,omitempty"`

	Audit *audit.Summary `json:"audit,omitempty"`
}

// RecordOf converts a simulation result into its persistable record.
func RecordOf(res *core.Result) *Record {
	rec := &Record{
		Version:            codecVersion,
		Completed:          res.Completed,
		CommTimes:          res.CommTimes,
		AvgHops:            res.AvgHops,
		Links:              res.Links,
		AppNodes:           res.AppNodes,
		BackgroundPeakLoad: res.BackgroundPeakLoad,
		Duration:           res.Duration,
		Events:             res.Events,
		DroppedPackets:     res.DroppedPackets,
		DroppedBytes:       res.DroppedBytes,
		Audit:              res.Audit,
	}
	rec.AppRouters = make([]topology.RouterID, 0, len(res.AppRouters))
	for r := range res.AppRouters {
		rec.AppRouters = append(rec.AppRouters, r)
	}
	sort.Slice(rec.AppRouters, func(i, j int) bool { return rec.AppRouters[i] < rec.AppRouters[j] })
	if res.RouteErr != nil {
		rec.HasRouteErr = true
		rec.RouteErr = res.RouteErr.Error()
	}
	return rec
}

// Result materializes the record as a core.Result bound to the caller's
// (identical, by content address) configuration. RouteErr degrades to an
// untyped error carrying the original message: replayed reports only test
// and print it, they never unwrap it.
func (rec *Record) Result(cfg core.Config) *core.Result {
	res := &core.Result{
		Config:             cfg,
		Completed:          rec.Completed,
		CommTimes:          rec.CommTimes,
		AvgHops:            rec.AvgHops,
		Links:              rec.Links,
		AppNodes:           rec.AppNodes,
		BackgroundPeakLoad: rec.BackgroundPeakLoad,
		Duration:           rec.Duration,
		Events:             rec.Events,
		DroppedPackets:     rec.DroppedPackets,
		DroppedBytes:       rec.DroppedBytes,
		Audit:              rec.Audit,
	}
	res.AppRouters = make(map[topology.RouterID]bool, len(rec.AppRouters))
	for _, r := range rec.AppRouters {
		res.AppRouters[r] = true
	}
	if rec.HasRouteErr {
		res.RouteErr = errors.New(rec.RouteErr)
	}
	return res
}
