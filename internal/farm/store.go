package farm

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"dragonfly/internal/chaos"
)

// Store is the on-disk content-addressed result cache. Entries live under
// <root>/objects/<aa>/<address>, where <aa> is the first address byte —
// one fan-out level keeps directories small at millions of entries. Each
// entry is written atomically (temp file + rename in the same directory),
// so readers never observe a torn write; a partially written temp file left
// by a crash is invisible to Get and harmless.
//
// Entries are never trusted: Get verifies the magic header, codec name,
// payload length, payload SHA-256, the embedded address, and the record's
// codec version, and reports ErrCorrupt on any mismatch. Callers treat
// corrupt exactly like missing — re-simulate and overwrite — so a flipped
// bit or truncated file costs one re-run, never a wrong result.
//
// Concurrent writers of one address are benign by construction: the content
// is a deterministic function of the address (same config, same simulator),
// so whichever rename lands last installs identical bytes.
type Store struct {
	root string

	// chaos, when non-nil, injects read corruption and write failures at
	// the store's I/O boundary (see SetChaos); nil costs one comparison.
	chaos *chaos.Injector
}

// ErrMiss reports an address with no stored entry.
var ErrMiss = errors.New("farm: cache miss")

// ErrCorrupt reports an entry that exists but failed an integrity check.
var ErrCorrupt = errors.New("farm: corrupt cache entry")

// entryMagic is the first header token of every entry file; the version
// suffix covers the container layout (header framing), while the JSON
// payload carries its own codec version.
const entryMagic = "DFFARM1"

// entryCodec names the payload encoding. Only "json" exists today; the
// field is parsed (and gated) so a future binary codec can coexist in one
// store without ambiguity.
const entryCodec = "json"

// Open creates (if needed) and returns the store rooted at dir.
func Open(dir string) (*Store, error) {
	if dir == "" {
		return nil, errors.New("farm: empty store directory")
	}
	for _, sub := range []string{"objects", "jobs"} {
		if err := os.MkdirAll(filepath.Join(dir, sub), 0o755); err != nil {
			return nil, fmt.Errorf("farm: open store: %w", err)
		}
	}
	return &Store{root: dir}, nil
}

// Root returns the store's root directory.
func (s *Store) Root() string { return s.root }

// SetChaos installs a fault injector on the store's I/O boundary: reads may
// come back with one flipped bit (which integrity verification must catch),
// writes may fail outright. A nil injector disables injection. Chaos exists
// to prove the self-healing path; production stores never set it.
func (s *Store) SetChaos(in *chaos.Injector) { s.chaos = in }

// entryPath maps an address to its object file.
func (s *Store) entryPath(addr string) string {
	return filepath.Join(s.root, "objects", addr[:2], addr)
}

// Get loads and verifies the entry at addr. It returns ErrMiss when no
// entry exists and an error wrapping ErrCorrupt when one exists but fails
// any integrity check.
func (s *Store) Get(addr string) (*Record, error) {
	if len(addr) < 3 {
		return nil, fmt.Errorf("%w: malformed address %q", ErrCorrupt, addr)
	}
	data, err := os.ReadFile(s.entryPath(addr))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, ErrMiss
		}
		return nil, fmt.Errorf("farm: read %s: %w", addr[:12], err)
	}
	if s.chaos.Fire(chaos.SiteStoreRead, addr) {
		s.chaos.FlipBit(data, addr) // simulated disk rot; verification must catch it
	}
	payload, err := verifyEntry(addr, data)
	if err != nil {
		return nil, err
	}
	var rec Record
	if err := json.Unmarshal(payload, &rec); err != nil {
		return nil, fmt.Errorf("%w: %s: payload does not decode: %v", ErrCorrupt, addr[:12], err)
	}
	if rec.Version != codecVersion {
		return nil, fmt.Errorf("%w: %s: codec version %d, want %d", ErrCorrupt, addr[:12], rec.Version, codecVersion)
	}
	return &rec, nil
}

// verifyEntry checks the container framing and returns the payload bytes.
func verifyEntry(addr string, data []byte) ([]byte, error) {
	corrupt := func(format string, args ...interface{}) error {
		return fmt.Errorf("%w: %s: %s", ErrCorrupt, addr[:12], fmt.Sprintf(format, args...))
	}
	// Three header lines, then the payload:
	//   DFFARM1 json
	//   addr <64 hex>
	//   payload <len> <sha256 hex>
	rest := data
	var lines [3]string
	for i := range lines {
		nl := bytes.IndexByte(rest, '\n')
		if nl < 0 {
			return nil, corrupt("truncated header")
		}
		lines[i] = string(rest[:nl])
		rest = rest[nl+1:]
	}
	head := strings.Fields(lines[0])
	if len(head) != 2 || head[0] != entryMagic {
		return nil, corrupt("bad magic %q", lines[0])
	}
	if head[1] != entryCodec {
		return nil, corrupt("unknown codec %q", head[1])
	}
	af := strings.Fields(lines[1])
	if len(af) != 2 || af[0] != "addr" {
		return nil, corrupt("bad address line %q", lines[1])
	}
	if af[1] != addr {
		return nil, corrupt("entry holds address %s", af[1][:min(12, len(af[1]))])
	}
	pf := strings.Fields(lines[2])
	if len(pf) != 3 || pf[0] != "payload" {
		return nil, corrupt("bad payload line %q", lines[2])
	}
	n, err := strconv.Atoi(pf[1])
	if err != nil || n < 0 {
		return nil, corrupt("bad payload length %q", pf[1])
	}
	if len(rest) != n {
		return nil, corrupt("payload is %d bytes, header says %d", len(rest), n)
	}
	sum := sha256.Sum256(rest)
	if hex.EncodeToString(sum[:]) != pf[2] {
		return nil, corrupt("payload digest mismatch")
	}
	return rest, nil
}

// Put stores rec at addr, atomically. An existing entry is replaced; since
// entry content is a deterministic function of the address, replacement
// only ever heals corruption.
func (s *Store) Put(addr string, rec *Record) error {
	if len(addr) < 3 {
		return fmt.Errorf("farm: malformed address %q", addr)
	}
	if s.chaos.Fire(chaos.SiteStoreWrite, addr) {
		return fmt.Errorf("farm: put %s: chaos: injected write failure", addr[:12])
	}
	payload, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("farm: encode %s: %w", addr[:12], err)
	}
	sum := sha256.Sum256(payload)
	var b bytes.Buffer
	b.Grow(len(payload) + 160)
	fmt.Fprintf(&b, "%s %s\naddr %s\npayload %d %s\n",
		entryMagic, entryCodec, addr, len(payload), hex.EncodeToString(sum[:]))
	b.Write(payload)

	dir := filepath.Dir(s.entryPath(addr))
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("farm: put %s: %w", addr[:12], err)
	}
	tmp, err := os.CreateTemp(dir, ".put-*")
	if err != nil {
		return fmt.Errorf("farm: put %s: %w", addr[:12], err)
	}
	name := tmp.Name()
	if _, err := tmp.Write(b.Bytes()); err != nil {
		tmp.Close()
		os.Remove(name)
		return fmt.Errorf("farm: put %s: %w", addr[:12], err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(name)
		return fmt.Errorf("farm: put %s: %w", addr[:12], err)
	}
	if err := os.Rename(name, s.entryPath(addr)); err != nil {
		os.Remove(name)
		return fmt.Errorf("farm: put %s: %w", addr[:12], err)
	}
	return nil
}

// Has reports whether a verifiable entry exists at addr. Unlike Get it
// bypasses chaos injection: injection models rot on the consumption path,
// while Has is bookkeeping (resume counts, job manifests), which must stay
// accurate even while a chaos run is hammering the same store.
func (s *Store) Has(addr string) bool {
	if len(addr) < 3 {
		return false
	}
	data, err := os.ReadFile(s.entryPath(addr))
	if err != nil {
		return false
	}
	return verifyObject(addr, data)
}
