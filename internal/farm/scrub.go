package farm

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Scrubbing and quarantine.
//
// The store is a cache over deterministic simulations, so its failure modes
// are cheap to repair: a corrupt object costs one re-run, a poisoned job
// costs its absence from one report. The scrubber makes the first repair
// proactive — verify every object, move the corrupt ones aside so the next
// sweep re-simulates them — and the quarantine directory makes the second
// auditable: every abandoned job leaves a record naming the cell, its
// attempts, and one diagnostic line per failure.
//
// Layout under the store root:
//
//	quarantine/objects/<addr>   corrupt entries moved aside by Scrub
//	quarantine/jobs/<id>.json   QuarantineRecord per poisoned job
//
// Scrub is safe against concurrent writers by construction, not locking:
// writers install entries with temp-file + rename, so every object the
// scrubber can open is a complete write, and in-flight temps (dot-prefixed)
// are skipped outright. The one race — a writer healing an entry between
// the scrubber's verify and its rename — moves a fresh entry into
// quarantine, costing a re-run, never a wrong result.

// ScrubReport summarizes one integrity pass over the object store.
type ScrubReport struct {
	Checked     int // objects examined
	Healthy     int // objects that verified end to end
	Corrupt     int // objects that failed verification
	Quarantined int // corrupt objects moved to quarantine (== Corrupt unless a move failed)
	InFlight    int // dot-prefixed temp files skipped (writers mid-rename)
	Vanished    int // objects listed but gone before reading (concurrent churn)
}

func (r ScrubReport) String() string {
	return fmt.Sprintf("scrub: %d checked, %d healthy, %d corrupt, %d quarantined, %d in-flight, %d vanished",
		r.Checked, r.Healthy, r.Corrupt, r.Quarantined, r.InFlight, r.Vanished)
}

// Scrub verifies every object in the store and quarantines the corrupt
// ones. Quarantined addresses become cache misses, so the next sweep
// re-simulates and heals them. Scrub reads files directly — chaos read
// injection does not apply — because its job is to judge what is actually
// on disk.
func (s *Store) Scrub() (ScrubReport, error) {
	var rep ScrubReport
	objects := filepath.Join(s.root, "objects")
	fans, err := os.ReadDir(objects)
	if err != nil {
		if os.IsNotExist(err) {
			return rep, nil
		}
		return rep, fmt.Errorf("farm: scrub: %w", err)
	}
	for _, fan := range fans {
		if !fan.IsDir() {
			continue
		}
		dir := filepath.Join(objects, fan.Name())
		entries, err := os.ReadDir(dir)
		if err != nil {
			if os.IsNotExist(err) {
				continue
			}
			return rep, fmt.Errorf("farm: scrub %s: %w", fan.Name(), err)
		}
		for _, ent := range entries {
			name := ent.Name()
			if strings.HasPrefix(name, ".") {
				// A writer's temp file: the object it will become is not
				// installed yet, so there is nothing to judge (or delete).
				rep.InFlight++
				continue
			}
			data, err := os.ReadFile(filepath.Join(dir, name))
			if err != nil {
				if os.IsNotExist(err) {
					rep.Vanished++
					continue
				}
				return rep, fmt.Errorf("farm: scrub %s: %w", name[:min(12, len(name))], err)
			}
			rep.Checked++
			if verifyObject(name, data) {
				rep.Healthy++
				continue
			}
			rep.Corrupt++
			if s.quarantineObject(name) {
				rep.Quarantined++
			}
		}
	}
	return rep, nil
}

// verifyObject runs the full Get-side integrity pipeline on raw bytes.
func verifyObject(addr string, data []byte) bool {
	payload, err := verifyEntry(addr, data)
	if err != nil {
		return false
	}
	var rec Record
	if err := json.Unmarshal(payload, &rec); err != nil {
		return false
	}
	return rec.Version == codecVersion
}

// quarantineObject moves one corrupt entry to quarantine/objects/<addr>.
// It is idempotent under concurrent scrubbers: rename replaces an existing
// quarantined copy, and a source already moved by a sibling counts as done.
func (s *Store) quarantineObject(addr string) bool {
	qdir := filepath.Join(s.root, "quarantine", "objects")
	if err := os.MkdirAll(qdir, 0o755); err != nil {
		return false
	}
	err := os.Rename(s.entryPath(addr), filepath.Join(qdir, addr))
	if err != nil && !os.IsNotExist(err) {
		return false
	}
	return true
}

// QuarantineRecord documents one poisoned job: the cell that exhausted its
// retry budget and was dropped from a sweep's results. Records carry no
// timestamps or stack traces, so a rerun of the same failure writes the
// same record.
type QuarantineRecord struct {
	// Addr is the cell's content address; empty for uncacheable cells.
	Addr string `json:"addr,omitempty"`
	// Name is the cell's human-readable config name.
	Name string `json:"name"`
	// Attempts is how many times the cell ran before being abandoned.
	Attempts int `json:"attempts"`
	// Errors holds the headline of each failed attempt, in order.
	Errors []string `json:"errors"`
}

// id keys the record's file: the address when there is one, else a hash of
// the name — either way stable, so re-quarantining is an overwrite.
func (r *QuarantineRecord) id() string {
	if r.Addr != "" {
		return r.Addr
	}
	sum := sha256.Sum256([]byte(r.Name))
	return "name-" + hex.EncodeToString(sum[:8])
}

// QuarantineJob writes a poisoned-job record atomically under
// quarantine/jobs/. Re-quarantining the same cell overwrites its record.
func (s *Store) QuarantineJob(rec *QuarantineRecord) error {
	dir := filepath.Join(s.root, "quarantine", "jobs")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("farm: quarantine %s: %w", rec.Name, err)
	}
	data, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return fmt.Errorf("farm: quarantine %s: %w", rec.Name, err)
	}
	data = append(data, '\n')
	tmp, err := os.CreateTemp(dir, ".q-*")
	if err != nil {
		return fmt.Errorf("farm: quarantine %s: %w", rec.Name, err)
	}
	name := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(name)
		return fmt.Errorf("farm: quarantine %s: %w", rec.Name, err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(name)
		return fmt.Errorf("farm: quarantine %s: %w", rec.Name, err)
	}
	if err := os.Rename(name, filepath.Join(dir, rec.id()+".json")); err != nil {
		os.Remove(name)
		return fmt.Errorf("farm: quarantine %s: %w", rec.Name, err)
	}
	return nil
}

// QuarantinedJobs loads every poisoned-job record, sorted by cell name then
// id — the quarantine manifest a partial report points at.
func (s *Store) QuarantinedJobs() ([]QuarantineRecord, error) {
	dir := filepath.Join(s.root, "quarantine", "jobs")
	entries, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("farm: quarantine manifest: %w", err)
	}
	var recs []QuarantineRecord
	for _, ent := range entries {
		if strings.HasPrefix(ent.Name(), ".") || !strings.HasSuffix(ent.Name(), ".json") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, ent.Name()))
		if err != nil {
			if os.IsNotExist(err) {
				continue
			}
			return nil, fmt.Errorf("farm: quarantine manifest: %w", err)
		}
		var rec QuarantineRecord
		if err := json.Unmarshal(data, &rec); err != nil {
			return nil, fmt.Errorf("farm: quarantine record %s: %w", ent.Name(), err)
		}
		recs = append(recs, rec)
	}
	sort.Slice(recs, func(i, j int) bool {
		if recs[i].Name != recs[j].Name {
			return recs[i].Name < recs[j].Name
		}
		return recs[i].id() < recs[j].id()
	})
	return recs, nil
}
