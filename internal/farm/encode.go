// Package farm is the sweep-execution layer of the simulator: it canonically
// encodes full run configurations, hashes them into content addresses, keeps
// each simulated core.Result as an integrity-checked entry of an on-disk
// content-addressed store, and executes arbitrary config sets sharded across
// workers with resumable, cache-skipping semantics. It is the data factory
// for the cross-product studies (app x placement x routing x faults x
// topology) and for the surrogate-model training corpus: an interrupted
// sweep re-invoked over the same store re-pays only the missing cells.
//
// The package sits between core (which runs one simulation) and the
// experiments/CLI layers (which decide what to sweep); it knows nothing
// about figures or reports.
package farm

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strconv"
	"strings"
	"sync"

	"dragonfly/internal/core"
	"dragonfly/internal/trace"
)

// encodingVersion is bumped whenever the canonical encoding changes meaning,
// so stale store entries become unreachable instead of silently wrong.
const encodingVersion = 1

// canonicalSpeccer is the optional machine capability the encoder requires:
// a deterministic rendering of every shape field. topology.Config and
// topology.PlusConfig implement it; a machine without it is uncacheable
// (Encode fails) rather than riskily keyed on a lossy label.
type canonicalSpeccer interface {
	CanonicalSpec() string
}

// traceDigests memoizes trace content digests by pointer: experiment runners
// regenerate identical traces per cell, and the digest walk is the only
// O(trace) part of key construction.
var traceDigests sync.Map // *trace.Trace -> uint64

func digestOf(t *trace.Trace) uint64 {
	if d, ok := traceDigests.Load(t); ok {
		return d.(uint64)
	}
	d := t.Digest()
	traceDigests.Store(t, d)
	return d
}

// graphDigests memoizes graph content digests by pointer, mirroring
// traceDigests for dependency-graph workloads.
var graphDigests sync.Map // *trace.Graph -> uint64

func graphDigestOf(g *trace.Graph) uint64 {
	if d, ok := graphDigests.Load(g); ok {
		return d.(uint64)
	}
	d := g.Digest()
	graphDigests.Store(g, d)
	return d
}

// coveredConfigFields, coveredParamsFields, coveredRouteFields, and
// coveredBackgroundFields list the struct fields Encode renders. The
// coverage tests reflect over the real structs and fail when a field is
// added without being listed here (and encoded below) — the failure mode
// being defended against is a silent wrong-result cache hit, where two
// configs differing in the new field collapse to one address.
var (
	coveredConfigFields = map[string]bool{
		"Topology": true, "Params": true, "Placement": true, "Routing": true,
		"Mapping": true, "Trace": true, "Graph": true, "MsgScale": true,
		"Background": true, "Seed": true, "Faults": true, "MaxSimTime": true,
		"WatchdogEvents": true, "WatchdogTime": true, "Audit": true,
	}
	coveredParamsFields = map[string]bool{
		"PacketBytes": true, "TerminalBandwidth": true, "LocalBandwidth": true,
		"GlobalBandwidth": true, "TerminalLatency": true, "LocalLatency": true,
		"GlobalLatency": true, "TerminalVCBuffer": true, "LocalVCBuffer": true,
		"GlobalVCBuffer": true, "Route": true, "NoPacketPool": true,
	}
	coveredRouteFields = map[string]bool{
		"Gateway": true, "ValiantCandidates": true, "MinimalBias": true,
		"NoCache": true, "CompactTables": true, "Health": true, "Policy": true,
	}
	coveredBackgroundFields = map[string]bool{
		"Kind": true, "MsgBytes": true, "Interval": true, "FanOut": true,
	}
)

// Encode renders a run configuration into its canonical text form: one
// sorted-stable "key=value" line per semantically meaningful field. Two
// configs produce the same encoding exactly when core.Run would produce the
// same result for both. The encoding is the in-memory cache key of the
// experiments runner and, hashed (see Address), the on-disk content address.
//
// Uncacheable configurations fail loudly instead of aliasing: a nil trace or
// machine, a machine type without CanonicalSpec, or a pre-installed
// Route.Health view (whose live fault state has no canonical identity —
// declare faults through Config.Faults instead). A custom Route.Policy is
// identified by its Name(); distinct policies must use distinct names.
func Encode(cfg core.Config) (string, error) {
	if cfg.Trace == nil && cfg.Graph == nil {
		return "", fmt.Errorf("farm: config has no workload")
	}
	if cfg.Topology == nil {
		return "", fmt.Errorf("farm: config has no machine")
	}
	spec, ok := cfg.Topology.(canonicalSpeccer)
	if !ok {
		return "", fmt.Errorf("farm: machine %T has no CanonicalSpec; uncacheable", cfg.Topology)
	}
	if cfg.Params.Route.Health != nil {
		return "", fmt.Errorf("farm: config installs Route.Health directly; declare faults via Config.Faults to stay cacheable")
	}

	var b strings.Builder
	b.Grow(640)
	fmt.Fprintf(&b, "dffarm-config v%d\n", encodingVersion)
	fmt.Fprintf(&b, "machine=%s\n", spec.CanonicalSpec())
	fmt.Fprintf(&b, "placement=%s\n", cfg.Placement)
	fmt.Fprintf(&b, "routing=%s\n", cfg.Routing)
	fmt.Fprintf(&b, "mapping=%s\n", cfg.Mapping)
	// Graph workloads key on their own lines (the executor ignores Trace
	// when Graph is set); flat-trace lines are untouched so every
	// pre-graph-IR address stays reachable.
	if cfg.Graph != nil {
		fmt.Fprintf(&b, "graph.app=%s\n", cfg.Graph.App)
		fmt.Fprintf(&b, "graph.ranks=%d\n", cfg.Graph.NumRanks())
		fmt.Fprintf(&b, "graph.digest=%016x\n", graphDigestOf(cfg.Graph))
	} else {
		fmt.Fprintf(&b, "trace.app=%s\n", cfg.Trace.App)
		fmt.Fprintf(&b, "trace.ranks=%d\n", cfg.Trace.NumRanks())
		fmt.Fprintf(&b, "trace.digest=%016x\n", digestOf(cfg.Trace))
	}
	// The replay layer treats any scale <= 0 as 1, so the encoder folds
	// them together: MsgScale 0 and 1 are one configuration, one address.
	msgScale := cfg.MsgScale
	if msgScale <= 0 {
		msgScale = 1
	}
	fmt.Fprintf(&b, "msg_scale=%s\n", fmtFloat(msgScale))

	p := cfg.Params
	fmt.Fprintf(&b, "params.packet_bytes=%d\n", p.PacketBytes)
	fmt.Fprintf(&b, "params.bw=%s,%s,%s\n",
		fmtFloat(p.TerminalBandwidth), fmtFloat(p.LocalBandwidth), fmtFloat(p.GlobalBandwidth))
	fmt.Fprintf(&b, "params.lat=%d,%d,%d\n",
		int64(p.TerminalLatency), int64(p.LocalLatency), int64(p.GlobalLatency))
	fmt.Fprintf(&b, "params.vcbuf=%d,%d,%d\n",
		p.TerminalVCBuffer, p.LocalVCBuffer, p.GlobalVCBuffer)
	fmt.Fprintf(&b, "params.no_packet_pool=%t\n", p.NoPacketPool)

	ro := p.Route
	fmt.Fprintf(&b, "route.gateway=%d\n", int(ro.Gateway))
	fmt.Fprintf(&b, "route.valiant_candidates=%d\n", ro.ValiantCandidates)
	fmt.Fprintf(&b, "route.minimal_bias=%d\n", ro.MinimalBias)
	fmt.Fprintf(&b, "route.no_cache=%t\n", ro.NoCache)
	fmt.Fprintf(&b, "route.compact_tables=%t\n", ro.CompactTables)
	if ro.Policy != nil {
		fmt.Fprintf(&b, "route.policy=%s\n", ro.Policy().Name())
	} else {
		b.WriteString("route.policy=\n")
	}

	if cfg.Background != nil {
		bg := cfg.Background
		fmt.Fprintf(&b, "background=%s,bytes=%d,interval=%d,fanout=%d\n",
			bg.Kind, bg.MsgBytes, int64(bg.Interval), bg.FanOut)
	} else {
		b.WriteString("background=none\n")
	}
	// Spec.String renders every fault field (fractions, explicit equipment,
	// dynamic events, seed) in canonical clause order; empty specs and nil
	// collapse to the same line, matching core.Run's behavior of skipping
	// the fault machinery entirely for both.
	fmt.Fprintf(&b, "faults=%s\n", cfg.Faults.String())

	fmt.Fprintf(&b, "seed=%d\n", cfg.Seed)
	fmt.Fprintf(&b, "max_sim_time=%d\n", int64(cfg.MaxSimTime))
	fmt.Fprintf(&b, "watchdog=%d,%d\n", cfg.WatchdogEvents, int64(cfg.WatchdogTime))
	fmt.Fprintf(&b, "audit=%t\n", cfg.Audit)
	return b.String(), nil
}

// fmtFloat renders a float64 in its shortest exact form.
func fmtFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// AddressOf hashes a canonical encoding into its content address: 64 hex
// characters of SHA-256. The hash is over the full encoding text, so the
// encoding version line partitions addresses across format revisions.
func AddressOf(encoding string) string {
	sum := sha256.Sum256([]byte(encoding))
	return hex.EncodeToString(sum[:])
}

// Address encodes and hashes a configuration in one step.
func Address(cfg core.Config) (string, error) {
	enc, err := Encode(cfg)
	if err != nil {
		return "", err
	}
	return AddressOf(enc), nil
}
