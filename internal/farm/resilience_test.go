package farm

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"dragonfly/internal/chaos"
	"dragonfly/internal/core"
)

// chaosSpec arms every injection site aggressively but capped at one fault
// per (site, key): the worst case per cell is three failed attempts (kill,
// panic, stall), so a retry budget of 3 is guaranteed to converge.
func chaosSpec(seed int64) *chaos.Spec {
	return &chaos.Spec{
		Seed: seed,
		Probability: map[chaos.Site]float64{
			chaos.SiteStoreRead:   0.9,
			chaos.SiteStoreWrite:  0.9,
			chaos.SiteWorkerPanic: 0.9,
			chaos.SiteWorkerKill:  0.9,
			chaos.SiteSimStall:    0.9,
		},
		MaxPerKey: 1,
	}
}

// TestChaosSweepConvergesToCleanCorpus is the chaos determinism gate: a
// sweep under injected worker kills, panics, simulated stalls, bit-flipped
// reads, and failed writes must complete and emit a corpus byte-identical
// to the chaos-free sweep — at any worker count.
func TestChaosSweepConvergesToCleanCorpus(t *testing.T) {
	cfgs := testJob(t)

	clean, _, err := New(openTestStore(t), Options{Parallel: 2}).Run(cfgs)
	if err != nil {
		t.Fatal(err)
	}
	var cleanBuf bytes.Buffer
	if _, _, err := WriteCorpus(&cleanBuf, cfgs, clean); err != nil {
		t.Fatal(err)
	}

	for _, workers := range []int{1, 2, 4} {
		in := chaos.New(chaosSpec(42))
		res, stats, err := New(openTestStore(t), Options{
			Parallel:     workers,
			Retries:      3,
			RetryBackoff: time.Microsecond,
			Chaos:        in,
		}).Run(cfgs)
		if err != nil {
			t.Fatalf("parallel=%d: chaos sweep failed: %v", workers, err)
		}
		if in.Injected() == 0 {
			t.Fatalf("parallel=%d: chaos run injected nothing; the gate proved nothing", workers)
		}
		if stats.Retried == 0 {
			t.Fatalf("parallel=%d: no retries under chaos; worker sites never fired", workers)
		}
		if stats.Quarantined != 0 {
			t.Fatalf("parallel=%d: %d cells quarantined; retry budget should converge", workers, stats.Quarantined)
		}
		var buf bytes.Buffer
		rows, skipped, err := WriteCorpus(&buf, cfgs, res)
		if err != nil {
			t.Fatal(err)
		}
		if rows != len(cfgs) || skipped != 0 {
			t.Fatalf("parallel=%d: chaos corpus rows=%d skipped=%d, want %d/0", workers, rows, skipped, len(cfgs))
		}
		if !bytes.Equal(cleanBuf.Bytes(), buf.Bytes()) {
			t.Fatalf("parallel=%d: chaos corpus differs from the clean corpus", workers)
		}
	}
}

// TestRetriesHealInjectedKills: with probability-1 kills capped at one per
// cell, every cell fails exactly once and succeeds on retry.
func TestRetriesHealInjectedKills(t *testing.T) {
	cfgs := testJob(t)
	in := chaos.New(&chaos.Spec{
		Seed:        1,
		Probability: map[chaos.Site]float64{chaos.SiteWorkerKill: 1},
		MaxPerKey:   1,
	})
	_, stats, err := New(openTestStore(t), Options{
		Parallel: 2, Retries: 1, RetryBackoff: time.Microsecond, Chaos: in,
	}).Run(cfgs)
	if err != nil {
		t.Fatal(err)
	}
	// 4 unique addresses simulate (the duplicate is a single-flight hit),
	// each killed once then healed.
	if stats.Retried != 4 || stats.Misses != 4 {
		t.Fatalf("retried=%d misses=%d, want 4/4", stats.Retried, stats.Misses)
	}
}

// TestQuarantineBoundsPoisonedCells: a cell that fails every attempt is
// quarantined with diagnostics while the sweep completes; the quarantine
// budget is hard — a second poisoned cell beyond the limit fails the run.
func TestQuarantineBoundsPoisonedCells(t *testing.T) {
	s := openTestStore(t)
	cfgs := testJob(t)[:3]
	cfgs[1].Trace = nil // uncacheable and unrunnable: poisoned

	res, stats, err := New(s, Options{
		Parallel: 2, Retries: 1, RetryBackoff: time.Microsecond, QuarantineLimit: 1,
	}).Run(cfgs)
	if err != nil {
		t.Fatalf("sweep with one quarantined cell must succeed, got: %v", err)
	}
	if res[0] == nil || res[2] == nil || res[1] != nil {
		t.Fatalf("results [%t %t %t], want healthy cells present and the poisoned one nil",
			res[0] != nil, res[1] != nil, res[2] != nil)
	}
	if stats.Quarantined != 1 || stats.Errors != 0 {
		t.Fatalf("quarantined=%d errors=%d, want 1/0", stats.Quarantined, stats.Errors)
	}

	// The quarantine manifest names the cell, its attempts, and per-attempt
	// diagnostics — never silent truncation.
	recs, err := s.QuarantinedJobs()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 {
		t.Fatalf("quarantine manifest has %d records, want 1", len(recs))
	}
	rec := recs[0]
	if rec.Name != cfgs[1].Name() || rec.Attempts != 2 || len(rec.Errors) != 2 {
		t.Fatalf("record %+v, want name=%q attempts=2 errors=2", rec, cfgs[1].Name())
	}
	for _, line := range rec.Errors {
		if strings.ContainsRune(line, '\n') {
			t.Fatalf("record error %q is not a single line", line)
		}
	}

	// The corpus writer reports the hole rather than hiding it.
	var buf bytes.Buffer
	rows, skipped, err := WriteCorpus(&buf, cfgs, res)
	if err != nil {
		t.Fatal(err)
	}
	if rows != 2 || skipped != 1 {
		t.Fatalf("corpus rows=%d skipped=%d, want 2/1", rows, skipped)
	}

	// Two poisoned cells against a budget of one: bounded degradation means
	// the second failure surfaces.
	cfgs2 := testJob(t)[:3]
	cfgs2[0].Trace = nil
	cfgs2[1].Trace = nil
	_, stats2, err := New(openTestStore(t), Options{
		Parallel: 1, QuarantineLimit: 1,
	}).Run(cfgs2)
	if err == nil {
		t.Fatal("second poisoned cell beyond the quarantine limit did not fail the run")
	}
	if stats2.Quarantined != 1 || stats2.Errors != 1 {
		t.Fatalf("quarantined=%d errors=%d, want 1/1", stats2.Quarantined, stats2.Errors)
	}
}

// TestQuarantineRecordsCacheableCells: a poisoned cacheable cell's record
// carries its content address, and duplicate cells of one address share the
// quarantine decision through single-flight.
func TestQuarantineRecordsCacheableCells(t *testing.T) {
	s := openTestStore(t)
	cfgs := testJob(t) // last cell duplicates cell 0
	in := chaos.New(&chaos.Spec{
		Seed:        5,
		Probability: map[chaos.Site]float64{chaos.SiteWorkerKill: 1},
		MaxPerKey:   100, // outlasts any retry budget: every attempt dies
	})
	res, stats, err := New(s, Options{
		Parallel: 2, Retries: 1, RetryBackoff: time.Microsecond,
		QuarantineLimit: len(cfgs), Chaos: in,
	}).Run(cfgs)
	if err != nil {
		t.Fatalf("fully-quarantined sweep must still complete: %v", err)
	}
	if stats.Quarantined != len(cfgs) {
		t.Fatalf("quarantined %d cells, want %d (duplicates included)", stats.Quarantined, len(cfgs))
	}
	for i, r := range res {
		if r != nil {
			t.Fatalf("cell %d produced a result while every attempt was killed", i)
		}
	}
	recs, err := s.QuarantinedJobs()
	if err != nil {
		t.Fatal(err)
	}
	// 4 unique addresses: the duplicate shares its flight's record.
	if len(recs) != 4 {
		t.Fatalf("quarantine manifest has %d records, want 4 unique cells", len(recs))
	}
	for _, rec := range recs {
		if rec.Addr == "" {
			t.Fatalf("cacheable cell %q quarantined without its address", rec.Name)
		}
	}
}

// TestJobTimeoutTripsOnWedgedCells: a simulation that never returns is cut
// off by the wall-clock budget and quarantined instead of hanging the sweep.
func TestJobTimeoutTripsOnWedgedCells(t *testing.T) {
	// started orders the abandoned goroutine's read of runSim before the
	// deferred restore below — the budget abandons the goroutine, it does
	// not kill it, so the test must not swap the hook back underneath it.
	started := make(chan struct{})
	release := make(chan struct{})
	defer close(release)
	real := runSim
	runSim = func(cfg core.Config) (*core.Result, error) {
		close(started) // single attempt: Retries is 0
		<-release      // wedged until the test ends
		return nil, nil
	}
	defer func() { runSim = real }()
	defer func() { <-started }()

	s := openTestStore(t)
	cfgs := testJob(t)[:1]
	res, stats, err := New(s, Options{
		Parallel: 1, JobTimeout: 5 * time.Millisecond, QuarantineLimit: 1,
	}).Run(cfgs)
	if err != nil {
		t.Fatalf("wedged cell must quarantine, not fail: %v", err)
	}
	if res[0] != nil || stats.Quarantined != 1 {
		t.Fatalf("res=%v quarantined=%d, want nil/1", res[0], stats.Quarantined)
	}
	recs, err := s.QuarantinedJobs()
	if err != nil || len(recs) != 1 {
		t.Fatalf("quarantine records %v (err %v), want exactly one", recs, err)
	}
	if !strings.Contains(recs[0].Errors[0], "wall-clock budget") {
		t.Fatalf("record %q does not name the timeout", recs[0].Errors[0])
	}
}

// TestScrubQuarantinesCorruptObjects: the scrubber detects a flipped bit,
// moves the object aside idempotently, skips in-flight temps, and the next
// sweep re-simulates and heals the address.
func TestScrubQuarantinesCorruptObjects(t *testing.T) {
	s := openTestStore(t)
	cfgs := testJob(t)
	if _, _, err := New(s, Options{Parallel: 2}).Run(cfgs); err != nil {
		t.Fatal(err)
	}

	addr, err := Address(cfgs[0])
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(s.entryPath(addr))
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x01
	if err := os.WriteFile(s.entryPath(addr), data, 0o644); err != nil {
		t.Fatal(err)
	}
	// A writer mid-rename: the scrubber must leave it alone.
	tempPath := filepath.Join(filepath.Dir(s.entryPath(addr)), ".put-inflight")
	if err := os.WriteFile(tempPath, []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}

	rep, err := s.Scrub()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Checked != 4 || rep.Corrupt != 1 || rep.Quarantined != 1 || rep.Healthy != 3 || rep.InFlight != 1 {
		t.Fatalf("scrub report %+v, want checked=4 corrupt=1 quarantined=1 healthy=3 inflight=1", rep)
	}
	if _, err := os.Stat(tempPath); err != nil {
		t.Fatal("scrub removed an in-flight temp file")
	}
	if _, err := os.Stat(filepath.Join(s.root, "quarantine", "objects", addr)); err != nil {
		t.Fatal("corrupt object not in quarantine")
	}
	if s.Has(addr) {
		t.Fatal("corrupt object still readable at its address")
	}

	// Idempotent: a second pass finds a clean store.
	rep2, err := s.Scrub()
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Corrupt != 0 || rep2.Checked != 3 {
		t.Fatalf("re-scrub report %+v, want corrupt=0 checked=3", rep2)
	}

	// The quarantined address heals on the next sweep.
	_, stats, err := New(s, Options{Parallel: 2}).Run(cfgs)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Misses != 1 {
		t.Fatalf("post-scrub sweep simulated %d cells, want exactly the quarantined one", stats.Misses)
	}
	if !s.Has(addr) {
		t.Fatal("address not healed after re-run")
	}
}

// TestScrubConcurrentWithWriters: scrubbing while writers install entries
// never loses a valid object — every address written before or during the
// scrub verifies afterwards.
func TestScrubConcurrentWithWriters(t *testing.T) {
	s := openTestStore(t)
	rec := testRecord()
	addrOf := func(i int) string {
		return AddressOf(fmt.Sprintf("writer-cell-%d", i))
	}

	const n = 64
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		// Write every address at least once (overlapping the scrub passes),
		// then keep rewriting until told to stop.
		for i := 0; ; i++ {
			if i >= n {
				select {
				case <-stop:
					return
				default:
				}
			}
			if err := s.Put(addrOf(i%n), rec); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	for pass := 0; pass < 20; pass++ {
		if _, err := s.Scrub(); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()

	rep, err := s.Scrub()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Corrupt != 0 {
		t.Fatalf("scrub vs writers quarantined %d valid objects", rep.Corrupt)
	}
	for i := 0; i < n; i++ {
		if !s.Has(addrOf(i)) {
			t.Fatalf("address %d lost during concurrent scrub", i)
		}
	}
}

// TestQuarantineObjectIdempotent: quarantining one object twice (sibling
// scrubbers racing) succeeds both times and leaves one quarantined copy.
func TestQuarantineObjectIdempotent(t *testing.T) {
	s := openTestStore(t)
	addr := AddressOf("idempotent")
	if err := s.Put(addr, testRecord()); err != nil {
		t.Fatal(err)
	}
	if !s.quarantineObject(addr) {
		t.Fatal("first quarantine failed")
	}
	if !s.quarantineObject(addr) {
		t.Fatal("second quarantine (source already moved) reported failure")
	}
	if _, err := os.Stat(filepath.Join(s.root, "quarantine", "objects", addr)); err != nil {
		t.Fatal("quarantined copy missing")
	}
}
