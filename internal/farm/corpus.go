package farm

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"dragonfly/internal/core"
)

// CorpusColumns is the header of the training-corpus CSV: configuration
// features first (what a surrogate model would take as input), then the
// measured targets. The address column keys every row back to its store
// entry, so a corpus can always be re-derived or spot-checked.
var CorpusColumns = []string{
	// features
	"address", "machine", "placement", "routing", "mapping",
	"app", "ranks", "msg_scale",
	"background", "bg_bytes", "bg_interval_ns", "bg_fanout",
	"faults", "seed",
	// targets
	"completed", "max_comm_ms", "median_comm_ms", "mean_comm_ms",
	"mean_hops", "duration_ns", "events",
	"local_sat_ms", "global_sat_ms", "local_mib", "global_mib",
	"dropped_packets", "dropped_bytes", "unreachable",
}

// CorpusRow flattens one (config, result) pair into CSV cells matching
// CorpusColumns. Formatting is deterministic (shortest-exact floats), so a
// corpus regenerated from the same store is byte-identical.
func CorpusRow(cfg core.Config, res *core.Result) ([]string, error) {
	enc, err := Encode(cfg)
	if err != nil {
		return nil, err
	}
	spec := cfg.Topology.(canonicalSpeccer).CanonicalSpec()

	bgKind, bgBytes, bgInterval, bgFan := "none", int64(0), int64(0), 0
	if cfg.Background != nil {
		bgKind = cfg.Background.Kind.String()
		bgBytes = cfg.Background.MsgBytes
		bgInterval = int64(cfg.Background.Interval)
		bgFan = cfg.Background.FanOut
	}

	comm := res.CommTimesMs()
	unreach := 0
	if res.RouteErr != nil {
		unreach = 1
	}
	row := []string{
		AddressOf(enc), spec,
		cfg.Placement.String(), cfg.Routing.String(), cfg.Mapping.String(),
		cfg.WorkloadApp(), strconv.Itoa(cfg.WorkloadRanks()), cf(orOne(cfg.MsgScale)),
		bgKind, strconv.FormatInt(bgBytes, 10), strconv.FormatInt(bgInterval, 10), strconv.Itoa(bgFan),
		quoteFaults(cfg.Faults.String()), strconv.FormatInt(cfg.Seed, 10),

		strconv.FormatBool(res.Completed),
		cf(maxOf(comm)), cf(medianOf(comm)), cf(meanOf(comm)),
		cf(meanOf(res.AvgHops)),
		strconv.FormatInt(int64(res.Duration), 10), strconv.FormatUint(res.Events, 10),
		cf(sumOf(res.LocalSaturation(false))), cf(sumOf(res.GlobalSaturation(false))),
		cf(sumOf(res.LocalTraffic(false))), cf(sumOf(res.GlobalTraffic(false))),
		strconv.FormatInt(res.DroppedPackets, 10), strconv.FormatInt(res.DroppedBytes, 10),
		strconv.Itoa(unreach),
	}
	return row, nil
}

// WriteCorpus emits the flat training-corpus CSV for a job: one row per
// config with a result, in config order. Cells without results (another
// shard's slice, or failed runs) are skipped and counted in the return —
// a complete corpus comes from a resume pass over a fully banked store,
// where every cell replays as a hit.
func WriteCorpus(w io.Writer, cfgs []core.Config, results []*core.Result) (rows, skipped int, err error) {
	var b strings.Builder
	b.WriteString(strings.Join(CorpusColumns, ","))
	b.WriteByte('\n')
	for i, cfg := range cfgs {
		if results[i] == nil {
			skipped++
			continue
		}
		row, err := CorpusRow(cfg, results[i])
		if err != nil {
			return rows, skipped, fmt.Errorf("farm: corpus cell %d: %w", i, err)
		}
		b.WriteString(strings.Join(row, ","))
		b.WriteByte('\n')
		rows++
	}
	_, err = io.WriteString(w, b.String())
	return rows, skipped, err
}

// quoteFaults makes the fault-spec clause list (which contains commas) a
// single CSV cell.
func quoteFaults(s string) string {
	if s == "" {
		return ""
	}
	return `"` + s + `"`
}

// cf renders a corpus float in its shortest exact form.
func cf(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// orOne mirrors the replay layer's effective message scale: <= 0 means 1.
func orOne(v float64) float64 {
	if v <= 0 {
		return 1
	}
	return v
}

func meanOf(vals []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range vals {
		sum += v
	}
	return sum / float64(len(vals))
}

func maxOf(vals []float64) float64 {
	out := 0.0
	for _, v := range vals {
		if v > out {
			out = v
		}
	}
	return out
}

func medianOf(vals []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	s := append([]float64(nil), vals...)
	sort.Float64s(s)
	if n := len(s); n%2 == 1 {
		return s[n/2]
	} else {
		return (s[n/2-1] + s[n/2]) / 2
	}
}

func sumOf(vals []float64) float64 {
	sum := 0.0
	for _, v := range vals {
		sum += v
	}
	return sum
}
