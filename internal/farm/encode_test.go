package farm

import (
	"reflect"
	"strings"
	"testing"

	"dragonfly/internal/core"
	"dragonfly/internal/des"
	"dragonfly/internal/faults"
	"dragonfly/internal/mapping"
	"dragonfly/internal/network"
	"dragonfly/internal/placement"
	"dragonfly/internal/routing"
	"dragonfly/internal/topology"
	"dragonfly/internal/trace"
	"dragonfly/internal/workload"
)

func testTrace(t testing.TB) *trace.Trace {
	t.Helper()
	tr, err := trace.CR(trace.CRConfig{Ranks: 16, MessageBytes: 4 * trace.KB})
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func baseConfig(t testing.TB) core.Config {
	return core.Config{
		Topology:  topology.Mini(),
		Params:    network.DefaultParams(),
		Placement: placement.Contiguous,
		Routing:   routing.Minimal,
		Trace:     testTrace(t),
		Seed:      1,
	}
}

// TestEncodeCoversEveryStructField reflects over the four structs whose
// fields feed a simulation and fails when any of them grows a field the
// encoder's coverage registry does not list. Adding a field to core.Config
// (or Params, routing.Options, BackgroundConfig) without teaching Encode
// about it would otherwise alias distinct configs to one content address —
// a silent wrong-result cache hit.
func TestEncodeCoversEveryStructField(t *testing.T) {
	check := func(name string, typ reflect.Type, covered map[string]bool) {
		seen := map[string]bool{}
		for i := 0; i < typ.NumField(); i++ {
			f := typ.Field(i).Name
			seen[f] = true
			if !covered[f] {
				t.Errorf("%s.%s is not in the encoder's coverage registry: teach Encode about it (or it will alias configs)", name, f)
			}
		}
		for f := range covered {
			if !seen[f] {
				t.Errorf("encoder registry lists %s.%s, which no longer exists", name, f)
			}
		}
	}
	check("core.Config", reflect.TypeOf(core.Config{}), coveredConfigFields)
	check("network.Params", reflect.TypeOf(network.Params{}), coveredParamsFields)
	check("routing.Options", reflect.TypeOf(routing.Options{}), coveredRouteFields)
	check("workload.BackgroundConfig", reflect.TypeOf(workload.BackgroundConfig{}), coveredBackgroundFields)
}

// TestEveryFieldPerturbsAddress mutates each run-config field in turn and
// requires every mutation to move the content address, with no collisions
// among the mutants. The cross-check at the end requires at least one
// mutation per top-level core.Config field, so a newly added field fails
// this test until it both gets a mutation here and is encoded.
func TestEveryFieldPerturbsAddress(t *testing.T) {
	type mutation struct {
		field string // top-level core.Config field exercised
		name  string
		apply func(cfg *core.Config)
	}
	mustRing := func(t *testing.T, ranks int, bytes int64, rounds int) *trace.Graph {
		t.Helper()
		g, err := trace.RingAllReduce(trace.RingAllReduceConfig{Ranks: ranks, Bytes: bytes, Rounds: rounds})
		if err != nil {
			t.Fatal(err)
		}
		return g
	}
	otherTrace := func() *trace.Trace {
		tr, err := trace.CR(trace.CRConfig{Ranks: 16, MessageBytes: 8 * trace.KB})
		if err != nil {
			t.Fatal(err)
		}
		return tr
	}
	muts := []mutation{
		{"Topology", "machine shape", func(c *core.Config) {
			m := topology.Mini()
			m.GlobalPortsPerRouter++ // a field Label() omits: only CanonicalSpec sees it
			c.Topology = m
		}},
		{"Placement", "placement", func(c *core.Config) { c.Placement = placement.RandomNode }},
		{"Routing", "routing", func(c *core.Config) { c.Routing = routing.Adaptive }},
		{"Mapping", "mapping", func(c *core.Config) { c.Mapping = mapping.Shuffle }},
		{"Trace", "trace content", func(c *core.Config) { c.Trace = otherTrace() }},
		{"Graph", "graph workload", func(c *core.Config) { c.Graph = mustRing(t, 8, 64*trace.KB, 1) }},
		{"Graph", "graph ranks", func(c *core.Config) { c.Graph = mustRing(t, 12, 64*trace.KB, 1) }},
		{"Graph", "graph payload", func(c *core.Config) { c.Graph = mustRing(t, 8, 128*trace.KB, 1) }},
		{"Graph", "graph rounds", func(c *core.Config) { c.Graph = mustRing(t, 8, 64*trace.KB, 2) }},
		{"Graph", "graph app", func(c *core.Config) {
			g, err := trace.TreeAllReduce(trace.TreeAllReduceConfig{Ranks: 8, Bytes: 64 * trace.KB, Rounds: 1})
			if err != nil {
				t.Fatal(err)
			}
			c.Graph = g
		}},
		{"Graph", "graph structure", func(c *core.Config) {
			// Same app label, ranks, and traffic as "graph workload", different
			// dependency edges: only the content digest separates them.
			g := mustRing(t, 8, 64*trace.KB, 1)
			h := &trace.Graph{App: g.App, Ranks: make([][]trace.GraphNode, len(g.Ranks))}
			for r, nodes := range g.Ranks {
				h.Ranks[r] = append([]trace.GraphNode(nil), nodes...)
				for i := range h.Ranks[r] {
					h.Ranks[r][i].Deps = nil // drop every dependency edge
				}
			}
			c.Graph = h
		}},
		{"MsgScale", "msg scale", func(c *core.Config) { c.MsgScale = 2 }},
		{"Seed", "seed", func(c *core.Config) { c.Seed = 2 }},
		{"Audit", "audit", func(c *core.Config) { c.Audit = true }},
		{"MaxSimTime", "max sim time", func(c *core.Config) { c.MaxSimTime = des.Second }},
		{"WatchdogEvents", "watchdog events", func(c *core.Config) { c.WatchdogEvents = 5 }},
		{"WatchdogTime", "watchdog time", func(c *core.Config) { c.WatchdogTime = des.Second }},

		{"Background", "background on", func(c *core.Config) {
			c.Background = &workload.BackgroundConfig{Kind: workload.UniformRandom, MsgBytes: 1024, Interval: des.Microsecond}
		}},
		{"Background", "background kind", func(c *core.Config) {
			c.Background = &workload.BackgroundConfig{Kind: workload.Bursty, MsgBytes: 1024, Interval: des.Microsecond}
		}},
		{"Background", "background bytes", func(c *core.Config) {
			c.Background = &workload.BackgroundConfig{Kind: workload.UniformRandom, MsgBytes: 2048, Interval: des.Microsecond}
		}},
		{"Background", "background interval", func(c *core.Config) {
			c.Background = &workload.BackgroundConfig{Kind: workload.UniformRandom, MsgBytes: 1024, Interval: 2 * des.Microsecond}
		}},
		{"Background", "background fanout", func(c *core.Config) {
			c.Background = &workload.BackgroundConfig{Kind: workload.Bursty, MsgBytes: 1024, Interval: des.Microsecond, FanOut: 3}
		}},

		{"Faults", "faults global frac", func(c *core.Config) { c.Faults = &faults.Spec{GlobalFrac: 0.1} }},
		{"Faults", "faults local frac", func(c *core.Config) { c.Faults = &faults.Spec{LocalFrac: 0.1} }},
		{"Faults", "faults routers", func(c *core.Config) { c.Faults = &faults.Spec{Routers: 1} }},
		{"Faults", "faults explicit router", func(c *core.Config) { c.Faults = &faults.Spec{FailRouters: []topology.RouterID{3}} }},
		{"Faults", "faults explicit link", func(c *core.Config) { c.Faults = &faults.Spec{FailLinks: [][2]topology.RouterID{{1, 2}}} }},
		{"Faults", "faults seed", func(c *core.Config) { c.Faults = &faults.Spec{GlobalFrac: 0.1, Seed: 9} }},
		{"Faults", "faults event", func(c *core.Config) {
			c.Faults = &faults.Spec{Events: []faults.Event{{At: des.Microsecond, A: 1, B: 2}}}
		}},
		{"Faults", "faults group", func(c *core.Config) { c.Faults = &faults.Spec{FailGroups: []int{1}} }},
		{"Faults", "faults bundle", func(c *core.Config) { c.Faults = &faults.Spec{FailBundles: [][2]int{{0, 1}}} }},
		{"Faults", "faults flap", func(c *core.Config) {
			c.Faults = &faults.Spec{Flaps: []faults.Flap{{A: 1, B: 2, MTBF: 100_000, MTTR: 50_000}}}
		}},
		{"Faults", "faults flap horizon", func(c *core.Config) {
			c.Faults = &faults.Spec{
				Flaps:     []faults.Flap{{A: 1, B: 2, MTBF: 100_000, MTTR: 50_000}},
				FlapUntil: 2_000_000,
			}
		}},

		{"Params", "packet bytes", func(c *core.Config) { c.Params.PacketBytes /= 2 }},
		{"Params", "terminal bandwidth", func(c *core.Config) { c.Params.TerminalBandwidth *= 2 }},
		{"Params", "local bandwidth", func(c *core.Config) { c.Params.LocalBandwidth *= 2 }},
		{"Params", "global bandwidth", func(c *core.Config) { c.Params.GlobalBandwidth *= 2 }},
		{"Params", "terminal latency", func(c *core.Config) { c.Params.TerminalLatency *= 2 }},
		{"Params", "local latency", func(c *core.Config) { c.Params.LocalLatency *= 2 }},
		{"Params", "global latency", func(c *core.Config) { c.Params.GlobalLatency *= 2 }},
		{"Params", "terminal vc buffer", func(c *core.Config) { c.Params.TerminalVCBuffer *= 2 }},
		{"Params", "local vc buffer", func(c *core.Config) { c.Params.LocalVCBuffer *= 2 }},
		{"Params", "global vc buffer", func(c *core.Config) { c.Params.GlobalVCBuffer *= 2 }},
		{"Params", "no packet pool", func(c *core.Config) { c.Params.NoPacketPool = true }},
		{"Params", "gateway policy", func(c *core.Config) { c.Params.Route.Gateway = routing.GatewayRandom }},
		{"Params", "valiant candidates", func(c *core.Config) { c.Params.Route.ValiantCandidates = 4 }},
		{"Params", "minimal bias", func(c *core.Config) { c.Params.Route.MinimalBias = 1024 }},
		{"Params", "route no cache", func(c *core.Config) { c.Params.Route.NoCache = true }},
		{"Params", "compact tables", func(c *core.Config) { c.Params.Route.CompactTables = true }},
		{"Params", "custom policy", func(c *core.Config) {
			c.Params.Route.Policy = func() routing.Policy { return routing.NewQAdaptivePolicy(routing.QAdaptiveConfig{}) }
		}},
	}

	base := baseConfig(t)
	baseAddr, err := Address(base)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]string{baseAddr: "base"}
	fieldsHit := map[string]bool{}
	for _, m := range muts {
		cfg := baseConfig(t)
		m.apply(&cfg)
		addr, err := Address(cfg)
		if err != nil {
			t.Errorf("%s: %v", m.name, err)
			continue
		}
		if addr == baseAddr {
			t.Errorf("%s does not perturb the content address", m.name)
		}
		if prev, dup := seen[addr]; dup {
			t.Errorf("%s collides with %s on address %s", m.name, prev, addr[:12])
		}
		seen[addr] = m.name
		fieldsHit[m.field] = true
	}

	typ := reflect.TypeOf(core.Config{})
	for i := 0; i < typ.NumField(); i++ {
		if f := typ.Field(i).Name; !fieldsHit[f] {
			t.Errorf("no perturbation exercises core.Config.%s — add one (and encode the field)", f)
		}
	}
}

// TestEncodeStability pins address determinism: the same config encodes to
// the same address across calls and across separately generated (identical)
// traces, and the encoding names its version.
func TestEncodeStability(t *testing.T) {
	a, err := Address(baseConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Address(baseConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("identical configs address differently: %s vs %s", a, b)
	}
	if len(a) != 64 {
		t.Fatalf("address %q is not 64 hex chars", a)
	}
	enc, err := Encode(baseConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(enc, "dffarm-config v1\n") {
		t.Fatalf("encoding does not lead with its version line:\n%s", enc)
	}

	// The replay layer treats MsgScale <= 0 as 1, so those configs are one
	// simulation and must share one address (dffarm passes 1 explicitly;
	// several experiments leave the zero value).
	zero, one := baseConfig(t), baseConfig(t)
	zero.MsgScale, one.MsgScale = 0, 1
	za, err := Address(zero)
	if err != nil {
		t.Fatal(err)
	}
	oa, err := Address(one)
	if err != nil {
		t.Fatal(err)
	}
	if za != oa {
		t.Fatal("MsgScale 0 and 1 are the same simulation but address differently")
	}
}

// TestEncodeGraphWorkloads pins the flat/graph encoding split: a flat
// config's text carries trace.* lines and never graph.* (so every address
// banked before the graph IR stays reachable); a graph config swaps exactly
// those three lines, keys on graph content, and ignores any residual Trace.
func TestEncodeGraphWorkloads(t *testing.T) {
	flat, err := Encode(baseConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(flat, "trace.app=") || strings.Contains(flat, "graph.") {
		t.Fatalf("flat encoding malformed:\n%s", flat)
	}

	g, err := trace.RingAllReduce(trace.RingAllReduceConfig{Ranks: 8, Bytes: 64 * trace.KB, Rounds: 1})
	if err != nil {
		t.Fatal(err)
	}
	gcfg := baseConfig(t)
	gcfg.Graph = g
	genc, err := Encode(gcfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"graph.app=RING\n", "graph.ranks=8\n", "graph.digest="} {
		if !strings.Contains(genc, want) {
			t.Errorf("graph encoding missing %q:\n%s", want, genc)
		}
	}
	if strings.Contains(genc, "trace.") {
		t.Fatalf("graph encoding leaks trace lines:\n%s", genc)
	}
	// Graph identity is content, not the Trace riding along: changing the
	// (ignored) trace must not move the address; changing graph content must.
	other := gcfg
	other.Trace = nil
	oa, err := Address(other)
	if err != nil {
		t.Fatal(err)
	}
	ga, err := Address(gcfg)
	if err != nil {
		t.Fatal(err)
	}
	if ga != oa {
		t.Fatal("residual Trace moved a graph config's address")
	}
	// A graph-only config is cacheable; a workload-free one is not.
	if _, err := Encode(core.Config{Topology: gcfg.Topology, Params: gcfg.Params}); err == nil {
		t.Fatal("Encode accepted a config with no workload")
	}
}

// TestEncodeRejectsUncacheable: configs whose identity the encoder cannot
// capture must fail loudly, not hash lossily.
func TestEncodeRejectsUncacheable(t *testing.T) {
	cfg := baseConfig(t)
	cfg.Trace = nil
	if _, err := Encode(cfg); err == nil {
		t.Error("nil trace encoded")
	}
	cfg = baseConfig(t)
	cfg.Topology = nil
	if _, err := Encode(cfg); err == nil {
		t.Error("nil machine encoded")
	}
	cfg = baseConfig(t)
	fs, err := faults.Resolve(&faults.Spec{Routers: 1, Seed: 1}, topology.BuildMachine(topology.Mini()))
	if err != nil {
		t.Fatal(err)
	}
	cfg.Params.Route.Health = fs
	if _, err := Encode(cfg); err == nil {
		t.Error("pre-installed Route.Health encoded; its live state has no canonical identity")
	}
}
