package farm

import (
	"testing"
	"time"

	"dragonfly/internal/core"
	"dragonfly/internal/placement"
	"dragonfly/internal/routing"
	"dragonfly/internal/trace"
)

// benchConfig is a realistically sized sweep cell (64 ranks, 256 KB
// messages, adaptive routing over random placement): heavy enough that the
// simulate-vs-replay gap reflects what a production sweep would see, small
// enough to keep the cold benchmark in the tens of milliseconds.
func benchConfig(tb testing.TB) core.Config {
	tb.Helper()
	tr, err := trace.CR(trace.CRConfig{Ranks: 64, MessageBytes: 256 * trace.KB})
	if err != nil {
		tb.Fatal(err)
	}
	return core.MiniConfig(tr, core.Cell{
		Placement: placement.RandomNode, Routing: routing.Adaptive,
	}, 1)
}

// BenchmarkFarmColdRun measures the miss path: simulate one cell and
// persist its record. This is the baseline the warm path's >=50x speedup
// target is measured against.
func BenchmarkFarmColdRun(b *testing.B) {
	cfg := benchConfig(b)
	s, err := Open(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	addr, err := Address(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := core.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if err := s.Put(addr, RecordOf(res)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFarmWarmHit measures the hit path: address the config, read and
// verify the entry, materialize the result. This is what every cell of a
// resumed sweep costs.
func BenchmarkFarmWarmHit(b *testing.B) {
	cfg := benchConfig(b)
	s, err := Open(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	if _, _, err := New(s, Options{Parallel: 1}).Run([]core.Config{cfg}); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, stats, err := New(s, Options{Parallel: 1}).Run([]core.Config{cfg})
		if err != nil {
			b.Fatal(err)
		}
		if stats.Misses != 0 || res[0] == nil {
			b.Fatal("warm iteration simulated")
		}
	}
}

// TestFarmWarmSpeedup is the acceptance gate for the farm's reason to
// exist: replaying a banked cell must be at least 50x faster than
// simulating it. The measured gap on the bench cell is ~100x (tens of
// milliseconds of simulation vs under a millisecond for a verified read),
// so the 50x floor holds with margin on any machine.
func TestFarmWarmSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("timing comparison")
	}
	cfg := benchConfig(t)
	s := openTestStore(t)

	coldStart := time.Now()
	_, coldStats, err := New(s, Options{Parallel: 1}).Run([]core.Config{cfg})
	if err != nil {
		t.Fatal(err)
	}
	cold := time.Since(coldStart)
	if coldStats.Misses != 1 {
		t.Fatalf("cold pass misses = %d, want 1", coldStats.Misses)
	}

	// Best of several warm passes: robust to one slow read (page cache
	// warm-up, a GC pause) without averaging away a real regression.
	const passes = 5
	warm := time.Duration(0)
	for i := 0; i < passes; i++ {
		start := time.Now()
		_, warmStats, err := New(s, Options{Parallel: 1}).Run([]core.Config{cfg})
		if err != nil {
			t.Fatal(err)
		}
		if warmStats.Misses != 0 {
			t.Fatalf("warm pass %d simulated", i)
		}
		if d := time.Since(start); warm == 0 || d < warm {
			warm = d
		}
	}
	if warm == 0 {
		warm = time.Nanosecond
	}
	speedup := float64(cold) / float64(warm)
	t.Logf("cold %v, warm (best of %d) %v: %.0fx", cold, passes, warm, speedup)
	if speedup < 50 {
		t.Fatalf("warm replay only %.1fx faster than cold (%v vs %v), want >= 50x", speedup, warm, cold)
	}
}
