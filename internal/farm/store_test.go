package farm

import (
	"bytes"
	"errors"
	"os"
	"reflect"
	"strings"
	"sync"
	"testing"

	"dragonfly/internal/core"
	"dragonfly/internal/des"
	"dragonfly/internal/network"
	"dragonfly/internal/topology"
)

func testRecord() *Record {
	return &Record{
		Version:   codecVersion,
		Completed: true,
		CommTimes: []des.Time{100, 250, 300},
		AvgHops:   []float64{1.5, 2.25, 3.125},
		Links: []network.LinkStat{
			{Kind: 0, From: 0, To: 1, Bytes: 4096, Packets: 1, SatTime: 10},
		},
		AppRouters:     []topology.RouterID{0, 1},
		AppNodes:       []topology.NodeID{0, 1, 2},
		Duration:       12345,
		Events:         99,
		DroppedPackets: 1,
		DroppedBytes:   4096,
	}
}

func openTestStore(t *testing.T) *Store {
	t.Helper()
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestStoreRoundTrip(t *testing.T) {
	s := openTestStore(t)
	addr := AddressOf("round trip")
	if _, err := s.Get(addr); !errors.Is(err, ErrMiss) {
		t.Fatalf("empty store Get = %v, want ErrMiss", err)
	}
	want := testRecord()
	if err := s.Put(addr, want); err != nil {
		t.Fatal(err)
	}
	got, err := s.Get(addr)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip mismatch:\ngot  %+v\nwant %+v", got, want)
	}
	if !s.Has(addr) {
		t.Fatal("Has reports false for a stored entry")
	}
}

// TestStoreDetectsCorruption is the robustness matrix of the entry codec:
// truncation, bit flips in header and payload, a wrong codec version, and
// an entry copied under the wrong address must all surface as ErrCorrupt —
// a re-run — never as a decoded (wrong) result or a panic.
func TestStoreDetectsCorruption(t *testing.T) {
	cases := []struct {
		name   string
		mangle func(t *testing.T, s *Store, addr string)
	}{
		{"truncated to half", func(t *testing.T, s *Store, addr string) {
			p := s.entryPath(addr)
			data, _ := os.ReadFile(p)
			os.WriteFile(p, data[:len(data)/2], 0o644)
		}},
		{"truncated header", func(t *testing.T, s *Store, addr string) {
			os.WriteFile(s.entryPath(addr), []byte("DFFARM1 js"), 0o644)
		}},
		{"empty file", func(t *testing.T, s *Store, addr string) {
			os.WriteFile(s.entryPath(addr), nil, 0o644)
		}},
		{"payload bit flip", func(t *testing.T, s *Store, addr string) {
			p := s.entryPath(addr)
			data, _ := os.ReadFile(p)
			data[len(data)-4] ^= 0x40
			os.WriteFile(p, data, 0o644)
		}},
		{"magic bit flip", func(t *testing.T, s *Store, addr string) {
			p := s.entryPath(addr)
			data, _ := os.ReadFile(p)
			data[0] ^= 0x01
			os.WriteFile(p, data, 0o644)
		}},
		{"unknown payload codec", func(t *testing.T, s *Store, addr string) {
			p := s.entryPath(addr)
			data, _ := os.ReadFile(p)
			os.WriteFile(p, bytes.Replace(data, []byte("DFFARM1 json"), []byte("DFFARM1 cbor"), 1), 0o644)
		}},
		{"appended garbage", func(t *testing.T, s *Store, addr string) {
			p := s.entryPath(addr)
			data, _ := os.ReadFile(p)
			os.WriteFile(p, append(data, "tail"...), 0o644)
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := openTestStore(t)
			addr := AddressOf("corruption:" + tc.name)
			if err := s.Put(addr, testRecord()); err != nil {
				t.Fatal(err)
			}
			tc.mangle(t, s, addr)
			_, err := s.Get(addr)
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("Get after %s = %v, want ErrCorrupt", tc.name, err)
			}
		})
	}
}

func TestStoreRejectsWrongCodecVersion(t *testing.T) {
	s := openTestStore(t)
	addr := AddressOf("codec version")
	rec := testRecord()
	rec.Version = codecVersion + 1
	if err := s.Put(addr, rec); err != nil {
		t.Fatal(err)
	}
	_, err := s.Get(addr)
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("future-codec entry Get = %v, want ErrCorrupt", err)
	}
	if !strings.Contains(err.Error(), "codec version") {
		t.Fatalf("error does not name the codec version: %v", err)
	}
}

func TestStoreRejectsRelocatedEntry(t *testing.T) {
	s := openTestStore(t)
	a, b := AddressOf("entry a"), AddressOf("entry b")
	if err := s.Put(a, testRecord()); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(s.entryPath(a))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(s.entryPath(b)[:len(s.entryPath(b))-len(b)], 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(s.entryPath(b), data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get(b); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("relocated entry Get = %v, want ErrCorrupt (embedded address mismatch)", err)
	}
}

// TestStoreConcurrentWriters hammers one address from many goroutines while
// readers poll it: every read must be a clean miss or a fully verified
// entry — atomic temp+rename means no torn intermediate is ever visible.
func TestStoreConcurrentWriters(t *testing.T) {
	s := openTestStore(t)
	addr := AddressOf("concurrent writers")
	rec := testRecord()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if err := s.Put(addr, rec); err != nil {
					t.Errorf("concurrent Put: %v", err)
					return
				}
			}
		}()
	}
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				got, err := s.Get(addr)
				if errors.Is(err, ErrMiss) {
					continue
				}
				if err != nil {
					t.Errorf("concurrent Get: %v", err)
					return
				}
				if !reflect.DeepEqual(got, rec) {
					t.Error("concurrent Get returned a mangled record")
					return
				}
			}
		}()
	}
	wg.Wait()
	got, err := s.Get(addr)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, rec) {
		t.Fatal("final entry does not verify")
	}
}

// TestRecordRoundTripsResult pins the Record<->Result conversion, RouteErr
// and audit summary included.
func TestRecordRoundTripsResult(t *testing.T) {
	cfg := baseConfig(t)
	res, err := core.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s := openTestStore(t)
	addr := AddressOf("record round trip")
	if err := s.Put(addr, RecordOf(res)); err != nil {
		t.Fatal(err)
	}
	rec, err := s.Get(addr)
	if err != nil {
		t.Fatal(err)
	}
	replay := rec.Result(cfg)
	if !reflect.DeepEqual(replay.CommTimes, res.CommTimes) {
		t.Error("CommTimes do not round-trip")
	}
	if !reflect.DeepEqual(replay.AvgHops, res.AvgHops) {
		t.Error("AvgHops do not round-trip")
	}
	if !reflect.DeepEqual(replay.Links, res.Links) {
		t.Error("Links do not round-trip")
	}
	if !reflect.DeepEqual(replay.AppRouters, res.AppRouters) {
		t.Error("AppRouters do not round-trip")
	}
	if !reflect.DeepEqual(replay.AppNodes, res.AppNodes) {
		t.Error("AppNodes do not round-trip")
	}
	if replay.Duration != res.Duration || replay.Events != res.Events || replay.Completed != res.Completed {
		t.Error("scalars do not round-trip")
	}
}
