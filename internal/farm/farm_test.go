package farm

import (
	"bytes"
	"errors"
	"os"
	"reflect"
	"testing"

	"dragonfly/internal/core"
	"dragonfly/internal/placement"
	"dragonfly/internal/routing"
)

// testJob is a small real sweep: four placement x routing cells on the mini
// machine, one of them audited, plus one deliberate duplicate to exercise
// single-flight.
func testJob(t testing.TB) []core.Config {
	t.Helper()
	tr := testTrace(t)
	cells := []core.Cell{
		{Placement: placement.Contiguous, Routing: routing.Minimal},
		{Placement: placement.Contiguous, Routing: routing.Adaptive},
		{Placement: placement.RandomNode, Routing: routing.Minimal},
		{Placement: placement.RandomNode, Routing: routing.Adaptive},
	}
	var cfgs []core.Config
	for _, cell := range cells {
		cfg := core.MiniConfig(tr, cell, 1)
		cfgs = append(cfgs, cfg)
	}
	cfgs[1].Audit = true
	cfgs = append(cfgs, cfgs[0]) // duplicate of cell 0
	return cfgs
}

// TestFarmColdThenWarm is the farm's core promise: a rerun of a completed
// job performs zero simulations (hit count == cell count) and every
// replayed result is record-identical to the cold one.
func TestFarmColdThenWarm(t *testing.T) {
	s := openTestStore(t)
	cfgs := testJob(t)

	cold, coldStats, err := New(s, Options{Parallel: 2}).Run(cfgs)
	if err != nil {
		t.Fatal(err)
	}
	if coldStats.Misses != 4 {
		t.Fatalf("cold run simulated %d cells, want 4 (the unique configs)", coldStats.Misses)
	}
	if coldStats.Hits != 1 {
		t.Fatalf("cold run hit %d cells, want 1 (the in-job duplicate via single-flight)", coldStats.Hits)
	}
	if cold[1].Audit == nil {
		t.Fatal("audited cell lost its audit summary")
	}

	warm, warmStats, err := New(s, Options{Parallel: 2}).Run(cfgs)
	if err != nil {
		t.Fatal(err)
	}
	if warmStats.Misses != 0 {
		t.Fatalf("warm run simulated %d cells, want 0", warmStats.Misses)
	}
	if warmStats.Hits != warmStats.InShard {
		t.Fatalf("warm run hits %d != in-shard cells %d", warmStats.Hits, warmStats.InShard)
	}
	for i := range cfgs {
		if !reflect.DeepEqual(RecordOf(cold[i]), RecordOf(warm[i])) {
			t.Errorf("cell %d: warm replay diverges from cold result", i)
		}
	}
}

// TestFarmShardsPartitionTheJob: two shard processes over one store must
// split the cells disjointly, and a subsequent unsharded pass replays the
// whole job from cache.
func TestFarmShardsPartitionTheJob(t *testing.T) {
	s := openTestStore(t)
	cfgs := testJob(t)

	res0, stats0, err := New(s, Options{Parallel: 1, Shard: 0, NumShards: 2}).Run(cfgs)
	if err != nil {
		t.Fatal(err)
	}
	res1, stats1, err := New(s, Options{Parallel: 1, Shard: 1, NumShards: 2}).Run(cfgs)
	if err != nil {
		t.Fatal(err)
	}
	if stats0.InShard+stats1.InShard != len(cfgs) {
		t.Fatalf("shards cover %d+%d cells, want %d", stats0.InShard, stats1.InShard, len(cfgs))
	}
	for i := range cfgs {
		has0, has1 := res0[i] != nil, res1[i] != nil
		if has0 == has1 {
			t.Errorf("cell %d: shard coverage not disjoint+complete (shard0=%t shard1=%t)", i, has0, has1)
		}
	}

	full, fullStats, err := New(s, Options{Parallel: 2}).Run(cfgs)
	if err != nil {
		t.Fatal(err)
	}
	if fullStats.Misses != 0 {
		t.Fatalf("post-shard full pass simulated %d cells, want 0 (resume must be free)", fullStats.Misses)
	}
	for i := range cfgs {
		if full[i] == nil {
			t.Errorf("cell %d missing from the resumed full pass", i)
		}
	}
}

// TestFarmReRunsCorruptEntries: a mangled store entry degrades to a re-run
// that heals the entry; it is never replayed.
func TestFarmReRunsCorruptEntries(t *testing.T) {
	s := openTestStore(t)
	cfgs := testJob(t)[:1]
	if _, _, err := New(s, Options{Parallel: 1}).Run(cfgs); err != nil {
		t.Fatal(err)
	}
	addr, err := Address(cfgs[0])
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(s.entryPath(addr))
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-2] ^= 0x10
	if err := os.WriteFile(s.entryPath(addr), data, 0o644); err != nil {
		t.Fatal(err)
	}

	_, stats, err := New(s, Options{Parallel: 1}).Run(cfgs)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Corrupt != 1 || stats.Misses != 1 || stats.Hits != 0 {
		t.Fatalf("corrupt entry handled as corrupt=%d misses=%d hits=%d, want 1/1/0", stats.Corrupt, stats.Misses, stats.Hits)
	}
	if _, err := s.Get(addr); err != nil {
		t.Fatalf("entry not healed after re-run: %v", err)
	}
}

// TestFarmSurfacesCellErrors mirrors core.RunBatch's contract: a failing
// cell yields the first config-order error while sibling cells still run,
// and nothing is stored for the failed cell.
func TestFarmSurfacesCellErrors(t *testing.T) {
	s := openTestStore(t)
	cfgs := testJob(t)[:3]
	cfgs[1].Trace = nil // Encode fails -> uncacheable -> core.Run fails loudly

	res, stats, err := New(s, Options{Parallel: 2}).Run(cfgs)
	if err == nil {
		t.Fatal("broken cell did not surface an error")
	}
	if res[0] == nil || res[2] == nil {
		t.Fatal("sibling cells were not attempted after the failure")
	}
	if res[1] != nil {
		t.Fatal("failed cell produced a result")
	}
	if stats.Errors != 1 {
		t.Fatalf("stats.Errors = %d, want 1", stats.Errors)
	}
}

func TestManifestRoundTrip(t *testing.T) {
	s := openTestStore(t)
	cfgs := testJob(t)
	var addrs []string
	for _, cfg := range cfgs {
		a, err := Address(cfg)
		if err != nil {
			t.Fatal(err)
		}
		addrs = append(addrs, a)
	}
	job := JobID(addrs)
	if _, err := s.LoadManifest(job); !errors.Is(err, ErrMiss) {
		t.Fatalf("missing manifest Load = %v, want ErrMiss", err)
	}
	if got := s.CountCached(addrs); got != 0 {
		t.Fatalf("empty store counts %d cached cells", got)
	}
	if _, _, err := New(s, Options{Parallel: 2}).Run(cfgs); err != nil {
		t.Fatal(err)
	}
	done := s.CountCached(addrs)
	if done != len(addrs) {
		t.Fatalf("CountCached = %d after a full run, want %d", done, len(addrs))
	}
	want := &Manifest{Job: job, Spec: "test job", Cells: len(cfgs), Done: done}
	if err := s.SaveManifest(want); err != nil {
		t.Fatal(err)
	}
	got, err := s.LoadManifest(job)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("manifest round trip: got %+v want %+v", got, want)
	}
}

// TestCorpusDeterministic: the corpus emitted from a cold run and from a
// warm replay must be byte-identical — the training data cannot depend on
// whether its rows were simulated or recalled.
func TestCorpusDeterministic(t *testing.T) {
	s := openTestStore(t)
	cfgs := testJob(t)

	cold, _, err := New(s, Options{Parallel: 2}).Run(cfgs)
	if err != nil {
		t.Fatal(err)
	}
	var coldBuf bytes.Buffer
	rows, skipped, err := WriteCorpus(&coldBuf, cfgs, cold)
	if err != nil {
		t.Fatal(err)
	}
	if rows != len(cfgs) || skipped != 0 {
		t.Fatalf("corpus rows=%d skipped=%d, want %d/0", rows, skipped, len(cfgs))
	}

	warm, _, err := New(s, Options{Parallel: 1}).Run(cfgs)
	if err != nil {
		t.Fatal(err)
	}
	var warmBuf bytes.Buffer
	if _, _, err := WriteCorpus(&warmBuf, cfgs, warm); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(coldBuf.Bytes(), warmBuf.Bytes()) {
		t.Fatal("cold and warm corpora differ")
	}

	lines := bytes.Split(coldBuf.Bytes(), []byte{'\n'})
	if want := len(CorpusColumns); bytes.Count(lines[0], []byte{','})+1 != want {
		t.Fatalf("header has %d columns, want %d", bytes.Count(lines[0], []byte{','})+1, want)
	}
	// A sharded emission skips the other shard's cells instead of failing.
	partial, _, err := New(s, Options{Parallel: 1, Shard: 0, NumShards: 2}).Run(cfgs)
	if err != nil {
		t.Fatal(err)
	}
	var partBuf bytes.Buffer
	rows, skipped, err = WriteCorpus(&partBuf, cfgs, partial)
	if err != nil {
		t.Fatal(err)
	}
	if rows+skipped != len(cfgs) || skipped == 0 {
		t.Fatalf("sharded corpus rows=%d skipped=%d", rows, skipped)
	}
}
