// Package audit is the simulation's runtime invariant checker: an optional
// observer that shadows the packet-level model's flow-control and delivery
// state and cross-checks, on every event, the physics the paper's
// conclusions rest on:
//
//   - Per-VC credit conservation: reserved receiver-buffer bytes (credits in
//     flight) never exceed the VC's buffer capacity and never go negative,
//     and the model's occupancy always equals the auditor's independently
//     maintained shadow count (Aries credit-based flow control, Sec. II).
//   - Byte and packet conservation: per message, injected bytes accumulate
//     exactly to the message total, delivered bytes never outrun injected
//     bytes, and at a fully drained engine nothing remains in the network
//     and every credit has been returned.
//   - VC-class monotonicity: every computed route passes routing.Validate —
//     local classes non-decreasing, global classes strictly sequential, hops
//     contiguous over physical links, path ending at the destination router.
//     This is the machine-checked witness that the channel dependency graph
//     stays acyclic, i.e. routing is deadlock-free (Sec. III-C).
//   - Time sanity: executed event timestamps are non-negative and monotone.
//   - Per-flow FIFO injection: each NIC completes message injection in send
//     order (packet-level delivery order is intentionally unordered under
//     multipath routing; reassembly soundness is what conservation checks).
//
// The auditor is pure observation: it never mutates simulation state, so an
// audited run produces bit-identical results to an unaudited one. When no
// auditor is attached every hook site in des and network reduces to a nil
// check — zero cost when disabled.
package audit

import (
	"fmt"

	"dragonfly/internal/des"
	"dragonfly/internal/routing"
	"dragonfly/internal/topology"
)

// maxRecorded bounds the retained violation messages; the count keeps
// incrementing past it so Err still reflects the full damage.
const maxRecorded = 20

// Stats counts the checks the auditor performed. Tests assert these are
// non-zero so a "clean" run cannot be a silently disconnected auditor.
type Stats struct {
	Events           uint64 // executed DES events observed
	Reserves         uint64 // credit claims checked
	Releases         uint64 // credit returns checked
	Routes           uint64 // computed paths validated
	Messages         uint64 // messages tracked end-to-end
	PacketsInjected  uint64
	PacketsDelivered uint64
	PacketsDropped   uint64 // faulted-fabric discards checked
	Violations       uint64
}

// Summary is the outcome of an audited run: check counts plus the first
// recorded violations (up to maxRecorded).
type Summary struct {
	Stats      Stats
	Violations []string
}

// linkShadow mirrors one directed channel's receiver-buffer state.
type linkShadow struct {
	kind  routing.LinkKind
	numVC int
	vcCap int
	occ   []int
}

// msgShadow mirrors one in-flight message's byte accounting. On a healthy
// fabric dropped and preDropped stay zero and the close condition reduces to
// the original received == injected == total. On a faulted fabric the
// conservation rule is delivered + dropped == total: every queued byte is
// accounted exactly once, as a delivery or as a loss on dead equipment.
type msgShadow struct {
	src, dst topology.NodeID
	total    int64
	injected int64
	received int64
	// dropped counts all discarded bytes; preDropped the subset discarded
	// before injection (no live route at the NIC), which substitutes for
	// injection in the FIFO and close accounting.
	dropped    int64
	preDropped int64
	fifoPopped bool
}

// Auditor implements network.Observer plus a des event observer. One
// Auditor serves one run; it is not safe for concurrent use (a sequential
// DES engine drives it from one goroutine).
type Auditor struct {
	topo  topology.Interconnect
	links []linkShadow
	msgs  map[uint64]*msgShadow
	// sendOrder holds, per source node, the ids of messages queued but not
	// yet fully injected — the FIFO the NIC must honor.
	sendOrder map[topology.NodeID][]uint64

	lastTime des.Time
	stats    Stats
	recorded []string
}

// New builds an auditor for a machine. Attach it with
// Fabric.SetObserver(a) and Engine.SetObserver(a.EventExecuted) before
// starting traffic.
func New(topo topology.Interconnect) *Auditor {
	return &Auditor{
		topo:      topo,
		msgs:      make(map[uint64]*msgShadow),
		sendOrder: make(map[topology.NodeID][]uint64),
	}
}

func (a *Auditor) violatef(format string, args ...interface{}) {
	a.stats.Violations++
	if len(a.recorded) < maxRecorded {
		a.recorded = append(a.recorded, fmt.Sprintf(format, args...))
	}
}

// EventExecuted is the des.Engine observer: simulated time must be
// non-negative and monotone.
func (a *Auditor) EventExecuted(at des.Time) {
	a.stats.Events++
	if at < 0 {
		a.violatef("time: negative event timestamp %d", int64(at))
	}
	if at < a.lastTime {
		a.violatef("time: event at %v after event at %v (non-monotone)", at, a.lastTime)
	}
	a.lastTime = at
}

// LinkAdded implements network.Observer.
func (a *Auditor) LinkAdded(linkID int, kind routing.LinkKind, numVC, vcCap int) {
	for linkID >= len(a.links) {
		a.links = append(a.links, linkShadow{})
	}
	a.links[linkID] = linkShadow{kind: kind, numVC: numVC, vcCap: vcCap, occ: make([]int, numVC)}
}

func (a *Auditor) link(linkID, vc int, op string) *linkShadow {
	if linkID < 0 || linkID >= len(a.links) || a.links[linkID].occ == nil {
		a.violatef("credit: %s on unknown link %d", op, linkID)
		return nil
	}
	l := &a.links[linkID]
	if vc < 0 || vc >= l.numVC {
		a.violatef("credit: %s on link %d VC %d out of range [0,%d)", op, linkID, vc, l.numVC)
		return nil
	}
	return l
}

// BufferReserve implements network.Observer: a credit claim may never push
// occupancy past the VC buffer capacity (credits + in-flight flits must
// equal capacity), and the model's count must match the shadow count.
func (a *Auditor) BufferReserve(linkID, vc, bytes, occAfter int) {
	a.stats.Reserves++
	l := a.link(linkID, vc, "reserve")
	if l == nil {
		return
	}
	if bytes <= 0 {
		a.violatef("credit: link %d VC %d reserved non-positive %d bytes", linkID, vc, bytes)
	}
	l.occ[vc] += bytes
	if occAfter != l.occ[vc] {
		a.violatef("credit: link %d VC %d model occupancy %d != shadow %d after reserve",
			linkID, vc, occAfter, l.occ[vc])
		l.occ[vc] = occAfter // resync so one fault is not reported forever
	}
	if l.occ[vc] > l.vcCap {
		a.violatef("credit: link %d (%v) VC %d occupancy %d exceeds capacity %d",
			linkID, l.kind, vc, l.occ[vc], l.vcCap)
	}
}

// BufferRelease implements network.Observer: returns may never drive
// occupancy negative.
func (a *Auditor) BufferRelease(linkID, vc, bytes, occAfter int) {
	a.stats.Releases++
	l := a.link(linkID, vc, "release")
	if l == nil {
		return
	}
	if bytes <= 0 {
		a.violatef("credit: link %d VC %d released non-positive %d bytes", linkID, vc, bytes)
	}
	l.occ[vc] -= bytes
	if occAfter != l.occ[vc] {
		a.violatef("credit: link %d VC %d model occupancy %d != shadow %d after release",
			linkID, vc, occAfter, l.occ[vc])
		l.occ[vc] = occAfter
	}
	if l.occ[vc] < 0 {
		a.violatef("credit: link %d (%v) VC %d occupancy %d negative after release",
			linkID, l.kind, vc, l.occ[vc])
	}
}

// RouteComputed implements network.Observer: every path must be a valid,
// terminating, VC-monotone route from src's router to dst's router — the
// per-packet deadlock-freedom witness.
func (a *Auditor) RouteComputed(src, dst topology.NodeID, path routing.Path) {
	a.stats.Routes++
	rs := a.topo.RouterOfNode(src)
	rd := a.topo.RouterOfNode(dst)
	if err := routing.Validate(a.topo, rs, rd, path); err != nil {
		a.violatef("route: %d->%d (router %d->%d): %v", src, dst, rs, rd, err)
	}
}

// MessageQueued implements network.Observer.
func (a *Auditor) MessageQueued(msgID uint64, src, dst topology.NodeID, totalBytes int64) {
	a.stats.Messages++
	if totalBytes < 1 {
		a.violatef("conservation: message %d queued with %d bytes", msgID, totalBytes)
	}
	if src == dst {
		a.violatef("conservation: loopback message %d (node %d) reached the network", msgID, src)
	}
	if _, ok := a.msgs[msgID]; ok {
		a.violatef("conservation: message id %d reused", msgID)
		return
	}
	a.msgs[msgID] = &msgShadow{src: src, dst: dst, total: totalBytes}
	a.sendOrder[src] = append(a.sendOrder[src], msgID)
}

// PacketInjected implements network.Observer: injected bytes accumulate
// monotonically to exactly the message total, and messages finish injection
// in per-NIC FIFO order.
func (a *Auditor) PacketInjected(msgID uint64, src topology.NodeID, bytes int, injectedBytes int64) {
	a.stats.PacketsInjected++
	m, ok := a.msgs[msgID]
	if !ok {
		a.violatef("conservation: packet injected for unknown message %d", msgID)
		return
	}
	if bytes <= 0 {
		a.violatef("conservation: message %d injected non-positive packet of %d bytes", msgID, bytes)
	}
	m.injected += int64(bytes)
	if injectedBytes != m.injected {
		a.violatef("conservation: message %d model injected %d != shadow %d", msgID, injectedBytes, m.injected)
		m.injected = injectedBytes
	}
	if m.injected > m.total {
		a.violatef("conservation: message %d injected %d of %d bytes (overrun)", msgID, m.injected, m.total)
	}
	a.finishInjection(msgID, m)
}

// finishInjection pops the per-NIC FIFO once a message's bytes have all left
// the send queue — injected onto the wire or discarded pre-injection. The
// guard keeps mixed injected/pre-dropped messages from popping twice.
func (a *Auditor) finishInjection(msgID uint64, m *msgShadow) {
	if m.fifoPopped || m.injected+m.preDropped < m.total {
		return
	}
	m.fifoPopped = true
	q := a.sendOrder[m.src]
	switch {
	case len(q) == 0:
		a.violatef("fifo: node %d completed message %d with an empty send queue", m.src, msgID)
	case q[0] != msgID:
		a.violatef("fifo: node %d completed message %d before earlier message %d", m.src, msgID, q[0])
	default:
		a.sendOrder[m.src] = q[1:]
	}
}

// maybeClose drops the shadow once every byte is accounted for on both ends:
// delivered + dropped covers the total, and so does injected + pre-dropped.
func (a *Auditor) maybeClose(msgID uint64, m *msgShadow) {
	if m.received+m.dropped == m.total && m.injected+m.preDropped == m.total {
		delete(a.msgs, msgID)
	}
}

// PacketDelivered implements network.Observer: delivered bytes accumulate
// monotonically, never outrun injected bytes, and close the message at
// exactly the total.
func (a *Auditor) PacketDelivered(msgID uint64, dst topology.NodeID, bytes int, receivedBytes int64) {
	a.stats.PacketsDelivered++
	m, ok := a.msgs[msgID]
	if !ok {
		a.violatef("conservation: packet delivered for unknown message %d", msgID)
		return
	}
	if dst != m.dst {
		a.violatef("conservation: message %d delivered at node %d, addressed to %d", msgID, dst, m.dst)
	}
	if bytes <= 0 {
		a.violatef("conservation: message %d delivered non-positive packet of %d bytes", msgID, bytes)
	}
	m.received += int64(bytes)
	if receivedBytes != m.received {
		a.violatef("conservation: message %d model received %d != shadow %d", msgID, receivedBytes, m.received)
		m.received = receivedBytes
	}
	if m.received > m.injected {
		a.violatef("conservation: message %d delivered %d bytes but only %d injected", msgID, m.received, m.injected)
	}
	if m.received+m.dropped > m.total {
		a.violatef("conservation: message %d received %d + dropped %d of %d bytes (overrun)",
			msgID, m.received, m.dropped, m.total)
	}
	// Fully accounted shadows are deleted so long interference runs stay
	// bounded in memory.
	a.maybeClose(msgID, m)
}

// PacketDropped implements network.Observer: faulted-fabric discards join
// the conservation ledger — delivered + dropped bytes may never exceed the
// message total, and pre-injection discards stand in for injection in the
// per-NIC FIFO accounting.
func (a *Auditor) PacketDropped(msgID uint64, bytes int, droppedBytes int64, injected bool) {
	a.stats.PacketsDropped++
	m, ok := a.msgs[msgID]
	if !ok {
		a.violatef("conservation: packet dropped for unknown message %d", msgID)
		return
	}
	if bytes <= 0 {
		a.violatef("conservation: message %d dropped non-positive packet of %d bytes", msgID, bytes)
	}
	m.dropped += int64(bytes)
	if droppedBytes != m.dropped {
		a.violatef("conservation: message %d model dropped %d != shadow %d", msgID, droppedBytes, m.dropped)
		m.dropped = droppedBytes
	}
	if m.received+m.dropped > m.total {
		a.violatef("conservation: message %d received %d + dropped %d of %d bytes (overrun)",
			msgID, m.received, m.dropped, m.total)
	}
	if injected && m.dropped-m.preDropped > m.injected {
		a.violatef("conservation: message %d dropped %d in-flight bytes but only %d injected",
			msgID, m.dropped-m.preDropped, m.injected)
	}
	if !injected {
		m.preDropped += int64(bytes)
		a.finishInjection(msgID, m)
	}
	a.maybeClose(msgID, m)
}

// Finish runs the end-of-run conservation checks. drained reports whether
// the DES queue emptied (a run bounded by MaxSimTime legitimately leaves
// traffic in flight, so the drain-time checks are skipped).
func (a *Auditor) Finish(drained bool) {
	if !drained {
		return
	}
	// Drained engine, yet messages not fully delivered: traffic is stuck in
	// the network with no event left to move it — a deadlock or an
	// accounting leak either way.
	reported := 0
	for id, m := range a.msgs {
		if reported < 3 {
			a.violatef("drain: message %d (%d->%d) stuck: injected %d, delivered %d of %d bytes",
				id, m.src, m.dst, m.injected, m.received, m.total)
			reported++
		} else {
			a.stats.Violations++
		}
	}
	// Every credit must be home: reserved receiver-buffer bytes drop to
	// zero, i.e. credits == capacity on every VC of every channel.
	for id, l := range a.links {
		for vc, occ := range l.occ {
			if occ != 0 {
				a.violatef("drain: link %d (%v) VC %d holds %d reserved bytes after drain",
					id, l.kind, vc, occ)
			}
		}
	}
}

// Err returns nil when every check passed, or an error summarizing the
// violations.
func (a *Auditor) Err() error {
	if a.stats.Violations == 0 {
		return nil
	}
	return fmt.Errorf("audit: %d invariant violation(s); first: %s", a.stats.Violations, a.recorded[0])
}

// Summary snapshots the check counts and recorded violations.
func (a *Auditor) Summary() Summary {
	return Summary{
		Stats:      a.stats,
		Violations: append([]string(nil), a.recorded...),
	}
}
