package audit_test

import (
	"strings"
	"testing"

	"dragonfly/internal/audit"
	"dragonfly/internal/core"
	"dragonfly/internal/des"
	"dragonfly/internal/network"
	"dragonfly/internal/placement"
	"dragonfly/internal/routing"
	"dragonfly/internal/topology"
	"dragonfly/internal/trace"
	"dragonfly/internal/workload"
)

func miniTrace(t *testing.T, app string) *trace.Trace {
	t.Helper()
	var (
		tr  *trace.Trace
		err error
	)
	switch app {
	case "CR":
		tr, err = trace.CR(trace.CRConfig{Ranks: 32, MessageBytes: 16 * 1024})
	case "FB":
		tr, err = trace.FB(trace.FBConfig{X: 3, Y: 3, Z: 3, Iterations: 2,
			MinBytes: 4 * 1024, MaxBytes: 64 * 1024, FarPartners: 1, FarFraction: 0.1, Seed: 1})
	case "AMG":
		tr, err = trace.AMG(trace.AMGConfig{X: 3, Y: 3, Z: 3, Cycles: 2, Levels: 3, PeakBytes: 16 * 1024})
	default:
		t.Fatalf("unknown app %q", app)
	}
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// The acceptance contract: every placement x routing cell of the paper's
// grid runs clean under the auditor on the reduced machine, for every
// application, and the auditor demonstrably checked something.
func TestFullGridAuditClean(t *testing.T) {
	for _, app := range []string{"CR", "FB", "AMG"} {
		tr := miniTrace(t, app)
		for _, cell := range core.AllCells() {
			cfg := core.MiniConfig(tr, cell, 1)
			cfg.Audit = true
			res, err := core.Run(cfg)
			if err != nil {
				t.Fatalf("%s under %s: %v", app, cell.Name(), err)
			}
			if !res.Completed {
				t.Fatalf("%s under %s did not complete", app, cell.Name())
			}
			if res.Audit == nil {
				t.Fatalf("%s under %s: no audit summary on an audited run", app, cell.Name())
			}
			s := res.Audit.Stats
			if s.Violations != 0 || len(res.Audit.Violations) != 0 {
				t.Fatalf("%s under %s: %d violations: %v", app, cell.Name(), s.Violations, res.Audit.Violations)
			}
			if s.Events == 0 || s.Reserves == 0 || s.Releases == 0 || s.Routes == 0 ||
				s.Messages == 0 || s.PacketsInjected == 0 || s.PacketsDelivered == 0 {
				t.Fatalf("%s under %s: auditor idle: %+v", app, cell.Name(), s)
			}
			// A drained run conserves bytes exactly: every reserve matched by
			// a release, every injected packet delivered.
			if s.PacketsInjected != s.PacketsDelivered {
				t.Fatalf("%s under %s: %d packets injected, %d delivered",
					app, cell.Name(), s.PacketsInjected, s.PacketsDelivered)
			}
		}
	}
}

// Auditing must observe without perturbing: an audited run's results are
// bit-identical to the unaudited run.
func TestAuditDoesNotPerturbResults(t *testing.T) {
	tr := miniTrace(t, "CR")
	cell := core.Cell{Placement: placement.RandomNode, Routing: routing.Adaptive}
	plain, err := core.Run(core.MiniConfig(tr, cell, 7))
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.MiniConfig(miniTrace(t, "CR"), cell, 7)
	cfg.Audit = true
	audited, err := core.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Duration != audited.Duration || plain.Events != audited.Events {
		t.Fatalf("audited run diverged: duration %v/%v events %d/%d",
			plain.Duration, audited.Duration, plain.Events, audited.Events)
	}
	for i := range plain.CommTimes {
		if plain.CommTimes[i] != audited.CommTimes[i] {
			t.Fatalf("rank %d comm time %v != %v", i, plain.CommTimes[i], audited.CommTimes[i])
		}
	}
}

// A deadline-bounded interference run leaves traffic in flight; the auditor
// must stay clean (skipping drain-time checks) rather than flag the bound.
func TestAuditCleanUnderBackgroundDeadline(t *testing.T) {
	tr := miniTrace(t, "CR")
	cfg := core.MiniConfig(tr, core.Cell{Placement: placement.Contiguous, Routing: routing.Adaptive}, 1)
	cfg.Audit = true
	cfg.Background = &workload.BackgroundConfig{
		Kind:     workload.UniformRandom,
		MsgBytes: 32 * 1024,
		Interval: 5 * des.Microsecond,
	}
	cfg.MaxSimTime = des.Second
	res, err := core.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Audit.Stats.Violations != 0 {
		t.Fatalf("violations under background: %v", res.Audit.Violations)
	}
}

// The audited co-run path: overlapping jobs on one fabric stay clean.
func TestAuditCleanMultiJob(t *testing.T) {
	cfg := core.MultiConfig{
		Topology: topology.Mini(),
		Params:   network.DefaultParams(),
		Routing:  routing.Adaptive,
		Jobs: []core.JobSpec{
			{Name: "a", Trace: miniTrace(t, "CR"), Placement: placement.Contiguous},
			{Name: "b", Trace: miniTrace(t, "CR"), Placement: placement.RandomNode},
		},
		Seed:  3,
		Audit: true,
	}
	res, err := core.RunMulti(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed() {
		t.Fatal("co-run did not complete")
	}
	if res.Audit == nil || res.Audit.Stats.Violations != 0 {
		t.Fatalf("co-run audit: %+v", res.Audit)
	}
}

// --- deliberate-violation unit tests ----------------------------------------

func newTestAuditor(t *testing.T) (*audit.Auditor, *topology.Topology) {
	t.Helper()
	topo, err := topology.New(topology.Mini())
	if err != nil {
		t.Fatal(err)
	}
	return audit.New(topo), topo
}

// wantViolation asserts the auditor recorded at least one violation whose
// text contains frag.
func wantViolation(t *testing.T, a *audit.Auditor, frag string) {
	t.Helper()
	if a.Err() == nil {
		t.Fatalf("no violation recorded, want one containing %q", frag)
	}
	for _, v := range a.Summary().Violations {
		if strings.Contains(v, frag) {
			return
		}
	}
	t.Fatalf("violations %v do not mention %q", a.Summary().Violations, frag)
}

func TestDetectsCreditOverflow(t *testing.T) {
	a, _ := newTestAuditor(t)
	a.LinkAdded(0, routing.Local, 1, 4096)
	a.BufferReserve(0, 0, 4096, 4096)
	if a.Err() != nil {
		t.Fatalf("in-capacity reserve flagged: %v", a.Summary().Violations)
	}
	a.BufferReserve(0, 0, 1, 4097)
	wantViolation(t, a, "exceeds capacity")
}

func TestDetectsNegativeOccupancy(t *testing.T) {
	a, _ := newTestAuditor(t)
	a.LinkAdded(0, routing.Global, 2, 8192)
	a.BufferReserve(0, 1, 100, 100)
	a.BufferRelease(0, 1, 200, -100)
	wantViolation(t, a, "negative")
}

func TestDetectsShadowMismatch(t *testing.T) {
	a, _ := newTestAuditor(t)
	a.LinkAdded(0, routing.Terminal, 1, 8192)
	// The model claims an occupancy the history cannot produce: a
	// double-count or lost release in the flow-control code.
	a.BufferReserve(0, 0, 100, 250)
	wantViolation(t, a, "!= shadow")
}

func TestDetectsNonMonotoneTime(t *testing.T) {
	a, _ := newTestAuditor(t)
	a.EventExecuted(100)
	a.EventExecuted(99)
	wantViolation(t, a, "non-monotone")
}

func TestDetectsNegativeTime(t *testing.T) {
	a, _ := newTestAuditor(t)
	a.EventExecuted(-1)
	wantViolation(t, a, "negative event timestamp")
}

func TestDetectsVCClassDecrease(t *testing.T) {
	a, topo := newTestAuditor(t)
	// A real local link walked with a decreasing VC class: the channel
	// dependency cycle the VC scheme exists to prevent.
	r0 := topology.RouterID(0)
	var r1 topology.RouterID
	for _, n := range topo.LocalNeighbors(r0) {
		r1 = n
		break
	}
	src := topo.NodeAt(r0, 0)
	dst := topo.NodeAt(r1, 0)
	path := routing.Path{Hops: []routing.Hop{
		{From: r0, To: r1, Kind: routing.Local, VC: 2},
		{From: r1, To: r0, Kind: routing.Local, VC: 1},
		{From: r0, To: r1, Kind: routing.Local, VC: 1},
	}}
	a.RouteComputed(src, dst, path)
	wantViolation(t, a, "VC class decreased")
}

func TestDetectsPathNotReachingDestination(t *testing.T) {
	a, topo := newTestAuditor(t)
	src := topo.NodeAt(0, 0)
	dst := topo.NodeAt(topology.RouterID(topo.NumRouters()-1), 0)
	a.RouteComputed(src, dst, routing.Path{})
	wantViolation(t, a, "path ends at")
}

func TestDetectsFIFOViolation(t *testing.T) {
	a, _ := newTestAuditor(t)
	a.MessageQueued(1, 0, 5, 100)
	a.MessageQueued(2, 0, 6, 100)
	// Message 2 finishes injection before message 1: the NIC reordered its
	// send queue.
	a.PacketInjected(2, 0, 100, 100)
	wantViolation(t, a, "before earlier message")
}

func TestDetectsDeliveryBeforeInjection(t *testing.T) {
	a, _ := newTestAuditor(t)
	a.MessageQueued(1, 0, 5, 200)
	a.PacketInjected(1, 0, 100, 100)
	a.PacketDelivered(1, 5, 150, 150)
	wantViolation(t, a, "only 100 injected")
}

func TestDetectsByteOverrun(t *testing.T) {
	a, _ := newTestAuditor(t)
	a.MessageQueued(1, 0, 5, 100)
	a.PacketInjected(1, 0, 150, 150)
	wantViolation(t, a, "overrun")
}

func TestDetectsStuckTrafficAtDrain(t *testing.T) {
	a, _ := newTestAuditor(t)
	a.MessageQueued(1, 0, 5, 100)
	a.PacketInjected(1, 0, 100, 100)
	// Engine drained but the packet never arrived: a deadlock witness.
	a.Finish(true)
	wantViolation(t, a, "stuck")
}

func TestDetectsLeakedCreditsAtDrain(t *testing.T) {
	a, _ := newTestAuditor(t)
	a.LinkAdded(3, routing.Local, 4, 8192)
	a.BufferReserve(3, 2, 512, 512)
	a.Finish(true)
	wantViolation(t, a, "after drain")
}

func TestCleanRunReportsNoError(t *testing.T) {
	a, _ := newTestAuditor(t)
	a.LinkAdded(0, routing.Terminal, 1, 8192)
	a.MessageQueued(1, 0, 5, 100)
	a.EventExecuted(10)
	a.BufferReserve(0, 0, 100, 100)
	a.PacketInjected(1, 0, 100, 100)
	a.BufferRelease(0, 0, 100, 0)
	a.PacketDelivered(1, 5, 100, 100)
	a.Finish(true)
	if err := a.Err(); err != nil {
		t.Fatalf("clean sequence flagged: %v", err)
	}
	s := a.Summary()
	if s.Stats.Messages != 1 || s.Stats.PacketsDelivered != 1 {
		t.Fatalf("stats: %+v", s.Stats)
	}
}
