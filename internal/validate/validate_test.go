package validate

import (
	"testing"

	"dragonfly/internal/network"
	"dragonfly/internal/routing"
	"dragonfly/internal/topology"
)

func TestPingPongMatchesAnalyticModel(t *testing.T) {
	// The packet-level simulator must agree with its own zero-load
	// store-and-forward model essentially exactly — far inside the <8%
	// band the CODES validation study reported against real hardware.
	res, err := PingPong(topology.Mini(), network.DefaultParams(), 1000, 50, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Samples) != 50 {
		t.Fatalf("samples = %d", len(res.Samples))
	}
	if res.MaxRelError > 0.001 {
		t.Fatalf("max relative error %.6f exceeds 0.1%%", res.MaxRelError)
	}
	for _, s := range res.Samples {
		if s.Routers < 1 || s.Routers > 6 {
			t.Fatalf("sample %d->%d traversed %d routers", s.Src, s.Dst, s.Routers)
		}
		if s.Measured <= 0 || s.Predicted <= 0 {
			t.Fatalf("sample %d->%d has nonpositive times", s.Src, s.Dst)
		}
	}
}

func TestPingPongThetaSample(t *testing.T) {
	if testing.Short() {
		t.Skip("full-machine validation skipped in -short mode")
	}
	res, err := PingPong(topology.Theta(), network.DefaultParams(), 4096, 20, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxRelError > 0.001 {
		t.Fatalf("Theta ping error %.6f exceeds 0.1%%", res.MaxRelError)
	}
}

func TestPingPongRejectsMultiPacketPayload(t *testing.T) {
	p := network.DefaultParams()
	if _, err := PingPong(topology.Mini(), p, p.PacketBytes+1, 1, 1); err == nil {
		t.Fatal("accepted multi-packet ping payload")
	}
	if _, err := PingPong(topology.Mini(), p, 100, 0, 1); err == nil {
		t.Fatal("accepted zero pairs")
	}
}

func TestBisectionSanity(t *testing.T) {
	res, err := Bisection(topology.Mini(), network.DefaultParams(), routing.Minimal, 256*1024, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Pairs != 32 {
		t.Fatalf("pairs = %d, want 32 (half of 64 nodes)", res.Pairs)
	}
	if res.Utilization <= 0 || res.Utilization > 1 {
		t.Fatalf("utilization %.3f outside (0,1]", res.Utilization)
	}
	// The pairing crosses groups for most pairs, so global links gate the
	// run well below the injection ceiling, but the fabric must still move
	// a nontrivial fraction.
	if res.Utilization < 0.02 {
		t.Fatalf("utilization %.3f implausibly low", res.Utilization)
	}
	if res.AchievedBandwidth > res.InjectionBound {
		t.Fatalf("achieved %.3g exceeds the injection bound %.3g", res.AchievedBandwidth, res.InjectionBound)
	}
}

func TestBisectionAdaptiveNotWorseAtScale(t *testing.T) {
	// Adaptive routing exists to spread exactly this kind of load; it must
	// not collapse relative to minimal routing.
	min, err := Bisection(topology.Mini(), network.DefaultParams(), routing.Minimal, 128*1024, 3)
	if err != nil {
		t.Fatal(err)
	}
	adp, err := Bisection(topology.Mini(), network.DefaultParams(), routing.Adaptive, 128*1024, 3)
	if err != nil {
		t.Fatal(err)
	}
	if adp.AchievedBandwidth < 0.5*min.AchievedBandwidth {
		t.Fatalf("adaptive bisection %.3g collapsed vs minimal %.3g",
			adp.AchievedBandwidth, min.AchievedBandwidth)
	}
}

func TestBisectionRejectsBadInput(t *testing.T) {
	if _, err := Bisection(topology.Mini(), network.DefaultParams(), routing.Minimal, 0, 1); err == nil {
		t.Fatal("accepted zero payload")
	}
	bad := topology.Config{}
	if _, err := Bisection(bad, network.DefaultParams(), routing.Minimal, 1024, 1); err == nil {
		t.Fatal("accepted invalid topology")
	}
}
