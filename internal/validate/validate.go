// Package validate reproduces the methodology of the CODES/Theta validation
// study the paper relies on (Sec. II, [14]): ping-pong latency tests and a
// bisection-pairing bandwidth test. The original study compared simulation
// against the physical machine and found <8% deviation; having no physical
// Theta, this package compares the simulator against the analytic zero-load
// model implied by its own configured bandwidths and latencies (DESIGN.md
// substitution #3) and reports link-level bandwidth utilization under a
// bisection load.
package validate

import (
	"fmt"
	"math"

	"dragonfly/internal/des"
	"dragonfly/internal/network"
	"dragonfly/internal/routing"
	"dragonfly/internal/topology"
)

// PingSample is one ping measurement: a single-packet message between two
// nodes, compared against the analytic store-and-forward model for the path
// the packet actually took.
type PingSample struct {
	Src, Dst  topology.NodeID
	Routers   int // routers traversed (the paper's hop metric)
	Measured  des.Time
	Predicted des.Time
	RelError  float64
}

// PingPongResult aggregates a ping sweep.
type PingPongResult struct {
	Samples     []PingSample
	MaxRelError float64
}

// PingPong sends one single-packet message between `pairs` random node
// pairs on an idle machine under minimal routing and compares each measured
// delivery time with the analytic zero-load prediction.
func PingPong(machine topology.Machine, params network.Params, bytes, pairs int, seed int64) (*PingPongResult, error) {
	if bytes < 1 || bytes > params.PacketBytes {
		return nil, fmt.Errorf("validate: ping payload %d must be in [1, %d] (single packet)", bytes, params.PacketBytes)
	}
	if pairs < 1 {
		return nil, fmt.Errorf("validate: need >= 1 pair")
	}
	topo, err := machine.Build()
	if err != nil {
		return nil, err
	}
	rng := des.NewRNG(seed, "validate/pingpong")
	res := &PingPongResult{}
	for i := 0; i < pairs; i++ {
		src := topology.NodeID(rng.Intn(topo.NumNodes()))
		dst := topology.NodeID(rng.Intn(topo.NumNodes()))
		if src == dst {
			dst = topology.NodeID((int(dst) + 1) % topo.NumNodes())
		}
		sample, err := pingOnce(topo, params, src, dst, bytes, seed+int64(i))
		if err != nil {
			return nil, err
		}
		res.Samples = append(res.Samples, *sample)
		if sample.RelError > res.MaxRelError {
			res.MaxRelError = sample.RelError
		}
	}
	return res, nil
}

// pingOnce runs one message on a fresh idle fabric.
func pingOnce(topo topology.Interconnect, params network.Params, src, dst topology.NodeID, bytes int, seed int64) (*PingSample, error) {
	eng := des.New()
	fab, err := network.New(eng, topo, params, routing.Minimal, des.NewRNG(seed, "validate/fabric"))
	if err != nil {
		return nil, err
	}
	var deliveredAt des.Time = -1
	fab.Send(src, dst, int64(bytes), nil, func(at des.Time) { deliveredAt = at })
	eng.Run()
	if deliveredAt < 0 {
		return nil, fmt.Errorf("validate: ping %d->%d never delivered", src, dst)
	}

	// Reconstruct the path class counts from the fabric's own hop metric:
	// routers traversed r and (by group membership) global hops g give
	// local hops r-1-g on a minimal path.
	avg, pkts := fab.AvgHops(dst)
	if pkts != 1 {
		return nil, fmt.Errorf("validate: expected 1 packet, saw %d", pkts)
	}
	routers := int(avg)
	globals := 0
	if topo.GroupOfNode(src) != topo.GroupOfNode(dst) {
		globals = 1
	}
	locals := routers - 1 - globals
	if locals < 0 {
		return nil, fmt.Errorf("validate: inconsistent hop reconstruction (r=%d g=%d)", routers, globals)
	}
	predicted := analyticOneWay(params, bytes, locals, globals)
	relErr := math.Abs(float64(deliveredAt-predicted)) / float64(predicted)
	return &PingSample{
		Src: src, Dst: dst, Routers: routers,
		Measured: deliveredAt, Predicted: predicted, RelError: relErr,
	}, nil
}

// analyticOneWay is the zero-load store-and-forward model of a single
// packet: serialization plus wire latency per traversed channel —
// injection, each router-to-router hop, and ejection.
func analyticOneWay(p network.Params, bytes, locals, globals int) des.Time {
	ser := func(bw float64) des.Time {
		ns := float64(bytes) * 1e9 / bw
		t := des.Time(ns)
		if float64(t) < ns {
			t++
		}
		if t < 1 {
			t = 1
		}
		return t
	}
	total := 2 * (ser(p.TerminalBandwidth) + p.TerminalLatency) // inject + eject
	total += des.Time(locals) * (ser(p.LocalBandwidth) + p.LocalLatency)
	total += des.Time(globals) * (ser(p.GlobalBandwidth) + p.GlobalLatency)
	return total
}

// BisectionResult reports the bisection-pairing bandwidth test.
type BisectionResult struct {
	Pairs        int
	BytesPerPair int64
	Makespan     des.Time
	// AchievedBandwidth is aggregate delivered bytes per second.
	AchievedBandwidth float64
	// InjectionBound is the aggregate terminal-bandwidth ceiling.
	InjectionBound float64
	// Utilization is achieved / injection bound, in (0, 1].
	Utilization float64
}

// Bisection pairs node i of the machine's first half with node i of the
// second half (the CODES validation workload); every pair exchanges
// `bytesPerPair` in both directions simultaneously, and the aggregate
// delivered bandwidth is measured against the injection ceiling.
func Bisection(machine topology.Machine, params network.Params, mech routing.Mechanism, bytesPerPair int64, seed int64) (*BisectionResult, error) {
	if bytesPerPair < 1 {
		return nil, fmt.Errorf("validate: bytesPerPair must be >= 1")
	}
	topo, err := machine.Build()
	if err != nil {
		return nil, err
	}
	eng := des.New()
	fab, err := network.New(eng, topo, params, mech, des.NewRNG(seed, "validate/bisect"))
	if err != nil {
		return nil, err
	}
	half := topo.NumNodes() / 2
	delivered := 0
	for i := 0; i < half; i++ {
		a := topology.NodeID(i)
		b := topology.NodeID(half + i)
		fab.Send(a, b, bytesPerPair, nil, func(des.Time) { delivered++ })
		fab.Send(b, a, bytesPerPair, nil, func(des.Time) { delivered++ })
	}
	makespan := eng.Run()
	if delivered != 2*half {
		return nil, fmt.Errorf("validate: delivered %d/%d bisection messages", delivered, 2*half)
	}
	total := float64(2*half) * float64(bytesPerPair)
	achieved := total / (float64(makespan) / 1e9)
	bound := float64(2*half) * params.TerminalBandwidth
	return &BisectionResult{
		Pairs:             half,
		BytesPerPair:      bytesPerPair,
		Makespan:          makespan,
		AchievedBandwidth: achieved,
		InjectionBound:    bound,
		Utilization:       achieved / bound,
	}, nil
}
