package network

import (
	"fmt"
	"strings"

	"dragonfly/internal/des"
	"dragonfly/internal/routing"
	"dragonfly/internal/topology"
)

// message is an in-flight transfer between two nodes. Packets carry a
// pointer to it, so reassembly is a byte count, not a lookup.
type message struct {
	id          uint64
	src, dst    topology.NodeID
	total       int64
	remaining   int64 // bytes not yet packetized at the source NIC
	injected    int64 // bytes fully serialized onto the terminal link
	received    int64 // bytes delivered at the destination NIC
	dropped     int64 // bytes lost to dead equipment (faulted fabrics only)
	onInjected  func(des.Time)
	onDelivered func(des.Time)
}

// nic is a node's network interface: an injection FIFO feeding the node's
// terminal link, and the instant-drain receive side. The send queue is
// head-indexed for the same no-realloc reason as inputQueue.
type nic struct {
	f        *Fabric
	node     topology.NodeID
	sendq    []*message
	sendHead int
}

func (n *nic) queued() int { return len(n.sendq) - n.sendHead }

func (n *nic) enqueueMsg(m *message) {
	if n.sendHead > 0 && len(n.sendq) == cap(n.sendq) && n.sendHead*2 >= len(n.sendq) {
		c := copy(n.sendq, n.sendq[n.sendHead:])
		for i := c; i < len(n.sendq); i++ {
			n.sendq[i] = nil
		}
		n.sendq = n.sendq[:c]
		n.sendHead = 0
	}
	n.sendq = append(n.sendq, m)
}

func (n *nic) dequeueMsg() {
	n.sendq[n.sendHead] = nil
	n.sendHead++
	if n.sendHead == len(n.sendq) {
		n.sendq = n.sendq[:0]
		n.sendHead = 0
	}
}

// fillInjection synthesizes at most one pending injection request for the
// terminal link. The route is computed here, per packet, so adaptive
// routing senses congestion at injection time (UGAL-L). On a faulted fabric
// a chunk with no live route is discarded at the NIC (accounted as dropped,
// with the first routing error recorded for the run to surface) and the
// loop moves on, so an unreachable destination drains instead of wedging
// the send queue.
func (n *nic) fillInjection(l *link) {
	for len(l.reqs) == 0 && n.queued() > 0 {
		msg := n.sendq[n.sendHead]
		bytes := int(msg.remaining)
		if bytes > n.f.params.PacketBytes {
			bytes = n.f.params.PacketBytes
		}
		msg.remaining -= int64(bytes)
		if msg.remaining == 0 {
			n.dequeueMsg()
		}
		path, err := n.f.chooser.TryRoute(msg.src, msg.dst)
		if err != nil {
			n.f.noteRouteError(err)
			n.f.dropBytes(msg, bytes, false)
			continue
		}
		pkt := n.f.newPacket(msg, bytes, path)
		if n.f.obs != nil {
			n.f.obs.RouteComputed(msg.src, msg.dst, pkt.path)
		}
		l.enqueue(request{pkt: pkt, vc: 0, in: nil})
	}
}

// injected is called when a packet has fully left the NIC.
func (n *nic) injected(pkt *packet, at des.Time) {
	msg := pkt.msg
	msg.injected += int64(pkt.bytes)
	if n.f.obs != nil {
		n.f.obs.PacketInjected(msg.id, msg.src, pkt.bytes, msg.injected)
	}
	if msg.injected == msg.total && msg.onInjected != nil {
		msg.onInjected(at)
	}
}

// Fabric is the wired machine: every router, NIC, and directed channel,
// driven by one DES engine. It implements routing.Congestion so the
// adaptive policy can sense its own output backlogs.
type Fabric struct {
	eng    *des.Engine
	topo   topology.Interconnect
	params Params

	chooser *routing.Chooser
	// fb is the installed routing policy's learning hook (nil for the
	// built-in min/adp policies): link saturation onsets feed back into
	// the policy's congestion model. Resolved once at construction, so
	// the per-event cost on non-learning policies is one nil check.
	fb  routing.Feedback
	obs Observer // nil unless an auditor is attached

	links   []*link
	nics    []*nic
	termIn  []*link // node -> router, indexed by node
	termOut []*link // router -> node, indexed by node

	// Router-to-router channel lookup, the per-hop switch operation, in one
	// of two representations (see pairLinks). Dense (small machines): the
	// parallel links from router a to router b are
	// linkFlat[linkOff[a*numRouters+b] : linkOff[a*numRouters+b+1]] — a
	// dense offset table replaced the former map[int64][]*link (no hashing,
	// no per-bucket slice headers on the hot path), but its O(routers^2)
	// offsets are ~1.6 GB at 20k routers. Compact (above
	// topology.DenseTableLimit, or Params.Route.CompactTables): group
	// isomorphism collapses the local index to one shared rpg x rpg slot
	// table (localSlot) over per-group link blocks (localLinks), and global
	// links live in per-router runs (globalOff/globalTo/globalLinks, grouped
	// by destination, creation order preserved within a run so pickLink's
	// first-wins tie break matches the dense table exactly). Memory is
	// O(routersPerGroup^2 + links). linkOff non-nil selects dense.
	numRouters int
	linkOff    []int32
	linkFlat   []*link

	rpg           int     // routers per group (compact index only)
	localPerGroup int     // directed local links per group
	localSlot     []int32 // (li*rpg+lj) -> block slot, -1 when not adjacent
	localLinks    []*link // numGroups x localPerGroup, group-major blocks
	globalOff     []int32 // per-router offsets into globalTo/globalLinks
	globalTo      []topology.RouterID
	globalLinks   []*link

	msgSeq uint64

	// Faulted-fabric accounting: packets/bytes discarded on dead equipment,
	// and the first routing failure (ErrUnreachable) seen at injection —
	// surfaced by core.Run after the run drains. All zero on a healthy
	// fabric.
	droppedPackets int64
	droppedBytes   int64
	routeErr       error

	// healthLog is a ring of the most recent dynamic health transitions
	// (fault/repair events), so a tripped watchdog can report what the
	// fabric's health looked like when traffic stopped moving — a stall
	// under flapping is diagnosable from the error alone.
	healthLog [healthLogSize]healthLogEntry
	healthN   int // total events recorded; the ring holds the last healthLogSize

	// Free lists, recycled at delivery (packets) and on credit arrival
	// (tokens). Each fabric is driven by one sequential engine owned by one
	// sweep worker, so the lists need no locking; Params.NoPacketPool turns
	// recycling off for the pooling-equivalence tests.
	pktFree *packet
	crFree  *creditReturn

	// per-destination-node hop accounting for the paper's avg-hops metric
	hopSum   []int64
	hopCount []int64
}

// pairLinks returns the parallel directed channels from one router to
// another (empty when the pair is not adjacent), identical in content and
// order under both index representations.
func (f *Fabric) pairLinks(from, to topology.RouterID) []*link {
	if f.linkOff != nil {
		k := int(from)*f.numRouters + int(to)
		return f.linkFlat[f.linkOff[k]:f.linkOff[k+1]]
	}
	ga, gb := int(from)/f.rpg, int(to)/f.rpg
	if ga == gb {
		s := f.localSlot[(int(from)-ga*f.rpg)*f.rpg+int(to)-gb*f.rpg]
		if s < 0 {
			return nil
		}
		base := ga * f.localPerGroup
		return f.localLinks[base+int(s) : base+int(s)+1]
	}
	// A router's global runs are its handful of ports: a linear scan beats
	// any index small enough to keep.
	lo, hi := int(f.globalOff[from]), int(f.globalOff[from+1])
	for i := lo; i < hi; i++ {
		if f.globalTo[i] == to {
			j := i + 1
			for j < hi && f.globalTo[j] == to {
				j++
			}
			return f.globalLinks[i:j]
		}
	}
	return nil
}

// newPacket takes a packet from the free list (or allocates one) and
// initializes it for a fresh injection.
func (f *Fabric) newPacket(msg *message, bytes int, path routing.Path) *packet {
	p := f.pktFree
	if p == nil {
		p = &packet{f: f}
	} else {
		f.pktFree = p.next
	}
	p.msg, p.bytes, p.path, p.hop = msg, bytes, path, 0
	p.arrLink, p.arrVC, p.next = nil, 0, nil
	return p
}

// freePacket recycles a delivered packet: its route's hop storage goes back
// to the chooser's arena and the struct to the free list.
func (f *Fabric) freePacket(p *packet) {
	f.chooser.Release(p.path)
	p.path = routing.Path{}
	p.msg, p.arrLink = nil, nil
	if f.params.NoPacketPool {
		return
	}
	p.next = f.pktFree
	f.pktFree = p
}

// newCredit builds the event argument for one upstream buffer release.
func (f *Fabric) newCredit(l *link, vc, n int) *creditReturn {
	c := f.crFree
	if c == nil {
		c = &creditReturn{}
	} else {
		f.crFree = c.next
	}
	c.l, c.vc, c.n, c.next = l, int32(vc), int32(n), nil
	return c
}

func (f *Fabric) freeCredit(c *creditReturn) {
	c.l = nil
	if f.params.NoPacketPool {
		return
	}
	c.next = f.crFree
	f.crFree = c
}

// New builds and wires a fabric on the given engine.
func New(eng *des.Engine, topo topology.Interconnect, p Params, mech routing.Mechanism, rng *des.RNG) (*Fabric, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	f := &Fabric{
		eng:        eng,
		topo:       topo,
		params:     p,
		numRouters: topo.NumRouters(),
		hopSum:     make([]int64, topo.NumNodes()),
		hopCount:   make([]int64, topo.NumNodes()),
	}
	f.chooser = routing.NewChooserOpts(topo, mech, rng.Stream("route"), f, p.Route)
	f.fb = f.chooser.Feedback()

	// Terminal links, both directions, and NICs.
	f.nics = make([]*nic, topo.NumNodes())
	f.termIn = make([]*link, topo.NumNodes())
	f.termOut = make([]*link, topo.NumNodes())
	for n := 0; n < topo.NumNodes(); n++ {
		node := topology.NodeID(n)
		r := topo.RouterOfNode(node)
		in := newLink(f, routing.Terminal, 1, p.TerminalVCBuffer, p.TerminalBandwidth, p.TerminalLatency)
		in.from, in.to, in.node = r, r, node
		out := newLink(f, routing.Terminal, 1, p.TerminalVCBuffer, p.TerminalBandwidth, p.TerminalLatency)
		out.from, out.to, out.node, out.eject = r, r, node, true
		f.termIn[n], f.termOut[n] = in, out
		f.nics[n] = &nic{f: f, node: node}
	}

	// Router-to-router links: the compact index above topology's dense limit
	// (or when forced), the dense offset table otherwise. Link creation
	// order — locals per router in LocalNeighbors order, then globals in
	// GlobalConns order — is identical in both, so link IDs and every
	// downstream enumeration (LinkStats, RefreshHealth) are byte-identical.
	conns := topo.GlobalConns()
	compact := p.Route.CompactTables || f.numRouters > topology.DenseTableLimit
	var tmpl *topology.LocalTemplate
	if compact {
		// The compact local index needs group isomorphism; a machine whose
		// groups deviate falls back to the dense table (correct, just pays
		// the quadratic memory bill).
		tmpl, _ = topology.NewLocalTemplate(topo)
	}
	if tmpl != nil {
		f.buildCompactIndex(topo, p, tmpl, conns)
	} else {
		f.buildDenseIndex(topo, p, conns)
	}
	f.RefreshHealth()
	return f, nil
}

// buildDenseIndex lays the router-to-router links into the dense offset
// table: count each ordered pair's parallel channels, prefix-sum into
// offsets, then create the links and drop each into its pair's slot.
func (f *Fabric) buildDenseIndex(topo topology.Interconnect, p Params, conns []topology.GlobalConn) {
	nR := f.numRouters
	counts := make([]int32, nR*nR+1)
	pairIdx := func(from, to topology.RouterID) int { return int(from)*nR + int(to) }
	for r := 0; r < nR; r++ {
		from := topology.RouterID(r)
		for _, to := range topo.LocalNeighbors(from) {
			counts[pairIdx(from, to)+1]++
		}
	}
	for _, c := range conns {
		counts[pairIdx(c.A, c.B)+1]++
		counts[pairIdx(c.B, c.A)+1]++
	}
	for i := 1; i < len(counts); i++ {
		counts[i] += counts[i-1]
	}
	f.linkOff = counts
	f.linkFlat = make([]*link, counts[len(counts)-1])
	cursor := make([]int32, nR*nR)
	place := func(l *link) {
		k := pairIdx(l.from, l.to)
		f.linkFlat[f.linkOff[k]+cursor[k]] = l
		cursor[k]++
	}

	// Local links: one directed link per ordered neighbor pair.
	for r := 0; r < nR; r++ {
		from := topology.RouterID(r)
		for _, to := range topo.LocalNeighbors(from) {
			l := newLink(f, routing.Local, routing.NumLocalVC, p.LocalVCBuffer, p.LocalBandwidth, p.LocalLatency)
			l.from, l.to = from, to
			place(l)
		}
	}
	f.placeGlobals(p, conns, place)
}

// buildCompactIndex lays the same links (same creation order, same IDs) into
// the compressed index: one shared rpg x rpg slot table over per-group local
// blocks, and per-router destination-grouped global runs.
func (f *Fabric) buildCompactIndex(topo topology.Interconnect, p Params, tmpl *topology.LocalTemplate, conns []topology.GlobalConn) {
	nR := f.numRouters
	rpg := tmpl.RPG
	f.rpg = rpg
	numGroups := nR / rpg
	f.localPerGroup = len(tmpl.NeighborFlat)
	f.localSlot = make([]int32, rpg*rpg)
	for i := range f.localSlot {
		f.localSlot[i] = -1
	}
	slot := int32(0)
	for li := 0; li < rpg; li++ {
		for _, lj := range tmpl.Neighbors(li) {
			f.localSlot[li*rpg+int(lj)] = slot
			slot++
		}
	}

	// Local links in creation order land exactly at their block slots: the
	// per-group creation sequence (router-major, LocalNeighbors order) is
	// the slot enumeration above, shifted by the group's block base.
	f.localLinks = make([]*link, numGroups*f.localPerGroup)
	idx := 0
	for r := 0; r < nR; r++ {
		from := topology.RouterID(r)
		for _, to := range topo.LocalNeighbors(from) {
			l := newLink(f, routing.Local, routing.NumLocalVC, p.LocalVCBuffer, p.LocalBandwidth, p.LocalLatency)
			l.from, l.to = from, to
			f.localLinks[idx] = l
			idx++
		}
	}

	// Global links: count per source router, prefix-sum, create in conns
	// order, then group each router's entries into contiguous per-destination
	// runs. The insertion sort is stable, so parallel links keep their conns
	// order within a run — the dense table's pair order, which pickLink's
	// first-wins tie break depends on.
	gcnt := make([]int32, nR+1)
	for _, c := range conns {
		gcnt[int(c.A)+1]++
		gcnt[int(c.B)+1]++
	}
	for i := 1; i <= nR; i++ {
		gcnt[i] += gcnt[i-1]
	}
	f.globalOff = gcnt
	f.globalTo = make([]topology.RouterID, gcnt[nR])
	f.globalLinks = make([]*link, gcnt[nR])
	cursor := make([]int32, nR)
	f.placeGlobals(p, conns, func(l *link) {
		r := int(l.from)
		i := f.globalOff[r] + cursor[r]
		cursor[r]++
		f.globalTo[i] = l.to
		f.globalLinks[i] = l
	})
	for r := 0; r < nR; r++ {
		lo, hi := int(f.globalOff[r]), int(f.globalOff[r+1])
		for i := lo + 1; i < hi; i++ {
			to, lk := f.globalTo[i], f.globalLinks[i]
			j := i
			for j > lo && f.globalTo[j-1] > to {
				f.globalTo[j], f.globalLinks[j] = f.globalTo[j-1], f.globalLinks[j-1]
				j--
			}
			f.globalTo[j], f.globalLinks[j] = to, lk
		}
	}
}

// placeGlobals creates the global links — two directed links per
// bidirectional connection, parallel links between the same router pair kept
// distinct — handing each to the index's placement function. Each direction
// remembers its source-side global port, the identity the health view
// addresses global channels by.
func (f *Fabric) placeGlobals(p Params, conns []topology.GlobalConn, place func(*link)) {
	for _, c := range conns {
		for _, dir := range [2]struct {
			from, to topology.RouterID
			port     int
		}{{c.A, c.B, c.APort}, {c.B, c.A, c.BPort}} {
			l := newLink(f, routing.Global, routing.NumGlobalVC, p.GlobalVCBuffer, p.GlobalBandwidth, p.GlobalLatency)
			l.from, l.to, l.gport = dir.from, dir.to, int32(dir.port)
			place(l)
		}
	}
}

// RefreshHealth re-reads Params.Route.Health and brings every channel's
// down state in line with it: newly failed links drain their queued
// requests as drops, repaired links wake their transmitters. The core layer
// calls it after applying each dynamic fault event (after rebuilding the
// routing tables); with no health view installed it is a no-op, so healthy
// runs are untouched.
func (f *Fabric) RefreshHealth() {
	h := f.params.Route.Health
	if h == nil {
		return
	}
	for _, l := range f.links {
		var up bool
		switch {
		case l.kind == routing.Terminal:
			// Terminal wires share their router's fate; routing rejects
			// traffic from/to dead routers, so no separate down state.
			continue
		case l.kind == routing.Local:
			up = h.LocalLinkUp(l.from, l.to)
		default:
			up = h.GlobalLinkUp(l.from, int(l.gport))
		}
		switch {
		case !up && !l.down:
			f.failLink(l)
		case up && l.down:
			l.down = false
			l.kick()
		}
	}
}

// ApplyHealthChange is the one call a dynamic fault event needs after
// mutating the installed health view: routing tables rebuild first (new
// traffic avoids the dead equipment), then the channels sync (queued traffic
// on newly dead links drops, repaired links wake).
func (f *Fabric) ApplyHealthChange() {
	f.chooser.RebuildHealth()
	f.RefreshHealth()
}

// healthLogSize bounds the watchdog's health-transition history. Eight
// entries cover several flap cycles without bloating the error text.
const healthLogSize = 8

type healthLogEntry struct {
	at   des.Time
	desc string
}

// RecordHealthEvent notes one dynamic health transition (the fault layer's
// rendering of a fail/repair event) for the watchdog diagnostic.
func (f *Fabric) RecordHealthEvent(at des.Time, desc string) {
	f.healthLog[f.healthN%healthLogSize] = healthLogEntry{at: at, desc: desc}
	f.healthN++
}

// failLink marks a channel dead and discards its queued transmission
// requests: each queued packet's upstream buffer is freed and the bytes are
// accounted as dropped (packets already on the wire drop at arrival; see
// arrive). Freed input-queue heads immediately request an alternate output,
// which can no longer pick this channel.
func (f *Fabric) failLink(l *link) {
	l.down = true
	reqs := l.reqs
	l.reqs = nil
	l.pending = 0
	for _, r := range reqs {
		if r.in == nil {
			// An injection request: the chunk never left the NIC.
			msg := r.pkt.msg
			bytes := r.pkt.bytes
			f.freePacket(r.pkt)
			f.dropBytes(msg, bytes, false)
			continue
		}
		q := r.in
		q.link.release(q.vc, r.pkt.bytes)
		q.pop()
		f.dropPacket(r.pkt)
		if q.len() > 0 {
			f.requestNext(q)
		}
	}
}

// DropStats reports the packets and bytes discarded on dead equipment; both
// are zero on a healthy fabric.
func (f *Fabric) DropStats() (packets, bytes int64) {
	return f.droppedPackets, f.droppedBytes
}

// RouteError returns the first injection-time routing failure of the run
// (wrapping routing.ErrUnreachable), or nil. Traffic between disconnected
// partitions is dropped and accounted, so the run still drains; this error
// is how the condition surfaces to the caller.
func (f *Fabric) RouteError() error { return f.routeErr }

// NodeCount returns the number of nodes the fabric serves.
func (f *Fabric) NodeCount() int { return f.topo.NumNodes() }

// Engine returns the DES engine driving the fabric.
func (f *Fabric) Engine() *des.Engine { return f.eng }

// Topology returns the wired machine.
func (f *Fabric) Topology() topology.Interconnect { return f.topo }

// Params returns the channel parameters.
func (f *Fabric) Params() Params { return f.params }

// Send queues a message for injection at src's NIC. onInjected fires when
// the last byte leaves the NIC (the eager-send completion point of the MPI
// replay layer); onDelivered fires when the last byte reaches dst's NIC.
// Either callback may be nil. Zero-length messages are modeled as one byte,
// matching how real MPI stacks still exchange a header.
func (f *Fabric) Send(src, dst topology.NodeID, bytes int64, onInjected, onDelivered func(des.Time)) {
	if src == dst {
		// Loopback: no network involvement; complete after a NIC turnaround.
		at := f.eng.Now() + f.params.TerminalLatency
		f.eng.At(at, func() {
			if onInjected != nil {
				onInjected(at)
			}
			if onDelivered != nil {
				onDelivered(at)
			}
		})
		return
	}
	if bytes < 1 {
		bytes = 1
	}
	f.msgSeq++
	msg := &message{
		id: f.msgSeq, src: src, dst: dst,
		total: bytes, remaining: bytes,
		onInjected: onInjected, onDelivered: onDelivered,
	}
	if f.obs != nil {
		f.obs.MessageQueued(msg.id, src, dst, bytes)
	}
	n := f.nics[src]
	n.enqueueMsg(msg)
	f.termIn[src].kick()
}

// noteRouteError records the first routing failure of the run; core.Run
// surfaces it after the engine drains.
func (f *Fabric) noteRouteError(err error) {
	if f.routeErr == nil {
		f.routeErr = err
	}
}

// dropBytes accounts the loss of part of a message on the faulted fabric
// and closes the message when every byte is either delivered or dropped.
// injected distinguishes a packet lost in the network from a chunk the NIC
// discarded before injection.
func (f *Fabric) dropBytes(msg *message, bytes int, injected bool) {
	msg.dropped += int64(bytes)
	f.droppedPackets++
	f.droppedBytes += int64(bytes)
	if f.obs != nil {
		f.obs.PacketDropped(msg.id, bytes, msg.dropped, injected)
	}
	f.closeIfDone(msg)
}

// dropPacket discards an in-network packet (its buffer occupancy must
// already be released by the caller) and recycles its storage.
func (f *Fabric) dropPacket(pkt *packet) {
	msg := pkt.msg
	bytes := pkt.bytes
	f.freePacket(pkt)
	f.dropBytes(msg, bytes, true)
}

// closeIfDone fires a message's completion callbacks once every byte is
// accounted for. On a healthy fabric dropped is always zero and delivery
// alone closes the message; a lossy close also completes the send side (the
// NIC will never finish injecting a message it partly discarded), so the
// replay layer's ranks terminate instead of waiting forever.
func (f *Fabric) closeIfDone(msg *message) {
	if msg.received+msg.dropped != msg.total {
		return
	}
	if msg.dropped > 0 && msg.injected < msg.total && msg.onInjected != nil {
		msg.onInjected(f.eng.Now())
	}
	if msg.onDelivered != nil {
		msg.onDelivered(f.eng.Now())
	}
}

// arrive lands a packet at the far end of link l: either the destination
// NIC (ejection), or the next router's input buffer. A packet whose link
// failed while it was on the wire is dropped here.
func (f *Fabric) arrive(l *link, vc int, pkt *packet) {
	if l.down {
		l.release(vc, pkt.bytes)
		f.dropPacket(pkt)
		return
	}
	if l.eject {
		// The NIC drains instantly: free the buffer and account delivery.
		l.release(vc, pkt.bytes)
		f.deliver(pkt)
		return
	}
	if l.kind != routing.Terminal {
		pkt.hop++ // this arrival completed one router-to-router hop
	}
	q := &l.inq[vc]
	q.push(pkt)
	if q.len() == 1 {
		f.requestNext(q)
	}
}

// requestNext routes the head packet of an input queue to its output link.
// On a faulted fabric a head packet whose next hop has no live channel left
// is dropped, and the loop moves to the next head so the queue keeps
// draining.
func (f *Fabric) requestNext(q *inputQueue) {
	for {
		pkt := q.headPkt()
		here := q.link.to
		if pkt.hop >= len(pkt.path.Hops) {
			// Final router: eject toward the destination node.
			out := f.termOut[pkt.msg.dst]
			if out.from != here {
				panic(fmt.Sprintf("network: packet for node %d ejecting at router %d, want %d",
					pkt.msg.dst, here, out.from))
			}
			out.enqueue(request{pkt: pkt, vc: 0, in: q})
			return
		}
		h := pkt.path.Hops[pkt.hop]
		if h.From != here {
			panic(fmt.Sprintf("network: packet at router %d but next hop starts at %d", here, h.From))
		}
		out := f.pickLink(h.From, h.To)
		if out != nil {
			out.enqueue(request{pkt: pkt, vc: int(h.VC), in: q})
			return
		}
		// Dead end mid-route: every channel of the hop failed after the
		// route was computed. Free this router's buffer and drop.
		q.link.release(q.vc, pkt.bytes)
		q.pop()
		f.dropPacket(pkt)
		if q.len() == 0 {
			return
		}
	}
}

// pickLink resolves a hop to a physical channel; among parallel live links
// joining the same router pair it picks the least backlogged. It returns
// nil when every channel of the pair is down (only possible on a faulted
// fabric).
func (f *Fabric) pickLink(from, to topology.RouterID) *link {
	ls := f.pairLinks(from, to)
	switch len(ls) {
	case 0:
		panic(fmt.Sprintf("network: no link %d->%d", from, to))
	case 1:
		if ls[0].down {
			return nil
		}
		return ls[0]
	}
	var best *link
	var bestLoad int64
	for _, l := range ls {
		if l.down {
			continue
		}
		if load := l.load(); best == nil || load < bestLoad {
			best, bestLoad = l, load
		}
	}
	return best
}

// load is the congestion figure of one channel: queued request bytes plus
// reserved receiver-buffer bytes.
func (l *link) load() int64 {
	total := l.pending
	for _, o := range l.occ {
		total += int64(o)
	}
	return total
}

// deliver completes a packet at its destination NIC and accounts hops.
func (f *Fabric) deliver(pkt *packet) {
	msg := pkt.msg
	f.hopSum[msg.dst] += int64(pkt.path.RoutersTraversed())
	f.hopCount[msg.dst]++
	msg.received += int64(pkt.bytes)
	if f.obs != nil {
		f.obs.PacketDelivered(msg.id, msg.dst, pkt.bytes, msg.received)
	}
	f.freePacket(pkt)
	f.closeIfDone(msg)
}

// OutputBacklog implements routing.Congestion: bytes queued or buffered on
// the directed channel(s) from one router to another.
func (f *Fabric) OutputBacklog(from, to topology.RouterID) int64 {
	var total int64
	for _, l := range f.pairLinks(from, to) {
		total += l.load()
	}
	return total
}

// FinishStats closes open saturation intervals at the current time. Call it
// after the engine drains and before reading link statistics.
func (f *Fabric) FinishStats() {
	now := f.eng.Now()
	for _, l := range f.links {
		l.closeStats(now)
	}
}

// LinkStat is the per-channel record behind the paper's traffic and
// saturation figures.
type LinkStat struct {
	Kind    routing.LinkKind
	From    topology.RouterID
	To      topology.RouterID
	Node    topology.NodeID // terminal links only
	Eject   bool            // terminal links only
	Bytes   int64
	Packets int64
	SatTime des.Time
}

// LinkStats snapshots every directed channel.
func (f *Fabric) LinkStats() []LinkStat {
	out := make([]LinkStat, len(f.links))
	for i, l := range f.links {
		out[i] = LinkStat{
			Kind: l.kind, From: l.from, To: l.to,
			Node: l.node, Eject: l.eject,
			Bytes: l.bytesTx, Packets: l.packets, SatTime: l.satTotal,
		}
	}
	return out
}

// AvgHops returns the mean routers-traversed of packets delivered to a
// node, and the packet count; avg is 0 when no packet arrived.
func (f *Fabric) AvgHops(node topology.NodeID) (avg float64, packets int64) {
	c := f.hopCount[node]
	if c == 0 {
		return 0, 0
	}
	return float64(f.hopSum[node]) / float64(c), c
}

// QueuedMessages reports how many messages are still queued at NICs;
// useful for detecting stalls in tests.
func (f *Fabric) QueuedMessages() int {
	n := 0
	for _, nc := range f.nics {
		n += nc.queued()
	}
	return n
}

// WatchdogDiagnostic renders a bounded snapshot of where traffic is stuck,
// for the DES watchdog's trip report: NIC backlog, drop counters, and the
// most congested routers by buffered bytes (queued requests plus reserved
// receiver buffers on their outgoing channels).
func (f *Fabric) WatchdogDiagnostic() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "network: %d messages queued at NICs; %d packets (%d bytes) dropped",
		f.QueuedMessages(), f.droppedPackets, f.droppedBytes)
	occ := make([]int64, f.numRouters)
	for _, l := range f.links {
		if l.kind == routing.Terminal && l.eject {
			continue
		}
		b := l.pending
		for _, o := range l.occ {
			b += int64(o)
		}
		occ[l.from] += b
	}
	const top = 5
	for i := 0; i < top; i++ {
		best, bestOcc := -1, int64(0)
		for r, b := range occ {
			if b > bestOcc {
				best, bestOcc = r, b
			}
		}
		if best < 0 {
			break
		}
		fmt.Fprintf(&sb, "\nnetwork: router %d holds %d buffered bytes", best, bestOcc)
		occ[best] = 0
	}
	if f.healthN > 0 {
		fmt.Fprintf(&sb, "\nnetwork: %d health transitions applied; most recent:", f.healthN)
		start := 0
		if f.healthN > healthLogSize {
			start = f.healthN - healthLogSize
		}
		for i := start; i < f.healthN; i++ {
			e := f.healthLog[i%healthLogSize]
			fmt.Fprintf(&sb, "\nnetwork:   t=%v %s", e.at, e.desc)
		}
	}
	return sb.String()
}
