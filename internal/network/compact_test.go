package network

// Equivalence suite for the compressed router-pair link index: forcing
// Params.Route.CompactTables must change only the fabric's lookup structures
// — same seeds in, identical simulation out, link for link and event for
// event, healthy or faulted.

import (
	"testing"

	"dragonfly/internal/des"
	"dragonfly/internal/faults"
	"dragonfly/internal/routing"
	"dragonfly/internal/topology"
	"dragonfly/internal/topotest"
)

// runTraffic drives a fixed random load through a fresh fabric and returns
// its observable outcome: every link's stats plus the engine's event count
// and final clock.
func runTraffic(t *testing.T, topo topology.Interconnect, p Params) ([]LinkStat, uint64, des.Time) {
	t.Helper()
	eng := des.New()
	f, err := New(eng, topo, p, routing.Adaptive, des.NewRNG(1, "eq"))
	if err != nil {
		t.Fatal(err)
	}
	rng := des.NewRNG(2, "eq-load")
	for m := 0; m < 400; m++ {
		src := topology.NodeID(rng.Intn(topo.NumNodes()))
		dst := topology.NodeID(rng.Intn(topo.NumNodes()))
		f.Send(src, dst, int64(rng.IntnRange(1, 64<<10)), nil, nil)
	}
	eng.Run()
	f.FinishStats()
	return f.LinkStats(), eng.Processed(), eng.Now()
}

func TestCompactIndexIdenticalSimulation(t *testing.T) {
	topotest.EachSmall(t, func(t *testing.T, _ topology.Machine, topo topology.Interconnect) {
		dense := DefaultParams()
		compact := DefaultParams()
		compact.Route.CompactTables = true
		ds, dn, dt := runTraffic(t, topo, dense)
		cs, cn, ct := runTraffic(t, topo, compact)
		if dn != cn || dt != ct {
			t.Fatalf("engine diverged: %d events @ %v dense vs %d @ %v compact", dn, dt, cn, ct)
		}
		if len(ds) != len(cs) {
			t.Fatalf("link count %d dense vs %d compact", len(ds), len(cs))
		}
		for i := range ds {
			if ds[i] != cs[i] {
				t.Fatalf("link %d stats differ: dense %+v, compact %+v", i, ds[i], cs[i])
			}
		}
	})
}

// TestCompactIndexIdenticalSimulationFaulted repeats the equivalence with a
// quarter of the global links and a few locals dead, exercising RefreshHealth
// and the drop paths over the compact index.
func TestCompactIndexIdenticalSimulationFaulted(t *testing.T) {
	topotest.EachSmall(t, func(t *testing.T, _ topology.Machine, topo topology.Interconnect) {
		set, err := faults.Resolve(&faults.Spec{GlobalFrac: 0.25, LocalFrac: 0.05, Seed: 7}, topo)
		if err != nil {
			t.Fatal(err)
		}
		dense := DefaultParams()
		dense.Route.Health = set
		compact := dense
		compact.Route.CompactTables = true
		ds, dn, dt := runTraffic(t, topo, dense)
		cs, cn, ct := runTraffic(t, topo, compact)
		if dn != cn || dt != ct {
			t.Fatalf("engine diverged: %d events @ %v dense vs %d @ %v compact", dn, dt, cn, ct)
		}
		for i := range ds {
			if ds[i] != cs[i] {
				t.Fatalf("link %d stats differ: dense %+v, compact %+v", i, ds[i], cs[i])
			}
		}
	})
}

// TestCompactPairLinksMatchesDense compares the raw lookup on every router
// pair of the mini machines: same links, same order (pickLink's tie break
// depends on the order).
func TestCompactPairLinksMatchesDense(t *testing.T) {
	topotest.EachSmall(t, func(t *testing.T, _ topology.Machine, topo topology.Interconnect) {
		p := DefaultParams()
		cp := DefaultParams()
		cp.Route.CompactTables = true
		df, err := New(des.New(), topo, p, routing.Minimal, des.NewRNG(1, "d"))
		if err != nil {
			t.Fatal(err)
		}
		cf, err := New(des.New(), topo, cp, routing.Minimal, des.NewRNG(1, "c"))
		if err != nil {
			t.Fatal(err)
		}
		if cf.linkOff != nil {
			t.Fatal("CompactTables did not select the compact index")
		}
		nR := topo.NumRouters()
		for a := 0; a < nR; a++ {
			for b := 0; b < nR; b++ {
				dl := df.pairLinks(topology.RouterID(a), topology.RouterID(b))
				cl := cf.pairLinks(topology.RouterID(a), topology.RouterID(b))
				if len(dl) != len(cl) {
					t.Fatalf("pair %d->%d: %d links dense vs %d compact", a, b, len(dl), len(cl))
				}
				for i := range dl {
					// Same creation order means matching links share an ID.
					if dl[i].id != cl[i].id {
						t.Fatalf("pair %d->%d slot %d: link id %d dense vs %d compact",
							a, b, i, dl[i].id, cl[i].id)
					}
				}
			}
		}
	})
}
