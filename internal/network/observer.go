package network

import (
	"dragonfly/internal/routing"
	"dragonfly/internal/topology"
)

// Observer receives the fabric's flow-control and delivery events. It is the
// witness interface of the invariant auditor (package audit): every credit
// movement, route decision, and packet hand-off is reported so an external
// checker can maintain shadow state and cross-check it against the model.
//
// The fabric holds at most one observer; when none is installed every hook
// site reduces to a nil check, so the simulation's hot path is unaffected.
type Observer interface {
	// LinkAdded announces one directed channel and its receiver-side buffer
	// geometry. It is replayed for already-wired links when the observer is
	// installed, so SetObserver may be called after New.
	LinkAdded(linkID int, kind routing.LinkKind, numVC, vcCap int)

	// BufferReserve reports a credit claim: bytes of VC buffer on the link
	// were reserved for an accepted packet. occAfter is the model's occupancy
	// after the claim.
	BufferReserve(linkID, vc, bytes, occAfter int)

	// BufferRelease reports a credit return. occAfter is the model's
	// occupancy after the return.
	BufferRelease(linkID, vc, bytes, occAfter int)

	// RouteComputed reports the path chosen for one packet at injection time.
	RouteComputed(src, dst topology.NodeID, path routing.Path)

	// MessageQueued reports a message entering its source NIC's send queue.
	// Loopback (src == dst) transfers never touch the network and are not
	// reported.
	MessageQueued(msgID uint64, src, dst topology.NodeID, totalBytes int64)

	// PacketInjected reports a packet fully serialized onto the terminal
	// link. injectedBytes is the message's cumulative injected count after
	// this packet.
	PacketInjected(msgID uint64, src topology.NodeID, bytes int, injectedBytes int64)

	// PacketDelivered reports a packet ejected at the destination NIC.
	// receivedBytes is the message's cumulative delivered count after this
	// packet.
	PacketDelivered(msgID uint64, dst topology.NodeID, bytes int, receivedBytes int64)

	// PacketDropped reports bytes discarded on the faulted fabric: a packet
	// lost to a dead link or router, or (injected == false) a chunk the NIC
	// discarded because no live route existed at injection time.
	// droppedBytes is the message's cumulative dropped count after this
	// packet. Healthy-fabric runs never emit it.
	PacketDropped(msgID uint64, bytes int, droppedBytes int64, injected bool)
}

// SetObserver installs (or, with nil, removes) the fabric's observer and
// replays LinkAdded for every existing channel. Install before starting
// traffic: events already in flight are not replayed.
func (f *Fabric) SetObserver(o Observer) {
	f.obs = o
	if o == nil {
		return
	}
	for _, l := range f.links {
		o.LinkAdded(l.id, l.kind, l.numVC, l.vcCap)
	}
}
