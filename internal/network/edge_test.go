package network

import (
	"testing"
	"testing/quick"

	"dragonfly/internal/des"
	"dragonfly/internal/routing"
	"dragonfly/internal/topology"
	"dragonfly/internal/topotest"
)

// TestSingleGroupMachine exercises a dragonfly degenerated to one group:
// no global links exist and every route is intra-group.
func TestSingleGroupMachine(t *testing.T) {
	topo := topology.MustNew(topology.Config{
		Groups: 1, Rows: 4, Cols: 4, NodesPerRouter: 2, ChassisPerCabinet: 2,
	})
	eng := des.New()
	f, err := New(eng, topo, DefaultParams(), routing.Adaptive, des.NewRNG(1, "sg"))
	if err != nil {
		t.Fatal(err)
	}
	rng := des.NewRNG(2, "load")
	delivered := 0
	const msgs = 200
	for i := 0; i < msgs; i++ {
		src := topology.NodeID(rng.Intn(topo.NumNodes()))
		dst := topology.NodeID(rng.Intn(topo.NumNodes()))
		f.Send(src, dst, int64(rng.IntnRange(1, 32<<10)), nil, func(des.Time) { delivered++ })
	}
	eng.Run()
	if delivered != msgs {
		t.Fatalf("delivered %d/%d on single-group machine", delivered, msgs)
	}
	f.FinishStats()
	for _, ls := range f.LinkStats() {
		if ls.Kind == routing.Global && ls.Bytes > 0 {
			t.Fatal("single-group machine carried global traffic")
		}
	}
}

// TestPacketExactlyBufferSize pushes packets that exactly fill one VC
// buffer: the flow control must neither deadlock nor overflow.
func TestPacketExactlyBufferSize(t *testing.T) {
	p := DefaultParams()
	p.PacketBytes = p.LocalVCBuffer // 8 KiB packets, 8 KiB local buffers
	eng := des.New()
	topo := topotest.Mini(t)
	f, err := New(eng, topo, p, routing.Minimal, des.NewRNG(3, "exact"))
	if err != nil {
		t.Fatal(err)
	}
	src := topo.NodeAt(topo.RouterAt(0, 0, 0), 0)
	dst := topo.NodeAt(topo.RouterAt(0, 1, 2), 0)
	done := false
	f.Send(src, dst, 1<<20, nil, func(des.Time) { done = true })
	eng.Run()
	if !done {
		t.Fatal("transfer with packet == buffer size stalled")
	}
}

// TestVCSkippingAvoidsHeadOfLineBlocking verifies that a packet whose VC
// has credit is transmitted even while an earlier-queued request on a
// different VC is blocked. We saturate the ejection path of one node and
// check a bystander flow through the same router keeps moving.
func TestVCSkippingAvoidsHeadOfLineBlocking(t *testing.T) {
	eng := des.New()
	topo := topotest.Mini(t)
	f, err := New(eng, topo, DefaultParams(), routing.Minimal, des.NewRNG(4, "hol"))
	if err != nil {
		t.Fatal(err)
	}
	// Many senders incast into victim (router V), while a bystander flow
	// crosses V's row toward a different router.
	victim := topo.NodeAt(topo.RouterAt(0, 0, 1), 0)
	for g := 0; g < topo.NumGroups(); g++ {
		for c := 0; c < 4; c++ {
			n := topo.NodeAt(topo.RouterAt(g, 1, c), 1)
			if n != victim {
				f.Send(n, victim, 256<<10, nil, nil)
			}
		}
	}
	bystanderDone := des.Time(0)
	src := topo.NodeAt(topo.RouterAt(0, 0, 0), 0)
	dst := topo.NodeAt(topo.RouterAt(0, 0, 2), 0)
	f.Send(src, dst, 64<<10, nil, func(at des.Time) { bystanderDone = at })
	end := eng.Run()
	if bystanderDone == 0 {
		t.Fatal("bystander flow never completed")
	}
	// The bystander must finish well before the full incast drains.
	if bystanderDone > end/2 {
		t.Fatalf("bystander finished at %v of %v: head-of-line blocked", bystanderDone, end)
	}
}

// TestParallelGlobalLinksShareLoad drives heavy traffic between two groups
// and checks that more than one parallel global link carries it.
func TestParallelGlobalLinksShareLoad(t *testing.T) {
	eng := des.New()
	topo := topotest.Mini(t)
	f, err := New(eng, topo, DefaultParams(), routing.Minimal, des.NewRNG(5, "par"))
	if err != nil {
		t.Fatal(err)
	}
	for slot := 0; slot < 2; slot++ {
		for c := 0; c < 4; c++ {
			src := topo.NodeAt(topo.RouterAt(0, 0, c), slot)
			dst := topo.NodeAt(topo.RouterAt(1, 0, c), slot)
			f.Send(src, dst, 512<<10, nil, nil)
		}
	}
	eng.Run()
	f.FinishStats()
	busy := 0
	for _, ls := range f.LinkStats() {
		if ls.Kind == routing.Global && ls.Bytes > 0 &&
			topo.GroupOfRouter(ls.From) == 0 && topo.GroupOfRouter(ls.To) == 1 {
			busy++
		}
	}
	if busy < 2 {
		t.Fatalf("only %d global links carried the group 0->1 load", busy)
	}
}

// Property: for arbitrary message mixes, every byte injected is delivered
// and terminal traffic equals exactly twice the payload (once in, once out).
func TestByteConservationProperty(t *testing.T) {
	topo := topotest.Mini(t)
	f := func(seed int64, sizes []uint16) bool {
		if len(sizes) == 0 {
			return true
		}
		if len(sizes) > 40 {
			sizes = sizes[:40]
		}
		eng := des.New()
		fab, err := New(eng, topo, DefaultParams(), routing.Adaptive, des.NewRNG(seed, "prop"))
		if err != nil {
			return false
		}
		rng := des.NewRNG(seed, "prop/load")
		var payload int64
		delivered := 0
		sent := 0
		for _, sz := range sizes {
			src := topology.NodeID(rng.Intn(topo.NumNodes()))
			dst := topology.NodeID(rng.Intn(topo.NumNodes()))
			if src == dst {
				continue
			}
			bytes := int64(sz) + 1
			payload += bytes
			sent++
			fab.Send(src, dst, bytes, nil, func(des.Time) { delivered++ })
		}
		eng.Run()
		fab.FinishStats()
		if delivered != sent {
			return false
		}
		var term int64
		for _, ls := range fab.LinkStats() {
			if ls.Kind == routing.Terminal {
				term += ls.Bytes
			}
		}
		return term == 2*payload
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestManySmallMessagesOneByte floods one-byte messages; serialization
// rounding must never let time stand still or events explode unboundedly.
func TestManySmallMessagesOneByte(t *testing.T) {
	eng := des.New()
	topo := topotest.Mini(t)
	f, err := New(eng, topo, DefaultParams(), routing.Minimal, des.NewRNG(6, "tiny"))
	if err != nil {
		t.Fatal(err)
	}
	delivered := 0
	for i := 0; i < 500; i++ {
		f.Send(topology.NodeID(i%16), topology.NodeID(16+i%16), 1, nil, func(des.Time) { delivered++ })
	}
	end := eng.Run()
	if delivered != 500 {
		t.Fatalf("delivered %d/500 one-byte messages", delivered)
	}
	if end <= 0 {
		t.Fatal("time did not advance")
	}
}
