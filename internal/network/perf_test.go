package network

import (
	"testing"

	"dragonfly/internal/des"
	"dragonfly/internal/routing"
	"dragonfly/internal/topology"
	"dragonfly/internal/topotest"
)

// TestThetaScaleSmoke drives modest random traffic through the full-size
// Theta fabric to catch wiring or memory problems that Mini cannot expose.
func TestThetaScaleSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("full-machine smoke test skipped in -short mode")
	}
	eng := des.New()
	topo := topotest.Theta(t)
	f, err := New(eng, topo, DefaultParams(), routing.Adaptive, des.NewRNG(1, "theta"))
	if err != nil {
		t.Fatal(err)
	}
	rng := des.NewRNG(2, "load")
	const msgs = 2000
	delivered := 0
	for i := 0; i < msgs; i++ {
		src := topology.NodeID(rng.Intn(topo.NumNodes()))
		dst := topology.NodeID(rng.Intn(topo.NumNodes()))
		f.Send(src, dst, int64(rng.IntnRange(1, 190<<10)), nil, func(des.Time) { delivered++ })
	}
	eng.Run()
	if delivered != msgs {
		t.Fatalf("delivered %d/%d", delivered, msgs)
	}
	t.Logf("events processed: %d, simulated time: %v", eng.Processed(), eng.Now())
}

func BenchmarkFabricRandomTraffic(b *testing.B)     { benchFabric(b, topotest.Mini(b)) }
func BenchmarkFabricRandomTrafficPlus(b *testing.B) { benchFabric(b, topotest.PlusMini(b)) }

func benchFabric(b *testing.B, topo topology.Interconnect) {
	for i := 0; i < b.N; i++ {
		eng := des.New()
		f, err := New(eng, topo, DefaultParams(), routing.Adaptive, des.NewRNG(1, "bench"))
		if err != nil {
			b.Fatal(err)
		}
		rng := des.NewRNG(2, "load")
		for m := 0; m < 500; m++ {
			src := topology.NodeID(rng.Intn(topo.NumNodes()))
			dst := topology.NodeID(rng.Intn(topo.NumNodes()))
			f.Send(src, dst, int64(rng.IntnRange(1, 64<<10)), nil, nil)
		}
		eng.Run()
	}
}
