// Package network is the packet-level dragonfly fabric model — the
// equivalent of the CODES dragonfly network model the paper simulates with.
// It implements virtual cut-through switching at packet granularity with
// credit-based flow control over receiver-side per-VC buffers, per-link
// round-robin arbitration with VC skipping, byte-accurate link
// serialization, and the paper's instrumentation: per-link traffic counters
// and link-saturation clocks, per-destination hop averages, and message
// delivery notifications for the MPI replay layer.
package network

import (
	"errors"

	"dragonfly/internal/des"
	"dragonfly/internal/routing"
)

// GiB expresses the paper's bandwidth figures.
const GiB = 1024 * 1024 * 1024

// Params carries the channel parameters of the machine. Bandwidths are in
// bytes per second; buffer capacities are bytes per virtual channel.
type Params struct {
	PacketBytes int // maximum packet payload (CODES default 4 KiB)

	TerminalBandwidth float64 // node <-> router
	LocalBandwidth    float64 // intra-group router links
	GlobalBandwidth   float64 // inter-group router links

	TerminalLatency des.Time
	LocalLatency    des.Time
	GlobalLatency   des.Time

	TerminalVCBuffer int // "compute node virtual channel" buffer
	LocalVCBuffer    int
	GlobalVCBuffer   int

	// Route tunes secondary routing decisions; the zero value reproduces
	// the paper's setup (nearest gateways, two Valiant candidates).
	Route routing.Options

	// NoPacketPool disables the fabric's packet and credit-token free
	// lists, allocating fresh structs per packet as the pre-pooling code
	// did. Results are identical either way; the knob exists for the
	// pooling equivalence tests.
	NoPacketPool bool
}

// DefaultParams returns the Theta channel parameters recorded in Sec. II of
// the paper: 16 GiB/s terminal, 5.25 GiB/s local, 4.69 GiB/s global links;
// 8 KiB node and local VC buffers, 16 KiB global VC buffers. The latencies
// are the conventional electrical/optical figures used by dragonfly
// simulators (the paper inherits CODES defaults).
func DefaultParams() Params {
	return Params{
		PacketBytes:       4096,
		TerminalBandwidth: 16 * GiB,
		LocalBandwidth:    5.25 * GiB,
		GlobalBandwidth:   4.69 * GiB,
		TerminalLatency:   100 * des.Nanosecond,
		LocalLatency:      100 * des.Nanosecond,
		GlobalLatency:     500 * des.Nanosecond,
		TerminalVCBuffer:  8 * 1024,
		LocalVCBuffer:     8 * 1024,
		GlobalVCBuffer:    16 * 1024,
	}
}

// Validate reports whether the parameters can carry any traffic at all.
func (p Params) Validate() error {
	switch {
	case p.PacketBytes < 1:
		return errors.New("network: PacketBytes must be >= 1")
	case p.TerminalBandwidth <= 0 || p.LocalBandwidth <= 0 || p.GlobalBandwidth <= 0:
		return errors.New("network: bandwidths must be positive")
	case p.TerminalLatency < 0 || p.LocalLatency < 0 || p.GlobalLatency < 0:
		return errors.New("network: latencies must be non-negative")
	case p.TerminalVCBuffer < p.PacketBytes:
		return errors.New("network: terminal VC buffer smaller than a packet")
	case p.LocalVCBuffer < p.PacketBytes:
		return errors.New("network: local VC buffer smaller than a packet")
	case p.GlobalVCBuffer < p.PacketBytes:
		return errors.New("network: global VC buffer smaller than a packet")
	}
	return nil
}

// serializationTime returns how long `bytes` occupy a channel of bandwidth
// `bw` bytes/second, rounded up to a whole nanosecond so zero-length
// transfers still advance time.
func serializationTime(bytes int, bw float64) des.Time {
	ns := float64(bytes) * 1e9 / bw
	t := des.Time(ns)
	if float64(t) < ns {
		t++
	}
	if t < 1 {
		t = 1
	}
	return t
}
