package network

import (
	"dragonfly/internal/des"
	"dragonfly/internal/routing"
	"dragonfly/internal/topology"
)

// packet is one unit of switching: at most Params.PacketBytes of a message.
type packet struct {
	msg   *message
	bytes int
	path  routing.Path
	hop   int // index of the next hop in path.Hops; == len(Hops) means eject
}

// request is a packet (at the head of some input queue, or fresh at a NIC)
// asking to be transmitted over an output link on a given VC.
type request struct {
	pkt *packet
	vc  int
	// in is the input queue currently holding the packet; nil for injection
	// (the packet materializes at the NIC when accepted).
	in *inputQueue
}

// inputQueue is the receiver-side buffer of one (link, VC): packets that
// have fully arrived and wait to be switched onward. Buffer occupancy —
// including in-flight reservations — is tracked by the owning link.
type inputQueue struct {
	link *link
	vc   int
	q    []*packet
}

// link is one directed channel: terminal (node->router), ejection
// (router->node), local, or global. It owns the receiver-side per-VC buffer
// occupancy (credits), the transmitter serialization state, a FIFO request
// queue with VC skipping, and the paper's per-channel statistics.
type link struct {
	f    *Fabric
	id   int
	kind routing.LinkKind
	// from/to are router IDs for Local/Global links. For Terminal links,
	// node is the attached compute node: direction In means node->router
	// (from == to == the router), direction Out means router->node.
	from, to topology.RouterID
	node     topology.NodeID
	eject    bool // terminal link in the router->node direction

	bw      float64
	latency des.Time
	vcCap   int
	numVC   int

	occ       []int // receiver-buffer bytes reserved, per VC
	busyUntil des.Time
	kickAt    des.Time // time of the earliest scheduled kick, -1 if none

	reqs    []request // FIFO with VC skipping
	pending int64     // bytes across queued requests (congestion signal)

	inq []inputQueue // receiver-side queues, one per VC

	// statistics
	bytesTx  int64
	packets  int64
	fullVCs  int
	satSince des.Time
	satTotal des.Time
}

func newLink(f *Fabric, kind routing.LinkKind, numVC, vcCap int, bw float64, lat des.Time) *link {
	l := &link{
		f: f, id: len(f.links), kind: kind,
		bw: bw, latency: lat, vcCap: vcCap, numVC: numVC,
		occ: make([]int, numVC), kickAt: -1,
	}
	l.inq = make([]inputQueue, numVC)
	for v := range l.inq {
		l.inq[v] = inputQueue{link: l, vc: v}
	}
	f.links = append(f.links, l)
	return l
}

// hasCredit reports whether the receiver buffer of vc can accept n bytes.
func (l *link) hasCredit(vc, n int) bool { return l.occ[vc]+n <= l.vcCap }

// vcFull reports the saturation condition of one VC: it cannot accept a
// max-size packet.
func (l *link) vcFull(vc int) bool {
	return l.vcCap-l.occ[vc] < l.f.params.PacketBytes
}

// The link saturation clock (Sec. III-E: the time during which a link "has
// used up all its buffers") integrates the condition "at least one VC
// buffer is exhausted": traffic of that class is blocked on the channel.
// Requiring every VC class to fill simultaneously would undercount, because
// the deadlock-avoidance scheme leaves the higher classes nearly idle.

// reserve claims receiver-buffer space and updates the saturation clock.
func (l *link) reserve(vc, n int) {
	wasFull := l.vcFull(vc)
	l.occ[vc] += n
	if l.f.obs != nil {
		l.f.obs.BufferReserve(l.id, vc, n, l.occ[vc])
	}
	if !wasFull && l.vcFull(vc) {
		if l.fullVCs == 0 {
			l.satSince = l.f.eng.Now()
		}
		l.fullVCs++
	}
}

// release returns receiver-buffer space, closes any saturation interval,
// and kicks the transmitter, which may now have credit.
func (l *link) release(vc, n int) {
	wasFull := l.vcFull(vc)
	l.occ[vc] -= n
	if l.f.obs != nil {
		l.f.obs.BufferRelease(l.id, vc, n, l.occ[vc])
	}
	if l.occ[vc] < 0 {
		panic("network: negative buffer occupancy")
	}
	if wasFull && !l.vcFull(vc) {
		l.fullVCs--
		if l.fullVCs == 0 {
			l.satTotal += l.f.eng.Now() - l.satSince
		}
	}
	l.kick()
}

// enqueue adds a transmission request and kicks the transmitter.
func (l *link) enqueue(r request) {
	l.reqs = append(l.reqs, r)
	l.pending += int64(r.pkt.bytes)
	l.kick()
}

// kick schedules the transmitter to run as soon as it can. Duplicate kicks
// for the same instant collapse into one scheduled event.
func (l *link) kick() {
	now := l.f.eng.Now()
	at := now
	if l.busyUntil > at {
		at = l.busyUntil
	}
	if l.kickAt >= 0 && l.kickAt <= at {
		return // an equal-or-earlier kick is already scheduled
	}
	l.kickAt = at
	l.f.eng.At(at, func() {
		if l.kickAt == at {
			l.kickAt = -1
		}
		l.transmit()
	})
}

// transmit runs the output arbitration: take the first queued request whose
// VC has credit downstream (FIFO order with VC skipping — blocked VCs do not
// head-of-line-block others), serialize it, and hand the packet to the far
// end after the wire latency.
func (l *link) transmit() {
	now := l.f.eng.Now()
	if l.busyUntil > now {
		l.kick()
		return
	}
	// NIC-fed links synthesize their next request lazily.
	if l.kind == routing.Terminal && !l.eject {
		l.f.nics[l.node].fillInjection(l)
	}
	for i, r := range l.reqs {
		if !l.hasCredit(r.vc, r.pkt.bytes) {
			continue
		}
		// Accept request i.
		l.reqs = append(l.reqs[:i], l.reqs[i+1:]...)
		l.pending -= int64(r.pkt.bytes)
		l.reserve(r.vc, r.pkt.bytes)
		xfer := serializationTime(r.pkt.bytes, l.bw)
		l.busyUntil = now + xfer
		l.bytesTx += int64(r.pkt.bytes)
		l.packets++

		pkt, vc := r.pkt, r.vc
		arrival := l.busyUntil + l.latency
		l.f.eng.At(arrival, func() { l.f.arrive(l, vc, pkt) })

		if r.in != nil {
			// Free the upstream buffer slot the packet occupied; the credit
			// travels back over the inbound wire.
			up, upVC, n := r.in.link, r.in.vc, pkt.bytes
			l.f.eng.At(now+up.latency, func() { up.release(upVC, n) })
			// Pop the input queue and let its next head request an output.
			q := r.in
			q.q = q.q[1:]
			if len(q.q) > 0 {
				l.f.requestNext(q)
			}
		} else {
			// Injection: the NIC finishes putting this packet on the wire
			// when serialization ends.
			done := l.busyUntil
			l.f.eng.At(done, func() { l.f.nics[l.node].injected(pkt, done) })
		}
		if len(l.reqs) > 0 || (l.kind == routing.Terminal && !l.eject) {
			l.kick()
		}
		return
	}
	// Nothing acceptable: a later credit release will kick us again.
}

// closeStats finalizes the saturation clock at simulation end so links that
// finished saturated are charged for the open interval.
func (l *link) closeStats(end des.Time) {
	if l.fullVCs > 0 {
		l.satTotal += end - l.satSince
		l.satSince = end
	}
}
