package network

import (
	"dragonfly/internal/des"
	"dragonfly/internal/routing"
	"dragonfly/internal/topology"
)

// packet is one unit of switching: at most Params.PacketBytes of a message.
// Packets are pooled: the fabric recycles them on a free list at delivery,
// so steady-state switching allocates none. A packet doubles as the typed
// event argument for its own in-flight hops (arrLink/arrVC are valid while
// exactly one wire traversal is scheduled, which the protocol guarantees).
type packet struct {
	f     *Fabric
	msg   *message
	bytes int
	path  routing.Path
	hop   int // index of the next hop in path.Hops; == len(Hops) means eject

	arrLink *link // link currently carrying the packet
	arrVC   int32 // VC the packet occupies on arrLink
	next    *packet
}

// packetArriveCB is the typed arrival event: the packet lands at the far
// end of the link that serialized it.
func packetArriveCB(arg any, _ des.Time) {
	p := arg.(*packet)
	p.f.arrive(p.arrLink, int(p.arrVC), p)
}

// packetInjectedCB is the typed injection-complete event: the packet has
// fully left its source NIC. Injection always strictly precedes delivery,
// so the packet cannot have been recycled.
func packetInjectedCB(arg any, at des.Time) {
	p := arg.(*packet)
	p.f.nics[p.msg.src].injected(p, at)
}

// creditReturn carries one upstream buffer release over the wire latency;
// tokens are pooled on the fabric.
type creditReturn struct {
	l    *link
	vc   int32
	n    int32
	next *creditReturn
}

func creditReturnCB(arg any, _ des.Time) {
	c := arg.(*creditReturn)
	l, vc, n := c.l, int(c.vc), int(c.n)
	l.f.freeCredit(c)
	l.release(vc, n)
}

// linkKickCB is the typed transmitter-wakeup event.
func linkKickCB(arg any, at des.Time) {
	l := arg.(*link)
	if l.kickAt == at {
		l.kickAt = -1
	}
	l.transmit()
}

// request is a packet (at the head of some input queue, or fresh at a NIC)
// asking to be transmitted over an output link on a given VC.
type request struct {
	pkt *packet
	vc  int
	// in is the input queue currently holding the packet; nil for injection
	// (the packet materializes at the NIC when accepted).
	in *inputQueue
}

// inputQueue is the receiver-side buffer of one (link, VC): packets that
// have fully arrived and wait to be switched onward. Buffer occupancy —
// including in-flight reservations — is tracked by the owning link.
//
// The FIFO is a head-indexed slice rather than the q = q[1:] idiom: slicing
// off the head walks the backing array forward, so at capacity every append
// reallocates — that pattern was the simulator's single largest allocation
// source. Popping advances head; the array resets when the queue drains and
// compacts in place when the dead prefix reaches half the slots, so a
// steady-state queue allocates only up to its high-water mark.
type inputQueue struct {
	link *link
	vc   int
	q    []*packet
	head int
}

func (q *inputQueue) len() int         { return len(q.q) - q.head }
func (q *inputQueue) headPkt() *packet { return q.q[q.head] }

func (q *inputQueue) push(p *packet) {
	if q.head > 0 && len(q.q) == cap(q.q) && q.head*2 >= len(q.q) {
		n := copy(q.q, q.q[q.head:])
		for i := n; i < len(q.q); i++ {
			q.q[i] = nil
		}
		q.q = q.q[:n]
		q.head = 0
	}
	q.q = append(q.q, p)
}

func (q *inputQueue) pop() {
	q.q[q.head] = nil // drop the reference for the packet pool's sake
	q.head++
	if q.head == len(q.q) {
		q.q = q.q[:0]
		q.head = 0
	}
}

// link is one directed channel: terminal (node->router), ejection
// (router->node), local, or global. It owns the receiver-side per-VC buffer
// occupancy (credits), the transmitter serialization state, a FIFO request
// queue with VC skipping, and the paper's per-channel statistics.
type link struct {
	f    *Fabric
	id   int
	kind routing.LinkKind
	// from/to are router IDs for Local/Global links. For Terminal links,
	// node is the attached compute node: direction In means node->router
	// (from == to == the router), direction Out means router->node.
	from, to topology.RouterID
	node     topology.NodeID
	eject    bool // terminal link in the router->node direction

	bw      float64
	latency des.Time
	vcCap   int
	numVC   int

	// down marks a failed channel on a faulted fabric: the transmitter is
	// parked, pickLink skips it, and in-flight arrivals drop. gport is the
	// source-side global port (global links only), the identity
	// topology.Health addresses global channels by. Healthy fabrics never
	// set down, so the flag costs a predicted-not-taken branch.
	down  bool
	gport int32

	occ       []int // receiver-buffer bytes reserved, per VC
	busyUntil des.Time
	kickAt    des.Time // time of the earliest scheduled kick, -1 if none

	reqs    []request // FIFO with VC skipping
	pending int64     // bytes across queued requests (congestion signal)

	inq []inputQueue // receiver-side queues, one per VC

	// statistics
	bytesTx  int64
	packets  int64
	fullVCs  int
	satSince des.Time
	satTotal des.Time
}

func newLink(f *Fabric, kind routing.LinkKind, numVC, vcCap int, bw float64, lat des.Time) *link {
	l := &link{
		f: f, id: len(f.links), kind: kind,
		bw: bw, latency: lat, vcCap: vcCap, numVC: numVC,
		occ: make([]int, numVC), kickAt: -1,
	}
	l.inq = make([]inputQueue, numVC)
	for v := range l.inq {
		l.inq[v] = inputQueue{link: l, vc: v}
	}
	f.links = append(f.links, l)
	return l
}

// hasCredit reports whether the receiver buffer of vc can accept n bytes.
func (l *link) hasCredit(vc, n int) bool { return l.occ[vc]+n <= l.vcCap }

// vcFull reports the saturation condition of one VC: it cannot accept a
// max-size packet.
func (l *link) vcFull(vc int) bool {
	return l.vcCap-l.occ[vc] < l.f.params.PacketBytes
}

// The link saturation clock (Sec. III-E: the time during which a link "has
// used up all its buffers") integrates the condition "at least one VC
// buffer is exhausted": traffic of that class is blocked on the channel.
// Requiring every VC class to fill simultaneously would undercount, because
// the deadlock-avoidance scheme leaves the higher classes nearly idle.

// reserve claims receiver-buffer space and updates the saturation clock.
func (l *link) reserve(vc, n int) {
	wasFull := l.vcFull(vc)
	l.occ[vc] += n
	if l.f.obs != nil {
		l.f.obs.BufferReserve(l.id, vc, n, l.occ[vc])
	}
	if !wasFull && l.vcFull(vc) {
		if l.fullVCs == 0 {
			l.satSince = l.f.eng.Now()
			// Saturation onset — the edge the stats clock records — also
			// feeds the learning routing policy, if one is installed.
			if l.f.fb != nil {
				l.f.fb.ObserveSaturation(l.from, l.to, l.kind)
			}
		}
		l.fullVCs++
	}
}

// release returns receiver-buffer space, closes any saturation interval,
// and kicks the transmitter, which may now have credit.
func (l *link) release(vc, n int) {
	wasFull := l.vcFull(vc)
	l.occ[vc] -= n
	if l.f.obs != nil {
		l.f.obs.BufferRelease(l.id, vc, n, l.occ[vc])
	}
	if l.occ[vc] < 0 {
		panic("network: negative buffer occupancy")
	}
	if wasFull && !l.vcFull(vc) {
		l.fullVCs--
		if l.fullVCs == 0 {
			l.satTotal += l.f.eng.Now() - l.satSince
		}
	}
	l.kick()
}

// enqueue adds a transmission request and kicks the transmitter.
func (l *link) enqueue(r request) {
	l.reqs = append(l.reqs, r)
	l.pending += int64(r.pkt.bytes)
	l.kick()
}

// kick schedules the transmitter to run as soon as it can. Duplicate kicks
// for the same instant collapse into one scheduled event.
func (l *link) kick() {
	now := l.f.eng.Now()
	at := now
	if l.busyUntil > at {
		at = l.busyUntil
	}
	if l.kickAt >= 0 && l.kickAt <= at {
		return // an equal-or-earlier kick is already scheduled
	}
	l.kickAt = at
	l.f.eng.AtCall(at, linkKickCB, l)
}

// transmit runs the output arbitration: take the first queued request whose
// VC has credit downstream (FIFO order with VC skipping — blocked VCs do not
// head-of-line-block others), serialize it, and hand the packet to the far
// end after the wire latency.
func (l *link) transmit() {
	if l.down {
		return // failed channel: requests were drained, arrivals will drop
	}
	now := l.f.eng.Now()
	if l.busyUntil > now {
		l.kick()
		return
	}
	// NIC-fed links synthesize their next request lazily.
	if l.kind == routing.Terminal && !l.eject {
		l.f.nics[l.node].fillInjection(l)
	}
	for i, r := range l.reqs {
		if !l.hasCredit(r.vc, r.pkt.bytes) {
			continue
		}
		// Accept request i.
		l.reqs = append(l.reqs[:i], l.reqs[i+1:]...)
		l.pending -= int64(r.pkt.bytes)
		l.reserve(r.vc, r.pkt.bytes)
		xfer := serializationTime(r.pkt.bytes, l.bw)
		l.busyUntil = now + xfer
		l.bytesTx += int64(r.pkt.bytes)
		l.packets++

		pkt, vc := r.pkt, r.vc
		pkt.arrLink, pkt.arrVC = l, int32(vc)
		l.f.eng.AtCall(l.busyUntil+l.latency, packetArriveCB, pkt)

		if r.in != nil {
			// Free the upstream buffer slot the packet occupied; the credit
			// travels back over the inbound wire.
			up := r.in.link
			l.f.eng.AtCall(now+up.latency, creditReturnCB,
				l.f.newCredit(up, r.in.vc, pkt.bytes))
			// Pop the input queue and let its next head request an output.
			q := r.in
			q.pop()
			if q.len() > 0 {
				l.f.requestNext(q)
			}
		} else {
			// Injection: the NIC finishes putting this packet on the wire
			// when serialization ends.
			l.f.eng.AtCall(l.busyUntil, packetInjectedCB, pkt)
		}
		if len(l.reqs) > 0 || (l.kind == routing.Terminal && !l.eject) {
			l.kick()
		}
		return
	}
	// Nothing acceptable: a later credit release will kick us again.
}

// closeStats finalizes the saturation clock at simulation end so links that
// finished saturated are charged for the open interval.
func (l *link) closeStats(end des.Time) {
	if l.fullVCs > 0 {
		l.satTotal += end - l.satSince
		l.satSince = end
	}
}
