package network

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"dragonfly/internal/audit"
	"dragonfly/internal/des"
	"dragonfly/internal/faults"
	"dragonfly/internal/routing"
	"dragonfly/internal/topology"
	"dragonfly/internal/topotest"
)

// faultedFabric builds a mini fabric with the given fault set installed as
// its health view.
func faultedFabric(t *testing.T, mech routing.Mechanism, seed int64, set *faults.Set) (*Fabric, *des.Engine) {
	t.Helper()
	eng := des.New()
	topo := topotest.Mini(t)
	p := DefaultParams()
	p.Route.Health = set
	f, err := New(eng, topo, p, mech, des.NewRNG(seed, "fabric"))
	if err != nil {
		t.Fatal(err)
	}
	return f, eng
}

func nodeOnRouter(t *testing.T, topo topology.Interconnect, r topology.RouterID) topology.NodeID {
	t.Helper()
	for n := 0; n < topo.NumNodes(); n++ {
		if topo.RouterOfNode(topology.NodeID(n)) == r {
			return topology.NodeID(n)
		}
	}
	t.Fatalf("router %d has no nodes", r)
	return -1
}

// TestStaticFaultedRunDrainsAuditClean: random traffic over a statically
// degraded fabric (dead cables, dead routers) completes every message —
// delivered or accounted as dropped — drains the engine, and passes the
// auditor's extended delivered+dropped conservation checks.
func TestStaticFaultedRunDrainsAuditClean(t *testing.T) {
	topo := topotest.Mini(t)
	for _, mech := range []routing.Mechanism{routing.Minimal, routing.Adaptive} {
		set, err := faults.Resolve(&faults.Spec{GlobalFrac: 0.2, LocalFrac: 0.05, Routers: 2, Seed: 5}, topo)
		if err != nil {
			t.Fatal(err)
		}
		f, eng := faultedFabric(t, mech, 11, set)
		a := audit.New(f.Topology())
		f.SetObserver(a)
		eng.SetObserver(a.EventExecuted)
		eng.SetWatchdog(50_000_000, des.Second, f.WatchdogDiagnostic)

		rng := des.NewRNG(21, "traffic")
		var sent, closed int
		var sentBytes, gotBytes int64
		for i := 0; i < 300; i++ {
			src := topology.NodeID(rng.Intn(topo.NumNodes()))
			dst := topology.NodeID(rng.Intn(topo.NumNodes()))
			if src == dst {
				continue
			}
			bytes := int64(rng.IntnRange(1, 32<<10))
			sent++
			sentBytes += bytes
			b := bytes
			f.Send(src, dst, bytes, nil, func(des.Time) { closed++; gotBytes += b })
		}
		// Guarantee an unreachable destination: a node on a dead router.
		if down := set.DownRouters(); len(down) > 0 {
			src := nodeOnRouter(t, topo, 0)
			dst := nodeOnRouter(t, topo, down[0])
			sent++
			sentBytes += 10_000
			f.Send(src, dst, 10_000, nil, func(des.Time) { closed++; gotBytes += 10_000 })
		}

		eng.Run()
		if err := eng.Tripped(); err != nil {
			t.Fatalf("%v: watchdog tripped: %v", mech, err)
		}
		if closed != sent {
			t.Fatalf("%v: %d/%d messages closed (stall on the faulted fabric)", mech, closed, sent)
		}
		if f.QueuedMessages() != 0 {
			t.Fatalf("%v: %d messages wedged at NICs", mech, f.QueuedMessages())
		}
		pkts, bytes := f.DropStats()
		if pkts == 0 || bytes == 0 {
			t.Fatalf("%v: traffic to a dead router recorded no drops", mech)
		}
		if !errors.Is(f.RouteError(), routing.ErrUnreachable) {
			t.Fatalf("%v: RouteError() = %v, want ErrUnreachable", mech, f.RouteError())
		}
		a.Finish(true)
		if err := a.Err(); err != nil {
			t.Fatalf("%v: audit failed: %v", mech, err)
		}
		s := a.Summary().Stats
		if s.PacketsDropped == 0 || s.PacketsDelivered == 0 {
			t.Fatalf("%v: auditor saw %d drops, %d deliveries — disconnected?",
				mech, s.PacketsDropped, s.PacketsDelivered)
		}
	}
}

// TestDynamicFailureDropsInFlight: cables between two groups die while
// traffic crosses them; in-flight packets drop with exact byte accounting,
// later traffic detours, a repair restores the direct path, and the audit
// stays clean throughout.
func TestDynamicFailureDropsInFlight(t *testing.T) {
	topo := topotest.Mini(t)
	set, err := faults.Resolve(&faults.Spec{}, topo)
	if err != nil {
		t.Fatal(err)
	}
	f, eng := faultedFabric(t, routing.Adaptive, 13, set)
	a := audit.New(f.Topology())
	f.SetObserver(a)
	eng.SetObserver(a.EventExecuted)
	eng.SetWatchdog(50_000_000, des.Second, f.WatchdogDiagnostic)

	var g01 [][2]topology.RouterID
	for _, cn := range topo.GlobalConns() {
		ga, gb := topo.GroupOfRouter(cn.A), topo.GroupOfRouter(cn.B)
		if (ga == 0 && gb == 1) || (ga == 1 && gb == 0) {
			g01 = append(g01, [2]topology.RouterID{cn.A, cn.B})
		}
	}
	if len(g01) == 0 {
		t.Fatal("mini preset has no group 0-1 cables")
	}

	rng := des.NewRNG(31, "traffic")
	var sent, closed int
	var sentBytes, accounted int64
	send := func(src, dst topology.NodeID, bytes int64) {
		sent++
		sentBytes += bytes
		f.Send(src, dst, bytes, nil, func(des.Time) { closed++ })
	}
	for i := 0; i < 80; i++ {
		src := topology.NodeID(rng.Intn(topo.NumNodes()))
		for topo.GroupOfNode(src) != 0 {
			src = topology.NodeID(rng.Intn(topo.NumNodes()))
		}
		dst := topology.NodeID(rng.Intn(topo.NumNodes()))
		for topo.GroupOfNode(dst) != 1 {
			dst = topology.NodeID(rng.Intn(topo.NumNodes()))
		}
		send(src, dst, 64<<10)
	}

	eng.At(20*des.Microsecond, func() {
		for _, p := range g01 {
			set.FailLink(p[0], p[1])
		}
		f.ApplyHealthChange()
	})
	eng.At(400*des.Microsecond, func() {
		for _, p := range g01 {
			set.RepairLink(p[0], p[1])
		}
		f.ApplyHealthChange()
		// Post-repair traffic must deliver without drops.
		pre, _ := f.DropStats()
		src := nodeOnRouter(t, topo, g01[0][0])
		dst := nodeOnRouter(t, topo, g01[0][1])
		f.Send(src, dst, 32<<10, nil, func(des.Time) {
			closed++
			if post, _ := f.DropStats(); post != pre {
				t.Errorf("post-repair message saw drops: %d -> %d", pre, post)
			}
		})
		sent++
		sentBytes += 32 << 10
	})

	eng.Run()
	if err := eng.Tripped(); err != nil {
		t.Fatalf("watchdog tripped: %v", err)
	}
	if closed != sent {
		t.Fatalf("%d/%d messages closed after dynamic failure", closed, sent)
	}
	pkts, bytes := f.DropStats()
	if pkts == 0 {
		t.Fatal("no packet dropped by a mid-run cable failure with traffic in flight")
	}
	accounted = bytes // delivered bytes are verified by the auditor's ledger
	if accounted > sentBytes {
		t.Fatalf("dropped %d bytes of %d sent", accounted, sentBytes)
	}
	a.Finish(true)
	if err := a.Err(); err != nil {
		t.Fatalf("audit failed across fail/repair: %v", err)
	}
	if s := a.Summary().Stats; s.PacketsDropped == 0 {
		t.Fatal("auditor saw no drops")
	}

	diag := f.WatchdogDiagnostic()
	if !strings.Contains(diag, "messages queued") || !strings.Contains(diag, "dropped") {
		t.Fatalf("watchdog diagnostic malformed: %q", diag)
	}
}

// TestUnreachableDropAccounting: a message to a node on a dead router is
// discarded chunk-by-chunk at the NIC with exact byte accounting, both
// completion callbacks still fire (lossy close), and the run surfaces a
// typed route error.
func TestUnreachableDropAccounting(t *testing.T) {
	topo := topotest.Mini(t)
	set, err := faults.Resolve(&faults.Spec{FailRouters: []topology.RouterID{7}}, topo)
	if err != nil {
		t.Fatal(err)
	}
	f, eng := faultedFabric(t, routing.Minimal, 17, set)

	src := nodeOnRouter(t, topo, 0)
	dst := nodeOnRouter(t, topo, 7)
	const bytes = 10_000 // three default-size packets: 4096+4096+1808
	var injectedAt, deliveredAt des.Time = -1, -1
	f.Send(src, dst, bytes,
		func(at des.Time) { injectedAt = at },
		func(at des.Time) { deliveredAt = at })
	eng.Run()

	if injectedAt < 0 || deliveredAt < 0 {
		t.Fatalf("lossy close did not fire callbacks: injected=%v delivered=%v", injectedAt, deliveredAt)
	}
	pkts, dropped := f.DropStats()
	wantPkts := int64((bytes + f.params.PacketBytes - 1) / f.params.PacketBytes)
	if pkts != wantPkts || dropped != bytes {
		t.Fatalf("DropStats = (%d, %d), want (%d, %d)", pkts, dropped, wantPkts, bytes)
	}
	var ue *routing.UnreachableError
	if !errors.As(f.RouteError(), &ue) {
		t.Fatalf("RouteError() = %v, want UnreachableError", f.RouteError())
	}
}

// TestEmptyFaultSetIsInert: a resolved-but-empty fault set produces exactly
// the healthy fabric's behavior (the golden-compatibility guarantee).
func TestEmptyFaultSetIsInert(t *testing.T) {
	run := func(set *faults.Set) (des.Time, int64) {
		eng := des.New()
		topo := topotest.Mini(t)
		p := DefaultParams()
		if set != nil {
			p.Route.Health = set
		}
		f, err := New(eng, topo, p, routing.Adaptive, des.NewRNG(42, "fabric"))
		if err != nil {
			t.Fatal(err)
		}
		rng := des.NewRNG(99, "load")
		for i := 0; i < 200; i++ {
			src := topology.NodeID(rng.Intn(topo.NumNodes()))
			dst := topology.NodeID(rng.Intn(topo.NumNodes()))
			f.Send(src, dst, int64(rng.IntnRange(1, 32<<10)), nil, nil)
		}
		end := eng.Run()
		f.FinishStats()
		var b int64
		for _, ls := range f.LinkStats() {
			b += ls.Bytes
		}
		if pkts, _ := f.DropStats(); pkts != 0 {
			t.Fatalf("healthy/empty-fault run dropped %d packets", pkts)
		}
		return end, b
	}
	healthyEnd, healthyBytes := run(nil)
	// NOTE: an installed empty Set still switches routing to the BFS-based
	// fault path, which legally picks different (equally minimal) paths; the
	// golden guarantee therefore lives one layer up — core skips installing
	// the health view entirely when the resolved set is empty. Here the
	// contract under test is weaker: same drain, zero drops.
	set, err := faults.Resolve(&faults.Spec{}, topotest.Mini(t))
	if err != nil {
		t.Fatal(err)
	}
	emptyEnd, emptyBytes := run(set)
	if healthyEnd <= 0 || emptyEnd <= 0 || healthyBytes == 0 || emptyBytes == 0 {
		t.Fatal("degenerate run")
	}
}

// TestWatchdogDiagnosticCarriesHealthHistory: the diagnostic reports the
// most recent health transitions — bounded to the newest healthLogSize —
// so a stall under flapping names the fail/repair sequence that led to it.
func TestWatchdogDiagnosticCarriesHealthHistory(t *testing.T) {
	topo := topotest.Mini(t)
	set, err := faults.Resolve(&faults.Spec{}, topo)
	if err != nil {
		t.Fatal(err)
	}
	f, _ := faultedFabric(t, routing.Minimal, 3, set)
	if diag := f.WatchdogDiagnostic(); strings.Contains(diag, "health transitions") {
		t.Fatalf("healthy fabric reports health history: %q", diag)
	}
	const total = healthLogSize + 4
	for i := 0; i < total; i++ {
		ev := faults.Event{At: des.Time(i * 1000), A: 0, B: 1, Repair: i%2 == 1}
		f.RecordHealthEvent(ev.At, ev.String())
	}
	diag := f.WatchdogDiagnostic()
	if !strings.Contains(diag, fmt.Sprintf("%d health transitions", total)) {
		t.Fatalf("diagnostic lost the transition count: %q", diag)
	}
	if strings.Contains(diag, "fail=link:0-1@0s") {
		t.Fatalf("diagnostic kept an entry older than the ring: %q", diag)
	}
	last := faults.Event{At: des.Time((total - 1) * 1000), A: 0, B: 1, Repair: (total-1)%2 == 1}
	if !strings.Contains(diag, last.String()) {
		t.Fatalf("diagnostic missing the newest transition %q: %q", last.String(), diag)
	}
}
