package network

import (
	"testing"

	"dragonfly/internal/des"
	"dragonfly/internal/routing"
	"dragonfly/internal/topology"
	"dragonfly/internal/topotest"
)

func miniFabric(t *testing.T, mech routing.Mechanism, seed int64) (*Fabric, *des.Engine) {
	t.Helper()
	eng := des.New()
	topo := topotest.Mini(t)
	f, err := New(eng, topo, DefaultParams(), mech, des.NewRNG(seed, "fabric"))
	if err != nil {
		t.Fatal(err)
	}
	return f, eng
}

func TestPingZeroLoadLatency(t *testing.T) {
	// Analytic self-validation (DESIGN.md substitution #3): a single-packet
	// message between same-row neighbors must take exactly
	// ser(term)+lat(term) + ser(local)+lat(local) + ser(term)+lat(term).
	f, eng := miniFabric(t, routing.Minimal, 1)
	topo := f.Topology().(*topology.Dragonfly)
	p := f.Params()
	src := topo.NodeAt(topo.RouterAt(0, 0, 0), 0)
	dst := topo.NodeAt(topo.RouterAt(0, 0, 1), 0)

	const bytes = 1000
	var injectedAt, deliveredAt des.Time = -1, -1
	f.Send(src, dst, bytes,
		func(at des.Time) { injectedAt = at },
		func(at des.Time) { deliveredAt = at })
	eng.Run()

	serTerm := serializationTime(bytes, p.TerminalBandwidth)
	serLocal := serializationTime(bytes, p.LocalBandwidth)
	want := serTerm + p.TerminalLatency + serLocal + p.LocalLatency + serTerm + p.TerminalLatency
	if deliveredAt != want {
		t.Fatalf("delivered at %v, want %v", deliveredAt, want)
	}
	if injectedAt != serTerm {
		t.Fatalf("injected at %v, want %v", injectedAt, serTerm)
	}
}

func TestThroughputMatchesBottleneckBandwidth(t *testing.T) {
	// A large transfer over one local link must sustain ~local bandwidth
	// (local 5.25 GiB/s < terminal 16 GiB/s).
	f, eng := miniFabric(t, routing.Minimal, 2)
	topo := f.Topology().(*topology.Dragonfly)
	p := f.Params()
	src := topo.NodeAt(topo.RouterAt(0, 0, 0), 0)
	dst := topo.NodeAt(topo.RouterAt(0, 0, 1), 0)

	const bytes = 8 << 20 // 8 MiB
	var done des.Time
	f.Send(src, dst, bytes, nil, func(at des.Time) { done = at })
	eng.Run()

	gotBW := float64(bytes) / (float64(done) / 1e9) // bytes per second
	if gotBW > p.LocalBandwidth {
		t.Fatalf("throughput %.3g B/s exceeds local bandwidth %.3g", gotBW, p.LocalBandwidth)
	}
	if gotBW < 0.85*p.LocalBandwidth {
		t.Fatalf("throughput %.3g B/s below 85%% of local bandwidth %.3g", gotBW, p.LocalBandwidth)
	}
}

func TestAllToOneCausesSaturation(t *testing.T) {
	// Many senders converging on one node must exhaust some buffer: the
	// paper's link-saturation clock must record nonzero time.
	f, eng := miniFabric(t, routing.Minimal, 3)
	topo := f.Topology().(*topology.Dragonfly)
	dst := topology.NodeID(0)
	delivered := 0
	senders := 0
	for n := 1; n < topo.NumNodes(); n++ {
		f.Send(topology.NodeID(n), dst, 256<<10, nil, func(des.Time) { delivered++ })
		senders++
	}
	eng.Run()
	f.FinishStats()
	if delivered != senders {
		t.Fatalf("delivered %d/%d messages", delivered, senders)
	}
	var sat des.Time
	for _, ls := range f.LinkStats() {
		sat += ls.SatTime
	}
	if sat == 0 {
		t.Fatal("no link saturation recorded under an incast")
	}
}

func TestRandomTrafficAllDelivered(t *testing.T) {
	for _, mech := range []routing.Mechanism{routing.Minimal, routing.Adaptive} {
		f, eng := miniFabric(t, mech, 4)
		topo := f.Topology().(*topology.Dragonfly)
		rng := des.NewRNG(7, "traffic")
		const msgs = 400
		var sent, delivered int64
		var sentBytes, gotBytes int64
		for i := 0; i < msgs; i++ {
			src := topology.NodeID(rng.Intn(topo.NumNodes()))
			dst := topology.NodeID(rng.Intn(topo.NumNodes()))
			if src == dst {
				continue
			}
			bytes := int64(rng.IntnRange(1, 64<<10))
			sent++
			sentBytes += bytes
			b := bytes
			f.Send(src, dst, bytes, nil, func(des.Time) { delivered++; gotBytes += b })
		}
		eng.Run()
		if delivered != sent {
			t.Fatalf("%v: delivered %d/%d messages (deadlock or drop)", mech, delivered, sent)
		}
		if gotBytes != sentBytes {
			t.Fatalf("%v: byte conservation violated: sent %d, received %d", mech, sentBytes, gotBytes)
		}
		if f.QueuedMessages() != 0 {
			t.Fatalf("%v: %d messages still queued", mech, f.QueuedMessages())
		}
	}
}

func TestTrafficCountersConserveBytes(t *testing.T) {
	f, eng := miniFabric(t, routing.Minimal, 5)
	topo := f.Topology().(*topology.Dragonfly)
	// One inter-group message: every traversed channel must count exactly
	// the message bytes (single-path minimal routing, one message).
	src := topo.NodeAt(topo.RouterAt(0, 0, 0), 0)
	dst := topo.NodeAt(topo.RouterAt(2, 1, 3), 0)
	const bytes = 10000
	f.Send(src, dst, bytes, nil, nil)
	eng.Run()
	f.FinishStats()
	var termBytes, routerBytes int64
	for _, ls := range f.LinkStats() {
		switch ls.Kind {
		case routing.Terminal:
			termBytes += ls.Bytes
		default:
			routerBytes += ls.Bytes
		}
	}
	if termBytes != 2*bytes {
		t.Fatalf("terminal channels carried %d bytes, want %d", termBytes, 2*bytes)
	}
	// Inter-group minimal paths traverse 1-5 router-to-router links; every
	// byte of the message crosses each link on its packet's path exactly
	// once, so the total lies within those bounds.
	if routerBytes < bytes || routerBytes > 5*bytes {
		t.Fatalf("router channels carried %d bytes, want within [%d, %d]", routerBytes, bytes, 5*bytes)
	}
}

func TestHopAccounting(t *testing.T) {
	f, eng := miniFabric(t, routing.Minimal, 6)
	topo := f.Topology().(*topology.Dragonfly)
	// Same-router delivery counts one router.
	a, b := topo.NodeAt(3, 0), topo.NodeAt(3, 1)
	f.Send(a, b, 100, nil, nil)
	eng.Run()
	avg, pkts := f.AvgHops(b)
	if pkts != 1 || avg != 1 {
		t.Fatalf("same-router AvgHops = %v over %d packets, want 1 over 1", avg, pkts)
	}
	// Unrelated node saw nothing.
	if _, pkts := f.AvgHops(a); pkts != 0 {
		t.Fatalf("node a received %d packets, want 0", pkts)
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	run := func() (des.Time, int64) {
		f, eng := miniFabric(t, routing.Adaptive, 42)
		topo := f.Topology().(*topology.Dragonfly)
		rng := des.NewRNG(99, "load")
		for i := 0; i < 300; i++ {
			src := topology.NodeID(rng.Intn(topo.NumNodes()))
			dst := topology.NodeID(rng.Intn(topo.NumNodes()))
			f.Send(src, dst, int64(rng.IntnRange(1, 32<<10)), nil, nil)
		}
		end := eng.Run()
		f.FinishStats()
		var bytes int64
		for _, ls := range f.LinkStats() {
			bytes += ls.Bytes
		}
		return end, bytes
	}
	t1, b1 := run()
	t2, b2 := run()
	if t1 != t2 || b1 != b2 {
		t.Fatalf("nondeterministic: run1=(%v,%d) run2=(%v,%d)", t1, b1, t2, b2)
	}
}

func TestLoopbackAndZeroBytes(t *testing.T) {
	f, eng := miniFabric(t, routing.Minimal, 7)
	n := topology.NodeID(5)
	var loopDone, zeroDone bool
	f.Send(n, n, 1<<20, nil, func(des.Time) { loopDone = true })
	f.Send(n, topology.NodeID(6), 0, nil, func(des.Time) { zeroDone = true })
	eng.Run()
	if !loopDone {
		t.Fatal("loopback message never delivered")
	}
	if !zeroDone {
		t.Fatal("zero-byte message never delivered")
	}
}

func TestMultiPacketMessageReassembly(t *testing.T) {
	f, eng := miniFabric(t, routing.Adaptive, 8)
	topo := f.Topology().(*topology.Dragonfly)
	src := topo.NodeAt(topo.RouterAt(0, 0, 0), 0)
	dst := topo.NodeAt(topo.RouterAt(3, 1, 2), 1)
	const bytes = 100*4096 + 123 // forces a short tail packet
	deliveries := 0
	f.Send(src, dst, bytes, nil, func(des.Time) { deliveries++ })
	eng.Run()
	if deliveries != 1 {
		t.Fatalf("message delivered %d times, want exactly once", deliveries)
	}
	avg, pkts := f.AvgHops(dst)
	if pkts != 101 {
		t.Fatalf("delivered %d packets, want 101", pkts)
	}
	if avg < 1 || avg > 7 {
		t.Fatalf("avg hops %v outside plausible range", avg)
	}
}

func TestInvalidParamsRejected(t *testing.T) {
	eng := des.New()
	topo := topotest.Mini(t)
	p := DefaultParams()
	p.LocalVCBuffer = 100 // smaller than a packet
	if _, err := New(eng, topo, p, routing.Minimal, des.NewRNG(0, "x")); err == nil {
		t.Fatal("fabric accepted a buffer smaller than one packet")
	}
}

func TestSaturationClockClosesAtFinish(t *testing.T) {
	f, eng := miniFabric(t, routing.Minimal, 9)
	topo := f.Topology().(*topology.Dragonfly)
	// Saturate a path, then stop the engine early with RunUntil so some
	// buffers are still full; FinishStats must close the open intervals.
	dst := topology.NodeID(0)
	for n := 1; n < topo.NumNodes(); n++ {
		f.Send(topology.NodeID(n), dst, 512<<10, nil, nil)
	}
	eng.RunUntil(50 * des.Microsecond)
	f.FinishStats()
	var sat des.Time
	for _, ls := range f.LinkStats() {
		sat += ls.SatTime
		if ls.SatTime < 0 {
			t.Fatalf("negative saturation time on link %+v", ls)
		}
	}
	if sat == 0 {
		t.Fatal("no saturation measured mid-incast")
	}
}

func TestBackpressureOrderingPreserved(t *testing.T) {
	// Messages from one NIC to one destination must be injected in FIFO
	// order: deliveries of equal-size messages happen in send order.
	f, eng := miniFabric(t, routing.Minimal, 10)
	topo := f.Topology().(*topology.Dragonfly)
	src := topo.NodeAt(topo.RouterAt(0, 0, 0), 0)
	dst := topo.NodeAt(topo.RouterAt(0, 1, 1), 0)
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		f.Send(src, dst, 16<<10, nil, func(des.Time) { order = append(order, i) })
	}
	eng.Run()
	if len(order) != 10 {
		t.Fatalf("delivered %d/10", len(order))
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("delivery order %v not FIFO", order)
		}
	}
}
