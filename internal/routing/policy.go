package routing

// The routing-policy SPI. The Chooser owns the resolved tables (next hops,
// gateways, path cache, arena, live-BFS trees) and exposes them as route
// construction primitives — MinimalPath, ValiantPath, their fault-aware
// twins, Score, the RNG stream — while a Policy makes the decisions the
// paper's trade-off turns on: which path class (minimal vs. Valiant
// detour), which candidates, when to misroute. The built-in mechanisms
// (min/adp) are policies like any other; external implementations get the
// same primitives and are held to the same contract (see
// internal/topotest/policytest):
//
//   - Validity: every returned path must pass Validate against the live
//     equipment — policies compose the chooser's primitives, which
//     guarantee this, rather than fabricate hops.
//   - Determinism: all randomness must come from the chooser's RNG()
//     stream, and the number and order of draws must depend only on the
//     (topology, options, fault set, call sequence) — never on wall
//     clock, map iteration, or pointer values. Same seed, same routes.
//   - Allocation: the steady-state Route path must not allocate. Build
//     hops via the primitives (arena-backed), recycle losing candidates
//     with Release, and keep per-policy state in flat arrays sized at
//     Bind time.
//   - Fault duty: FaultRoute is called with both endpoint routers alive
//     and distinct; it must return a typed *UnreachableError (never a
//     panic or a hang) when the fabric offers no live route.

import (
	"fmt"

	"dragonfly/internal/des"
	"dragonfly/internal/topology"
)

// Policy decides which path a packet takes, given the chooser's resolved
// tables. One instance serves exactly one Chooser (Bind is called once,
// from NewChooserOpts); implementations keep their state unexported and
// unsynchronized, because a chooser belongs to a single engine worker.
type Policy interface {
	// Name is the CLI/report token for the policy ("min", "adp", ...).
	Name() string
	// Bind attaches the policy to its chooser before the first route.
	Bind(c *Chooser)
	// Route returns the path between two distinct routers on a healthy
	// fabric. It must not fail: the resolved tables cover every pair.
	Route(rs, rd topology.RouterID) Path
	// FaultRoute returns the path between two distinct live routers on a
	// degraded fabric, or a typed error wrapping ErrUnreachable when no
	// live route exists.
	FaultRoute(rs, rd topology.RouterID) (Path, error)
}

// PolicyFactory constructs a fresh Policy for one Chooser. Options carries
// a factory rather than an instance because policy state (Q-tables,
// scratch) is per-chooser: a parallel sweep builds one chooser per worker,
// and a shared instance would race and break run independence.
type PolicyFactory func() Policy

// Feedback is implemented by policies that learn online from fabric
// events. The fabric checks once at construction (Chooser.Feedback) and
// then notifies on link-saturation onset; policies that don't learn simply
// don't implement it, and the healthy hot path pays one nil check.
type Feedback interface {
	// ObserveSaturation fires when a directed link transitions from
	// "some VC has credit" to "every VC full" — the saturation-clock
	// edge the paper's Sec. III-E metric counts.
	ObserveSaturation(from, to topology.RouterID, kind LinkKind)
}

// PolicyNames lists the built-in policies in CLI spelling.
func PolicyNames() []string { return []string{"min", "adp", "qadaptive"} }

// BuiltinPolicy returns a fresh instance of the mechanism's policy.
func BuiltinPolicy(m Mechanism) Policy {
	switch m {
	case Minimal:
		return &minimalPolicy{}
	case Adaptive:
		return &adaptivePolicy{}
	case QAdaptive:
		return NewQAdaptivePolicy(QAdaptiveConfig{})
	default:
		panic(fmt.Sprintf("routing: unknown mechanism %d", int(m)))
	}
}

// Policy returns the chooser's installed decision policy.
func (c *Chooser) Policy() Policy { return c.policy }

// Feedback returns the installed policy's learning hook, or nil for
// policies that don't learn.
func (c *Chooser) Feedback() Feedback {
	if f, ok := c.policy.(Feedback); ok {
		return f
	}
	return nil
}

// RNG exposes the chooser's route stream — the only randomness source a
// policy may use (see the determinism contract above).
func (c *Chooser) RNG() *des.RNG { return c.rng }

// GroupOf resolves a router's group from the flat table.
func (c *Chooser) GroupOf(r topology.RouterID) int { return int(c.groupOf[r]) }

// NumGroups returns the machine's group count.
func (c *Chooser) NumGroups() int { return c.numGroups }

// MinimalBias returns the effective misrouting threshold (Options
// defaulting applied).
func (c *Chooser) MinimalBias() int64 { return c.opts.minimalBias() }

// ValiantCandidates returns the effective non-minimal candidate count.
func (c *Chooser) ValiantCandidates() int { return c.opts.valiantCandidates() }

// minimalPolicy always takes the shortest path (the paper's "min").
type minimalPolicy struct {
	c *Chooser
}

func (p *minimalPolicy) Name() string    { return "min" }
func (p *minimalPolicy) Bind(c *Chooser) { p.c = c }
func (p *minimalPolicy) Route(rs, rd topology.RouterID) Path {
	return p.c.MinimalPath(rs, rd)
}
func (p *minimalPolicy) FaultRoute(rs, rd topology.RouterID) (Path, error) {
	return p.c.FaultMinimalPath(rs, rd)
}

// adaptivePolicy implements the UGAL-style choice described in the paper
// ("adp"): up to two minimal and two non-minimal candidates, scored by
// source-router backlog toward the candidate's first hop times the
// candidate's length. Losing candidates' hop storage goes back to the
// arena immediately; the winner's is released by the packet's owner at
// delivery.
type adaptivePolicy struct {
	c *Chooser
}

func (p *adaptivePolicy) Name() string    { return "adp" }
func (p *adaptivePolicy) Bind(c *Chooser) { p.c = c }

func (p *adaptivePolicy) Route(rs, rd topology.RouterID) Path {
	c := p.c
	cands := append(c.candBuf[:0], c.MinimalPath(rs, rd))
	nMin := 1
	if c.groupOf[rs] != c.groupOf[rd] {
		// A second minimal candidate only exists when gateway choice varies.
		cands = append(cands, c.MinimalPath(rs, rd))
		nMin = 2
	}
	nonMin := c.opts.valiantCandidates()
	for i := 0; i < nonMin; i++ {
		cands = append(cands, c.ValiantPath(rs, rd))
	}
	c.candBuf = cands[:0]

	minIdx, minScore := pickBest(c, cands[:nMin])
	nonIdx, nonScore := pickBest(c, cands[nMin:])
	nonIdx += nMin

	// Misroute only when the non-minimal candidate wins by more than the
	// minimal-preference bias, as Aries adaptive routing does.
	win := minIdx
	if nonScore+c.opts.minimalBias() < minScore {
		win = nonIdx
	}
	for i := range cands {
		// Arena-owned candidates never alias each other (cache hits are
		// marked shared), so each loser is recycled exactly once.
		if i != win && cands[i].arena {
			c.putHops(cands[i].Hops)
		}
	}
	return cands[win]
}

// FaultRoute is the UGAL choice on the faulted fabric: the same candidate
// structure and scoring, with infeasible candidates dropped. Failed ports
// never appear as candidates, which is the "infinitely congested"
// treatment in its strongest form.
func (p *adaptivePolicy) FaultRoute(rs, rd topology.RouterID) (Path, error) {
	c := p.c
	first, err := c.FaultMinimalPath(rs, rd)
	if err != nil {
		return Path{}, err
	}
	cands := append(c.candBuf[:0], first)
	nMin := 1
	if c.groupOf[rs] != c.groupOf[rd] {
		if p, err := c.FaultMinimalPath(rs, rd); err == nil {
			cands = append(cands, p)
			nMin = 2
		}
	}
	nonMin := c.opts.valiantCandidates()
	for i := 0; i < nonMin; i++ {
		if p, ok := c.FaultValiantPath(rs, rd); ok {
			cands = append(cands, p)
		}
	}
	c.candBuf = cands[:0]

	win, minScore := pickBest(c, cands[:nMin])
	if len(cands) > nMin {
		nonIdx, nonScore := pickBest(c, cands[nMin:])
		if nonScore+c.opts.minimalBias() < minScore {
			win = nonIdx + nMin
		}
	}
	for i := range cands {
		if i != win && cands[i].arena {
			c.putHops(cands[i].Hops)
		}
	}
	return cands[win], nil
}
