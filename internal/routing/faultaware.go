package routing

// Fault-aware routing: the degraded-fabric code path the chooser switches to
// when Options.Health is set. It is deliberately separate from the healthy
// builders in routing.go — the healthy hot path keeps its dense-table walk,
// path cache, and zero-allocation profile untouched (guarded by the
// bench-diff gate), while this path trades a little speed for routing around
// dead equipment.
//
// Degraded-mode contract:
//
//   - Intra-group segments follow per-destination BFS trees over the live
//     local links (rebuilt by RebuildHealth), not the canonical DOR tables:
//     a live shortest path is taken even where the canonical route died, so
//     routes may be longer than the healthy 2-hop bound and may differ from
//     DOR where DOR would have survived.
//   - Inter-group routes pick among the live direct gateways (dead global
//     ports are never candidates — adaptive routing's "infinitely congested"
//     ports fall out by construction). When a group pair has no live direct
//     gateway, minimal routing falls back to a deterministic two-global-hop
//     detour through the first transit group that works; the VC classes of
//     that detour are exactly a Valiant path's, so the deadlock budget
//     (NumLocalVC/NumGlobalVC) still holds.
//   - Valiant candidates are only used when both segments route direct (a
//     segment needing its own detour would exceed the global-VC budget);
//     infeasible candidates are skipped, never substituted.
//   - A pair with no live route at all fails with ErrUnreachable from
//     TryRoute — a typed error, not a hang or a panic.
//
// Determinism: BFS order is the machine's LocalNeighbors order, transit
// search is first-match in group order, and random picks draw from the same
// named stream as healthy routing — a fault set plus seed always yields the
// same routes.

import (
	"errors"
	"fmt"

	"dragonfly/internal/topology"
)

// ErrUnreachable is the sentinel wrapped by every routing failure on a
// partitioned fabric; match it with errors.Is.
var ErrUnreachable = errors.New("destination unreachable on the faulted fabric")

// UnreachableError reports the router pair that has no live route. It wraps
// ErrUnreachable.
type UnreachableError struct {
	Src, Dst topology.RouterID
}

func (e *UnreachableError) Error() string {
	return fmt.Sprintf("routing: no live route from router %d to router %d", e.Src, e.Dst)
}

func (e *UnreachableError) Unwrap() error { return ErrUnreachable }

const noRouter = topology.RouterID(-1)

// RebuildHealth recomputes the degraded-mode tables against the current
// Health view: per-destination BFS next hops and live distances over the
// live local links of every group. The core layer calls it after every
// dynamic fault event; with a nil Health it is a no-op. Cost is
// O(routers x routersPerGroup), far off the per-packet path.
func (c *Chooser) RebuildHealth() {
	if c.health == nil {
		return
	}
	rpg := c.routersPerGroup
	if c.liveNextHop == nil {
		// Sized independently of the healthy next-hop representation (which
		// may be the shared template): one slot per (router, local dst).
		n := c.numRouters * rpg
		c.liveNextHop = make([]topology.RouterID, n)
		c.liveDist = make([]int32, n)
		c.bfsQueue = make([]topology.RouterID, 0, rpg)
	}
	for i := range c.liveNextHop {
		c.liveNextHop[i] = noRouter
		c.liveDist[i] = -1
	}
	for g := 0; g < c.numGroups; g++ {
		base := g * rpg
		for j := 0; j < rpg; j++ {
			dst := topology.RouterID(base + j)
			if !c.health.RouterUp(dst) {
				continue
			}
			// Reverse BFS from dst: when u (closer to dst) discovers live
			// neighbor v, the next hop from v toward dst is u. Neighbor
			// order is the machine's LocalNeighbors order, so ties resolve
			// deterministically.
			c.liveDist[int(dst)*rpg+j] = 0
			q := append(c.bfsQueue[:0], dst)
			for len(q) > 0 {
				u := q[0]
				q = q[1:]
				du := c.liveDist[int(u)*rpg+j]
				for _, v := range c.topo.LocalNeighbors(u) {
					if c.liveDist[int(v)*rpg+j] >= 0 || !c.health.LocalLinkUp(u, v) {
						continue
					}
					c.liveDist[int(v)*rpg+j] = du + 1
					c.liveNextHop[int(v)*rpg+j] = u
					q = append(q, v)
				}
			}
		}
	}
}

// liveLocalDist is the live intra-group hop distance a -> b, or -1 when no
// live path exists. Both routers must share a group.
func (c *Chooser) liveLocalDist(a, b topology.RouterID) int32 {
	return c.liveDist[int(a)*c.routersPerGroup+int(b)-int(c.groupOf[a])*c.routersPerGroup]
}

// faultRoute is TryRoute's degraded-mode body.
func (c *Chooser) faultRoute(rs, rd topology.RouterID) (Path, error) {
	if !c.health.RouterUp(rs) || !c.health.RouterUp(rd) {
		return Path{}, &UnreachableError{Src: rs, Dst: rd}
	}
	if rs == rd {
		return Path{}, nil
	}
	return c.policy.FaultRoute(rs, rd)
}

// appendLocalLive walks the BFS tree from cur to dst (same group) on the
// given local VC class; reports false when the pair is partitioned.
func (c *Chooser) appendLocalLive(hops []Hop, cur, dst topology.RouterID, class uint8) ([]Hop, bool) {
	base := int(c.groupOf[cur]) * c.routersPerGroup
	for cur != dst {
		next := c.liveNextHop[int(cur)*c.routersPerGroup+int(dst)-base]
		if next == noRouter {
			return hops, false
		}
		hops = append(hops, Hop{From: cur, To: next, Kind: Local, VC: class})
		cur = next
	}
	return hops, true
}

// appendMinimalFault appends the degraded-mode minimal route cur -> dst.
// allowTransit permits the two-global-hop detour when the group pair has no
// live direct gateway; Valiant segments pass false to stay inside the VC
// budget. Reports false when no live route exists under those constraints.
func (c *Chooser) appendMinimalFault(hops []Hop, cur, dst topology.RouterID, st *segmentState, allowTransit bool) ([]Hop, bool) {
	gs := int(c.groupOf[cur])
	gd := int(c.groupOf[dst])
	if gs == gd {
		return c.appendLocalLive(hops, cur, dst, st.localClass())
	}
	if gw, ok := c.pickLiveGateway(cur, gs, gd, dst); ok {
		hops, ok = c.appendLocalLive(hops, cur, gw.Router, st.localClass())
		if !ok {
			return hops, false
		}
		hops = append(hops, Hop{From: gw.Router, To: gw.Peer, Kind: Global, VC: st.globalClass()})
		st.globalHops++
		return c.appendLocalLive(hops, gw.Peer, dst, st.localClass())
	}
	if !allowTransit || st.globalHops != 0 {
		return hops, false
	}
	gw1, gw2, ok := c.findTransit(cur, gs, gd, dst)
	if !ok {
		return hops, false
	}
	// The detour's VC classes are exactly a Valiant path's: global classes
	// 0 then 1, local classes 0 / 1 / 2 across the three groups.
	hops, ok = c.appendLocalLive(hops, cur, gw1.Router, st.localClass())
	if !ok {
		return hops, false
	}
	hops = append(hops, Hop{From: gw1.Router, To: gw1.Peer, Kind: Global, VC: st.globalClass()})
	st.globalHops++
	hops, ok = c.appendLocalLive(hops, gw1.Peer, gw2.Router, st.localClass())
	if !ok {
		return hops, false
	}
	hops = append(hops, Hop{From: gw2.Router, To: gw2.Peer, Kind: Global, VC: st.globalClass()})
	st.globalHops++
	return c.appendLocalLive(hops, gw2.Peer, dst, st.localClass())
}

// pickLiveGateway selects a live global link from group gs to gd usable from
// cur toward dst: the port and both endpoint routers are up, the gateway is
// live-reachable from cur, and its far end live-reaches dst. Selection
// follows the healthy gateway policy (spread / nearest / random) over live
// distances, drawing from the RNG only when the choice varies.
func (c *Chooser) pickLiveGateway(cur topology.RouterID, gs, gd int, dst topology.RouterID) (topology.Gateway, bool) {
	gws := c.topo.Gateways(gs, gd)
	cand := c.gwBuf[:0]
	dist := c.gwDistBuf[:0]
	dmin := int32(1 << 30)
	for _, gw := range gws {
		if !c.health.GlobalLinkUp(gw.Router, gw.Port) {
			continue
		}
		d := c.liveLocalDist(cur, gw.Router)
		if d < 0 || c.liveLocalDist(gw.Peer, dst) < 0 {
			continue
		}
		cand = append(cand, gw)
		dist = append(dist, d)
		if d < dmin {
			dmin = d
		}
	}
	c.gwBuf, c.gwDistBuf = cand[:0], dist[:0]
	if len(cand) == 0 {
		return topology.Gateway{}, false
	}
	// Admission threshold per policy: random takes all live candidates,
	// nearest the minimum distance, spread everything within one hop
	// (falling back to nearest when none is that close) — the healthy
	// policy applied to live distances.
	limit := dmin
	switch c.opts.Gateway {
	case GatewayRandom:
		limit = 1 << 30
	case GatewaySpread:
		if dmin <= 1 {
			limit = 1
		}
	}
	n := 0
	for _, d := range dist {
		if d <= limit {
			n++
		}
	}
	k := 0
	if n > 1 {
		k = c.rng.Intn(n)
	}
	for i, d := range dist {
		if d > limit {
			continue
		}
		if k == 0 {
			return cand[i], true
		}
		k--
	}
	panic("routing: live gateway selection fell through")
}

// findTransit finds the deterministic two-hop detour gs -> gt -> gd for a
// group pair with no live direct gateway: the first transit group (ascending
// order) offering a live gateway chain cur -> gw1 -> gw1.Peer -> gw2 ->
// gw2.Peer -> dst.
func (c *Chooser) findTransit(cur topology.RouterID, gs, gd int, dst topology.RouterID) (gw1, gw2 topology.Gateway, ok bool) {
	for gt := 0; gt < c.numGroups; gt++ {
		if gt == gs || gt == gd {
			continue
		}
		for _, g1 := range c.topo.Gateways(gs, gt) {
			if !c.health.GlobalLinkUp(g1.Router, g1.Port) || c.liveLocalDist(cur, g1.Router) < 0 {
				continue
			}
			for _, g2 := range c.topo.Gateways(gt, gd) {
				if !c.health.GlobalLinkUp(g2.Router, g2.Port) {
					continue
				}
				if c.liveLocalDist(g1.Peer, g2.Router) < 0 || c.liveLocalDist(g2.Peer, dst) < 0 {
					continue
				}
				return g1, g2, true
			}
		}
	}
	return topology.Gateway{}, topology.Gateway{}, false
}

// FaultMinimalPath is MinimalPath's degraded-mode twin: the live minimal
// route (with the two-global-hop transit detour when the group pair has no
// live direct gateway), or a typed error when the pair is partitioned.
func (c *Chooser) FaultMinimalPath(rs, rd topology.RouterID) (Path, error) {
	var st segmentState
	hops, ok := c.appendMinimalFault(c.getHops(), rs, rd, &st, true)
	if !ok {
		c.putHops(hops)
		return Path{}, &UnreachableError{Src: rs, Dst: rd}
	}
	return Path{Hops: hops, arena: c.useArena}, nil
}

// FaultValiantPath builds a non-minimal candidate on the faulted fabric. A
// candidate whose intermediate is dead or whose segments cannot route direct
// is infeasible: it reports false and the caller simply fields fewer
// candidates.
func (c *Chooser) FaultValiantPath(rs, rd topology.RouterID) (Path, bool) {
	mid := c.valiant[c.rng.Intn(len(c.valiant))]
	if mid == rs || mid == rd {
		p, err := c.FaultMinimalPath(rs, rd)
		return p, err == nil
	}
	if !c.health.RouterUp(mid) {
		return Path{}, false
	}
	var st segmentState
	hops, ok := c.appendMinimalFault(c.getHops(), rs, mid, &st, false)
	if !ok {
		c.putHops(hops)
		return Path{}, false
	}
	st.midsPassed++
	hops, ok = c.appendMinimalFault(hops, mid, rd, &st, false)
	if !ok {
		c.putHops(hops)
		return Path{}, false
	}
	return Path{Hops: hops, arena: c.useArena}, true
}
