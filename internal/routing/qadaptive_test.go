package routing

import (
	"math"
	"testing"

	"dragonfly/internal/des"
	"dragonfly/internal/topology"
	"dragonfly/internal/topotest"
)

// twoGroup wires the smallest sensible two-group XC40: the toy machine of
// the Q-table convergence tests, where "the other group" is the only
// inter-group destination and the learned detour decision is isolated from
// transit-group effects.
func twoGroup(t *testing.T) *topology.Dragonfly {
	t.Helper()
	topo, err := topology.New(topology.Config{
		Groups: 2, Rows: 2, Cols: 4,
		NodesPerRouter: 2, GlobalPortsPerRouter: 3, ChassisPerCabinet: 1,
	})
	if err != nil {
		t.Fatalf("two-group machine: %v", err)
	}
	return topo
}

func newQChooser(t *testing.T, topo topology.Interconnect, cong Congestion, cfg QAdaptiveConfig) (*Chooser, *QAdaptivePolicy) {
	t.Helper()
	ch := NewChooserOpts(topo, QAdaptive, des.NewRNG(7, "q").Stream("route"), cong, Options{
		Policy: func() Policy { return NewQAdaptivePolicy(cfg) },
	})
	q, ok := ch.Policy().(*QAdaptivePolicy)
	if !ok {
		t.Fatalf("installed policy is %T, want *QAdaptivePolicy", ch.Policy())
	}
	return ch, q
}

func TestQAdaptiveUpdateMath(t *testing.T) {
	ch, q := newQChooser(t, topotest.Mini(t), nil, QAdaptiveConfig{
		Alpha: 0.5, Penalty: 1000, PenaltyDecay: 0.5,
	})
	_ = ch

	// EMA: from 0, cost 100 at alpha 0.5 gives 50, then 75, then 87.5.
	for i, want := range []float64{50, 75, 87.5} {
		if got := q.update(1, qClassMinimal, 100); got != want {
			t.Fatalf("update %d = %v, want %v", i, got, want)
		}
	}
	qMin, qVal := q.QValues(0, 1)
	if qMin != 87.5 || qVal != 0 {
		t.Fatalf("QValues(0,1) = %v, %v; want 87.5, 0 (valiant class untouched)", qMin, qVal)
	}
}

func TestQAdaptivePenaltyAccumulateDecay(t *testing.T) {
	topo := topotest.Mini(t)
	_, q := newQChooser(t, topo, nil, QAdaptiveConfig{
		Alpha: 0.5, Penalty: 1000, PenaltyDecay: 0.5,
	})

	// Two saturation onsets on a group 0 -> group 1 global link accumulate
	// 2x Penalty on that pair; other pairs and non-global kinds are free.
	var gw topology.Gateway
	for _, cand := range topo.Gateways(0, 1) {
		gw = cand
		break
	}
	q.ObserveSaturation(gw.Router, gw.Peer, Global)
	q.ObserveSaturation(gw.Router, gw.Peer, Global)
	q.ObserveSaturation(gw.Router, gw.Router+1, Local) // ignored
	if got := q.PendingPenalty(0, 1); got != 2000 {
		t.Fatalf("pending penalty = %v, want 2000", got)
	}
	if got := q.PendingPenalty(1, 0); got != 0 {
		t.Fatalf("reverse pair charged: %v", got)
	}

	// Decay-on-read: the consumer sees the full value; the store halves.
	pair := 0*q.n + 1
	if got := q.takePenalty(pair); got != 2000 {
		t.Fatalf("takePenalty = %v, want 2000", got)
	}
	if got := q.PendingPenalty(0, 1); got != 1000 {
		t.Fatalf("post-read penalty = %v, want 1000", got)
	}
	if got := q.takePenalty(pair); got != 1000 {
		t.Fatalf("second takePenalty = %v, want 1000", got)
	}
}

func TestQAdaptiveConfigDefaults(t *testing.T) {
	cfg := QAdaptiveConfig{}.withDefaults()
	if cfg.Alpha != 0.125 || cfg.Penalty != 4*DefaultMinimalBias || cfg.PenaltyDecay != 0.875 {
		t.Fatalf("defaults = %+v", cfg)
	}
	keep := QAdaptiveConfig{Alpha: 0.25, Penalty: 7, PenaltyDecay: 0.5}
	if got := keep.withDefaults(); got != keep {
		t.Fatalf("explicit config rewritten: %+v", got)
	}
}

// No traffic, no saturation: the learned minimal estimate stays at the
// (tiny) hop-count score, the Valiant estimate above it, and qadaptive is
// behaviorally plain minimal routing — zero misroutes over a full sweep.
func TestQAdaptiveNoTrafficDegeneratesToMinimal(t *testing.T) {
	topo := twoGroup(t)
	ch, q := newQChooser(t, topo, nil, QAdaptiveConfig{})
	rng := des.NewRNG(9, "pairs")
	n := topo.NumNodes()
	for i := 0; i < 2000; i++ {
		s := topology.NodeID(rng.Intn(n))
		d := topology.NodeID(rng.Intn(n))
		p := ch.Route(s, d)
		rs, rd := topo.RouterOfNode(s), topo.RouterOfNode(d)
		if err := Validate(topo, rs, rd, p); err != nil {
			t.Fatalf("route %d->%d: %v", s, d, err)
		}
		if topo.GroupOfNode(s) != topo.GroupOfNode(d) && p.GlobalHops() != 1 {
			t.Fatalf("idle-network route %d->%d crosses %d global links, want the minimal 1", s, d, p.GlobalHops())
		}
		ch.Release(p)
	}
	if got := q.Misroutes(); got != 0 {
		t.Fatalf("idle network misrouted %d times, want 0", got)
	}
	qMin, qVal := q.QValues(0, 1)
	if !(qMin < qVal) {
		t.Fatalf("idle estimates qMin=%v qVal=%v, want qMin < qVal", qMin, qVal)
	}
}

// Saturation feedback on the direct global links must flip the decision:
// after a sustained burst on the 0 -> 1 pair, the minimal-class estimate
// exceeds the Valiant one by more than the bias and the policy detours.
func TestQAdaptiveLearnsToDetour(t *testing.T) {
	topo := twoGroup(t)
	ch, q := newQChooser(t, topo, nil, QAdaptiveConfig{})
	rng := des.NewRNG(10, "pairs")
	n := topo.NumNodes()

	gws := topo.Gateways(0, 1)
	misroutesBefore := q.Misroutes()
	for i := 0; i < 400; i++ {
		// A saturation burst across every direct 0 -> 1 global link per
		// route keeps the pending penalty high against its per-read decay.
		for _, gw := range gws {
			q.ObserveSaturation(gw.Router, gw.Peer, Global)
		}
		// Inter-group traffic 0 -> 1 only: draw until the pair crosses.
		s := topology.NodeID(rng.Intn(n / 2))
		d := topology.NodeID(n/2 + rng.Intn(n/2))
		p := ch.Route(s, d)
		if err := Validate(topo, topo.RouterOfNode(s), topo.RouterOfNode(d), p); err != nil {
			t.Fatalf("route %d->%d: %v", s, d, err)
		}
		ch.Release(p)
	}
	if got := q.Misroutes(); got <= misroutesBefore {
		t.Fatalf("policy never detoured despite saturated direct links (misroutes %d)", got)
	}
	qMin, qVal := q.QValues(0, 1)
	if !(qMin > qVal+float64(ch.MinimalBias())) {
		t.Fatalf("learned estimates qMin=%v qVal=%v do not justify detour", qMin, qVal)
	}
	// The unpunished reverse direction keeps preferring minimal.
	rMin, rVal := q.QValues(1, 0)
	if rMin > rVal+float64(ch.MinimalBias()) {
		t.Fatalf("reverse pair learned a detour without feedback: qMin=%v qVal=%v", rMin, rVal)
	}

	// And with the feedback silenced, the decayed penalty lets the pair
	// drift back to minimal.
	for i := 0; i < 2000; i++ {
		s := topology.NodeID(rng.Intn(n / 2))
		d := topology.NodeID(n/2 + rng.Intn(n/2))
		ch.Release(ch.Route(s, d))
	}
	qMin, qVal = q.QValues(0, 1)
	if !(qMin < qVal+float64(ch.MinimalBias())) {
		t.Fatalf("penalty never decayed: qMin=%v qVal=%v", qMin, qVal)
	}
}

// Feedback plumbing: the chooser exposes the learning hook for qadaptive
// and nothing for the static built-ins.
func TestChooserFeedback(t *testing.T) {
	topo := topotest.Mini(t)
	for _, mech := range []Mechanism{Minimal, Adaptive} {
		ch := NewChooser(topo, mech, des.NewRNG(1, "fb"), nil)
		if fb := ch.Feedback(); fb != nil {
			t.Fatalf("%v chooser has feedback %T, want nil", mech, fb)
		}
	}
	ch := NewChooser(topo, QAdaptive, des.NewRNG(1, "fb"), nil)
	if ch.Feedback() == nil {
		t.Fatal("qadaptive chooser has no feedback hook")
	}
	if name := ch.Policy().Name(); name != "qadaptive" {
		t.Fatalf("policy name %q", name)
	}
}

// Same seed, same feedback sequence: the learned state and every route are
// reproducible bit for bit.
func TestQAdaptiveDeterministic(t *testing.T) {
	run := func() (uint64, float64, float64) {
		topo := twoGroup(t)
		ch, q := newQChooser(t, topo, saltedCong{}, QAdaptiveConfig{})
		rng := des.NewRNG(21, "pairs")
		n := topo.NumNodes()
		gws := topo.Gateways(0, 1)
		var sig uint64 = 14695981039346656037
		for i := 0; i < 300; i++ {
			if i%3 == 0 {
				q.ObserveSaturation(gws[i%len(gws)].Router, gws[i%len(gws)].Peer, Global)
			}
			s := topology.NodeID(rng.Intn(n))
			d := topology.NodeID(rng.Intn(n))
			p := ch.Route(s, d)
			for _, h := range p.Hops {
				sig = (sig ^ uint64(h.From)<<24 ^ uint64(h.To)<<8 ^ uint64(h.VC)) * 1099511628211
			}
			ch.Release(p)
		}
		qMin, qVal := q.QValues(0, 1)
		return sig, qMin, qVal
	}
	s1, m1, v1 := run()
	s2, m2, v2 := run()
	if s1 != s2 || math.Float64bits(m1) != math.Float64bits(m2) || math.Float64bits(v1) != math.Float64bits(v2) {
		t.Fatalf("two identical runs diverged: %x/%v/%v vs %x/%v/%v", s1, m1, v1, s2, m2, v2)
	}
}
