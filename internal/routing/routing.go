// Package routing implements the two routing mechanisms of the paper
// (Sec. III-C) for the dragonfly of package topology:
//
//   - Minimal routing: the shortest path — within a group, at most one row
//     hop and one column hop (row first); across groups, local hops to a
//     gateway router owning a direct global link to the destination group,
//     the global hop, and local hops to the destination router.
//   - Adaptive routing (UGAL-style): up to four randomly selected candidate
//     routes, two minimal and two non-minimal (Valiant: minimal to a random
//     intermediate router, then minimal to the destination), scored by the
//     source router's output backlog toward each candidate's first link
//     multiplied by the candidate's hop count; the lowest score wins and
//     minimal wins ties.
//
// Deadlock avoidance uses monotone virtual-channel classes: the local-link
// class is (global hops taken) + (Valiant intermediates passed), the
// global-link class is the number of global hops taken; within one class a
// group is always traversed row-first-then-column, so the channel dependency
// graph is acyclic.
package routing

import (
	"fmt"

	"dragonfly/internal/des"
	"dragonfly/internal/par"
	"dragonfly/internal/topology"
)

// Mechanism names a built-in routing policy (see policy.go for the SPI
// the named policies implement).
type Mechanism int

const (
	// Minimal always takes a shortest path.
	Minimal Mechanism = iota
	// Adaptive chooses among minimal and Valiant candidates by congestion.
	Adaptive
	// QAdaptive chooses minimal vs. Valiant per group pair from a Q-table
	// learned online from link-saturation feedback (see qadaptive.go).
	QAdaptive
)

// String returns the CLI abbreviation for the mechanism
// ("min"/"adp"/"qadaptive").
func (m Mechanism) String() string {
	switch m {
	case Minimal:
		return "min"
	case Adaptive:
		return "adp"
	case QAdaptive:
		return "qadaptive"
	default:
		return fmt.Sprintf("Mechanism(%d)", int(m))
	}
}

// ParseMechanism converts a policy name — "min"/"minimal", "adp"/
// "adaptive", or "qadaptive"/"qadp" — to its Mechanism.
func ParseMechanism(s string) (Mechanism, error) {
	switch s {
	case "min", "minimal":
		return Minimal, nil
	case "adp", "adaptive":
		return Adaptive, nil
	case "qadaptive", "qadp":
		return QAdaptive, nil
	}
	return 0, fmt.Errorf("routing: unknown mechanism %q", s)
}

// LinkKind distinguishes the three channel classes of the machine, which
// carry different bandwidths and buffer sizes (Sec. II).
type LinkKind uint8

const (
	Terminal LinkKind = iota // node <-> router
	Local                    // router <-> router within a group
	Global                   // router <-> router across groups
)

func (k LinkKind) String() string {
	switch k {
	case Terminal:
		return "terminal"
	case Local:
		return "local"
	case Global:
		return "global"
	default:
		return fmt.Sprintf("LinkKind(%d)", int(k))
	}
}

// Virtual-channel class counts required by the scheme above: local classes
// 0..3 (source group, post-first-global, post-intermediate, destination
// group of a two-global Valiant path), global classes 0..1.
const (
	NumLocalVC  = 4
	NumGlobalVC = 2
)

// Hop is one router-to-router traversal.
type Hop struct {
	From topology.RouterID
	To   topology.RouterID
	Kind LinkKind // Local or Global
	VC   uint8    // virtual-channel class on this hop
}

// Path is a source-computed route between the source and destination
// routers. An empty path means both nodes share a router.
type Path struct {
	Hops []Hop
	// arena marks hop storage owned by the originating Chooser's scratch
	// arena: Chooser.Release returns it for reuse once the packet carrying
	// the path is delivered. Cached (shared) and caller-built paths are not
	// arena-owned, so Release ignores them.
	arena bool
}

// RoutersTraversed counts routers visited on the way, the paper's hop
// metric: same-router delivery counts 1.
func (p Path) RoutersTraversed() int { return len(p.Hops) + 1 }

// GlobalHops counts global-link traversals.
func (p Path) GlobalHops() int {
	n := 0
	for _, h := range p.Hops {
		if h.Kind == Global {
			n++
		}
	}
	return n
}

// Congestion lets the adaptive policy sense backlog. The network fabric
// implements it; tests can stub it.
type Congestion interface {
	// OutputBacklog returns the bytes queued at router `from` waiting to
	// cross the directed link to router `to` (all VCs).
	OutputBacklog(from, to topology.RouterID) int64
}

// zeroCongestion reports an idle network; used when no oracle is supplied.
type zeroCongestion struct{}

func (zeroCongestion) OutputBacklog(_, _ topology.RouterID) int64 { return 0 }

// GatewayPolicy selects how an inter-group route picks its global link.
// The paper's minimal routing takes "a global link directly connected to
// the group having the destination node" — any of the (120 on Theta)
// parallel links; how a router spreads over them is an Aries routing-table
// detail, exposed here for the ablation benchmarks.
type GatewayPolicy int

const (
	// GatewaySpread (default) picks uniformly among the gateways at most
	// one local hop away — wide load spreading at low hop cost, matching
	// how Aries routing tables distribute minimal traffic.
	GatewaySpread GatewayPolicy = iota
	// GatewayNearest picks uniformly among the strictly nearest gateways
	// (usually the source router's own ports) — maximum locality, minimum
	// path diversity.
	GatewayNearest
	// GatewayRandom picks uniformly among all gateways of the group.
	GatewayRandom
)

// Options tunes secondary routing decisions. The zero value reproduces the
// paper's setup; the alternatives exist for the ablation benchmarks.
type Options struct {
	// Gateway selects the inter-group global-link policy.
	Gateway GatewayPolicy
	// ValiantCandidates is the number of non-minimal candidates the
	// adaptive policy samples; 0 means the paper's 2.
	ValiantCandidates int
	// MinimalBias is the backlog advantage (bytes) a non-minimal candidate
	// must have before adaptive routing misroutes — the minimal-preference
	// bias of Aries/UGAL adaptive routing. 0 means the default
	// (DefaultMinimalBias); negative disables the bias.
	MinimalBias int64
	// NoCache disables the deterministic minimal-path cache and the
	// hop-slice arena, so every Route call builds fresh storage. Routes are
	// identical either way (only paths whose construction draws no
	// randomness are ever cached); the knob exists for the pooling
	// equivalence tests and for memory-vs-speed debugging.
	NoCache bool
	// CompactTables forces the big-machine compressed/lazy route tables
	// (shared intra-group template, lazily sharded gateway candidates,
	// memoized path map) even below topology.DenseTableLimit, where the
	// chooser would normally keep its dense flat arrays. Routes are
	// identical in both modes; the knob exists for the equivalence tests
	// and benchmarks.
	CompactTables bool
	// Health, when non-nil, switches the chooser to the fault-aware code
	// path (see faultaware.go): routes avoid dead routers and links, fall
	// back to non-minimal detours, and report ErrUnreachable from TryRoute
	// on partitioned pairs. The deterministic minimal-path cache is
	// bypassed in this mode because the live tables change under dynamic
	// fault events. nil (the default) is the healthy fabric and costs one
	// nil check per route.
	Health topology.Health
	// Policy, when non-nil, overrides the Mechanism passed to the chooser
	// constructor: each chooser installs a fresh instance from the
	// factory as its decision policy (see policy.go for the contract). A
	// factory rather than an instance, because Options is copied into
	// every chooser of a parallel sweep and policy state must stay
	// per-chooser.
	Policy PolicyFactory
}

// DefaultMinimalBias is the default misrouting threshold: a non-minimal
// route is taken only when it beats the best minimal route's
// backlog x hops score by more than this many byte-hops (about a dozen
// max-size packets of advantage). Calibrated so that, at the paper's
// scale, FB's best configuration is rand-adp and AMG's is cont-adp, as
// the paper reports (see EXPERIMENTS.md).
const DefaultMinimalBias = 48 * 1024

func (o Options) minimalBias() int64 {
	switch {
	case o.MinimalBias == 0:
		return DefaultMinimalBias
	case o.MinimalBias < 0:
		return 0
	default:
		return o.MinimalBias
	}
}

func (o Options) valiantCandidates() int {
	if o.ValiantCandidates <= 0 {
		return 2
	}
	return o.ValiantCandidates
}

// maxPathHops bounds the hop count of any route the chooser builds: a
// minimal segment is at most 2 local + 1 global + 2 local hops, and a
// Valiant route is two such segments. Arena slices start at this capacity so
// they never regrow.
const maxPathHops = 12

// Cache states of one (srcRouter, dstRouter) pair.
const (
	cacheUnknown uint8 = iota // not yet classified
	cacheShared               // deterministic; pathCache holds the shared hops
	cacheNever                // construction draws randomness; always rebuilt
)

// Chooser computes routes for packets. It consumes the machine through the
// topology.Interconnect seam, but only at construction: the per-route code
// runs entirely on the dense tables below (plus the lazily built caches), so
// a new topology implementation pays no per-event interface-dispatch cost
// and cannot perturb the hot path.
type Chooser struct {
	topo   topology.Interconnect
	mech   Mechanism
	policy Policy
	rng    *des.RNG
	cong   Congestion
	opts   Options

	numRouters      int
	numGroups       int
	routersPerGroup int

	// routerOf[n] is the router of node n; groupOf[r] the group of router r.
	routerOf []topology.RouterID
	groupOf  []int32
	// Intra-group next hops come in two representations. tmplNext is the
	// compressed one: the shared rpg x rpg group-0 template in local
	// indices (all groups of every shipped dragonfly are isomorphic up to
	// global wiring, verified at construction) — O(routersPerGroup^2)
	// memory for the whole machine. nextHop is the dense fallback for a
	// machine whose groups deviate: the machine's LocalNextHop flattened
	// per group, (g*R+i)*R+j (R = routersPerGroup). Exactly one is non-nil.
	tmplNext []int32
	nextHop  []topology.RouterID
	// valiant enumerates the eligible Valiant intermediate routers.
	valiant []topology.RouterID

	// Gateway-candidate cache, per (router, destination group) — the hot
	// lookup of every inter-group route, built lazily per entry. Small
	// machines keep the dense flat index nearestGW (numRouters*numGroups
	// headers); above topology.DenseTableLimit that index alone would be
	// hundreds of MB, so big machines keep nearestGWShard instead: one
	// per-router shard of numGroups slots, allocated on the first route
	// leaving that router — memory O(touched routers x groups). Exactly
	// one is non-nil.
	nearestGW      [][]topology.Gateway
	nearestGWShard [][][]topology.Gateway

	// Deterministic minimal-path cache. Pairs whose construction draws no
	// randomness (same group, or a single gateway candidate) share one hop
	// slice: serving the cached copy consumes the RNG stream exactly as a
	// rebuild would, so results stay bit-identical. Small machines keep
	// the dense tables pathCache/pathState ((numRouters)^2 entries,
	// classified lazily); big machines keep pathMemo, a lazy map keyed by
	// the router pair — a nil hops value records a never-cacheable pair.
	// Memory is O(touched pairs) instead of O(routers^2); steady-state
	// lookups are map reads, which allocate nothing.
	pathCache [][]Hop
	pathState []uint8
	pathMemo  map[uint64][]Hop
	// useArena enables the recycled hop-slice arena (off only with
	// NoCache, which reproduces the historical fresh-allocation behavior).
	useArena bool

	// freeHops is the scratch arena: hop slices recycled from delivered
	// packets and discarded adaptive candidates. Each Chooser belongs to one
	// engine/fabric (one sweep worker), so access is single-threaded.
	freeHops [][]Hop
	// candBuf is the reusable candidate scratch of adaptivePath.
	candBuf []Path

	// Degraded-mode state (all nil/unused while health is nil; see
	// faultaware.go). liveNextHop/liveDist mirror the nextHop layout with
	// BFS-over-live-links trees; the buffers are pickLiveGateway scratch.
	health      topology.Health
	liveNextHop []topology.RouterID
	liveDist    []int32
	bfsQueue    []topology.RouterID
	gwBuf       []topology.Gateway
	gwDistBuf   []int32
}

// NewChooser builds a route chooser with default Options. rng drives
// gateway and Valiant sampling; cong may be nil (treated as an idle
// network), which makes Adaptive always pick minimal paths.
func NewChooser(topo topology.Interconnect, mech Mechanism, rng *des.RNG, cong Congestion) *Chooser {
	return NewChooserOpts(topo, mech, rng, cong, Options{})
}

// NewChooserOpts builds a route chooser with explicit Options, resolving the
// machine's node attachment, group membership, canonical intra-group next
// hops, and Valiant intermediates into per-route tables. At or below
// topology.DenseTableLimit routers those are the historical dense flat arrays
// (the small-machine fast path every golden run takes); above the limit — or
// under Options.CompactTables — the chooser keeps the compressed forms: one
// shared intra-group next-hop template, per-router lazy gateway shards, and a
// memoized path map, bounding memory by O(groups + touched pairs) instead of
// O(routers^2). Routes are identical in both modes.
func NewChooserOpts(topo topology.Interconnect, mech Mechanism, rng *des.RNG, cong Congestion, opts Options) *Chooser {
	if cong == nil {
		cong = zeroCongestion{}
	}
	c := &Chooser{
		topo: topo, mech: mech, rng: rng, cong: cong, opts: opts,
		numRouters: topo.NumRouters(),
		numGroups:  topo.NumGroups(),
	}
	c.routersPerGroup = c.numRouters / c.numGroups
	compact := opts.CompactTables || c.numRouters > topology.DenseTableLimit

	c.routerOf = make([]topology.RouterID, topo.NumNodes())
	par.ForChunks(len(c.routerOf), func(lo, hi int) {
		for n := lo; n < hi; n++ {
			c.routerOf[n] = topo.RouterOfNode(topology.NodeID(n))
		}
	})
	c.groupOf = make([]int32, c.numRouters)
	par.ForChunks(c.numRouters, func(lo, hi int) {
		for r := lo; r < hi; r++ {
			c.groupOf[r] = int32(topo.GroupOfRouter(topology.RouterID(r)))
		}
	})
	rpg := c.routersPerGroup
	if tmpl, ok := topology.NewLocalTemplate(topo); ok {
		// Group-isomorphic machine (all shipped variants): one shared
		// rpg x rpg table serves every group's next-hop walk.
		c.tmplNext = tmpl.Next
	} else {
		c.nextHop = make([]topology.RouterID, c.numGroups*rpg*rpg)
		par.ForChunks(c.numGroups, func(lo, hi int) {
			for g := lo; g < hi; g++ {
				base := g * rpg
				for i := 0; i < rpg; i++ {
					for j := 0; j < rpg; j++ {
						c.nextHop[(g*rpg+i)*rpg+j] = topo.LocalNextHop(
							topology.RouterID(base+i), topology.RouterID(base+j))
					}
				}
			}
		})
	}
	c.valiant = make([]topology.RouterID, topo.NumValiantRouters())
	for i := range c.valiant {
		c.valiant[i] = topo.ValiantRouter(i)
	}
	if compact {
		c.nearestGWShard = make([][][]topology.Gateway, c.numRouters)
	} else {
		c.nearestGW = make([][]topology.Gateway, c.numRouters*c.numGroups)
	}
	if !opts.NoCache {
		if compact {
			c.pathMemo = make(map[uint64][]Hop)
		} else {
			n := c.numRouters * c.numRouters
			c.pathCache = make([][]Hop, n)
			c.pathState = make([]uint8, n)
		}
		c.useArena = true
	}
	c.health = opts.Health
	c.RebuildHealth()
	if opts.Policy != nil {
		c.policy = opts.Policy()
	} else {
		c.policy = BuiltinPolicy(mech)
	}
	c.policy.Bind(c)
	return c
}

// getHops returns an empty hop slice for path construction: recycled arena
// storage when available, fresh otherwise. With NoCache the arena is off and
// construction appends from nil, the historical behavior.
func (c *Chooser) getHops() []Hop {
	if c.opts.NoCache {
		return nil
	}
	if n := len(c.freeHops); n > 0 {
		s := c.freeHops[n-1]
		c.freeHops = c.freeHops[:n-1]
		return s
	}
	return make([]Hop, 0, maxPathHops)
}

func (c *Chooser) putHops(h []Hop) {
	if cap(h) > 0 {
		c.freeHops = append(c.freeHops, h[:0])
	}
}

// Release returns an arena-owned path's hop storage to the chooser for
// reuse. Callers that keep paths alive past the packet's lifetime (tests,
// analysis tools) simply never call it; cached and caller-built paths are
// ignored, so Release is safe on any Path. The path must not be used after
// Release.
func (c *Chooser) Release(p Path) {
	if p.arena {
		c.putHops(p.Hops)
	}
}

// Route computes the path for a packet from src to dst node. On a healthy
// fabric it cannot fail; with Options.Health set, an unroutable pair panics
// — callers that can face a partitioned fabric use TryRoute instead.
func (c *Chooser) Route(src, dst topology.NodeID) Path {
	p, err := c.TryRoute(src, dst)
	if err != nil {
		panic(err)
	}
	return p
}

// TryRoute computes the path for a packet from src to dst node, reporting an
// error wrapping ErrUnreachable when the faulted fabric has no live route
// between the pair (including a dead endpoint router). With a nil
// Options.Health the error is always nil.
func (c *Chooser) TryRoute(src, dst topology.NodeID) (Path, error) {
	rs := c.routerOf[src]
	rd := c.routerOf[dst]
	if c.health != nil {
		return c.faultRoute(rs, rd)
	}
	if rs == rd {
		return Path{}, nil
	}
	return c.policy.Route(rs, rd), nil
}

// appendLocalDOR appends the machine's canonical minimal intra-group segment
// from cur to dst (same group) using the given local VC class, returning
// dst. The segment is the nextHop table walked to the destination — on the
// XC40 grid that is the historical row-first-then-column dimension order.
func (c *Chooser) appendLocalDOR(hops []Hop, cur, dst topology.RouterID, class uint8) ([]Hop, topology.RouterID) {
	if c.tmplNext != nil {
		rpg := c.routersPerGroup
		for cur != dst {
			// Template walk in local indices, shifted by the group base.
			base := int(c.groupOf[cur]) * rpg
			next := topology.RouterID(base) +
				topology.RouterID(c.tmplNext[(int(cur)-base)*rpg+int(dst)-base])
			hops = append(hops, Hop{From: cur, To: next, Kind: Local, VC: class})
			cur = next
		}
		return hops, cur
	}
	for cur != dst {
		// Table layout (g*R+i)*R+j collapses to cur*R + (dst - g*R).
		base := int(c.groupOf[cur]) * c.routersPerGroup
		next := c.nextHop[int(cur)*c.routersPerGroup+int(dst)-base]
		hops = append(hops, Hop{From: cur, To: next, Kind: Local, VC: class})
		cur = next
	}
	return hops, cur
}

// segmentState tracks VC-class progress while a multi-segment path is built.
type segmentState struct {
	globalHops int
	midsPassed int
}

func (s segmentState) localClass() uint8  { return uint8(s.globalHops + s.midsPassed) }
func (s segmentState) globalClass() uint8 { return uint8(s.globalHops) }

// appendMinimal appends a minimal route from cur to dst given the current
// VC-class state, updating the state across global hops.
func (c *Chooser) appendMinimal(hops []Hop, cur, dst topology.RouterID, st *segmentState) ([]Hop, topology.RouterID) {
	gs := int(c.groupOf[cur])
	gd := int(c.groupOf[dst])
	if gs == gd {
		return c.appendLocalDOR(hops, cur, dst, st.localClass())
	}
	gw := c.pickGateway(cur, gs, gd)
	hops, cur = c.appendLocalDOR(hops, cur, gw.Router, st.localClass())
	hops = append(hops, Hop{From: gw.Router, To: gw.Peer, Kind: Global, VC: st.globalClass()})
	st.globalHops++
	cur = gw.Peer
	return c.appendLocalDOR(hops, cur, dst, st.localClass())
}

// pickGateway selects a global link from group gs to gd: among the gateways
// nearest to cur (fewest local hops), one uniformly at random.
func (c *Chooser) pickGateway(cur topology.RouterID, gs, gd int) topology.Gateway {
	if c.opts.Gateway == GatewayRandom {
		gws := c.topo.Gateways(gs, gd)
		if len(gws) == 0 {
			panic(fmt.Sprintf("routing: groups %d and %d not connected", gs, gd))
		}
		return gws[c.rng.Intn(len(gws))]
	}
	cand := c.gatewayCandidates(cur, gs, gd)
	if len(cand) == 1 {
		return cand[0]
	}
	return cand[c.rng.Intn(len(cand))]
}

// gatewayCandidates returns (building and caching on first use) the
// gateway set of the configured policy: the strictly nearest gateways
// (GatewayNearest), or every gateway within one local hop (GatewaySpread,
// falling back to nearest when none is that close).
func (c *Chooser) gatewayCandidates(cur topology.RouterID, gs, gd int) []topology.Gateway {
	// Resolve the cache slot for (cur, gd): dense flat index on small
	// machines, the router's lazily allocated shard on big ones.
	var slot *[]topology.Gateway
	if c.nearestGW != nil {
		slot = &c.nearestGW[int(cur)*c.numGroups+gd]
	} else {
		shard := c.nearestGWShard[cur]
		if shard == nil {
			shard = make([][]topology.Gateway, c.numGroups)
			c.nearestGWShard[cur] = shard
		}
		slot = &shard[gd]
	}
	if cand := *slot; cand != nil {
		return cand
	}
	gws := c.topo.Gateways(gs, gd)
	if len(gws) == 0 {
		panic(fmt.Sprintf("routing: groups %d and %d not connected", gs, gd))
	}
	maxDist := 0
	if c.opts.Gateway == GatewaySpread {
		maxDist = 1
	}
	best := 3
	var cand []topology.Gateway
	for _, gw := range gws {
		d := c.topo.LocalDistance(cur, gw.Router)
		switch {
		case d <= maxDist:
			if best > maxDist {
				best = maxDist
				cand = cand[:0]
			}
			cand = append(cand, gw)
		case d < best:
			best, cand = d, append(cand[:0], gw)
		case d == best && best > maxDist:
			cand = append(cand, gw)
		}
	}
	*slot = cand
	return cand
}

// minimalDeterministic reports whether the minimal path rs->rd is built
// without consuming the RNG stream: intra-group DOR never draws, and an
// inter-group route draws only when the gateway choice varies (pickGateway
// returns a single candidate without sampling; GatewayRandom always
// samples). Only such paths may be cached.
func (c *Chooser) minimalDeterministic(rs, rd topology.RouterID) bool {
	gs := int(c.groupOf[rs])
	gd := int(c.groupOf[rd])
	if gs == gd {
		return true
	}
	if c.opts.Gateway == GatewayRandom {
		return false
	}
	return len(c.gatewayCandidates(rs, gs, gd)) == 1
}

// MinimalPath builds the minimal route between two distinct routers on the
// healthy fabric — the chooser's primary construction primitive, served
// from the deterministic path cache when the pair qualifies.
func (c *Chooser) MinimalPath(rs, rd topology.RouterID) Path {
	if c.pathState != nil {
		idx := int(rs)*c.numRouters + int(rd)
		switch c.pathState[idx] {
		case cacheShared:
			return Path{Hops: c.pathCache[idx]}
		case cacheUnknown:
			if c.minimalDeterministic(rs, rd) {
				// Build once into dedicated storage and share it from now
				// on; construction draws no randomness, so serving the
				// cache is observationally identical to rebuilding.
				var st segmentState
				hops, _ := c.appendMinimal(nil, rs, rd, &st)
				c.pathCache[idx] = hops
				c.pathState[idx] = cacheShared
				return Path{Hops: hops}
			}
			c.pathState[idx] = cacheNever
		}
	} else if c.pathMemo != nil {
		// Big-machine memo: rs != rd always holds here (TryRoute returns
		// early for same-router pairs), so a cached deterministic path is
		// never empty — a nil value therefore unambiguously records a
		// never-cacheable pair. Map reads allocate nothing, keeping the
		// steady state at 0 allocs/op.
		key := uint64(uint32(rs))<<32 | uint64(uint32(rd))
		if hops, hit := c.pathMemo[key]; hit {
			if hops != nil {
				return Path{Hops: hops}
			}
		} else if c.minimalDeterministic(rs, rd) {
			var st segmentState
			hops, _ := c.appendMinimal(nil, rs, rd, &st)
			c.pathMemo[key] = hops
			return Path{Hops: hops}
		} else {
			c.pathMemo[key] = nil
		}
	}
	var st segmentState
	hops, _ := c.appendMinimal(c.getHops(), rs, rd, &st)
	return Path{Hops: hops, arena: c.useArena}
}

// ValiantPath routes minimally to a random intermediate router (drawn from
// the machine's eligible set — every router on the XC40 grid, leaves only on
// Dragonfly+), then minimally to the destination, bumping the VC class at
// the intermediate. One RNG draw per call, even when the draw degenerates
// to the minimal path.
func (c *Chooser) ValiantPath(rs, rd topology.RouterID) Path {
	mid := c.valiant[c.rng.Intn(len(c.valiant))]
	if mid == rs || mid == rd {
		return c.MinimalPath(rs, rd)
	}
	var st segmentState
	hops, cur := c.appendMinimal(c.getHops(), rs, mid, &st)
	st.midsPassed++
	hops, _ = c.appendMinimal(hops, cur, rd, &st)
	return Path{Hops: hops, arena: c.useArena}
}

func pickBest(c *Chooser, paths []Path) (int, int64) {
	best := 0
	bestScore := c.Score(paths[0])
	for i, p := range paths[1:] {
		if s := c.Score(p); s < bestScore {
			best, bestScore = i+1, s
		}
	}
	return best, bestScore
}

// Score is the UGAL candidate metric: backlog-at-first-hop x hop count; an
// empty path scores zero.
func (c *Chooser) Score(p Path) int64 {
	if len(p.Hops) == 0 {
		return 0
	}
	first := p.Hops[0]
	backlog := c.cong.OutputBacklog(first.From, first.To)
	// +1 keeps hop count significant on an idle network so that shorter
	// candidates win even at zero backlog.
	return (backlog + 1) * int64(len(p.Hops))
}

// Validate checks structural invariants of a path from rs to rd: hop
// contiguity, physical link existence, VC-class monotonicity and bounds.
// It is used by tests and by the fabric in debug builds.
func Validate(topo topology.Interconnect, rs, rd topology.RouterID, p Path) error {
	cur := rs
	lastLocal, lastGlobal := -1, -1
	for i, h := range p.Hops {
		if h.From != cur {
			return fmt.Errorf("hop %d: from %d, expected %d", i, h.From, cur)
		}
		switch h.Kind {
		case Local:
			if !topo.LocalConnected(h.From, h.To) {
				return fmt.Errorf("hop %d: no local link %d->%d", i, h.From, h.To)
			}
			if int(h.VC) < lastLocal {
				return fmt.Errorf("hop %d: local VC class decreased %d->%d", i, lastLocal, h.VC)
			}
			if h.VC >= NumLocalVC {
				return fmt.Errorf("hop %d: local VC class %d out of range", i, h.VC)
			}
			lastLocal = int(h.VC)
		case Global:
			if !topo.GlobalConnected(h.From, h.To) {
				return fmt.Errorf("hop %d: no global link %d->%d", i, h.From, h.To)
			}
			if int(h.VC) != lastGlobal+1 {
				return fmt.Errorf("hop %d: global VC class %d, want %d", i, h.VC, lastGlobal+1)
			}
			if h.VC >= NumGlobalVC {
				return fmt.Errorf("hop %d: global VC class %d out of range", i, h.VC)
			}
			lastGlobal = int(h.VC)
		default:
			return fmt.Errorf("hop %d: bad kind %v", i, h.Kind)
		}
		cur = h.To
	}
	if cur != rd {
		return fmt.Errorf("path ends at %d, want %d", cur, rd)
	}
	return nil
}
