package routing_test

import (
	"errors"
	"testing"

	"dragonfly/internal/des"
	"dragonfly/internal/faults"
	"dragonfly/internal/routing"
	"dragonfly/internal/topology"
	"dragonfly/internal/topotest"
)

// liveGlobalHop reports whether at least one live global cable joins the
// routers of a global hop — the fabric's pickLink only needs one.
func liveGlobalHop(ic topology.Interconnect, h topology.Health, from, to topology.RouterID) bool {
	for _, cn := range ic.GlobalConns() {
		if cn.A == from && cn.B == to && h.GlobalLinkUp(cn.A, cn.APort) {
			return true
		}
		if cn.B == from && cn.A == to && h.GlobalLinkUp(cn.B, cn.BPort) {
			return true
		}
	}
	return false
}

// assertLivePath fails the test when a route touches dead equipment.
func assertLivePath(t *testing.T, ic topology.Interconnect, set *faults.Set, p routing.Path) {
	t.Helper()
	for i, h := range p.Hops {
		if !set.RouterUp(h.From) || !set.RouterUp(h.To) {
			t.Fatalf("hop %d %d->%d traverses a dead router: %+v", i, h.From, h.To, p.Hops)
		}
		switch h.Kind {
		case routing.Local:
			if !set.LocalLinkUp(h.From, h.To) {
				t.Fatalf("hop %d traverses dead local link %d-%d: %+v", i, h.From, h.To, p.Hops)
			}
		case routing.Global:
			if !liveGlobalHop(ic, set, h.From, h.To) {
				t.Fatalf("hop %d has no live global cable %d->%d: %+v", i, h.From, h.To, p.Hops)
			}
		}
	}
}

// TestFaultRoutesAvoidDeadEquipment: under a moderate random fault load,
// every successfully routed pair yields a validated, VC-monotone path that
// touches only live equipment, for both mechanisms.
func TestFaultRoutesAvoidDeadEquipment(t *testing.T) {
	ic := topotest.Mini(t)
	for _, seed := range []int64{1, 2, 3} {
		set, err := faults.Resolve(&faults.Spec{GlobalFrac: 0.25, LocalFrac: 0.1, Routers: 2, Seed: seed}, ic)
		if err != nil {
			t.Fatal(err)
		}
		for _, mech := range []routing.Mechanism{routing.Minimal, routing.Adaptive} {
			rng := des.NewRNG(seed, "faulttest")
			ch := routing.NewChooserOpts(ic, mech, rng.Stream("route"), nil, routing.Options{Health: set})
			pick := rng.Stream("pairs")
			routed, unreachable := 0, 0
			for i := 0; i < 300; i++ {
				src := topology.NodeID(pick.Intn(ic.NumNodes()))
				dst := topology.NodeID(pick.Intn(ic.NumNodes()))
				if src == dst {
					continue
				}
				p, err := ch.TryRoute(src, dst)
				if err != nil {
					if !errors.Is(err, routing.ErrUnreachable) {
						t.Fatalf("seed %d %v %d->%d: non-typed failure: %v", seed, mech, src, dst, err)
					}
					unreachable++
					continue
				}
				routed++
				rs, rd := ic.RouterOfNode(src), ic.RouterOfNode(dst)
				if err := routing.Validate(ic, rs, rd, p); err != nil {
					t.Fatalf("seed %d %v %d->%d: invalid route: %v\npath: %+v", seed, mech, src, dst, err, p.Hops)
				}
				assertLivePath(t, ic, set, p)
				ch.Release(p)
			}
			if routed == 0 {
				t.Fatalf("seed %d %v: every pair unreachable under a moderate fault load", seed, mech)
			}
		}
	}
}

// TestFaultTransitFallback: with every direct gateway between two groups
// dead, minimal routing detours through a transit group — two global hops,
// still valid and live.
func TestFaultTransitFallback(t *testing.T) {
	ic := topotest.Mini(t)
	set, err := faults.Resolve(&faults.Spec{}, ic)
	if err != nil {
		t.Fatal(err)
	}
	for _, cn := range ic.GlobalConns() {
		ga, gb := ic.GroupOfRouter(cn.A), ic.GroupOfRouter(cn.B)
		if (ga == 0 && gb == 1) || (ga == 1 && gb == 0) {
			set.FailLink(cn.A, cn.B)
		}
	}
	ch := routing.NewChooserOpts(ic, routing.Minimal, des.NewRNG(1, "t").Stream("route"), nil,
		routing.Options{Health: set})
	var src, dst topology.NodeID = -1, -1
	for n := 0; n < ic.NumNodes(); n++ {
		switch ic.GroupOfNode(topology.NodeID(n)) {
		case 0:
			if src < 0 {
				src = topology.NodeID(n)
			}
		case 1:
			if dst < 0 {
				dst = topology.NodeID(n)
			}
		}
	}
	p, err := ch.TryRoute(src, dst)
	if err != nil {
		t.Fatalf("no route with direct gateways dead (transit fallback broken): %v", err)
	}
	if g := p.GlobalHops(); g != 2 {
		t.Fatalf("detour has %d global hops, want 2: %+v", g, p.Hops)
	}
	rs, rd := ic.RouterOfNode(src), ic.RouterOfNode(dst)
	if err := routing.Validate(ic, rs, rd, p); err != nil {
		t.Fatalf("detour invalid: %v\npath: %+v", err, p.Hops)
	}
	assertLivePath(t, ic, set, p)
}

// TestFaultUnreachableTyped: isolating a group entirely (all its global
// cables dead) makes cross-group routes fail with ErrUnreachable — and a
// dead endpoint router fails the same way, even same-router pairs.
func TestFaultUnreachableTyped(t *testing.T) {
	ic := topotest.Mini(t)
	set, err := faults.Resolve(&faults.Spec{}, ic)
	if err != nil {
		t.Fatal(err)
	}
	for _, cn := range ic.GlobalConns() {
		if ic.GroupOfRouter(cn.A) == 0 || ic.GroupOfRouter(cn.B) == 0 {
			set.FailLink(cn.A, cn.B)
		}
	}
	for _, mech := range []routing.Mechanism{routing.Minimal, routing.Adaptive} {
		ch := routing.NewChooserOpts(ic, mech, des.NewRNG(1, "t").Stream("route"), nil,
			routing.Options{Health: set})
		var inG0, outG0 topology.NodeID = -1, -1
		for n := 0; n < ic.NumNodes(); n++ {
			if ic.GroupOfNode(topology.NodeID(n)) == 0 {
				if inG0 < 0 {
					inG0 = topology.NodeID(n)
				}
			} else if outG0 < 0 {
				outG0 = topology.NodeID(n)
			}
		}
		_, err := ch.TryRoute(inG0, outG0)
		if !errors.Is(err, routing.ErrUnreachable) {
			t.Fatalf("%v: isolated group route err = %v, want ErrUnreachable", mech, err)
		}
		var ue *routing.UnreachableError
		if !errors.As(err, &ue) {
			t.Fatalf("%v: error %v does not carry the router pair", mech, err)
		}
		// Intra-group routes inside the isolated group still work.
		var second topology.NodeID = -1
		for n := int(inG0) + 1; n < ic.NumNodes(); n++ {
			if ic.GroupOfNode(topology.NodeID(n)) == 0 &&
				ic.RouterOfNode(topology.NodeID(n)) != ic.RouterOfNode(inG0) {
				second = topology.NodeID(n)
				break
			}
		}
		if p, err := ch.TryRoute(inG0, second); err != nil {
			t.Fatalf("%v: intra-group route inside isolated group failed: %v", mech, err)
		} else {
			ch.Release(p)
		}
		// A dead endpoint router is unreachable regardless of topology.
		set.FailRouter(ic.RouterOfNode(second))
		ch.RebuildHealth()
		if _, err := ch.TryRoute(inG0, second); !errors.Is(err, routing.ErrUnreachable) {
			t.Fatalf("%v: dead endpoint router err = %v, want ErrUnreachable", mech, err)
		}
		set.RepairRouter(ic.RouterOfNode(second))
	}
}

// TestFaultRouteDeterministic: same machine, fault spec, and seed produce
// identical routes call-for-call; the determinism contract faulted golden
// runs depend on.
func TestFaultRouteDeterministic(t *testing.T) {
	ic := topotest.Mini(t)
	build := func() *routing.Chooser {
		set, err := faults.Resolve(&faults.Spec{GlobalFrac: 0.25, Seed: 7}, ic)
		if err != nil {
			t.Fatal(err)
		}
		return routing.NewChooserOpts(ic, routing.Adaptive, des.NewRNG(9, "t").Stream("route"),
			nil, routing.Options{Health: set})
	}
	a, b := build(), build()
	pick := des.NewRNG(4, "pairs")
	for i := 0; i < 200; i++ {
		src := topology.NodeID(pick.Intn(ic.NumNodes()))
		dst := topology.NodeID(pick.Intn(ic.NumNodes()))
		pa, ea := a.TryRoute(src, dst)
		pb, eb := b.TryRoute(src, dst)
		if (ea == nil) != (eb == nil) {
			t.Fatalf("pair %d->%d: reachability differs: %v vs %v", src, dst, ea, eb)
		}
		if len(pa.Hops) != len(pb.Hops) {
			t.Fatalf("pair %d->%d: hop counts differ: %d vs %d", src, dst, len(pa.Hops), len(pb.Hops))
		}
		for j := range pa.Hops {
			if pa.Hops[j] != pb.Hops[j] {
				t.Fatalf("pair %d->%d hop %d differs: %+v vs %+v", src, dst, j, pa.Hops[j], pb.Hops[j])
			}
		}
	}
}
