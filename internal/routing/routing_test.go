package routing

import (
	"testing"
	"testing/quick"

	"dragonfly/internal/des"
	"dragonfly/internal/topology"
	"dragonfly/internal/topotest"
)

func TestMechanismStringParse(t *testing.T) {
	for _, c := range []struct {
		m Mechanism
		s string
	}{{Minimal, "min"}, {Adaptive, "adp"}} {
		if c.m.String() != c.s {
			t.Errorf("%v.String() = %q, want %q", c.m, c.m.String(), c.s)
		}
		m, err := ParseMechanism(c.s)
		if err != nil || m != c.m {
			t.Errorf("ParseMechanism(%q) = %v, %v", c.s, m, err)
		}
	}
	if _, err := ParseMechanism("bogus"); err == nil {
		t.Error("ParseMechanism accepted garbage")
	}
	if m, err := ParseMechanism("adaptive"); err != nil || m != Adaptive {
		t.Errorf("long form: %v, %v", m, err)
	}
}

func TestMinimalPathsValidAllPairsMini(t *testing.T) {
	topo := topotest.Mini(t)
	ch := NewChooser(topo, Minimal, des.NewRNG(1, "t"), nil)
	for s := topology.NodeID(0); int(s) < topo.NumNodes(); s++ {
		for d := topology.NodeID(0); int(d) < topo.NumNodes(); d++ {
			p := ch.Route(s, d)
			rs, rd := topo.RouterOfNode(s), topo.RouterOfNode(d)
			if err := Validate(topo, rs, rd, p); err != nil {
				t.Fatalf("minimal %d->%d: %v", s, d, err)
			}
			if len(p.Hops) > 5 {
				t.Fatalf("minimal %d->%d has %d hops, want <= 5", s, d, len(p.Hops))
			}
			if g := p.GlobalHops(); (topo.GroupOfNode(s) != topo.GroupOfNode(d)) != (g == 1) {
				t.Fatalf("minimal %d->%d crosses %d global links", s, d, g)
			}
		}
	}
}

func TestMinimalIntraGroupExactLength(t *testing.T) {
	topo := topotest.Mini(t)
	ch := NewChooser(topo, Minimal, des.NewRNG(1, "t"), nil)
	for s := topology.NodeID(0); int(s) < topo.NumNodes(); s++ {
		for d := topology.NodeID(0); int(d) < topo.NumNodes(); d++ {
			if topo.GroupOfNode(s) != topo.GroupOfNode(d) {
				continue
			}
			p := ch.Route(s, d)
			want := topo.MinimalRouterHops(s, d)
			if p.RoutersTraversed() != want {
				t.Fatalf("intra-group %d->%d traverses %d routers, want %d", s, d, p.RoutersTraversed(), want)
			}
		}
	}
}

func TestMinimalPathsValidSampledTheta(t *testing.T) {
	topo := topotest.Theta(t)
	rng := des.NewRNG(2, "theta")
	ch := NewChooser(topo, Minimal, rng.Stream("route"), nil)
	for i := 0; i < 2000; i++ {
		s := topology.NodeID(rng.Intn(topo.NumNodes()))
		d := topology.NodeID(rng.Intn(topo.NumNodes()))
		p := ch.Route(s, d)
		if err := Validate(topo, topo.RouterOfNode(s), topo.RouterOfNode(d), p); err != nil {
			t.Fatalf("minimal %d->%d: %v", s, d, err)
		}
	}
}

func TestValiantPathsValid(t *testing.T) {
	topo := topotest.Mini(t)
	rng := des.NewRNG(3, "v")
	ch := NewChooser(topo, Adaptive, rng.Stream("route"), nil)
	for i := 0; i < 5000; i++ {
		s := topology.NodeID(rng.Intn(topo.NumNodes()))
		d := topology.NodeID(rng.Intn(topo.NumNodes()))
		rs, rd := topo.RouterOfNode(s), topo.RouterOfNode(d)
		if rs == rd {
			continue
		}
		p := ch.ValiantPath(rs, rd)
		if err := Validate(topo, rs, rd, p); err != nil {
			t.Fatalf("valiant %d->%d: %v", s, d, err)
		}
		if p.GlobalHops() > 2 {
			t.Fatalf("valiant %d->%d took %d global hops", s, d, p.GlobalHops())
		}
	}
}

func TestVCClassBoundsProperty(t *testing.T) {
	topo := topotest.Mini(t)
	rng := des.NewRNG(4, "vc")
	ch := NewChooser(topo, Adaptive, rng.Stream("route"), nil)
	n := topo.NumNodes()
	f := func(x, y uint16) bool {
		s := topology.NodeID(int(x) % n)
		d := topology.NodeID(int(y) % n)
		p := ch.Route(s, d)
		for _, h := range p.Hops {
			switch h.Kind {
			case Local:
				if h.VC >= NumLocalVC {
					return false
				}
			case Global:
				if h.VC >= NumGlobalVC {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestAdaptiveOnIdleNetworkNeverMisroutes(t *testing.T) {
	// On an idle network the minimal-preference bias must keep adaptive
	// routing on minimal-policy paths: at most one global hop, at most
	// five hops total, and no Valiant VC-class bump.
	topo := topotest.Mini(t)
	adp := NewChooser(topo, Adaptive, des.NewRNG(5, "a"), nil)
	for i := 0; i < 500; i++ {
		rng := des.NewRNG(int64(i), "pair")
		s := topology.NodeID(rng.Intn(topo.NumNodes()))
		d := topology.NodeID(rng.Intn(topo.NumNodes()))
		pa := adp.Route(s, d)
		sameGroup := topo.GroupOfNode(s) == topo.GroupOfNode(d)
		if g := pa.GlobalHops(); (sameGroup && g != 0) || (!sameGroup && g != 1) {
			t.Fatalf("idle adaptive %d->%d took %d global hops", s, d, g)
		}
		if len(pa.Hops) > 5 {
			t.Fatalf("idle adaptive %d->%d took %d hops", s, d, len(pa.Hops))
		}
		for _, h := range pa.Hops {
			if h.Kind == Local && h.VC > 1 {
				t.Fatalf("idle adaptive %d->%d used Valiant VC class %d", s, d, h.VC)
			}
		}
	}
}

// congestedLink reports huge backlog on one directed link, zero elsewhere.
type congestedLink struct{ from, to topology.RouterID }

func (c congestedLink) OutputBacklog(from, to topology.RouterID) int64 {
	if from == c.from && to == c.to {
		return 1 << 30
	}
	return 0
}

func TestAdaptiveAvoidsCongestedFirstHop(t *testing.T) {
	topo := topotest.Mini(t)
	// Same-row pair: the minimal route's single hop is the direct link.
	rs := topo.RouterAt(0, 0, 0)
	rd := topo.RouterAt(0, 0, 3)
	s, d := topo.NodeAt(rs, 0), topo.NodeAt(rd, 0)
	cong := congestedLink{from: rs, to: rd}
	avoided := 0
	const trials = 200
	for i := 0; i < trials; i++ {
		ch := NewChooser(topo, Adaptive, des.NewRNG(int64(i), "adp"), cong)
		p := ch.Route(s, d)
		if len(p.Hops) == 0 || p.Hops[0].To != rd {
			avoided++
		}
		if err := Validate(topo, rs, rd, p); err != nil {
			t.Fatalf("trial %d: %v", i, err)
		}
	}
	if avoided < trials*3/4 {
		t.Fatalf("adaptive avoided the congested link only %d/%d times", avoided, trials)
	}
}

func TestRouteSameRouterEmptyPath(t *testing.T) {
	topo := topotest.Mini(t)
	ch := NewChooser(topo, Adaptive, des.NewRNG(9, "s"), nil)
	p := ch.Route(topo.NodeAt(5, 0), topo.NodeAt(5, 1))
	if len(p.Hops) != 0 {
		t.Fatalf("same-router path has %d hops", len(p.Hops))
	}
	if p.RoutersTraversed() != 1 {
		t.Fatalf("RoutersTraversed = %d, want 1", p.RoutersTraversed())
	}
}

func TestValidateCatchesCorruptPaths(t *testing.T) {
	topo := topotest.Mini(t)
	ch := NewChooser(topo, Minimal, des.NewRNG(10, "c"), nil)
	s := topo.NodeAt(topo.RouterAt(0, 0, 0), 0)
	d := topo.NodeAt(topo.RouterAt(1, 1, 2), 0)
	rs, rd := topo.RouterOfNode(s), topo.RouterOfNode(d)
	good := ch.Route(s, d)
	if err := Validate(topo, rs, rd, good); err != nil {
		t.Fatalf("valid path rejected: %v", err)
	}

	// Discontinuous.
	bad := Path{Hops: append([]Hop(nil), good.Hops...)}
	bad.Hops[0].From = bad.Hops[0].From + 1
	if Validate(topo, rs, rd, bad) == nil {
		t.Error("discontinuous path accepted")
	}

	// Wrong terminus.
	if Validate(topo, rs, rs, good) == nil && len(good.Hops) > 0 {
		t.Error("path with wrong terminus accepted")
	}

	// VC out of range.
	bad2 := Path{Hops: append([]Hop(nil), good.Hops...)}
	for i := range bad2.Hops {
		if bad2.Hops[i].Kind == Local {
			bad2.Hops[i].VC = NumLocalVC
			break
		}
	}
	if Validate(topo, rs, rd, bad2) == nil {
		t.Error("out-of-range local VC accepted")
	}
}

func TestGatewayNearestPolicy(t *testing.T) {
	topo := topotest.Theta(t)
	ch := NewChooserOpts(topo, Minimal, des.NewRNG(12, "gw"), nil, Options{Gateway: GatewayNearest})
	rs := topo.RouterAt(0, 2, 3)
	gw := ch.pickGateway(rs, 0, 5)
	got := topo.LocalDistance(rs, gw.Router)
	// With 120 gateways per pair spread over 96 routers, some gateway is
	// within one local hop of (often colocated with) any router.
	if got > 1 {
		t.Fatalf("picked gateway %d local hops away, want <= 1", got)
	}
	for _, alt := range topo.Gateways(0, 5) {
		if topo.LocalDistance(rs, alt.Router) < got {
			t.Fatalf("nearer gateway %v existed (d=%d) than picked (d=%d)",
				alt, topo.LocalDistance(rs, alt.Router), got)
		}
	}
}

func TestGatewaySpreadPolicyDefault(t *testing.T) {
	topo := topotest.Theta(t)
	ch := NewChooser(topo, Minimal, des.NewRNG(13, "gw"), nil)
	rs := topo.RouterAt(0, 2, 3)
	// Every candidate is within one local hop, and the candidate set is
	// far larger than the strictly-nearest set (load spreading).
	seen := map[topology.RouterID]bool{}
	for i := 0; i < 500; i++ {
		gw := ch.pickGateway(rs, 0, 5)
		if d := topo.LocalDistance(rs, gw.Router); d > 1 {
			t.Fatalf("spread policy picked gateway %d hops away", d)
		}
		seen[gw.Router] = true
	}
	if len(seen) < 5 {
		t.Fatalf("spread policy used only %d gateway routers over 500 picks", len(seen))
	}
}

func TestRandomGatewayOptionSpreadsChoice(t *testing.T) {
	topo := topotest.Theta(t)
	rng := des.NewRNG(1, "gw")
	nearest := NewChooserOpts(topo, Minimal, rng.Stream("a"), nil, Options{Gateway: GatewayNearest})
	random := NewChooserOpts(topo, Minimal, rng.Stream("b"), nil, Options{Gateway: GatewayRandom})
	rs := topo.RouterAt(0, 2, 3)
	src := topo.NodeAt(rs, 0)
	dst := topo.NodeAt(topo.RouterAt(5, 0, 0), 0)
	// Nearest-gateway routes never take a longer first segment than needed;
	// random-gateway routes frequently do.
	longer := 0
	for i := 0; i < 200; i++ {
		pn := nearest.Route(src, dst)
		pr := random.Route(src, dst)
		if err := Validate(topo, rs, topo.RouterOfNode(dst), pr); err != nil {
			t.Fatal(err)
		}
		if len(pr.Hops) > len(pn.Hops) {
			longer++
		}
	}
	if longer < 20 {
		t.Fatalf("random gateway produced longer paths only %d/200 times", longer)
	}
}

func TestValiantCandidatesOption(t *testing.T) {
	topo := topotest.Mini(t)
	rs := topo.RouterAt(0, 0, 0)
	rd := topo.RouterAt(0, 0, 3)
	s, d := topo.NodeAt(rs, 0), topo.NodeAt(rd, 0)
	cong := congestedLink{from: rs, to: rd}
	// With more Valiant candidates the adaptive policy escapes a congested
	// minimal first hop at least as often.
	avoid := func(n int) int {
		avoided := 0
		for i := 0; i < 200; i++ {
			ch := NewChooserOpts(topo, Adaptive, des.NewRNG(int64(i), "vc"), cong, Options{ValiantCandidates: n})
			p := ch.Route(s, d)
			if len(p.Hops) == 0 || p.Hops[0].To != rd {
				avoided++
			}
		}
		return avoided
	}
	two, eight := avoid(2), avoid(8)
	if eight < two {
		t.Fatalf("8 candidates avoided congestion %d times < 2 candidates' %d", eight, two)
	}
	if eight < 150 {
		t.Fatalf("8 candidates avoided only %d/200", eight)
	}
}
