package routing

// Equivalence suite for the big-machine compressed/lazy route tables. The
// contract under test: Options.CompactTables must change only the chooser's
// memory representation, never a route — same seeds in, byte-identical hops
// out, healthy or faulted, on every machine and mechanism.

import (
	"testing"

	"dragonfly/internal/des"
	"dragonfly/internal/faults"
	"dragonfly/internal/par"
	"dragonfly/internal/topology"
	"dragonfly/internal/topotest"
)

// saltedCong is a deterministic non-trivial congestion oracle so the adaptive
// scoring actually discriminates between candidates.
type saltedCong struct{}

func (saltedCong) OutputBacklog(from, to topology.RouterID) int64 {
	return int64((uint64(from)*2654435761 + uint64(to)*40503) % 9001)
}

// routeAll drives ch over a fixed deterministic pair sample, returning the
// hop sequences (copied out of any shared/arena storage).
func routeAll(t *testing.T, topo topology.Interconnect, ch *Chooser, n int) [][]Hop {
	t.Helper()
	rng := des.NewRNG(77, "cmp-pairs")
	out := make([][]Hop, 0, n)
	for len(out) < n {
		s := topology.NodeID(rng.Intn(topo.NumNodes()))
		d := topology.NodeID(rng.Intn(topo.NumNodes()))
		p, err := ch.TryRoute(s, d)
		if err != nil {
			out = append(out, []Hop{{From: -1}}) // mark unreachable pairs
			continue
		}
		out = append(out, append([]Hop(nil), p.Hops...))
		ch.Release(p)
	}
	return out
}

func sameHops(a, b [][]Hop) (int, bool) {
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return i, false
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				return i, false
			}
		}
	}
	return 0, true
}

// TestCompactRoutesIdenticalToDense: dense and compact choosers with the same
// seed must emit identical routes, pair for pair — the memoized path map
// caches exactly the pair set the dense cache classifies as deterministic, so
// RNG stream consumption is identical too (any divergence would desynchronize
// every route after it and fail loudly here).
func TestCompactRoutesIdenticalToDense(t *testing.T) {
	topotest.Each(t, func(t *testing.T, _ topology.Machine, topo topology.Interconnect) {
		for _, mech := range []Mechanism{Minimal, Adaptive} {
			for _, gw := range []GatewayPolicy{GatewaySpread, GatewayNearest, GatewayRandom} {
				dense := NewChooserOpts(topo, mech, des.NewRNG(11, "eq"), saltedCong{},
					Options{Gateway: gw})
				compact := NewChooserOpts(topo, mech, des.NewRNG(11, "eq"), saltedCong{},
					Options{Gateway: gw, CompactTables: true})
				if compact.pathMemo == nil || compact.pathState != nil {
					t.Fatal("CompactTables did not select the memoized tables")
				}
				a := routeAll(t, topo, dense, 400)
				b := routeAll(t, topo, compact, 400)
				if i, ok := sameHops(a, b); !ok {
					t.Fatalf("%v/gw=%d: route %d differs between dense and compact", mech, gw, i)
				}
			}
		}
	})
}

// TestCompactFaultRoutesIdenticalToDense repeats the equivalence on a
// degraded fabric, which exercises the resized liveNextHop tables under the
// template-backed representation.
func TestCompactFaultRoutesIdenticalToDense(t *testing.T) {
	topotest.Each(t, func(t *testing.T, _ topology.Machine, topo topology.Interconnect) {
		set, err := faults.Resolve(&faults.Spec{GlobalFrac: 0.25, LocalFrac: 0.05, Seed: 7}, topo)
		if err != nil {
			t.Fatal(err)
		}
		for _, mech := range []Mechanism{Minimal, Adaptive} {
			dense := NewChooserOpts(topo, mech, des.NewRNG(13, "feq"), saltedCong{},
				Options{Health: set})
			compact := NewChooserOpts(topo, mech, des.NewRNG(13, "feq"), saltedCong{},
				Options{Health: set, CompactTables: true})
			a := routeAll(t, topo, dense, 300)
			b := routeAll(t, topo, compact, 300)
			if i, ok := sameHops(a, b); !ok {
				t.Fatalf("%v: fault route %d differs between dense and compact", mech, i)
			}
		}
	})
}

// TestCompactWorkerCountInvariance: chooser construction is sharded across
// the par pool; the routes it produces must not depend on the worker count.
func TestCompactWorkerCountInvariance(t *testing.T) {
	topo := topotest.Mini(t)
	build := func(w int) [][]Hop {
		prev := par.SetWorkers(w)
		defer par.SetWorkers(prev)
		ch := NewChooserOpts(topo, Adaptive, des.NewRNG(3, "wrk"), saltedCong{},
			Options{CompactTables: true})
		return routeAll(t, topo, ch, 300)
	}
	want := build(1)
	for _, w := range []int{2, 3, 8} {
		if i, ok := sameHops(want, build(w)); !ok {
			t.Fatalf("workers=%d: route %d differs from single-worker build", w, i)
		}
	}
}

// columnFirst breaks group isomorphism (group 1 takes its column hop before
// its row hop) to force the chooser onto its dense per-group next-hop
// fallback; routes must still validate against the machine's own
// LocalNextHop.
type columnFirst struct{ *topology.Dragonfly }

func (l columnFirst) LocalNextHop(cur, dst topology.RouterID) topology.RouterID {
	if l.GroupOfRouter(cur) == 1 && cur != dst {
		cc, cd := l.RouterCoord(cur), l.RouterCoord(dst)
		if cc.Row != cd.Row {
			return l.RouterAt(cc.Group, cd.Row, cc.Col)
		}
		return dst
	}
	return l.Dragonfly.LocalNextHop(cur, dst)
}

func TestCompactFallsBackOnNonIsomorphicGroups(t *testing.T) {
	topo := columnFirst{topology.MustNew(topology.Mini())}
	ch := NewChooserOpts(topo, Minimal, des.NewRNG(5, "ni"), nil,
		Options{CompactTables: true})
	if ch.tmplNext != nil || ch.nextHop == nil {
		t.Fatal("non-isomorphic machine still got the shared template")
	}
	for i := 0; i < 400; i++ {
		rng := des.NewRNG(int64(i), "ni-pair")
		s := topology.NodeID(rng.Intn(topo.NumNodes()))
		d := topology.NodeID(rng.Intn(topo.NumNodes()))
		p := ch.Route(s, d)
		rs, rd := topo.RouterOfNode(s), topo.RouterOfNode(d)
		if err := Validate(topo, rs, rd, p); err != nil {
			t.Fatalf("fallback route %d->%d: %v", s, d, err)
		}
		ch.Release(p)
	}
}

// TestCompactMemoSteadyStateAllocFree: once the pair working set has been
// touched, further routes through the memoized tables must not allocate — the
// map-read guarantee the 0 allocs/op gate relies on at scale.
func TestCompactMemoSteadyStateAllocFree(t *testing.T) {
	topo := topotest.Mini(t)
	ch := NewChooserOpts(topo, Minimal, des.NewRNG(21, "al"), nil,
		Options{CompactTables: true})
	rng := des.NewRNG(22, "al-pairs")
	const pairs = 512
	srcs := make([]topology.NodeID, pairs)
	dsts := make([]topology.NodeID, pairs)
	for i := range srcs {
		srcs[i] = topology.NodeID(rng.Intn(topo.NumNodes()))
		dsts[i] = topology.NodeID(rng.Intn(topo.NumNodes()))
	}
	warm := func() {
		for i := range srcs {
			ch.Release(ch.Route(srcs[i], dsts[i]))
		}
	}
	warm()
	if avg := testing.AllocsPerRun(20, warm); avg > 0 {
		t.Fatalf("steady-state compact routing allocates %.1f per sweep, want 0", avg)
	}
}
