package routing_test

import (
	"errors"
	"testing"

	"dragonfly/internal/des"
	"dragonfly/internal/faults"
	"dragonfly/internal/routing"
	"dragonfly/internal/topology"
)

// fuzzCong is a deterministic pseudo-random congestion oracle: it gives the
// adaptive policy non-trivial, reproducible backlog readings so fuzzing
// exercises the Valiant/misroute branches, not just minimal paths.
type fuzzCong struct{ salt int64 }

func (c fuzzCong) OutputBacklog(from, to topology.RouterID) int64 {
	h := uint64(c.salt)*0x9e3779b97f4a7c15 + uint64(from)*0xbf58476d1ce4e5b9 + uint64(to)*0x94d049bb133111eb
	h ^= h >> 31
	h *= 0xd6e8feb86659fd93
	h ^= h >> 27
	return int64(h % (1 << 20))
}

// fuzzTopology derives a small but structurally varied dragonfly from raw
// fuzz bytes: 1-6 groups, 1-3 x 1-5 router grids, 1-4 nodes per router,
// with enough global ports that every group pair is wired (the generators'
// own precondition — unconnected pairs are a config error, not a routing
// bug).
func fuzzTopology(groups, rows, cols, nodesPer, extraPorts uint8) (*topology.Topology, error) {
	cfg := topology.Config{
		Groups:            1 + int(groups)%6,
		Rows:              1 + int(rows)%3,
		Cols:              1 + int(cols)%5,
		NodesPerRouter:    1 + int(nodesPer)%4,
		ChassisPerCabinet: 1 + int(rows)%2,
	}
	if cfg.Groups > 1 {
		rpg := cfg.Rows * cfg.Cols
		need := (cfg.Groups - 2) / rpg // ceil((Groups-1)/rpg) - adjusted below
		cfg.GlobalPortsPerRouter = need + 1 + int(extraPorts)%3
	}
	return topology.New(cfg)
}

// fuzzPlusTopology derives a small Dragonfly+ machine from the same raw
// bytes: 1-5 groups of 1-4 leaves x 1-3 spines with 1-4 nodes per leaf, and
// enough spine global ports that every group pair gets a gateway (the
// routing generators' precondition, as for the XC40 shape above).
func fuzzPlusTopology(groups, rows, cols, nodesPer, extraPorts uint8) (*topology.DragonflyPlus, error) {
	cfg := topology.PlusConfig{
		Groups:            1 + int(groups)%5,
		Leaves:            1 + int(rows)%4,
		Spines:            1 + int(cols)%3,
		NodesPerLeaf:      1 + int(nodesPer)%4,
		LeavesPerChassis:  1 + int(rows)%2,
		ChassisPerCabinet: 1 + int(cols)%2,
	}
	if cfg.Groups > 1 {
		need := (cfg.Groups - 1 + cfg.Spines - 1) / cfg.Spines // ceil((Groups-1)/Spines)
		cfg.GlobalPortsPerSpine = need + int(extraPorts)%3
	}
	return topology.NewPlus(cfg)
}

// FuzzRoute: for arbitrary machine shapes, endpoints, seeds, and routing
// options, every computed route must terminate, traverse only physical
// links with contiguous hops, keep VC classes monotone (the deadlock-freedom
// witness), and end at the destination router. A panic or a Validate error
// is a routing bug.
func FuzzRoute(f *testing.F) {
	f.Add(uint8(3), uint8(1), uint8(3), uint8(1), uint8(0), uint16(0), uint16(40), int64(1), true, uint8(0), uint8(2), int8(0), uint8(0))
	f.Add(uint8(0), uint8(0), uint8(0), uint8(0), uint8(0), uint16(0), uint16(1), int64(7), false, uint8(0), uint8(0), int8(0), uint8(0))
	f.Add(uint8(4), uint8(2), uint8(4), uint8(2), uint8(2), uint16(13), uint16(57), int64(42), true, uint8(1), uint8(3), int8(-1), uint8(0))
	f.Add(uint8(5), uint8(1), uint8(2), uint8(3), uint8(1), uint16(9), uint16(9), int64(3), true, uint8(2), uint8(1), int8(100), uint8(0))
	f.Add(uint8(1), uint8(2), uint8(4), uint8(1), uint8(0), uint16(5), uint16(2), int64(11), false, uint8(1), uint8(0), int8(5), uint8(0))
	f.Add(uint8(3), uint8(1), uint8(2), uint8(1), uint8(0), uint16(0), uint16(40), int64(1), true, uint8(0), uint8(2), int8(0), uint8(1))
	f.Add(uint8(4), uint8(3), uint8(1), uint8(2), uint8(1), uint16(13), uint16(57), int64(42), true, uint8(1), uint8(3), int8(-1), uint8(1))
	f.Add(uint8(2), uint8(0), uint8(2), uint8(3), uint8(2), uint16(9), uint16(3), int64(3), false, uint8(2), uint8(1), int8(7), uint8(1))
	f.Fuzz(func(t *testing.T, groups, rows, cols, nodesPer, extraPorts uint8,
		srcRaw, dstRaw uint16, seed int64, adaptive bool, gwPolicy, valiant uint8, bias int8, family uint8) {
		// family selects the machine: even = XC40 dragonfly, odd = Dragonfly+.
		var topo topology.Interconnect
		var err error
		if family%2 == 0 {
			topo, err = fuzzTopology(groups, rows, cols, nodesPer, extraPorts)
		} else {
			topo, err = fuzzPlusTopology(groups, rows, cols, nodesPer, extraPorts)
		}
		if err != nil {
			t.Skip()
		}
		if topo.NumNodes() < 2 {
			t.Skip()
		}
		src := topology.NodeID(int(srcRaw) % topo.NumNodes())
		dst := topology.NodeID(int(dstRaw) % topo.NumNodes())
		if src == dst {
			dst = topology.NodeID((int(dst) + 1) % topo.NumNodes())
		}
		mech := routing.Minimal
		if adaptive {
			mech = routing.Adaptive
		}
		opts := routing.Options{
			Gateway:           routing.GatewayPolicy(int(gwPolicy) % 3),
			ValiantCandidates: int(valiant) % 4,
			MinimalBias:       int64(bias),
		}
		rng := des.NewRNG(seed, "fuzz").Stream("route")
		ch := routing.NewChooserOpts(topo, mech, rng, fuzzCong{salt: seed}, opts)
		rs, rd := topo.RouterOfNode(src), topo.RouterOfNode(dst)
		// Route repeatedly: gateway spreading and Valiant sampling make each
		// call a fresh random path through the option space.
		for i := 0; i < 8; i++ {
			p := ch.Route(src, dst)
			if err := routing.Validate(topo, rs, rd, p); err != nil {
				t.Fatalf("machine %s %v opts %+v %d->%d: invalid route: %v\npath: %+v",
					topo.Name(), mech, opts, src, dst, err, p.Hops)
			}
			// Termination bound: worst case is Valiant through a third group
			// (2 local + global + 2 local to the intermediate, then again to
			// the destination) — anything longer means the builder wandered.
			if len(p.Hops) > 10 {
				t.Fatalf("route %d->%d has %d hops: %+v", src, dst, len(p.Hops), p.Hops)
			}
			if g := p.GlobalHops(); g > routing.NumGlobalVC {
				t.Fatalf("route %d->%d crosses %d global links (VC classes allow %d)",
					src, dst, g, routing.NumGlobalVC)
			}
		}
	})
}

// FuzzPolicy is the policy-SPI fuzzer: for arbitrary machine shapes, fault
// draws, and any installed routing policy — including the stateful
// congestion-learning qadaptive fed fuzzed saturation events — every
// TryRoute outcome must be a valid route or the typed ErrUnreachable, never
// a panic, an invalid hop, or an untyped error. It is the property twin of
// policytest.Contract: the contract pins determinism on fixed machines, the
// fuzzer hunts validity violations across the shape space.
func FuzzPolicy(f *testing.F) {
	f.Add(uint8(3), uint8(1), uint8(3), uint8(1), uint8(0), uint16(0), uint16(40), int64(1), uint8(2), uint8(0), uint8(0), uint16(9), uint8(0))
	f.Add(uint8(4), uint8(2), uint8(4), uint8(2), uint8(2), uint16(13), uint16(57), int64(42), uint8(2), uint8(40), uint8(10), uint16(1000), uint8(0))
	f.Add(uint8(5), uint8(1), uint8(2), uint8(3), uint8(1), uint16(9), uint16(9), int64(3), uint8(0), uint8(100), uint8(0), uint16(0), uint8(1))
	f.Add(uint8(2), uint8(0), uint8(2), uint8(3), uint8(2), uint16(9), uint16(3), int64(3), uint8(1), uint8(25), uint8(25), uint16(77), uint8(1))
	f.Add(uint8(6), uint8(2), uint8(3), uint8(1), uint8(2), uint16(200), uint16(7), int64(11), uint8(2), uint8(0), uint8(90), uint16(50_000), uint8(0))
	f.Fuzz(func(t *testing.T, groups, rows, cols, nodesPer, extraPorts uint8,
		srcRaw, dstRaw uint16, seed int64, policySel, globalPct, localPct uint8, satRaw uint16, family uint8) {
		var topo topology.Interconnect
		var err error
		if family%2 == 0 {
			topo, err = fuzzTopology(groups, rows, cols, nodesPer, extraPorts)
		} else {
			topo, err = fuzzPlusTopology(groups, rows, cols, nodesPer, extraPorts)
		}
		if err != nil {
			t.Skip()
		}
		if topo.NumNodes() < 2 {
			t.Skip()
		}
		var factory routing.PolicyFactory
		switch policySel % 3 {
		case 0:
			factory = func() routing.Policy { return routing.BuiltinPolicy(routing.Minimal) }
		case 1:
			factory = func() routing.Policy { return routing.BuiltinPolicy(routing.Adaptive) }
		default:
			factory = func() routing.Policy { return routing.NewQAdaptivePolicy(routing.QAdaptiveConfig{}) }
		}
		opts := routing.Options{Policy: factory}
		var set *faults.Set
		var liveGlobal map[[2]topology.RouterID]bool
		degraded := globalPct%101 != 0 || localPct%101 != 0
		if degraded {
			spec := &faults.Spec{
				GlobalFrac: float64(globalPct%101) / 100,
				LocalFrac:  float64(localPct%101) / 100,
				Seed:       seed,
			}
			set, err = faults.Resolve(spec, topo)
			if err != nil {
				t.Fatalf("in-range spec %v rejected: %v", spec, err)
			}
			opts.Health = set
			liveGlobal = map[[2]topology.RouterID]bool{}
			for _, c := range topo.GlobalConns() {
				if set.GlobalLinkUp(c.A, c.APort) {
					liveGlobal[[2]topology.RouterID{c.A, c.B}] = true
				}
				if set.GlobalLinkUp(c.B, c.BPort) {
					liveGlobal[[2]topology.RouterID{c.B, c.A}] = true
				}
			}
		}
		src := topology.NodeID(int(srcRaw) % topo.NumNodes())
		dst := topology.NodeID(int(dstRaw) % topo.NumNodes())
		if src == dst {
			dst = topology.NodeID((int(dst) + 1) % topo.NumNodes())
		}
		rng := des.NewRNG(seed, "fuzz-policy").Stream("route")
		ch := routing.NewChooserOpts(topo, routing.Minimal, rng, fuzzCong{salt: seed}, opts)
		fb := ch.Feedback()
		rs, rd := topo.RouterOfNode(src), topo.RouterOfNode(dst)
		nr := topo.NumRouters()
		for i := 0; i < 8; i++ {
			// Fuzzed reward inputs: arbitrary directed router pairs and link
			// kinds must never corrupt a learning policy's tables.
			if fb != nil {
				from := topology.RouterID((int(satRaw) + i) % nr)
				to := topology.RouterID((int(satRaw) >> 4) % nr)
				kind := routing.Global
				if i%2 == 1 {
					kind = routing.Local
				}
				fb.ObserveSaturation(from, to, kind)
			}
			p, err := ch.TryRoute(src, dst)
			if err != nil {
				if !degraded {
					t.Fatalf("machine %s policy %d %d->%d: error on healthy fabric: %v",
						topo.Name(), policySel%3, src, dst, err)
				}
				if !errors.Is(err, routing.ErrUnreachable) {
					t.Fatalf("machine %s policy %d %d->%d: untyped failure: %v",
						topo.Name(), policySel%3, src, dst, err)
				}
				continue
			}
			if err := routing.Validate(topo, rs, rd, p); err != nil {
				t.Fatalf("machine %s policy %d %d->%d: invalid route: %v\npath: %+v",
					topo.Name(), policySel%3, src, dst, err, p.Hops)
			}
			if g := p.GlobalHops(); g > routing.NumGlobalVC {
				t.Fatalf("route %d->%d crosses %d global links (VC classes allow %d)", src, dst, g, routing.NumGlobalVC)
			}
			if degraded {
				for _, h := range p.Hops {
					if !set.RouterUp(h.From) || !set.RouterUp(h.To) {
						t.Fatalf("policy %d %d->%d: hop %d->%d touches a failed router", policySel%3, src, dst, h.From, h.To)
					}
					switch h.Kind {
					case routing.Local:
						if !set.LocalLinkUp(h.From, h.To) {
							t.Fatalf("policy %d %d->%d: hop traverses failed local link %d-%d", policySel%3, src, dst, h.From, h.To)
						}
					case routing.Global:
						if !liveGlobal[[2]topology.RouterID{h.From, h.To}] {
							t.Fatalf("policy %d %d->%d: hop traverses dead global pair %d-%d", policySel%3, src, dst, h.From, h.To)
						}
					}
				}
			}
			ch.Release(p)
		}
	})
}

// FuzzRouteFaults is the degraded-fabric companion of FuzzRoute (whose
// signature and corpus stay frozen): arbitrary machine shapes carry an
// arbitrary seeded fault draw, and every TryRoute outcome must be either a
// valid route touching only live equipment or the typed ErrUnreachable —
// never a panic, a hang, or an untyped error.
func FuzzRouteFaults(f *testing.F) {
	f.Add(uint8(3), uint8(1), uint8(3), uint8(1), uint8(0), uint16(0), uint16(40), int64(1), true, uint8(40), uint8(10), uint8(1), uint8(0))
	f.Add(uint8(4), uint8(2), uint8(4), uint8(2), uint8(2), uint16(13), uint16(57), int64(42), false, uint8(100), uint8(0), uint8(0), uint8(0))
	f.Add(uint8(5), uint8(1), uint8(2), uint8(3), uint8(1), uint16(9), uint16(9), int64(3), true, uint8(0), uint8(60), uint8(3), uint8(1))
	f.Add(uint8(2), uint8(0), uint8(2), uint8(3), uint8(2), uint16(9), uint16(3), int64(3), false, uint8(25), uint8(25), uint8(2), uint8(1))
	f.Add(uint8(6), uint8(2), uint8(3), uint8(1), uint8(2), uint16(200), uint16(7), int64(11), true, uint8(90), uint8(90), uint8(5), uint8(0))
	f.Fuzz(func(t *testing.T, groups, rows, cols, nodesPer, extraPorts uint8,
		srcRaw, dstRaw uint16, seed int64, adaptive bool, globalPct, localPct, routersK, family uint8) {
		var topo topology.Interconnect
		var err error
		if family%2 == 0 {
			topo, err = fuzzTopology(groups, rows, cols, nodesPer, extraPorts)
		} else {
			topo, err = fuzzPlusTopology(groups, rows, cols, nodesPer, extraPorts)
		}
		if err != nil {
			t.Skip()
		}
		if topo.NumNodes() < 2 {
			t.Skip()
		}
		spec := &faults.Spec{
			GlobalFrac: float64(globalPct%101) / 100,
			LocalFrac:  float64(localPct%101) / 100,
			Routers:    int(routersK) % (topo.NumRouters() + 1),
			Seed:       seed,
		}
		set, err := faults.Resolve(spec, topo)
		if err != nil {
			t.Fatalf("in-range spec %v rejected: %v", spec, err)
		}
		liveGlobal := map[[2]topology.RouterID]bool{}
		for _, c := range topo.GlobalConns() {
			if set.GlobalLinkUp(c.A, c.APort) {
				liveGlobal[[2]topology.RouterID{c.A, c.B}] = true
			}
			if set.GlobalLinkUp(c.B, c.BPort) {
				liveGlobal[[2]topology.RouterID{c.B, c.A}] = true
			}
		}
		src := topology.NodeID(int(srcRaw) % topo.NumNodes())
		dst := topology.NodeID(int(dstRaw) % topo.NumNodes())
		if src == dst {
			dst = topology.NodeID((int(dst) + 1) % topo.NumNodes())
		}
		mech := routing.Minimal
		if adaptive {
			mech = routing.Adaptive
		}
		rng := des.NewRNG(seed, "fuzz-faults").Stream("route")
		ch := routing.NewChooserOpts(topo, mech, rng, fuzzCong{salt: seed}, routing.Options{Health: set})
		rs, rd := topo.RouterOfNode(src), topo.RouterOfNode(dst)
		for i := 0; i < 8; i++ {
			p, err := ch.TryRoute(src, dst)
			if err != nil {
				if !errors.Is(err, routing.ErrUnreachable) {
					t.Fatalf("machine %s %v %d->%d: untyped failure: %v", topo.Name(), mech, src, dst, err)
				}
				continue
			}
			if err := routing.Validate(topo, rs, rd, p); err != nil {
				t.Fatalf("machine %s %v %d->%d: invalid route: %v\npath: %+v",
					topo.Name(), mech, src, dst, err, p.Hops)
			}
			if g := p.GlobalHops(); g > routing.NumGlobalVC {
				t.Fatalf("route %d->%d crosses %d global links (VC classes allow %d)", src, dst, g, routing.NumGlobalVC)
			}
			for _, h := range p.Hops {
				if !set.RouterUp(h.From) || !set.RouterUp(h.To) {
					t.Fatalf("%v %d->%d: hop %d->%d touches a failed router", mech, src, dst, h.From, h.To)
				}
				switch h.Kind {
				case routing.Local:
					if !set.LocalLinkUp(h.From, h.To) {
						t.Fatalf("%v %d->%d: hop traverses failed local link %d-%d", mech, src, dst, h.From, h.To)
					}
				case routing.Global:
					if !liveGlobal[[2]topology.RouterID{h.From, h.To}] {
						t.Fatalf("%v %d->%d: hop traverses dead global pair %d-%d", mech, src, dst, h.From, h.To)
					}
				}
			}
			ch.Release(p)
		}
	})
}
