package routing

// The qadaptive policy: an online congestion-learning router in the spirit
// of the intelligent-routing interference work (PAPERS.md, arXiv
// 2403.16288), built from the same primitives as the paper's UGAL-style
// "adp". Where adp decides from the instantaneous backlog snapshot alone,
// qadaptive keeps a per-(group-pair, path-class) Q-table: every route
// updates the pair's minimal and Valiant cost estimates with an
// exponential moving average of the observed candidate scores, and the
// fabric feeds back link-saturation onsets (see Feedback) as decaying
// penalties on the minimal class — a pair whose direct global links keep
// saturating learns to prefer the Valiant detour even in moments when the
// source router's local backlog snapshot looks clean, and drifts back to
// minimal as the penalty decays.
//
// Determinism: the table update is pure float64 arithmetic in a fixed
// order, penalties decay per read (event-count-based — no wall or sim
// clock), and the only RNG draws are the same ValiantPath draws adp makes.
// Same seed + same traffic ⇒ same routes, which the policy-determinism
// suites assert across worker counts.

import (
	"dragonfly/internal/topology"
)

// QAdaptiveConfig tunes the learning policy; zero values take defaults.
type QAdaptiveConfig struct {
	// Alpha is the EMA learning rate of the Q-update
	// q += Alpha * (cost - q). Default 0.125: a pair's estimate converges
	// within a few tens of routes without thrashing on one outlier.
	Alpha float64
	// Penalty is the cost added to a group pair's pending-penalty
	// accumulator per observed saturation onset on a global link of that
	// pair. Default 4x DefaultMinimalBias, so a single saturation event
	// is already material against the misrouting threshold.
	Penalty float64
	// PenaltyDecay multiplies a pair's pending penalty each time a route
	// consumes it (decay-on-read; in (0, 1)). Default 0.875: a saturation
	// burst stays influential for a few dozen routes, then fades.
	PenaltyDecay float64
}

func (cfg QAdaptiveConfig) withDefaults() QAdaptiveConfig {
	if cfg.Alpha <= 0 {
		cfg.Alpha = 0.125
	}
	if cfg.Penalty <= 0 {
		cfg.Penalty = 4 * DefaultMinimalBias
	}
	if cfg.PenaltyDecay <= 0 || cfg.PenaltyDecay >= 1 {
		cfg.PenaltyDecay = 0.875
	}
	return cfg
}

// QAdaptivePolicy is the congestion-learning Policy. It implements
// Feedback, so a fabric-installed instance receives saturation onsets.
type QAdaptivePolicy struct {
	c   *Chooser
	cfg QAdaptiveConfig
	n   int // group count; tables are n x n

	// q holds the learned cost estimate per (source group, destination
	// group, path class), flat-indexed (gs*n+gd)*2 + class.
	q []float64
	// pen accumulates pending saturation penalties per group pair.
	pen []float64

	misroutes int64
}

// Path classes of the Q-table.
const (
	qClassMinimal = 0
	qClassValiant = 1
)

// NewQAdaptivePolicy returns a fresh unbound policy. Use an Options.Policy
// factory to install it with a non-default config; the QAdaptive mechanism
// installs the default config.
func NewQAdaptivePolicy(cfg QAdaptiveConfig) *QAdaptivePolicy {
	return &QAdaptivePolicy{cfg: cfg.withDefaults()}
}

// Name implements Policy.
func (p *QAdaptivePolicy) Name() string { return "qadaptive" }

// Bind sizes the Q-table for the chooser's machine.
func (p *QAdaptivePolicy) Bind(c *Chooser) {
	p.c = c
	p.n = c.NumGroups()
	p.q = make([]float64, p.n*p.n*2)
	p.pen = make([]float64, p.n*p.n)
}

// Misroutes counts routes where the policy chose the Valiant class — the
// behavioral signal the convergence tests assert on.
func (p *QAdaptivePolicy) Misroutes() int64 { return p.misroutes }

// QValues returns the current cost estimates for a group pair.
func (p *QAdaptivePolicy) QValues(gs, gd int) (qMin, qVal float64) {
	base := (gs*p.n + gd) * 2
	return p.q[base+qClassMinimal], p.q[base+qClassValiant]
}

// PendingPenalty returns a pair's not-yet-consumed saturation penalty.
func (p *QAdaptivePolicy) PendingPenalty(gs, gd int) float64 {
	return p.pen[gs*p.n+gd]
}

// ObserveSaturation implements Feedback: a saturation onset on a global
// link charges the link's group pair. Local and terminal saturation is
// ignored — the Q-table's path classes only differ in how they cross the
// global fabric.
func (p *QAdaptivePolicy) ObserveSaturation(from, to topology.RouterID, kind LinkKind) {
	if kind != Global {
		return
	}
	p.pen[p.c.GroupOf(from)*p.n+p.c.GroupOf(to)] += p.cfg.Penalty
}

// takePenalty consumes a pair's pending penalty: the route sees the full
// accumulated value, and the store decays so repeated consultation forgets
// an old burst geometrically.
func (p *QAdaptivePolicy) takePenalty(pair int) float64 {
	v := p.pen[pair]
	if v != 0 {
		p.pen[pair] = v * p.cfg.PenaltyDecay
	}
	return v
}

// update folds an observed cost into a table slot and returns the new
// estimate.
func (p *QAdaptivePolicy) update(pair, class int, cost float64) float64 {
	i := pair*2 + class
	p.q[i] += p.cfg.Alpha * (cost - p.q[i])
	return p.q[i]
}

// Route implements Policy. Intra-group pairs route minimally: the Q-table
// is per group pair and its two classes only differ in global-fabric
// crossing, so there is nothing to learn inside a group. Inter-group pairs
// field the same candidate set as adp (two minimal, ValiantCandidates
// non-minimal — same RNG draw pattern), but decide minimal-vs-Valiant from
// the learned estimates instead of the instantaneous scores alone.
func (p *QAdaptivePolicy) Route(rs, rd topology.RouterID) Path {
	c := p.c
	gs := c.GroupOf(rs)
	gd := c.GroupOf(rd)
	if gs == gd {
		return c.MinimalPath(rs, rd)
	}
	cands := append(c.candBuf[:0], c.MinimalPath(rs, rd), c.MinimalPath(rs, rd))
	const nMin = 2
	nonMin := c.ValiantCandidates()
	for i := 0; i < nonMin; i++ {
		cands = append(cands, c.ValiantPath(rs, rd))
	}
	c.candBuf = cands[:0]

	minIdx, minScore := pickBest(c, cands[:nMin])
	nonIdx, nonScore := pickBest(c, cands[nMin:])
	nonIdx += nMin

	win := minIdx
	if p.decide(gs*p.n+gd, minScore, nonScore) {
		win = nonIdx
	}
	for i := range cands {
		if i != win && cands[i].arena {
			c.putHops(cands[i].Hops)
		}
	}
	return cands[win]
}

// FaultRoute implements Policy on the degraded fabric: adp's candidate
// feasibility rules (infeasible candidates dropped, typed error when even
// the minimal route is gone), with the Q-decision applied whenever both
// classes fielded a candidate.
func (p *QAdaptivePolicy) FaultRoute(rs, rd topology.RouterID) (Path, error) {
	c := p.c
	first, err := c.FaultMinimalPath(rs, rd)
	if err != nil {
		return Path{}, err
	}
	gs := c.GroupOf(rs)
	gd := c.GroupOf(rd)
	if gs == gd {
		return first, nil
	}
	cands := append(c.candBuf[:0], first)
	nMin := 1
	if q, err := c.FaultMinimalPath(rs, rd); err == nil {
		cands = append(cands, q)
		nMin = 2
	}
	nonMin := c.ValiantCandidates()
	for i := 0; i < nonMin; i++ {
		if q, ok := c.FaultValiantPath(rs, rd); ok {
			cands = append(cands, q)
		}
	}
	c.candBuf = cands[:0]

	win, minScore := pickBest(c, cands[:nMin])
	if len(cands) > nMin {
		nonIdx, nonScore := pickBest(c, cands[nMin:])
		if p.decide(gs*p.n+gd, minScore, nonScore) {
			win = nonIdx + nMin
		}
	}
	for i := range cands {
		if i != win && cands[i].arena {
			c.putHops(cands[i].Hops)
		}
	}
	return cands[win], nil
}

// decide updates the pair's two estimates from the observed scores (the
// minimal class additionally charged with the pending saturation penalty)
// and reports whether the Valiant class wins against the minimal-
// preference bias. Both classes update on every inter-group route, so the
// table tracks current conditions for whichever class is not taken, too.
func (p *QAdaptivePolicy) decide(pair int, minScore, nonScore int64) bool {
	qMin := p.update(pair, qClassMinimal, float64(minScore)+p.takePenalty(pair))
	qVal := p.update(pair, qClassValiant, float64(nonScore))
	if qVal+float64(p.c.MinimalBias()) < qMin {
		p.misroutes++
		return true
	}
	return false
}
