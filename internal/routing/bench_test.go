package routing

import (
	"testing"

	"dragonfly/internal/des"
	"dragonfly/internal/faults"
	"dragonfly/internal/topology"
	"dragonfly/internal/topotest"
)

// benchRoute measures steady-state route computation with the packet-like
// lifecycle the fabric uses: every returned path is Released, so arena
// recycling is in effect and the loop should allocate (close to) nothing.
func benchRoute(b *testing.B, topo topology.Interconnect, mech Mechanism, opts Options) {
	c := NewChooserOpts(topo, mech, des.NewRNG(1, "bench"), nil, opts)
	rng := des.NewRNG(2, "pairs")
	const pairs = 1024
	srcs := make([]topology.NodeID, pairs)
	dsts := make([]topology.NodeID, pairs)
	for i := range srcs {
		srcs[i] = topology.NodeID(rng.Intn(topo.NumNodes()))
		for {
			dsts[i] = topology.NodeID(rng.Intn(topo.NumNodes()))
			if dsts[i] != srcs[i] {
				break
			}
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := c.Route(srcs[i%pairs], dsts[i%pairs])
		c.Release(p)
	}
}

func BenchmarkRouteMinimal(b *testing.B)  { benchRoute(b, topotest.Mini(b), Minimal, Options{}) }
func BenchmarkRouteAdaptive(b *testing.B) { benchRoute(b, topotest.Mini(b), Adaptive, Options{}) }

// Dragonfly+ equivalents: the SPI promises the same zero-allocation route
// hot path regardless of machine, so these sit in the default dfbench set
// next to the XC40 numbers.
func BenchmarkRoutePlusMinimal(b *testing.B) {
	benchRoute(b, topotest.PlusMini(b), Minimal, Options{})
}

func BenchmarkRoutePlusAdaptive(b *testing.B) {
	benchRoute(b, topotest.PlusMini(b), Adaptive, Options{})
}

// Compact-table equivalents: the big-machine compressed/lazy representation
// (shared template, gateway shards, memoized path map) forced on the mini
// machine, gated at the same 0 allocs/op as the dense fast path — map reads
// and shard hits allocate nothing once the pair working set is warm.
func BenchmarkRouteCompactMinimal(b *testing.B) {
	benchRoute(b, topotest.Mini(b), Minimal, Options{CompactTables: true})
}

func BenchmarkRouteCompactAdaptive(b *testing.B) {
	benchRoute(b, topotest.Mini(b), Adaptive, Options{CompactTables: true})
}

// qadaptive equivalents: the learning policy fields the same candidate set
// through the same scratch and arena as adp, plus a constant-work Q-table
// update, so it is held to the same 0 allocs/op gate in both table regimes
// (its tables are sized once at Bind).
func BenchmarkRouteQAdaptive(b *testing.B) {
	benchRoute(b, topotest.Mini(b), QAdaptive, Options{})
}

func BenchmarkRouteCompactQAdaptive(b *testing.B) {
	benchRoute(b, topotest.Mini(b), QAdaptive, Options{CompactTables: true})
}

// BenchmarkRouteMinimalNoCache is the pre-pooling baseline: fresh hop
// storage per call, kept so the cache/arena win stays visible in one run.
func BenchmarkRouteMinimalNoCache(b *testing.B) {
	benchRoute(b, topotest.Mini(b), Minimal, Options{NoCache: true})
}

func BenchmarkRouteAdaptiveNoCache(b *testing.B) {
	benchRoute(b, topotest.Mini(b), Adaptive, Options{NoCache: true})
}

// Degraded-mode benchmarks: route computation with a quarter of the global
// links dead. These bound the fault-mode overhead; the healthy-path
// benchmarks above are the 0 allocs/op gate proving the Health nil check
// costs nothing when no fault set is installed.
func benchRouteFault(b *testing.B, mech Mechanism) {
	topo := topotest.Mini(b)
	set, err := faults.Resolve(&faults.Spec{GlobalFrac: 0.25, Seed: 3}, topo)
	if err != nil {
		b.Fatal(err)
	}
	c := NewChooserOpts(topo, mech, des.NewRNG(1, "bench"), nil, Options{Health: set})
	rng := des.NewRNG(2, "pairs")
	const pairs = 1024
	srcs := make([]topology.NodeID, 0, pairs)
	dsts := make([]topology.NodeID, 0, pairs)
	for len(srcs) < pairs {
		s := topology.NodeID(rng.Intn(topo.NumNodes()))
		d := topology.NodeID(rng.Intn(topo.NumNodes()))
		if s == d {
			continue
		}
		if _, err := c.TryRoute(s, d); err != nil {
			continue // keep the loop on the routable (steady-state) pairs
		}
		srcs = append(srcs, s)
		dsts = append(dsts, d)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, err := c.TryRoute(srcs[i%pairs], dsts[i%pairs])
		if err != nil {
			b.Fatal(err)
		}
		c.Release(p)
	}
}

func BenchmarkRouteFaultMinimal(b *testing.B)  { benchRouteFault(b, Minimal) }
func BenchmarkRouteFaultAdaptive(b *testing.B) { benchRouteFault(b, Adaptive) }
