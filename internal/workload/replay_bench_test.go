package workload

import (
	"testing"

	"dragonfly/internal/des"
	"dragonfly/internal/topology"
	"dragonfly/internal/trace"
)

// benchFabric completes sends after a payload-proportional delay without
// modeling a network, so the benchmarks measure the graph executor alone
// (the real fabric allocates per-message flow state of its own). Scheduling
// goes through AtCall with a package-level callback and the executor's
// prebuilt completion funcs as pointer-shaped args — zero allocations — so
// a regression in the benchmark's allocs/op is the executor's.
type benchFabric struct {
	eng   *des.Engine
	nodes int
}

func fireTimed(arg any, at des.Time) { arg.(func(des.Time))(at) }

func (f *benchFabric) Engine() *des.Engine { return f.eng }
func (f *benchFabric) NodeCount() int      { return f.nodes }

func (f *benchFabric) Send(src, dst topology.NodeID, bytes int64, onInjected, onDelivered func(des.Time)) {
	inj := f.eng.Now() + des.Time(1+bytes/64)
	if onInjected != nil {
		f.eng.AtCall(inj, fireTimed, onInjected)
	}
	if onDelivered != nil {
		f.eng.AtCall(inj+500, fireTimed, onDelivered)
	}
}

func (f *benchFabric) AvgHops(topology.NodeID) (float64, int64) { return 0, 0 }

// benchReplayGraph drives one graph to completion per iteration on a warm
// Replay: the first (untimed) run sizes every internal buffer, then Reset
// restarts the job at the engine's current clock. Steady state must stay at
// 0 allocs/op — the executor's warm-path contract.
func benchReplayGraph(b *testing.B, g *trace.Graph) {
	b.Helper()
	eng := des.New()
	fab := &benchFabric{eng: eng, nodes: g.NumRanks()}
	nodes := make([]topology.NodeID, g.NumRanks())
	for i := range nodes {
		nodes[i] = topology.NodeID(i)
	}
	rep, err := NewReplay(fab, Job{Name: g.App, Graph: g, Nodes: nodes})
	if err != nil {
		b.Fatalf("NewReplay: %v", err)
	}
	rep.Start()
	eng.Run()
	if !rep.Done() {
		b.Fatal("warm-up run incomplete")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep.Reset(eng.Now())
		rep.Start()
		eng.Run()
		if !rep.Done() {
			b.Fatal("run incomplete")
		}
	}
}

// BenchmarkReplayGraphRing is the pipelined-dependency shape: long per-rank
// chains of alternating sends and receives.
func BenchmarkReplayGraphRing(b *testing.B) {
	g, err := trace.RingAllReduce(trace.RingAllReduceConfig{Ranks: 32, Bytes: 256 * trace.KB, Rounds: 1})
	if err != nil {
		b.Fatal(err)
	}
	benchReplayGraph(b, g)
}

// BenchmarkReplayGraphMoE is the fan-heavy shape: wide windowed all-to-all
// phases joined by zero-delay computes.
func BenchmarkReplayGraphMoE(b *testing.B) {
	g, err := trace.MoEAllToAll(trace.MoEAllToAllConfig{Ranks: 24, Bytes: 32 * trace.KB, Rounds: 1, Window: 8})
	if err != nil {
		b.Fatal(err)
	}
	benchReplayGraph(b, g)
}

// BenchmarkReplayGraphLoweredCR replays a flat miniapp trace through the
// lowering path — the exact graphs every paper experiment now executes.
func BenchmarkReplayGraphLoweredCR(b *testing.B) {
	tr, err := trace.CR(trace.CRConfig{Ranks: 24, MessageBytes: 12 * trace.KB})
	if err != nil {
		b.Fatal(err)
	}
	benchReplayGraph(b, tr.Graph())
}
