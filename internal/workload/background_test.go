package workload

import (
	"testing"

	"dragonfly/internal/des"
	"dragonfly/internal/placement"
	"dragonfly/internal/routing"
	"dragonfly/internal/topology"
	"dragonfly/internal/trace"
)

func TestPeakLoadMatchesTableII(t *testing.T) {
	// Sec. IV-C / Table II: with the Theta machine, the background job
	// occupies all nodes not assigned to the target application. The
	// published peak loads decode exactly to 16 KiB uniform messages and
	// 16 KiB (CR) / 1 KiB (FB, AMG) bursty per-peer messages.
	topo := topology.MustNew(topology.Theta())
	const MiB = 1024 * 1024
	cases := []struct {
		app      string
		appRanks int
		cfg      BackgroundConfig
		want     float64 // in the table's units
		unit     float64
	}{
		{"CR", 1000, BackgroundConfig{Kind: UniformRandom, MsgBytes: 16 * 1024, Interval: des.Millisecond}, 38.38, MiB},
		{"FB", 1000, BackgroundConfig{Kind: UniformRandom, MsgBytes: 16 * 1024, Interval: des.Millisecond}, 38.38, MiB},
		{"AMG", 1728, BackgroundConfig{Kind: UniformRandom, MsgBytes: 16 * 1024, Interval: des.Millisecond}, 27.00, MiB},
		{"CR", 1000, BackgroundConfig{Kind: Bursty, MsgBytes: 16 * 1024, Interval: des.Millisecond}, 92.00, 1024 * MiB},
		{"FB", 1000, BackgroundConfig{Kind: Bursty, MsgBytes: 1024, Interval: des.Millisecond}, 5.75, 1024 * MiB},
		{"AMG", 1728, BackgroundConfig{Kind: Bursty, MsgBytes: 1024, Interval: des.Millisecond}, 2.85, 1024 * MiB},
	}
	for _, c := range cases {
		bgNodes := topo.NumNodes() - c.appRanks
		got := float64(c.cfg.PeakLoad(bgNodes)) / c.unit
		if got < c.want*0.99 || got > c.want*1.01 {
			t.Errorf("%s %v: peak load %.2f, want %.2f (±1%%)", c.app, c.cfg.Kind, got, c.want)
		}
	}
}

func TestPeakLoadEdgeCases(t *testing.T) {
	cfg := BackgroundConfig{Kind: Bursty, MsgBytes: 100, Interval: 1, FanOut: 3}
	if got := cfg.PeakLoad(10); got != 10*3*100 {
		t.Errorf("fan-out peak load = %d", got)
	}
	if got := cfg.PeakLoad(1); got != 0 {
		t.Errorf("single-node job peak load = %d, want 0", got)
	}
	cfg.FanOut = 100 // larger than the job: clamps to n-1
	if got := cfg.PeakLoad(4); got != 4*3*100 {
		t.Errorf("clamped fan-out peak load = %d", got)
	}
}

func TestBackgroundConfigValidate(t *testing.T) {
	bad := []BackgroundConfig{
		{Kind: UniformRandom, MsgBytes: 0, Interval: 1},
		{Kind: UniformRandom, MsgBytes: 1, Interval: 0},
		{Kind: Bursty, MsgBytes: 1, Interval: 1, FanOut: -1},
	}
	for i, c := range bad {
		if c.Validate() == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestUniformBackgroundGeneratesSteadyTraffic(t *testing.T) {
	f := miniFabric(t, routing.Minimal, 20)
	nodes := f.Topology()
	all := make([]topology.NodeID, nodes.NumNodes())
	for i := range all {
		all[i] = topology.NodeID(i)
	}
	cfg := BackgroundConfig{Kind: UniformRandom, MsgBytes: 4096, Interval: 10 * des.Microsecond}
	bg := StartBackground(f, cfg, all, des.NewRNG(1, "bg"))
	f.Engine().RunUntil(105 * des.Microsecond)
	bg.Stop()
	// 10 waves x 64 nodes = 640 messages.
	if bg.MessagesSent < 500 || bg.MessagesSent > 700 {
		t.Fatalf("uniform background sent %d messages over 10 intervals, want ~640", bg.MessagesSent)
	}
	f.Engine().Run() // drain in-flight traffic
	after := bg.MessagesSent
	f.Engine().Run()
	if bg.MessagesSent != after {
		t.Fatal("background kept sending after Stop")
	}
}

func TestBurstyBackgroundWaves(t *testing.T) {
	f := miniFabric(t, routing.Adaptive, 21)
	all := make([]topology.NodeID, f.Topology().NumNodes())
	for i := range all {
		all[i] = topology.NodeID(i)
	}
	cfg := BackgroundConfig{Kind: Bursty, MsgBytes: 1024, Interval: des.Millisecond, FanOut: 0}
	bg := StartBackground(f, cfg, all, des.NewRNG(2, "bg"))
	f.Engine().RunUntil(des.Millisecond) // exactly one wave
	n := int64(len(all))
	if bg.MessagesSent != n*(n-1) {
		t.Fatalf("bursty wave sent %d messages, want %d (all-to-all)", bg.MessagesSent, n*(n-1))
	}
	if bg.BytesSent != cfg.PeakLoad(len(all)) {
		t.Fatalf("bursty wave bytes %d != PeakLoad %d", bg.BytesSent, cfg.PeakLoad(len(all)))
	}
	bg.Stop()
}

func TestBurstyFanOutSubset(t *testing.T) {
	f := miniFabric(t, routing.Minimal, 22)
	all := make([]topology.NodeID, f.Topology().NumNodes())
	for i := range all {
		all[i] = topology.NodeID(i)
	}
	cfg := BackgroundConfig{Kind: Bursty, MsgBytes: 512, Interval: des.Millisecond, FanOut: 3}
	bg := StartBackground(f, cfg, all, des.NewRNG(3, "bg"))
	f.Engine().RunUntil(des.Millisecond)
	if bg.MessagesSent != int64(len(all))*3 {
		t.Fatalf("fan-out wave sent %d messages, want %d", bg.MessagesSent, len(all)*3)
	}
	bg.Stop()
}

func TestBackgroundInterferesWithApplication(t *testing.T) {
	// The qualitative core of Sec. IV-C: an application's communication
	// time grows when background traffic shares the network.
	run := func(withBG bool) des.Time {
		f := miniFabric(t, routing.Adaptive, 23)
		tr, _ := trace.CR(trace.CRConfig{Ranks: 16, MessageBytes: 64 * trace.KB})
		nodes, _ := placement.Allocate(f.Topology(), placement.RandomNode, 16, des.NewRNG(4, "a"))
		r, _ := NewReplay(f, Job{Name: "app", Trace: tr, Nodes: nodes})
		var bg *Background
		if withBG {
			rest := placement.Remaining(f.Topology(), nodes)
			bg = StartBackground(f, BackgroundConfig{
				Kind: UniformRandom, MsgBytes: 64 * 1024, Interval: 2 * des.Microsecond,
			}, rest, des.NewRNG(5, "bg"))
		}
		r.Start()
		eng := f.Engine()
		for !r.Done() && eng.Step() {
		}
		if bg != nil {
			bg.Stop()
		}
		if !r.Done() {
			t.Fatal("app never finished")
		}
		return r.MaxCommTime()
	}
	clean, noisy := run(false), run(true)
	if noisy <= clean {
		t.Fatalf("background traffic did not slow the app: clean=%v noisy=%v", clean, noisy)
	}
}

func TestBackgroundTinyJobInert(t *testing.T) {
	f := miniFabric(t, routing.Minimal, 24)
	bg := StartBackground(f, BackgroundConfig{
		Kind: UniformRandom, MsgBytes: 100, Interval: des.Microsecond,
	}, []topology.NodeID{3}, des.NewRNG(6, "bg"))
	f.Engine().RunUntil(10 * des.Microsecond)
	if bg.MessagesSent != 0 {
		t.Fatalf("single-node background sent %d messages", bg.MessagesSent)
	}
}
