// Package workload replays application traces on the network fabric with
// MPI-like semantics — the role of the trace replay layer of CODES — and
// generates the paper's synthetic background jobs (Sec. IV-C).
//
// Replay semantics: each rank executes its op list in order. Nonblocking
// sends are eager — they complete when the last byte is injected at the
// NIC; nonblocking receives complete when the matching message has fully
// arrived; WaitAll blocks the rank until both sets drain. Computation time
// is zero throughout, as in the paper's simulations.
package workload

import (
	"fmt"

	"dragonfly/internal/des"
	"dragonfly/internal/network"
	"dragonfly/internal/topology"
	"dragonfly/internal/trace"
)

// Job binds a trace to machine nodes.
type Job struct {
	Name  string
	Trace *trace.Trace
	// Nodes maps rank i to Nodes[i]; it must cover every rank.
	Nodes []topology.NodeID
	// MsgScale multiplies every transfer size — the knob of the paper's
	// communication-intensity sensitivity study (Sec. IV-B). Zero means 1.
	MsgScale float64
	// Start is the simulated time the job begins.
	Start des.Time
	// OnComplete, when non-nil, fires once when the job's last rank
	// finishes (batch schedulers use it to release the allocation).
	OnComplete func(des.Time)
}

type recvKey struct {
	src int32
	tag int32
}

type rankState struct {
	ops          []trace.Op
	pc           int
	pendingSends int
	pendingRecvs int
	expected     map[recvKey]int // posted receives not yet arrived
	surplus      map[recvKey]int // arrivals with no posted receive yet
	blocked      bool
	finished     des.Time // -1 until the rank completes
}

// Replay drives one job on a fabric.
type Replay struct {
	f     *network.Fabric
	job   Job
	scale float64
	ranks []rankState
	done  int
}

// NewReplay validates the job and prepares (but does not start) the replay.
func NewReplay(f *network.Fabric, job Job) (*Replay, error) {
	n := job.Trace.NumRanks()
	if n == 0 {
		return nil, fmt.Errorf("workload: job %q has no ranks", job.Name)
	}
	if len(job.Nodes) < n {
		return nil, fmt.Errorf("workload: job %q has %d ranks but %d nodes", job.Name, n, len(job.Nodes))
	}
	seen := make(map[topology.NodeID]bool, n)
	for _, node := range job.Nodes[:n] {
		if int(node) < 0 || int(node) >= f.NodeCount() {
			return nil, fmt.Errorf("workload: job %q node %d out of range", job.Name, node)
		}
		if seen[node] {
			return nil, fmt.Errorf("workload: job %q maps two ranks to node %d", job.Name, node)
		}
		seen[node] = true
	}
	scale := job.MsgScale
	if scale <= 0 {
		scale = 1
	}
	r := &Replay{f: f, job: job, scale: scale, ranks: make([]rankState, n)}
	for i := range r.ranks {
		r.ranks[i] = rankState{
			ops:      job.Trace.Ranks[i],
			expected: make(map[recvKey]int),
			surplus:  make(map[recvKey]int),
			finished: -1,
		}
	}
	return r, nil
}

// Start schedules the job's first operations at job.Start.
func (r *Replay) Start() {
	r.f.Engine().At(r.job.Start, func() {
		for i := range r.ranks {
			r.advance(i)
		}
	})
}

// scaleBytes applies the sensitivity-study message scale.
func (r *Replay) scaleBytes(b int64) int64 {
	if r.scale == 1 {
		return b
	}
	s := int64(float64(b) * r.scale)
	if s < 1 {
		s = 1
	}
	return s
}

// advance executes ops for a rank until it blocks on a fence or finishes.
func (r *Replay) advance(rank int) {
	st := &r.ranks[rank]
	for st.pc < len(st.ops) {
		op := st.ops[st.pc]
		switch op.Kind {
		case trace.OpISend:
			st.pc++
			st.pendingSends++
			dstRank := int(op.Peer)
			key := recvKey{src: int32(rank), tag: op.Tag}
			r.f.Send(
				r.job.Nodes[rank], r.job.Nodes[dstRank], r.scaleBytes(op.Bytes),
				func(des.Time) { r.sendInjected(rank) },
				func(des.Time) { r.messageArrived(dstRank, key) },
			)
		case trace.OpIRecv:
			st.pc++
			key := recvKey{src: op.Peer, tag: op.Tag}
			if st.surplus[key] > 0 {
				st.surplus[key]--
				if st.surplus[key] == 0 {
					delete(st.surplus, key)
				}
			} else {
				st.expected[key]++
				st.pendingRecvs++
			}
		case trace.OpWaitAll:
			if st.pendingSends+st.pendingRecvs > 0 {
				st.blocked = true
				return
			}
			st.pc++
		default:
			panic(fmt.Sprintf("workload: rank %d: unknown op kind %v", rank, op.Kind))
		}
	}
	if st.finished < 0 && st.pendingSends+st.pendingRecvs == 0 {
		r.finishRank(st)
	}
}

func (r *Replay) finishRank(st *rankState) {
	st.finished = r.f.Engine().Now()
	r.done++
	if r.done == len(r.ranks) && r.job.OnComplete != nil {
		r.job.OnComplete(st.finished)
	}
}

func (r *Replay) sendInjected(rank int) {
	st := &r.ranks[rank]
	st.pendingSends--
	r.maybeResume(rank)
}

func (r *Replay) messageArrived(rank int, key recvKey) {
	st := &r.ranks[rank]
	if st.expected[key] > 0 {
		st.expected[key]--
		if st.expected[key] == 0 {
			delete(st.expected, key)
		}
		st.pendingRecvs--
		r.maybeResume(rank)
		return
	}
	st.surplus[key]++
}

func (r *Replay) maybeResume(rank int) {
	st := &r.ranks[rank]
	if st.pendingSends+st.pendingRecvs > 0 {
		return
	}
	if st.blocked {
		st.blocked = false
		st.pc++ // past the fence that blocked us
		r.advance(rank)
	} else if st.pc == len(st.ops) && st.finished < 0 {
		// Trailing nonblocking ops completed after the rank ran out of ops.
		r.finishRank(st)
	}
}

// Done reports whether every rank has completed all its operations.
func (r *Replay) Done() bool { return r.done == len(r.ranks) }

// RanksDone returns how many ranks have finished.
func (r *Replay) RanksDone() int { return r.done }

// CommTimes returns each rank's communication time — the paper's metric:
// the time the rank spent completing all its message operations (ranks
// start at job start and perform no computation). Unfinished ranks are
// reported with the span up to the current simulated time.
func (r *Replay) CommTimes() []des.Time {
	out := make([]des.Time, len(r.ranks))
	now := r.f.Engine().Now()
	for i, st := range r.ranks {
		end := st.finished
		if end < 0 {
			end = now
		}
		out[i] = end - r.job.Start
	}
	return out
}

// MaxCommTime returns the slowest rank's communication time.
func (r *Replay) MaxCommTime() des.Time {
	var max des.Time
	for _, t := range r.CommTimes() {
		if t > max {
			max = t
		}
	}
	return max
}

// Nodes returns the node of each rank.
func (r *Replay) Nodes() []topology.NodeID {
	return r.job.Nodes[:len(r.ranks)]
}

// AvgHopsPerRank returns the paper's per-rank average hop counts: the mean
// routers traversed by packets delivered to each rank's node.
func (r *Replay) AvgHopsPerRank() []float64 {
	out := make([]float64, len(r.ranks))
	for i, node := range r.Nodes() {
		out[i], _ = r.f.AvgHops(node)
	}
	return out
}
