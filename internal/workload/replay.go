// Package workload executes application workloads on the network fabric
// with MPI-like semantics — the role of the trace replay layer of CODES —
// and generates the paper's synthetic background jobs (Sec. IV-C).
//
// The executor is graph-driven: every workload is a dependency-graph IR
// (trace.Graph — send/recv/compute nodes with explicit same-rank dependency
// edges; see ATLAHS's GOAL graphs, arXiv 2505.08936). Flat op-list traces
// lower into the IR on the way in (trace.Trace.Graph), so the three paper
// miniapps replay through the same engine as the collective generators.
//
// Execution semantics: a node becomes ready when every dependency has
// completed; ready nodes execute in ascending node-index order within a
// rank. Sends are eager — the node completes when the last byte is injected
// at the NIC. Receives complete when the matching message has fully
// arrived; arrivals match posted receives first-posted-first-matched per
// (peer, tag), MPI-like. Compute nodes complete Delay after becoming ready;
// zero-delay computes (lowered WaitAll fences) complete inline, consuming
// no DES events and no simulated time. That discipline makes a lowered flat
// trace execute byte-identically to the historical fence-based walker — the
// property pinned by internal/topotest's differential replay digests.
package workload

import (
	"fmt"

	"dragonfly/internal/des"
	"dragonfly/internal/topology"
	"dragonfly/internal/trace"
)

// Fabric is the transport the replay engine drives. *network.Fabric is the
// production implementation; benchmarks substitute a loopback stub to
// measure the executor's own allocation behavior in isolation.
type Fabric interface {
	Engine() *des.Engine
	NodeCount() int
	// Send queues bytes from src to dst; onInjected fires when the last
	// byte leaves the source NIC, onDelivered when it reaches dst's NIC.
	Send(src, dst topology.NodeID, bytes int64, onInjected, onDelivered func(des.Time))
	// AvgHops returns the mean routers traversed by packets delivered to a
	// node.
	AvgHops(node topology.NodeID) (avg float64, packets int64)
}

// Job binds a workload to machine nodes.
type Job struct {
	Name string
	// Graph is the workload in dependency-graph IR. When nil, Trace is
	// lowered into it (trace.Trace.Graph) at NewReplay.
	Graph *trace.Graph
	// Trace is the flat op-list form; used only when Graph is nil.
	Trace *trace.Trace
	// Nodes maps rank i to Nodes[i]; it must cover every rank.
	Nodes []topology.NodeID
	// MsgScale multiplies every transfer size — the knob of the paper's
	// communication-intensity sensitivity study (Sec. IV-B). Zero means 1.
	MsgScale float64
	// Start is the simulated time the job begins.
	Start des.Time
	// OnComplete, when non-nil, fires once when the job's last rank
	// finishes (batch schedulers use it to release the allocation).
	OnComplete func(des.Time)
}

type recvKey struct {
	src int32
	tag int32
}

// recvState tracks one (peer, tag) matching lane of a rank: a FIFO of
// executed-but-unmatched receive nodes, and the count of arrivals that beat
// any posted receive. At most one side is nonzero.
type recvState struct {
	q       []int32 // posted receive node indices, FIFO from head
	head    int
	surplus int32 // arrivals with no posted receive yet
}

// rankState is one rank's executor state. The adjacency (succOff/succList
// CSR over dependency edges), the pristine in-degrees, and the per-node
// completion callbacks are built once; Reset restores everything else for
// warm reuse.
type rankState struct {
	nodes    []trace.GraphNode
	indeg    []int32 // remaining unmet dependencies, mutated during the run
	indeg0   []int32 // pristine copy for Reset
	succOff  []int32 // CSR row offsets into succList, len(nodes)+1
	succList []int32 // dependents of each node, ascending within a row
	ready    []int32 // min-heap of ready node indices

	// Completion callbacks, prebuilt so the steady state allocates nothing:
	// onInj/onDel for send nodes (handed to Fabric.Send), delayed for
	// compute nodes with Delay > 0 (handed to Engine.At).
	onInj   []func(des.Time)
	onDel   []func(des.Time)
	delayed []func()

	recv      map[recvKey]*recvState
	remaining int      // nodes not yet completed
	finished  des.Time // -1 until the rank completes
}

// Replay drives one job on a fabric.
type Replay struct {
	f       Fabric
	job     Job
	scale   float64
	ranks   []rankState
	done    int
	startCB func()
}

// NewReplay validates the job and prepares (but does not start) the replay.
// The returned Replay owns prebuilt per-node callbacks and adjacency, so a
// job can be re-run with Reset without further allocation.
func NewReplay(f Fabric, job Job) (*Replay, error) {
	if job.Graph == nil {
		if job.Trace == nil {
			return nil, fmt.Errorf("workload: job %q has neither graph nor trace", job.Name)
		}
		job.Graph = job.Trace.Graph()
	}
	g := job.Graph
	n := g.NumRanks()
	if n == 0 {
		return nil, fmt.Errorf("workload: job %q has no ranks", job.Name)
	}
	if len(job.Nodes) < n {
		return nil, fmt.Errorf("workload: job %q has %d ranks but %d nodes", job.Name, n, len(job.Nodes))
	}
	seen := make(map[topology.NodeID]bool, n)
	for _, node := range job.Nodes[:n] {
		if int(node) < 0 || int(node) >= f.NodeCount() {
			return nil, fmt.Errorf("workload: job %q node %d out of range", job.Name, node)
		}
		if seen[node] {
			return nil, fmt.Errorf("workload: job %q maps two ranks to node %d", job.Name, node)
		}
		seen[node] = true
	}
	scale := job.MsgScale
	if scale <= 0 {
		scale = 1
	}
	r := &Replay{f: f, job: job, scale: scale, ranks: make([]rankState, n)}
	for rank := range r.ranks {
		r.buildRank(rank, g.Ranks[rank])
	}
	r.startCB = func() {
		for rank := range r.ranks {
			st := &r.ranks[rank]
			if st.remaining == 0 {
				r.finishRank(st)
				continue
			}
			for i := range st.nodes {
				if st.indeg[i] == 0 {
					heapPush(&st.ready, int32(i))
				}
			}
			r.drain(rank)
		}
	}
	return r, nil
}

// buildRank wires one rank: in-degrees, the CSR successor adjacency, and
// the per-node completion callbacks.
func (r *Replay) buildRank(rank int, nodes []trace.GraphNode) {
	st := &r.ranks[rank]
	st.nodes = nodes
	st.indeg = make([]int32, len(nodes))
	st.indeg0 = make([]int32, len(nodes))
	st.succOff = make([]int32, len(nodes)+1)
	st.recv = map[recvKey]*recvState{}
	st.remaining = len(nodes)
	st.finished = -1

	edges := 0
	for i := range nodes {
		d := len(nodes[i].Deps)
		st.indeg0[i] = int32(d)
		edges += d
		for _, dep := range nodes[i].Deps {
			st.succOff[dep+1]++
		}
	}
	copy(st.indeg, st.indeg0)
	for i := 0; i < len(nodes); i++ {
		st.succOff[i+1] += st.succOff[i]
	}
	st.succList = make([]int32, edges)
	fill := make([]int32, len(nodes))
	for i := range nodes {
		for _, dep := range nodes[i].Deps {
			st.succList[st.succOff[dep]+fill[dep]] = int32(i)
			fill[dep]++
		}
	}

	hasSend, hasDelay := false, false
	for i := range nodes {
		switch nodes[i].Kind {
		case trace.NodeSend:
			hasSend = true
		case trace.NodeCompute:
			if nodes[i].Delay > 0 {
				hasDelay = true
			}
		}
	}
	if hasSend {
		st.onInj = make([]func(des.Time), len(nodes))
		st.onDel = make([]func(des.Time), len(nodes))
	}
	if hasDelay {
		st.delayed = make([]func(), len(nodes))
	}
	for i := range nodes {
		node := &nodes[i]
		switch node.Kind {
		case trace.NodeSend:
			rank, idx := rank, int32(i)
			dstRank := int(node.Peer)
			key := recvKey{src: int32(rank), tag: node.Tag}
			st.onInj[i] = func(des.Time) {
				r.complete(rank, idx)
				r.drain(rank)
			}
			st.onDel[i] = func(des.Time) { r.messageArrived(dstRank, key) }
		case trace.NodeCompute:
			if node.Delay > 0 {
				rank, idx := rank, int32(i)
				st.delayed[i] = func() {
					r.complete(rank, idx)
					r.drain(rank)
				}
			}
		}
	}
}

// Start schedules the job's first operations at job.Start.
func (r *Replay) Start() {
	r.f.Engine().At(r.job.Start, r.startCB)
}

// Reset restores the replay to its pre-Start state with a new start time,
// reusing every map entry, queue, and callback — the warm path allocates
// nothing. The fabric's simulated clock only moves forward, so start must
// not precede the engine's current time.
func (r *Replay) Reset(start des.Time) {
	r.job.Start = start
	r.done = 0
	for rank := range r.ranks {
		st := &r.ranks[rank]
		copy(st.indeg, st.indeg0)
		st.ready = st.ready[:0]
		st.remaining = len(st.nodes)
		st.finished = -1
		for _, rs := range st.recv {
			rs.q = rs.q[:0]
			rs.head = 0
			rs.surplus = 0
		}
	}
}

// scaleBytes applies the sensitivity-study message scale.
func (r *Replay) scaleBytes(b int64) int64 {
	if r.scale == 1 {
		return b
	}
	s := int64(float64(b) * r.scale)
	if s < 1 {
		s = 1
	}
	return s
}

// drain executes ready nodes — smallest index first — until the rank has
// none left. Inline completions (surplus-matched receives, zero-delay
// joins) push newly-ready successors into the heap mid-drain, which is how
// a lowered trace walks each fence window in op order.
func (r *Replay) drain(rank int) {
	st := &r.ranks[rank]
	for len(st.ready) > 0 {
		idx := heapPop(&st.ready)
		node := &st.nodes[idx]
		switch node.Kind {
		case trace.NodeSend:
			r.f.Send(
				r.job.Nodes[rank], r.job.Nodes[node.Peer], r.scaleBytes(node.Bytes),
				st.onInj[idx], st.onDel[idx],
			)
		case trace.NodeRecv:
			rs := st.recvFor(recvKey{src: node.Peer, tag: node.Tag})
			if rs.surplus > 0 {
				rs.surplus--
				r.complete(rank, idx)
			} else {
				rs.q = append(rs.q, idx)
			}
		case trace.NodeCompute:
			if node.Delay == 0 {
				r.complete(rank, idx)
			} else {
				eng := r.f.Engine()
				eng.At(eng.Now()+node.Delay, st.delayed[idx])
			}
		default:
			panic(fmt.Sprintf("workload: rank %d node %d: unknown kind %v", rank, idx, node.Kind))
		}
	}
}

// complete marks a node done, readies any successor whose last dependency
// this was, and finishes the rank when nothing remains. Callers outside a
// drain (DES callbacks) must drain afterwards.
func (r *Replay) complete(rank int, idx int32) {
	st := &r.ranks[rank]
	for _, s := range st.succList[st.succOff[idx]:st.succOff[idx+1]] {
		st.indeg[s]--
		if st.indeg[s] == 0 {
			heapPush(&st.ready, s)
		}
	}
	st.remaining--
	if st.remaining == 0 {
		r.finishRank(st)
	}
}

func (st *rankState) recvFor(key recvKey) *recvState {
	rs := st.recv[key]
	if rs == nil {
		rs = &recvState{}
		st.recv[key] = rs
	}
	return rs
}

// messageArrived matches a delivery against the destination rank's posted
// receives: first-posted-first-matched per (source, tag), surplus-buffered
// when the payload beats the post.
func (r *Replay) messageArrived(rank int, key recvKey) {
	st := &r.ranks[rank]
	rs := st.recvFor(key)
	if rs.head < len(rs.q) {
		idx := rs.q[rs.head]
		rs.head++
		if rs.head == len(rs.q) {
			rs.q = rs.q[:0]
			rs.head = 0
		}
		r.complete(rank, idx)
		r.drain(rank)
		return
	}
	rs.surplus++
}

func (r *Replay) finishRank(st *rankState) {
	st.finished = r.f.Engine().Now()
	r.done++
	if r.done == len(r.ranks) && r.job.OnComplete != nil {
		r.job.OnComplete(st.finished)
	}
}

// heapPush inserts v into the index min-heap.
func heapPush(h *[]int32, v int32) {
	a := append(*h, v)
	*h = a
	i := len(a) - 1
	for i > 0 {
		p := (i - 1) / 2
		if a[p] <= a[i] {
			break
		}
		a[p], a[i] = a[i], a[p]
		i = p
	}
}

// heapPop removes and returns the smallest index.
func heapPop(h *[]int32) int32 {
	a := *h
	v := a[0]
	n := len(a) - 1
	a[0] = a[n]
	a = a[:n]
	*h = a
	i := 0
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		m := l
		if rr := l + 1; rr < n && a[rr] < a[l] {
			m = rr
		}
		if a[i] <= a[m] {
			break
		}
		a[i], a[m] = a[m], a[i]
		i = m
	}
	return v
}

// Done reports whether every rank has completed all its operations.
func (r *Replay) Done() bool { return r.done == len(r.ranks) }

// RanksDone returns how many ranks have finished.
func (r *Replay) RanksDone() int { return r.done }

// CommTimes returns each rank's communication time — the paper's metric:
// the time the rank spent completing all its message operations (ranks
// start at job start and perform no computation). Unfinished ranks are
// reported with the span up to the current simulated time.
func (r *Replay) CommTimes() []des.Time {
	out := make([]des.Time, len(r.ranks))
	now := r.f.Engine().Now()
	for i := range r.ranks {
		end := r.ranks[i].finished
		if end < 0 {
			end = now
		}
		out[i] = end - r.job.Start
	}
	return out
}

// MaxCommTime returns the slowest rank's communication time.
func (r *Replay) MaxCommTime() des.Time {
	var max des.Time
	for _, t := range r.CommTimes() {
		if t > max {
			max = t
		}
	}
	return max
}

// Nodes returns the node of each rank.
func (r *Replay) Nodes() []topology.NodeID {
	return r.job.Nodes[:len(r.ranks)]
}

// AvgHopsPerRank returns the paper's per-rank average hop counts: the mean
// routers traversed by packets delivered to each rank's node.
func (r *Replay) AvgHopsPerRank() []float64 {
	out := make([]float64, len(r.ranks))
	for i, node := range r.Nodes() {
		out[i], _ = r.f.AvgHops(node)
	}
	return out
}
