package workload

import (
	"testing"

	"dragonfly/internal/des"
	"dragonfly/internal/network"
	"dragonfly/internal/placement"
	"dragonfly/internal/routing"
	"dragonfly/internal/topology"
	"dragonfly/internal/trace"
)

func miniFabric(t *testing.T, mech routing.Mechanism, seed int64) *network.Fabric {
	t.Helper()
	eng := des.New()
	topo := topology.MustNew(topology.Mini())
	f, err := network.New(eng, topo, network.DefaultParams(), mech, des.NewRNG(seed, "f"))
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func contiguousNodes(n int) []topology.NodeID {
	out := make([]topology.NodeID, n)
	for i := range out {
		out[i] = topology.NodeID(i)
	}
	return out
}

func TestReplayPairExchange(t *testing.T) {
	f := miniFabric(t, routing.Minimal, 1)
	tr := &trace.Trace{App: "pair", Ranks: [][]trace.Op{
		{
			{Kind: trace.OpISend, Peer: 1, Bytes: 10000, Tag: 0},
			{Kind: trace.OpIRecv, Peer: 1, Bytes: 10000, Tag: 0},
			{Kind: trace.OpWaitAll},
		},
		{
			{Kind: trace.OpISend, Peer: 0, Bytes: 10000, Tag: 0},
			{Kind: trace.OpIRecv, Peer: 0, Bytes: 10000, Tag: 0},
			{Kind: trace.OpWaitAll},
		},
	}}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	r, err := NewReplay(f, Job{Name: "pair", Trace: tr, Nodes: contiguousNodes(2)})
	if err != nil {
		t.Fatal(err)
	}
	r.Start()
	f.Engine().Run()
	if !r.Done() {
		t.Fatalf("replay stalled: %d/%d ranks done", r.RanksDone(), 2)
	}
	times := r.CommTimes()
	if times[0] <= 0 || times[1] <= 0 {
		t.Fatalf("comm times %v not positive", times)
	}
}

func TestReplayPhaseOrdering(t *testing.T) {
	// Rank 1's phase-2 send must not be injected before its phase-1 recv
	// completes: rank 0 measures that the second message arrives after it
	// sent the first.
	f := miniFabric(t, routing.Minimal, 2)
	tr := &trace.Trace{App: "phase", Ranks: [][]trace.Op{
		{
			{Kind: trace.OpISend, Peer: 1, Bytes: 100000, Tag: 0},
			{Kind: trace.OpWaitAll},
			{Kind: trace.OpIRecv, Peer: 1, Bytes: 100, Tag: 1},
			{Kind: trace.OpWaitAll},
		},
		{
			{Kind: trace.OpIRecv, Peer: 0, Bytes: 100000, Tag: 0},
			{Kind: trace.OpWaitAll},
			{Kind: trace.OpISend, Peer: 0, Bytes: 100, Tag: 1},
			{Kind: trace.OpWaitAll},
		},
	}}
	r, err := NewReplay(f, Job{Name: "phase", Trace: tr, Nodes: contiguousNodes(2)})
	if err != nil {
		t.Fatal(err)
	}
	r.Start()
	f.Engine().Run()
	if !r.Done() {
		t.Fatal("replay stalled")
	}
	times := r.CommTimes()
	// Rank 0 finishes strictly after rank 1 started its phase-2 send,
	// which itself is after the 100 KB transfer completed; both ranks'
	// times must therefore exceed the 100 KB serialization alone.
	minTime := des.Time(100000 * 1e9 / network.DefaultParams().TerminalBandwidth)
	if times[0] <= minTime {
		t.Fatalf("rank 0 time %v too small for two dependent phases", times[0])
	}
}

func TestReplayAppTraces(t *testing.T) {
	// Scaled-down versions of all three applications replay to completion
	// under every placement policy and both routing mechanisms.
	crT, _ := trace.CR(trace.CRConfig{Ranks: 32, MessageBytes: 8 * trace.KB})
	fbT, _ := trace.FB(trace.FBConfig{X: 3, Y: 3, Z: 3, Iterations: 2,
		MinBytes: trace.KB, MaxBytes: 16 * trace.KB, FarPartners: 1, FarFraction: 0.1, Seed: 3})
	amgT, _ := trace.AMG(trace.AMGConfig{X: 3, Y: 3, Z: 3, Cycles: 2, Levels: 3, PeakBytes: 12 * trace.KB})
	for _, tc := range []struct {
		name string
		tr   *trace.Trace
	}{{"cr", crT}, {"fb", fbT}, {"amg", amgT}} {
		for _, pol := range placement.All() {
			for _, mech := range []routing.Mechanism{routing.Minimal, routing.Adaptive} {
				f := miniFabric(t, mech, 7)
				nodes, err := placement.Allocate(f.Topology(), pol, tc.tr.NumRanks(), des.NewRNG(5, "alloc"))
				if err != nil {
					t.Fatal(err)
				}
				r, err := NewReplay(f, Job{Name: tc.name, Trace: tc.tr, Nodes: nodes})
				if err != nil {
					t.Fatal(err)
				}
				r.Start()
				f.Engine().Run()
				if !r.Done() {
					t.Fatalf("%s under %v-%v stalled: %d/%d ranks",
						tc.name, pol, mech, r.RanksDone(), tc.tr.NumRanks())
				}
				if r.MaxCommTime() <= 0 {
					t.Fatalf("%s under %v-%v: nonpositive comm time", tc.name, pol, mech)
				}
			}
		}
	}
}

func TestReplayMsgScale(t *testing.T) {
	run := func(scale float64) des.Time {
		f := miniFabric(t, routing.Minimal, 3)
		tr, _ := trace.CR(trace.CRConfig{Ranks: 16, MessageBytes: 64 * trace.KB})
		r, err := NewReplay(f, Job{Name: "cr", Trace: tr, Nodes: contiguousNodes(16), MsgScale: scale})
		if err != nil {
			t.Fatal(err)
		}
		r.Start()
		f.Engine().Run()
		if !r.Done() {
			t.Fatal("stalled")
		}
		return r.MaxCommTime()
	}
	half, full, double := run(0.5), run(1), run(2)
	if !(half < full && full < double) {
		t.Fatalf("scaling not monotone: 0.5x=%v 1x=%v 2x=%v", half, full, double)
	}
	// Heavier loads are bandwidth-bound, so doubling should come out
	// roughly 2x, well above 1.5x.
	if float64(double) < 1.5*float64(full) {
		t.Fatalf("2x scale only %v vs %v", double, full)
	}
}

func TestReplayStartOffset(t *testing.T) {
	f := miniFabric(t, routing.Minimal, 4)
	tr, _ := trace.CR(trace.CRConfig{Ranks: 4, MessageBytes: trace.KB})
	start := 5 * des.Millisecond
	r, _ := NewReplay(f, Job{Name: "late", Trace: tr, Nodes: contiguousNodes(4), Start: start})
	r.Start()
	end := f.Engine().Run()
	if end < start {
		t.Fatalf("finished %v before job start %v", end, start)
	}
	for i, ct := range r.CommTimes() {
		if ct <= 0 || ct > end-start {
			t.Fatalf("rank %d comm time %v not within (0, %v]", i, ct, end-start)
		}
	}
}

func TestReplayRejectsBadJobs(t *testing.T) {
	f := miniFabric(t, routing.Minimal, 5)
	tr, _ := trace.CR(trace.CRConfig{Ranks: 8, MessageBytes: trace.KB})
	if _, err := NewReplay(f, Job{Trace: tr, Nodes: contiguousNodes(4)}); err == nil {
		t.Error("accepted job with too few nodes")
	}
	dup := contiguousNodes(8)
	dup[3] = dup[2]
	if _, err := NewReplay(f, Job{Trace: tr, Nodes: dup}); err == nil {
		t.Error("accepted duplicate node mapping")
	}
	out := contiguousNodes(8)
	out[0] = topology.NodeID(f.NodeCount())
	if _, err := NewReplay(f, Job{Trace: tr, Nodes: out}); err == nil {
		t.Error("accepted out-of-range node")
	}
	empty := &trace.Trace{App: "empty"}
	if _, err := NewReplay(f, Job{Trace: empty}); err == nil {
		t.Error("accepted rankless trace")
	}
}

func TestReplayUnexpectedMessageBeforeRecvPosted(t *testing.T) {
	// Rank 1 posts its receive only in phase 2, after the message from
	// rank 0 has long arrived: the surplus path must match it.
	f := miniFabric(t, routing.Minimal, 6)
	tr := &trace.Trace{App: "early", Ranks: [][]trace.Op{
		{
			{Kind: trace.OpISend, Peer: 1, Bytes: 100, Tag: 7},
			{Kind: trace.OpWaitAll},
		},
		{
			// Phase 1: a slow self-contained exchange with rank 2.
			{Kind: trace.OpISend, Peer: 2, Bytes: 1 << 20, Tag: 0},
			{Kind: trace.OpIRecv, Peer: 2, Bytes: 1 << 20, Tag: 0},
			{Kind: trace.OpWaitAll},
			// Phase 2: now post the receive for rank 0's early message.
			{Kind: trace.OpIRecv, Peer: 0, Bytes: 100, Tag: 7},
			{Kind: trace.OpWaitAll},
		},
		{
			{Kind: trace.OpISend, Peer: 1, Bytes: 1 << 20, Tag: 0},
			{Kind: trace.OpIRecv, Peer: 1, Bytes: 1 << 20, Tag: 0},
			{Kind: trace.OpWaitAll},
		},
	}}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	r, err := NewReplay(f, Job{Name: "early", Trace: tr, Nodes: contiguousNodes(3)})
	if err != nil {
		t.Fatal(err)
	}
	r.Start()
	f.Engine().Run()
	if !r.Done() {
		t.Fatalf("stalled with unexpected-message matching: %d/3 done", r.RanksDone())
	}
}

func TestAvgHopsPerRankPopulated(t *testing.T) {
	f := miniFabric(t, routing.Minimal, 8)
	tr, _ := trace.CR(trace.CRConfig{Ranks: 16, MessageBytes: 4 * trace.KB})
	nodes, _ := placement.Allocate(f.Topology(), placement.RandomNode, 16, des.NewRNG(9, "a"))
	r, _ := NewReplay(f, Job{Name: "hops", Trace: tr, Nodes: nodes})
	r.Start()
	f.Engine().Run()
	hops := r.AvgHopsPerRank()
	for i, h := range hops {
		if h < 1 || h > 6 {
			t.Fatalf("rank %d avg hops %v outside [1,6]", i, h)
		}
	}
}

func TestReplayDeterministic(t *testing.T) {
	run := func() des.Time {
		f := miniFabric(t, routing.Adaptive, 11)
		tr, _ := trace.FB(trace.FBConfig{X: 3, Y: 3, Z: 3, Iterations: 2,
			MinBytes: trace.KB, MaxBytes: 8 * trace.KB, FarPartners: 1, FarFraction: 0.2, Seed: 2})
		nodes, _ := placement.Allocate(f.Topology(), placement.RandomNode, tr.NumRanks(), des.NewRNG(13, "a"))
		r, _ := NewReplay(f, Job{Name: "det", Trace: tr, Nodes: nodes})
		r.Start()
		f.Engine().Run()
		return r.MaxCommTime()
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("nondeterministic replay: %v vs %v", a, b)
	}
}
